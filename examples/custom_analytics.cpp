/**
 * @file
 * ReACH beyond CBIR: a scan -> aggregate -> reduce analytics
 * pipeline built from the same kernel templates and runtime API.
 *
 * The paper argues the hierarchy suits "common communication-bound
 * analytics workloads" generally. Here a columnar-scan style job
 * streams a large table from the SSDs (near-storage KNN engines
 * doubling as streaming filters), partial aggregates move to the
 * near-memory modules (GeMM engines as hash aggregators), and a
 * final reduction runs on-chip — demonstrating that the
 * configuration / host-code split is workload-agnostic.
 */

#include <cstdio>

#include "sim/logging.hh"
#include "core/runtime.hh"

using namespace reach;
using namespace reach::core;

int
main()
{
    sim::setQuiet(true);
    ReachRuntime rt{SystemConfig{}};

    // A 64 GB table sharded across the four SSDs.
    const std::uint64_t table_bytes = std::uint64_t(64) << 30;
    const std::uint64_t shard = table_bytes / 4;
    BufferHandle shards[4];
    for (int s = 0; s < 4; ++s) {
        shards[s] = rt.createFixedBuffer(
            "./table_shard" + std::to_string(s), Level::NearStor,
            shard);
    }

    // Filtered rows flow NS -> NM; partial aggregates NM -> on-chip.
    auto filtered = rt.createStream(Level::NearStor, Level::NearMem,
                                    StreamType::Collect,
                                    std::uint64_t(256) << 20, 4);
    auto partials = rt.createStream(Level::NearMem, Level::OnChip,
                                    StreamType::Collect,
                                    std::uint64_t(1) << 20, 4);
    auto kickoff = rt.createStream(Level::Cpu, Level::NearStor,
                                   StreamType::BroadCast, 4096, 4);

    // Near-storage scan+filter on each shard (KNN template: a
    // streaming compare engine).
    AccHandle scans[4];
    for (int s = 0; s < 4; ++s) {
        scans[s] = rt.registerAcc("KNN-ZCU9", Level::NearStor);
        scans[s].setArgs(0, kickoff);
        scans[s].setArgs(1, shards[s]);
        scans[s].setArgs(2, filtered);
        acc::WorkUnit w;
        w.ops = static_cast<double>(shard) / 4; // compare per word
        w.bytesIn = shard;                      // full scan
        w.bytesOut = (std::uint64_t(256) << 20) / 4; // selectivity
        scans[s].setWork(w);
    }

    // Near-memory aggregation of the filtered stream.
    AccHandle aggs[2];
    for (int a = 0; a < 2; ++a) {
        aggs[a] = rt.registerAcc("GeMM-ZCU9", Level::NearMem);
        aggs[a].setArgs(0, filtered);
        aggs[a].setArgs(2, partials);
        acc::WorkUnit w;
        w.ops = static_cast<double>(std::uint64_t(128) << 20) / 4;
        w.bytesIn = std::uint64_t(128) << 20;
        w.bytesOut = std::uint64_t(512) << 10;
        aggs[a].setWork(w);
    }

    // Final on-chip reduction.
    auto reduce = rt.registerAcc("GeMM-VU9P", Level::OnChip);
    reduce.setArgs(0, partials);
    acc::WorkUnit rw;
    rw.ops = 1e6;
    rw.bytesIn = std::uint64_t(1) << 20;
    rw.inputResident = true;
    reduce.setWork(rw);

    rt.setBatchBudget(3); // three scan queries back to back
    while (rt.enqueue(kickoff)) {
        for (auto &s : scans)
            s.execute(0);
        for (auto &a : aggs)
            a.execute(0);
        reduce.execute(0);
    }

    sim::Tick end = rt.run();
    double seconds = sim::secondsFromTicks(end);
    auto energy = rt.system().measureEnergy();

    std::printf("scanned %.0f GB x %u queries in %.1f ms of "
                "simulated time (%.1f GB/s effective)\n",
                static_cast<double>(table_bytes) / 1e9,
                rt.jobsSubmitted(), seconds * 1e3,
                3.0 * table_bytes / 1e9 / seconds);
    std::printf("energy: %.1f J; GAM DMA between levels: %.1f MB "
                "(vs %.0f GB scanned in place)\n",
                energy.total(),
                static_cast<double>(rt.system().gam().bytesMoved()) /
                    1e6,
                3.0 * table_bytes / 1e9);
    std::printf("\nthe near-data scan touched the full table at "
                "aggregate SSD bandwidth while the host IO link "
                "carried only filtered rows.\n");
    return 0;
}
