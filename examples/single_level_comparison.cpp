/**
 * @file
 * Compare the four acceleration options the paper evaluates —
 * on-chip only, near-memory only, near-storage only, and the proper
 * ReACH mapping — on throughput, latency and energy, using the
 * high-level deployment API.
 */

#include <cstdio>

#include "sim/logging.hh"
#include "core/cbir_deployment.hh"

using namespace reach;
using namespace reach::core;

int
main()
{
    sim::setQuiet(true);
    cbir::CbirWorkloadModel model{cbir::ScaleConfig{}};

    std::printf("%-10s %16s %14s %12s\n", "mapping",
                "throughput(q/s)", "latency (ms)", "energy (J)");

    double base_thr = 0;
    for (Mapping m : {Mapping::OnChipOnly, Mapping::NearMemOnly,
                      Mapping::NearStorOnly, Mapping::Reach}) {
        // Fresh machine per mapping so energy is comparable.
        ReachSystem lat_sys{SystemConfig{}};
        CbirDeployment lat_dep(lat_sys, model, m);
        RunResult lat = lat_dep.run(1);

        ReachSystem sys{SystemConfig{}};
        CbirDeployment dep(sys, model, m);
        RunResult thr = dep.run(10);
        double energy = sys.measureEnergy().total();

        double qps =
            thr.queriesPerSec(model.scale().batchSize);
        if (m == Mapping::OnChipOnly)
            base_thr = qps;

        std::printf("%-10s %16.1f %14.2f %12.2f   (%.2fx)\n",
                    mappingName(m), qps,
                    sim::secondsFromTicks(lat.meanLatency) * 1e3,
                    energy, qps / base_thr);
    }

    std::printf("\nThe proper mapping (feature extraction on-chip, "
                "short-list near memory,\nrerank near storage) wins "
                "on every axis — the paper's central result.\n");
    return 0;
}
