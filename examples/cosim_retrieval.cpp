/**
 * @file
 * An "image search service" built on the co-simulation layer: every
 * query batch is answered *functionally* (real retrieval over a
 * sampled dataset) while the ReACH timing model charges what that
 * batch would cost at billion scale — answers, latency and energy
 * from one call.
 */

#include <cstdio>

#include "core/cosim.hh"
#include "sim/logging.hh"

using namespace reach;
using namespace reach::core;

int
main()
{
    sim::setQuiet(true);

    CbirService::Config svc;
    svc.dataset.numVectors = 20'000;
    svc.dataset.dim = 64;
    svc.dataset.latentClusters = 40;
    svc.kmeans.clusters = 64;
    svc.kmeans.maxIterations = 10;
    svc.nprobe = 8;
    svc.topK = 5;

    cbir::ScaleConfig scale; // billion-scale timing, batch of 16

    CoSimulation cosim(svc, scale, Mapping::Reach);
    std::printf("service up: %zu vectors, %zu clusters, recall@5 = "
                "%.3f\n\n",
                cosim.service().dataset().size(),
                cosim.service().index().numClusters(),
                cosim.service().measureRecall(32, 0.1, 42));

    std::printf("%-8s %14s %12s %28s\n", "batch", "latency (ms)",
                "energy (J)", "top hit of first query");
    for (int b = 0; b < 5; ++b) {
        cbir::Matrix queries = cosim.service().dataset().makeQueries(
            scale.batchSize, 0.1,
            1000 + static_cast<std::uint64_t>(b));
        CoSimBatch res = cosim.processBatch(queries);

        const auto &top = res.results.front().front();
        std::printf("%-8d %14.2f %12.2f %17s id=%u d=%.3f\n", b,
                    sim::secondsFromTicks(res.latency) * 1e3,
                    res.energyJoules, "", top.id, top.distSq);
    }

    std::printf("\n(each row: exact answers from the functional "
                "layer, cost from the simulated hierarchy)\n");
    return 0;
}
