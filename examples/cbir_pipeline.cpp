/**
 * @file
 * The paper's case study, end to end, in two halves:
 *
 *  1. FUNCTIONAL: a real (small-scale) CBIR system — synthetic
 *     images -> CNN features -> PCA compression -> k-means IVF
 *     index -> short-list retrieval -> rerank -> recall@K. This is
 *     the actual retrieval math the accelerators implement.
 *
 *  2. TIMING: the same pipeline deployed at billion scale on the
 *     ReACH compute hierarchy with the paper's proper mapping
 *     (feature extraction on-chip, short-list near memory, rerank
 *     near storage), written against the runtime library exactly in
 *     the style of the paper's Listings 2 and 3.
 */

#include <cstdio>

#include "sim/logging.hh"
#include "cbir/mini_cnn.hh"
#include "cbir/pca.hh"
#include "cbir/rerank.hh"
#include "cbir/shortlist.hh"
#include "cbir/workload_model.hh"
#include "core/runtime.hh"
#include "workload/dataset.hh"

using namespace reach;
using namespace reach::core;

namespace
{

void
functionalDemo()
{
    std::printf("--- functional CBIR (sampled scale) ---\n");

    // Image database: 10 classes x 20 images.
    cbir::MiniCnn cnn;
    std::vector<cbir::Image> images;
    std::vector<int> labels;
    for (int c = 0; c < 10; ++c) {
        for (int i = 0; i < 20; ++i) {
            images.push_back(cbir::makeSyntheticImage(
                static_cast<std::uint32_t>(c), 7'000 + c * 61 + i));
            labels.push_back(c);
        }
    }

    // Feature extraction + PCA compression (paper: VGG16 + PCA-96).
    cbir::Matrix raw = cnn.extractBatch(images);
    cbir::Pca pca(raw, 24);
    cbir::Matrix feats = pca.transform(raw);

    // Offline stage: k-means IVF index.
    cbir::KMeansConfig kc;
    kc.clusters = 16;
    cbir::InvertedFileIndex index(feats, kc);

    // Online stage: query with fresh images.
    std::vector<cbir::Image> qimgs;
    for (int c = 0; c < 10; ++c)
        qimgs.push_back(cbir::makeSyntheticImage(
            static_cast<std::uint32_t>(c), 99'000 + c));
    cbir::Matrix queries = pca.transform(cnn.extractBatch(qimgs));

    auto lists = cbir::shortlistRetrieve(queries, index, 4);
    cbir::RerankConfig rcfg;
    rcfg.k = 5;
    auto results = cbir::rerank(queries, feats, index, lists, rcfg);
    auto truth = cbir::bruteForce(queries, feats, 5);

    double recall = cbir::recallAtK(results, truth, 5);
    int correct_class = 0;
    for (int c = 0; c < 10; ++c) {
        if (!results[static_cast<std::size_t>(c)].empty() &&
            labels[results[static_cast<std::size_t>(c)][0].id] == c) {
            ++correct_class;
        }
    }
    std::printf("recall@5 vs brute force: %.2f  |  top-1 class "
                "matches: %d/10\n\n",
                recall, correct_class);
}

void
timingDemo()
{
    std::printf("--- ReACH deployment (billion-scale timing) ---\n");

    ReachRuntime rt{SystemConfig{}};
    cbir::CbirWorkloadModel model{cbir::ScaleConfig{}};
    const auto &scale = model.scale();

    // ---- ReACH configuration (paper Listing 2) ----
    auto vgg_param = rt.createFixedBuffer(
        "./vgg16_param", Level::OnChip, model.modelParamBytes());
    auto db0 = rt.createFixedBuffer("./feature_db0", Level::NearStor,
                                    model.databaseBytes() / 4);
    auto db1 = rt.createFixedBuffer("./feature_db1", Level::NearStor,
                                    model.databaseBytes() / 4);

    auto input = rt.createStream(
        Level::Cpu, Level::OnChip, StreamType::Pair,
        model.queryImageBytes() * scale.batchSize, 4);
    auto features = rt.createStream(
        Level::OnChip, Level::NearMem, StreamType::BroadCast,
        model.featureVectorBytes() * scale.batchSize, 4);
    auto candidates = rt.createStream(
        Level::NearMem, Level::NearStor, StreamType::BroadCast,
        std::uint64_t(scale.batchSize) * scale.rerankCandidates * 4,
        4);

    auto cnn = rt.registerAcc("CNN-VU9P", Level::OnChip);
    cnn.setArgs(0, input);
    cnn.setArgs(1, vgg_param);
    cnn.setArgs(2, features);
    cnn.setWork(model.featureExtractionBatch());

    auto gemm0 = rt.registerAcc("GeMM-ZCU9", Level::NearMem);
    gemm0.setArgs(0, features);
    gemm0.setArgs(2, candidates);
    auto sl_work = model.shortlistBatch(2);
    gemm0.setWork(sl_work);
    auto gemm1 = rt.registerAcc("GeMM-ZCU9", Level::NearMem);
    gemm1.setArgs(0, features);
    gemm1.setArgs(2, candidates);
    gemm1.setWork(sl_work);

    auto knn0 = rt.registerAcc("KNN-ZCU9", Level::NearStor);
    knn0.setArgs(0, candidates);
    knn0.setArgs(1, db0);
    auto rr_work = model.rerankBatch(2);
    knn0.setWork(rr_work);
    auto knn1 = rt.registerAcc("KNN-ZCU9", Level::NearStor);
    knn1.setArgs(0, candidates);
    knn1.setArgs(1, db1);
    knn1.setWork(rr_work);

    // ---- Host application (paper Listing 3) ----
    rt.setBatchBudget(8);
    while (rt.enqueue(input)) {
        cnn.execute(0);
        gemm0.execute(0);
        gemm1.execute(0);
        knn0.execute(0);
        knn1.execute(0);
    }

    sim::Tick end = rt.run();
    double seconds = sim::secondsFromTicks(end);
    auto energy = rt.system().measureEnergy();

    std::printf("%u batches (%u queries each) in %.2f ms -> %.1f "
                "queries/s\n",
                rt.jobsSubmitted(), scale.batchSize, seconds * 1e3,
                rt.jobsSubmitted() * scale.batchSize / seconds);
    std::printf("energy: %.2f J total\n", energy.total());
    std::printf("GAM moved only %.2f MB between levels (query "
                "vectors + short-lists, paper §IV-B)\n",
                static_cast<double>(rt.system().gam().bytesMoved()) /
                    1e6);
}

} // namespace

int
main()
{
    sim::setQuiet(true);
    functionalDemo();
    timingDemo();
    return 0;
}
