/**
 * @file
 * A command-line exploration tool over the ReACH model — the binary
 * a downstream user reaches for to answer "what if":
 *
 *   sweep_cli --mapping=reach --batches=16
 *   sweep_cli --all --nprobe=16 --candidates=8192
 *   sweep_cli --mapping=near-mem --instances=2 --trace
 *   sweep_cli --mapping=onchip --stats       # dump all counters (JSON)
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/cbir_deployment.hh"
#include "sim/logging.hh"

using namespace reach;
using namespace reach::core;

namespace
{

struct Options
{
    std::vector<Mapping> mappings{Mapping::Reach};
    std::uint32_t batches = 8;
    std::uint32_t instances = 0;
    cbir::ScaleConfig scale{};
    bool dumpStats = false;
    bool trace = false;
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: sweep_cli [options]\n"
        "  --mapping=cpu|onchip|near-mem|near-stor|reach\n"
        "  --all                 run every mapping\n"
        "  --batches=N           query batches to run (default 8)\n"
        "  --instances=N         near-data modules to use (default all)\n"
        "  --batchsize=N         queries per batch (default 16)\n"
        "  --nprobe=N            clusters probed per query (default 8)\n"
        "  --candidates=N        rerank candidates per query "
        "(default 4096)\n"
        "  --reverse-lookup      include the image-fetch stage\n"
        "  --trace               print the task timeline\n"
        "  --stats               dump every simulator counter as "
        "JSON\n");
    std::exit(2);
}

Mapping
parseMapping(const std::string &s)
{
    if (s == "cpu")
        return Mapping::CpuOnly;
    if (s == "onchip")
        return Mapping::OnChipOnly;
    if (s == "near-mem")
        return Mapping::NearMemOnly;
    if (s == "near-stor")
        return Mapping::NearStorOnly;
    if (s == "reach")
        return Mapping::Reach;
    usage();
}

Options
parse(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *prefix) -> const char * {
            std::size_t n = std::strlen(prefix);
            return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n
                                                  : nullptr;
        };
        if (const char *v = value("--mapping="))
            opt.mappings = {parseMapping(v)};
        else if (arg == "--all")
            opt.mappings = {Mapping::CpuOnly, Mapping::OnChipOnly,
                            Mapping::NearMemOnly,
                            Mapping::NearStorOnly, Mapping::Reach};
        else if (const char *v = value("--batches="))
            opt.batches = static_cast<std::uint32_t>(std::atoi(v));
        else if (const char *v = value("--instances="))
            opt.instances = static_cast<std::uint32_t>(std::atoi(v));
        else if (const char *v = value("--batchsize="))
            opt.scale.batchSize =
                static_cast<std::uint32_t>(std::atoi(v));
        else if (const char *v = value("--nprobe="))
            opt.scale.nprobe =
                static_cast<std::uint32_t>(std::atoi(v));
        else if (const char *v = value("--candidates="))
            opt.scale.rerankCandidates =
                static_cast<std::uint32_t>(std::atoi(v));
        else if (arg == "--reverse-lookup")
            opt.scale.includeReverseLookup = true;
        else if (arg == "--trace")
            opt.trace = true;
        else if (arg == "--stats")
            opt.dumpStats = true;
        else
            usage();
    }
    if (opt.batches == 0)
        usage();
    return opt;
}

} // namespace

int
main(int argc, char **argv)
{
    sim::setQuiet(true);
    Options opt = parse(argc, argv);
    cbir::CbirWorkloadModel model(opt.scale);

    std::printf("%-10s %10s %16s %14s %12s\n", "mapping", "batches",
                "throughput(q/s)", "mean lat(ms)", "energy(J)");

    for (Mapping m : opt.mappings) {
        ReachSystem sys{SystemConfig{}};

        if (opt.trace) {
            sys.gam().setTaskObserver(
                [](const gam::Gam::TaskEvent &e) {
                    std::printf("  [%10.3f - %10.3f ms] %-22s %s\n",
                                sim::secondsFromTicks(e.dispatched) *
                                    1e3,
                                sim::secondsFromTicks(e.finished) *
                                    1e3,
                                e.label.c_str(), e.accName.c_str());
                });
        }

        CbirDeployment dep(sys, model, m, opt.instances);
        RunResult r = dep.run(opt.batches);
        double energy = sys.measureEnergy().total();

        std::printf("%-10s %10u %16.1f %14.2f %12.2f\n",
                    mappingName(m), r.batches,
                    r.queriesPerSec(opt.scale.batchSize),
                    sim::secondsFromTicks(r.meanLatency) * 1e3,
                    energy);

        if (opt.dumpStats)
            sys.simulator().stats().dumpJson(std::cout);
    }
    return 0;
}
