/**
 * @file
 * Quickstart: the smallest useful ReACH program.
 *
 * Builds the Table-II machine, registers one on-chip CNN accelerator
 * through the runtime library, streams a few query batches through
 * it, and prints what happened. Start here, then read
 * examples/cbir_pipeline.cpp for the full multi-level deployment.
 */

#include <cstdio>

#include "sim/logging.hh"
#include "core/runtime.hh"

using namespace reach;
using namespace reach::core;

int
main()
{
    sim::setQuiet(true);

    // 1. Bring up the simulated machine (Table II defaults: 1
    //    on-chip VU9P, 4 AIM near-memory modules, 4 FPGA+SSD
    //    near-storage modules, a GAM coordinating all of them).
    ReachRuntime rt{SystemConfig{}};

    // 2. Configuration (paper Listing 2): one fixed parameter buffer
    //    and a CPU -> on-chip input stream.
    auto vgg_param = rt.createFixedBuffer("./vgg16_param",
                                          Level::OnChip, 11'300'000);
    auto input = rt.createStream(Level::Cpu, Level::OnChip,
                                 StreamType::Pair,
                                 16 * 224 * 224 * 3, /*depth=*/4);

    auto cnn = rt.registerAcc("CNN-VU9P", Level::OnChip);
    cnn.setArgs(0, input);
    cnn.setArgs(1, vgg_param);

    // 3. Host loop (paper Listing 3): synchronous style; the GAM
    //    handles the asynchronous task flow.
    rt.setBatchBudget(5);
    while (rt.enqueue(input))
        cnn.execute(/*threadId=*/0);

    sim::Tick end = rt.run();

    std::printf("quickstart: ran %u query batches in %.2f ms of "
                "simulated time\n",
                rt.jobsSubmitted(),
                sim::secondsFromTicks(end) * 1e3);

    auto energy = rt.system().measureEnergy();
    std::printf("energy: %.2f J total, %.2f J in the accelerator\n",
                energy.total(),
                energy[energy::Component::Acc]);

    std::printf("GAM: %lu tasks dispatched, %lu bytes moved by "
                "DMA\n",
                static_cast<unsigned long>(
                    rt.system().gam().tasksDispatched()),
                static_cast<unsigned long>(
                    rt.system().gam().bytesMoved()));
    return 0;
}
