/**
 * @file
 * minibench: a small, vendored implementation of the subset of the
 * google-benchmark API this repository uses, so the bench binaries
 * build and run Release-quality timings without any system or
 * fetched dependency. Drop-in for:
 *
 *   - BENCHMARK(fn) / BENCHMARK_CAPTURE(fn, label, args...) with
 *     ->Arg(n) and ->UseRealTime() chaining, BENCHMARK_MAIN()
 *   - benchmark::State: for (auto _ : state), range(i),
 *     iterations(), SetItemsProcessed(), SkipWithError(),
 *     counters["name"] = value (plain doubles; no Counter flags —
 *     each entry is emitted verbatim as a key of the run's JSON
 *     object, the same flattened shape google-benchmark writes)
 *   - benchmark::DoNotOptimize()
 *   - flags: --benchmark_out=FILE, --benchmark_out_format=json,
 *     --benchmark_min_time=T[s]|Nx, --benchmark_filter=REGEX,
 *     --benchmark_context=key=value, --benchmark_repetitions=N
 *
 * The JSON writer emits the same shape google-benchmark does
 * (context block + one object per run with run_type "iteration"),
 * which is what bench/run_micro.sh and the CI gates parse. The
 * library is always compiled optimized with NDEBUG (see its
 * CMakeLists), so the recorded context reports
 * library_build_type: "release" regardless of the embedding build.
 *
 * Not implemented (and not used in-tree): threads, fixtures,
 * templated benchmarks, manual timing, Counter rate/invert flags,
 * aggregate (mean/median/stddev) reports, console color tables.
 */

#ifndef MINIBENCH_BENCHMARK_H
#define MINIBENCH_BENCHMARK_H

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace benchmark
{

class State
{
  public:
    State(std::int64_t iters, std::vector<std::int64_t> ranges);

    /** The per-instance argument list set with ->Arg(). */
    std::int64_t range(std::size_t i = 0) const;

    std::int64_t iterations() const { return maxIters; }

    void SetItemsProcessed(std::int64_t n) { items = n; }
    std::int64_t itemsProcessed() const { return items; }

    /**
     * User counters, flattened into the run's JSON object. The last
     * iteration's values win (counters describe the workload, not
     * the timing, so every iteration writes the same numbers).
     */
    std::map<std::string, double> counters;

    /** Mark this run skipped; the report carries the message. */
    void SkipWithError(const std::string &msg);
    bool errorOccurred() const { return skipped; }
    const std::string &errorMessage() const { return error; }

    // Range-for protocol: `for (auto _ : state)`. begin() starts the
    // timers; the != comparison that ends the loop stops them, so
    // only the measured region is charged.
    struct Value
    {
    };

    class iterator
    {
      public:
        iterator(State *s, std::int64_t remaining)
            : state(s), left(remaining)
        {
        }
        Value operator*() const { return {}; }
        iterator &operator++()
        {
            --left;
            return *this;
        }
        bool operator!=(const iterator &) const
        {
            if (left > 0 && !state->skipped)
                return true;
            state->finish();
            return false;
        }

      private:
        State *state;
        mutable std::int64_t left;
    };

    iterator begin();
    iterator end() { return iterator(this, 0); }

    /** Measured wall / process-CPU time of the timed region (ns). */
    double realTimeNs() const { return realNs; }
    double cpuTimeNs() const { return cpuNs; }

  private:
    friend class iterator;
    void finish();

    std::int64_t maxIters;
    std::vector<std::int64_t> ranges;
    std::int64_t items = 0;
    bool skipped = false;
    bool finished = false;
    std::string error;
    double startReal = 0, startCpu = 0;
    double realNs = 0, cpuNs = 0;
};

namespace internal
{

class Benchmark
{
  public:
    Benchmark(std::string name, std::function<void(State &)> fn);

    Benchmark *Arg(std::int64_t x);
    Benchmark *Args(const std::vector<std::int64_t> &xs);
    /** Accepted for compatibility; minibench always reports both. */
    Benchmark *UseRealTime();

    const std::string &name() const { return benchName; }
    void run(State &state) const { func(state); }
    /** One argument list per registered instance (may be empty). */
    const std::vector<std::vector<std::int64_t>> &argLists() const
    {
        return args;
    }

  private:
    std::string benchName;
    std::function<void(State &)> func;
    std::vector<std::vector<std::int64_t>> args;
};

Benchmark *RegisterBenchmark(std::string name,
                             std::function<void(State &)> fn);

} // namespace internal

/** Defeat dead-code elimination of a benchmarked value. */
template <class T>
inline void
DoNotOptimize(T const &value)
{
    asm volatile("" : : "r,m"(value) : "memory");
}

template <class T>
inline void
DoNotOptimize(T &value)
{
    asm volatile("" : "+r,m"(value) : : "memory");
}

inline void
ClobberMemory()
{
    asm volatile("" : : : "memory");
}

/** Parse --benchmark_* flags (consumed in place, like google's). */
void Initialize(int *argc, char **argv);
/** Run every registered instance matching the filter; returns the
 *  number that ran. */
std::size_t RunSpecifiedBenchmarks();
void Shutdown();

} // namespace benchmark

#define MINIBENCH_CONCAT2(a, b) a##b
#define MINIBENCH_CONCAT(a, b) MINIBENCH_CONCAT2(a, b)

#define BENCHMARK(fn)                                                 \
    static ::benchmark::internal::Benchmark *MINIBENCH_CONCAT(        \
        minibench_reg_, __LINE__) =                                   \
        ::benchmark::internal::RegisterBenchmark(#fn, fn)

#define BENCHMARK_CAPTURE(fn, label, ...)                             \
    static ::benchmark::internal::Benchmark *MINIBENCH_CONCAT(        \
        minibench_reg_, __LINE__) =                                   \
        ::benchmark::internal::RegisterBenchmark(                     \
            #fn "/" #label, [](::benchmark::State &st) {              \
                fn(st, __VA_ARGS__);                                  \
            })

#define BENCHMARK_MAIN()                                              \
    int main(int argc, char **argv)                                   \
    {                                                                 \
        ::benchmark::Initialize(&argc, argv);                         \
        ::benchmark::RunSpecifiedBenchmarks();                        \
        ::benchmark::Shutdown();                                      \
        return 0;                                                     \
    }

#endif // MINIBENCH_BENCHMARK_H
