/**
 * @file
 * minibench implementation: the run loop (doubling iterations until
 * the min-time target is met), flag parsing, and the
 * google-benchmark-shaped console + JSON reporters.
 */

#include "benchmark/benchmark.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <map>
#include <memory>
#include <regex>
#include <stdexcept>
#include <thread>

#include <unistd.h>

namespace benchmark
{

namespace
{

double
nowRealNs()
{
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return double(ts.tv_sec) * 1e9 + double(ts.tv_nsec);
}

double
nowCpuNs()
{
    timespec ts{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return double(ts.tv_sec) * 1e9 + double(ts.tv_nsec);
}

struct Flags
{
    std::string outFile;
    std::string outFormat = "json";
    std::string filter;
    double minTimeSeconds = 0.5;
    std::int64_t fixedIters = 0; // >0: --benchmark_min_time=Nx
    int repetitions = 1;
    std::map<std::string, std::string> context;
};

Flags flags;

std::vector<std::unique_ptr<internal::Benchmark>> &
registry()
{
    static std::vector<std::unique_ptr<internal::Benchmark>> r;
    return r;
}

/** One completed (or skipped) instance run. */
struct RunResult
{
    std::string name;
    std::int64_t iterations = 0;
    double realNsPerIter = 0;
    double cpuNsPerIter = 0;
    double itemsPerSecond = 0; // 0 = not set
    std::map<std::string, double> counters;
    bool skipped = false;
    std::string error;
};

RunResult
runInstance(const internal::Benchmark &bench, const std::string &name,
            const std::vector<std::int64_t> &args)
{
    RunResult res;
    res.name = name;

    std::int64_t iters =
        flags.fixedIters > 0 ? flags.fixedIters : 1;
    for (;;) {
        State state(iters, args);
        bench.run(state);
        if (state.errorOccurred()) {
            res.skipped = true;
            res.error = state.errorMessage();
            return res;
        }
        const double elapsed_s = state.realTimeNs() / 1e9;
        const bool enough =
            flags.fixedIters > 0 ||
            elapsed_s >= flags.minTimeSeconds ||
            iters >= std::int64_t(1) << 40;
        if (enough) {
            res.iterations = iters;
            res.realNsPerIter = state.realTimeNs() / double(iters);
            res.cpuNsPerIter = state.cpuTimeNs() / double(iters);
            if (state.itemsProcessed() > 0 && elapsed_s > 0) {
                res.itemsPerSecond =
                    double(state.itemsProcessed()) / elapsed_s;
            }
            res.counters = state.counters;
            return res;
        }
        // Scale towards the target with the usual benchmark
        // heuristic: overshoot slightly, never grow more than 10x.
        double mult = 2.0;
        if (elapsed_s > 0)
            mult = flags.minTimeSeconds * 1.4 / elapsed_s;
        mult = std::min(std::max(mult, 2.0), 10.0);
        iters = std::int64_t(double(iters) * mult) + 1;
    }
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

void
writeJson(const std::string &path,
          const std::vector<RunResult> &results)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "minibench: cannot write %s\n",
                     path.c_str());
        return;
    }

    char datebuf[64];
    std::time_t t = std::time(nullptr);
    std::tm tmv{};
    localtime_r(&t, &tmv);
    std::strftime(datebuf, sizeof(datebuf), "%Y-%m-%dT%H:%M:%S%z",
                  &tmv);
    char host[256] = "unknown";
    gethostname(host, sizeof(host) - 1);

    std::fprintf(f, "{\n  \"context\": {\n");
    std::fprintf(f, "    \"date\": \"%s\",\n", datebuf);
    std::fprintf(f, "    \"host_name\": \"%s\",\n", host);
    std::fprintf(f, "    \"num_cpus\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "    \"library_name\": \"minibench\",\n");
#ifdef NDEBUG
    std::fprintf(f, "    \"library_build_type\": \"release\",\n");
#else
    std::fprintf(f, "    \"library_build_type\": \"debug\",\n");
#endif
    for (const auto &[k, v] : flags.context) {
        std::fprintf(f, "    \"%s\": \"%s\",\n",
                     jsonEscape(k).c_str(), jsonEscape(v).c_str());
    }
    std::fprintf(f, "    \"executable\": \"minibench\"\n  },\n");

    std::fprintf(f, "  \"benchmarks\": [\n");
    bool first = true;
    for (const auto &r : results) {
        if (!first)
            std::fprintf(f, ",\n");
        first = false;
        std::fprintf(f, "    {\n      \"name\": \"%s\",\n",
                     jsonEscape(r.name).c_str());
        std::fprintf(f, "      \"run_name\": \"%s\",\n",
                     jsonEscape(r.name).c_str());
        std::fprintf(f, "      \"run_type\": \"iteration\",\n");
        std::fprintf(f, "      \"repetitions\": %d,\n",
                     flags.repetitions);
        if (r.skipped) {
            std::fprintf(f, "      \"error_occurred\": true,\n");
            std::fprintf(f, "      \"error_message\": \"%s\"\n",
                         jsonEscape(r.error).c_str());
        } else {
            std::fprintf(f, "      \"iterations\": %lld,\n",
                         static_cast<long long>(r.iterations));
            std::fprintf(f, "      \"real_time\": %.6f,\n",
                         r.realNsPerIter);
            std::fprintf(f, "      \"cpu_time\": %.6f,\n",
                         r.cpuNsPerIter);
            if (r.itemsPerSecond > 0) {
                std::fprintf(f,
                             "      \"items_per_second\": %.6f,\n",
                             r.itemsPerSecond);
            }
            for (const auto &[k, v] : r.counters) {
                std::fprintf(f, "      \"%s\": %.6f,\n",
                             jsonEscape(k).c_str(), v);
            }
            std::fprintf(f, "      \"time_unit\": \"ns\"\n");
        }
        std::fprintf(f, "    }");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
}

} // namespace

State::State(std::int64_t iters, std::vector<std::int64_t> rs)
    : maxIters(iters), ranges(std::move(rs))
{
}

std::int64_t
State::range(std::size_t i) const
{
    if (i >= ranges.size())
        throw std::out_of_range("benchmark::State::range");
    return ranges[i];
}

void
State::SkipWithError(const std::string &msg)
{
    skipped = true;
    error = msg;
}

State::iterator
State::begin()
{
    startReal = nowRealNs();
    startCpu = nowCpuNs();
    return iterator(this, maxIters);
}

void
State::finish()
{
    if (finished || skipped)
        return;
    finished = true;
    realNs = nowRealNs() - startReal;
    cpuNs = nowCpuNs() - startCpu;
}

namespace internal
{

Benchmark::Benchmark(std::string name, std::function<void(State &)> fn)
    : benchName(std::move(name)), func(std::move(fn))
{
}

Benchmark *
Benchmark::Arg(std::int64_t x)
{
    args.push_back({x});
    return this;
}

Benchmark *
Benchmark::Args(const std::vector<std::int64_t> &xs)
{
    args.push_back(xs);
    return this;
}

Benchmark *
Benchmark::UseRealTime()
{
    return this;
}

Benchmark *
RegisterBenchmark(std::string name, std::function<void(State &)> fn)
{
    registry().push_back(std::make_unique<Benchmark>(
        std::move(name), std::move(fn)));
    return registry().back().get();
}

} // namespace internal

void
Initialize(int *argc, char **argv)
{
    auto value = [](const std::string &arg,
                    const std::string &prefix) -> const char * {
        if (arg.rfind(prefix, 0) == 0)
            return arg.c_str() + prefix.size();
        return nullptr;
    };

    int out = 1;
    for (int i = 1; i < *argc; ++i) {
        std::string arg = argv[i];
        if (const char *v = value(arg, "--benchmark_out=")) {
            flags.outFile = v;
        } else if (const char *v =
                       value(arg, "--benchmark_out_format=")) {
            flags.outFormat = v;
        } else if (const char *v = value(arg, "--benchmark_filter=")) {
            flags.filter = v;
        } else if (const char *v =
                       value(arg, "--benchmark_repetitions=")) {
            flags.repetitions = std::max(1, std::atoi(v));
        } else if (const char *v =
                       value(arg, "--benchmark_min_time=")) {
            std::string t = v;
            if (!t.empty() && t.back() == 'x') {
                flags.fixedIters =
                    std::atoll(t.substr(0, t.size() - 1).c_str());
            } else {
                if (!t.empty() && t.back() == 's')
                    t.pop_back();
                flags.minTimeSeconds = std::atof(t.c_str());
            }
        } else if (const char *v = value(arg, "--benchmark_context=")) {
            std::string kv = v;
            auto eq = kv.find('=');
            if (eq != std::string::npos)
                flags.context[kv.substr(0, eq)] = kv.substr(eq + 1);
        } else if (arg.rfind("--benchmark_", 0) == 0) {
            std::fprintf(stderr,
                         "minibench: ignoring unsupported flag %s\n",
                         arg.c_str());
        } else {
            argv[out++] = argv[i];
            continue;
        }
    }
    *argc = out;
}

std::size_t
RunSpecifiedBenchmarks()
{
    std::regex filter;
    bool haveFilter = !flags.filter.empty();
    if (haveFilter)
        filter = std::regex(flags.filter);

    std::vector<RunResult> results;
    for (const auto &bench : registry()) {
        std::vector<std::vector<std::int64_t>> lists =
            bench->argLists();
        if (lists.empty())
            lists.push_back({});
        for (const auto &args : lists) {
            std::string name = bench->name();
            for (std::int64_t a : args)
                name += "/" + std::to_string(a);
            if (haveFilter &&
                !std::regex_search(name, filter))
                continue;
            for (int rep = 0; rep < flags.repetitions; ++rep) {
                RunResult r = runInstance(*bench, name, args);
                if (r.skipped) {
                    std::fprintf(stderr, "%-40s SKIPPED: %s\n",
                                 r.name.c_str(), r.error.c_str());
                } else {
                    if (r.itemsPerSecond > 0) {
                        std::fprintf(stderr,
                                     "%-40s %12.1f ns %10lld iters "
                                     "%10.2fM items/s",
                                     r.name.c_str(), r.realNsPerIter,
                                     static_cast<long long>(
                                         r.iterations),
                                     r.itemsPerSecond / 1e6);
                    } else {
                        std::fprintf(stderr,
                                     "%-40s %12.1f ns %10lld iters",
                                     r.name.c_str(), r.realNsPerIter,
                                     static_cast<long long>(
                                         r.iterations));
                    }
                    for (const auto &[k, v] : r.counters)
                        std::fprintf(stderr, " %s=%g", k.c_str(), v);
                    std::fprintf(stderr, "\n");
                }
                results.push_back(std::move(r));
            }
        }
    }

    if (!flags.outFile.empty()) {
        if (flags.outFormat != "json") {
            std::fprintf(stderr,
                         "minibench: only json output supported\n");
        } else {
            writeJson(flags.outFile, results);
        }
    }
    return results.size();
}

void
Shutdown()
{
}

} // namespace benchmark
