/**
 * @file
 * Figure 9: runtime and energy of the *feature extraction* stage on
 * near-memory and near-storage accelerators with 1/2/4/8/16
 * instances, normalized to the on-chip accelerator.
 *
 * Paper shapes to reproduce:
 *  - a single near-data CNN instance is 7-10x slower than on-chip;
 *  - 8-16 instances surpass the on-chip engine;
 *  - on-chip keeps the best energy.
 *
 * Sweep points run concurrently (--jobs N / REACH_SWEEP_JOBS); the
 * output is identical at any job count.
 */

#include <cstdio>

#include "common.hh"

using namespace reach;
using namespace reach::bench;

int
main(int argc, char **argv)
{
    sim::setQuiet(true);
    SweepOptions opt = parseSweepOptions(argc, argv);
    const std::uint32_t batches = 4;

    // Point 0 is the on-chip baseline; then {NM,NS} x {1,2,4,8,16}.
    struct Point
    {
        acc::Level level;
        std::uint32_t n;
    };
    std::vector<Point> points{{acc::Level::OnChip, 1}};
    for (acc::Level level :
         {acc::Level::NearMem, acc::Level::NearStor}) {
        for (std::uint32_t n : {1u, 2u, 4u, 8u, 16u})
            points.push_back({level, n});
    }

    auto results =
        runSweep(points.size(), opt, [&](std::size_t i) {
            return runStage(Stage::FeatureExtraction,
                            points[i].level, points[i].n, batches);
        });
    const StageResult &base = results[0];

    printHeader("Figure 9: feature extraction vs on-chip baseline");
    std::printf("on-chip baseline: %.2f ms, %.2f J (normalized 1.0)\n",
                base.runtimeSeconds * 1e3, base.energyJoules);
    std::printf("%-12s %8s %12s %12s\n", "level", "ACCs",
                "runtime(x)", "energy(x)");

    for (std::size_t i = 1; i < points.size(); ++i) {
        std::printf("%-12s %8u %12.2f %12.2f\n",
                    acc::levelName(points[i].level), points[i].n,
                    results[i].runtimeSeconds / base.runtimeSeconds,
                    results[i].energyJoules / base.energyJoules);
    }

    // Shape checks (printed so CI logs show pass/fail).
    const StageResult &nm1 = results[1];
    const StageResult &nm16 = results[5];
    double single_ratio = nm1.runtimeSeconds / base.runtimeSeconds;
    std::printf("\nshape: single NM instance %.1fx slower "
                "(paper: 7-10x) -> %s\n",
                single_ratio,
                single_ratio >= 5 && single_ratio <= 12 ? "OK"
                                                        : "DEVIATES");
    std::printf("shape: 16 NM instances %s on-chip "
                "(paper: 8-16 surpass)\n",
                nm16.runtimeSeconds < base.runtimeSeconds
                    ? "surpass"
                    : "do NOT surpass");
    return 0;
}
