/**
 * @file
 * Figure 12: end-to-end CBIR runtime and energy using a *single*
 * compute level at a time, with 1/2/4 accelerator instances,
 * stage-stacked and normalized to the on-chip baseline.
 *
 * Paper shape: single near-data instances lose to on-chip; at 4
 * instances both near-memory and near-storage pull ahead on
 * runtime and energy.
 *
 * Every (stage, level, instances) cell and every pipelined run is an
 * independent Simulator, so the whole figure fans out concurrently
 * (--jobs N / REACH_SWEEP_JOBS); the output is identical at any job
 * count.
 */

#include <array>
#include <cstdio>

#include "common.hh"

using namespace reach;
using namespace reach::bench;

namespace
{

struct EndToEnd
{
    std::array<double, 3> stage_runtime{};
    double runtime = 0;
    double energy = 0;
};

struct LevelPoint
{
    acc::Level level;
    std::uint32_t instances;
};

/** The true pipelined end-to-end run through the GAM. */
double
runPipelined(acc::Level level, std::uint32_t instances,
             std::uint32_t batches)
{
    core::Mapping m = level == acc::Level::OnChip
                          ? core::Mapping::OnChipOnly
                          : (level == acc::Level::NearMem
                                 ? core::Mapping::NearMemOnly
                                 : core::Mapping::NearStorOnly);
    core::ReachSystem sys(sweepConfig(level, instances));
    cbir::CbirWorkloadModel model{cbir::ScaleConfig{}};
    core::CbirDeployment dep(sys, model, m,
                             level == acc::Level::OnChip ? 0
                                                         : instances);
    return sim::secondsFromTicks(dep.run(batches).makespan);
}

} // namespace

int
main(int argc, char **argv)
{
    sim::setQuiet(true);
    SweepOptions opt = parseSweepOptions(argc, argv);
    const std::uint32_t batches = 4;
    const std::array<Stage, 3> stages = {Stage::FeatureExtraction,
                                         Stage::Shortlist,
                                         Stage::Rerank};

    // The distinct (level, instances) combinations: the on-chip
    // baseline plus near-data levels at 1/2/4 instances.
    std::vector<LevelPoint> combos{{acc::Level::OnChip, 1}};
    for (std::uint32_t n : {1u, 2u, 4u}) {
        combos.push_back({acc::Level::NearMem, n});
        combos.push_back({acc::Level::NearStor, n});
    }

    // Sweep 1: every (combo, stage) cell of the stacked figure.
    auto cells = runSweep(
        combos.size() * stages.size(), opt, [&](std::size_t i) {
            const LevelPoint &p = combos[i / stages.size()];
            return runStage(stages[i % stages.size()], p.level,
                            p.instances, batches);
        });

    // Sweep 2: the pipelined end-to-end run per combo.
    auto piped =
        runSweep(combos.size(), opt, [&](std::size_t i) {
            return runPipelined(combos[i].level,
                                combos[i].instances, batches);
        });

    auto stacked = [&](std::size_t combo) {
        EndToEnd out;
        for (std::size_t s = 0; s < stages.size(); ++s) {
            const StageResult &r = cells[combo * stages.size() + s];
            out.stage_runtime[s] = r.runtimeSeconds;
            out.runtime += r.runtimeSeconds;
            out.energy += r.energyJoules;
        }
        return out;
    };

    EndToEnd base = stacked(0);
    double base_piped = piped[0];

    printHeader("Figure 12: end-to-end CBIR on a single compute "
                "level (normalized to on-chip)");
    std::printf("on-chip baseline: %.2f ms, %.2f J\n",
                base.runtime * 1e3, base.energy);
    std::printf("%-6s %-12s %9s %9s %9s %10s %10s %12s\n", "ACCs",
                "level", "FeatExt", "ShortList", "Rerank",
                "runtime(x)", "energy(x)", "pipelined(x)");

    auto row = [&](std::uint32_t n, std::size_t combo) {
        EndToEnd r = combo == 0 ? base : stacked(combo);
        double p = combo == 0 ? base_piped : piped[combo];
        std::printf("%-6u %-12s %9.2f %9.2f %9.2f %10.2f %10.2f "
                    "%12.2f\n",
                    n, acc::levelName(combos[combo].level),
                    r.stage_runtime[0] / base.runtime,
                    r.stage_runtime[1] / base.runtime,
                    r.stage_runtime[2] / base.runtime,
                    r.runtime / base.runtime,
                    r.energy / base.energy, p / base_piped);
    };

    // combos[] holds {OC}, {NM,1},{NS,1},{NM,2},{NS,2},{NM,4},{NS,4}.
    for (std::uint32_t i = 0; i < 3; ++i) {
        std::uint32_t n = 1u << i;
        row(n, 0);
        row(n, 1 + 2 * i);
        row(n, 2 + 2 * i);
    }

    EndToEnd nm4 = stacked(5);
    EndToEnd ns4 = stacked(6);
    std::printf("\nshape: 4-instance near-mem %s on-chip; "
                "near-stor %s on-chip (paper: both gain at 4)\n",
                nm4.runtime < base.runtime ? "beats" : "trails",
                ns4.runtime < base.runtime ? "beats" : "trails");
    return 0;
}
