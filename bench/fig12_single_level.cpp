/**
 * @file
 * Figure 12: end-to-end CBIR runtime and energy using a *single*
 * compute level at a time, with 1/2/4 accelerator instances,
 * stage-stacked and normalized to the on-chip baseline.
 *
 * Paper shape: single near-data instances lose to on-chip; at 4
 * instances both near-memory and near-storage pull ahead on
 * runtime and energy.
 */

#include <array>
#include <cstdio>

#include "common.hh"

using namespace reach;
using namespace reach::bench;

namespace
{

struct EndToEnd
{
    std::array<double, 3> stage_runtime{};
    double runtime = 0;
    double energy = 0;
};

EndToEnd
runLevel(acc::Level level, std::uint32_t instances,
         std::uint32_t batches)
{
    EndToEnd out;
    const std::array<Stage, 3> stages = {Stage::FeatureExtraction,
                                         Stage::Shortlist,
                                         Stage::Rerank};
    for (std::size_t s = 0; s < stages.size(); ++s) {
        StageResult r = runStage(stages[s], level, instances, batches);
        out.stage_runtime[s] = r.runtimeSeconds;
        out.runtime += r.runtimeSeconds;
        out.energy += r.energyJoules;
    }
    return out;
}

/** The true pipelined end-to-end run through the GAM. */
double
runPipelined(acc::Level level, std::uint32_t instances,
             std::uint32_t batches)
{
    core::Mapping m = level == acc::Level::OnChip
                          ? core::Mapping::OnChipOnly
                          : (level == acc::Level::NearMem
                                 ? core::Mapping::NearMemOnly
                                 : core::Mapping::NearStorOnly);
    core::ReachSystem sys(sweepConfig(level, instances));
    cbir::CbirWorkloadModel model{cbir::ScaleConfig{}};
    core::CbirDeployment dep(sys, model, m,
                             level == acc::Level::OnChip ? 0
                                                         : instances);
    return sim::secondsFromTicks(dep.run(batches).makespan);
}

} // namespace

int
main()
{
    sim::setQuiet(true);
    const std::uint32_t batches = 4;

    EndToEnd base = runLevel(acc::Level::OnChip, 1, batches);

    printHeader("Figure 12: end-to-end CBIR on a single compute "
                "level (normalized to on-chip)");
    std::printf("on-chip baseline: %.2f ms, %.2f J\n",
                base.runtime * 1e3, base.energy);
    std::printf("%-6s %-12s %9s %9s %9s %10s %10s %12s\n", "ACCs",
                "level", "FeatExt", "ShortList", "Rerank",
                "runtime(x)", "energy(x)", "pipelined(x)");

    double base_piped = runPipelined(acc::Level::OnChip, 1, batches);
    auto row = [&](std::uint32_t n, acc::Level level) {
        EndToEnd r = level == acc::Level::OnChip
                         ? base
                         : runLevel(level, n, batches);
        double piped = level == acc::Level::OnChip
                           ? base_piped
                           : runPipelined(level, n, batches);
        std::printf("%-6u %-12s %9.2f %9.2f %9.2f %10.2f %10.2f "
                    "%12.2f\n",
                    n, acc::levelName(level),
                    r.stage_runtime[0] / base.runtime,
                    r.stage_runtime[1] / base.runtime,
                    r.stage_runtime[2] / base.runtime,
                    r.runtime / base.runtime,
                    r.energy / base.energy, piped / base_piped);
    };

    for (std::uint32_t n : {1u, 2u, 4u}) {
        row(n, acc::Level::OnChip);
        row(n, acc::Level::NearMem);
        row(n, acc::Level::NearStor);
    }

    EndToEnd nm4 = runLevel(acc::Level::NearMem, 4, batches);
    EndToEnd ns4 = runLevel(acc::Level::NearStor, 4, batches);
    std::printf("\nshape: 4-instance near-mem %s on-chip; "
                "near-stor %s on-chip (paper: both gain at 4)\n",
                nm4.runtime < base.runtime ? "beats" : "trails",
                ns4.runtime < base.runtime ? "beats" : "trails");
    return 0;
}
