#include "common.hh"

#include <cstdlib>
#include <cstring>
#include <memory>

namespace reach::bench
{

namespace
{

unsigned
parseJobsValue(const char *text, const char *origin)
{
    char *end = nullptr;
    long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || v < 0 || v > 4096)
        sim::fatal("invalid ", origin, " value '", text,
                   "' (expected an integer job count)");
    return static_cast<unsigned>(v);
}

} // namespace

SweepOptions
parseSweepOptions(int argc, char **argv)
{
    SweepOptions opt;
    bool from_flag = false;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--jobs") == 0) {
            if (i + 1 >= argc)
                sim::fatal("--jobs expects a value");
            opt.jobs = parseJobsValue(argv[++i], "--jobs");
            from_flag = true;
        } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
            opt.jobs = parseJobsValue(arg + 7, "--jobs");
            from_flag = true;
        }
    }
    if (!from_flag) {
        if (const char *env = std::getenv("REACH_SWEEP_JOBS")) {
            if (*env != '\0')
                opt.jobs = parseJobsValue(env, "REACH_SWEEP_JOBS");
        }
    }
    return opt;
}

namespace
{

/** One batch of @p stage as a GAM job at @p level. */
gam::JobDesc
stageJob(Stage stage, acc::Level level, std::uint32_t instances,
         core::ReachSystem &sys, const cbir::CbirWorkloadModel &model,
         std::function<void(sim::Tick)> on_done)
{
    gam::JobDesc job;
    job.label = "stage-batch";
    job.onComplete = std::move(on_done);

    const auto &scale = model.scale();
    bool onchip = level == acc::Level::OnChip;

    auto gam_ids = [&]() -> std::vector<std::uint32_t> {
        switch (level) {
          case acc::Level::OnChip:
            return {sys.onChipGamId()};
          case acc::Level::NearMem:
            return sys.aimGamIds();
          default:
            return sys.nsGamIds();
        }
    }();

    auto kernel_for = [&](const char *family) {
        return std::string(family) + (onchip ? "-VU9P" : "-ZCU9");
    };

    switch (stage) {
      case Stage::FeatureExtraction:
        if (onchip) {
            gam::TaskDesc t;
            t.label = "fe";
            t.kernelTemplate = kernel_for("CNN");
            t.level = level;
            t.work = model.featureExtractionBatch();
            t.pinnedAcc = gam_ids[0];
            t.inbound.push_back({gam::InboundTransfer::fromHost,
                                 model.queryImageBytes() *
                                     scale.batchSize});
            job.tasks.push_back(std::move(t));
        } else {
            for (std::uint32_t i = 0; i < scale.batchSize; ++i) {
                gam::TaskDesc t;
                t.label = "fe" + std::to_string(i);
                t.kernelTemplate = kernel_for("CNN");
                t.level = level;
                t.work = model.featureExtractionSingle();
                t.pinnedAcc = gam_ids[i % instances];
                t.inbound.push_back({gam::InboundTransfer::fromHost,
                                     model.queryImageBytes()});
                job.tasks.push_back(std::move(t));
            }
        }
        break;

      case Stage::Shortlist: {
        std::uint32_t n = onchip ? 1 : instances;
        for (std::uint32_t i = 0; i < n; ++i) {
            gam::TaskDesc t;
            t.label = "sl" + std::to_string(i);
            t.kernelTemplate = kernel_for("GeMM");
            t.level = level;
            t.work = model.shortlistBatch(n);
            t.pinnedAcc = gam_ids[i];
            t.inbound.push_back(
                {gam::InboundTransfer::fromHost,
                 model.featureVectorBytes() * scale.batchSize});
            job.tasks.push_back(std::move(t));
        }
        break;
      }

      case Stage::Rerank: {
        std::uint32_t n = onchip ? 1 : instances;
        for (std::uint32_t i = 0; i < n; ++i) {
            gam::TaskDesc t;
            t.label = "rr" + std::to_string(i);
            t.kernelTemplate = kernel_for("KNN");
            t.level = level;
            t.work = model.rerankBatch(n);
            t.pinnedAcc = gam_ids[i];
            t.inbound.push_back(
                {gam::InboundTransfer::fromHost,
                 std::uint64_t(scale.batchSize) *
                     scale.rerankCandidates * 4 / n});

            // Data paths: rerank gathers from the SSD array.
            if (level == acc::Level::OnChip) {
                acc::Path p;
                for (std::uint32_t s = 0; s < sys.config().numSsds;
                     ++s) {
                    p.from(&sys.ssdAt(s), &sys.ssdHostLink(s));
                }
                p.via(sys.hostIoUplink())
                    .via(sys.hostDramLink())
                    .via(sys.cacheLink());
                t.work.inputOverride = p;
                t.work.inputThrottleBw = sys.config().onChipGatherBw;
            } else if (level == acc::Level::NearMem) {
                acc::Path p;
                for (std::uint32_t s = 0; s < sys.config().numSsds;
                     ++s) {
                    p.from(&sys.ssdAt(s), &sys.ssdHostLink(s));
                }
                p.via(sys.hostIoUplink())
                    .via(sys.hostDramLink())
                    .via(sys.aimLocalLink(i));
                t.work.inputOverride = p;
                t.work.inputThrottleBw = sys.config().nmGatherBw;
            } else {
                t.work.inputThrottleBw = sys.config().nsGatherBw;
            }
            job.tasks.push_back(std::move(t));
        }
        break;
      }
    }
    return job;
}

} // namespace

StageResult
runStage(Stage stage, acc::Level level, std::uint32_t instances,
         std::uint32_t batches, const cbir::ScaleConfig &scale)
{
    core::ReachSystem sys(
        systemForScale(sweepConfig(level, instances), scale));
    cbir::CbirWorkloadModel model(scale);

    std::uint32_t done = 0;
    for (std::uint32_t b = 0; b < batches; ++b) {
        sys.gam().submitJob(stageJob(
            stage, level, instances, sys, model,
            [&done](sim::Tick) { ++done; }));
    }
    sys.runUntilIdle();
    if (done != batches)
        sim::panic("stage run incomplete: ", done, "/", batches);

    StageResult res;
    res.runtimeSeconds =
        sim::secondsFromTicks(sys.simulator().now());
    res.breakdown = sys.measureEnergy();
    res.energyJoules = res.breakdown.total();
    return res;
}

} // namespace reach::bench
