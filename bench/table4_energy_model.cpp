/**
 * @file
 * Table IV: the energy model's components, their real-world
 * references, and the constants this reproduction uses in their
 * place.
 */

#include <cstdio>

#include "common.hh"
#include "energy/energy_model.hh"
#include "mem/dram_timings.hh"
#include "storage/ssd.hh"

using namespace reach;

int
main()
{
    sim::setQuiet(true);
    bench::printHeader("Table IV: energy model tools and references "
                       "-> constants used here");

    mem::DramTimings dram;
    storage::SsdConfig ssd;
    energy::BulkEnergyRates rates;
    mem::CacheConfig cache;

    std::printf("%-22s %-34s %s\n", "component", "paper reference",
                "this model");
    std::printf("%-22s %-34s Table III powers x active time + "
                "device static power\n",
                "FPGA accelerators", "SDAccel 2019.1 + XPE");
    std::printf("%-22s %-34s %.0f pJ per access + %.1f pJ/B port "
                "traffic\n",
                "Cache", "CACTI 6.5", cache.accessEnergyPj,
                rates.cachePjPerByte);
    std::printf("%-22s %-34s %.0f pJ ACT/PRE, %.0f/%.0f pJ per 64B "
                "RD/WR, %.2f W/rank background\n",
                "DRAM", "Micron DDR4 power calculator",
                dram.actPreEnergyPj, dram.readBurstEnergyPj,
                dram.writeBurstEnergyPj, dram.backgroundPowerW);
    std::printf("%-22s %-34s %.1f W active / %.1f W idle per "
                "drive\n",
                "Storage", "Seagate Nytro NVMe datasheet",
                ssd.activePowerW, ssd.idlePowerW);
    std::printf("%-22s %-34s %.1f pJ/B channel + switch traffic\n",
                "Interconnect", "IDT switch + PCIe + DDR channels",
                rates.mcPjPerByte);
    std::printf("%-22s %-34s %.1f pJ/B across lanes (incl. "
                "SerDes)\n",
                "PCIe", "PCIe gen3 x16 link budget",
                rates.pciePjPerByte);
    std::printf("\nCPU energy is excluded, as in the paper (the host "
                "core idles during acceleration).\n");
    return 0;
}
