/**
 * @file
 * Figure 13: the headline comparison. CBIR with four acceleration
 * options — on-chip only, near-memory only, near-storage only, and
 * the proper ReACH mapping (feature extraction on-chip, short-list
 * near memory, rerank near storage).
 *
 * (a) throughput improvement     — paper: ReACH ~4.5x over on-chip;
 * (b) query response latency     — paper: ~2.2x improvement;
 * (c) energy per component       — paper: ~52% total reduction.
 */

#include <cstdio>

#include "common.hh"

using namespace reach;
using namespace reach::bench;
using core::Mapping;

namespace
{

struct Option
{
    Mapping mapping;
    core::RunResult throughput;
    core::RunResult latency;
    energy::EnergyBreakdown energy;
};

Option
runOption(Mapping m)
{
    cbir::CbirWorkloadModel model{cbir::ScaleConfig{}};

    Option out;
    out.mapping = m;
    {
        core::ReachSystem sys{core::SystemConfig{}};
        core::CbirDeployment dep(sys, model, m);
        out.latency = dep.run(1);
    }
    {
        core::ReachSystem sys{core::SystemConfig{}};
        core::CbirDeployment dep(sys, model, m);
        out.throughput = dep.run(12);
        out.energy = sys.measureEnergy();
    }
    return out;
}

} // namespace

int
main()
{
    sim::setQuiet(true);

    Option opts[4] = {runOption(Mapping::OnChipOnly),
                      runOption(Mapping::NearMemOnly),
                      runOption(Mapping::NearStorOnly),
                      runOption(Mapping::Reach)};
    const Option &base = opts[0];

    printHeader("Figure 13 (a): throughput improvement over on-chip");
    for (const auto &o : opts) {
        std::printf("%-10s %8.2f batches/s   %5.2fx\n",
                    core::mappingName(o.mapping),
                    o.throughput.throughputBatchesPerSec(),
                    o.throughput.throughputBatchesPerSec() /
                        base.throughput.throughputBatchesPerSec());
    }

    printHeader("Figure 13 (b): query response latency improvement");
    for (const auto &o : opts) {
        std::printf("%-10s %8.2f ms   %5.2fx\n",
                    core::mappingName(o.mapping),
                    sim::secondsFromTicks(o.latency.meanLatency) * 1e3,
                    static_cast<double>(base.latency.meanLatency) /
                        static_cast<double>(o.latency.meanLatency));
    }

    printHeader("Figure 13 (c): energy per component (12 batches)");
    std::printf("%-10s", "option");
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(
                 energy::Component::NumComponents);
         ++c) {
        std::printf(" %11s",
                    energy::componentName(
                        static_cast<energy::Component>(c)));
    }
    std::printf(" %10s\n", "total(J)");
    for (const auto &o : opts) {
        std::printf("%-10s", core::mappingName(o.mapping));
        for (std::size_t c = 0;
             c < static_cast<std::size_t>(
                     energy::Component::NumComponents);
             ++c) {
            std::printf(" %11.2f",
                        o.energy[static_cast<energy::Component>(c)]);
        }
        std::printf(" %10.2f\n", o.energy.total());
    }

    double thr_gain = opts[3].throughput.throughputBatchesPerSec() /
                      base.throughput.throughputBatchesPerSec();
    double lat_gain =
        static_cast<double>(base.latency.meanLatency) /
        static_cast<double>(opts[3].latency.meanLatency);
    double energy_red =
        1.0 - opts[3].energy.total() / base.energy.total();

    std::printf("\nheadline: ReACH throughput %.2fx (paper 4.5x), "
                "latency %.2fx (paper 2.2x), energy -%.0f%% "
                "(paper -52%%)\n",
                thr_gain, lat_gain, 100.0 * energy_red);
    return 0;
}
