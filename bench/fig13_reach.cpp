/**
 * @file
 * Figure 13: the headline comparison. CBIR with four acceleration
 * options — on-chip only, near-memory only, near-storage only, and
 * the proper ReACH mapping (feature extraction on-chip, short-list
 * near memory, rerank near storage).
 *
 * (a) throughput improvement     — paper: ReACH ~4.5x over on-chip;
 * (b) query response latency     — paper: ~2.2x improvement;
 * (c) energy per component       — paper: ~52% total reduction.
 *
 * The latency and throughput runs of each option are independent
 * simulations, so all eight fan out concurrently (--jobs N /
 * REACH_SWEEP_JOBS); the output is identical at any job count.
 */

#include <cstdio>

#include "common.hh"

using namespace reach;
using namespace reach::bench;
using core::Mapping;

namespace
{

struct Option
{
    Mapping mapping;
    core::RunResult throughput;
    core::RunResult latency;
    energy::EnergyBreakdown energy;
};

/** One simulation: point i = mapping i/2, odd i = throughput run. */
Option
runPoint(std::size_t i)
{
    const Mapping mappings[4] = {Mapping::OnChipOnly,
                                 Mapping::NearMemOnly,
                                 Mapping::NearStorOnly, Mapping::Reach};
    cbir::CbirWorkloadModel model{cbir::ScaleConfig{}};

    Option out;
    out.mapping = mappings[i / 2];
    core::ReachSystem sys{core::SystemConfig{}};
    core::CbirDeployment dep(sys, model, out.mapping);
    if (i % 2 == 0) {
        out.latency = dep.run(1);
    } else {
        out.throughput = dep.run(12);
        out.energy = sys.measureEnergy();
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    sim::setQuiet(true);
    SweepOptions opt = parseSweepOptions(argc, argv);

    auto points = runSweep(8, opt, runPoint);
    Option opts[4];
    for (std::size_t m = 0; m < 4; ++m) {
        opts[m] = points[2 * m + 1];
        opts[m].latency = points[2 * m].latency;
    }
    const Option &base = opts[0];

    printHeader("Figure 13 (a): throughput improvement over on-chip");
    for (const auto &o : opts) {
        std::printf("%-10s %8.2f batches/s   %5.2fx\n",
                    core::mappingName(o.mapping),
                    o.throughput.throughputBatchesPerSec(),
                    o.throughput.throughputBatchesPerSec() /
                        base.throughput.throughputBatchesPerSec());
    }

    printHeader("Figure 13 (b): query response latency improvement");
    for (const auto &o : opts) {
        std::printf("%-10s %8.2f ms   %5.2fx\n",
                    core::mappingName(o.mapping),
                    sim::secondsFromTicks(o.latency.meanLatency) * 1e3,
                    static_cast<double>(base.latency.meanLatency) /
                        static_cast<double>(o.latency.meanLatency));
    }

    printHeader("Figure 13 (c): energy per component (12 batches)");
    std::printf("%-10s", "option");
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(
                 energy::Component::NumComponents);
         ++c) {
        std::printf(" %11s",
                    energy::componentName(
                        static_cast<energy::Component>(c)));
    }
    std::printf(" %10s\n", "total(J)");
    for (const auto &o : opts) {
        std::printf("%-10s", core::mappingName(o.mapping));
        for (std::size_t c = 0;
             c < static_cast<std::size_t>(
                     energy::Component::NumComponents);
             ++c) {
            std::printf(" %11.2f",
                        o.energy[static_cast<energy::Component>(c)]);
        }
        std::printf(" %10.2f\n", o.energy.total());
    }

    double thr_gain = opts[3].throughput.throughputBatchesPerSec() /
                      base.throughput.throughputBatchesPerSec();
    double lat_gain =
        static_cast<double>(base.latency.meanLatency) /
        static_cast<double>(opts[3].latency.meanLatency);
    double energy_red =
        1.0 - opts[3].energy.total() / base.energy.total();

    std::printf("\nheadline: ReACH throughput %.2fx (paper 4.5x), "
                "latency %.2fx (paper 2.2x), energy -%.0f%% "
                "(paper -52%%)\n",
                thr_gain, lat_gain, 100.0 * energy_red);

    // Shortlist-scan ablation on the full ReACH mapping: centroid
    // storage precision (fp32 vs fp16) shrinks the scan stream, and
    // the placement knob moves it from the AIM DIMMs onto HBM
    // stacks (systemForScale keeps the timing links in sync). All
    // variants fan out through the deterministic sweep runner.
    struct Variant
    {
        const char *name;
        cbir::ShortlistPrecision precision;
        cbir::ScanPlacement placement;
    };
    using cbir::ShortlistPrecision;
    const std::vector<Variant> variants{
        {"fp32+ddr", ShortlistPrecision::Fp32, cbir::ScanPlacement::Ddr},
        {"fp16+ddr", ShortlistPrecision::Fp16, cbir::ScanPlacement::Ddr},
        {"fp32+hbm", ShortlistPrecision::Fp32, cbir::ScanPlacement::Hbm},
        {"fp16+hbm", ShortlistPrecision::Fp16, cbir::ScanPlacement::Hbm},
    };
    struct VariantRun
    {
        core::RunResult pipeline;
        StageResult shortlist;
    };
    auto vruns = runSweep(variants.size(), opt, [&](std::size_t i) {
        // A finer coarse quantizer (64k centroids vs the default
        // 1000) is where billion-scale deployments land, and where
        // the centroid stream is a first-order term of the scan —
        // at 1000 centroids the cell-info traffic buries it.
        cbir::ScaleConfig scale =
            scaleWithPrecision(cbir::ScaleConfig{},
                               variants[i].precision);
        scale.numCentroids = 65'536;
        scale.shortlistPlacement = variants[i].placement;
        VariantRun out;
        // Stage-isolated scan on the near-memory modules, where the
        // placement swap changes the link the bytes cross...
        out.shortlist = runStage(Stage::Shortlist,
                                 acc::Level::NearMem, 4, 12, scale);
        // ...and the full pipeline, where the effect is damped by
        // whichever stage bounds the steady state.
        cbir::CbirWorkloadModel model{scale};
        core::ReachSystem sys{
            systemForScale(core::SystemConfig{}, scale)};
        core::CbirDeployment dep(sys, model, Mapping::Reach);
        out.pipeline = dep.run(12);
        return out;
    });

    printHeader("Shortlist scan: centroid precision x placement "
                "(ReACH mapping, 64k centroids, 12 batches)");
    std::printf("%-10s %14s %12s %14s %12s\n", "variant",
                "scan(ms)", "vs base", "batches/s", "vs base");
    for (std::size_t i = 0; i < variants.size(); ++i) {
        std::printf(
            "%-10s %14.2f %11.2fx %14.2f %11.2fx\n",
            variants[i].name, vruns[i].shortlist.runtimeSeconds * 1e3,
            vruns[0].shortlist.runtimeSeconds /
                vruns[i].shortlist.runtimeSeconds,
            vruns[i].pipeline.throughputBatchesPerSec(),
            vruns[i].pipeline.throughputBatchesPerSec() /
                vruns[0].pipeline.throughputBatchesPerSec());
    }
    return 0;
}
