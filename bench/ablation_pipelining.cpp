/**
 * @file
 * Ablation: the GAM's cross-job pipelining (paper §II-D: "the GAM
 * assigns tasks from the next job to accelerators without waiting
 * for all the tasks in the previous job to complete"). We run the
 * ReACH mapping with pipelining on and off and report throughput.
 */

#include <cstdio>

#include "common.hh"

using namespace reach;
using namespace reach::bench;

namespace
{

core::RunResult
runReach(bool pipelining, std::uint32_t batches)
{
    core::SystemConfig cfg;
    cfg.gam.crossJobPipelining = pipelining;
    core::ReachSystem sys(cfg);
    cbir::CbirWorkloadModel model{cbir::ScaleConfig{}};
    core::CbirDeployment dep(sys, model, core::Mapping::Reach);
    return dep.run(batches);
}

} // namespace

int
main(int argc, char **argv)
{
    sim::setQuiet(true);
    SweepOptions opt = parseSweepOptions(argc, argv);
    printHeader("Ablation: GAM cross-job pipelining (ReACH mapping)");
    std::printf("%-14s %10s %16s %14s\n", "pipelining", "batches",
                "throughput(b/s)", "mean lat (ms)");

    const std::uint32_t batch_counts[3] = {4u, 8u, 16u};
    // Points: (batches index) x {on, off}.
    auto results = runSweep(6, opt, [&](std::size_t i) {
        return runReach(i % 2 == 0, batch_counts[i / 2]);
    });

    for (std::size_t b = 0; b < 3; ++b) {
        std::uint32_t batches = batch_counts[b];
        const core::RunResult &on = results[2 * b];
        const core::RunResult &off = results[2 * b + 1];
        std::printf("%-14s %10u %16.2f %14.2f\n", "on", batches,
                    on.throughputBatchesPerSec(),
                    sim::secondsFromTicks(on.meanLatency) * 1e3);
        std::printf("%-14s %10u %16.2f %14.2f\n", "off", batches,
                    off.throughputBatchesPerSec(),
                    sim::secondsFromTicks(off.meanLatency) * 1e3);
        std::printf("%-14s %10s %15.2fx\n", "gain", "",
                    on.throughputBatchesPerSec() /
                        off.throughputBatchesPerSec());
    }
    return 0;
}
