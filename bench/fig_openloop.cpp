/**
 * @file
 * Open-loop service study: the closed-loop figures (fig12/fig13)
 * measure capacity, this harness measures what a deployed front-end
 * delivers when requests arrive on their own clock. For each mapping
 * it measures closed-loop capacity, then sweeps the offered Poisson
 * rate as a fraction of it through the QueryService (bounded queue,
 * deadline-aware batch former, degradation controller, retry with
 * backoff), reporting tail latency (exact p50/p95/p99/p99.9),
 * goodput-under-SLO, and the explicit shed/degraded/retried/failed
 * accounting.
 *
 * Self-checking gates (exit non-zero on violation; recorded in the
 * JSON artifact with --out=FILE):
 *  - accounting: on every point — faulted ones included — submitted
 *    requests terminate explicitly: completed + failed + shed ==
 *    submitted (no silent drops, no wedges);
 *  - p99 monotone: completed-request p99 is non-decreasing in the
 *    offered rate up to 1.2x capacity (beyond saturation the bounded
 *    queue caps waiting time, so the completed-request tail
 *    plateaus while shed absorbs the excess);
 *  - degradation: at 1.2x capacity the controller's goodput-under-SLO
 *    is strictly above the same run with degradation disabled;
 *  - determinism: the whole rate sweep is bitwise identical at
 *    --jobs 1 and --jobs 8 (arrival draws happen in event order
 *    inside each point's own Simulator).
 *
 * bench/run_openloop.sh wraps this into BENCH_openloop.json at the
 * repo root; --smoke shrinks the sweep to CI size. Seeded via
 * REACH_ARRIVAL_SEED / REACH_FAULT_SEED.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common.hh"
#include "fault/fault.hh"
#include "service/query_service.hh"

using namespace reach;
using namespace reach::bench;

namespace
{

/** The service-study workload: PQ rerank on so the refine knob is a
 *  real degradation lever, everything else the paper's scale. */
cbir::ScaleConfig
serviceScale()
{
    cbir::ScaleConfig scale;
    scale.pq.enabled = true;
    scale.pq.m = 32;
    scale.pq.bits = 8;
    scale.pq.refine = 128;
    return scale;
}

/** Fixed service knobs shared by every point (rate varies). */
service::ServiceConfig
baseServiceConfig(std::uint64_t requests, std::uint64_t seed)
{
    service::ServiceConfig cfg;
    cfg.totalRequests = requests;
    cfg.arrival.seed = seed;
    cfg.queueCapacity = 64;
    cfg.sloLatency = 150 * sim::tickPerMs;
    cfg.formTimeout = 4 * sim::tickPerMs;
    cfg.initialLatencyEstimate = 10 * sim::tickPerMs;
    cfg.maxInFlight = 4;
    cfg.maxBatchRetries = 2;
    cfg.retryBackoff = 500 * sim::tickPerUs;
    return cfg;
}

struct PointSpec
{
    core::Mapping mapping;
    double rateMultiplier;
    bool degrade = true;
    service::ArrivalKind kind = service::ArrivalKind::Poisson;
    /** Scales every fault probability (0 = fault-free). */
    double faultIntensity = 0;
};

fault::FaultPlan
planAtIntensity(double f, std::uint64_t seed)
{
    fault::FaultPlan plan;
    plan.seed = seed;
    plan.accCrashProb = f;
    plan.accHangProb = f / 2;
    plan.pollDropProb = std::min(4 * f, 0.9);
    plan.linkStallProb = f / 4;
    plan.ssdTimeoutProb = f;
    return plan;
}

double
closedLoopCapacityQps(core::Mapping mapping, std::uint32_t batches,
                      const cbir::ScaleConfig &scale)
{
    core::ReachSystem sys(systemForScale({}, scale));
    cbir::CbirWorkloadModel model(scale);
    core::CbirDeployment dep(sys, model, mapping);
    core::RunResult r = dep.run(batches);
    return r.queriesPerSec(scale.batchSize);
}

service::ServiceResult
runPoint(const PointSpec &spec, double capacityQps,
         std::uint64_t requests, std::uint64_t arrival_seed,
         std::uint64_t fault_seed)
{
    cbir::ScaleConfig scale = serviceScale();
    core::SystemConfig sc = systemForScale({}, scale);
    if (spec.faultIntensity > 0) {
        sc.faultPlan =
            planAtIntensity(spec.faultIntensity, fault_seed);
        sc.gam.recoveryDelay = 5 * sim::tickPerMs;
        // Tight recovery budget: exhausted attempts surface as
        // explicit job failures, exercising the service retry path.
        sc.gam.maxTaskAttempts = 2;
        sc.gam.crossLevelFailover = false;
    }
    core::ReachSystem sys(sc);

    service::ServiceConfig cfg =
        baseServiceConfig(requests, arrival_seed);
    cfg.arrival.kind = spec.kind;
    cfg.arrival.ratePerSec = capacityQps * spec.rateMultiplier;
    cfg.degrade = spec.degrade;

    service::QueryService svc(sys, scale, spec.mapping, cfg);
    return svc.run();
}

void
printRow(const char *tag, const PointSpec &s,
         const service::ServiceResult &r)
{
    std::printf(
        "%-8s %-10s %5.2fx %9.0f %9.0f %5lu %5lu %5lu %5lu "
        "%8.2f %8.2f %8.2f %6lu %3u %7.1f\n",
        tag, core::mappingName(s.mapping), s.rateMultiplier,
        r.offeredQps(), r.goodputQps(),
        static_cast<unsigned long>(r.completed),
        static_cast<unsigned long>(r.failed),
        static_cast<unsigned long>(r.shedTotal()),
        static_cast<unsigned long>(r.sloMisses),
        sim::secondsFromTicks(r.p50) * 1e3,
        sim::secondsFromTicks(r.p99) * 1e3,
        sim::secondsFromTicks(r.p999) * 1e3,
        static_cast<unsigned long>(r.degradedBatches),
        r.maxDegradeLevel,
        sim::secondsFromTicks(r.timeDegraded) * 1e3);
}

void
jsonRow(std::FILE *f, const char *section, const PointSpec &s,
        const service::ServiceResult &r, bool last)
{
    std::fprintf(
        f,
        "    {\"section\": \"%s\", \"mapping\": \"%s\", "
        "\"rate_multiplier\": %.2f, \"arrival\": \"%s\", "
        "\"degrade\": %s, \"fault_intensity\": %.3f,\n"
        "     \"submitted\": %llu, \"completed\": %llu, "
        "\"failed\": %llu, \"shed_queue_full\": %llu, "
        "\"shed_deadline\": %llu, \"slo_misses\": %llu,\n"
        "     \"offered_qps\": %.1f, \"goodput_qps\": %.1f, "
        "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, "
        "\"p999_ms\": %.3f, \"mean_ms\": %.3f,\n"
        "     \"batches_submitted\": %llu, "
        "\"batches_retried\": %llu, \"batches_failed\": %llu, "
        "\"degraded_batches\": %llu, \"max_degrade_level\": %u, "
        "\"time_degraded_ms\": %.3f}%s\n",
        section, core::mappingName(s.mapping), s.rateMultiplier,
        service::arrivalKindName(s.kind),
        s.degrade ? "true" : "false", s.faultIntensity,
        static_cast<unsigned long long>(r.submitted),
        static_cast<unsigned long long>(r.completed),
        static_cast<unsigned long long>(r.failed),
        static_cast<unsigned long long>(r.shedQueueFull),
        static_cast<unsigned long long>(r.shedDeadline),
        static_cast<unsigned long long>(r.sloMisses),
        r.offeredQps(), r.goodputQps(),
        sim::secondsFromTicks(r.p50) * 1e3,
        sim::secondsFromTicks(r.p95) * 1e3,
        sim::secondsFromTicks(r.p99) * 1e3,
        sim::secondsFromTicks(r.p999) * 1e3,
        r.meanLatency / sim::tickPerMs,
        static_cast<unsigned long long>(r.batchesSubmitted),
        static_cast<unsigned long long>(r.batchesRetried),
        static_cast<unsigned long long>(r.batchesFailed),
        static_cast<unsigned long long>(r.degradedBatches),
        r.maxDegradeLevel,
        sim::secondsFromTicks(r.timeDegraded) * 1e3,
        last ? "" : ",");
}

} // namespace

int
main(int argc, char **argv)
{
    sim::setQuiet(true);
    SweepOptions opt = parseSweepOptions(argc, argv);
    bool smoke = false;
    std::string out_path, git_sha = "unknown";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strncmp(argv[i], "--out=", 6) == 0)
            out_path = argv[i] + 6;
        else if (std::strncmp(argv[i], "--git-sha=", 10) == 0)
            git_sha = argv[i] + 10;
    }

    const std::uint64_t arrival_seed = service::envArrivalSeed();
    const std::uint64_t fault_seed = fault::envFaultSeed();
    const std::uint64_t requests = smoke ? 160 : 448;
    const double fault_intensity = 0.08;

    const core::Mapping mappings[2] = {core::Mapping::Reach,
                                       core::Mapping::OnChipOnly};
    std::vector<double> mults = {0.5, 0.9, 1.2};
    if (!smoke) {
        mults = {0.5, 0.8, 0.9, 1.0, 1.2, 2.0};
    }
    /** p99-monotone gate range: stops short of saturation, where
     *  admission control and the degradation controller deliberately
     *  bend the completed-request tail back down. */
    const double monotone_max_mult = 0.9;

    // ----- Closed-loop capacity anchors the offered-rate axis -----
    // Also measured per degrade level (Reach): the headroom each
    // quality step buys is what the controller trades on.
    auto ladder = service::degradeLadder(serviceScale(), 3);
    auto capacities = runSweep(2 + ladder.size(), opt,
                               [&](std::size_t i) {
        if (i < 2) {
            return closedLoopCapacityQps(mappings[i], smoke ? 4 : 8,
                                         serviceScale());
        }
        return closedLoopCapacityQps(core::Mapping::Reach,
                                     smoke ? 4 : 8, ladder[i - 2]);
    });

    printHeader("Closed-loop capacity (queries/s)");
    for (std::size_t i = 0; i < 2; ++i) {
        std::printf("%-12s %10.0f\n", core::mappingName(mappings[i]),
                    capacities[i]);
    }
    for (std::size_t l = 0; l < ladder.size(); ++l) {
        std::printf("ReACH-L%zu     %10.0f%s\n", l,
                    capacities[2 + l],
                    l == 0 ? "  (= full quality)" : "");
    }

    // ----- Rate sweep x mapping (the determinism-gated section) ----
    std::vector<PointSpec> sweep_specs;
    for (std::size_t mi = 0; mi < 2; ++mi) {
        for (double mult : mults)
            sweep_specs.push_back({mappings[mi], mult});
    }
    auto runRateSweep = [&](unsigned jobs) {
        SweepOptions o;
        o.jobs = jobs;
        return runSweep(sweep_specs.size(), o, [&](std::size_t i) {
            const PointSpec &s = sweep_specs[i];
            double cap =
                capacities[s.mapping == mappings[0] ? 0 : 1];
            return runPoint(s, cap, requests, arrival_seed,
                            fault_seed);
        });
    };
    auto results = runRateSweep(1);
    auto results_j8 = runRateSweep(8);

    bool pass_determinism = true;
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i] != results_j8[i])
            pass_determinism = false;
    }

    printHeader("Open-loop rate sweep (arrival seed " +
                std::to_string(arrival_seed) + ")");
    std::printf("%-8s %-10s %6s %9s %9s %5s %5s %5s %5s %8s %8s "
                "%8s %6s %3s %7s\n",
                "section", "mapping", "rate", "offered", "goodput",
                "compl", "fail", "shed", "miss", "p50(ms)",
                "p99(ms)", "p999", "degrB", "lvl", "degr(ms)");
    for (std::size_t i = 0; i < results.size(); ++i)
        printRow("rate", sweep_specs[i], results[i]);

    // ----- Degradation A/B at 1.2x capacity (OnChipOnly) -----
    // The single-level baseline runs all three stages through one
    // accelerator, so every ladder knob relieves its bottleneck; the
    // Reach mapping is feature-extraction-bound and its ladder only
    // buys a few percent (see the per-level capacities above).
    PointSpec ab_on{core::Mapping::OnChipOnly, 1.2, true};
    PointSpec ab_off{core::Mapping::OnChipOnly, 1.2, false};
    service::ServiceResult r_on;
    bool found_on = false;
    for (std::size_t i = 0; i < sweep_specs.size(); ++i) {
        if (sweep_specs[i].mapping == core::Mapping::OnChipOnly &&
            sweep_specs[i].rateMultiplier == 1.2) {
            r_on = results[i];
            found_on = true;
        }
    }
    if (!found_on) {
        r_on = runPoint(ab_on, capacities[1], requests, arrival_seed,
                        fault_seed);
    }
    auto r_off = runPoint(ab_off, capacities[1], requests,
                          arrival_seed, fault_seed);

    printHeader("Degradation A/B at 1.2x capacity (OnChipOnly)");
    printRow("degr-on", ab_on, r_on);
    printRow("degr-off", ab_off, r_off);

    // ----- Bursty arrivals (MMPP-2) -----
    PointSpec bursty{core::Mapping::Reach, 0.9, true,
                     service::ArrivalKind::Bursty};
    auto r_bursty = runPoint(bursty, capacities[0], requests,
                             arrival_seed, fault_seed);
    printHeader("Bursty arrivals (MMPP-2, 0.9x capacity, Reach)");
    printRow("bursty", bursty, r_bursty);

    // ----- Faulted open-loop (the explicit-termination gate) -----
    PointSpec faulted{core::Mapping::Reach, 0.9, true,
                      service::ArrivalKind::Poisson,
                      fault_intensity};
    auto r_faulted = runPoint(faulted, capacities[0], requests,
                              arrival_seed, fault_seed);
    printHeader("Faulted open-loop (fault seed " +
                std::to_string(fault_seed) + ")");
    printRow("faulted", faulted, r_faulted);

    // ----- Gates -----
    bool pass_accounting = true;
    for (const auto &r : results)
        pass_accounting = pass_accounting && r.accounted();
    pass_accounting = pass_accounting && r_on.accounted() &&
                      r_off.accounted() && r_bursty.accounted() &&
                      r_faulted.accounted();

    bool pass_monotone = true;
    for (std::size_t mi = 0; mi < 2; ++mi) {
        sim::Tick prev = 0;
        for (std::size_t i = 0; i < sweep_specs.size(); ++i) {
            const PointSpec &s = sweep_specs[i];
            if (s.mapping != mappings[mi] ||
                s.rateMultiplier > monotone_max_mult) {
                continue;
            }
            if (results[i].p99 < prev)
                pass_monotone = false;
            prev = results[i].p99;
        }
    }

    bool pass_degradation =
        r_on.goodputQps() > r_off.goodputQps();
    bool pass_fault_exercised =
        r_faulted.batchesRetried + r_faulted.batchesFailed > 0;
    bool pass = pass_accounting && pass_monotone &&
                pass_degradation && pass_determinism &&
                pass_fault_exercised;

    std::printf("\ngates: accounting %s, p99-monotone %s, "
                "degradation-goodput %s, jobs-determinism %s, "
                "fault-exercised %s\n",
                pass_accounting ? "pass" : "FAIL",
                pass_monotone ? "pass" : "FAIL",
                pass_degradation ? "pass" : "FAIL",
                pass_determinism ? "pass" : "FAIL",
                pass_fault_exercised ? "pass" : "FAIL");

    if (!out_path.empty()) {
        std::FILE *f = std::fopen(out_path.c_str(), "w");
        if (!f) {
            std::printf("FAIL: cannot write %s\n", out_path.c_str());
            return 1;
        }
        std::fprintf(f, "{\n  \"context\": {\n");
        std::fprintf(f, "    \"git_sha\": \"%s\",\n",
                     git_sha.c_str());
        std::fprintf(f, "    \"smoke\": %s,\n",
                     smoke ? "true" : "false");
        std::fprintf(f, "    \"requests_per_point\": %llu,\n",
                     static_cast<unsigned long long>(requests));
        std::fprintf(f, "    \"arrival_seed\": %llu,\n",
                     static_cast<unsigned long long>(arrival_seed));
        std::fprintf(f, "    \"fault_seed\": %llu,\n",
                     static_cast<unsigned long long>(fault_seed));
        std::fprintf(f, "    \"fault_intensity\": %.3f,\n",
                     fault_intensity);
        std::fprintf(f, "    \"slo_ms\": %.1f,\n",
                     sim::secondsFromTicks(
                         baseServiceConfig(1, 0).sloLatency) * 1e3);
        std::fprintf(
            f, "    \"capacity_qps\": {\"%s\": %.1f, \"%s\": %.1f},\n",
            core::mappingName(mappings[0]), capacities[0],
            core::mappingName(mappings[1]), capacities[1]);
        std::fprintf(f, "    \"capacity_qps_by_degrade_level\": [");
        for (std::size_t l = 0; l < ladder.size(); ++l) {
            std::fprintf(f, "%.1f%s", capacities[2 + l],
                         l + 1 < ladder.size() ? ", " : "]\n");
        }
        std::fprintf(f, "  },\n  \"gates\": {\n");
        std::fprintf(f, "    \"accounting\": %s,\n",
                     pass_accounting ? "true" : "false");
        std::fprintf(f, "    \"p99_monotone_to_%.1fx\": %s,\n",
                     monotone_max_mult,
                     pass_monotone ? "true" : "false");
        std::fprintf(f, "    \"degradation_goodput\": %s,\n",
                     pass_degradation ? "true" : "false");
        std::fprintf(f, "    \"jobs_determinism\": %s,\n",
                     pass_determinism ? "true" : "false");
        std::fprintf(f, "    \"fault_exercised\": %s\n",
                     pass_fault_exercised ? "true" : "false");
        std::fprintf(f, "  },\n  \"points\": [\n");
        for (std::size_t i = 0; i < results.size(); ++i)
            jsonRow(f, "rate", sweep_specs[i], results[i], false);
        jsonRow(f, "degradation_ab_on", ab_on, r_on, false);
        jsonRow(f, "degradation_ab_off", ab_off, r_off, false);
        jsonRow(f, "bursty", bursty, r_bursty, false);
        jsonRow(f, "faulted", faulted, r_faulted, true);
        std::fprintf(f, "  ],\n  \"results\": {\n");
        std::fprintf(f, "    \"goodput_degraded_qps\": %.1f,\n",
                     r_on.goodputQps());
        std::fprintf(f, "    \"goodput_undegraded_qps\": %.1f,\n",
                     r_off.goodputQps());
        std::fprintf(f, "    \"pass\": %s\n",
                     pass ? "true" : "false");
        std::fprintf(f, "  }\n}\n");
        std::fclose(f);
        std::printf("wrote %s (git_sha %s)\n", out_path.c_str(),
                    git_sha.c_str());
    }

    (void)opt;
    return pass ? 0 : 1;
}
