/**
 * @file
 * Figure 8: energy breakdown of the CBIR pipeline when every stage
 * runs on the on-chip accelerator.
 *
 * Left chart: energy per system component (ACC, Cache, DRAM, SSD,
 * MC+Interconnect, PCIe), stacked by pipeline stage.
 * Right chart: per-stage split into compute (ACC) vs data movement
 * (everything else).
 *
 * Paper numbers to approximate: ~79% of total energy is data
 * movement, and the rerank stage's data movement alone is ~52% of
 * the total.
 */

#include <array>
#include <cstdio>

#include "common.hh"

using namespace reach;
using namespace reach::bench;
using energy::Component;

int
main()
{
    sim::setQuiet(true);
    const std::uint32_t batches = 8;
    const std::array<Stage, 3> stages = {Stage::FeatureExtraction,
                                         Stage::Shortlist,
                                         Stage::Rerank};

    // The three stages are serial on one device, so isolated runs
    // compose exactly.
    std::array<StageResult, 3> res;
    double total = 0;
    for (std::size_t s = 0; s < stages.size(); ++s) {
        res[s] = runStage(stages[s], acc::Level::OnChip, 1, batches);
        total += res[s].energyJoules;
    }

    printHeader("Figure 8 (left): energy per component, stacked by "
                "stage");
    std::printf("(on-chip-only mapping, %u query batches)\n", batches);
    std::printf("%-22s %12s %12s %12s %10s\n", "component",
                "FeatureExt(J)", "ShortList(J)", "Rerank(J)",
                "total(J)");
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(Component::NumComponents);
         ++c) {
        auto comp = static_cast<Component>(c);
        double sum = 0;
        for (const auto &r : res)
            sum += r.breakdown[comp];
        std::printf("%-22s %12.2f %12.2f %12.2f %10.2f\n",
                    energy::componentName(comp),
                    res[0].breakdown[comp], res[1].breakdown[comp],
                    res[2].breakdown[comp], sum);
    }
    std::printf("%-22s %12.2f %12.2f %12.2f %10.2f\n", "Total",
                res[0].energyJoules, res[1].energyJoules,
                res[2].energyJoules, total);

    printHeader("Figure 8 (right): compute vs data movement per "
                "stage");
    std::printf("%-22s %10s %10s\n", "stage", "compute", "movement");
    double movement_total = 0;
    double rerank_movement = 0;
    for (std::size_t s = 0; s < stages.size(); ++s) {
        double compute = res[s].breakdown[Component::Acc];
        double movement = res[s].energyJoules - compute;
        movement_total += movement;
        if (stages[s] == Stage::Rerank)
            rerank_movement = movement;
        std::printf("%-22s %9.1f%% %9.1f%%\n", stageName(stages[s]),
                    100.0 * compute / total,
                    100.0 * movement / total);
    }

    std::printf("\nshape: data movement = %.1f%% of total "
                "(paper: ~79%%)\n",
                100.0 * movement_total / total);
    std::printf("shape: rerank data movement = %.1f%% of total "
                "(paper: ~52%%)\n",
                100.0 * rerank_movement / total);
    return 0;
}
