/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses: stage
 * runners for the per-stage sweeps (Figs. 9-11), formatting, and the
 * standard scale/system configurations.
 */

#ifndef REACH_BENCH_COMMON_HH
#define REACH_BENCH_COMMON_HH

#include <cstdint>
#include <cstdio>
#include <string>

#include "core/cbir_deployment.hh"
#include "core/reach_system.hh"
#include "energy/energy_model.hh"
#include "sim/logging.hh"

namespace reach::bench
{

/** The three online CBIR stages. */
enum class Stage
{
    FeatureExtraction,
    Shortlist,
    Rerank,
};

inline const char *
stageName(Stage s)
{
    switch (s) {
      case Stage::FeatureExtraction:
        return "Feature Extraction";
      case Stage::Shortlist:
        return "Short-list Retrieval";
      case Stage::Rerank:
        return "Rerank";
    }
    return "?";
}

struct StageResult
{
    double runtimeSeconds = 0;
    double energyJoules = 0;
    /** Per-component energy of the run. */
    energy::EnergyBreakdown breakdown{};
};

/**
 * System configuration for running one stage at one level with
 * @p instances near-data modules (the Fig. 9-11 sweeps scale the
 * number of DIMM/SSD-paired FPGAs).
 */
inline core::SystemConfig
sweepConfig(acc::Level level, std::uint32_t instances)
{
    core::SystemConfig cfg;
    if (level == acc::Level::NearMem)
        cfg.numAimModules = std::max(instances, 1u);
    if (level == acc::Level::NearStor)
        cfg.numSsds = std::max(instances, 1u);
    return cfg;
}

/**
 * Build the task list for one batch of @p stage executed entirely at
 * @p level using @p instances modules, and run @p batches of them
 * through the GAM. Mirrors CbirDeployment's per-stage construction.
 */
StageResult runStage(Stage stage, acc::Level level,
                     std::uint32_t instances, std::uint32_t batches,
                     const cbir::ScaleConfig &scale = {});

/** Print a markdown-ish table header. */
inline void
printHeader(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

} // namespace reach::bench

#endif // REACH_BENCH_COMMON_HH
