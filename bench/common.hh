/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses: stage
 * runners for the per-stage sweeps (Figs. 9-11), formatting, and the
 * standard scale/system configurations.
 */

#ifndef REACH_BENCH_COMMON_HH
#define REACH_BENCH_COMMON_HH

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "cbir/shortlist.hh"
#include "core/cbir_deployment.hh"
#include "core/reach_system.hh"
#include "energy/energy_model.hh"
#include "parallel/thread_pool.hh"
#include "sim/logging.hh"

namespace reach::bench
{

/** The three online CBIR stages. */
enum class Stage
{
    FeatureExtraction,
    Shortlist,
    Rerank,
};

inline const char *
stageName(Stage s)
{
    switch (s) {
      case Stage::FeatureExtraction:
        return "Feature Extraction";
      case Stage::Shortlist:
        return "Short-list Retrieval";
      case Stage::Rerank:
        return "Rerank";
    }
    return "?";
}

struct StageResult
{
    double runtimeSeconds = 0;
    double energyJoules = 0;
    /** Per-component energy of the run. */
    energy::EnergyBreakdown breakdown{};
};

/**
 * System configuration for running one stage at one level with
 * @p instances near-data modules (the Fig. 9-11 sweeps scale the
 * number of DIMM/SSD-paired FPGAs).
 */
inline core::SystemConfig
sweepConfig(acc::Level level, std::uint32_t instances)
{
    core::SystemConfig cfg;
    if (level == acc::Level::NearMem)
        cfg.numAimModules = std::max(instances, 1u);
    if (level == acc::Level::NearStor)
        cfg.numSsds = std::max(instances, 1u);
    return cfg;
}

/**
 * Apply the workload-side placement knob to a machine config: AIM
 * links run at HBM bandwidth/latency iff the scale places the
 * shortlist scan in HBM (the same sync CoSimulation performs).
 */
inline core::SystemConfig
systemForScale(core::SystemConfig cfg, const cbir::ScaleConfig &scale)
{
    cfg.aimUsesHbm =
        scale.shortlistPlacement == cbir::ScanPlacement::Hbm;
    return cfg;
}

/**
 * Apply a shortlist scan precision to a timing scale through the one
 * shared precision -> bytes mapping (the same sync CoSimulation
 * performs from CbirService::Config::shortlistPrecision), so ablation
 * variants can never hand the byte model a width the functional path
 * does not implement.
 */
inline cbir::ScaleConfig
scaleWithPrecision(cbir::ScaleConfig scale,
                   cbir::ShortlistPrecision precision)
{
    scale.centroidBytesPerDim = cbir::centroidBytesPerDim(precision);
    return scale;
}

/**
 * Build the task list for one batch of @p stage executed entirely at
 * @p level using @p instances modules, and run @p batches of them
 * through the GAM. Mirrors CbirDeployment's per-stage construction,
 * including the shortlist-placement link sync (systemForScale).
 */
StageResult runStage(Stage stage, acc::Level level,
                     std::uint32_t instances, std::uint32_t batches,
                     const cbir::ScaleConfig &scale = {});

/** Print a markdown-ish table header. */
inline void
printHeader(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

/**
 * Concurrency knob for the figure/ablation sweeps. Every sweep point
 * is an independent Simulator, so points run concurrently on the
 * process-wide parallel::ThreadPool without touching each other's
 * state.
 */
struct SweepOptions
{
    /** Concurrent sweep points; 0 = one per hardware thread. */
    unsigned jobs = 0;

    unsigned
    resolved() const
    {
        if (jobs != 0)
            return jobs;
        unsigned hc = std::thread::hardware_concurrency();
        return hc != 0 ? hc : 1;
    }
};

/**
 * Parse the shared bench command line: `--jobs N` / `--jobs=N`, else
 * the REACH_SWEEP_JOBS environment variable, else the default (one
 * job per hardware thread). Unknown arguments are ignored so benches
 * keep accepting bench-specific flags. fatal() on a malformed value.
 */
SweepOptions parseSweepOptions(int argc, char **argv);

/**
 * Run fn(i) for every sweep point i in [0, points) using up to
 * opt.resolved() concurrent jobs, and return the results indexed by
 * point.
 *
 * Determinism contract: fn must depend only on its point index
 * (every point builds its own Simulator/ReachSystem), each result is
 * written to its pre-sized slot, and callers print results in point
 * order — so the output is bitwise identical at any job count, and
 * `--jobs 1` reproduces the historical serial runs exactly.
 */
template <typename Fn>
auto
runSweep(std::size_t points, const SweepOptions &opt, Fn &&fn)
    -> std::vector<decltype(fn(std::size_t{}))>
{
    using Result = decltype(fn(std::size_t{}));
    std::vector<Result> results(points);
    unsigned jobs = opt.resolved();
    if (jobs <= 1 || points <= 1) {
        for (std::size_t i = 0; i < points; ++i)
            results[i] = fn(i);
        return results;
    }
    parallel::ThreadPool::global().run(
        points, jobs, [&](std::size_t i) { results[i] = fn(i); });
    return results;
}

} // namespace reach::bench

#endif // REACH_BENCH_COMMON_HH
