/**
 * @file
 * Figure 11: runtime and energy of the *rerank* stage on near-memory
 * and near-storage accelerators with 1/2/4/8/16 instances,
 * normalized to the on-chip accelerator.
 *
 * Paper shapes to reproduce:
 *  - on-chip and near-memory are bound by the host IO interface;
 *  - near-memory gains plateau once the shared uplink saturates
 *    (paper: beyond ~8 instances);
 *  - near-storage scales ~linearly with FPGA-SSD pairs and saves up
 *    to ~60% of the stage energy.
 *
 * Sweep points run concurrently (--jobs N / REACH_SWEEP_JOBS); the
 * output is identical at any job count.
 */

#include <cstdio>

#include "common.hh"

using namespace reach;
using namespace reach::bench;

int
main(int argc, char **argv)
{
    sim::setQuiet(true);
    SweepOptions opt = parseSweepOptions(argc, argv);
    const std::uint32_t batches = 4;

    struct Point
    {
        acc::Level level;
        std::uint32_t n;
    };
    std::vector<Point> points{{acc::Level::OnChip, 1}};
    for (acc::Level level :
         {acc::Level::NearMem, acc::Level::NearStor}) {
        for (std::uint32_t n : {1u, 2u, 4u, 8u, 16u})
            points.push_back({level, n});
    }

    auto results =
        runSweep(points.size(), opt, [&](std::size_t i) {
            return runStage(Stage::Rerank, points[i].level,
                            points[i].n, batches);
        });
    const StageResult &base = results[0];

    printHeader("Figure 11: rerank vs on-chip baseline");
    std::printf("on-chip baseline: %.2f ms, %.2f J (normalized 1.0)\n",
                base.runtimeSeconds * 1e3, base.energyJoules);
    std::printf("%-12s %8s %12s %12s\n", "level", "ACCs",
                "runtime(x)", "energy(x)");

    double nm8 = 0, nm16 = 0, ns_prev = 0;
    bool ns_linear = true;
    for (std::size_t i = 1; i < points.size(); ++i) {
        acc::Level level = points[i].level;
        std::uint32_t n = points[i].n;
        double rt = results[i].runtimeSeconds / base.runtimeSeconds;
        std::printf("%-12s %8u %12.2f %12.2f\n",
                    acc::levelName(level), n, rt,
                    results[i].energyJoules / base.energyJoules);
        if (level == acc::Level::NearMem && n == 8)
            nm8 = rt;
        if (level == acc::Level::NearMem && n == 16)
            nm16 = rt;
        if (level == acc::Level::NearStor) {
            if (ns_prev > 0 && rt > 0.75 * ns_prev)
                ns_linear = n >= 8 ? ns_linear : false;
            ns_prev = rt;
        }
    }

    std::printf("\nshape: NM plateaus 8->16 (%.2f vs %.2f): %s\n",
                nm8, nm16,
                nm16 > 0.9 * nm8 ? "plateau confirmed"
                                 : "still scaling");
    std::printf("shape: NS scaling ~linear with SSD count: %s\n",
                ns_linear ? "yes" : "sub-linear early");

    // Compressed-rerank ablation on the near-storage x4 deployment:
    // the PQ code scan replaces page-granular row gathers, and the
    // 4-bit packed codes halve the scan bytes again. Points fan out
    // through the same deterministic sweep runner.
    struct PqPoint
    {
        const char *name;
        std::uint32_t bits;   // 0 = PQ off (exact rerank)
        std::uint32_t refine; // exact-refined candidates per query
    };
    // refine=0 isolates the code scan itself (4-bit packed codes
    // halve its bytes); refine=128 is the recall-preserving default,
    // where page-granular refine gathers reclaim most of the time.
    const std::vector<PqPoint> pq_points{{"exact", 0, 0},
                                         {"pq8-r0", 8, 0},
                                         {"pq4-r0", 4, 0},
                                         {"pq8-r128", 8, 128},
                                         {"pq4-r128", 4, 128}};
    auto pq_results =
        runSweep(pq_points.size(), opt, [&](std::size_t i) {
            cbir::ScaleConfig scale;
            if (pq_points[i].bits != 0) {
                scale.pq.enabled = true;
                scale.pq.m = 32;
                scale.pq.bits = pq_points[i].bits;
                scale.pq.refine = pq_points[i].refine;
            }
            return runStage(Stage::Rerank, acc::Level::NearStor, 4,
                            batches, scale);
        });

    printHeader("Figure 11 (b): compressed rerank on near-storage x4");
    std::printf("%-10s %12s %12s %12s\n", "codes", "runtime(ms)",
                "runtime(x)", "energy(x)");
    for (std::size_t i = 0; i < pq_points.size(); ++i) {
        std::printf("%-10s %12.2f %12.2f %12.2f\n",
                    pq_points[i].name,
                    pq_results[i].runtimeSeconds * 1e3,
                    pq_results[i].runtimeSeconds /
                        pq_results[0].runtimeSeconds,
                    pq_results[i].energyJoules /
                        pq_results[0].energyJoules);
    }
    std::printf("4-bit vs 8-bit pure code scan (refine=0): %.2fx "
                "the runtime\n",
                pq_results[2].runtimeSeconds /
                    pq_results[1].runtimeSeconds);

    // Cluster-major batched rerank on the pq4-r0 deployment: each
    // distinct probed cluster's code block streams from the SSD once
    // per batch instead of once per probing query. The amortization
    // grows with batch size (more queries share each block) and with
    // probe skew (popular clusters are probed by many queries); the
    // bytes column is the model's deterministic per-batch near-
    // storage traffic, identical at any --jobs.
    struct BatchPoint
    {
        const char *name;
        std::uint32_t batch;
        double zipfS;
    };
    const std::vector<BatchPoint> b_points{{"b16-uniform", 16, 0.0},
                                           {"b64-uniform", 64, 0.0},
                                           {"b64-zipf1", 64, 1.0},
                                           {"b256-zipf1", 256, 1.0}};
    auto batchedScale = [](const BatchPoint &p, bool batched) {
        cbir::ScaleConfig scale;
        scale.pq.enabled = true;
        scale.pq.m = 32;
        scale.pq.bits = 4;
        scale.pq.refine = 0;
        scale.batchSize = p.batch;
        scale.probeZipfS = p.zipfS;
        scale.batchedRerank = batched;
        return scale;
    };
    auto b_results =
        runSweep(b_points.size() * 2, opt, [&](std::size_t i) {
            return runStage(Stage::Rerank, acc::Level::NearStor, 4,
                            batches,
                            batchedScale(b_points[i / 2], i % 2 == 1));
        });

    printHeader(
        "Figure 11 (c): cluster-major batched rerank, pq4-r0 NS x4");
    std::printf("%-12s %14s %14s %9s %10s %9s\n", "point",
                "qmajor(MB/b)", "batched(MB/b)", "bytes(x)",
                "runtime(x)", "energy(x)");
    for (std::size_t i = 0; i < b_points.size(); ++i) {
        const cbir::CbirWorkloadModel qm(
            batchedScale(b_points[i], false));
        const cbir::CbirWorkloadModel bm(
            batchedScale(b_points[i], true));
        const double qmb = double(qm.rerankBatch(1).bytesIn);
        const double bmb = double(bm.rerankBatch(1).bytesIn);
        const StageResult &qr = b_results[2 * i];
        const StageResult &br = b_results[2 * i + 1];
        std::printf("%-12s %14.2f %14.2f %9.2f %10.2f %9.2f\n",
                    b_points[i].name, qmb / 1e6, bmb / 1e6, qmb / bmb,
                    br.runtimeSeconds / qr.runtimeSeconds,
                    br.energyJoules / qr.energyJoules);
    }
    return 0;
}
