/**
 * @file
 * Figure 11: runtime and energy of the *rerank* stage on near-memory
 * and near-storage accelerators with 1/2/4/8/16 instances,
 * normalized to the on-chip accelerator.
 *
 * Paper shapes to reproduce:
 *  - on-chip and near-memory are bound by the host IO interface;
 *  - near-memory gains plateau once the shared uplink saturates
 *    (paper: beyond ~8 instances);
 *  - near-storage scales ~linearly with FPGA-SSD pairs and saves up
 *    to ~60% of the stage energy.
 *
 * Sweep points run concurrently (--jobs N / REACH_SWEEP_JOBS); the
 * output is identical at any job count.
 */

#include <cstdio>

#include "common.hh"

using namespace reach;
using namespace reach::bench;

int
main(int argc, char **argv)
{
    sim::setQuiet(true);
    SweepOptions opt = parseSweepOptions(argc, argv);
    const std::uint32_t batches = 4;

    struct Point
    {
        acc::Level level;
        std::uint32_t n;
    };
    std::vector<Point> points{{acc::Level::OnChip, 1}};
    for (acc::Level level :
         {acc::Level::NearMem, acc::Level::NearStor}) {
        for (std::uint32_t n : {1u, 2u, 4u, 8u, 16u})
            points.push_back({level, n});
    }

    auto results =
        runSweep(points.size(), opt, [&](std::size_t i) {
            return runStage(Stage::Rerank, points[i].level,
                            points[i].n, batches);
        });
    const StageResult &base = results[0];

    printHeader("Figure 11: rerank vs on-chip baseline");
    std::printf("on-chip baseline: %.2f ms, %.2f J (normalized 1.0)\n",
                base.runtimeSeconds * 1e3, base.energyJoules);
    std::printf("%-12s %8s %12s %12s\n", "level", "ACCs",
                "runtime(x)", "energy(x)");

    double nm8 = 0, nm16 = 0, ns_prev = 0;
    bool ns_linear = true;
    for (std::size_t i = 1; i < points.size(); ++i) {
        acc::Level level = points[i].level;
        std::uint32_t n = points[i].n;
        double rt = results[i].runtimeSeconds / base.runtimeSeconds;
        std::printf("%-12s %8u %12.2f %12.2f\n",
                    acc::levelName(level), n, rt,
                    results[i].energyJoules / base.energyJoules);
        if (level == acc::Level::NearMem && n == 8)
            nm8 = rt;
        if (level == acc::Level::NearMem && n == 16)
            nm16 = rt;
        if (level == acc::Level::NearStor) {
            if (ns_prev > 0 && rt > 0.75 * ns_prev)
                ns_linear = n >= 8 ? ns_linear : false;
            ns_prev = rt;
        }
    }

    std::printf("\nshape: NM plateaus 8->16 (%.2f vs %.2f): %s\n",
                nm8, nm16,
                nm16 > 0.9 * nm8 ? "plateau confirmed"
                                 : "still scaling");
    std::printf("shape: NS scaling ~linear with SSD count: %s\n",
                ns_linear ? "yes" : "sub-linear early");
    return 0;
}
