/**
 * @file
 * Ablation: GAM instance-selection policy for unpinned tasks.
 *
 * The progress table tracks per-task runtime estimates (Fig. 5e);
 * using them for placement (earliest-expected-free) beats a plain
 * assignment-count balance when task sizes vary — a quantitative
 * argument for carrying the estimate column in hardware.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "common.hh"
#include "gam/gam.hh"
#include "sim/rng.hh"

using namespace reach;
using namespace reach::bench;

namespace
{

/** Makespan of a burst of unpinned, size-skewed near-mem tasks. */
sim::Tick
runBurst(gam::SchedulingPolicy policy, int tasks, std::uint64_t seed)
{
    sim::Simulator sim;
    gam::GamConfig cfg;
    cfg.scheduling = policy;
    gam::Gam manager(sim, "gam", cfg);

    std::vector<std::unique_ptr<acc::Accelerator>> devs;
    for (int i = 0; i < 4; ++i) {
        devs.push_back(std::make_unique<acc::Accelerator>(
            sim, "nm" + std::to_string(i), acc::Level::NearMem));
        manager.addAccelerator(*devs.back());
    }

    // One job with many independent tasks whose sizes span 100x:
    // exactly where naive count balancing misplaces work.
    sim::Rng rng(seed);
    gam::JobDesc job;
    for (int t = 0; t < tasks; ++t) {
        gam::TaskDesc task;
        task.label = "t" + std::to_string(t);
        task.kernelTemplate = "GeMM-ZCU9";
        task.level = acc::Level::NearMem;
        task.work.ops =
            1e7 * static_cast<double>(1 + rng.nextUInt(100));
        job.tasks.push_back(std::move(task));
    }
    sim::Tick done = 0;
    job.onComplete = [&done](sim::Tick t) { done = t; };
    manager.submitJob(std::move(job));
    sim.run();
    return done;
}

} // namespace

int
main(int argc, char **argv)
{
    sim::setQuiet(true);
    SweepOptions opt = parseSweepOptions(argc, argv);
    printHeader("Ablation: GAM placement policy, 4 near-mem modules, "
                "size-skewed unpinned tasks");
    std::printf("%-8s %18s %18s %10s\n", "tasks", "least-loaded(ms)",
                "earliest-free(ms)", "gain");

    const int task_counts[4] = {8, 16, 32, 64};
    const int trials = 5;

    // Point layout: (task-count, trial, policy) — every burst is an
    // independent simulation, so the full 4 x 5 x 2 grid fans out.
    auto bursts =
        runSweep(4 * trials * 2, opt, [&](std::size_t i) {
            int tasks = task_counts[i / (trials * 2)];
            int s = static_cast<int>((i / 2) % trials);
            auto policy = i % 2 == 0
                              ? gam::SchedulingPolicy::LeastLoaded
                              : gam::SchedulingPolicy::EarliestFree;
            return sim::secondsFromTicks(runBurst(
                policy, tasks, 100 + static_cast<std::uint64_t>(s)));
        });

    for (std::size_t t = 0; t < 4; ++t) {
        double ll = 0, ef = 0;
        for (int s = 0; s < trials; ++s) {
            ll += bursts[t * trials * 2 + 2 * s];
            ef += bursts[t * trials * 2 + 2 * s + 1];
        }
        std::printf("%-8d %18.2f %18.2f %9.2fx\n", task_counts[t],
                    ll / trials * 1e3, ef / trials * 1e3, ll / ef);
    }

    std::printf("\n(the estimated-wait column of the progress table "
                "pays for itself as a placement signal)\n");
    return 0;
}
