/**
 * @file
 * Table II: the simulated compute-hierarchy configuration, including
 * the calibrated host DRAM streaming bandwidth measured on the
 * cycle-level DDR4 model.
 */

#include <cstdio>

#include "common.hh"
#include "acc/aim_local_port.hh"
#include "mem/calibration.hh"

using namespace reach;

int
main()
{
    sim::setQuiet(true);
    core::SystemConfig cfg;
    core::ReachSystem sys(cfg);

    bench::printHeader("Table II: experimental setup");
    std::printf("%-26s %s\n", "CPU",
                "1 x86-64 OoO core @ 2 GHz (host; idle during "
                "acceleration)");
    std::printf("%-26s %u MCs, %u/%u-entry read/write queues, "
                "FR-FCFS\n",
                "Memory controller", cfg.numChannels,
                cfg.dram.banksPerRank * 0 + 64, 64);
    std::printf("%-26s %u DDR4 DIMMs: %u for near-memory ACCs, %u "
                "for host/on-chip\n",
                "Memory system",
                cfg.hostDimms + cfg.numAimModules, cfg.numAimModules,
                cfg.hostDimms);
    std::printf("%-26s %u NVMe SSDs, PCIe gen3 x16 host uplink "
                "(%.0f GB/s effective)\n",
                "Storage system", cfg.numSsds, cfg.hostPcieBw / 1e9);
    std::printf("%-26s Virtex UltraScale+ VU9P, %.0f GB/s to shared "
                "cache\n",
                "On-chip accelerator", cfg.cacheLinkBw / 1e9);
    std::printf("%-26s Zynq UltraScale+ ZCU9, %.0f GB/s to its "
                "DDR4 DIMM\n",
                "Near-memory accelerator", cfg.aimLocalBw / 1e9);
    std::printf("%-26s Zynq UltraScale+ ZCU9 + 1 GB DRAM buffer, "
                "%.0f GB/s to its SSD\n",
                "Near-storage accelerator", cfg.nsLocalBw / 1e9);

    bench::printHeader("Calibration: sustained DRAM streaming "
                       "bandwidth (detailed DDR4 model)");
    auto one = mem::measureStreamingBandwidth(cfg.dram, 1, 2);
    auto two = mem::measureStreamingBandwidth(cfg.dram, 2, 2);
    std::printf("1 channel:  %.2f GB/s (%.0f%% of pin rate)\n",
                one.bandwidth / 1e9, 100 * one.efficiency);
    std::printf("2 channels: %.2f GB/s (%.0f%% of pin rate)\n",
                two.bandwidth / 1e9, 100 * two.efficiency);
    std::printf("bulk host-DRAM link uses the calibrated value: "
                "%.2f GB/s\n",
                sys.hostDramBandwidth() / 1e9);

    bench::printHeader("Calibration: AIM module local bandwidth "
                       "(detailed DIMM model)");
    acc::AimPortConfig open_cfg;
    open_cfg.maxInflight = 16;
    acc::AimPortConfig closed_cfg = open_cfg;
    closed_cfg.policy = mem::RowPolicy::Closed;
    std::printf("open rows during kernel + precharge at handback: "
                "%.2f GB/s (Table II: 18 GB/s)\n",
                acc::measureLocalStreamingBandwidth(cfg.dram) / 1e9);
    std::printf("per-burst closed-row alternative:              "
                "%.2f GB/s (why the handover design matters)\n",
                acc::measureLocalStreamingBandwidth(cfg.dram, 8 << 20,
                                                    closed_cfg) /
                    1e9);
    return 0;
}
