#!/usr/bin/env bash
# Run the micro_kernels benchmark suite and record the results as
# JSON in BENCH_micro.json at the repository root. The backend-pinned
# pairs (BM_*/scalar vs BM_*/avx2) in that file document the SIMD
# layer's single-thread speedup on the build host.
#
# Usage: bench/run_micro.sh [build-dir] [output-json] [extra args]
#
# The default build links the vendored minibench runner
# (third_party/minibench), which is always compiled Release, so no
# opt-in is needed. With -DREACH_SYSTEM_BENCHMARK=ON and a debug
# system google-benchmark, set REACH_BENCH_ALLOW_DEBUG=1 to record
# the (tainted-tagged) numbers anyway.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
out_json="${2:-${repo_root}/BENCH_micro.json}"

bin="${build_dir}/bench/micro_kernels"
if [[ ! -x "${bin}" ]]; then
    echo "error: ${bin} not built (cmake --build ${build_dir} --target micro_kernels)" >&2
    exit 1
fi

git_sha="$(git -C "${repo_root}" rev-parse HEAD 2>/dev/null || echo unknown)"

"${bin}" \
    --benchmark_out="${out_json}" \
    --benchmark_out_format=json \
    --benchmark_min_time=0.2 \
    --benchmark_context=git_sha="${git_sha}" \
    "${@:3}"

# A debug google-benchmark library inflates per-iteration overhead;
# numbers recorded against it are not comparable across commits.
# Refuse to keep them unless the caller opts in explicitly.
lib_build_type="$(python3 -c '
import json, sys
print(json.load(open(sys.argv[1]))["context"].get("library_build_type", "unknown"))
' "${out_json}" 2>/dev/null || echo unknown)"
if [[ "${lib_build_type}" == "debug" ]]; then
    if [[ "${REACH_BENCH_ALLOW_DEBUG:-0}" != "1" ]]; then
        echo "error: google-benchmark was built as DEBUG" \
             "(library_build_type: debug in ${out_json})." >&2
        echo "Timings are tainted; rebuild the benchmark library in" \
             "Release, or re-run with REACH_BENCH_ALLOW_DEBUG=1 to" \
             "keep the tagged output." >&2
        rm -f "${out_json}"
        exit 1
    fi
    echo "warning: google-benchmark library is a DEBUG build -" \
         "recorded timings are tainted" >&2
fi

echo "wrote ${out_json} (git_sha ${git_sha})"

# Summarise the scalar-vs-avx2 pairs if python3 is around.
if command -v python3 >/dev/null 2>&1; then
    python3 - "${out_json}" <<'EOF'
import json, sys
data = json.load(open(sys.argv[1]))
if data.get("context", {}).get("library_build_type") == "debug":
    print("WARNING: debug google-benchmark library; timings tainted")
times, rates = {}, {}
for b in data.get("benchmarks", []):
    if b.get("run_type") == "iteration" and "error_occurred" not in b:
        times[b["name"]] = b["real_time"]
        if "items_per_second" in b:
            rates[b["name"]] = b["items_per_second"]
for base in sorted({n.rsplit("/", 1)[0] for n in times if "/" in n}):
    s, v = times.get(base + "/scalar"), times.get(base + "/avx2")
    if s and v:
        print(f"{base}: scalar/avx2 speedup {s / v:.2f}x")
# Compressed vs exact rerank on the shared near-storage-scale
# fixture (same backend): the PQ subsystem's headline ratio.
for be in ("scalar", "avx2"):
    exact = times.get(f"BM_RerankPqExact/{be}")
    pq = times.get(f"BM_RerankPq/{be}")
    if exact and pq:
        print(f"BM_RerankPq/{be}: exact/pq speedup {exact / pq:.2f}x")
# The 4-bit FastScan gate: the register-shuffle ADC kernel must beat
# the 8-bit gather ADC by >= 3x at the same (n=4096, M=32) shape on
# avx2, else the FastScan mode is not earning its second code copy.
gather = times.get("BM_AdcBatch/avx2")
shuffle = times.get("BM_AdcShuffle/avx2")
if gather and shuffle:
    ratio = gather / shuffle
    print(f"BM_AdcShuffle/avx2: {ratio:.2f}x the gather ADC "
          f"(gate: >= 3x)")
    if ratio < 3.0:
        print(f"FAIL: shuffle/gather ADC ratio {ratio:.2f} < 3.0")
        sys.exit(1)
# The fp16 shortlist-scan gate: on the DRAM-resident 1M x 96 stream
# the packed-half scan must beat the fp32 one by >= 1.5x on avx2
# (the memory-bound direction of the modeled 2.13x), else the fp16
# path is not earning its second centroid copy.
t32 = times.get("BM_ShortlistScan/fp32_avx2")
t16 = times.get("BM_ShortlistScan/fp16_avx2")
if t32 and t16:
    ratio = t32 / t16
    print(f"BM_ShortlistScan/avx2: fp16 {ratio:.2f}x the fp32 scan "
          f"(gate: >= 1.5x)")
    if ratio < 1.5:
        print(f"FAIL: fp16/fp32 shortlist scan ratio {ratio:.2f} "
              f"< 1.5")
        sys.exit(1)
# The cluster-major batched-rerank gate. The win is traffic, not
# host wall clock: this host's LLC swallows the 16 MB code array, so
# timers cannot see where the bytes stream from (DESIGN.md 4k). The
# probe_bytes_* counters replay the actual probe plan - exact,
# deterministic at any --jobs - and the batch's counted near-storage
# traffic must amortize >= 2x vs the query-major scan at Q = 32.
# Wall clock gets a no-regression floor only (single-iteration smoke
# runs are noisy, hence the generous 1.25x).
ratio = None
for b in data.get("benchmarks", []):
    if b.get("name") == "BM_RerankPqBatched/avx2/32":
        ratio = b.get("probe_bytes_ratio")
if ratio is not None:
    print(f"BM_RerankPqBatched/avx2/32: probe-plan bytes amortized "
          f"{ratio:.2f}x (gate: >= 2x)")
    if ratio < 2.0:
        print(f"FAIL: batched probe-byte amortization {ratio:.2f} "
              f"< 2.0")
        sys.exit(1)
bt = times.get("BM_RerankPqBatched/avx2/32")
qt = times.get("BM_RerankPqQueryMajor/avx2/32")
if bt and qt:
    print(f"BM_RerankPqBatched/avx2/32: {qt / bt:.2f}x query-major "
          f"wall clock (floor: no worse than 1.25x slower)")
    if bt > qt * 1.25:
        print(f"FAIL: batched rerank wall clock {bt / qt:.2f}x "
              f"query-major")
        sys.exit(1)
# Slot-arena event queue vs the frozen seed implementation.
new, seed = rates.get("BM_EventQueue"), rates.get("BM_EventQueueSeed")
if new and seed:
    print(f"BM_EventQueue: {new / 1e6:.2f}M events/s vs seed "
          f"{seed / 1e6:.2f}M events/s -> {new / seed:.2f}x")
# Parallel sweep runner wall-clock per job count (1-core hosts show
# no speedup; the row documents the determinism-preserving overhead).
sweep = sorted((int(n.split("/")[1]), t) for n, t in times.items()
               if n.startswith("BM_Fig13SweepJobs/"))
if sweep:
    base = sweep[0][1]
    for jobs, t in sweep:
        print(f"BM_Fig13SweepJobs jobs={jobs}: {t / 1e6:.0f} ms "
              f"({base / t:.2f}x vs jobs=1)")
EOF
fi
