#!/usr/bin/env bash
# Run the micro_kernels benchmark suite and record the results as
# JSON in BENCH_micro.json at the repository root. The backend-pinned
# pairs (BM_*/scalar vs BM_*/avx2) in that file document the SIMD
# layer's single-thread speedup on the build host.
#
# Usage: bench/run_micro.sh [build-dir] [output-json]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
out_json="${2:-${repo_root}/BENCH_micro.json}"

bin="${build_dir}/bench/micro_kernels"
if [[ ! -x "${bin}" ]]; then
    echo "error: ${bin} not built (cmake --build ${build_dir} --target micro_kernels)" >&2
    exit 1
fi

"${bin}" \
    --benchmark_out="${out_json}" \
    --benchmark_out_format=json \
    --benchmark_min_time=0.2 \
    "${@:3}"

echo "wrote ${out_json}"

# Summarise the scalar-vs-avx2 pairs if python3 is around.
if command -v python3 >/dev/null 2>&1; then
    python3 - "${out_json}" <<'EOF'
import json, sys
data = json.load(open(sys.argv[1]))
times, rates = {}, {}
for b in data.get("benchmarks", []):
    if b.get("run_type") == "iteration" and "error_occurred" not in b:
        times[b["name"]] = b["real_time"]
        if "items_per_second" in b:
            rates[b["name"]] = b["items_per_second"]
for base in sorted({n.rsplit("/", 1)[0] for n in times if "/" in n}):
    s, v = times.get(base + "/scalar"), times.get(base + "/avx2")
    if s and v:
        print(f"{base}: scalar/avx2 speedup {s / v:.2f}x")
# Slot-arena event queue vs the frozen seed implementation.
new, seed = rates.get("BM_EventQueue"), rates.get("BM_EventQueueSeed")
if new and seed:
    print(f"BM_EventQueue: {new / 1e6:.2f}M events/s vs seed "
          f"{seed / 1e6:.2f}M events/s -> {new / seed:.2f}x")
# Parallel sweep runner wall-clock per job count (1-core hosts show
# no speedup; the row documents the determinism-preserving overhead).
sweep = sorted((int(n.split("/")[1]), t) for n, t in times.items()
               if n.startswith("BM_Fig13SweepJobs/"))
if sweep:
    base = sweep[0][1]
    for jobs, t in sweep:
        print(f"BM_Fig13SweepJobs jobs={jobs}: {t / 1e6:.0f} ms "
              f"({base / t:.2f}x vs jobs=1)")
EOF
fi
