/**
 * @file
 * Ablation: the near-storage module's private DRAM parameter buffer
 * (paper §II-C: it exists "to limit disk accesses and exploit the
 * parameters' reuse ratio"). We run near-storage feature extraction
 * with reusable parameters (one key, buffer hits after the first
 * fetch) and with unique per-task keys (no reuse possible, every
 * task refetches over the host path).
 */

#include <cstdio>

#include "common.hh"

using namespace reach;
using namespace reach::bench;

namespace
{

double
runNsFeatureExtraction(bool reuse, std::uint32_t batches)
{
    core::SystemConfig cfg;
    core::ReachSystem sys(cfg);
    cbir::CbirWorkloadModel model{cbir::ScaleConfig{}};
    const auto &scale = model.scale();

    std::uint32_t done = 0;
    std::uint32_t task_seq = 0;
    for (std::uint32_t b = 0; b < batches; ++b) {
        gam::JobDesc job;
        job.label = "fe-ns";
        job.onComplete = [&done](sim::Tick) { ++done; };
        for (std::uint32_t i = 0; i < scale.batchSize; ++i) {
            gam::TaskDesc t;
            t.label = "fe" + std::to_string(i);
            t.kernelTemplate = "CNN-ZCU9";
            t.level = acc::Level::NearStor;
            t.work = model.featureExtractionSingle();
            if (!reuse) {
                t.work.paramKey =
                    "vgg16#" + std::to_string(task_seq++);
            }
            t.pinnedAcc = sys.nsGamIds()[i % sys.numNs()];
            t.inbound.push_back({gam::InboundTransfer::fromHost,
                                 model.queryImageBytes()});
            job.tasks.push_back(std::move(t));
        }
        sys.gam().submitJob(std::move(job));
    }
    sys.runUntilIdle();
    if (done != batches)
        sim::panic("incomplete ablation run");
    return sim::secondsFromTicks(sys.simulator().now());
}

} // namespace

int
main(int argc, char **argv)
{
    sim::setQuiet(true);
    SweepOptions opt = parseSweepOptions(argc, argv);
    printHeader("Ablation: near-storage DRAM parameter buffer "
                "(feature extraction on NS modules)");
    std::printf("%-22s %14s\n", "parameter reuse", "runtime (ms)");

    const std::uint32_t batches = 4;
    auto results = runSweep(2, opt, [&](std::size_t i) {
        return runNsFeatureExtraction(i == 0, batches);
    });
    double with_buffer = results[0];
    double without = results[1];

    std::printf("%-22s %14.2f\n", "buffered (hits)",
                with_buffer * 1e3);
    std::printf("%-22s %14.2f\n", "refetch every task",
                without * 1e3);
    std::printf("buffer speedup: %.2fx (the paper's rationale for "
                "the 1 GB device DRAM)\n",
                without / with_buffer);
    return 0;
}
