/**
 * @file
 * The paper's Section-I motivation, quantified: conventional on-chip
 * FPGA acceleration vs the software baseline "would reduce the run
 * time and compute energy, but the total energy savings would be
 * limited by data movement cost."
 *
 * We run the CBIR pipeline on the host core, on the on-chip FPGA,
 * and on ReACH, and split each total into compute (ACC) vs data
 * movement (everything else).
 */

#include <cstdio>

#include "common.hh"

using namespace reach;
using namespace reach::bench;
using core::Mapping;

namespace
{

struct Row
{
    core::RunResult run;
    energy::EnergyBreakdown energy;
};

Row
runMapping(Mapping m, std::uint32_t batches)
{
    core::ReachSystem sys{core::SystemConfig{}};
    cbir::CbirWorkloadModel model{cbir::ScaleConfig{}};
    core::CbirDeployment dep(sys, model, m);
    Row row;
    row.run = dep.run(batches);
    row.energy = sys.measureEnergy();
    return row;
}

} // namespace

int
main()
{
    sim::setQuiet(true);
    const std::uint32_t batches = 6;

    Row cpu = runMapping(Mapping::CpuOnly, batches);
    Row oc = runMapping(Mapping::OnChipOnly, batches);
    Row rc = runMapping(Mapping::Reach, batches);

    printHeader("Section I motivation: software -> on-chip FPGA -> "
                "ReACH");
    std::printf("%-10s %14s %12s %14s %14s\n", "option",
                "throughput(b/s)", "total(J)", "compute(J)",
                "movement(J)");
    for (const auto &[name, row] :
         {std::pair<const char *, Row &>{"cpu", cpu},
          {"onchip", oc},
          {"ReACH", rc}}) {
        double compute = row.energy[energy::Component::Acc];
        std::printf("%-10s %14.2f %12.2f %14.2f %14.2f\n", name,
                    row.run.throughputBatchesPerSec(),
                    row.energy.total(), compute,
                    row.energy.total() - compute);
    }

    double speedup = oc.run.throughputBatchesPerSec() /
                     cpu.run.throughputBatchesPerSec();
    double cpu_mov =
        cpu.energy.total() - cpu.energy[energy::Component::Acc];
    double oc_mov =
        oc.energy.total() - oc.energy[energy::Component::Acc];
    std::printf("\non-chip FPGA vs CPU: %.1fx faster, compute "
                "energy %.0fx lower (%.1f -> %.1f J) — but %.0f%% "
                "of the remaining energy is data movement "
                "(paper: ~79%%), the residual ReACH attacks.\n",
                speedup,
                cpu.energy[energy::Component::Acc] /
                    oc.energy[energy::Component::Acc],
                cpu.energy[energy::Component::Acc],
                oc.energy[energy::Component::Acc],
                100.0 * oc_mov / oc.energy.total());
    (void)cpu_mov;
    return 0;
}
