/**
 * @file
 * Ablation: fault rate vs. delivered service quality. Sweeps a fault
 * intensity knob that scales every injection probability (crashes,
 * hangs, lost status polls, link stalls, SSD timeouts) and reports
 * how the GAM's recovery machinery (watchdogs, poll retry/backoff,
 * quarantine + re-dispatch, cross-level failover) degrades
 * throughput, latency, and *effective* recall — the functional layer
 * answers exactly, so recall falls only through batches the recovery
 * budget gives up on.
 *
 * Seeded via REACH_FAULT_SEED (default: FaultPlan::defaultSeed); one
 * plan + seed reproduces the identical fault schedule at any --jobs.
 */

#include <cstdio>

#include "common.hh"
#include "fault/fault.hh"

using namespace reach;
using namespace reach::bench;

namespace
{

/** Base recall of the ReACH retrieval configuration (paper: the
 *  mapping preserves accuracy; see accuracy_recall). */
constexpr double base_recall = 0.95;

struct FaultPoint
{
    core::RunResult run;
    std::uint64_t retries = 0;
    std::uint64_t failovers = 0;
    std::uint64_t deadlineMisses = 0;
    std::uint64_t pollRetries = 0;
    std::uint64_t quarantines = 0;
    std::uint64_t recoveries = 0;
    double nmAvailability = 1.0;
    double nsAvailability = 1.0;
};

fault::FaultPlan
planAtIntensity(double f, std::uint64_t seed)
{
    fault::FaultPlan plan;
    plan.seed = seed;
    plan.accCrashProb = f;
    plan.accHangProb = f / 2;
    plan.pollDropProb = std::min(4 * f, 0.9);
    plan.linkStallProb = f / 4;
    plan.ssdTimeoutProb = f;
    return plan;
}

FaultPoint
runWith(double intensity, std::uint64_t seed, std::uint32_t batches)
{
    core::SystemConfig cfg;
    cfg.faultPlan = planAtIntensity(intensity, seed);
    // Quarantined modules are reset and reloaded after 5 ms.
    cfg.gam.recoveryDelay = 5 * sim::tickPerMs;

    core::ReachSystem sys(cfg);
    cbir::CbirWorkloadModel model{cbir::ScaleConfig{}};
    core::CbirDeployment dep(sys, model, core::Mapping::Reach);

    FaultPoint out;
    out.run = dep.run(batches);
    out.retries = sys.gam().taskRetries();
    out.failovers = sys.gam().failovers();
    out.deadlineMisses = sys.gam().deadlineMisses();
    out.pollRetries = sys.gam().pollRetries();
    out.quarantines = sys.gam().quarantines();
    out.recoveries = sys.gam().recoveries();
    out.nmAvailability = sys.gam().availability(acc::Level::NearMem);
    out.nsAvailability = sys.gam().availability(acc::Level::NearStor);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    sim::setQuiet(true);
    SweepOptions opt = parseSweepOptions(argc, argv);
    const std::uint32_t batches = 16;
    const std::uint64_t seed = fault::envFaultSeed();

    const double intensities[6] = {0.0,  0.002, 0.01,
                                   0.05, 0.15,  0.30};

    auto results = runSweep(6, opt, [&](std::size_t i) {
        return runWith(intensities[i], seed, batches);
    });

    printHeader("Ablation: fault rate vs. ReACH service quality "
                "(seed " + std::to_string(seed) + ")");
    std::printf("%-10s %14s %12s %9s %9s %8s %8s %8s\n", "intensity",
                "thrpt(b/s)", "lat(ms)", "completed", "failed",
                "retries", "failover", "quarant");
    for (std::size_t i = 0; i < 6; ++i) {
        const FaultPoint &r = results[i];
        std::printf("%-10.3f %14.2f %12.2f %6u/%-2u %9u %8lu %8lu "
                    "%8lu\n",
                    intensities[i],
                    r.run.throughputBatchesPerSec(),
                    sim::secondsFromTicks(r.run.meanLatency) * 1e3,
                    r.run.completedBatches, r.run.batches,
                    r.run.failedBatches,
                    static_cast<unsigned long>(r.retries),
                    static_cast<unsigned long>(r.failovers),
                    static_cast<unsigned long>(r.quarantines));
    }

    printHeader("Availability and effective recall");
    std::printf("%-10s %9s %9s %9s %9s %12s %15s\n", "intensity",
                "misses", "re-polls", "recover", "avail-NM",
                "avail-NS", "eff. recall@10");
    for (std::size_t i = 0; i < 6; ++i) {
        const FaultPoint &r = results[i];
        // Failed batches return no answer: recall degrades by the
        // completion fraction, not by answer quality.
        double eff_recall =
            base_recall * r.run.completionFraction();
        std::printf("%-10.3f %9lu %9lu %9lu %9.4f %12.4f %15.4f\n",
                    intensities[i],
                    static_cast<unsigned long>(r.deadlineMisses),
                    static_cast<unsigned long>(r.pollRetries),
                    static_cast<unsigned long>(r.recoveries),
                    r.nmAvailability, r.nsAvailability, eff_recall);
    }
    std::printf("(watchdog + retry + cross-level failover keep "
                "completion high until the fault rate overwhelms the "
                "attempt budget)\n");
    return 0;
}
