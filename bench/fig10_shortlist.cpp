/**
 * @file
 * Figure 10: runtime and energy of the *short-list retrieval* stage
 * on near-memory and near-storage accelerators with 1/2/4/8/16
 * instances, normalized to the on-chip accelerator.
 *
 * Paper shapes to reproduce:
 *  - the on-chip engine is DRAM-bandwidth-bound (centroids + cell
 *    info exceed on-chip SRAM);
 *  - near-memory beats on-chip with >= 2 instances (aggregated DIMM
 *    bandwidth) at 40-60% less energy;
 *  - near-storage trails near-memory (PCIe/flash access cost).
 *
 * Sweep points run concurrently (--jobs N / REACH_SWEEP_JOBS); the
 * output is identical at any job count.
 */

#include <cstdio>

#include "common.hh"

using namespace reach;
using namespace reach::bench;

int
main(int argc, char **argv)
{
    sim::setQuiet(true);
    SweepOptions opt = parseSweepOptions(argc, argv);
    const std::uint32_t batches = 4;

    struct Point
    {
        acc::Level level;
        std::uint32_t n;
    };
    std::vector<Point> points{{acc::Level::OnChip, 1}};
    for (acc::Level level :
         {acc::Level::NearMem, acc::Level::NearStor}) {
        for (std::uint32_t n : {1u, 2u, 4u, 8u, 16u})
            points.push_back({level, n});
    }

    auto results =
        runSweep(points.size(), opt, [&](std::size_t i) {
            return runStage(Stage::Shortlist, points[i].level,
                            points[i].n, batches);
        });
    const StageResult &base = results[0];

    printHeader("Figure 10: short-list retrieval vs on-chip baseline");
    std::printf("on-chip baseline: %.2f ms, %.2f J (normalized 1.0)\n",
                base.runtimeSeconds * 1e3, base.energyJoules);
    std::printf("%-12s %8s %12s %12s\n", "level", "ACCs",
                "runtime(x)", "energy(x)");

    for (std::size_t i = 1; i < points.size(); ++i) {
        std::printf("%-12s %8u %12.2f %12.2f\n",
                    acc::levelName(points[i].level), points[i].n,
                    results[i].runtimeSeconds / base.runtimeSeconds,
                    results[i].energyJoules / base.energyJoules);
    }

    // Points: 1..5 = NM x {1,2,4,8,16}; 6..10 = NS x {1,2,4,8,16}.
    const StageResult &nm2 = results[2];
    const StageResult &nm4 = results[3];
    const StageResult &ns4 = results[8];

    // Two 18 GB/s DIMM ports against the ~34.6 GB/s host stream is a
    // statistical tie; with 4 the aggregated bandwidth clearly wins.
    std::printf("\nshape: 2 NM instances reach parity with on-chip "
                "(%.2fx) and win from 4 up (paper: >=2 win): %s\n",
                nm2.runtimeSeconds / base.runtimeSeconds,
                nm2.runtimeSeconds <
                        1.05 * base.runtimeSeconds
                    ? "OK"
                    : "DEVIATES");

    std::printf("shape: near-storage (4) %s near-memory (4) "
                "(paper: NS slightly worse)\n",
                ns4.runtimeSeconds > nm4.runtimeSeconds ? "trails"
                                                        : "beats");
    return 0;
}
