/**
 * @file
 * Figure 10: runtime and energy of the *short-list retrieval* stage
 * on near-memory and near-storage accelerators with 1/2/4/8/16
 * instances, normalized to the on-chip accelerator.
 *
 * Paper shapes to reproduce:
 *  - the on-chip engine is DRAM-bandwidth-bound (centroids + cell
 *    info exceed on-chip SRAM);
 *  - near-memory beats on-chip with >= 2 instances (aggregated DIMM
 *    bandwidth) at 40-60% less energy;
 *  - near-storage trails near-memory (PCIe/flash access cost).
 */

#include <cstdio>

#include "common.hh"

using namespace reach;
using namespace reach::bench;

int
main()
{
    sim::setQuiet(true);
    const std::uint32_t batches = 4;

    StageResult base =
        runStage(Stage::Shortlist, acc::Level::OnChip, 1, batches);

    printHeader("Figure 10: short-list retrieval vs on-chip baseline");
    std::printf("on-chip baseline: %.2f ms, %.2f J (normalized 1.0)\n",
                base.runtimeSeconds * 1e3, base.energyJoules);
    std::printf("%-12s %8s %12s %12s\n", "level", "ACCs",
                "runtime(x)", "energy(x)");

    StageResult nm2, nm_any;
    for (acc::Level level :
         {acc::Level::NearMem, acc::Level::NearStor}) {
        for (std::uint32_t n : {1u, 2u, 4u, 8u, 16u}) {
            StageResult r =
                runStage(Stage::Shortlist, level, n, batches);
            if (level == acc::Level::NearMem && n == 2)
                nm2 = r;
            std::printf("%-12s %8u %12.2f %12.2f\n",
                        acc::levelName(level), n,
                        r.runtimeSeconds / base.runtimeSeconds,
                        r.energyJoules / base.energyJoules);
        }
    }

    // Two 18 GB/s DIMM ports against the ~34.6 GB/s host stream is a
    // statistical tie; with 4 the aggregated bandwidth clearly wins.
    std::printf("\nshape: 2 NM instances reach parity with on-chip "
                "(%.2fx) and win from 4 up (paper: >=2 win): %s\n",
                nm2.runtimeSeconds / base.runtimeSeconds,
                nm2.runtimeSeconds <
                        1.05 * base.runtimeSeconds
                    ? "OK"
                    : "DEVIATES");

    StageResult nm4 =
        runStage(Stage::Shortlist, acc::Level::NearMem, 4, batches);
    StageResult ns4 =
        runStage(Stage::Shortlist, acc::Level::NearStor, 4, batches);
    std::printf("shape: near-storage (4) %s near-memory (4) "
                "(paper: NS slightly worse)\n",
                ns4.runtimeSeconds > nm4.runtimeSeconds ? "trails"
                                                        : "beats");
    return 0;
}
