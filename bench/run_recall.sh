#!/usr/bin/env bash
# Run the accuracy_recall sweep and record its PQ recall grid as
# JSON in BENCH_recall.json at the repository root. The artifact is
# self-checking: the binary embeds its thresholds and exits non-zero
# (removing the stale file first) if the 8-bit default point or the
# best 4-bit point misses recall@10 >= 0.9 vs the exact pipeline.
#
# Usage: bench/run_recall.sh [build-dir] [output-json] [extra args]
# Pass --smoke after the positional args for the CI-sized sweep.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
out_json="${2:-${repo_root}/BENCH_recall.json}"

bin="${build_dir}/bench/accuracy_recall"
if [[ ! -x "${bin}" ]]; then
    echo "error: ${bin} not built (cmake --build ${build_dir} --target accuracy_recall)" >&2
    exit 1
fi

git_sha="$(git -C "${repo_root}" rev-parse HEAD 2>/dev/null || echo unknown)"

if ! "${bin}" --out="${out_json}" --git-sha="${git_sha}" "${@:3}"; then
    rm -f "${out_json}"
    echo "error: recall gate failed; ${out_json} removed" >&2
    exit 1
fi

echo "wrote ${out_json} (git_sha ${git_sha})"
