/**
 * @file
 * Ablation: memory interleaving granularity (paper §III-B: the GAM
 * interleaves host channels at cache-line granularity for aggregated
 * bandwidth, and AIM channels at tile granularity for isolation).
 *
 * We measure sustained streaming bandwidth on the detailed DDR4
 * model across granularities, and the effect of the host-region
 * choice on the on-chip shortlist stage.
 */

#include <cstdio>

#include "common.hh"
#include "mem/calibration.hh"

using namespace reach;
using namespace reach::bench;

int
main()
{
    sim::setQuiet(true);
    mem::DramTimings dram;

    printHeader("Ablation: interleave granularity vs streaming "
                "bandwidth (2 channels x 2 DIMMs)");
    std::printf("%-14s %16s %12s\n", "granularity", "bandwidth(GB/s)",
                "efficiency");
    double line_bw = 0;
    for (std::uint64_t gran :
         {std::uint64_t(64), std::uint64_t(256), std::uint64_t(4096),
          std::uint64_t(64) << 10, std::uint64_t(1) << 20}) {
        auto cal =
            mem::measureStreamingBandwidth(dram, 2, 2, 8 << 20, gran);
        if (gran == 64)
            line_bw = cal.bandwidth;
        std::printf("%-14lu %16.2f %11.0f%%\n",
                    static_cast<unsigned long>(gran),
                    cal.bandwidth / 1e9,
                    100.0 * cal.bandwidth /
                        (2 * dram.peakBandwidth()));
    }

    printHeader("Effect on the on-chip short-list stage");
    auto run_with = [&](double host_bw) {
        core::SystemConfig cfg;
        cfg.hostDramStreamBw = host_bw;
        core::ReachSystem sys(cfg);
        cbir::CbirWorkloadModel model{cbir::ScaleConfig{}};
        core::CbirDeployment dep(sys, model,
                                 core::Mapping::OnChipOnly);
        return dep.run(4);
    };

    auto tile_cal = mem::measureStreamingBandwidth(
        dram, 2, 2, 8 << 20, std::uint64_t(1) << 20);
    core::RunResult fine = run_with(line_bw);
    core::RunResult coarse = run_with(tile_cal.bandwidth);
    std::printf("host region @ line interleave (%.1f GB/s): "
                "%.2f batches/s\n",
                line_bw / 1e9, fine.throughputBatchesPerSec());
    std::printf("host region @ 1 MiB tiles     (%.1f GB/s): "
                "%.2f batches/s\n",
                tile_cal.bandwidth / 1e9,
                coarse.throughputBatchesPerSec());
    std::printf("line interleave gain: %.2fx (why the GAM "
                "reorganizes the host region, paper §III-B)\n",
                fine.throughputBatchesPerSec() /
                    coarse.throughputBatchesPerSec());
    return 0;
}
