/**
 * @file
 * Ablation: memory interleaving granularity (paper §III-B: the GAM
 * interleaves host channels at cache-line granularity for aggregated
 * bandwidth, and AIM channels at tile granularity for isolation).
 *
 * We measure sustained streaming bandwidth on the detailed DDR4
 * model across granularities, and the effect of the host-region
 * choice on the on-chip shortlist stage.
 */

#include <cstdio>

#include "common.hh"
#include "mem/calibration.hh"

using namespace reach;
using namespace reach::bench;

int
main(int argc, char **argv)
{
    sim::setQuiet(true);
    SweepOptions opt = parseSweepOptions(argc, argv);
    mem::DramTimings dram;

    printHeader("Ablation: interleave granularity vs streaming "
                "bandwidth (2 channels x 2 DIMMs)");
    std::printf("%-14s %16s %12s\n", "granularity", "bandwidth(GB/s)",
                "efficiency");
    const std::uint64_t grans[5] = {
        std::uint64_t(64), std::uint64_t(256), std::uint64_t(4096),
        std::uint64_t(64) << 10, std::uint64_t(1) << 20};
    auto cals = runSweep(5, opt, [&](std::size_t i) {
        return mem::measureStreamingBandwidth(dram, 2, 2, 8 << 20,
                                              grans[i]);
    });
    for (std::size_t i = 0; i < 5; ++i) {
        std::printf("%-14lu %16.2f %11.0f%%\n",
                    static_cast<unsigned long>(grans[i]),
                    cals[i].bandwidth / 1e9,
                    100.0 * cals[i].bandwidth /
                        (2 * dram.peakBandwidth()));
    }
    double line_bw = cals[0].bandwidth;
    double tile_bw = cals[4].bandwidth;

    printHeader("Effect on the on-chip short-list stage");
    auto run_with = [&](double host_bw) {
        core::SystemConfig cfg;
        cfg.hostDramStreamBw = host_bw;
        core::ReachSystem sys(cfg);
        cbir::CbirWorkloadModel model{cbir::ScaleConfig{}};
        core::CbirDeployment dep(sys, model,
                                 core::Mapping::OnChipOnly);
        return dep.run(4);
    };

    auto runs = runSweep(2, opt, [&](std::size_t i) {
        return run_with(i == 0 ? line_bw : tile_bw);
    });
    const core::RunResult &fine = runs[0];
    const core::RunResult &coarse = runs[1];
    std::printf("host region @ line interleave (%.1f GB/s): "
                "%.2f batches/s\n",
                line_bw / 1e9, fine.throughputBatchesPerSec());
    std::printf("host region @ 1 MiB tiles     (%.1f GB/s): "
                "%.2f batches/s\n",
                tile_bw / 1e9,
                coarse.throughputBatchesPerSec());
    std::printf("line interleave gain: %.2fx (why the GAM "
                "reorganizes the host region, paper §III-B)\n",
                fine.throughputBatchesPerSec() /
                    coarse.throughputBatchesPerSec());
    return 0;
}
