/**
 * @file
 * google-benchmark microbenchmarks of the functional CBIR kernels:
 * the GEMM, partial sort and distance primitives the FPGA engines
 * implement, plus k-means and the mini CNN; the discrete-event queue
 * hot path (schedule/run/deschedule mix, against a frozen copy of the
 * pre-rework queue as the regression baseline); and the parallel
 * figure-sweep runner. These are host-CPU numbers (sanity and
 * regression tracking), not simulated-FPGA numbers.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "cbir/kmeans.hh"
#include "cbir/linalg.hh"
#include "cbir/mini_cnn.hh"
#include "cbir/pq.hh"
#include "cbir/rerank.hh"
#include "cbir/shortlist.hh"
#include "common.hh"
#include "parallel/parallel.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "simd/aligned.hh"
#include "simd/half.hh"
#include "simd/simd.hh"
#include "workload/dataset.hh"

using namespace reach;
using namespace reach::cbir;

namespace
{

Matrix
randomMatrix(std::size_t rows, std::size_t cols, std::uint64_t seed)
{
    sim::Rng rng(seed);
    Matrix m(rows, cols);
    for (auto &v : m.flat())
        v = static_cast<float>(rng.nextGaussian());
    return m;
}

void
BM_GemmNt(benchmark::State &state)
{
    std::size_t batch = 16, dim = 96;
    std::size_t centroids = static_cast<std::size_t>(state.range(0));
    Matrix q = randomMatrix(batch, dim, 1);
    Matrix c = randomMatrix(centroids, dim, 2);
    Matrix out(batch, centroids);
    for (auto _ : state) {
        gemmNt(q, c, out);
        benchmark::DoNotOptimize(out.flat().data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * batch *
        centroids * dim);
}
BENCHMARK(BM_GemmNt)->Arg(250)->Arg(1000)->Arg(4000);

void
BM_L2Distance(benchmark::State &state)
{
    std::size_t dim = static_cast<std::size_t>(state.range(0));
    Matrix a = randomMatrix(1, dim, 3);
    Matrix b = randomMatrix(1, dim, 4);
    for (auto _ : state) {
        float d = l2sq(a.row(0), b.row(0));
        benchmark::DoNotOptimize(d);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * dim);
}
BENCHMARK(BM_L2Distance)->Arg(96)->Arg(256)->Arg(1024);

void
BM_TopKMin(benchmark::State &state)
{
    std::size_t n = static_cast<std::size_t>(state.range(0));
    sim::Rng rng(5);
    std::vector<float> vals(n);
    for (auto &v : vals)
        v = static_cast<float>(rng.nextDouble());
    for (auto _ : state) {
        auto idx = topKMin(vals, 10);
        benchmark::DoNotOptimize(idx.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TopKMin)->Arg(1000)->Arg(4096)->Arg(100000);

void
BM_ShortlistRetrieve(benchmark::State &state)
{
    workload::DatasetConfig dc;
    dc.numVectors = 20'000;
    dc.dim = 96;
    workload::Dataset ds(dc);
    KMeansConfig kc;
    kc.clusters = static_cast<std::size_t>(state.range(0));
    kc.maxIterations = 4;
    InvertedFileIndex idx(ds.vectors(), kc);
    Matrix queries = ds.makeQueries(16, 0.05, 9);
    for (auto _ : state) {
        auto lists = shortlistRetrieve(queries, idx, 8);
        benchmark::DoNotOptimize(lists.data());
    }
}
BENCHMARK(BM_ShortlistRetrieve)->Arg(100)->Arg(1000);

void
BM_Rerank(benchmark::State &state)
{
    workload::DatasetConfig dc;
    dc.numVectors = 50'000;
    dc.dim = 96;
    workload::Dataset ds(dc);
    KMeansConfig kc;
    kc.clusters = 64;
    kc.maxIterations = 4;
    InvertedFileIndex idx(ds.vectors(), kc);
    Matrix queries = ds.makeQueries(16, 0.05, 9);
    auto lists = shortlistRetrieve(queries, idx, 8);
    RerankConfig rc;
    rc.k = 10;
    rc.maxCandidates =
        static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        auto res = rerank(queries, ds.vectors(), idx, lists, rc);
        benchmark::DoNotOptimize(res.data());
    }
}
BENCHMARK(BM_Rerank)->Arg(1024)->Arg(4096);

// Single- vs multi-thread variants of the three hot kernels the
// parallel execution layer targets (Arg = thread count). Sizes follow
// the paper's shortlist/rerank shape: 1000 centroids x D=96, 64
// queries, 4096 candidates per query.

void
BM_GemmNtThreads(benchmark::State &state)
{
    std::size_t batch = 64, dim = 96, centroids = 1000;
    Matrix q = randomMatrix(batch, dim, 1);
    Matrix c = randomMatrix(centroids, dim, 2);
    Matrix out(batch, centroids);
    parallel::ParallelConfig pc{
        static_cast<unsigned>(state.range(0))};
    for (auto _ : state) {
        gemmNt(q, c, out, pc);
        benchmark::DoNotOptimize(out.flat().data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * batch *
        centroids * dim);
}
BENCHMARK(BM_GemmNtThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

void
BM_RerankThreads(benchmark::State &state)
{
    workload::DatasetConfig dc;
    dc.numVectors = 50'000;
    dc.dim = 96;
    workload::Dataset ds(dc);
    KMeansConfig kc;
    kc.clusters = 64;
    kc.maxIterations = 4;
    InvertedFileIndex idx(ds.vectors(), kc);
    Matrix queries = ds.makeQueries(64, 0.05, 9);
    auto lists = shortlistRetrieve(queries, idx, 8);
    RerankConfig rc;
    rc.k = 10;
    rc.maxCandidates = 4096;
    rc.parallel = parallel::ParallelConfig{
        static_cast<unsigned>(state.range(0))};
    for (auto _ : state) {
        auto res = rerank(queries, ds.vectors(), idx, lists, rc);
        benchmark::DoNotOptimize(res.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(queries.rows() * rc.maxCandidates));
}
BENCHMARK(BM_RerankThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

void
BM_KMeansThreads(benchmark::State &state)
{
    workload::DatasetConfig dc;
    dc.numVectors = 20'000;
    dc.dim = 32;
    workload::Dataset ds(dc);
    KMeansConfig kc;
    kc.clusters = 32;
    kc.maxIterations = 2;
    kc.parallel = parallel::ParallelConfig{
        static_cast<unsigned>(state.range(0))};
    for (auto _ : state) {
        auto res = kMeans(ds.vectors(), kc);
        benchmark::DoNotOptimize(res.inertia);
    }
}
BENCHMARK(BM_KMeansThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

// Backend-pinned kernel benchmarks at the paper's feature dimension
// (D=96), single thread. The scalar/avx2 pair for each benchmark
// measures the SIMD layer's speedup in isolation from threading;
// bench/run_micro.sh records the ratios in BENCH_micro.json. An avx2
// variant on a host without AVX2+FMA reports an error and is skipped.

bool
pinBackendOrSkip(benchmark::State &state, simd::Choice choice)
{
    if (choice == simd::Choice::avx2 &&
        !simd::supported(simd::Backend::avx2)) {
        state.SkipWithError("avx2 not supported on this host");
        return false;
    }
    return true;
}

void
BM_Dot(benchmark::State &state, simd::Choice choice)
{
    if (!pinBackendOrSkip(state, choice))
        return;
    const simd::Kernels &k = simd::kernels(choice);
    std::size_t dim = 96;
    Matrix a = randomMatrix(1, dim, 3);
    Matrix b = randomMatrix(1, dim, 4);
    for (auto _ : state) {
        float d = k.dot(a.row(0).data(), b.row(0).data(), dim);
        benchmark::DoNotOptimize(d);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * dim);
}
BENCHMARK_CAPTURE(BM_Dot, scalar, simd::Choice::scalar);
BENCHMARK_CAPTURE(BM_Dot, avx2, simd::Choice::avx2);

void
BM_L2sqBatch(benchmark::State &state, simd::Choice choice)
{
    if (!pinBackendOrSkip(state, choice))
        return;
    // One query against a contiguous 4096-row tile: the rerank
    // candidate-scoring shape.
    const simd::Kernels &k = simd::kernels(choice);
    std::size_t n = 4096, dim = 96;
    Matrix q = randomMatrix(1, dim, 5);
    Matrix rows = randomMatrix(n, dim, 6);
    std::vector<float> out(n);
    for (auto _ : state) {
        k.l2sqBatch(q.row(0).data(), rows.flat().data(), n, dim,
                    out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * n * dim);
}
BENCHMARK_CAPTURE(BM_L2sqBatch, scalar, simd::Choice::scalar);
BENCHMARK_CAPTURE(BM_L2sqBatch, avx2, simd::Choice::avx2);

void
BM_GemmNtBackend(benchmark::State &state, simd::Choice choice)
{
    if (!pinBackendOrSkip(state, choice))
        return;
    // The shortlist shape: 16 queries x 1000 centroids x D=96.
    std::size_t batch = 16, dim = 96, centroids = 1000;
    Matrix q = randomMatrix(batch, dim, 1);
    Matrix c = randomMatrix(centroids, dim, 2);
    Matrix out(batch, centroids);
    parallel::ParallelConfig pc = parallel::ParallelConfig::serial();
    pc.simd = choice;
    for (auto _ : state) {
        gemmNt(q, c, out, pc);
        benchmark::DoNotOptimize(out.flat().data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * batch *
        centroids * dim);
}
BENCHMARK_CAPTURE(BM_GemmNtBackend, scalar, simd::Choice::scalar);
BENCHMARK_CAPTURE(BM_GemmNtBackend, avx2, simd::Choice::avx2);

void
BM_RerankBackend(benchmark::State &state, simd::Choice choice)
{
    if (!pinBackendOrSkip(state, choice))
        return;
    // End-to-end rerank (gather + l2sqBatch + top-K) with the SIMD
    // backend pinned, single thread.
    workload::DatasetConfig dc;
    dc.numVectors = 50'000;
    dc.dim = 96;
    workload::Dataset ds(dc);
    KMeansConfig kc;
    kc.clusters = 64;
    kc.maxIterations = 4;
    InvertedFileIndex idx(ds.vectors(), kc);
    Matrix queries = ds.makeQueries(16, 0.05, 9);
    auto lists = shortlistRetrieve(queries, idx, 8);
    RerankConfig rc;
    rc.k = 10;
    rc.maxCandidates = 4096;
    rc.parallel = parallel::ParallelConfig::serial();
    rc.parallel.simd = choice;
    for (auto _ : state) {
        auto res = rerank(queries, ds.vectors(), idx, lists, rc);
        benchmark::DoNotOptimize(res.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(queries.rows() * rc.maxCandidates));
}
BENCHMARK_CAPTURE(BM_RerankBackend, scalar, simd::Choice::scalar);
BENCHMARK_CAPTURE(BM_RerankBackend, avx2, simd::Choice::avx2);

void
BM_AdcBatch(benchmark::State &state, simd::Choice choice)
{
    if (!pinBackendOrSkip(state, choice))
        return;
    // The compressed rerank inner loop: 4096 candidates at M=32
    // subspaces, scored from one query's ADC table.
    const simd::Kernels &k = simd::kernels(choice);
    const std::size_t n = 4096, m = 32;
    sim::Rng rng(11);
    std::vector<float, simd::AlignedAllocator<float, 64>> lut(
        m * simd::kAdcLutStride);
    for (auto &v : lut)
        v = static_cast<float>(rng.nextDouble());
    std::vector<std::uint8_t> codes(n * m);
    for (auto &c : codes)
        c = static_cast<std::uint8_t>(rng.nextUInt(256));
    std::vector<float> out(n);
    for (auto _ : state) {
        k.adcBatch(lut.data(), simd::kAdcLutStride, codes.data(), n,
                   m, out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * n * m);
}
BENCHMARK_CAPTURE(BM_AdcBatch, scalar, simd::Choice::scalar);
BENCHMARK_CAPTURE(BM_AdcBatch, avx2, simd::Choice::avx2);

void
BM_AdcShuffle(benchmark::State &state, simd::Choice choice)
{
    if (!pinBackendOrSkip(state, choice))
        return;
    // The 4-bit FastScan counterpart of BM_AdcBatch at the same
    // shape (4096 candidates, M=32): register-resident u8 tables,
    // 32 lookups per shuffle. run_micro.sh gates on the
    // avx2-shuffle / avx2-gather ratio.
    const simd::Kernels &k = simd::kernels(choice);
    const std::size_t n = 4096, m = 32;
    sim::Rng rng(11);
    std::vector<std::uint8_t, simd::AlignedAllocator<std::uint8_t, 64>>
        lut(m * simd::kAdc4LutStride);
    for (auto &v : lut)
        v = static_cast<std::uint8_t>(rng.nextUInt(256));
    std::vector<std::uint8_t> codes(n * simd::adc4CodeBytes(m));
    for (auto &c : codes)
        c = static_cast<std::uint8_t>(rng.nextUInt(256));
    std::vector<std::uint8_t, simd::AlignedAllocator<std::uint8_t, 64>>
        blocks(simd::adc4PackedBytes(n, m));
    simd::adc4Pack(codes.data(), n, m, blocks.data());
    std::vector<float> out(n);
    for (auto _ : state) {
        k.adcBatch4(lut.data(), blocks.data(), n, m, 0.03125f, 1.5f,
                    out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * n * m);
}
BENCHMARK_CAPTURE(BM_AdcShuffle, scalar, simd::Choice::scalar);
BENCHMARK_CAPTURE(BM_AdcShuffle, avx2, simd::Choice::avx2);

/**
 * DRAM-resident fixture for the fused shortlist-scan kernels: one
 * query streamed against 1M centroids at D=96. The fp32 stream is
 * 402 MB and the packed-half copy 201 MB — both far beyond any LLC,
 * so the benchmark measures the memory-bound regime the paper's scan
 * lives in and the fp16 win comes from the halved stream, exactly
 * the effect the timing model's centroidBytesPerDim=2 charges for.
 */
struct ShortlistScanFixture
{
    static constexpr std::size_t kM = 1u << 20;
    static constexpr std::size_t kD = 96;
    static constexpr std::size_t kBlock = 4096;

    Matrix query;
    Matrix cents;
    std::vector<std::uint16_t,
                simd::AlignedAllocator<std::uint16_t, 64>>
        centsH;
    std::vector<float> cnorm;
    std::vector<float> cnormH;
    float qn = 0;

    ShortlistScanFixture()
        : query(randomMatrix(1, kD, 21)),
          cents(randomMatrix(kM, kD, 22)),
          centsH(kM * kD),
          cnorm(rowNormsSq(cents)),
          cnormH(kM)
    {
        simd::halfFromFloats(cents.flat().data(),
                             cents.flat().size(), centsH.data());
        for (std::size_t c = 0; c < kM; ++c)
            cnormH[c] = simd::halfNormSq(centsH.data() + c * kD, kD);
        qn = normSq(query.row(0));
    }
};

const ShortlistScanFixture &
shortlistScanFixture()
{
    static ShortlistScanFixture f;
    return f;
}

/**
 * The blocked fused scan exactly as shortlistRetrieve runs it (one
 * kColBlock-wide shortlistScore call per block, distances landing in
 * a reused L2-sized tile), minus the top-K so the stream is the only
 * variable. run_micro.sh gates fp16_avx2 >= 1.5x fp32_avx2 — the
 * host-measurable counterpart of the modeled 2.13x scan speedup.
 */
void
BM_ShortlistScan(benchmark::State &state, simd::Choice choice,
                 ShortlistPrecision precision)
{
    if (!pinBackendOrSkip(state, choice))
        return;
    const ShortlistScanFixture &f = shortlistScanFixture();
    const simd::Kernels &k = simd::kernels(choice);
    const bool fp16 = precision == ShortlistPrecision::Fp16;
    std::vector<float, simd::AlignedAllocator<float, 64>> dist(
        ShortlistScanFixture::kBlock);
    for (auto _ : state) {
        for (std::size_t j0 = 0; j0 < ShortlistScanFixture::kM;
             j0 += ShortlistScanFixture::kBlock) {
            const std::size_t mb = std::min(
                ShortlistScanFixture::kBlock,
                ShortlistScanFixture::kM - j0);
            if (fp16) {
                k.shortlistScoreF16(
                    f.query.row(0).data(), &f.qn, 1,
                    f.centsH.data() + j0 * ShortlistScanFixture::kD,
                    f.cnormH.data() + j0, mb,
                    ShortlistScanFixture::kD, dist.data(),
                    ShortlistScanFixture::kBlock);
            } else {
                k.shortlistScore(
                    f.query.row(0).data(), &f.qn, 1,
                    f.cents.row(j0).data(), f.cnorm.data() + j0, mb,
                    ShortlistScanFixture::kD, dist.data(),
                    ShortlistScanFixture::kBlock);
            }
            benchmark::DoNotOptimize(dist.data());
        }
    }
    // Items = centroid dims scanned; the streamed bytes per item are
    // centroidBytesPerDim(precision).
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(ShortlistScanFixture::kM *
                                  ShortlistScanFixture::kD));
}
BENCHMARK_CAPTURE(BM_ShortlistScan, fp32_scalar, simd::Choice::scalar,
                  ShortlistPrecision::Fp32);
BENCHMARK_CAPTURE(BM_ShortlistScan, fp32_avx2, simd::Choice::avx2,
                  ShortlistPrecision::Fp32);
BENCHMARK_CAPTURE(BM_ShortlistScan, fp16_scalar, simd::Choice::scalar,
                  ShortlistPrecision::Fp16);
BENCHMARK_CAPTURE(BM_ShortlistScan, fp16_avx2, simd::Choice::avx2,
                  ShortlistPrecision::Fp16);

/**
 * Near-storage-scale fixture for the PQ-vs-exact rerank comparison:
 * the float database (800k x D=96 = 307 MB) deliberately exceeds
 * the LLC, so the exact path's candidate-row gathers go to DRAM —
 * the regime the paper's rerank stage lives in (Table I classifies
 * it storage-bandwidth-bound) — while ADC reads M=32 code bytes per
 * candidate against an L1-resident table. BM_RerankBackend keeps the
 * small cache-resident fixture for kernel-level tracking; codebooks
 * here train on a 64k-row sample to bound one-time setup cost.
 */
struct PqCompareFixture
{
    workload::Dataset ds;
    KMeansResult km;
    InvertedFileIndex idx;  // 8-bit codes
    InvertedFileIndex idx4; // 4-bit packed codes, same clustering
    Matrix queries;
    ShortLists lists;
    /**
     * Zipf(2.0)-skewed queries for the batched-rerank comparison:
     * the hottest latent topics draw most of the batch, so its
     * probes overlap heavily — the head-heavy regime where streaming
     * each probed code block once per batch pays. s = 2 (not the
     * milder s ~ 1 of whole-log statistics) because the 64 latent
     * clusters split across 256 k-means cells, which dilutes
     * per-cell overlap by ~4x; the heavier head restores the
     * within-batch sharing a production-scale cell count exhibits.
     */
    Matrix zipfQueries;
    ShortLists zipfLists;

    PqCompareFixture()
        : ds([] {
              workload::DatasetConfig dc;
              dc.numVectors = 1'000'000;
              dc.dim = 96;
              return dc;
          }()),
          km(kMeans(ds.vectors(),
                    [] {
                        KMeansConfig kc;
                        kc.clusters = 256;
                        kc.maxIterations = 2;
                        return kc;
                    }())),
          idx(km.centroids, km.assignment, ds.vectors()),
          idx4(std::move(km.centroids), std::move(km.assignment),
               ds.vectors()),
          queries(ds.makeQueries(256, 0.05, 9)),
          zipfQueries(ds.makeQueriesZipf(32, 0.05, 11, 2.0))
    {
        std::size_t sample_rows =
            std::min<std::size_t>(65'536, ds.size());
        Matrix sample(sample_rows, ds.vectors().cols());
        std::copy_n(ds.vectors().flat().data(),
                    sample_rows * ds.vectors().cols(),
                    sample.flat().data());
        PqConfig pc;
        pc.enabled = true;
        pc.m = 32;
        pc.trainIterations = 4;
        auto cb = std::make_shared<PqCodebook>(
            PqCodebook::train(sample, pc));
        idx.attachPq(cb, cb->encodeAll(ds.vectors()));
        pc.bits = 4;
        auto cb4 = std::make_shared<PqCodebook>(
            PqCodebook::train(sample, pc));
        idx4.attachPq(cb4, cb4->encodeAll(ds.vectors()));
        // Identical centroids -> identical shortlists for both.
        lists = shortlistRetrieve(queries, idx, 8);
        zipfLists = shortlistRetrieve(zipfQueries, idx, 8);
    }
};

const PqCompareFixture &
pqCompareFixture()
{
    static PqCompareFixture f;
    return f;
}

/** PQ-vs-exact on the shared fixture; refine < 0 = exact rerank. */
void
rerankPqBench(benchmark::State &state, simd::Choice choice,
              std::ptrdiff_t refine, bool fourBit = false)
{
    if (!pinBackendOrSkip(state, choice))
        return;
    const PqCompareFixture &f = pqCompareFixture();
    const InvertedFileIndex &index = fourBit ? f.idx4 : f.idx;
    RerankConfig rc;
    rc.k = 10;
    rc.maxCandidates = 4096;
    rc.parallel = parallel::ParallelConfig::serial();
    rc.parallel.simd = choice;
    if (refine >= 0) {
        rc.usePq = true;
        rc.pqRefine = static_cast<std::size_t>(refine);
    }
    for (auto _ : state) {
        auto res = rerank(f.queries, f.ds.vectors(), index, f.lists,
                          rc);
        benchmark::DoNotOptimize(res.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(f.queries.rows() *
                                  rc.maxCandidates));
}

void
BM_RerankPqExact(benchmark::State &state, simd::Choice choice)
{
    rerankPqBench(state, choice, -1);
}
BENCHMARK_CAPTURE(BM_RerankPqExact, scalar, simd::Choice::scalar);
BENCHMARK_CAPTURE(BM_RerankPqExact, avx2, simd::Choice::avx2);

void
BM_RerankPq(benchmark::State &state, simd::Choice choice)
{
    rerankPqBench(state, choice, 0);
}
BENCHMARK_CAPTURE(BM_RerankPq, scalar, simd::Choice::scalar);
BENCHMARK_CAPTURE(BM_RerankPq, avx2, simd::Choice::avx2);

void
BM_RerankPq4(benchmark::State &state, simd::Choice choice)
{
    rerankPqBench(state, choice, 0, /*fourBit=*/true);
}
BENCHMARK_CAPTURE(BM_RerankPq4, scalar, simd::Choice::scalar);
BENCHMARK_CAPTURE(BM_RerankPq4, avx2, simd::Choice::avx2);

void
BM_RerankPqRefine(benchmark::State &state, simd::Choice choice)
{
    rerankPqBench(state, choice, 128);
}
BENCHMARK_CAPTURE(BM_RerankPqRefine, scalar, simd::Choice::scalar);
BENCHMARK_CAPTURE(BM_RerankPqRefine, avx2, simd::Choice::avx2);

/** Near-storage traffic both rerank scan orders would stream. */
struct ProbePlanBytes
{
    std::uint64_t queryMajor = 0;
    std::uint64_t batched = 0;
};

/**
 * Replays the rerank candidate walk over the actual shortlists:
 * query-major charges every query's budget-truncated prefix of each
 * probed code block; cluster-major charges each distinct block once
 * at the longest prefix any probing query needs, plus the per-query
 * ADC tables that travel to the scan engine instead (u8 rows at 4
 * bits, f32 rows at 8). A pure function of the probe plan — exact,
 * hardware-independent, and identical at any --jobs — which is why
 * run_micro.sh gates the amortization ratio on these counters rather
 * than on wall clock (an LLC large enough to hold the code arrays
 * hides the traffic difference from timers; see DESIGN.md).
 */
ProbePlanBytes
probePlanBytes(const InvertedFileIndex &index, const ShortLists &lists,
               std::size_t max_candidates)
{
    const PqCodebook &cb = index.pqCodebook();
    const std::uint64_t code_bytes = cb.codeBytes();
    const std::uint64_t lut_bytes = cb.numSubspaces() *
                                    cb.lutStride() *
                                    (cb.codeBits() == 4 ? 1 : 4);
    ProbePlanBytes out;
    std::unordered_map<std::uint32_t, std::size_t> longest;
    for (const auto &probes : lists) {
        std::size_t total = 0;
        for (std::uint32_t c : probes) {
            if (max_candidates && total >= max_candidates)
                break;
            std::size_t take = index.cluster(c).size();
            if (max_candidates)
                take = std::min(take, max_candidates - total);
            total += take;
            out.queryMajor += take * code_bytes;
            auto &best = longest[c];
            best = std::max(best, take);
        }
        out.batched += lut_bytes;
    }
    for (const auto &[c, take] : longest)
        out.batched += take * code_bytes;
    return out;
}

/**
 * Cluster-major batched rerank vs the query-major scan on the 1M
 * fixture's 4-bit index, Zipf-skewed queries, Q = range(0) queries
 * per batch. Results are bitwise identical either way (the
 * RerankBatched suite enforces it); what differs is the traffic,
 * reported through the probe_bytes_* counters.
 */
void
rerankBatchedBench(benchmark::State &state, simd::Choice choice,
                   bool batched)
{
    if (!pinBackendOrSkip(state, choice))
        return;
    const PqCompareFixture &f = pqCompareFixture();
    const auto q = static_cast<std::size_t>(state.range(0));
    Matrix queries(q, f.zipfQueries.cols());
    std::copy_n(f.zipfQueries.flat().data(), q * f.zipfQueries.cols(),
                queries.flat().data());
    ShortLists lists(f.zipfLists.begin(), f.zipfLists.begin() + q);
    RerankConfig rc;
    rc.k = 10;
    rc.maxCandidates = 4096;
    rc.parallel = parallel::ParallelConfig::serial();
    rc.parallel.simd = choice;
    rc.usePq = true;
    rc.batchedScan = batched;
    for (auto _ : state) {
        auto res = rerank(queries, f.ds.vectors(), f.idx4, lists, rc);
        benchmark::DoNotOptimize(res.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(q * rc.maxCandidates));
    ProbePlanBytes plan =
        probePlanBytes(f.idx4, lists, rc.maxCandidates);
    state.counters["probe_bytes_query_major"] =
        static_cast<double>(plan.queryMajor);
    state.counters["probe_bytes_batched"] =
        static_cast<double>(plan.batched);
    state.counters["probe_bytes_ratio"] =
        static_cast<double>(plan.queryMajor) /
        static_cast<double>(plan.batched);
}

void
BM_RerankPqBatched(benchmark::State &state, simd::Choice choice)
{
    rerankBatchedBench(state, choice, /*batched=*/true);
}
BENCHMARK_CAPTURE(BM_RerankPqBatched, scalar, simd::Choice::scalar)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32);
BENCHMARK_CAPTURE(BM_RerankPqBatched, avx2, simd::Choice::avx2)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32);

void
BM_RerankPqQueryMajor(benchmark::State &state, simd::Choice choice)
{
    rerankBatchedBench(state, choice, /*batched=*/false);
}
BENCHMARK_CAPTURE(BM_RerankPqQueryMajor, scalar, simd::Choice::scalar)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32);
BENCHMARK_CAPTURE(BM_RerankPqQueryMajor, avx2, simd::Choice::avx2)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32);

void
BM_MiniCnnExtract(benchmark::State &state)
{
    MiniCnn cnn;
    Image img = makeSyntheticImage(1, 7);
    for (auto _ : state) {
        auto f = cnn.extract(img);
        benchmark::DoNotOptimize(f.data());
    }
}
BENCHMARK(BM_MiniCnnExtract);

/**
 * The seed (pre-PR-3) event queue, frozen verbatim as the regression
 * baseline for BM_EventQueue: fat heap entries carrying the callback
 * and name, with cancellation tracked through two hash sets. Kept
 * here (not in src/) so the production queue can evolve while the
 * baseline stays fixed.
 */
class SeedEventQueue
{
  public:
    using Callback = std::function<void()>;

    std::uint64_t
    schedule(sim::Tick when, Callback cb,
             sim::EventPriority prio = sim::EventPriority::Default,
             std::string name = {})
    {
        std::uint64_t id = nextSeq++;
        queue.push(ScheduledEvent{when, static_cast<int>(prio), id,
                                  std::move(cb), std::move(name)});
        live.insert(id);
        ++numPending;
        return id;
    }

    bool
    deschedule(std::uint64_t event_id)
    {
        if (live.erase(event_id) == 0)
            return false;
        cancelled.insert(event_id);
        --numPending;
        return true;
    }

    void
    runOne()
    {
        skipCancelled();
        ScheduledEvent ev = queue.top();
        queue.pop();
        live.erase(ev.seq);
        --numPending;
        curTick = ev.when;
        ++executed;
        ev.cb();
    }

    bool empty() const { return numPending == 0; }
    sim::Tick now() const { return curTick; }

  private:
    struct ScheduledEvent
    {
        sim::Tick when;
        int priority;
        std::uint64_t seq;
        Callback cb;
        std::string name;
    };

    struct Later
    {
        bool
        operator()(const ScheduledEvent &a,
                   const ScheduledEvent &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    void
    skipCancelled()
    {
        while (!queue.empty()) {
            auto it = cancelled.find(queue.top().seq);
            if (it == cancelled.end())
                return;
            cancelled.erase(it);
            queue.pop();
        }
    }

    std::priority_queue<ScheduledEvent, std::vector<ScheduledEvent>,
                        Later>
        queue;
    std::unordered_set<std::uint64_t> live;
    std::unordered_set<std::uint64_t> cancelled;
    sim::Tick curTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t executed = 0;
    std::size_t numPending = 0;
};

/**
 * Schedule/run/deschedule mix modeled on GAM status polling: waves
 * of events are scheduled at pseudo-random future ticks, half of
 * each wave is cancelled and re-armed (a wrong runtime estimate),
 * then the queue drains. Items processed = events executed, so the
 * benchmark reports DES events/sec.
 */
template <typename Queue>
void
runEventQueueMix(benchmark::State &state)
{
    const int pollers = 256;
    const int waves = 64;
    std::int64_t total_executed = 0;
    for (auto _ : state) {
        Queue q;
        sim::Rng rng(42);
        std::uint64_t executed = 0;
        std::vector<std::uint64_t> ids;
        ids.reserve(pollers);
        for (int wave = 0; wave < waves; ++wave) {
            ids.clear();
            for (int p = 0; p < pollers; ++p) {
                ids.push_back(q.schedule(
                    q.now() + 1 + rng.nextUInt(1000),
                    [&executed] { ++executed; }));
            }
            for (int p = 0; p < pollers; p += 2) {
                if (q.deschedule(ids[p])) {
                    q.schedule(q.now() + 1 + rng.nextUInt(1000),
                               [&executed] { ++executed; });
                }
            }
            while (!q.empty())
                q.runOne();
        }
        benchmark::DoNotOptimize(executed);
        total_executed += static_cast<std::int64_t>(executed);
    }
    state.SetItemsProcessed(total_executed);
}

void
BM_EventQueue(benchmark::State &state)
{
    runEventQueueMix<sim::EventQueue>(state);
}
BENCHMARK(BM_EventQueue);

void
BM_EventQueueSeed(benchmark::State &state)
{
    runEventQueueMix<SeedEventQueue>(state);
}
BENCHMARK(BM_EventQueueSeed);

/**
 * The Figure-13 sweep (all four mapping options, latency +
 * throughput runs) through the parallel sweep runner at Arg(0)
 * concurrent jobs. Wall-clock vs --jobs for the figure benches;
 * items processed = simulators run.
 */
void
BM_Fig13SweepJobs(benchmark::State &state)
{
    sim::setQuiet(true);
    bench::SweepOptions opt;
    opt.jobs = static_cast<unsigned>(state.range(0));
    const core::Mapping mappings[4] = {core::Mapping::OnChipOnly,
                                       core::Mapping::NearMemOnly,
                                       core::Mapping::NearStorOnly,
                                       core::Mapping::Reach};
    for (auto _ : state) {
        auto makespans =
            bench::runSweep(8, opt, [&](std::size_t i) {
                cbir::CbirWorkloadModel model{cbir::ScaleConfig{}};
                core::ReachSystem sys{core::SystemConfig{}};
                core::CbirDeployment dep(sys, model, mappings[i / 2]);
                return dep.run(i % 2 == 0 ? 1 : 12).makespan;
            });
        benchmark::DoNotOptimize(makespans.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 8);
}
BENCHMARK(BM_Fig13SweepJobs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

void
BM_KMeansIteration(benchmark::State &state)
{
    workload::DatasetConfig dc;
    dc.numVectors = 5'000;
    dc.dim = 32;
    workload::Dataset ds(dc);
    KMeansConfig kc;
    kc.clusters = static_cast<std::size_t>(state.range(0));
    kc.maxIterations = 1;
    for (auto _ : state) {
        auto res = kMeans(ds.vectors(), kc);
        benchmark::DoNotOptimize(res.inertia);
    }
}
BENCHMARK(BM_KMeansIteration)->Arg(16)->Arg(64);

} // namespace

BENCHMARK_MAIN();
