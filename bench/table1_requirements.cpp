/**
 * @file
 * Table I: memory and compute requirements of each CBIR pipeline
 * stage at billion scale.
 */

#include <cstdio>

#include "cbir/vgg.hh"
#include "cbir/workload_model.hh"
#include "common.hh"

using namespace reach;

int
main()
{
    sim::setQuiet(true);
    cbir::ScaleConfig scale;
    cbir::CbirWorkloadModel model(scale);

    bench::printHeader(
        "Table I: memory and compute requirements per CBIR stage");

    std::printf("%-20s %-38s %s\n", "stage", "memory requirement",
                "computation requirement");

    std::printf("%-20s %5.0f MB (%.1f MB compressed) %-6s %s\n",
                "Feature extraction",
                static_cast<double>(cbir::vgg16WeightBytes()) / 1e6,
                static_cast<double>(
                    cbir::vgg16CompressedWeightBytes()) /
                    1e6,
                "", "High   (convolutional neural network)");

    std::printf("%-20s ~%.1f GB (centroids + cell info)%-5s %s\n",
                "Short-list retrieval",
                static_cast<double>(model.centroidAndCellBytes()) /
                    1e9,
                "",
                "Medium (non-square matrix multiplication)");

    std::printf("%-20s ~%.0f GB (%lu x D=%u feature vectors)  %s\n",
                "Rerank",
                static_cast<double>(model.databaseBytes()) / 1e9,
                static_cast<unsigned long>(scale.databaseVectors),
                scale.dim, "Low    (k nearest neighbors)");

    std::printf("%-20s %-38s %s\n", "Reverse lookup",
                "200TB - 2PB (1 billion images)",
                "Very low (database access; excluded, as in the "
                "paper)");

    std::printf("\nper-stage work units (one batch of %u queries):\n",
                scale.batchSize);
    auto fe = model.featureExtractionBatch();
    auto sl = model.shortlistBatch(1);
    auto rr = model.rerankBatch(1);
    std::printf("  feature extraction: %.3g MACs, in %.2f MB, "
                "params %.1f MB\n",
                fe.ops, static_cast<double>(fe.bytesIn) / 1e6,
                static_cast<double>(fe.paramBytes) / 1e6);
    std::printf("  short-list:         %.3g ops,  in %.2f MB\n",
                sl.ops, static_cast<double>(sl.bytesIn) / 1e6);
    std::printf("  rerank:             %.3g ops,  in %.2f MB "
                "(page-granular gathers)\n",
                rr.ops, static_cast<double>(rr.bytesIn) / 1e6);
    return 0;
}
