/**
 * @file
 * Table III: FPGA utilization, frequency and power per kernel, plus
 * the derived effective throughput of each engine.
 */

#include <cstdio>

#include "acc/kernel_profile.hh"
#include "common.hh"

using namespace reach;

int
main()
{
    sim::setQuiet(true);
    bench::printHeader("Table III: FPGA kernels");
    std::printf("%-12s %-8s %-28s %9s %14s %14s\n", "kernel",
                "device", "utilization (ff,lut,dsp,bram)", "freq",
                "power (W)", "Gops/s");

    for (const auto &k : acc::kernelCatalog()) {
        if (k.device == "XeonCore")
            continue; // software baselines listed separately below
        char util[64];
        std::snprintf(util, sizeof(util),
                      "(%2.0f%%,%2.0f%%,%2.0f%%,%2.0f%%)",
                      100 * k.util.ff, 100 * k.util.lut,
                      100 * k.util.dsp, 100 * k.util.bram);
        bool zynq = k.device == "ZCU9EQ";
        char power[32];
        if (zynq) {
            std::snprintf(power, sizeof(power), "%.2f/%.2f",
                          acc::powerFor(k, false),
                          acc::powerFor(k, true));
        } else {
            std::snprintf(power, sizeof(power), "%.2f", k.powerW);
        }
        std::printf("%-12s %-8s %-28s %6.0f MHz %14s %14.1f\n",
                    k.id.c_str(), k.device.c_str(), util, k.freqMHz,
                    power, k.throughputOpsPerSec() / 1e9);
    }

    std::printf("\n(ZCU9 power column: near-memory / near-storage "
                "deployment, Table III)\n");

    std::printf("\nsoftware baselines (host core, not in Table "
                "III):\n");
    for (const auto &k : acc::kernelCatalog()) {
        if (k.device != "XeonCore")
            continue;
        std::printf("%-12s %-8s %38s %6.0f MHz %14.2f %14.1f\n",
                    k.id.c_str(), "x86-64", "", k.freqMHz, k.powerW,
                    k.throughputOpsPerSec() / 1e9);
    }

    double ratio = acc::findKernel("CNN-VU9P").throughputOpsPerSec() /
                   acc::findKernel("CNN-ZCU9").throughputOpsPerSec();
    std::printf("on-chip : near-data CNN single-instance ratio = "
                "%.1fx (paper: 7-10x)\n",
                ratio);
    return 0;
}
