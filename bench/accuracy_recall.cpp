/**
 * @file
 * The paper's accuracy argument (§IV-A), quantified: aggressive
 * vector compression (binary codes / quantization) cuts data volume
 * but "significantly penalizes the recall accuracy", while the
 * ReACH approach — probing clusters with near-data bandwidth and
 * reranking with exact distances — preserves it.
 *
 * We sweep (a) nprobe and the rerank candidate budget for the exact
 * IVF pipeline, and (b) per-dimension scalar quantization depth for
 * a compressed-vector alternative, reporting recall@10 against
 * exhaustive ground truth.
 */

#include <cmath>
#include <cstdio>

#include "cbir/rerank.hh"
#include "cbir/shortlist.hh"
#include "common.hh"
#include "workload/dataset.hh"

using namespace reach;
using namespace reach::cbir;

namespace
{

/** Scalar-quantize every value to 2^bits levels over its range. */
Matrix
quantize(const Matrix &m, int bits)
{
    float lo = m.flat()[0], hi = m.flat()[0];
    for (float v : m.flat()) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    double levels = std::pow(2.0, bits) - 1;
    double scale = (hi - lo) / levels;

    Matrix out(m.rows(), m.cols());
    for (std::size_t i = 0; i < m.flat().size(); ++i) {
        double q = std::round((m.flat()[i] - lo) / scale);
        out.flat()[i] = static_cast<float>(lo + q * scale);
    }
    return out;
}

} // namespace

int
main()
{
    sim::setQuiet(true);

    workload::DatasetConfig dc;
    dc.numVectors = 20'000;
    dc.dim = 96;
    dc.latentClusters = 50;
    dc.clusterStddev = 2.0;
    workload::Dataset ds(dc);

    KMeansConfig kc;
    kc.clusters = 100;
    kc.maxIterations = 10;
    InvertedFileIndex index(ds.vectors(), kc);

    Matrix queries = ds.makeQueries(32, 0.5, 2024);
    auto truth = bruteForce(queries, ds.vectors(), 10);

    bench::printHeader("Recall@10 of the exact IVF pipeline "
                       "(shortlist + exact rerank)");
    std::printf("%-8s %-12s %10s %16s\n", "nprobe", "candidates",
                "recall@10", "data visited");
    for (std::size_t nprobe : {1u, 2u, 4u, 8u, 16u}) {
        auto lists = shortlistRetrieve(queries, index, nprobe);
        for (std::size_t cands : {1024u, 4096u, 0u}) {
            RerankConfig rc;
            rc.k = 10;
            rc.maxCandidates = cands;
            auto got = rerank(queries, ds.vectors(), index, lists, rc);
            double visited =
                cands == 0 ? static_cast<double>(nprobe) /
                                 index.numClusters()
                           : std::min<double>(
                                 static_cast<double>(cands) /
                                     ds.size(),
                                 static_cast<double>(nprobe) /
                                     index.numClusters());
            std::printf("%-8zu %-12s %10.3f %15.1f%%\n", nprobe,
                        cands == 0 ? "all" : std::to_string(cands)
                                                 .c_str(),
                        recallAtK(got, truth, 10), 100 * visited);
        }
    }

    bench::printHeader("Recall@10 after vector compression "
                       "(exhaustive search on quantized vectors)");
    std::printf("%-10s %12s %10s\n", "bits/dim", "size vs fp32",
                "recall@10");
    for (int bits : {8, 4, 2, 1}) {
        Matrix qdb = quantize(ds.vectors(), bits);
        Matrix qq = quantize(queries, bits);
        auto got = bruteForce(qq, qdb, 10);
        std::printf("%-10d %11.1f%% %10.3f\n", bits,
                    100.0 * bits / 32.0, recallAtK(got, truth, 10));
    }

    std::printf("\nthe paper's point: compression trades recall for "
                "data volume; ReACH instead keeps exact vectors and "
                "brings compute to them.\n");
    return 0;
}
