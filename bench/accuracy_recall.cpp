/**
 * @file
 * The paper's accuracy argument (§IV-A), quantified: aggressive
 * vector compression (binary codes / quantization) cuts data volume
 * but "significantly penalizes the recall accuracy", while the
 * ReACH approach — probing clusters with near-data bandwidth and
 * reranking with exact distances — preserves it.
 *
 * We sweep (a) nprobe and the rerank candidate budget for the exact
 * IVF pipeline, (b) per-dimension scalar quantization depth for a
 * compressed-vector alternative, and (c) the product-quantized
 * rerank (code size M x exact-refine budget R), reporting recall@10
 * against exhaustive ground truth and against the exact pipeline.
 *
 * --smoke shrinks every sweep to CI-sized inputs. The PQ grid runs
 * at both code precisions (bits = 8 and the packed 4-bit FastScan
 * mode) and, with --out=FILE, is recorded as a self-checking JSON
 * artifact (git_sha context via --git-sha=SHA, thresholds embedded)
 * — bench/run_recall.sh writes it to BENCH_recall.json at the repo
 * root. In every mode the binary exits non-zero if either gate
 * fails: the timing model's default 8-bit point (M=32, refine=128)
 * or the best 4-bit point must reach recall@10 >= 0.9 against the
 * exact pipeline.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cbir/pq.hh"
#include "cbir/rerank.hh"
#include "cbir/shortlist.hh"
#include "common.hh"
#include "workload/dataset.hh"

using namespace reach;
using namespace reach::cbir;

namespace
{

/** Scalar-quantize every value to 2^bits levels over its range. */
Matrix
quantize(const Matrix &m, int bits)
{
    float lo = m.flat()[0], hi = m.flat()[0];
    for (float v : m.flat()) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    double levels = std::pow(2.0, bits) - 1;
    double scale = (hi - lo) / levels;

    Matrix out(m.rows(), m.cols());
    for (std::size_t i = 0; i < m.flat().size(); ++i) {
        double q = std::round((m.flat()[i] - lo) / scale);
        out.flat()[i] = static_cast<float>(lo + q * scale);
    }
    return out;
}

/** One PQ grid point for the JSON artifact. */
struct GridRow
{
    std::uint32_t bits;
    std::uint32_t m;
    std::uint32_t refine;
    std::uint32_t bytesPerCand;
    double vsExact;
    double vsTruth;
};

} // namespace

int
main(int argc, char **argv)
{
    sim::setQuiet(true);
    bool smoke = false;
    std::string out_path, git_sha = "unknown";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strncmp(argv[i], "--out=", 6) == 0)
            out_path = argv[i] + 6;
        else if (std::strncmp(argv[i], "--git-sha=", 10) == 0)
            git_sha = argv[i] + 10;
    }

    workload::DatasetConfig dc;
    dc.numVectors = smoke ? 3'000 : 20'000;
    dc.dim = 96;
    dc.latentClusters = smoke ? 20 : 50;
    dc.clusterStddev = 2.0;
    workload::Dataset ds(dc);

    KMeansConfig kc;
    kc.clusters = smoke ? 24 : 100;
    kc.maxIterations = smoke ? 4 : 10;
    InvertedFileIndex index(ds.vectors(), kc);

    Matrix queries = ds.makeQueries(smoke ? 8 : 32, 0.5, 2024);
    auto truth = bruteForce(queries, ds.vectors(), 10);

    bench::printHeader("Recall@10 of the exact IVF pipeline "
                       "(shortlist + exact rerank)");
    std::printf("%-8s %-12s %10s %16s\n", "nprobe", "candidates",
                "recall@10", "data visited");
    for (std::size_t nprobe : {1u, 2u, 4u, 8u, 16u}) {
        auto lists = shortlistRetrieve(queries, index, nprobe);
        for (std::size_t cands : {1024u, 4096u, 0u}) {
            RerankConfig rc;
            rc.k = 10;
            rc.maxCandidates = cands;
            auto got = rerank(queries, ds.vectors(), index, lists, rc);
            double visited =
                cands == 0 ? static_cast<double>(nprobe) /
                                 index.numClusters()
                           : std::min<double>(
                                 static_cast<double>(cands) /
                                     ds.size(),
                                 static_cast<double>(nprobe) /
                                     index.numClusters());
            std::printf("%-8zu %-12s %10.3f %15.1f%%\n", nprobe,
                        cands == 0 ? "all" : std::to_string(cands)
                                                 .c_str(),
                        recallAtK(got, truth, 10), 100 * visited);
        }
    }

    bench::printHeader("Recall@10 after vector compression "
                       "(exhaustive search on quantized vectors)");
    std::printf("%-10s %12s %10s\n", "bits/dim", "size vs fp32",
                "recall@10");
    for (int bits : {8, 4, 2, 1}) {
        Matrix qdb = quantize(ds.vectors(), bits);
        Matrix qq = quantize(queries, bits);
        auto got = bruteForce(qq, qdb, 10);
        std::printf("%-10d %11.1f%% %10.3f\n", bits,
                    100.0 * bits / 32.0, recallAtK(got, truth, 10));
    }

    // (c) Product-quantized rerank: ADC ordering from M-byte codes,
    // optionally refined by exact re-scoring of the top R. Recall is
    // reported against the exact pipeline (same shortlist and
    // candidate budget) and against exhaustive truth; bytes/cand is
    // the near-storage read per candidate vs the 384 B float row.
    const std::size_t nprobe = 8;
    const std::size_t budget = smoke ? 1024 : 4096;
    auto lists = shortlistRetrieve(queries, index, nprobe);
    RerankConfig ex;
    ex.k = 10;
    ex.maxCandidates = budget;
    auto exact = rerank(queries, ds.vectors(), index, lists, ex);

    // fp16 shortlist-scan parity: the same pipeline with the coarse
    // scan reading the packed-half centroid stream. The quantization
    // only perturbs which clusters are probed; rerank stays exact, so
    // recall@10 must sit within the gate of the fp32 pipeline's.
    auto lists16 =
        shortlistRetrieve(queries, index, nprobe, {},
                          ShortlistPrecision::Fp16);
    auto got16 = rerank(queries, ds.vectors(), index, lists16, ex);
    const double recall_fp32 = recallAtK(exact, truth, 10);
    const double recall_fp16 = recallAtK(got16, truth, 10);
    const double fp16_delta = std::abs(recall_fp16 - recall_fp32);
    const double fp16_gate = 0.005;
    bench::printHeader("Recall@10 of the fp16 shortlist scan "
                       "(half-precision centroid stream, exact "
                       "rerank)");
    std::printf("%-12s %10s\n", "scan", "recall@10");
    std::printf("%-12s %10.3f\n", "fp32", recall_fp32);
    std::printf("%-12s %10.3f   (|delta| %.4f, gate <= %.3f)\n",
                "fp16", recall_fp16, fp16_delta, fp16_gate);

    bench::printHeader("Recall@10 of the product-quantized rerank "
                       "(vs exact pipeline / vs truth)");
    std::printf("%-6s %-6s %-8s %12s %10s %10s %12s\n", "bits", "M",
                "refine", "bytes/cand", "vs exact", "vs truth",
                "size vs fp32");
    std::vector<GridRow> grid;
    double headline8 = 0.0, headline4 = 0.0;
    for (std::uint32_t bits : {8u, 4u}) {
        // M = 48 (2-dim subspaces) costs the same 24 B/candidate as
        // 8-bit M = 24: the 4-bit mode buys subspaces with nibbles.
        for (std::uint32_t m : {8u, 16u, 32u, 48u}) {
            PqConfig pc;
            pc.enabled = true;
            pc.m = m;
            pc.bits = bits;
            pc.trainIterations = smoke ? 4 : 8;
            index.buildPq(ds.vectors(), pc);
            for (std::uint32_t refine : {0u, 32u, 128u, 512u}) {
                RerankConfig rc = ex;
                rc.usePq = true;
                rc.pqRefine = refine;
                auto got =
                    rerank(queries, ds.vectors(), index, lists, rc);
                double vs_exact = recallAtK(got, exact, 10);
                double vs_truth = recallAtK(got, truth, 10);
                auto code_bytes =
                    static_cast<std::uint32_t>(pqCodeBytes(pc));
                if (bits == 8 && m == 32 && refine == 128)
                    headline8 = vs_exact;
                if (bits == 4)
                    headline4 = std::max(headline4, vs_exact);
                grid.push_back({bits, m, refine, code_bytes,
                                vs_exact, vs_truth});
                std::printf(
                    "%-6u %-6u %-8u %12u %10.3f %10.3f %11.1f%%\n",
                    bits, m, refine, code_bytes, vs_exact, vs_truth,
                    100.0 * code_bytes / (dc.dim * 4.0));
            }
        }
    }

    std::printf("\nthe paper's point: compression trades recall for "
                "data volume; ReACH instead keeps exact vectors and "
                "brings compute to them. Two-stage PQ rerank is the "
                "middle ground: ADC ordering from M-byte codes, "
                "exact-refine of the top R to claw recall back.\n");

    const double threshold = 0.9;
    bool pass8 = headline8 >= threshold;
    bool pass4 = headline4 >= threshold;
    bool pass16 = fp16_delta <= fp16_gate;

    if (!out_path.empty()) {
        std::FILE *f = std::fopen(out_path.c_str(), "w");
        if (!f) {
            std::printf("FAIL: cannot write %s\n", out_path.c_str());
            return 1;
        }
        std::fprintf(f, "{\n  \"context\": {\n");
        std::fprintf(f, "    \"git_sha\": \"%s\",\n",
                     git_sha.c_str());
        std::fprintf(f, "    \"smoke\": %s,\n",
                     smoke ? "true" : "false");
        std::fprintf(f, "    \"dataset_vectors\": %zu,\n",
                     ds.size());
        std::fprintf(f, "    \"dim\": %u,\n", dc.dim);
        std::fprintf(f, "    \"queries\": %zu,\n", queries.rows());
        std::fprintf(f, "    \"nprobe\": %zu,\n", nprobe);
        std::fprintf(f, "    \"candidate_budget\": %zu\n",
                     budget);
        std::fprintf(f, "  },\n  \"thresholds\": {\n");
        std::fprintf(f,
                     "    \"recall_at_10_vs_exact\": %.2f,\n"
                     "    \"gate_pq8\": \"bits=8 M=32 "
                     "refine=128\",\n"
                     "    \"gate_pq4\": \"best 4-bit point\",\n"
                     "    \"fp16_shortlist_recall_delta\": %.3f\n",
                     threshold, fp16_gate);
        std::fprintf(f, "  },\n  \"grid\": [\n");
        for (std::size_t i = 0; i < grid.size(); ++i) {
            const GridRow &g = grid[i];
            std::fprintf(
                f,
                "    {\"bits\": %u, \"m\": %u, \"refine\": %u, "
                "\"bytes_per_candidate\": %u, "
                "\"recall_at_10_vs_exact\": %.4f, "
                "\"recall_at_10_vs_truth\": %.4f}%s\n",
                g.bits, g.m, g.refine, g.bytesPerCand, g.vsExact,
                g.vsTruth, i + 1 < grid.size() ? "," : "");
        }
        std::fprintf(f, "  ],\n  \"results\": {\n");
        std::fprintf(f, "    \"headline_pq8\": %.4f,\n",
                     headline8);
        std::fprintf(f, "    \"headline_pq4\": %.4f,\n",
                     headline4);
        std::fprintf(f, "    \"recall_fp32_shortlist\": %.4f,\n",
                     recall_fp32);
        std::fprintf(f, "    \"recall_fp16_shortlist\": %.4f,\n",
                     recall_fp16);
        std::fprintf(f, "    \"pass\": %s\n",
                     pass8 && pass4 && pass16 ? "true" : "false");
        std::fprintf(f, "  }\n}\n");
        std::fclose(f);
        std::printf("wrote %s (git_sha %s)\n", out_path.c_str(),
                    git_sha.c_str());
    }

    if (!pass8) {
        std::printf("FAIL: bits=8 M=32 refine=128 recall@10 vs exact "
                    "= %.3f < %.2f\n", headline8, threshold);
        return 1;
    }
    if (!pass4) {
        std::printf("FAIL: best 4-bit point recall@10 vs exact = "
                    "%.3f < %.2f\n", headline4, threshold);
        return 1;
    }
    if (!pass16) {
        std::printf("FAIL: fp16 shortlist recall@10 delta vs fp32 = "
                    "%.4f > %.3f\n", fp16_delta, fp16_gate);
        return 1;
    }
    return 0;
}
