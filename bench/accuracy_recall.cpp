/**
 * @file
 * The paper's accuracy argument (§IV-A), quantified: aggressive
 * vector compression (binary codes / quantization) cuts data volume
 * but "significantly penalizes the recall accuracy", while the
 * ReACH approach — probing clusters with near-data bandwidth and
 * reranking with exact distances — preserves it.
 *
 * We sweep (a) nprobe and the rerank candidate budget for the exact
 * IVF pipeline, (b) per-dimension scalar quantization depth for a
 * compressed-vector alternative, and (c) the product-quantized
 * rerank (code size M x exact-refine budget R), reporting recall@10
 * against exhaustive ground truth and against the exact pipeline.
 *
 * --smoke shrinks every sweep to CI-sized inputs. In both modes the
 * binary exits non-zero if the PQ configuration the timing model
 * defaults to (M=32, refine=128) fails to reach recall@10 >= 0.9
 * against the exact pipeline.
 */

#include <cmath>
#include <cstdio>
#include <cstring>

#include "cbir/pq.hh"
#include "cbir/rerank.hh"
#include "cbir/shortlist.hh"
#include "common.hh"
#include "workload/dataset.hh"

using namespace reach;
using namespace reach::cbir;

namespace
{

/** Scalar-quantize every value to 2^bits levels over its range. */
Matrix
quantize(const Matrix &m, int bits)
{
    float lo = m.flat()[0], hi = m.flat()[0];
    for (float v : m.flat()) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    double levels = std::pow(2.0, bits) - 1;
    double scale = (hi - lo) / levels;

    Matrix out(m.rows(), m.cols());
    for (std::size_t i = 0; i < m.flat().size(); ++i) {
        double q = std::round((m.flat()[i] - lo) / scale);
        out.flat()[i] = static_cast<float>(lo + q * scale);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    sim::setQuiet(true);
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        smoke = smoke || std::strcmp(argv[i], "--smoke") == 0;

    workload::DatasetConfig dc;
    dc.numVectors = smoke ? 3'000 : 20'000;
    dc.dim = 96;
    dc.latentClusters = smoke ? 20 : 50;
    dc.clusterStddev = 2.0;
    workload::Dataset ds(dc);

    KMeansConfig kc;
    kc.clusters = smoke ? 24 : 100;
    kc.maxIterations = smoke ? 4 : 10;
    InvertedFileIndex index(ds.vectors(), kc);

    Matrix queries = ds.makeQueries(smoke ? 8 : 32, 0.5, 2024);
    auto truth = bruteForce(queries, ds.vectors(), 10);

    bench::printHeader("Recall@10 of the exact IVF pipeline "
                       "(shortlist + exact rerank)");
    std::printf("%-8s %-12s %10s %16s\n", "nprobe", "candidates",
                "recall@10", "data visited");
    for (std::size_t nprobe : {1u, 2u, 4u, 8u, 16u}) {
        auto lists = shortlistRetrieve(queries, index, nprobe);
        for (std::size_t cands : {1024u, 4096u, 0u}) {
            RerankConfig rc;
            rc.k = 10;
            rc.maxCandidates = cands;
            auto got = rerank(queries, ds.vectors(), index, lists, rc);
            double visited =
                cands == 0 ? static_cast<double>(nprobe) /
                                 index.numClusters()
                           : std::min<double>(
                                 static_cast<double>(cands) /
                                     ds.size(),
                                 static_cast<double>(nprobe) /
                                     index.numClusters());
            std::printf("%-8zu %-12s %10.3f %15.1f%%\n", nprobe,
                        cands == 0 ? "all" : std::to_string(cands)
                                                 .c_str(),
                        recallAtK(got, truth, 10), 100 * visited);
        }
    }

    bench::printHeader("Recall@10 after vector compression "
                       "(exhaustive search on quantized vectors)");
    std::printf("%-10s %12s %10s\n", "bits/dim", "size vs fp32",
                "recall@10");
    for (int bits : {8, 4, 2, 1}) {
        Matrix qdb = quantize(ds.vectors(), bits);
        Matrix qq = quantize(queries, bits);
        auto got = bruteForce(qq, qdb, 10);
        std::printf("%-10d %11.1f%% %10.3f\n", bits,
                    100.0 * bits / 32.0, recallAtK(got, truth, 10));
    }

    // (c) Product-quantized rerank: ADC ordering from M-byte codes,
    // optionally refined by exact re-scoring of the top R. Recall is
    // reported against the exact pipeline (same shortlist and
    // candidate budget) and against exhaustive truth; bytes/cand is
    // the near-storage read per candidate vs the 384 B float row.
    const std::size_t nprobe = 8;
    const std::size_t budget = smoke ? 1024 : 4096;
    auto lists = shortlistRetrieve(queries, index, nprobe);
    RerankConfig ex;
    ex.k = 10;
    ex.maxCandidates = budget;
    auto exact = rerank(queries, ds.vectors(), index, lists, ex);

    bench::printHeader("Recall@10 of the product-quantized rerank "
                       "(vs exact pipeline / vs truth)");
    std::printf("%-6s %-8s %12s %10s %10s %12s\n", "M", "refine",
                "bytes/cand", "vs exact", "vs truth", "size vs fp32");
    double headline = 0.0;
    for (std::uint32_t m : {8u, 16u, 32u}) {
        PqConfig pc;
        pc.enabled = true;
        pc.m = m;
        pc.trainIterations = smoke ? 4 : 8;
        index.buildPq(ds.vectors(), pc);
        for (std::uint32_t refine : {0u, 32u, 128u}) {
            RerankConfig rc = ex;
            rc.usePq = true;
            rc.pqRefine = refine;
            auto got = rerank(queries, ds.vectors(), index, lists, rc);
            double vs_exact = recallAtK(got, exact, 10);
            double vs_truth = recallAtK(got, truth, 10);
            if (m == 32 && refine == 128)
                headline = vs_exact;
            std::printf("%-6u %-8u %12u %10.3f %10.3f %11.1f%%\n", m,
                        refine, m, vs_exact, vs_truth,
                        100.0 * m / (dc.dim * 4.0));
        }
    }

    std::printf("\nthe paper's point: compression trades recall for "
                "data volume; ReACH instead keeps exact vectors and "
                "brings compute to them. Two-stage PQ rerank is the "
                "middle ground: ADC ordering from M-byte codes, "
                "exact-refine of the top R to claw recall back.\n");

    if (headline < 0.9) {
        std::printf("FAIL: M=32 refine=128 recall@10 vs exact = "
                    "%.3f < 0.9\n", headline);
        return 1;
    }
    return 0;
}
