#!/usr/bin/env bash
# Run the open-loop service study and record it as JSON in
# BENCH_openloop.json at the repository root. The artifact is
# self-checking: the binary embeds its gates and exits non-zero
# (removing the stale file first) if any fails — request accounting
# (no silent drops, faulted section included), p99 monotone in
# offered rate, degradation goodput win at 1.2x capacity, or
# --jobs 1 vs 8 bitwise determinism.
#
# Usage: bench/run_openloop.sh [build-dir] [output-json] [extra args]
# Pass --smoke after the positional args for the CI-sized sweep.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
out_json="${2:-${repo_root}/BENCH_openloop.json}"

bin="${build_dir}/bench/fig_openloop"
if [[ ! -x "${bin}" ]]; then
    echo "error: ${bin} not built (cmake --build ${build_dir} --target fig_openloop)" >&2
    exit 1
fi

git_sha="$(git -C "${repo_root}" rev-parse HEAD 2>/dev/null || echo unknown)"

if ! "${bin}" --out="${out_json}" --git-sha="${git_sha}" "${@:3}"; then
    rm -f "${out_json}"
    echo "error: openloop gate failed; ${out_json} removed" >&2
    exit 1
fi

echo "wrote ${out_json} (git_sha ${git_sha})"
