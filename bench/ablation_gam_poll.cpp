/**
 * @file
 * Ablation: GAM status-poll estimate quality. Near-data modules
 * cannot interrupt the GAM; it polls when a task's *estimated*
 * runtime elapses (paper Fig. 5). We sweep the estimate error factor
 * and report the poll count and end-to-end impact of over/under
 * estimation, plus the reconfiguration-delay sweep (the paper
 * assumes sub-millisecond partial reconfiguration and charges zero).
 */

#include <cstdio>

#include "common.hh"

using namespace reach;
using namespace reach::bench;

namespace
{

struct PollResult
{
    core::RunResult run;
    std::uint64_t polls = 0;
};

PollResult
runWith(double error_factor, sim::Tick reconfig,
        core::Mapping mapping, std::uint32_t batches)
{
    core::SystemConfig cfg;
    cfg.gam.estimateErrorFactor = error_factor;
    cfg.gam.reconfigDelay = reconfig;
    core::ReachSystem sys(cfg);
    cbir::CbirWorkloadModel model{cbir::ScaleConfig{}};
    core::CbirDeployment dep(sys, model, mapping);
    PollResult out;
    out.run = dep.run(batches);
    out.polls = sys.gam().statusPolls();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    sim::setQuiet(true);
    SweepOptions opt = parseSweepOptions(argc, argv);
    const std::uint32_t batches = 8;

    const double factors[5] = {0.1, 0.5, 1.0, 1.5, 3.0};
    const sim::Tick delays[5] = {sim::Tick(0), sim::tickPerUs,
                                 100 * sim::tickPerUs, sim::tickPerMs,
                                 10 * sim::tickPerMs};

    // Points 0-4: estimate-error sweep; 5-9: reconfig-delay sweep.
    auto results = runSweep(10, opt, [&](std::size_t i) {
        if (i < 5)
            return runWith(factors[i], 0, core::Mapping::Reach,
                           batches);
        return runWith(1.0, delays[i - 5],
                       core::Mapping::OnChipOnly, batches);
    });

    printHeader("Ablation: status-poll estimate error (ReACH "
                "mapping)");
    std::printf("%-14s %16s %14s %10s\n", "error factor",
                "throughput(b/s)", "mean lat(ms)", "polls");
    for (std::size_t i = 0; i < 5; ++i) {
        const PollResult &r = results[i];
        std::printf("%-14.2f %16.2f %14.2f %10lu\n", factors[i],
                    r.run.throughputBatchesPerSec(),
                    sim::secondsFromTicks(r.run.meanLatency) * 1e3,
                    static_cast<unsigned long>(r.polls));
    }
    std::printf("(under-estimation re-polls, over-estimation delays "
                "completion observation)\n");

    printHeader("Ablation: partial-reconfiguration delay (on-chip "
                "mapping reconfigures CNN->GeMM->KNN per batch)");
    std::printf("%-16s %16s\n", "reconfig delay", "throughput(b/s)");
    for (std::size_t i = 0; i < 5; ++i) {
        std::printf("%13.3f ms %16.2f\n",
                    sim::secondsFromTicks(delays[i]) * 1e3,
                    results[5 + i].run.throughputBatchesPerSec());
    }
    std::printf("(sub-millisecond reconfiguration is negligible — "
                "the paper's assumption)\n");
    return 0;
}
