/**
 * @file
 * The second case study: a scan -> aggregate -> merge analytics
 * query across the hierarchy, quantifying the paper's generality
 * claim (§I: ReACH targets "common communication-bound analytics
 * workloads", and its related work offloads exactly this shape —
 * Netezza/Ibex/Summarizer filters near storage).
 */

#include <cstdio>

#include "analytics/deployment.hh"
#include "common.hh"

using namespace reach;
using namespace reach::analytics;

int
main()
{
    sim::setQuiet(true);

    bench::printHeader("Analytics case study: SELECT region, "
                       "SUM(amount) ... WHERE amount > X");

    for (std::uint64_t gb : {16ull, 64ull}) {
        AnalyticsScale scale;
        scale.tableBytes = gb << 30;

        std::printf("\ntable = %llu GiB, selectivity = %.0f%%\n",
                    static_cast<unsigned long long>(gb),
                    100 * scale.selectivity);
        std::printf("%-12s %12s %18s %18s\n", "mapping",
                    "queries/s", "scan rate (GB/s)",
                    "GAM DMA (MB/query)");

        double base_qps = 0;
        for (ScanMapping m :
             {ScanMapping::HostOnly, ScanMapping::OnChip,
              ScanMapping::NearData}) {
            core::ReachSystem sys{core::SystemConfig{}};
            AnalyticsDeployment dep(sys, scale, m);
            QueryRunResult r = dep.run(3);
            if (m == ScanMapping::HostOnly)
                base_qps = r.queriesPerSec();

            std::printf("%-12s %12.2f %18.1f %18.1f   (%.1fx)\n",
                        scanMappingName(m), r.queriesPerSec(),
                        r.scanBandwidth(scale.tableBytes) / 1e9,
                        static_cast<double>(sys.gam().bytesMoved()) /
                            3 / 1e6,
                        r.queriesPerSec() / base_qps);
        }
    }

    std::printf("\nshape: centralized scans cap at the ~12 GB/s host "
                "IO interface; near-data scanning runs at the SSD "
                "array's aggregate bandwidth and ships only filtered "
                "rows upward.\n");
    return 0;
}
