# Empty compiler generated dependencies file for fig11_rerank.
# This may be replaced when dependencies are built.
