file(REMOVE_RECURSE
  "CMakeFiles/fig11_rerank.dir/fig11_rerank.cpp.o"
  "CMakeFiles/fig11_rerank.dir/fig11_rerank.cpp.o.d"
  "fig11_rerank"
  "fig11_rerank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_rerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
