file(REMOVE_RECURSE
  "libreach_bench_common.a"
)
