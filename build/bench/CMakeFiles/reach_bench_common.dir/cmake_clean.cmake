file(REMOVE_RECURSE
  "CMakeFiles/reach_bench_common.dir/common.cc.o"
  "CMakeFiles/reach_bench_common.dir/common.cc.o.d"
  "libreach_bench_common.a"
  "libreach_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reach_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
