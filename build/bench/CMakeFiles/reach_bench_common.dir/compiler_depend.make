# Empty compiler generated dependencies file for reach_bench_common.
# This may be replaced when dependencies are built.
