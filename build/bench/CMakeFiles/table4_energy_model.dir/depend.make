# Empty dependencies file for table4_energy_model.
# This may be replaced when dependencies are built.
