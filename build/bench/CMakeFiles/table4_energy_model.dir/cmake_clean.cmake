file(REMOVE_RECURSE
  "CMakeFiles/table4_energy_model.dir/table4_energy_model.cpp.o"
  "CMakeFiles/table4_energy_model.dir/table4_energy_model.cpp.o.d"
  "table4_energy_model"
  "table4_energy_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_energy_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
