file(REMOVE_RECURSE
  "CMakeFiles/analytics_scan.dir/analytics_scan.cpp.o"
  "CMakeFiles/analytics_scan.dir/analytics_scan.cpp.o.d"
  "analytics_scan"
  "analytics_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
