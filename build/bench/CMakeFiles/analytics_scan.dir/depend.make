# Empty dependencies file for analytics_scan.
# This may be replaced when dependencies are built.
