file(REMOVE_RECURSE
  "CMakeFiles/fig13_reach.dir/fig13_reach.cpp.o"
  "CMakeFiles/fig13_reach.dir/fig13_reach.cpp.o.d"
  "fig13_reach"
  "fig13_reach.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_reach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
