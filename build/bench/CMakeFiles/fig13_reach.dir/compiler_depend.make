# Empty compiler generated dependencies file for fig13_reach.
# This may be replaced when dependencies are built.
