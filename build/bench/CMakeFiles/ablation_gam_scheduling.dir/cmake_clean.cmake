file(REMOVE_RECURSE
  "CMakeFiles/ablation_gam_scheduling.dir/ablation_gam_scheduling.cpp.o"
  "CMakeFiles/ablation_gam_scheduling.dir/ablation_gam_scheduling.cpp.o.d"
  "ablation_gam_scheduling"
  "ablation_gam_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gam_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
