# Empty dependencies file for fig10_shortlist.
# This may be replaced when dependencies are built.
