file(REMOVE_RECURSE
  "CMakeFiles/fig10_shortlist.dir/fig10_shortlist.cpp.o"
  "CMakeFiles/fig10_shortlist.dir/fig10_shortlist.cpp.o.d"
  "fig10_shortlist"
  "fig10_shortlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_shortlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
