# Empty compiler generated dependencies file for ablation_nsbuffer.
# This may be replaced when dependencies are built.
