file(REMOVE_RECURSE
  "CMakeFiles/ablation_nsbuffer.dir/ablation_nsbuffer.cpp.o"
  "CMakeFiles/ablation_nsbuffer.dir/ablation_nsbuffer.cpp.o.d"
  "ablation_nsbuffer"
  "ablation_nsbuffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nsbuffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
