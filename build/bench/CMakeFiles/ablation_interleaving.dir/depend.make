# Empty dependencies file for ablation_interleaving.
# This may be replaced when dependencies are built.
