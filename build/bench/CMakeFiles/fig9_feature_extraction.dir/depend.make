# Empty dependencies file for fig9_feature_extraction.
# This may be replaced when dependencies are built.
