file(REMOVE_RECURSE
  "CMakeFiles/fig9_feature_extraction.dir/fig9_feature_extraction.cpp.o"
  "CMakeFiles/fig9_feature_extraction.dir/fig9_feature_extraction.cpp.o.d"
  "fig9_feature_extraction"
  "fig9_feature_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_feature_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
