file(REMOVE_RECURSE
  "CMakeFiles/baseline_cpu.dir/baseline_cpu.cpp.o"
  "CMakeFiles/baseline_cpu.dir/baseline_cpu.cpp.o.d"
  "baseline_cpu"
  "baseline_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
