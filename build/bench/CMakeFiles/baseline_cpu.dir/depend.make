# Empty dependencies file for baseline_cpu.
# This may be replaced when dependencies are built.
