file(REMOVE_RECURSE
  "CMakeFiles/accuracy_recall.dir/accuracy_recall.cpp.o"
  "CMakeFiles/accuracy_recall.dir/accuracy_recall.cpp.o.d"
  "accuracy_recall"
  "accuracy_recall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accuracy_recall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
