# Empty dependencies file for accuracy_recall.
# This may be replaced when dependencies are built.
