# Empty dependencies file for fig12_single_level.
# This may be replaced when dependencies are built.
