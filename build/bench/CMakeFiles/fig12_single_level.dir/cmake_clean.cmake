file(REMOVE_RECURSE
  "CMakeFiles/fig12_single_level.dir/fig12_single_level.cpp.o"
  "CMakeFiles/fig12_single_level.dir/fig12_single_level.cpp.o.d"
  "fig12_single_level"
  "fig12_single_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_single_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
