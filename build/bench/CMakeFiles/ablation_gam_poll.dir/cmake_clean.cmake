file(REMOVE_RECURSE
  "CMakeFiles/ablation_gam_poll.dir/ablation_gam_poll.cpp.o"
  "CMakeFiles/ablation_gam_poll.dir/ablation_gam_poll.cpp.o.d"
  "ablation_gam_poll"
  "ablation_gam_poll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gam_poll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
