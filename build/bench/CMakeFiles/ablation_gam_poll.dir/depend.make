# Empty dependencies file for ablation_gam_poll.
# This may be replaced when dependencies are built.
