# Empty compiler generated dependencies file for table3_kernel_profiles.
# This may be replaced when dependencies are built.
