file(REMOVE_RECURSE
  "CMakeFiles/table3_kernel_profiles.dir/table3_kernel_profiles.cpp.o"
  "CMakeFiles/table3_kernel_profiles.dir/table3_kernel_profiles.cpp.o.d"
  "table3_kernel_profiles"
  "table3_kernel_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_kernel_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
