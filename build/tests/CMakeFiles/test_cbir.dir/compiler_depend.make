# Empty compiler generated dependencies file for test_cbir.
# This may be replaced when dependencies are built.
