file(REMOVE_RECURSE
  "CMakeFiles/test_cbir.dir/cbir/test_index.cpp.o"
  "CMakeFiles/test_cbir.dir/cbir/test_index.cpp.o.d"
  "CMakeFiles/test_cbir.dir/cbir/test_kmeans.cpp.o"
  "CMakeFiles/test_cbir.dir/cbir/test_kmeans.cpp.o.d"
  "CMakeFiles/test_cbir.dir/cbir/test_linalg.cpp.o"
  "CMakeFiles/test_cbir.dir/cbir/test_linalg.cpp.o.d"
  "CMakeFiles/test_cbir.dir/cbir/test_mini_cnn.cpp.o"
  "CMakeFiles/test_cbir.dir/cbir/test_mini_cnn.cpp.o.d"
  "CMakeFiles/test_cbir.dir/cbir/test_pca.cpp.o"
  "CMakeFiles/test_cbir.dir/cbir/test_pca.cpp.o.d"
  "CMakeFiles/test_cbir.dir/cbir/test_rerank.cpp.o"
  "CMakeFiles/test_cbir.dir/cbir/test_rerank.cpp.o.d"
  "CMakeFiles/test_cbir.dir/cbir/test_shortlist.cpp.o"
  "CMakeFiles/test_cbir.dir/cbir/test_shortlist.cpp.o.d"
  "CMakeFiles/test_cbir.dir/cbir/test_vgg.cpp.o"
  "CMakeFiles/test_cbir.dir/cbir/test_vgg.cpp.o.d"
  "CMakeFiles/test_cbir.dir/cbir/test_workload_model.cpp.o"
  "CMakeFiles/test_cbir.dir/cbir/test_workload_model.cpp.o.d"
  "test_cbir"
  "test_cbir.pdb"
  "test_cbir[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cbir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
