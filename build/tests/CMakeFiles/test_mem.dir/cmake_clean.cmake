file(REMOVE_RECURSE
  "CMakeFiles/test_mem.dir/mem/test_address_map.cpp.o"
  "CMakeFiles/test_mem.dir/mem/test_address_map.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/test_cache.cpp.o"
  "CMakeFiles/test_mem.dir/mem/test_cache.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/test_calibration.cpp.o"
  "CMakeFiles/test_mem.dir/mem/test_calibration.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/test_dimm.cpp.o"
  "CMakeFiles/test_mem.dir/mem/test_dimm.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/test_mem_controller.cpp.o"
  "CMakeFiles/test_mem.dir/mem/test_mem_controller.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/test_memory_system.cpp.o"
  "CMakeFiles/test_mem.dir/mem/test_memory_system.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/test_packet.cpp.o"
  "CMakeFiles/test_mem.dir/mem/test_packet.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/test_tlb.cpp.o"
  "CMakeFiles/test_mem.dir/mem/test_tlb.cpp.o.d"
  "test_mem"
  "test_mem.pdb"
  "test_mem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
