file(REMOVE_RECURSE
  "CMakeFiles/test_gam.dir/gam/test_buffer_table.cpp.o"
  "CMakeFiles/test_gam.dir/gam/test_buffer_table.cpp.o.d"
  "CMakeFiles/test_gam.dir/gam/test_gam.cpp.o"
  "CMakeFiles/test_gam.dir/gam/test_gam.cpp.o.d"
  "CMakeFiles/test_gam.dir/gam/test_gam_pipelining.cpp.o"
  "CMakeFiles/test_gam.dir/gam/test_gam_pipelining.cpp.o.d"
  "CMakeFiles/test_gam.dir/gam/test_gam_stress.cpp.o"
  "CMakeFiles/test_gam.dir/gam/test_gam_stress.cpp.o.d"
  "test_gam"
  "test_gam.pdb"
  "test_gam[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
