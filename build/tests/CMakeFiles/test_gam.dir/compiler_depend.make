# Empty compiler generated dependencies file for test_gam.
# This may be replaced when dependencies are built.
