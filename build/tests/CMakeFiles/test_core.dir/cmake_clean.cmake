file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_cbir_deployment.cpp.o"
  "CMakeFiles/test_core.dir/core/test_cbir_deployment.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_cosim.cpp.o"
  "CMakeFiles/test_core.dir/core/test_cosim.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_reach_system.cpp.o"
  "CMakeFiles/test_core.dir/core/test_reach_system.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_runtime.cpp.o"
  "CMakeFiles/test_core.dir/core/test_runtime.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
