file(REMOVE_RECURSE
  "CMakeFiles/test_acc.dir/acc/test_accelerator.cpp.o"
  "CMakeFiles/test_acc.dir/acc/test_accelerator.cpp.o.d"
  "CMakeFiles/test_acc.dir/acc/test_aim_local_port.cpp.o"
  "CMakeFiles/test_acc.dir/acc/test_aim_local_port.cpp.o.d"
  "CMakeFiles/test_acc.dir/acc/test_aim_module.cpp.o"
  "CMakeFiles/test_acc.dir/acc/test_aim_module.cpp.o.d"
  "CMakeFiles/test_acc.dir/acc/test_kernel_profile.cpp.o"
  "CMakeFiles/test_acc.dir/acc/test_kernel_profile.cpp.o.d"
  "CMakeFiles/test_acc.dir/acc/test_ns_module.cpp.o"
  "CMakeFiles/test_acc.dir/acc/test_ns_module.cpp.o.d"
  "CMakeFiles/test_acc.dir/acc/test_path.cpp.o"
  "CMakeFiles/test_acc.dir/acc/test_path.cpp.o.d"
  "CMakeFiles/test_acc.dir/acc/test_path_sharing.cpp.o"
  "CMakeFiles/test_acc.dir/acc/test_path_sharing.cpp.o.d"
  "test_acc"
  "test_acc.pdb"
  "test_acc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_acc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
