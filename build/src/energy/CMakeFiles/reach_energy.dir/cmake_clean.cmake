file(REMOVE_RECURSE
  "CMakeFiles/reach_energy.dir/energy_model.cc.o"
  "CMakeFiles/reach_energy.dir/energy_model.cc.o.d"
  "libreach_energy.a"
  "libreach_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reach_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
