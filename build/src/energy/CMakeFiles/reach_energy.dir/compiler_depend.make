# Empty compiler generated dependencies file for reach_energy.
# This may be replaced when dependencies are built.
