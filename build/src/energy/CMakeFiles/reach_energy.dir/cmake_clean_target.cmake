file(REMOVE_RECURSE
  "libreach_energy.a"
)
