file(REMOVE_RECURSE
  "libreach_storage.a"
)
