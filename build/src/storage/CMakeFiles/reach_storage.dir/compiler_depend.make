# Empty compiler generated dependencies file for reach_storage.
# This may be replaced when dependencies are built.
