file(REMOVE_RECURSE
  "CMakeFiles/reach_storage.dir/ssd.cc.o"
  "CMakeFiles/reach_storage.dir/ssd.cc.o.d"
  "libreach_storage.a"
  "libreach_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reach_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
