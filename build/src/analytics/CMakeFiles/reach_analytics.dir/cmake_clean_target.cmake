file(REMOVE_RECURSE
  "libreach_analytics.a"
)
