file(REMOVE_RECURSE
  "CMakeFiles/reach_analytics.dir/deployment.cc.o"
  "CMakeFiles/reach_analytics.dir/deployment.cc.o.d"
  "CMakeFiles/reach_analytics.dir/engine.cc.o"
  "CMakeFiles/reach_analytics.dir/engine.cc.o.d"
  "CMakeFiles/reach_analytics.dir/table.cc.o"
  "CMakeFiles/reach_analytics.dir/table.cc.o.d"
  "libreach_analytics.a"
  "libreach_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reach_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
