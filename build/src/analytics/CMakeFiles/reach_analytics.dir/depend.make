# Empty dependencies file for reach_analytics.
# This may be replaced when dependencies are built.
