file(REMOVE_RECURSE
  "libreach_workload.a"
)
