# Empty dependencies file for reach_workload.
# This may be replaced when dependencies are built.
