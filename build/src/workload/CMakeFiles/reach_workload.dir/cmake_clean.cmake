file(REMOVE_RECURSE
  "CMakeFiles/reach_workload.dir/dataset.cc.o"
  "CMakeFiles/reach_workload.dir/dataset.cc.o.d"
  "libreach_workload.a"
  "libreach_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reach_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
