# Empty compiler generated dependencies file for reach_sim.
# This may be replaced when dependencies are built.
