file(REMOVE_RECURSE
  "CMakeFiles/reach_sim.dir/debug.cc.o"
  "CMakeFiles/reach_sim.dir/debug.cc.o.d"
  "CMakeFiles/reach_sim.dir/event_queue.cc.o"
  "CMakeFiles/reach_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/reach_sim.dir/logging.cc.o"
  "CMakeFiles/reach_sim.dir/logging.cc.o.d"
  "CMakeFiles/reach_sim.dir/rng.cc.o"
  "CMakeFiles/reach_sim.dir/rng.cc.o.d"
  "CMakeFiles/reach_sim.dir/simulator.cc.o"
  "CMakeFiles/reach_sim.dir/simulator.cc.o.d"
  "CMakeFiles/reach_sim.dir/stats.cc.o"
  "CMakeFiles/reach_sim.dir/stats.cc.o.d"
  "libreach_sim.a"
  "libreach_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reach_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
