file(REMOVE_RECURSE
  "libreach_sim.a"
)
