file(REMOVE_RECURSE
  "CMakeFiles/reach_core.dir/cbir_deployment.cc.o"
  "CMakeFiles/reach_core.dir/cbir_deployment.cc.o.d"
  "CMakeFiles/reach_core.dir/cosim.cc.o"
  "CMakeFiles/reach_core.dir/cosim.cc.o.d"
  "CMakeFiles/reach_core.dir/reach_system.cc.o"
  "CMakeFiles/reach_core.dir/reach_system.cc.o.d"
  "CMakeFiles/reach_core.dir/runtime.cc.o"
  "CMakeFiles/reach_core.dir/runtime.cc.o.d"
  "libreach_core.a"
  "libreach_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reach_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
