file(REMOVE_RECURSE
  "CMakeFiles/reach_mem.dir/cache.cc.o"
  "CMakeFiles/reach_mem.dir/cache.cc.o.d"
  "CMakeFiles/reach_mem.dir/calibration.cc.o"
  "CMakeFiles/reach_mem.dir/calibration.cc.o.d"
  "CMakeFiles/reach_mem.dir/dimm.cc.o"
  "CMakeFiles/reach_mem.dir/dimm.cc.o.d"
  "CMakeFiles/reach_mem.dir/mem_controller.cc.o"
  "CMakeFiles/reach_mem.dir/mem_controller.cc.o.d"
  "CMakeFiles/reach_mem.dir/memory_system.cc.o"
  "CMakeFiles/reach_mem.dir/memory_system.cc.o.d"
  "CMakeFiles/reach_mem.dir/tlb.cc.o"
  "CMakeFiles/reach_mem.dir/tlb.cc.o.d"
  "libreach_mem.a"
  "libreach_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reach_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
