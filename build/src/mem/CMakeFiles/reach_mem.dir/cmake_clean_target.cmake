file(REMOVE_RECURSE
  "libreach_mem.a"
)
