# Empty dependencies file for reach_mem.
# This may be replaced when dependencies are built.
