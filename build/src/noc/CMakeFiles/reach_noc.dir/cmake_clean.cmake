file(REMOVE_RECURSE
  "CMakeFiles/reach_noc.dir/crossbar.cc.o"
  "CMakeFiles/reach_noc.dir/crossbar.cc.o.d"
  "CMakeFiles/reach_noc.dir/link.cc.o"
  "CMakeFiles/reach_noc.dir/link.cc.o.d"
  "libreach_noc.a"
  "libreach_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reach_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
