# Empty dependencies file for reach_noc.
# This may be replaced when dependencies are built.
