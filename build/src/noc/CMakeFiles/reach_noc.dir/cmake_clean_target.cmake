file(REMOVE_RECURSE
  "libreach_noc.a"
)
