# CMake generated Testfile for 
# Source directory: /root/repo/src/cbir
# Build directory: /root/repo/build/src/cbir
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
