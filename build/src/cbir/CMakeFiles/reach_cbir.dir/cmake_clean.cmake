file(REMOVE_RECURSE
  "CMakeFiles/reach_cbir.dir/index.cc.o"
  "CMakeFiles/reach_cbir.dir/index.cc.o.d"
  "CMakeFiles/reach_cbir.dir/kmeans.cc.o"
  "CMakeFiles/reach_cbir.dir/kmeans.cc.o.d"
  "CMakeFiles/reach_cbir.dir/linalg.cc.o"
  "CMakeFiles/reach_cbir.dir/linalg.cc.o.d"
  "CMakeFiles/reach_cbir.dir/mini_cnn.cc.o"
  "CMakeFiles/reach_cbir.dir/mini_cnn.cc.o.d"
  "CMakeFiles/reach_cbir.dir/pca.cc.o"
  "CMakeFiles/reach_cbir.dir/pca.cc.o.d"
  "CMakeFiles/reach_cbir.dir/rerank.cc.o"
  "CMakeFiles/reach_cbir.dir/rerank.cc.o.d"
  "CMakeFiles/reach_cbir.dir/shortlist.cc.o"
  "CMakeFiles/reach_cbir.dir/shortlist.cc.o.d"
  "CMakeFiles/reach_cbir.dir/vgg.cc.o"
  "CMakeFiles/reach_cbir.dir/vgg.cc.o.d"
  "CMakeFiles/reach_cbir.dir/workload_model.cc.o"
  "CMakeFiles/reach_cbir.dir/workload_model.cc.o.d"
  "libreach_cbir.a"
  "libreach_cbir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reach_cbir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
