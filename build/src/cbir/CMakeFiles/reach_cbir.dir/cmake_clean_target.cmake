file(REMOVE_RECURSE
  "libreach_cbir.a"
)
