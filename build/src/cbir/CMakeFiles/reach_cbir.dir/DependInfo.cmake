
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cbir/index.cc" "src/cbir/CMakeFiles/reach_cbir.dir/index.cc.o" "gcc" "src/cbir/CMakeFiles/reach_cbir.dir/index.cc.o.d"
  "/root/repo/src/cbir/kmeans.cc" "src/cbir/CMakeFiles/reach_cbir.dir/kmeans.cc.o" "gcc" "src/cbir/CMakeFiles/reach_cbir.dir/kmeans.cc.o.d"
  "/root/repo/src/cbir/linalg.cc" "src/cbir/CMakeFiles/reach_cbir.dir/linalg.cc.o" "gcc" "src/cbir/CMakeFiles/reach_cbir.dir/linalg.cc.o.d"
  "/root/repo/src/cbir/mini_cnn.cc" "src/cbir/CMakeFiles/reach_cbir.dir/mini_cnn.cc.o" "gcc" "src/cbir/CMakeFiles/reach_cbir.dir/mini_cnn.cc.o.d"
  "/root/repo/src/cbir/pca.cc" "src/cbir/CMakeFiles/reach_cbir.dir/pca.cc.o" "gcc" "src/cbir/CMakeFiles/reach_cbir.dir/pca.cc.o.d"
  "/root/repo/src/cbir/rerank.cc" "src/cbir/CMakeFiles/reach_cbir.dir/rerank.cc.o" "gcc" "src/cbir/CMakeFiles/reach_cbir.dir/rerank.cc.o.d"
  "/root/repo/src/cbir/shortlist.cc" "src/cbir/CMakeFiles/reach_cbir.dir/shortlist.cc.o" "gcc" "src/cbir/CMakeFiles/reach_cbir.dir/shortlist.cc.o.d"
  "/root/repo/src/cbir/vgg.cc" "src/cbir/CMakeFiles/reach_cbir.dir/vgg.cc.o" "gcc" "src/cbir/CMakeFiles/reach_cbir.dir/vgg.cc.o.d"
  "/root/repo/src/cbir/workload_model.cc" "src/cbir/CMakeFiles/reach_cbir.dir/workload_model.cc.o" "gcc" "src/cbir/CMakeFiles/reach_cbir.dir/workload_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/reach_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/acc/CMakeFiles/reach_acc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/reach_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/reach_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/reach_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
