# Empty compiler generated dependencies file for reach_cbir.
# This may be replaced when dependencies are built.
