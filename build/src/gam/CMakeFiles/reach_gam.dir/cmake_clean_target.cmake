file(REMOVE_RECURSE
  "libreach_gam.a"
)
