file(REMOVE_RECURSE
  "CMakeFiles/reach_gam.dir/buffer_table.cc.o"
  "CMakeFiles/reach_gam.dir/buffer_table.cc.o.d"
  "CMakeFiles/reach_gam.dir/gam.cc.o"
  "CMakeFiles/reach_gam.dir/gam.cc.o.d"
  "libreach_gam.a"
  "libreach_gam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reach_gam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
