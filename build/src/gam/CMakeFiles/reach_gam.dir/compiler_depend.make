# Empty compiler generated dependencies file for reach_gam.
# This may be replaced when dependencies are built.
