file(REMOVE_RECURSE
  "libreach_acc.a"
)
