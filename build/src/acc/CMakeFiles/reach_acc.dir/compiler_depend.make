# Empty compiler generated dependencies file for reach_acc.
# This may be replaced when dependencies are built.
