file(REMOVE_RECURSE
  "CMakeFiles/reach_acc.dir/accelerator.cc.o"
  "CMakeFiles/reach_acc.dir/accelerator.cc.o.d"
  "CMakeFiles/reach_acc.dir/aim_local_port.cc.o"
  "CMakeFiles/reach_acc.dir/aim_local_port.cc.o.d"
  "CMakeFiles/reach_acc.dir/aim_module.cc.o"
  "CMakeFiles/reach_acc.dir/aim_module.cc.o.d"
  "CMakeFiles/reach_acc.dir/kernel_profile.cc.o"
  "CMakeFiles/reach_acc.dir/kernel_profile.cc.o.d"
  "CMakeFiles/reach_acc.dir/ns_module.cc.o"
  "CMakeFiles/reach_acc.dir/ns_module.cc.o.d"
  "CMakeFiles/reach_acc.dir/path.cc.o"
  "CMakeFiles/reach_acc.dir/path.cc.o.d"
  "libreach_acc.a"
  "libreach_acc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reach_acc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
