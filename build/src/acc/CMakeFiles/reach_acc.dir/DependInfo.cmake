
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/acc/accelerator.cc" "src/acc/CMakeFiles/reach_acc.dir/accelerator.cc.o" "gcc" "src/acc/CMakeFiles/reach_acc.dir/accelerator.cc.o.d"
  "/root/repo/src/acc/aim_local_port.cc" "src/acc/CMakeFiles/reach_acc.dir/aim_local_port.cc.o" "gcc" "src/acc/CMakeFiles/reach_acc.dir/aim_local_port.cc.o.d"
  "/root/repo/src/acc/aim_module.cc" "src/acc/CMakeFiles/reach_acc.dir/aim_module.cc.o" "gcc" "src/acc/CMakeFiles/reach_acc.dir/aim_module.cc.o.d"
  "/root/repo/src/acc/kernel_profile.cc" "src/acc/CMakeFiles/reach_acc.dir/kernel_profile.cc.o" "gcc" "src/acc/CMakeFiles/reach_acc.dir/kernel_profile.cc.o.d"
  "/root/repo/src/acc/ns_module.cc" "src/acc/CMakeFiles/reach_acc.dir/ns_module.cc.o" "gcc" "src/acc/CMakeFiles/reach_acc.dir/ns_module.cc.o.d"
  "/root/repo/src/acc/path.cc" "src/acc/CMakeFiles/reach_acc.dir/path.cc.o" "gcc" "src/acc/CMakeFiles/reach_acc.dir/path.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/reach_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/reach_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/reach_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/reach_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
