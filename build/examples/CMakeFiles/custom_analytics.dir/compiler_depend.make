# Empty compiler generated dependencies file for custom_analytics.
# This may be replaced when dependencies are built.
