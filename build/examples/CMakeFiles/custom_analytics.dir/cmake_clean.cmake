file(REMOVE_RECURSE
  "CMakeFiles/custom_analytics.dir/custom_analytics.cpp.o"
  "CMakeFiles/custom_analytics.dir/custom_analytics.cpp.o.d"
  "custom_analytics"
  "custom_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
