file(REMOVE_RECURSE
  "CMakeFiles/single_level_comparison.dir/single_level_comparison.cpp.o"
  "CMakeFiles/single_level_comparison.dir/single_level_comparison.cpp.o.d"
  "single_level_comparison"
  "single_level_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/single_level_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
