# Empty dependencies file for single_level_comparison.
# This may be replaced when dependencies are built.
