
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/cbir_pipeline.cpp" "examples/CMakeFiles/cbir_pipeline.dir/cbir_pipeline.cpp.o" "gcc" "examples/CMakeFiles/cbir_pipeline.dir/cbir_pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/reach_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/reach_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/gam/CMakeFiles/reach_gam.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/reach_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/cbir/CMakeFiles/reach_cbir.dir/DependInfo.cmake"
  "/root/repo/build/src/acc/CMakeFiles/reach_acc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/reach_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/reach_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/reach_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/reach_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
