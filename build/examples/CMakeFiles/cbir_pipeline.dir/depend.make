# Empty dependencies file for cbir_pipeline.
# This may be replaced when dependencies are built.
