file(REMOVE_RECURSE
  "CMakeFiles/cbir_pipeline.dir/cbir_pipeline.cpp.o"
  "CMakeFiles/cbir_pipeline.dir/cbir_pipeline.cpp.o.d"
  "cbir_pipeline"
  "cbir_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbir_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
