# Empty dependencies file for cosim_retrieval.
# This may be replaced when dependencies are built.
