file(REMOVE_RECURSE
  "CMakeFiles/cosim_retrieval.dir/cosim_retrieval.cpp.o"
  "CMakeFiles/cosim_retrieval.dir/cosim_retrieval.cpp.o.d"
  "cosim_retrieval"
  "cosim_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosim_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
