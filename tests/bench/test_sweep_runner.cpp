/**
 * @file
 * Tests for the parallel sweep runner and its command-line plumbing
 * (bench/common.hh): option parsing, result ordering, and the
 * determinism contract — a sweep at any job count must produce
 * results bitwise identical to the serial run.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common.hh"
#include "sim/logging.hh"

namespace reach::bench
{
namespace
{

SweepOptions
parse(std::vector<const char *> args)
{
    args.insert(args.begin(), "bench");
    return parseSweepOptions(
        static_cast<int>(args.size()),
        const_cast<char **>(args.data()));
}

class SweepOptionsEnv : public ::testing::Test
{
  protected:
    void SetUp() override { ::unsetenv("REACH_SWEEP_JOBS"); }
    void TearDown() override { ::unsetenv("REACH_SWEEP_JOBS"); }
};

TEST_F(SweepOptionsEnv, DefaultsToHardwareConcurrency)
{
    SweepOptions opt = parse({});
    EXPECT_EQ(opt.jobs, 0u);
    EXPECT_GE(opt.resolved(), 1u);
}

TEST_F(SweepOptionsEnv, ParsesJobsFlagBothSpellings)
{
    EXPECT_EQ(parse({"--jobs", "3"}).jobs, 3u);
    EXPECT_EQ(parse({"--jobs=5"}).jobs, 5u);
    // Flag beats environment.
    ::setenv("REACH_SWEEP_JOBS", "7", 1);
    EXPECT_EQ(parse({"--jobs", "2"}).jobs, 2u);
}

TEST_F(SweepOptionsEnv, ReadsEnvironmentWhenNoFlag)
{
    ::setenv("REACH_SWEEP_JOBS", "6", 1);
    EXPECT_EQ(parse({}).jobs, 6u);
}

TEST_F(SweepOptionsEnv, IgnoresUnknownArguments)
{
    EXPECT_EQ(parse({"--frobnicate", "--jobs", "4", "positional"}).jobs,
              4u);
}

TEST_F(SweepOptionsEnv, RejectsMalformedValues)
{
    EXPECT_THROW(parse({"--jobs", "banana"}), sim::SimFatal);
    EXPECT_THROW(parse({"--jobs", "-2"}), sim::SimFatal);
    EXPECT_THROW(parse({"--jobs=99999"}), sim::SimFatal);
    ::setenv("REACH_SWEEP_JOBS", "nope", 1);
    EXPECT_THROW(parse({}), sim::SimFatal);
}

TEST(RunSweep, ResultsLandInPointOrder)
{
    SweepOptions opt;
    opt.jobs = 4;
    std::atomic<int> calls{0};
    auto out = runSweep(37, opt, [&](std::size_t i) {
        calls.fetch_add(1, std::memory_order_relaxed);
        return static_cast<int>(i * i);
    });
    ASSERT_EQ(out.size(), 37u);
    EXPECT_EQ(calls.load(), 37);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i * i));
}

TEST(RunSweep, SerialAndZeroPointEdgeCases)
{
    SweepOptions serial;
    serial.jobs = 1;
    auto one = runSweep(1, serial, [](std::size_t i) { return i + 1; });
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], 1u);
    auto none =
        runSweep(0, serial, [](std::size_t i) { return i; });
    EXPECT_TRUE(none.empty());
}

/** Bitwise equality, field by field (double == is exact here). */
void
expectStageResultsIdentical(const StageResult &a, const StageResult &b)
{
    EXPECT_EQ(std::memcmp(&a.runtimeSeconds, &b.runtimeSeconds,
                          sizeof(double)),
              0);
    EXPECT_EQ(std::memcmp(&a.energyJoules, &b.energyJoules,
                          sizeof(double)),
              0);
    for (std::size_t c = 0; c < a.breakdown.joules.size(); ++c)
        EXPECT_EQ(std::memcmp(&a.breakdown.joules[c],
                              &b.breakdown.joules[c], sizeof(double)),
                  0)
            << "component " << c;
}

TEST(RunSweep, StageSweepIsBitwiseIdenticalAcrossJobCounts)
{
    sim::setQuiet(true);
    // A small slice of the Fig. 10 sweep: enough points to actually
    // overlap when jobs > 1, cheap enough for a unit test.
    struct Point
    {
        acc::Level level;
        std::uint32_t instances;
    };
    const std::vector<Point> points = {
        {acc::Level::OnChip, 1},
        {acc::Level::NearMem, 1},
        {acc::Level::NearMem, 2},
        {acc::Level::NearStor, 2},
    };
    auto run = [&](unsigned jobs) {
        SweepOptions opt;
        opt.jobs = jobs;
        return runSweep(points.size(), opt, [&](std::size_t i) {
            return runStage(Stage::Shortlist, points[i].level,
                            points[i].instances, 1);
        });
    };
    auto serial = run(1);
    auto wide = run(4);
    ASSERT_EQ(serial.size(), wide.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(i));
        expectStageResultsIdentical(serial[i], wide[i]);
    }
}

} // namespace
} // namespace reach::bench
