/** @file Unit + property tests for k-means clustering. */

#include <gtest/gtest.h>

#include "cbir/kmeans.hh"
#include "sim/logging.hh"
#include "workload/dataset.hh"

using namespace reach;
using namespace reach::cbir;

namespace
{

Matrix
wellSeparated(std::size_t per_cluster)
{
    // Three tight blobs at (0,0), (100,0), (0,100).
    Matrix m(3 * per_cluster, 2);
    sim::Rng rng(5);
    const float cx[3] = {0, 100, 0};
    const float cy[3] = {0, 0, 100};
    for (std::size_t i = 0; i < m.rows(); ++i) {
        std::size_t c = i % 3;
        m.at(i, 0) = cx[c] + static_cast<float>(rng.nextGaussian());
        m.at(i, 1) = cy[c] + static_cast<float>(rng.nextGaussian());
    }
    return m;
}

} // namespace

TEST(KMeans, TooFewPointsIsFatal)
{
    Matrix pts(3, 2);
    KMeansConfig cfg;
    cfg.clusters = 5;
    EXPECT_THROW(kMeans(pts, cfg), sim::SimFatal);
}

TEST(KMeans, FindsWellSeparatedClusters)
{
    Matrix pts = wellSeparated(60);
    KMeansConfig cfg;
    cfg.clusters = 3;
    KMeansResult res = kMeans(pts, cfg);

    // Every point near its centroid: inertia per point ~ 2 (unit
    // gaussian in 2D), allow slack.
    EXPECT_LT(res.inertia / pts.rows(), 6.0);

    // Points of the same blob share an assignment.
    for (std::size_t i = 3; i < pts.rows(); ++i)
        EXPECT_EQ(res.assignment[i], res.assignment[i % 3]);
}

TEST(KMeans, AssignmentsConsistentWithNearestCentroid)
{
    Matrix pts = wellSeparated(40);
    KMeansConfig cfg;
    cfg.clusters = 3;
    KMeansResult res = kMeans(pts, cfg);
    for (std::size_t i = 0; i < pts.rows(); ++i) {
        EXPECT_EQ(res.assignment[i],
                  nearestCentroid(res.centroids, pts.row(i)));
    }
}

TEST(KMeans, DeterministicForFixedSeed)
{
    Matrix pts = wellSeparated(40);
    KMeansConfig cfg;
    cfg.clusters = 3;
    KMeansResult a = kMeans(pts, cfg);
    KMeansResult b = kMeans(pts, cfg);
    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeans, InertiaNotWorseThanSingleCluster)
{
    Matrix pts = wellSeparated(40);
    KMeansConfig one;
    one.clusters = 1;
    KMeansConfig three;
    three.clusters = 3;
    EXPECT_LT(kMeans(pts, three).inertia, kMeans(pts, one).inertia);
}

TEST(KMeans, RespectsIterationCap)
{
    Matrix pts = wellSeparated(40);
    KMeansConfig cfg;
    cfg.clusters = 3;
    cfg.maxIterations = 2;
    KMeansResult res = kMeans(pts, cfg);
    EXPECT_LE(res.iterations, 2u);
}

TEST(KMeans, ExactClusterCountEqualPoints)
{
    // clusters == points: every point is its own centroid.
    Matrix pts(4, 2);
    for (std::size_t i = 0; i < 4; ++i) {
        pts.at(i, 0) = static_cast<float>(10 * i);
        pts.at(i, 1) = 0;
    }
    KMeansConfig cfg;
    cfg.clusters = 4;
    KMeansResult res = kMeans(pts, cfg);
    EXPECT_LT(res.inertia, 1e-6);
}

TEST(NearestCentroidTest, PicksClosest)
{
    Matrix cents(2, 1);
    cents.at(0, 0) = 0;
    cents.at(1, 0) = 10;
    std::vector<float> v{7.0f};
    EXPECT_EQ(nearestCentroid(cents, v), 1u);
}

/** Property: Lloyd iterations never increase inertia per point as
 *  the cluster budget grows. */
class KMeansBudget : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(KMeansBudget, MoreClustersNoWorseInertia)
{
    workload::DatasetConfig dc;
    dc.numVectors = 600;
    dc.dim = 8;
    dc.latentClusters = 12;
    workload::Dataset ds(dc);

    KMeansConfig small;
    small.clusters = GetParam();
    KMeansConfig big;
    big.clusters = GetParam() * 2;

    double si = kMeans(ds.vectors(), small).inertia;
    double bi = kMeans(ds.vectors(), big).inertia;
    EXPECT_LE(bi, si * 1.05); // small tolerance for local optima
}

INSTANTIATE_TEST_SUITE_P(Budgets, KMeansBudget,
                         ::testing::Values(2, 4, 8, 16));
