/**
 * @file
 * The cluster-major batched rerank's contract: RerankConfig::
 * batchedScan changes only where code blocks stream from — never a
 * bit of the results. Every test compares the batched scan against
 * the query-major scan EXPECT_EQ-bitwise, across code widths,
 * backends, thread counts, refine depths, degenerate batch shapes,
 * and a fixture with planted distance ties (duplicated database
 * rows), where any reordering of the candidate sweep would surface
 * as a different tie-break.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "cbir/index.hh"
#include "cbir/pq.hh"
#include "cbir/rerank.hh"
#include "cbir/shortlist.hh"
#include "workload/dataset.hh"

using namespace reach;
using namespace reach::cbir;

namespace
{

/**
 * 1000 x 32 clustered vectors with every 7th row overwritten by its
 * predecessor: exact duplicates produce exact ADC ties, so the
 * batched scan must visit candidates in the query-major order (or
 * break ties identically) to match bitwise. Queries are Zipf-skewed
 * so the batch's probes overlap heavily — the case the cluster-major
 * scan exists for.
 */
workload::Dataset
tieDataset()
{
    workload::DatasetConfig dc;
    dc.numVectors = 1000;
    dc.dim = 32;
    dc.latentClusters = 12;
    return workload::Dataset(dc);
}

/** Copy with every 7th row overwritten by its predecessor. */
Matrix
withPlantedTies(const Matrix &src)
{
    Matrix db(src.rows(), src.cols());
    for (std::size_t r = 0; r < db.rows(); ++r) {
        auto from = src.row(r % 7 == 3 && r > 0 ? r - 1 : r);
        std::copy(from.begin(), from.end(), db.row(r).begin());
    }
    return db;
}

KMeansConfig
smallKMeans()
{
    KMeansConfig kc;
    kc.clusters = 20;
    return kc;
}

struct BatchedFixture
{
    workload::Dataset ds;
    Matrix db;
    InvertedFileIndex idx;
    Matrix queries;
    ShortLists lists;

    explicit BatchedFixture(std::uint32_t bits = 8,
                            std::size_t num_queries = 10)
        : ds(tieDataset()),
          db(withPlantedTies(ds.vectors())),
          idx(db, smallKMeans()),
          queries(ds.makeQueriesZipf(num_queries, 0.2, 31, 1.0))
    {
        PqConfig pc;
        pc.enabled = true;
        pc.m = 8;
        pc.bits = bits;
        pc.trainIterations = 4;
        idx.buildPq(db, pc);
        lists = shortlistRetrieve(queries, idx, 6);
    }
};

RerankConfig
pqRerankConfig(std::uint32_t refine = 0)
{
    RerankConfig rc;
    rc.k = 10;
    rc.maxCandidates = 4096;
    rc.usePq = true;
    rc.pqRefine = refine;
    rc.parallel = parallel::ParallelConfig::serial();
    return rc;
}

void
expectIdentical(const RerankResults &a, const RerankResults &b,
                const char *what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t q = 0; q < a.size(); ++q)
        EXPECT_EQ(a[q], b[q]) << what << " query " << q;
}

} // namespace

/**
 * The full mode matrix: code width x backend x threads x refine.
 * Batched and query-major scans must agree bitwise in every cell —
 * including under exact refine, whose candidate set is the ADC top
 * pqRefine and therefore sensitive to any ordering drift.
 */
TEST(RerankBatched, MatchesQueryMajorBitwiseAcrossModes)
{
    for (std::uint32_t bits : {8u, 4u}) {
        BatchedFixture f(bits);
        for (simd::Choice ch :
             {simd::Choice::scalar, simd::Choice::avx2}) {
            if (ch == simd::Choice::avx2 &&
                !simd::supported(simd::Backend::avx2)) {
                continue;
            }
            for (unsigned threads : {1u, 4u}) {
                for (std::uint32_t refine : {0u, 32u}) {
                    RerankConfig rc = pqRerankConfig(refine);
                    rc.parallel.simd = ch;
                    rc.parallel.threads = threads;
                    auto major = rerank(f.queries, f.db, f.idx,
                                        f.lists, rc);
                    rc.batchedScan = true;
                    auto batched = rerank(f.queries, f.db, f.idx,
                                          f.lists, rc);
                    std::string what =
                        "bits=" + std::to_string(bits) + " simd=" +
                        std::to_string(static_cast<int>(ch)) +
                        " threads=" + std::to_string(threads) +
                        " refine=" + std::to_string(refine);
                    expectIdentical(major, batched, what.c_str());
                }
            }
        }
    }
}

/** A one-query batch has nothing to amortize; bits still match. */
TEST(RerankBatched, SingleQueryDegeneratesToQueryMajor)
{
    for (std::uint32_t bits : {8u, 4u}) {
        BatchedFixture f(bits, 1);
        RerankConfig rc = pqRerankConfig();
        auto major = rerank(f.queries, f.db, f.idx, f.lists, rc);
        rc.batchedScan = true;
        auto batched = rerank(f.queries, f.db, f.idx, f.lists, rc);
        expectIdentical(major, batched, "single query");
    }
}

/**
 * Probes that never overlap: every cluster block serves exactly one
 * query, so the batched plan is a pure reordering of the query-major
 * work with no sharing — the worst case for the optimization and a
 * direct test of the per-(query, cluster) segment bookkeeping.
 */
TEST(RerankBatched, NonOverlappingProbesMatch)
{
    BatchedFixture f(4);
    ShortLists disjoint(f.queries.rows());
    const std::uint32_t per = f.idx.numClusters() / 4;
    for (std::size_t q = 0; q < disjoint.size(); ++q) {
        for (std::uint32_t c = 0; c < per; ++c)
            disjoint[q].push_back((q * per + c) % f.idx.numClusters());
    }
    RerankConfig rc = pqRerankConfig(16);
    auto major = rerank(f.queries, f.db, f.idx, disjoint, rc);
    rc.batchedScan = true;
    auto batched = rerank(f.queries, f.db, f.idx, disjoint, rc);
    expectIdentical(major, batched, "disjoint probes");
}

/**
 * Candidate budget smaller than the first probed cluster: the scan
 * must truncate the very first block rather than wrap an unsigned
 * remaining-budget subtraction (the scoreCandidatesPq guard), and
 * batched truncation must pick the same prefix.
 */
TEST(RerankBatched, BudgetSmallerThanFirstClusterTruncatesExactly)
{
    for (std::uint32_t bits : {8u, 4u}) {
        BatchedFixture f(bits);
        RerankConfig rc = pqRerankConfig();
        rc.k = 3;
        rc.maxCandidates = 3; // clusters hold ~50 vectors each
        auto major = rerank(f.queries, f.db, f.idx, f.lists, rc);
        for (const auto &nbrs : major)
            EXPECT_LE(nbrs.size(), 3u);
        rc.batchedScan = true;
        auto batched = rerank(f.queries, f.db, f.idx, f.lists, rc);
        expectIdentical(major, batched, "tiny budget");
    }
}

/** Unlimited budget sweeps whole clusters through both plans. */
TEST(RerankBatched, UnlimitedBudgetMatches)
{
    BatchedFixture f(8);
    RerankConfig rc = pqRerankConfig(24);
    rc.maxCandidates = 0;
    auto major = rerank(f.queries, f.db, f.idx, f.lists, rc);
    rc.batchedScan = true;
    auto batched = rerank(f.queries, f.db, f.idx, f.lists, rc);
    expectIdentical(major, batched, "unlimited budget");
}

/** batchedScan without usePq is documented as ignored. */
TEST(RerankBatched, IgnoredWithoutPq)
{
    BatchedFixture f(8);
    RerankConfig rc;
    rc.k = 10;
    rc.maxCandidates = 300;
    rc.parallel = parallel::ParallelConfig::serial();
    auto exact = rerank(f.queries, f.db, f.idx, f.lists, rc);
    rc.batchedScan = true;
    auto flagged = rerank(f.queries, f.db, f.idx, f.lists, rc);
    expectIdentical(exact, flagged, "no pq");
}
