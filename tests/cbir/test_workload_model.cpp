/**
 * @file
 * Tests that the workload model reproduces Table I and produces
 * consistent, partition-scalable work units.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "cbir/workload_model.hh"
#include "sim/logging.hh"

using namespace reach;
using namespace reach::cbir;

namespace
{

ScaleConfig
paperScale()
{
    return ScaleConfig{}; // defaults = paper setup
}

} // namespace

TEST(WorkloadModel, TableOneFootprints)
{
    CbirWorkloadModel m(paperScale());
    // Model parameters: 11.3 MB compressed.
    EXPECT_EQ(m.modelParamBytes(), 11'300'000u);
    // Centroids + cell info: ~2.2 GB.
    EXPECT_NEAR(static_cast<double>(m.centroidAndCellBytes()) / 1e9,
                2.2, 0.1);
    // Feature database: ~384 GB decimal (355 GiB in Table I).
    EXPECT_NEAR(static_cast<double>(m.databaseBytes()) / 1e9, 384.0,
                1.0);
}

TEST(WorkloadModel, UncompressedModelIs552MB)
{
    ScaleConfig s = paperScale();
    s.compressedModel = false;
    CbirWorkloadModel m(s);
    EXPECT_NEAR(static_cast<double>(m.modelParamBytes()) / 1e6, 552.0,
                12.0);
}

TEST(WorkloadModel, FeatureExtractionBatchedVsSingle)
{
    CbirWorkloadModel m(paperScale());
    auto batch = m.featureExtractionBatch();
    auto single = m.featureExtractionSingle();

    EXPECT_NEAR(batch.ops, single.ops * 16, single.ops * 0.01);
    EXPECT_EQ(batch.bytesIn, single.bytesIn * 16);
    // Parameters are duplicated per instance, not split.
    EXPECT_EQ(batch.paramBytes, single.paramBytes);
    EXPECT_TRUE(batch.inputResident);
    EXPECT_FALSE(single.inputResident);
}

TEST(WorkloadModel, PrunedMacsScaleWithFraction)
{
    ScaleConfig dense = paperScale();
    dense.compressedModel = false;
    ScaleConfig pruned = paperScale();
    CbirWorkloadModel dm(dense), pm(pruned);
    EXPECT_NEAR(pm.featureExtractionSingle().ops,
                dm.featureExtractionSingle().ops *
                    pruned.prunedMacFraction,
                1e6);
}

TEST(WorkloadModel, ShortlistPartitionsDivideTraffic)
{
    CbirWorkloadModel m(paperScale());
    auto whole = m.shortlistBatch(1);
    auto quarter = m.shortlistBatch(4);
    EXPECT_NEAR(static_cast<double>(quarter.bytesIn),
                static_cast<double>(whole.bytesIn) / 4,
                static_cast<double>(whole.bytesIn) * 0.01);
    EXPECT_NEAR(quarter.ops, whole.ops / 4, whole.ops * 0.01);
}

TEST(WorkloadModel, ShortlistIsCellInfoDominated)
{
    CbirWorkloadModel m(paperScale());
    auto w = m.shortlistBatch(1);
    // Cell-info scan traffic dwarfs the centroid matrix (Table I's
    // "memory-bound" classification).
    std::uint64_t centroid_bytes = 1000ull * 96 * 4;
    EXPECT_GT(w.bytesIn, 100 * centroid_bytes);
}

TEST(WorkloadModel, RerankTrafficIsPageGranular)
{
    CbirWorkloadModel m(paperScale());
    auto w = m.rerankBatch(1);
    EXPECT_EQ(w.bytesIn,
              std::uint64_t(16) * 4096 * 4096); // B*cands*page
}

TEST(WorkloadModel, PqRerankBytesDropToCodeSize)
{
    ScaleConfig s = paperScale();
    s.pq.enabled = true;
    s.pq.m = 32;
    s.pq.refine = 0;
    CbirWorkloadModel m(s);
    auto w = m.rerankBatch(1);
    // No refine: the sequential code scan is the only storage read —
    // bytes drop from candidates * flashPage to candidates * m,
    // exactly proportional to the code size.
    std::uint64_t candidates = 16ull * 4096;
    EXPECT_EQ(w.bytesIn, candidates * 32);
    EXPECT_EQ(m.rerankCandidateBytes(), 32u);

    CbirWorkloadModel exact(paperScale());
    EXPECT_EQ(exact.rerankBatch(1).bytesIn / w.bytesIn,
              std::uint64_t(exact.rerankCandidateBytes()) / 32);
}

TEST(WorkloadModel, PqRefineAddsPageGranularGathers)
{
    ScaleConfig s = paperScale();
    s.pq.enabled = true;
    s.pq.m = 32;
    s.pq.refine = 128;
    CbirWorkloadModel m(s);
    auto w = m.rerankBatch(1);
    std::uint64_t candidates = 16ull * 4096;
    EXPECT_EQ(w.bytesIn, candidates * 32 + 16ull * 128 * 4096);
    // Even with refine, compressed traffic stays far below exact.
    CbirWorkloadModel exact(paperScale());
    EXPECT_LT(w.bytesIn, exact.rerankBatch(1).bytesIn / 10);
    // Compute: lookups + LUT build + refine MACs stay below the
    // exact path's D MACs per candidate.
    EXPECT_LT(w.ops, exact.rerankBatch(1).ops);
}

TEST(WorkloadModel, FourBitHalvesTheCodeScan)
{
    ScaleConfig s8 = paperScale();
    s8.pq.enabled = true;
    s8.pq.m = 32;
    s8.pq.refine = 0;
    ScaleConfig s4 = s8;
    s4.pq.bits = 4;
    CbirWorkloadModel m8(s8), m4(s4);
    // Packed codes: (m+1)/2 bytes per candidate instead of m.
    EXPECT_EQ(m4.rerankCandidateBytes(), 16u);
    EXPECT_EQ(m8.rerankBatch(1).bytesIn, 2 * m4.rerankBatch(1).bytesIn);
    // The per-query table build shrinks 16x (16 vs 256 entries per
    // subspace), so total rerank compute drops too.
    EXPECT_LT(m4.rerankBatch(1).ops, m8.rerankBatch(1).ops);
}

TEST(WorkloadModel, HalfPrecisionCentroidsShrinkTheScan)
{
    ScaleConfig fp32 = paperScale();
    ScaleConfig fp16 = paperScale();
    fp16.centroidBytesPerDim = 2;
    CbirWorkloadModel a(fp32), b(fp16);

    // The centroid matrix halves; the ||C||^2 tail and cell info are
    // unchanged.
    std::uint64_t cents32 = 1000ull * 96 * 4;
    std::uint64_t cents16 = 1000ull * 96 * 2;
    EXPECT_EQ(a.centroidAndCellBytes() - b.centroidAndCellBytes(),
              cents32 - cents16);
    EXPECT_EQ(a.shortlistBatch(1).bytesIn - b.shortlistBatch(1).bytesIn,
              cents32 - cents16);
    // Compute is unchanged: precision only affects storage traffic.
    EXPECT_EQ(a.shortlistBatch(1).ops, b.shortlistBatch(1).ops);

    ScaleConfig bad = paperScale();
    bad.centroidBytesPerDim = 3;
    EXPECT_THROW(CbirWorkloadModel{bad}, sim::SimFatal);
}

TEST(WorkloadModel, ShortlistPlacementDefaultsToDdr)
{
    ScaleConfig s = paperScale();
    EXPECT_EQ(s.shortlistPlacement, ScanPlacement::Ddr);
    s.shortlistPlacement = ScanPlacement::Hbm;
    // The knob lives on ScaleConfig so sweeps carry it alongside the
    // traffic model; the byte counts themselves do not change — only
    // the link the system charges them to.
    CbirWorkloadModel ddr(paperScale()), hbm(s);
    EXPECT_EQ(ddr.shortlistBatch(1).bytesIn, hbm.shortlistBatch(1).bytesIn);
    EXPECT_EQ(hbm.scale().shortlistPlacement, ScanPlacement::Hbm);
}

TEST(WorkloadModel, PqConfigValidatedAtConstruction)
{
    ScaleConfig s = paperScale();
    s.pq.enabled = true;
    s.pq.m = 7; // does not divide dim = 96
    EXPECT_THROW(CbirWorkloadModel{s}, sim::SimFatal);
    s.pq.enabled = false;
    CbirWorkloadModel ok{s}; // disabled blocks are not validated
    EXPECT_EQ(ok.rerankCandidateBytes(), 4096u);
}

TEST(WorkloadModel, RerankComputeLight)
{
    CbirWorkloadModel m(paperScale());
    auto rr = m.rerankBatch(1);
    auto fe = m.featureExtractionBatch();
    // Table I: rerank is "Low" compute, feature extraction "High".
    EXPECT_LT(rr.ops, fe.ops / 100);
}

TEST(WorkloadModel, ZeroPartitionsTreatedAsOne)
{
    CbirWorkloadModel m(paperScale());
    EXPECT_EQ(m.shortlistBatch(0).bytesIn, m.shortlistBatch(1).bytesIn);
    EXPECT_EQ(m.rerankBatch(0).bytesIn, m.rerankBatch(1).bytesIn);
}

TEST(WorkloadModel, ClusterSizeIsDatabaseOverCentroids)
{
    CbirWorkloadModel m(paperScale());
    EXPECT_EQ(m.clusterSizeIds(), 1'000'000'000u / 1000u);
}

TEST(WorkloadModel, ExpectedDistinctClustersProperties)
{
    // Degenerate inputs.
    EXPECT_EQ(expectedDistinctProbedClusters(0, 0, 16), 0.0);
    EXPECT_EQ(expectedDistinctProbedClusters(100, 0, 0), 0.0);
    // One probe hits exactly one cluster at any skew.
    EXPECT_NEAR(expectedDistinctProbedClusters(1000, 0, 1), 1.0, 1e-9);
    EXPECT_NEAR(expectedDistinctProbedClusters(1000, 1.0, 1), 1.0,
                1e-9);
    // Monotone in probes, bounded by both probes and cluster count.
    double prev = 0;
    for (double probes : {1.0, 8.0, 64.0, 512.0, 4096.0}) {
        double d = expectedDistinctProbedClusters(256, 0, probes);
        EXPECT_GT(d, prev) << "probes=" << probes;
        EXPECT_LE(d, std::min(probes, 256.0) + 1e-9);
        prev = d;
    }
    // Skew concentrates probes on hot clusters: fewer distinct hits.
    EXPECT_LT(expectedDistinctProbedClusters(256, 1.0, 128),
              expectedDistinctProbedClusters(256, 0, 128));
    // Saturation: far more probes than clusters reaches ~all of them.
    EXPECT_NEAR(expectedDistinctProbedClusters(64, 0, 1e5), 64.0,
                1e-6);
}

namespace
{

/**
 * A scale where the candidate budget spans all nprobe clusters (1000
 * ids per cluster, budget 8000), so the batched scan has real
 * cross-query block sharing to amortize.
 */
ScaleConfig
batchedScale()
{
    ScaleConfig s;
    s.databaseVectors = 1'000'000;
    s.numCentroids = 1000;
    s.batchSize = 32;
    s.nprobe = 8;
    s.rerankCandidates = 8000;
    s.pq.enabled = true;
    s.pq.m = 32;
    s.pq.bits = 4;
    s.pq.refine = 0;
    s.batchedRerank = true;
    s.probeZipfS = 1.0;
    return s;
}

} // namespace

TEST(WorkloadModel, BatchedRerankChargesDistinctClusterBytes)
{
    ScaleConfig s = batchedScale();
    CbirWorkloadModel m(s);
    auto w = m.rerankBatch(1);

    // Hand evaluation of the documented accounting: each query's
    // budget reaches all 8 probes, the batch draws 32 * 8 probes, and
    // every distinct cluster hit streams its 1000-id block once
    // (16 B/code at m = 32 x 4 bits) plus one 512 B u8 table per
    // query.
    const double distinct =
        expectedDistinctProbedClusters(1000, 1.0, 32.0 * 8.0);
    const auto code_bytes =
        static_cast<std::uint64_t>(distinct * 1000.0) * 16;
    const std::uint64_t lut_bytes = 32ull * 32 * 16;
    EXPECT_EQ(w.bytesIn, code_bytes + lut_bytes);

    // Only the traffic accounting moves; compute and outputs do not.
    ScaleConfig qs = s;
    qs.batchedRerank = false;
    CbirWorkloadModel q(qs);
    auto qw = q.rerankBatch(1);
    EXPECT_EQ(w.ops, qw.ops);
    EXPECT_EQ(w.bytesOut, qw.bytesOut);
    // Skewed probes overlap heavily, so the batched stream beats the
    // per-query scan (32 x 8000 codes) by a wide margin.
    EXPECT_EQ(qw.bytesIn, 32ull * 8000 * 16);
    EXPECT_LT(w.bytesIn, qw.bytesIn);
}

TEST(WorkloadModel, BatchedRerankSkewReducesTraffic)
{
    ScaleConfig skewed = batchedScale();
    ScaleConfig uniform = batchedScale();
    uniform.probeZipfS = 0;
    CbirWorkloadModel a(skewed), b(uniform);
    // Uniform probes rarely collide; Zipf probes share hot blocks.
    EXPECT_LT(a.rerankBatch(1).bytesIn, b.rerankBatch(1).bytesIn);
}

TEST(WorkloadModel, BatchedRerankIgnoredWithoutPq)
{
    ScaleConfig s = paperScale();
    s.batchedRerank = true;
    CbirWorkloadModel batched(s);
    CbirWorkloadModel exact(paperScale());
    // The exact pipeline has no code blocks to amortize: the flag is
    // inert, matching RerankConfig::batchedScan's contract.
    EXPECT_EQ(batched.rerankBatch(1).bytesIn,
              exact.rerankBatch(1).bytesIn);
    EXPECT_EQ(batched.rerankBatch(1).ops, exact.rerankBatch(1).ops);
}

/** Property: all work units scale sanely across partition counts. */
class WorkloadPartitions : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(WorkloadPartitions, ConservationAcrossPartitions)
{
    std::uint32_t p = GetParam();
    CbirWorkloadModel m(paperScale());

    auto sl = m.shortlistBatch(p);
    auto rr = m.rerankBatch(p);
    auto sl1 = m.shortlistBatch(1);
    auto rr1 = m.rerankBatch(1);

    EXPECT_NEAR(static_cast<double>(sl.bytesIn) * p,
                static_cast<double>(sl1.bytesIn),
                static_cast<double>(sl1.bytesIn) * 0.02);
    EXPECT_NEAR(static_cast<double>(rr.bytesIn) * p,
                static_cast<double>(rr1.bytesIn),
                static_cast<double>(rr1.bytesIn) * 0.02);

    ScaleConfig ps = paperScale();
    ps.pq.enabled = true;
    CbirWorkloadModel pm(ps);
    auto prr = pm.rerankBatch(p);
    auto prr1 = pm.rerankBatch(1);
    EXPECT_NEAR(static_cast<double>(prr.bytesIn) * p,
                static_cast<double>(prr1.bytesIn),
                static_cast<double>(prr1.bytesIn) * 0.02);

    CbirWorkloadModel bm(batchedScale());
    auto brr = bm.rerankBatch(p);
    auto brr1 = bm.rerankBatch(1);
    EXPECT_NEAR(static_cast<double>(brr.bytesIn) * p,
                static_cast<double>(brr1.bytesIn),
                static_cast<double>(brr1.bytesIn) * 0.02);
}

INSTANTIATE_TEST_SUITE_P(Partitions, WorkloadPartitions,
                         ::testing::Values(1, 2, 4, 8, 16));
