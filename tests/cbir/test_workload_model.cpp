/**
 * @file
 * Tests that the workload model reproduces Table I and produces
 * consistent, partition-scalable work units.
 */

#include <gtest/gtest.h>

#include "cbir/workload_model.hh"
#include "sim/logging.hh"

using namespace reach;
using namespace reach::cbir;

namespace
{

ScaleConfig
paperScale()
{
    return ScaleConfig{}; // defaults = paper setup
}

} // namespace

TEST(WorkloadModel, TableOneFootprints)
{
    CbirWorkloadModel m(paperScale());
    // Model parameters: 11.3 MB compressed.
    EXPECT_EQ(m.modelParamBytes(), 11'300'000u);
    // Centroids + cell info: ~2.2 GB.
    EXPECT_NEAR(static_cast<double>(m.centroidAndCellBytes()) / 1e9,
                2.2, 0.1);
    // Feature database: ~384 GB decimal (355 GiB in Table I).
    EXPECT_NEAR(static_cast<double>(m.databaseBytes()) / 1e9, 384.0,
                1.0);
}

TEST(WorkloadModel, UncompressedModelIs552MB)
{
    ScaleConfig s = paperScale();
    s.compressedModel = false;
    CbirWorkloadModel m(s);
    EXPECT_NEAR(static_cast<double>(m.modelParamBytes()) / 1e6, 552.0,
                12.0);
}

TEST(WorkloadModel, FeatureExtractionBatchedVsSingle)
{
    CbirWorkloadModel m(paperScale());
    auto batch = m.featureExtractionBatch();
    auto single = m.featureExtractionSingle();

    EXPECT_NEAR(batch.ops, single.ops * 16, single.ops * 0.01);
    EXPECT_EQ(batch.bytesIn, single.bytesIn * 16);
    // Parameters are duplicated per instance, not split.
    EXPECT_EQ(batch.paramBytes, single.paramBytes);
    EXPECT_TRUE(batch.inputResident);
    EXPECT_FALSE(single.inputResident);
}

TEST(WorkloadModel, PrunedMacsScaleWithFraction)
{
    ScaleConfig dense = paperScale();
    dense.compressedModel = false;
    ScaleConfig pruned = paperScale();
    CbirWorkloadModel dm(dense), pm(pruned);
    EXPECT_NEAR(pm.featureExtractionSingle().ops,
                dm.featureExtractionSingle().ops *
                    pruned.prunedMacFraction,
                1e6);
}

TEST(WorkloadModel, ShortlistPartitionsDivideTraffic)
{
    CbirWorkloadModel m(paperScale());
    auto whole = m.shortlistBatch(1);
    auto quarter = m.shortlistBatch(4);
    EXPECT_NEAR(static_cast<double>(quarter.bytesIn),
                static_cast<double>(whole.bytesIn) / 4,
                static_cast<double>(whole.bytesIn) * 0.01);
    EXPECT_NEAR(quarter.ops, whole.ops / 4, whole.ops * 0.01);
}

TEST(WorkloadModel, ShortlistIsCellInfoDominated)
{
    CbirWorkloadModel m(paperScale());
    auto w = m.shortlistBatch(1);
    // Cell-info scan traffic dwarfs the centroid matrix (Table I's
    // "memory-bound" classification).
    std::uint64_t centroid_bytes = 1000ull * 96 * 4;
    EXPECT_GT(w.bytesIn, 100 * centroid_bytes);
}

TEST(WorkloadModel, RerankTrafficIsPageGranular)
{
    CbirWorkloadModel m(paperScale());
    auto w = m.rerankBatch(1);
    EXPECT_EQ(w.bytesIn,
              std::uint64_t(16) * 4096 * 4096); // B*cands*page
}

TEST(WorkloadModel, PqRerankBytesDropToCodeSize)
{
    ScaleConfig s = paperScale();
    s.pq.enabled = true;
    s.pq.m = 32;
    s.pq.refine = 0;
    CbirWorkloadModel m(s);
    auto w = m.rerankBatch(1);
    // No refine: the sequential code scan is the only storage read —
    // bytes drop from candidates * flashPage to candidates * m,
    // exactly proportional to the code size.
    std::uint64_t candidates = 16ull * 4096;
    EXPECT_EQ(w.bytesIn, candidates * 32);
    EXPECT_EQ(m.rerankCandidateBytes(), 32u);

    CbirWorkloadModel exact(paperScale());
    EXPECT_EQ(exact.rerankBatch(1).bytesIn / w.bytesIn,
              std::uint64_t(exact.rerankCandidateBytes()) / 32);
}

TEST(WorkloadModel, PqRefineAddsPageGranularGathers)
{
    ScaleConfig s = paperScale();
    s.pq.enabled = true;
    s.pq.m = 32;
    s.pq.refine = 128;
    CbirWorkloadModel m(s);
    auto w = m.rerankBatch(1);
    std::uint64_t candidates = 16ull * 4096;
    EXPECT_EQ(w.bytesIn, candidates * 32 + 16ull * 128 * 4096);
    // Even with refine, compressed traffic stays far below exact.
    CbirWorkloadModel exact(paperScale());
    EXPECT_LT(w.bytesIn, exact.rerankBatch(1).bytesIn / 10);
    // Compute: lookups + LUT build + refine MACs stay below the
    // exact path's D MACs per candidate.
    EXPECT_LT(w.ops, exact.rerankBatch(1).ops);
}

TEST(WorkloadModel, FourBitHalvesTheCodeScan)
{
    ScaleConfig s8 = paperScale();
    s8.pq.enabled = true;
    s8.pq.m = 32;
    s8.pq.refine = 0;
    ScaleConfig s4 = s8;
    s4.pq.bits = 4;
    CbirWorkloadModel m8(s8), m4(s4);
    // Packed codes: (m+1)/2 bytes per candidate instead of m.
    EXPECT_EQ(m4.rerankCandidateBytes(), 16u);
    EXPECT_EQ(m8.rerankBatch(1).bytesIn, 2 * m4.rerankBatch(1).bytesIn);
    // The per-query table build shrinks 16x (16 vs 256 entries per
    // subspace), so total rerank compute drops too.
    EXPECT_LT(m4.rerankBatch(1).ops, m8.rerankBatch(1).ops);
}

TEST(WorkloadModel, HalfPrecisionCentroidsShrinkTheScan)
{
    ScaleConfig fp32 = paperScale();
    ScaleConfig fp16 = paperScale();
    fp16.centroidBytesPerDim = 2;
    CbirWorkloadModel a(fp32), b(fp16);

    // The centroid matrix halves; the ||C||^2 tail and cell info are
    // unchanged.
    std::uint64_t cents32 = 1000ull * 96 * 4;
    std::uint64_t cents16 = 1000ull * 96 * 2;
    EXPECT_EQ(a.centroidAndCellBytes() - b.centroidAndCellBytes(),
              cents32 - cents16);
    EXPECT_EQ(a.shortlistBatch(1).bytesIn - b.shortlistBatch(1).bytesIn,
              cents32 - cents16);
    // Compute is unchanged: precision only affects storage traffic.
    EXPECT_EQ(a.shortlistBatch(1).ops, b.shortlistBatch(1).ops);

    ScaleConfig bad = paperScale();
    bad.centroidBytesPerDim = 3;
    EXPECT_THROW(CbirWorkloadModel{bad}, sim::SimFatal);
}

TEST(WorkloadModel, ShortlistPlacementDefaultsToDdr)
{
    ScaleConfig s = paperScale();
    EXPECT_EQ(s.shortlistPlacement, ScanPlacement::Ddr);
    s.shortlistPlacement = ScanPlacement::Hbm;
    // The knob lives on ScaleConfig so sweeps carry it alongside the
    // traffic model; the byte counts themselves do not change — only
    // the link the system charges them to.
    CbirWorkloadModel ddr(paperScale()), hbm(s);
    EXPECT_EQ(ddr.shortlistBatch(1).bytesIn, hbm.shortlistBatch(1).bytesIn);
    EXPECT_EQ(hbm.scale().shortlistPlacement, ScanPlacement::Hbm);
}

TEST(WorkloadModel, PqConfigValidatedAtConstruction)
{
    ScaleConfig s = paperScale();
    s.pq.enabled = true;
    s.pq.m = 7; // does not divide dim = 96
    EXPECT_THROW(CbirWorkloadModel{s}, sim::SimFatal);
    s.pq.enabled = false;
    CbirWorkloadModel ok{s}; // disabled blocks are not validated
    EXPECT_EQ(ok.rerankCandidateBytes(), 4096u);
}

TEST(WorkloadModel, RerankComputeLight)
{
    CbirWorkloadModel m(paperScale());
    auto rr = m.rerankBatch(1);
    auto fe = m.featureExtractionBatch();
    // Table I: rerank is "Low" compute, feature extraction "High".
    EXPECT_LT(rr.ops, fe.ops / 100);
}

TEST(WorkloadModel, ZeroPartitionsTreatedAsOne)
{
    CbirWorkloadModel m(paperScale());
    EXPECT_EQ(m.shortlistBatch(0).bytesIn, m.shortlistBatch(1).bytesIn);
    EXPECT_EQ(m.rerankBatch(0).bytesIn, m.rerankBatch(1).bytesIn);
}

TEST(WorkloadModel, ClusterSizeIsDatabaseOverCentroids)
{
    CbirWorkloadModel m(paperScale());
    EXPECT_EQ(m.clusterSizeIds(), 1'000'000'000u / 1000u);
}

/** Property: all work units scale sanely across partition counts. */
class WorkloadPartitions : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(WorkloadPartitions, ConservationAcrossPartitions)
{
    std::uint32_t p = GetParam();
    CbirWorkloadModel m(paperScale());

    auto sl = m.shortlistBatch(p);
    auto rr = m.rerankBatch(p);
    auto sl1 = m.shortlistBatch(1);
    auto rr1 = m.rerankBatch(1);

    EXPECT_NEAR(static_cast<double>(sl.bytesIn) * p,
                static_cast<double>(sl1.bytesIn),
                static_cast<double>(sl1.bytesIn) * 0.02);
    EXPECT_NEAR(static_cast<double>(rr.bytesIn) * p,
                static_cast<double>(rr1.bytesIn),
                static_cast<double>(rr1.bytesIn) * 0.02);

    ScaleConfig ps = paperScale();
    ps.pq.enabled = true;
    CbirWorkloadModel pm(ps);
    auto prr = pm.rerankBatch(p);
    auto prr1 = pm.rerankBatch(1);
    EXPECT_NEAR(static_cast<double>(prr.bytesIn) * p,
                static_cast<double>(prr1.bytesIn),
                static_cast<double>(prr1.bytesIn) * 0.02);
}

INSTANTIATE_TEST_SUITE_P(Partitions, WorkloadPartitions,
                         ::testing::Values(1, 2, 4, 8, 16));
