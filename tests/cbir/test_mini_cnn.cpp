/** @file Unit tests for the functional CNN feature extractor. */

#include <gtest/gtest.h>

#include <cmath>

#include "cbir/mini_cnn.hh"
#include "cbir/linalg.hh"
#include "sim/logging.hh"

using namespace reach;
using namespace reach::cbir;

TEST(MiniCnn, OutputDimensionMatchesConfig)
{
    MiniCnnConfig cfg;
    cfg.featureDim = 48;
    MiniCnn cnn(cfg);
    Image img = makeSyntheticImage(0, 1);
    auto feat = cnn.extract(img);
    EXPECT_EQ(feat.size(), 48u);
}

TEST(MiniCnn, DeterministicExtraction)
{
    MiniCnn cnn;
    Image img = makeSyntheticImage(3, 42);
    auto a = cnn.extract(img);
    auto b = cnn.extract(img);
    EXPECT_EQ(a, b);
}

TEST(MiniCnn, WrongShapeIsFatal)
{
    MiniCnn cnn;
    Image img = makeSyntheticImage(0, 1, 3, 16); // 16x16, expects 32
    EXPECT_THROW(cnn.extract(img), sim::SimFatal);
}

TEST(MiniCnn, FeaturesNotAllZero)
{
    MiniCnn cnn;
    Image img = makeSyntheticImage(1, 7);
    auto feat = cnn.extract(img);
    float mag = 0;
    for (float f : feat)
        mag += std::abs(f);
    EXPECT_GT(mag, 0.0f);
}

TEST(MiniCnn, SameClassImagesCloserThanDifferentClass)
{
    // The whole point of CNN features: images of the same class map
    // to nearby vectors.
    MiniCnn cnn;
    auto fa1 = cnn.extract(makeSyntheticImage(1, 100));
    auto fa2 = cnn.extract(makeSyntheticImage(1, 200));
    auto fb = cnn.extract(makeSyntheticImage(5, 300));

    float same = l2sq(fa1, fa2);
    float diff = l2sq(fa1, fb);
    EXPECT_LT(same, diff);
}

TEST(MiniCnn, BatchMatchesIndividualExtraction)
{
    MiniCnn cnn;
    std::vector<Image> imgs;
    for (int i = 0; i < 4; ++i)
        imgs.push_back(makeSyntheticImage(i, 50 + i));
    Matrix batch = cnn.extractBatch(imgs);
    ASSERT_EQ(batch.rows(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        auto solo = cnn.extract(imgs[i]);
        for (std::size_t d = 0; d < solo.size(); ++d)
            EXPECT_FLOAT_EQ(batch.at(i, d), solo[d]);
    }
}

TEST(MiniCnn, WeightBytesPositive)
{
    MiniCnn cnn;
    EXPECT_GT(cnn.weightBytes(), 1000u);
}

TEST(SyntheticImage, DeterministicPerSeed)
{
    Image a = makeSyntheticImage(2, 9);
    Image b = makeSyntheticImage(2, 9);
    EXPECT_EQ(a.pixels, b.pixels);
    Image c = makeSyntheticImage(2, 10);
    EXPECT_NE(a.pixels, c.pixels);
}

/** Retrieval property over classes, parameterized by class count. */
class MiniCnnRetrieval : public ::testing::TestWithParam<int>
{
};

TEST_P(MiniCnnRetrieval, NearestNeighborIsSameClassMostly)
{
    MiniCnn cnn;
    const int classes = GetParam();
    const int per_class = 4;
    std::vector<Image> imgs;
    std::vector<int> labels;
    for (int c = 0; c < classes; ++c) {
        for (int i = 0; i < per_class; ++i) {
            imgs.push_back(
                makeSyntheticImage(static_cast<std::uint32_t>(c),
                                   1000 + c * 17 + i));
            labels.push_back(c);
        }
    }
    Matrix feats = cnn.extractBatch(imgs);

    int correct = 0;
    for (std::size_t q = 0; q < imgs.size(); ++q) {
        float best = 1e30f;
        std::size_t who = 0;
        for (std::size_t i = 0; i < imgs.size(); ++i) {
            if (i == q)
                continue;
            float d = l2sq(feats.row(q), feats.row(i));
            if (d < best) {
                best = d;
                who = i;
            }
        }
        correct += (labels[who] == labels[q]);
    }
    EXPECT_GT(static_cast<double>(correct) / imgs.size(), 0.7);
}

INSTANTIATE_TEST_SUITE_P(ClassCounts, MiniCnnRetrieval,
                         ::testing::Values(3, 6));
