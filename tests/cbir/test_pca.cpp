/** @file Unit tests for PCA compression. */

#include <gtest/gtest.h>

#include <cmath>

#include "cbir/pca.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

using namespace reach;
using namespace reach::cbir;

namespace
{

/** Samples stretched along a known direction. */
Matrix
anisotropic(std::size_t n, std::size_t d, std::size_t axis,
            double stretch)
{
    sim::Rng rng(13);
    Matrix m(n, d);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < d; ++j) {
            double scale = (j == axis) ? stretch : 1.0;
            m.at(i, j) =
                static_cast<float>(rng.nextGaussian() * scale);
        }
    }
    return m;
}

} // namespace

TEST(Pca, RejectsBadShapes)
{
    Matrix m(10, 4);
    EXPECT_THROW(Pca(m, 5), sim::SimFatal);
    Matrix one(1, 4);
    EXPECT_THROW(Pca(one, 2), sim::SimFatal);
}

TEST(Pca, FindsDominantDirection)
{
    Matrix samples = anisotropic(500, 6, 2, 10.0);
    Pca pca(samples, 1);
    auto dir = pca.components_().row(0);
    // The first component should be (close to) +/- e2.
    EXPECT_GT(std::abs(dir[2]), 0.95f);
}

TEST(Pca, EigenvaluesDescending)
{
    Matrix samples = anisotropic(500, 8, 0, 5.0);
    Pca pca(samples, 4);
    const auto &ev = pca.explainedVariance();
    for (std::size_t i = 1; i < ev.size(); ++i)
        EXPECT_LE(ev[i], ev[i - 1] * 1.01);
}

TEST(Pca, ComponentsAreUnitNorm)
{
    Matrix samples = anisotropic(300, 8, 1, 4.0);
    Pca pca(samples, 3);
    for (std::size_t c = 0; c < 3; ++c) {
        EXPECT_NEAR(normSq(pca.components_().row(c)), 1.0f, 1e-3f);
    }
}

TEST(Pca, ComponentsAreOrthogonal)
{
    Matrix samples = anisotropic(300, 8, 1, 4.0);
    Pca pca(samples, 3);
    for (std::size_t a = 0; a < 3; ++a) {
        for (std::size_t b = a + 1; b < 3; ++b) {
            EXPECT_NEAR(dot(pca.components_().row(a),
                            pca.components_().row(b)),
                        0.0f, 0.05f);
        }
    }
}

TEST(Pca, TransformShape)
{
    Matrix samples = anisotropic(200, 10, 0, 3.0);
    Pca pca(samples, 4);
    Matrix out = pca.transform(samples);
    EXPECT_EQ(out.rows(), 200u);
    EXPECT_EQ(out.cols(), 4u);
}

TEST(Pca, TransformRejectsWrongDim)
{
    Matrix samples = anisotropic(200, 10, 0, 3.0);
    Pca pca(samples, 4);
    Matrix wrong(5, 7);
    EXPECT_THROW(pca.transform(wrong), sim::SimFatal);
}

TEST(Pca, ProjectionPreservesDominantVariance)
{
    Matrix samples = anisotropic(600, 12, 3, 8.0);
    Pca pca(samples, 2);
    Matrix out = pca.transform(samples);

    // Variance along first projected coordinate should be close to
    // the stretched axis variance (64).
    double sum = 0, sq = 0;
    for (std::size_t i = 0; i < out.rows(); ++i) {
        sum += out.at(i, 0);
        sq += static_cast<double>(out.at(i, 0)) * out.at(i, 0);
    }
    double mean = sum / out.rows();
    double var = sq / out.rows() - mean * mean;
    EXPECT_GT(var, 40.0);
}

TEST(Pca, NeighborhoodsRoughlyPreserved)
{
    // PCA to a generous dimension keeps close pairs close: the
    // property CBIR relies on when compressing features to D=96.
    Matrix samples = anisotropic(100, 16, 0, 6.0);
    Pca pca(samples, 8);
    Matrix proj = pca.transform(samples);

    int agree = 0;
    const int trials = 50;
    for (int t = 0; t < trials; ++t) {
        std::size_t q = static_cast<std::size_t>(t) % samples.rows();
        // Nearest neighbour in original space.
        std::size_t best_o = q == 0 ? 1 : 0;
        float bd = 1e30f;
        for (std::size_t i = 0; i < samples.rows(); ++i) {
            if (i == q)
                continue;
            float d = l2sq(samples.row(q), samples.row(i));
            if (d < bd) {
                bd = d;
                best_o = i;
            }
        }
        // Rank of that neighbour in projected space must be small.
        float dq = l2sq(proj.row(q), proj.row(best_o));
        int rank = 0;
        for (std::size_t i = 0; i < proj.rows(); ++i) {
            if (i != q && l2sq(proj.row(q), proj.row(i)) < dq)
                ++rank;
        }
        if (rank <= 5)
            ++agree;
    }
    EXPECT_GT(agree, trials / 2);
}
