/**
 * @file
 * The determinism contract of the parallel execution layer applied to
 * the CBIR hot paths: every kernel must produce bitwise-identical
 * results at 1 thread and at N threads, because the chunk
 * decomposition never depends on the thread count. The contract is
 * per SIMD backend — the tests below run once under the default
 * (auto-detected) backend and once per explicitly pinned backend.
 */

#include <gtest/gtest.h>

#include "cbir/kmeans.hh"
#include "cbir/linalg.hh"
#include "cbir/mini_cnn.hh"
#include "cbir/rerank.hh"
#include "cbir/shortlist.hh"
#include "sim/rng.hh"
#include "simd/simd.hh"
#include "workload/dataset.hh"

using namespace reach;
using namespace reach::cbir;

namespace
{

constexpr unsigned kThreads = 4;

Matrix
randomMatrix(std::size_t rows, std::size_t cols, std::uint64_t seed)
{
    sim::Rng rng(seed);
    Matrix m(rows, cols);
    for (auto &v : m.flat())
        v = static_cast<float>(rng.nextGaussian());
    return m;
}

void
expectSameFloats(std::span<const float> a, std::span<const float> b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]) << "element " << i;
}

} // namespace

TEST(ParallelDeterminism, GemmNtBitwiseEqualAcrossThreadCounts)
{
    Matrix a = randomMatrix(64, 96, 1);
    Matrix b = randomMatrix(1000, 96, 2);
    Matrix c1(a.rows(), b.rows());
    Matrix cn(a.rows(), b.rows());

    gemmNt(a, b, c1, parallel::ParallelConfig::serial());
    gemmNt(a, b, cn, parallel::ParallelConfig{kThreads});
    expectSameFloats(c1.flat(), cn.flat());
}

TEST(ParallelDeterminism, RerankIdenticalAcrossThreadCounts)
{
    workload::DatasetConfig dc;
    dc.numVectors = 3000;
    dc.dim = 24;
    dc.latentClusters = 10;
    workload::Dataset ds(dc);

    KMeansConfig kc;
    kc.clusters = 16;
    InvertedFileIndex idx(ds.vectors(), kc);
    Matrix queries = ds.makeQueries(20, 0.05, 13);

    auto lists1 = shortlistRetrieve(queries, idx, 5,
                                    parallel::ParallelConfig::serial());
    auto listsN = shortlistRetrieve(queries, idx, 5,
                                    parallel::ParallelConfig{kThreads});
    EXPECT_EQ(lists1, listsN);

    // The fp16 scan shares the thread-count contract: the packed
    // stream and the column blocking are fixed, only the row split
    // changes with the thread count.
    auto h1 = shortlistRetrieve(queries, idx, 5,
                                parallel::ParallelConfig::serial(),
                                ShortlistPrecision::Fp16);
    auto hN = shortlistRetrieve(queries, idx, 5,
                                parallel::ParallelConfig{kThreads},
                                ShortlistPrecision::Fp16);
    EXPECT_EQ(h1, hN);

    RerankConfig rc1;
    rc1.k = 8;
    rc1.parallel = parallel::ParallelConfig::serial();
    RerankConfig rcN = rc1;
    rcN.parallel = parallel::ParallelConfig{kThreads};

    auto r1 = rerank(queries, ds.vectors(), idx, lists1, rc1);
    auto rN = rerank(queries, ds.vectors(), idx, listsN, rcN);
    EXPECT_EQ(r1, rN);

    auto t1 = bruteForce(queries, ds.vectors(), 8,
                         parallel::ParallelConfig::serial());
    auto tN = bruteForce(queries, ds.vectors(), 8,
                         parallel::ParallelConfig{kThreads});
    EXPECT_EQ(t1, tN);
}

TEST(ParallelDeterminism, KMeansIdenticalAcrossThreadCounts)
{
    workload::DatasetConfig dc;
    dc.numVectors = 4000;
    dc.dim = 16;
    dc.latentClusters = 8;
    workload::Dataset ds(dc);

    KMeansConfig c1;
    c1.clusters = 12;
    c1.maxIterations = 6;
    c1.parallel = parallel::ParallelConfig::serial();
    KMeansConfig cN = c1;
    cN.parallel = parallel::ParallelConfig{kThreads};

    KMeansResult r1 = kMeans(ds.vectors(), c1);
    KMeansResult rN = kMeans(ds.vectors(), cN);

    EXPECT_EQ(r1.assignment, rN.assignment);
    EXPECT_EQ(r1.iterations, rN.iterations);
    EXPECT_EQ(r1.inertia, rN.inertia); // bitwise, not just close
    expectSameFloats(r1.centroids.flat(), rN.centroids.flat());
}

TEST(ParallelDeterminism, MiniCnnBatchIdenticalAcrossThreadCounts)
{
    std::vector<Image> imgs;
    for (std::uint32_t i = 0; i < 6; ++i)
        imgs.push_back(makeSyntheticImage(i % 3, 21 + i));

    MiniCnnConfig c1;
    c1.parallel = parallel::ParallelConfig::serial();
    MiniCnnConfig cN = c1;
    cN.parallel = parallel::ParallelConfig{kThreads};

    Matrix f1 = MiniCnn(c1).extractBatch(imgs);
    Matrix fN = MiniCnn(cN).extractBatch(imgs);
    expectSameFloats(f1.flat(), fN.flat());
}

namespace
{

/**
 * 1-vs-N-thread bitwise determinism with the SIMD backend pinned:
 * the per-backend refinement of the contract above. Backends that
 * the host CPU cannot run are skipped.
 */
class PinnedBackendDeterminism
    : public ::testing::TestWithParam<simd::Choice>
{
  protected:
    void
    SetUp() override
    {
        if (GetParam() == simd::Choice::avx2 &&
            !simd::supported(simd::Backend::avx2))
            GTEST_SKIP() << "avx2 not supported on this host";
        serial = parallel::ParallelConfig::serial();
        serial.simd = GetParam();
        threaded = parallel::ParallelConfig{kThreads};
        threaded.simd = GetParam();
    }

    parallel::ParallelConfig serial;
    parallel::ParallelConfig threaded;
};

} // namespace

TEST_P(PinnedBackendDeterminism, GemmNtBitwiseEqual)
{
    Matrix a = randomMatrix(33, 96, 5);
    Matrix b = randomMatrix(500, 96, 6);
    Matrix c1(a.rows(), b.rows());
    Matrix cn(a.rows(), b.rows());
    gemmNt(a, b, c1, serial);
    gemmNt(a, b, cn, threaded);
    expectSameFloats(c1.flat(), cn.flat());
}

TEST_P(PinnedBackendDeterminism, RerankAndBruteForceBitwiseEqual)
{
    workload::DatasetConfig dc;
    dc.numVectors = 2000;
    dc.dim = 24;
    dc.latentClusters = 10;
    workload::Dataset ds(dc);

    KMeansConfig kc;
    kc.clusters = 16;
    kc.parallel = serial;
    InvertedFileIndex idx(ds.vectors(), kc);
    Matrix queries = ds.makeQueries(16, 0.05, 17);

    auto lists = shortlistRetrieve(queries, idx, 5, serial);
    EXPECT_EQ(lists, shortlistRetrieve(queries, idx, 5, threaded));

    EXPECT_EQ(shortlistRetrieve(queries, idx, 5, serial,
                                ShortlistPrecision::Fp16),
              shortlistRetrieve(queries, idx, 5, threaded,
                                ShortlistPrecision::Fp16));

    RerankConfig rc1;
    rc1.k = 8;
    rc1.parallel = serial;
    RerankConfig rcN = rc1;
    rcN.parallel = threaded;
    EXPECT_EQ(rerank(queries, ds.vectors(), idx, lists, rc1),
              rerank(queries, ds.vectors(), idx, lists, rcN));

    EXPECT_EQ(bruteForce(queries, ds.vectors(), 8, serial),
              bruteForce(queries, ds.vectors(), 8, threaded));
}

TEST_P(PinnedBackendDeterminism, KMeansBitwiseEqual)
{
    workload::DatasetConfig dc;
    dc.numVectors = 1500;
    dc.dim = 16;
    dc.latentClusters = 8;
    workload::Dataset ds(dc);

    KMeansConfig c1;
    c1.clusters = 12;
    c1.maxIterations = 5;
    c1.parallel = serial;
    KMeansConfig cN = c1;
    cN.parallel = threaded;

    KMeansResult r1 = kMeans(ds.vectors(), c1);
    KMeansResult rN = kMeans(ds.vectors(), cN);
    EXPECT_EQ(r1.assignment, rN.assignment);
    EXPECT_EQ(r1.inertia, rN.inertia);
    expectSameFloats(r1.centroids.flat(), rN.centroids.flat());
}

INSTANTIATE_TEST_SUITE_P(
    Backends, PinnedBackendDeterminism,
    ::testing::Values(simd::Choice::scalar, simd::Choice::avx2),
    [](const auto &info) {
        return info.param == simd::Choice::scalar ? "scalar" : "avx2";
    });
