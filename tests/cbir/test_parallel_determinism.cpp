/**
 * @file
 * The determinism contract of the parallel execution layer applied to
 * the CBIR hot paths: every kernel must produce bitwise-identical
 * results at 1 thread and at N threads, because the chunk
 * decomposition never depends on the thread count.
 */

#include <gtest/gtest.h>

#include "cbir/kmeans.hh"
#include "cbir/linalg.hh"
#include "cbir/mini_cnn.hh"
#include "cbir/rerank.hh"
#include "cbir/shortlist.hh"
#include "sim/rng.hh"
#include "workload/dataset.hh"

using namespace reach;
using namespace reach::cbir;

namespace
{

constexpr unsigned kThreads = 4;

Matrix
randomMatrix(std::size_t rows, std::size_t cols, std::uint64_t seed)
{
    sim::Rng rng(seed);
    Matrix m(rows, cols);
    for (auto &v : m.flat())
        v = static_cast<float>(rng.nextGaussian());
    return m;
}

void
expectSameFloats(std::span<const float> a, std::span<const float> b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]) << "element " << i;
}

} // namespace

TEST(ParallelDeterminism, GemmNtBitwiseEqualAcrossThreadCounts)
{
    Matrix a = randomMatrix(64, 96, 1);
    Matrix b = randomMatrix(1000, 96, 2);
    Matrix c1(a.rows(), b.rows());
    Matrix cn(a.rows(), b.rows());

    gemmNt(a, b, c1, parallel::ParallelConfig::serial());
    gemmNt(a, b, cn, parallel::ParallelConfig{kThreads});
    expectSameFloats(c1.flat(), cn.flat());
}

TEST(ParallelDeterminism, RerankIdenticalAcrossThreadCounts)
{
    workload::DatasetConfig dc;
    dc.numVectors = 3000;
    dc.dim = 24;
    dc.latentClusters = 10;
    workload::Dataset ds(dc);

    KMeansConfig kc;
    kc.clusters = 16;
    InvertedFileIndex idx(ds.vectors(), kc);
    Matrix queries = ds.makeQueries(20, 0.05, 13);

    auto lists1 = shortlistRetrieve(queries, idx, 5,
                                    parallel::ParallelConfig::serial());
    auto listsN = shortlistRetrieve(queries, idx, 5,
                                    parallel::ParallelConfig{kThreads});
    EXPECT_EQ(lists1, listsN);

    RerankConfig rc1;
    rc1.k = 8;
    rc1.parallel = parallel::ParallelConfig::serial();
    RerankConfig rcN = rc1;
    rcN.parallel = parallel::ParallelConfig{kThreads};

    auto r1 = rerank(queries, ds.vectors(), idx, lists1, rc1);
    auto rN = rerank(queries, ds.vectors(), idx, listsN, rcN);
    EXPECT_EQ(r1, rN);

    auto t1 = bruteForce(queries, ds.vectors(), 8,
                         parallel::ParallelConfig::serial());
    auto tN = bruteForce(queries, ds.vectors(), 8,
                         parallel::ParallelConfig{kThreads});
    EXPECT_EQ(t1, tN);
}

TEST(ParallelDeterminism, KMeansIdenticalAcrossThreadCounts)
{
    workload::DatasetConfig dc;
    dc.numVectors = 4000;
    dc.dim = 16;
    dc.latentClusters = 8;
    workload::Dataset ds(dc);

    KMeansConfig c1;
    c1.clusters = 12;
    c1.maxIterations = 6;
    c1.parallel = parallel::ParallelConfig::serial();
    KMeansConfig cN = c1;
    cN.parallel = parallel::ParallelConfig{kThreads};

    KMeansResult r1 = kMeans(ds.vectors(), c1);
    KMeansResult rN = kMeans(ds.vectors(), cN);

    EXPECT_EQ(r1.assignment, rN.assignment);
    EXPECT_EQ(r1.iterations, rN.iterations);
    EXPECT_EQ(r1.inertia, rN.inertia); // bitwise, not just close
    expectSameFloats(r1.centroids.flat(), rN.centroids.flat());
}

TEST(ParallelDeterminism, MiniCnnBatchIdenticalAcrossThreadCounts)
{
    std::vector<Image> imgs;
    for (std::uint32_t i = 0; i < 6; ++i)
        imgs.push_back(makeSyntheticImage(i % 3, 21 + i));

    MiniCnnConfig c1;
    c1.parallel = parallel::ParallelConfig::serial();
    MiniCnnConfig cN = c1;
    cN.parallel = parallel::ParallelConfig{kThreads};

    Matrix f1 = MiniCnn(c1).extractBatch(imgs);
    Matrix fN = MiniCnn(cN).extractBatch(imgs);
    expectSameFloats(f1.flat(), fN.flat());
}
