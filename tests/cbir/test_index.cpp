/** @file Unit tests for the inverted-file index. */

#include <gtest/gtest.h>

#include "cbir/index.hh"
#include "cbir/rerank.hh"
#include "cbir/shortlist.hh"
#include "simd/half.hh"
#include "workload/dataset.hh"

using namespace reach;
using namespace reach::cbir;

namespace
{

workload::Dataset
smallDataset()
{
    workload::DatasetConfig dc;
    dc.numVectors = 500;
    dc.dim = 8;
    dc.latentClusters = 10;
    return workload::Dataset(dc);
}

} // namespace

TEST(InvertedFileIndex, ListsPartitionTheDataset)
{
    auto ds = smallDataset();
    KMeansConfig cfg;
    cfg.clusters = 16;
    InvertedFileIndex idx(ds.vectors(), cfg);

    EXPECT_EQ(idx.numClusters(), 16u);
    EXPECT_EQ(idx.totalIds(), ds.size());

    // Each id appears exactly once.
    std::vector<int> seen(ds.size(), 0);
    for (std::size_t c = 0; c < idx.numClusters(); ++c)
        for (auto id : idx.cluster(c))
            ++seen[id];
    for (int s : seen)
        EXPECT_EQ(s, 1);
}

TEST(InvertedFileIndex, CentroidNormsMatch)
{
    auto ds = smallDataset();
    KMeansConfig cfg;
    cfg.clusters = 8;
    InvertedFileIndex idx(ds.vectors(), cfg);
    for (std::size_t c = 0; c < idx.numClusters(); ++c) {
        EXPECT_NEAR(idx.centroidNormsSq()[c],
                    normSq(idx.centroids().row(c)), 1e-2);
    }
}

TEST(InvertedFileIndex, PrebuiltAssignmentConstructor)
{
    Matrix cents(2, 2);
    cents.at(0, 0) = 0;
    cents.at(1, 0) = 10;
    std::vector<std::uint32_t> assign{0, 1, 0, 1, 1};
    InvertedFileIndex idx(std::move(cents), assign);
    EXPECT_EQ(idx.cluster(0).size(), 2u);
    EXPECT_EQ(idx.cluster(1).size(), 3u);
    EXPECT_EQ(idx.totalIds(), 5u);
    EXPECT_EQ(idx.maxClusterSize(), 3u);
    EXPECT_EQ(idx.minClusterSize(), 2u);
}

/**
 * An index rebuilt from a precomputed clustering has no vectors to
 * cache norms from (vectorNormsSq() is empty); rerank must fall back
 * to computing database norms on the fly and return results bitwise
 * identical to the vector-built index.
 */
TEST(InvertedFileIndex, PrecomputedClusteringRerankFallback)
{
    workload::DatasetConfig dc;
    dc.numVectors = 800;
    dc.dim = 16;
    dc.latentClusters = 10;
    workload::Dataset ds(dc);

    KMeansConfig cfg;
    cfg.clusters = 12;
    KMeansResult km = kMeans(ds.vectors(), cfg);

    InvertedFileIndex from_vectors(ds.vectors(), cfg);
    InvertedFileIndex from_clustering(km.centroids, km.assignment);
    EXPECT_FALSE(from_vectors.vectorNormsSq().empty());
    EXPECT_TRUE(from_clustering.vectorNormsSq().empty());
    ASSERT_EQ(from_clustering.totalIds(), ds.size());

    cbir::Matrix queries = ds.makeQueries(6, 0.2, 17);
    auto lists = shortlistRetrieve(queries, from_vectors, 4);
    RerankConfig rc;
    rc.k = 10;
    auto want = rerank(queries, ds.vectors(), from_vectors, lists, rc);
    auto got =
        rerank(queries, ds.vectors(), from_clustering, lists, rc);

    ASSERT_EQ(got.size(), want.size());
    for (std::size_t q = 0; q < want.size(); ++q)
        EXPECT_EQ(got[q], want[q]) << "query " << q;
}

/**
 * The packed binary16 centroid copy: element-for-element the RNE
 * encoding of the fp32 centroids, with norms accumulated by
 * halfNormSq over the packed rows — both pure software, so these
 * equalities are exact on every host and backend.
 */
TEST(InvertedFileIndex, F16CentroidCopyIsTheRneImage)
{
    auto ds = smallDataset();
    KMeansConfig cfg;
    cfg.clusters = 8;
    InvertedFileIndex idx(ds.vectors(), cfg);

    const std::size_t d = idx.centroids().cols();
    auto packed = idx.centroidsF16();
    ASSERT_EQ(packed.size(), idx.numClusters() * d);
    for (std::size_t c = 0; c < idx.numClusters(); ++c) {
        auto row = idx.centroids().row(c);
        for (std::size_t j = 0; j < d; ++j) {
            EXPECT_EQ(packed[c * d + j],
                      simd::floatToHalfRne(row[j]))
                << "centroid " << c << " dim " << j;
        }
    }

    ASSERT_EQ(idx.centroidNormsSqF16().size(), idx.numClusters());
    for (std::size_t c = 0; c < idx.numClusters(); ++c) {
        EXPECT_EQ(idx.centroidNormsSqF16()[c],
                  simd::halfNormSq(packed.data() + c * d, d))
            << "centroid " << c;
        // The quantized norm tracks the fp32 norm closely.
        EXPECT_NEAR(idx.centroidNormsSqF16()[c],
                    idx.centroidNormsSq()[c],
                    2e-3 * idx.centroidNormsSq()[c] + 1e-4)
            << "centroid " << c;
    }
}

TEST(InvertedFileIndex, PrecomputedClusteringAlsoBuildsF16Copy)
{
    // Both constructors must produce the packed copy: the fp16 scan
    // is available regardless of how the index was built.
    Matrix cents(2, 3);
    cents.at(0, 0) = 1.0f;
    cents.at(0, 1) = 0.5f;
    cents.at(1, 2) = -2.0f;
    std::vector<std::uint32_t> assign{0, 1, 0};
    InvertedFileIndex idx(std::move(cents), assign);
    ASSERT_EQ(idx.centroidsF16().size(), 6u);
    EXPECT_EQ(idx.centroidsF16()[0], 0x3C00); // 1.0
    EXPECT_EQ(idx.centroidsF16()[1], 0x3800); // 0.5
    EXPECT_EQ(idx.centroidsF16()[5], 0xC000); // -2.0
    ASSERT_EQ(idx.centroidNormsSqF16().size(), 2u);
    EXPECT_FLOAT_EQ(idx.centroidNormsSqF16()[0], 1.25f);
    EXPECT_FLOAT_EQ(idx.centroidNormsSqF16()[1], 4.0f);
}

TEST(InvertedFileIndex, MembersAreNearTheirCentroid)
{
    auto ds = smallDataset();
    KMeansConfig cfg;
    cfg.clusters = 8;
    InvertedFileIndex idx(ds.vectors(), cfg);

    for (std::size_t c = 0; c < idx.numClusters(); ++c) {
        for (auto id : idx.cluster(c)) {
            float own = l2sq(ds.vectors().row(id),
                             idx.centroids().row(c));
            for (std::size_t o = 0; o < idx.numClusters(); ++o) {
                float other = l2sq(ds.vectors().row(id),
                                   idx.centroids().row(o));
                EXPECT_LE(own, other + 1e-3f);
            }
        }
    }
}
