/** @file Unit tests for the inverted-file index. */

#include <gtest/gtest.h>

#include "cbir/index.hh"
#include "workload/dataset.hh"

using namespace reach;
using namespace reach::cbir;

namespace
{

workload::Dataset
smallDataset()
{
    workload::DatasetConfig dc;
    dc.numVectors = 500;
    dc.dim = 8;
    dc.latentClusters = 10;
    return workload::Dataset(dc);
}

} // namespace

TEST(InvertedFileIndex, ListsPartitionTheDataset)
{
    auto ds = smallDataset();
    KMeansConfig cfg;
    cfg.clusters = 16;
    InvertedFileIndex idx(ds.vectors(), cfg);

    EXPECT_EQ(idx.numClusters(), 16u);
    EXPECT_EQ(idx.totalIds(), ds.size());

    // Each id appears exactly once.
    std::vector<int> seen(ds.size(), 0);
    for (std::size_t c = 0; c < idx.numClusters(); ++c)
        for (auto id : idx.cluster(c))
            ++seen[id];
    for (int s : seen)
        EXPECT_EQ(s, 1);
}

TEST(InvertedFileIndex, CentroidNormsMatch)
{
    auto ds = smallDataset();
    KMeansConfig cfg;
    cfg.clusters = 8;
    InvertedFileIndex idx(ds.vectors(), cfg);
    for (std::size_t c = 0; c < idx.numClusters(); ++c) {
        EXPECT_NEAR(idx.centroidNormsSq()[c],
                    normSq(idx.centroids().row(c)), 1e-2);
    }
}

TEST(InvertedFileIndex, PrebuiltAssignmentConstructor)
{
    Matrix cents(2, 2);
    cents.at(0, 0) = 0;
    cents.at(1, 0) = 10;
    std::vector<std::uint32_t> assign{0, 1, 0, 1, 1};
    InvertedFileIndex idx(std::move(cents), assign);
    EXPECT_EQ(idx.cluster(0).size(), 2u);
    EXPECT_EQ(idx.cluster(1).size(), 3u);
    EXPECT_EQ(idx.totalIds(), 5u);
    EXPECT_EQ(idx.maxClusterSize(), 3u);
    EXPECT_EQ(idx.minClusterSize(), 2u);
}

TEST(InvertedFileIndex, MembersAreNearTheirCentroid)
{
    auto ds = smallDataset();
    KMeansConfig cfg;
    cfg.clusters = 8;
    InvertedFileIndex idx(ds.vectors(), cfg);

    for (std::size_t c = 0; c < idx.numClusters(); ++c) {
        for (auto id : idx.cluster(c)) {
            float own = l2sq(ds.vectors().row(id),
                             idx.centroids().row(c));
            for (std::size_t o = 0; o < idx.numClusters(); ++o) {
                float other = l2sq(ds.vectors().row(id),
                                   idx.centroids().row(o));
                EXPECT_LE(own, other + 1e-3f);
            }
        }
    }
}
