/**
 * @file
 * Tests that the VGG16 descriptors reproduce the paper's Table I
 * footprints (~552 MB raw parameters, 11.3 MB compressed) and the
 * network's published MAC count (~15.5 GMACs at 224x224).
 */

#include <gtest/gtest.h>

#include "cbir/vgg.hh"

using namespace reach::cbir;

TEST(Vgg16, HasSixteenWeightLayers)
{
    int weighted = 0;
    for (const auto &l : vgg16Layers())
        weighted += (l.kind != LayerKind::Pool);
    EXPECT_EQ(weighted, 16);
}

TEST(Vgg16, TotalMacsAroundFifteenPointFiveG)
{
    double g = vgg16TotalMacs() / 1e9;
    EXPECT_GT(g, 15.0);
    EXPECT_LT(g, 16.0);
}

TEST(Vgg16, RawWeightsMatchTableOne)
{
    // Table I: 552 MB float32 parameters.
    double mb = static_cast<double>(vgg16WeightBytes()) / 1e6;
    EXPECT_GT(mb, 540.0);
    EXPECT_LT(mb, 565.0);
}

TEST(Vgg16, CompressedWeightsMatchTableOne)
{
    EXPECT_EQ(vgg16CompressedWeightBytes(), 11'300'000u);
}

TEST(Vgg16, FcLayersDominateWeights)
{
    std::uint64_t fc = 0, conv = 0;
    for (const auto &l : vgg16Layers()) {
        if (l.kind == LayerKind::FullyConnected)
            fc += l.weightBytes();
        else
            conv += l.weightBytes();
    }
    EXPECT_GT(fc, conv); // VGG16's fc6 alone is ~400 MB
}

TEST(Vgg16, ConvLayersDominateMacs)
{
    double fc = 0, conv = 0;
    for (const auto &l : vgg16Layers()) {
        if (l.kind == LayerKind::FullyConnected)
            fc += l.macs();
        else
            conv += l.macs();
    }
    EXPECT_GT(conv, 10 * fc);
}

TEST(Vgg16, SpatialDimsShrinkMonotonically)
{
    std::uint32_t prev = 224;
    for (const auto &l : vgg16Layers()) {
        EXPECT_LE(l.outH, prev);
        prev = l.outH;
    }
    EXPECT_EQ(vgg16Layers().back().outH, 1u);
}

TEST(Vgg16, PoolLayersHalveResolution)
{
    for (const auto &l : vgg16Layers()) {
        if (l.kind == LayerKind::Pool) {
            EXPECT_EQ(l.outH * 2, l.inH);
            EXPECT_EQ(l.outW * 2, l.inW);
            EXPECT_EQ(l.outChannels, l.inChannels);
            EXPECT_DOUBLE_EQ(l.macs(), 0.0);
        }
    }
}

TEST(Vgg16, LayerChainIsConsistent)
{
    const auto &layers = vgg16Layers();
    for (std::size_t i = 1; i < layers.size(); ++i) {
        if (layers[i].kind == LayerKind::FullyConnected &&
            layers[i - 1].kind == LayerKind::FullyConnected) {
            EXPECT_EQ(layers[i].inChannels, layers[i - 1].outChannels);
            continue;
        }
        if (layers[i].kind == LayerKind::FullyConnected)
            continue; // flattening transition checked via fc6 dims
        EXPECT_EQ(layers[i].inChannels, layers[i - 1].outChannels)
            << layers[i].name;
        EXPECT_EQ(layers[i].inH, layers[i - 1].outH) << layers[i].name;
    }
}

TEST(Vgg16, ActivationBytesReasonable)
{
    // conv1_1 output: 64 x 224 x 224 floats = ~12.8 MB.
    const auto &l = vgg16Layers().front();
    EXPECT_EQ(l.activationBytes(), std::uint64_t(4) * 64 * 224 * 224);
}
