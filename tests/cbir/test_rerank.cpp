/**
 * @file
 * Tests for rerank / brute force / recall: exactness of the KNN
 * selection, candidate budget semantics, and the recall@K metric
 * including the pruning-vs-recall tradeoff the paper motivates.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "cbir/rerank.hh"
#include "workload/dataset.hh"

using namespace reach;
using namespace reach::cbir;

namespace
{

struct RerankFixture : ::testing::Test
{
    void
    SetUp() override
    {
        workload::DatasetConfig dc;
        dc.numVectors = 1200;
        dc.dim = 16;
        dc.latentClusters = 15;
        ds = std::make_unique<workload::Dataset>(dc);

        KMeansConfig kc;
        kc.clusters = 24;
        idx = std::make_unique<InvertedFileIndex>(ds->vectors(), kc);

        queries = ds->makeQueries(10, 0.05, 31);
        lists = shortlistRetrieve(queries, *idx, 6);
    }

    std::unique_ptr<workload::Dataset> ds;
    std::unique_ptr<InvertedFileIndex> idx;
    Matrix queries;
    ShortLists lists;
};

} // namespace

TEST_F(RerankFixture, ResultsSortedByDistance)
{
    RerankConfig cfg;
    cfg.k = 8;
    auto res = rerank(queries, ds->vectors(), *idx, lists, cfg);
    for (const auto &nbrs : res) {
        for (std::size_t i = 1; i < nbrs.size(); ++i)
            EXPECT_GE(nbrs[i].distSq, nbrs[i - 1].distSq);
    }
}

TEST_F(RerankFixture, DistancesMatchDirectEvaluation)
{
    // Rerank computes ||q-x||^2 via the norm decomposition
    // ||q||^2 + ||x||^2 - 2 q.x, whose rounding error scales with
    // the norms rather than with the (possibly tiny) distance — so
    // agreement with direct evaluation is norm-relative, not ulp.
    RerankConfig cfg;
    cfg.k = 5;
    auto res = rerank(queries, ds->vectors(), *idx, lists, cfg);
    for (std::size_t q = 0; q < res.size(); ++q) {
        float qn = normSq(queries.row(q));
        for (const auto &n : res[q]) {
            float tol =
                1e-5f * (qn + normSq(ds->vectors().row(n.id))) + 1e-6f;
            EXPECT_NEAR(
                n.distSq,
                l2sq(queries.row(q), ds->vectors().row(n.id)), tol);
        }
    }
}

TEST_F(RerankFixture, BruteForceIsGroundTruth)
{
    auto truth = bruteForce(queries, ds->vectors(), 5);
    for (std::size_t q = 0; q < truth.size(); ++q) {
        float qn = normSq(queries.row(q));
        // No database point may be closer than the reported 1st NN,
        // modulo the norm-decomposition rounding (see
        // DistancesMatchDirectEvaluation).
        for (std::size_t i = 0; i < ds->size(); ++i) {
            float tol =
                1e-5f * (qn + normSq(ds->vectors().row(i))) + 1e-6f;
            EXPECT_GE(l2sq(queries.row(q), ds->vectors().row(i)),
                      truth[q][0].distSq - tol);
        }
    }
}

TEST_F(RerankFixture, CandidateBudgetRespected)
{
    // With a candidate budget smaller than K, fewer results return.
    RerankConfig tight;
    tight.k = 10;
    tight.maxCandidates = 4;
    auto res = rerank(queries, ds->vectors(), *idx, lists, tight);
    for (const auto &nbrs : res)
        EXPECT_LE(nbrs.size(), 4u);
}

TEST_F(RerankFixture, UnlimitedBudgetSearchesWholeShortlist)
{
    RerankConfig cfg;
    cfg.k = 3;
    cfg.maxCandidates = 0;
    auto res = rerank(queries, ds->vectors(), *idx, lists, cfg);
    for (const auto &nbrs : res)
        EXPECT_EQ(nbrs.size(), 3u);
}

TEST_F(RerankFixture, MismatchedListsPanic)
{
    RerankConfig cfg;
    ShortLists wrong(queries.rows() + 1);
    EXPECT_THROW(rerank(queries, ds->vectors(), *idx, wrong, cfg),
                 sim::SimPanic);
}

TEST_F(RerankFixture, HighNprobeRecallNearOne)
{
    // Probing every cluster must reproduce brute force exactly.
    auto all_lists =
        shortlistRetrieve(queries, *idx, idx->numClusters());
    RerankConfig cfg;
    cfg.k = 10;
    cfg.maxCandidates = 0;
    auto res = rerank(queries, ds->vectors(), *idx, all_lists, cfg);
    auto truth = bruteForce(queries, ds->vectors(), 10);
    EXPECT_DOUBLE_EQ(recallAtK(res, truth, 10), 1.0);
}

TEST_F(RerankFixture, RecallImprovesWithNprobe)
{
    RerankConfig cfg;
    cfg.k = 10;
    cfg.maxCandidates = 0;
    auto truth = bruteForce(queries, ds->vectors(), 10);

    double prev = -1;
    for (std::size_t nprobe : {1u, 4u, 12u, 24u}) {
        auto l = shortlistRetrieve(queries, *idx, nprobe);
        auto res = rerank(queries, ds->vectors(), *idx, l, cfg);
        double r = recallAtK(res, truth, 10);
        EXPECT_GE(r, prev - 0.05); // essentially monotone
        prev = r;
    }
    EXPECT_GT(prev, 0.9);
}

TEST(RecallMetric, IdenticalResultsGiveOne)
{
    RerankResults a{{{1, 0.1f}, {2, 0.2f}}};
    EXPECT_DOUBLE_EQ(recallAtK(a, a, 2), 1.0);
}

TEST(RecallMetric, DisjointResultsGiveZero)
{
    RerankResults got{{{1, 0.1f}, {2, 0.2f}}};
    RerankResults truth{{{3, 0.1f}, {4, 0.2f}}};
    EXPECT_DOUBLE_EQ(recallAtK(got, truth, 2), 0.0);
}

TEST(RecallMetric, PartialOverlap)
{
    RerankResults got{{{1, 0.1f}, {2, 0.2f}}};
    RerankResults truth{{{1, 0.1f}, {9, 0.2f}}};
    EXPECT_DOUBLE_EQ(recallAtK(got, truth, 2), 0.5);
}

TEST(RecallMetric, BatchSizeMismatchPanics)
{
    RerankResults a(2), b(3);
    EXPECT_THROW(recallAtK(a, b, 1), sim::SimPanic);
}
