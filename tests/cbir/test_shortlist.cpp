/**
 * @file
 * Tests for short-list retrieval: the Eq. 1 GEMM decomposition must
 * match direct distance evaluation, and short-lists must rank
 * clusters correctly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "cbir/shortlist.hh"
#include "sim/rng.hh"
#include "simd/simd.hh"
#include "workload/dataset.hh"

using namespace reach;
using namespace reach::cbir;

namespace
{

struct ShortlistFixture : ::testing::Test
{
    void
    SetUp() override
    {
        workload::DatasetConfig dc;
        dc.numVectors = 800;
        dc.dim = 16;
        dc.latentClusters = 12;
        ds = std::make_unique<workload::Dataset>(dc);

        KMeansConfig kc;
        kc.clusters = 20;
        idx = std::make_unique<InvertedFileIndex>(ds->vectors(), kc);

        queries = ds->makeQueries(12, 0.05, 777);
    }

    std::unique_ptr<workload::Dataset> ds;
    std::unique_ptr<InvertedFileIndex> idx;
    Matrix queries;
};

} // namespace

TEST_F(ShortlistFixture, DecompositionMatchesReference)
{
    // Eq. 1: ||q||^2 + ||C||^2 - 2<q,C> must select the same
    // clusters as direct Eq. 2 evaluation.
    auto fast = shortlistRetrieve(queries, *idx, 5);
    auto ref = shortlistReference(queries, *idx, 5);
    ASSERT_EQ(fast.size(), ref.size());
    for (std::size_t q = 0; q < fast.size(); ++q)
        EXPECT_EQ(fast[q], ref[q]) << "query " << q;
}

TEST_F(ShortlistFixture, ReturnsRequestedProbeCount)
{
    auto lists = shortlistRetrieve(queries, *idx, 7);
    for (const auto &l : lists)
        EXPECT_EQ(l.size(), 7u);
}

TEST_F(ShortlistFixture, NprobeLargerThanClustersClamps)
{
    auto lists = shortlistRetrieve(queries, *idx, 100);
    for (const auto &l : lists)
        EXPECT_EQ(l.size(), idx->numClusters());
}

TEST_F(ShortlistFixture, FirstClusterIsNearest)
{
    auto lists = shortlistRetrieve(queries, *idx, 3);
    for (std::size_t q = 0; q < queries.rows(); ++q) {
        std::uint32_t nearest =
            nearestCentroid(idx->centroids(), queries.row(q));
        EXPECT_EQ(lists[q][0], nearest);
    }
}

TEST_F(ShortlistFixture, ClustersOrderedByDistance)
{
    auto lists = shortlistRetrieve(queries, *idx, 6);
    for (std::size_t q = 0; q < queries.rows(); ++q) {
        float prev = -1;
        for (auto c : lists[q]) {
            float d = l2sq(queries.row(q), idx->centroids().row(c));
            EXPECT_GE(d, prev - 1e-3f);
            prev = d;
        }
    }
}

TEST_F(ShortlistFixture, NoDuplicateClustersInList)
{
    auto lists = shortlistRetrieve(queries, *idx, 8);
    for (const auto &l : lists) {
        std::set<std::uint32_t> s(l.begin(), l.end());
        EXPECT_EQ(s.size(), l.size());
    }
}

/**
 * The fp16 scan quantizes distances but must still find essentially
 * the same clusters: on the fixture the per-query overlap with the
 * fp32 lists is near-total. (Exact equality is not required — a pair
 * whose fp32 distances differ by less than a half ulp may legally
 * swap.)
 */
TEST_F(ShortlistFixture, Fp16ListsNearlyMatchFp32)
{
    const std::size_t nprobe = 5;
    auto f32 = shortlistRetrieve(queries, *idx, nprobe);
    auto f16 = shortlistRetrieve(queries, *idx, nprobe, {},
                                 ShortlistPrecision::Fp16);
    ASSERT_EQ(f16.size(), f32.size());
    std::size_t shared = 0, total = 0;
    for (std::size_t q = 0; q < f32.size(); ++q) {
        EXPECT_EQ(f16[q].size(), nprobe);
        std::set<std::uint32_t> a(f32[q].begin(), f32[q].end());
        for (auto c : f16[q])
            shared += a.count(c);
        total += nprobe;
    }
    EXPECT_GE(static_cast<double>(shared) / total, 0.9);
}

TEST_F(ShortlistFixture, Fp16NearestClusterMatchesFp32)
{
    // The top-1 cluster is far from any quantization boundary on the
    // clustered fixture; fp16 must agree with fp32 exactly there.
    auto f32 = shortlistRetrieve(queries, *idx, 1);
    auto f16 = shortlistRetrieve(queries, *idx, 1, {},
                                 ShortlistPrecision::Fp16);
    for (std::size_t q = 0; q < f32.size(); ++q)
        EXPECT_EQ(f16[q][0], f32[q][0]) << "query " << q;
}

namespace
{

/**
 * An index bigger than one scan column block (kColBlock = 4096
 * centroids), with exact-duplicate centroid rows planted inside one
 * block and straddling the block boundary — the shapes where the
 * blocked + fused + streaming-top-K path could diverge from a single
 * flat scan if tie-breaking or tile remainders were wrong. Odd D and
 * odd M exercise every kernel tail.
 */
struct MultiBlockFixture : ::testing::Test
{
    static constexpr std::size_t kM = 4100; // > one 4096 column block
    static constexpr std::size_t kD = 17;   // odd: vector tails

    void
    SetUp() override
    {
        sim::Rng rng(2024);
        Matrix cents(kM, kD);
        for (auto &v : cents.flat())
            v = static_cast<float>(rng.nextGaussian());
        // Adjacent tie inside block 0, and a cross-block tie: row
        // 4099 (second block) duplicates row 2 (first block).
        for (std::size_t c = 0; c < kD; ++c) {
            cents.at(51, c) = cents.at(50, c);
            cents.at(4099, c) = cents.at(2, c);
        }
        std::vector<std::uint32_t> assign(kM);
        std::iota(assign.begin(), assign.end(), 0u);
        idx = std::make_unique<InvertedFileIndex>(std::move(cents),
                                                  std::move(assign));

        queries = Matrix(5, kD);
        for (auto &v : queries.flat())
            v = static_cast<float>(rng.nextGaussian());
    }

    std::unique_ptr<InvertedFileIndex> idx;
    Matrix queries;
};

} // namespace

TEST_F(MultiBlockFixture, BlockedScanMatchesReferenceBitwise)
{
    // Against the direct Eq. 2 reference the comparison must stay at
    // ranks whose distance gaps exceed the decomposition's rounding
    // difference (deep ranks of 4100 random centroids have adjacent
    // gaps below one fp32 ulp, where the two formulas legitimately
    // disagree; the flat-scan test below covers the full ordering).
    for (std::size_t nprobe : {1u, 12u}) {
        auto fast = shortlistRetrieve(queries, *idx, nprobe);
        auto ref = shortlistReference(queries, *idx, nprobe);
        ASSERT_EQ(fast.size(), ref.size());
        for (std::size_t q = 0; q < fast.size(); ++q)
            EXPECT_EQ(fast[q], ref[q])
                << "query " << q << " nprobe=" << nprobe;
    }
}

/**
 * The blocked + streaming scan against a single flat fused-kernel
 * call over all 4100 centroids with a one-shot topKMin: bitwise
 * identical lists at every nprobe, including the full ordering. This
 * is the exact claim behind the column blocking (block starts are
 * multiples of the kernels' column tile, so tile assignment — and
 * hence every dot's bits — matches the unblocked call).
 */
TEST_F(MultiBlockFixture, BlockedScanMatchesFlatFusedScanBitwise)
{
    const auto &k = simd::kernels(simd::resolve());
    const std::vector<float> qn = rowNormsSq(queries);
    const std::vector<float> &cnorm = idx->centroidNormsSq();
    std::vector<float> dist(queries.rows() * kM);
    k.shortlistScore(queries.flat().data(), qn.data(), queries.rows(),
                     idx->centroids().flat().data(), cnorm.data(), kM,
                     kD, dist.data(), kM);
    for (std::size_t nprobe : {1u, 12u, 4097u, 4100u}) {
        auto fast = shortlistRetrieve(queries, *idx, nprobe);
        for (std::size_t q = 0; q < fast.size(); ++q) {
            auto flat = topKMin({dist.data() + q * kM, kM}, nprobe);
            EXPECT_EQ(fast[q], flat)
                << "query " << q << " nprobe=" << nprobe;
        }
    }
}

TEST_F(MultiBlockFixture, DuplicateCentroidsTieBreakToLowerIndex)
{
    // Every query is equidistant from the planted duplicates, so the
    // full list must rank 50 before 51 and 2 before 4099.
    auto lists = shortlistRetrieve(queries, *idx, kM);
    for (std::size_t q = 0; q < lists.size(); ++q) {
        const auto &l = lists[q];
        auto pos = [&](std::uint32_t id) {
            return std::find(l.begin(), l.end(), id) - l.begin();
        };
        EXPECT_LT(pos(50), pos(51)) << "query " << q;
        EXPECT_LT(pos(2), pos(4099)) << "query " << q;
        EXPECT_EQ(pos(51), pos(50) + 1) << "query " << q;
        EXPECT_EQ(pos(4099), pos(2) + 1) << "query " << q;
    }
}

TEST_F(MultiBlockFixture, Fp16ScanIsDeterministicAcrossBlocksSplits)
{
    // The fp16 list must also be identical however many threads the
    // row dimension is split across (the column blocking is fixed).
    auto serial = shortlistRetrieve(queries, *idx, 12,
                                    parallel::ParallelConfig::serial(),
                                    ShortlistPrecision::Fp16);
    auto threaded = shortlistRetrieve(queries, *idx, 12,
                                      parallel::ParallelConfig{4},
                                      ShortlistPrecision::Fp16);
    EXPECT_EQ(serial, threaded);
    for (const auto &l : serial)
        EXPECT_EQ(l.size(), 12u);
}
