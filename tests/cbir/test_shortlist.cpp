/**
 * @file
 * Tests for short-list retrieval: the Eq. 1 GEMM decomposition must
 * match direct distance evaluation, and short-lists must rank
 * clusters correctly.
 */

#include <gtest/gtest.h>

#include "cbir/shortlist.hh"
#include "workload/dataset.hh"

using namespace reach;
using namespace reach::cbir;

namespace
{

struct ShortlistFixture : ::testing::Test
{
    void
    SetUp() override
    {
        workload::DatasetConfig dc;
        dc.numVectors = 800;
        dc.dim = 16;
        dc.latentClusters = 12;
        ds = std::make_unique<workload::Dataset>(dc);

        KMeansConfig kc;
        kc.clusters = 20;
        idx = std::make_unique<InvertedFileIndex>(ds->vectors(), kc);

        queries = ds->makeQueries(12, 0.05, 777);
    }

    std::unique_ptr<workload::Dataset> ds;
    std::unique_ptr<InvertedFileIndex> idx;
    Matrix queries;
};

} // namespace

TEST_F(ShortlistFixture, DecompositionMatchesReference)
{
    // Eq. 1: ||q||^2 + ||C||^2 - 2<q,C> must select the same
    // clusters as direct Eq. 2 evaluation.
    auto fast = shortlistRetrieve(queries, *idx, 5);
    auto ref = shortlistReference(queries, *idx, 5);
    ASSERT_EQ(fast.size(), ref.size());
    for (std::size_t q = 0; q < fast.size(); ++q)
        EXPECT_EQ(fast[q], ref[q]) << "query " << q;
}

TEST_F(ShortlistFixture, ReturnsRequestedProbeCount)
{
    auto lists = shortlistRetrieve(queries, *idx, 7);
    for (const auto &l : lists)
        EXPECT_EQ(l.size(), 7u);
}

TEST_F(ShortlistFixture, NprobeLargerThanClustersClamps)
{
    auto lists = shortlistRetrieve(queries, *idx, 100);
    for (const auto &l : lists)
        EXPECT_EQ(l.size(), idx->numClusters());
}

TEST_F(ShortlistFixture, FirstClusterIsNearest)
{
    auto lists = shortlistRetrieve(queries, *idx, 3);
    for (std::size_t q = 0; q < queries.rows(); ++q) {
        std::uint32_t nearest =
            nearestCentroid(idx->centroids(), queries.row(q));
        EXPECT_EQ(lists[q][0], nearest);
    }
}

TEST_F(ShortlistFixture, ClustersOrderedByDistance)
{
    auto lists = shortlistRetrieve(queries, *idx, 6);
    for (std::size_t q = 0; q < queries.rows(); ++q) {
        float prev = -1;
        for (auto c : lists[q]) {
            float d = l2sq(queries.row(q), idx->centroids().row(c));
            EXPECT_GE(d, prev - 1e-3f);
            prev = d;
        }
    }
}

TEST_F(ShortlistFixture, NoDuplicateClustersInList)
{
    auto lists = shortlistRetrieve(queries, *idx, 8);
    for (const auto &l : lists) {
        std::set<std::uint32_t> s(l.begin(), l.end());
        EXPECT_EQ(s.size(), l.size());
    }
}
