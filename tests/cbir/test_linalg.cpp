/** @file Unit + property tests for the dense linear algebra kernels. */

#include <gtest/gtest.h>

#include <cmath>

#include "cbir/linalg.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

using namespace reach;
using namespace reach::cbir;

TEST(Matrix, ShapeAndAccess)
{
    Matrix m(3, 4);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 4u);
    EXPECT_EQ(m.bytes(), 3u * 4 * sizeof(float));
    m.at(2, 3) = 7.5f;
    EXPECT_FLOAT_EQ(m.at(2, 3), 7.5f);
    EXPECT_FLOAT_EQ(m.row(2)[3], 7.5f);
}

TEST(Dot, KnownValues)
{
    std::vector<float> a{1, 2, 3}, b{4, 5, 6};
    EXPECT_FLOAT_EQ(dot(a, b), 32.0f);
}

TEST(Dot, MismatchedLengthsPanic)
{
    std::vector<float> a{1, 2}, b{1};
    EXPECT_THROW(dot(a, b), sim::SimPanic);
}

TEST(L2Sq, KnownValues)
{
    std::vector<float> a{0, 0}, b{3, 4};
    EXPECT_FLOAT_EQ(l2sq(a, b), 25.0f);
}

TEST(L2Sq, ZeroForIdenticalVectors)
{
    std::vector<float> a{1.5f, -2.5f, 0.25f};
    EXPECT_FLOAT_EQ(l2sq(a, a), 0.0f);
}

TEST(NormSq, MatchesDotWithSelf)
{
    std::vector<float> a{1, -2, 3};
    EXPECT_FLOAT_EQ(normSq(a), dot(a, a));
}

TEST(GemmNt, SmallKnownProduct)
{
    // A = [[1,2],[3,4]], B = [[5,6],[7,8]]; C = A * B^T.
    Matrix a(2, 2), b(2, 2), c(2, 2);
    a.at(0, 0) = 1; a.at(0, 1) = 2; a.at(1, 0) = 3; a.at(1, 1) = 4;
    b.at(0, 0) = 5; b.at(0, 1) = 6; b.at(1, 0) = 7; b.at(1, 1) = 8;
    gemmNt(a, b, c);
    EXPECT_FLOAT_EQ(c.at(0, 0), 17.0f); // 1*5+2*6
    EXPECT_FLOAT_EQ(c.at(0, 1), 23.0f); // 1*7+2*8
    EXPECT_FLOAT_EQ(c.at(1, 0), 39.0f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 53.0f);
}

TEST(GemmNt, ShapeMismatchPanics)
{
    Matrix a(2, 3), b(2, 4), c(2, 2);
    EXPECT_THROW(gemmNt(a, b, c), sim::SimPanic);
    Matrix b2(5, 3), c2(2, 4);
    EXPECT_THROW(gemmNt(a, b2, c2), sim::SimPanic);
}

TEST(GemmNt, MatchesNaiveOnRandomMatrices)
{
    sim::Rng rng(17);
    Matrix a(37, 29), b(53, 29), c(37, 53);
    for (auto &v : a.flat())
        v = static_cast<float>(rng.nextGaussian());
    for (auto &v : b.flat())
        v = static_cast<float>(rng.nextGaussian());
    gemmNt(a, b, c);
    for (std::size_t i = 0; i < a.rows(); i += 7) {
        for (std::size_t j = 0; j < b.rows(); j += 11) {
            float ref = dot(a.row(i), b.row(j));
            EXPECT_NEAR(c.at(i, j), ref, 1e-3f);
        }
    }
}

TEST(TopKMin, SelectsSmallestInOrder)
{
    std::vector<float> v{5, 1, 4, 2, 3};
    auto idx = topKMin(v, 3);
    ASSERT_EQ(idx.size(), 3u);
    EXPECT_EQ(idx[0], 1u);
    EXPECT_EQ(idx[1], 3u);
    EXPECT_EQ(idx[2], 4u);
}

TEST(TopKMin, KLargerThanInputReturnsAll)
{
    std::vector<float> v{2, 1};
    auto idx = topKMin(v, 10);
    ASSERT_EQ(idx.size(), 2u);
    EXPECT_EQ(idx[0], 1u);
}

TEST(TopKMin, TiesBrokenByLowerIndex)
{
    std::vector<float> v{1, 1, 1};
    auto idx = topKMin(v, 2);
    EXPECT_EQ(idx[0], 0u);
    EXPECT_EQ(idx[1], 1u);
}

TEST(TopKMin, EmptyInput)
{
    std::vector<float> v;
    EXPECT_TRUE(topKMin(v, 3).empty());
}

/** Property: topKMin agrees with full sort for random inputs. */
class TopKProperty : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(TopKProperty, MatchesFullSort)
{
    sim::Rng rng(GetParam());
    std::vector<float> v(200);
    for (auto &x : v)
        x = static_cast<float>(rng.nextDouble());

    std::size_t k = 1 + GetParam() % 50;
    auto got = topKMin(v, k);

    std::vector<std::uint32_t> all(v.size());
    for (std::uint32_t i = 0; i < all.size(); ++i)
        all[i] = i;
    std::sort(all.begin(), all.end(), [&](auto x, auto y) {
        if (v[x] != v[y])
            return v[x] < v[y];
        return x < y;
    });
    for (std::size_t i = 0; i < k; ++i)
        EXPECT_EQ(got[i], all[i]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopKProperty,
                         ::testing::Values(1, 5, 23, 42, 99));
