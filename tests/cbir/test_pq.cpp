/**
 * @file
 * The PQ codec's contract: encode picks nearest subspace centroids,
 * ADC equals the exact distance to the decoded vector, the table
 * build is a backend-independent pure function, the compressed
 * rerank path is bitwise identical across thread counts and (without
 * refine) across backends, and refine covering the budget recovers
 * the exact pipeline.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "cbir/index.hh"
#include "cbir/pq.hh"
#include "cbir/rerank.hh"
#include "cbir/shortlist.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "workload/dataset.hh"

using namespace reach;
using namespace reach::cbir;

namespace
{

workload::Dataset
pqDataset()
{
    workload::DatasetConfig dc;
    dc.numVectors = 1000;
    dc.dim = 32;
    dc.latentClusters = 12;
    return workload::Dataset(dc);
}

PqConfig
pqConfig(std::uint32_t m, std::uint32_t bits = 8)
{
    PqConfig pc;
    pc.enabled = true;
    pc.m = m;
    pc.bits = bits;
    pc.trainIterations = 4;
    return pc;
}

} // namespace

TEST(PqCodebook, TrainShapes)
{
    auto ds = pqDataset();
    PqCodebook cb = PqCodebook::train(ds.vectors(), pqConfig(8));
    EXPECT_EQ(cb.numSubspaces(), 8u);
    EXPECT_EQ(cb.subDim(), 4u);
    EXPECT_EQ(cb.numCentroids(), 256u);
    EXPECT_EQ(cb.dim(), 32u);
    EXPECT_EQ(cb.codeBytes(), 8u);
    EXPECT_EQ(cb.codeBits(), 8u);
    EXPECT_EQ(cb.lutStride(), simd::kAdcLutStride);
    EXPECT_EQ(cb.lutFloats(), 8 * simd::kAdcLutStride);
}

TEST(PqCodebook, FourBitTrainShapes)
{
    auto ds = pqDataset();
    PqCodebook cb = PqCodebook::train(ds.vectors(), pqConfig(8, 4));
    EXPECT_EQ(cb.numSubspaces(), 8u);
    EXPECT_EQ(cb.numCentroids(), 16u);
    EXPECT_EQ(cb.codeBits(), 4u);
    EXPECT_EQ(cb.codeBytes(), 4u); // two codes per byte
    EXPECT_EQ(cb.lutStride(), simd::kAdc4LutStride);
    EXPECT_EQ(cb.lutFloats(), 8 * simd::kAdc4LutStride);
    EXPECT_EQ(pqCodeBytes(pqConfig(9, 4)), 5u); // odd m rounds up
}

TEST(PqCodebook, FewerVectorsThanCentroidsShrinksCodebooks)
{
    Matrix tiny(10, 8);
    for (std::size_t r = 0; r < 10; ++r)
        tiny.at(r, 0) = static_cast<float>(r);
    PqConfig pc = pqConfig(2);
    PqCodebook cb = PqCodebook::train(tiny, pc);
    EXPECT_EQ(cb.numCentroids(), 10u);
}

TEST(PqConfigValidation, RejectsMalformedConfigs)
{
    PqConfig pc = pqConfig(8);
    pc.m = 0;
    EXPECT_THROW(validatePqConfig(pc, 32), sim::SimFatal);
    pc.m = 7; // does not divide 32
    EXPECT_THROW(validatePqConfig(pc, 32), sim::SimFatal);
    pc.m = 64; // exceeds dim
    EXPECT_THROW(validatePqConfig(pc, 32), sim::SimFatal);
    pc.m = 8;
    pc.trainIterations = 0;
    EXPECT_THROW(validatePqConfig(pc, 32), sim::SimFatal);
    pc.trainIterations = 4;
    validatePqConfig(pc, 32); // well-formed: no throw
    pc.bits = 5;
    EXPECT_THROW(validatePqConfig(pc, 32), sim::SimFatal);
    pc.bits = 4;
    validatePqConfig(pc, 32); // 4-bit mode: no throw
}

TEST(PqCodebook, EncodePicksNearestSubspaceCentroid)
{
    auto ds = pqDataset();
    PqCodebook cb = PqCodebook::train(ds.vectors(), pqConfig(8));
    std::vector<std::uint8_t> code(cb.codeBytes());
    for (std::size_t r = 0; r < 20; ++r) {
        std::span<const float> v = ds.vectors().row(r);
        cb.encode(v, code.data());
        for (std::size_t s = 0; s < cb.numSubspaces(); ++s) {
            std::span<const float> sub{v.data() + s * cb.subDim(),
                                       cb.subDim()};
            float own = l2sq(sub, cb.centroid(s, code[s]));
            for (std::size_t j = 0; j < cb.numCentroids(); ++j) {
                EXPECT_LE(own, l2sq(sub, cb.centroid(s, j)) + 1e-4f)
                    << "row " << r << " subspace " << s;
            }
        }
    }
}

TEST(PqCodebook, AdcEqualsDistanceToDecodedVector)
{
    auto ds = pqDataset();
    PqCodebook cb = PqCodebook::train(ds.vectors(), pqConfig(8));
    cbir::Matrix queries = ds.makeQueries(5, 0.3, 99);

    std::vector<float> lut(cb.lutFloats());
    std::vector<std::uint8_t> code(cb.codeBytes());
    std::vector<float> decoded(cb.dim());
    const auto &k = simd::kernels(simd::Choice::autoDetect);

    for (std::size_t q = 0; q < queries.rows(); ++q) {
        cb.adcTable(queries.row(q), lut.data());
        for (std::size_t r = 0; r < 50; ++r) {
            cb.encode(ds.vectors().row(r), code.data());
            cb.decode(code.data(), decoded);
            float adc = k.adcAccum(lut.data(), cb.lutStride(),
                                   code.data(), cb.numSubspaces());
            float ref = l2sq(queries.row(q),
                             std::span<const float>(decoded));
            EXPECT_NEAR(adc, ref, 1e-4f * (1.0f + ref))
                << "query " << q << " row " << r;
        }
    }
}

TEST(PqCodebook, AdcTableRowsMatchSubspaceL2AndPadWithZeros)
{
    auto ds = pqDataset();
    PqCodebook cb = PqCodebook::train(ds.vectors(), pqConfig(8));
    cbir::Matrix queries = ds.makeQueries(1, 0.3, 7);
    std::span<const float> q = queries.row(0);

    std::vector<float> lut(cb.lutFloats());
    cb.adcTable(q, lut.data());
    // The build is a fixed function of (query, codebook): a second
    // build reproduces the exact bits regardless of backend choice.
    std::vector<float> again(lut.size(), -1.0f);
    cb.adcTable(q, again.data());
    EXPECT_EQ(lut, again);

    for (std::size_t s = 0; s < cb.numSubspaces(); ++s) {
        for (std::size_t j = 0; j < cb.numCentroids(); ++j) {
            float ref = l2sq(
                std::span<const float>(q.data() + s * cb.subDim(),
                                       cb.subDim()),
                cb.centroid(s, j));
            EXPECT_NEAR(lut[s * simd::kAdcLutStride + j], ref,
                        1e-5f * (1.0f + ref))
                << "s=" << s << " j=" << j;
        }
        // Padding past the trained centroids stays zero.
        for (std::size_t j = cb.numCentroids();
             j < simd::kAdcLutStride; ++j)
            EXPECT_EQ(lut[s * simd::kAdcLutStride + j], 0.0f);
    }
}

TEST(PqCodebook, EncodeAllMatchesEncodeAndIsThreadInvariant)
{
    auto ds = pqDataset();
    PqCodebook cb = PqCodebook::train(ds.vectors(), pqConfig(8));

    parallel::ParallelConfig serial = parallel::ParallelConfig::serial();
    parallel::ParallelConfig four;
    four.threads = 4;
    four.simd = serial.simd;
    auto codes1 = cb.encodeAll(ds.vectors(), serial);
    auto codes4 = cb.encodeAll(ds.vectors(), four);
    EXPECT_EQ(codes1, codes4);

    std::vector<std::uint8_t> one(cb.codeBytes());
    for (std::size_t r : {std::size_t(0), std::size_t(421)}) {
        cb.encode(ds.vectors().row(r), one.data());
        for (std::size_t s = 0; s < cb.codeBytes(); ++s)
            EXPECT_EQ(one[s], codes1[r * cb.codeBytes() + s]);
    }
}

TEST(PqCodebook, ShapeMismatchesPanic)
{
    auto ds = pqDataset();
    PqCodebook cb = PqCodebook::train(ds.vectors(), pqConfig(8));
    std::vector<float> wrong(cb.dim() + 1);
    std::vector<std::uint8_t> code(cb.codeBytes());
    std::vector<float> lut(cb.lutFloats());
    EXPECT_THROW(cb.encode(wrong, code.data()), sim::SimPanic);
    EXPECT_THROW(cb.adcTable(wrong, lut.data()), sim::SimPanic);
    std::vector<float> out(cb.dim() - 1);
    EXPECT_THROW(cb.decode(code.data(), out), sim::SimPanic);
}

namespace
{

/** A small dataset whose dim admits an odd subspace count. */
workload::Dataset
oddDataset()
{
    workload::DatasetConfig dc;
    dc.numVectors = 400;
    dc.dim = 12;
    dc.latentClusters = 6;
    return workload::Dataset(dc);
}

} // namespace

TEST(PqCodebook, FourBitEncodeDecodeRoundtripAtOddM)
{
    auto ds = oddDataset();
    PqCodebook cb = PqCodebook::train(ds.vectors(), pqConfig(3, 4));
    ASSERT_EQ(cb.numSubspaces(), 3u);
    ASSERT_EQ(cb.codeBytes(), 2u);

    std::vector<std::uint8_t> code(cb.codeBytes());
    std::vector<float> decoded(cb.dim());
    for (std::size_t r = 0; r < 40; ++r) {
        cb.encode(ds.vectors().row(r), code.data());
        // Odd m: the last byte's phantom high nibble stays zero — the
        // pack/shuffle contract the 4-bit kernels rely on.
        EXPECT_EQ(code.back() >> 4, 0);
        cb.decode(code.data(), decoded);
        for (std::size_t s = 0; s < cb.numSubspaces(); ++s) {
            const std::uint8_t j = s % 2 == 0 ? code[s / 2] & 0x0F
                                              : code[s / 2] >> 4;
            ASSERT_LT(j, cb.numCentroids());
            std::span<const float> cent = cb.centroid(s, j);
            for (std::size_t d = 0; d < cb.subDim(); ++d)
                EXPECT_EQ(decoded[s * cb.subDim() + d], cent[d])
                    << "row " << r << " s=" << s;
        }
    }
}

TEST(PqCodebook, FourBitEncodeAllIsThreadInvariant)
{
    auto ds = pqDataset();
    PqCodebook cb = PqCodebook::train(ds.vectors(), pqConfig(8, 4));

    parallel::ParallelConfig serial = parallel::ParallelConfig::serial();
    parallel::ParallelConfig four;
    four.threads = 4;
    four.simd = serial.simd;
    auto codes1 = cb.encodeAll(ds.vectors(), serial);
    auto codes4 = cb.encodeAll(ds.vectors(), four);
    EXPECT_EQ(codes1.size(), ds.size() * cb.codeBytes());
    EXPECT_EQ(codes1, codes4);
}

/**
 * Satellite regression for the LUT padding contract: the 4-bit table
 * is exactly m x 16 — allocated at that size so any kernel read past
 * a row's 16 entries is out of bounds — and rows pad entries beyond
 * the trained centroids with 255 (saturated-far), so a phantom code
 * can never rank as a near neighbour.
 */
TEST(PqCodebook, FourBitAdcTableIsExactlySixteenWide)
{
    Matrix tiny(10, 8); // 10 vectors < 16 -> ksub shrinks to 10
    sim::Rng rng(7);
    for (std::size_t r = 0; r < tiny.rows(); ++r)
        for (std::size_t d = 0; d < tiny.cols(); ++d)
            tiny.at(r, d) = static_cast<float>(rng.nextGaussian());
    PqCodebook cb = PqCodebook::train(tiny, pqConfig(2, 4));
    ASSERT_EQ(cb.numCentroids(), 10u);
    ASSERT_EQ(cb.lutStride(), simd::kAdc4LutStride);

    std::vector<std::uint8_t> lut(cb.lutFloats());
    ASSERT_EQ(lut.size(), cb.numSubspaces() * simd::kAdc4LutStride);
    std::vector<float> query(cb.dim(), 0.25f);
    cb.adcTable4(query, lut.data());
    for (std::size_t s = 0; s < cb.numSubspaces(); ++s) {
        for (std::size_t j = cb.numCentroids();
             j < simd::kAdc4LutStride; ++j)
            EXPECT_EQ(lut[s * simd::kAdc4LutStride + j], 255)
                << "s=" << s << " j=" << j;
    }
}

TEST(PqCodebook, FourBitAdcWithinQuantizationBoundOfExact)
{
    auto ds = pqDataset();
    PqCodebook cb = PqCodebook::train(ds.vectors(), pqConfig(8, 4));
    cbir::Matrix queries = ds.makeQueries(4, 0.3, 17);
    const auto &k = simd::kernels(simd::Choice::autoDetect);

    const std::size_t n = 64, m = cb.numSubspaces();
    std::vector<std::uint8_t> codes(n * cb.codeBytes());
    for (std::size_t r = 0; r < n; ++r)
        cb.encode(ds.vectors().row(r), codes.data() + r * cb.codeBytes());
    std::vector<std::uint8_t> blocks(simd::adc4PackedBytes(n, m));
    simd::adc4Pack(codes.data(), n, m, blocks.data());

    std::vector<std::uint8_t> lut4(cb.lutFloats());
    std::vector<float> got(n), decoded(cb.dim());
    for (std::size_t q = 0; q < queries.rows(); ++q) {
        auto qp = cb.adcTable4(queries.row(q), lut4.data());
        k.adcBatch4(lut4.data(), blocks.data(), n, m, qp.scale,
                    qp.bias, got.data());
        // Each quantized entry sits within scale/2 of the true
        // subspace distance, so the sum is within m*scale/2 (plus
        // fp noise) of the distance to the decoded vector.
        const float tol = 0.5f * static_cast<float>(m) * qp.scale +
                          1e-3f;
        for (std::size_t r = 0; r < n; ++r) {
            cb.decode(codes.data() + r * cb.codeBytes(), decoded);
            float ref = l2sq(queries.row(q),
                             std::span<const float>(decoded));
            EXPECT_NEAR(got[r], ref, tol) << "query " << q
                                          << " row " << r;
        }
    }
}

TEST(InvertedFileIndexPq, ClusterCodesMatchMemberEncodings)
{
    auto ds = pqDataset();
    KMeansConfig kc;
    kc.clusters = 16;
    InvertedFileIndex idx(ds.vectors(), kc);
    EXPECT_FALSE(idx.hasPq());
    EXPECT_TRUE(idx.clusterCodes(0).empty());

    idx.buildPq(ds.vectors(), pqConfig(8));
    ASSERT_TRUE(idx.hasPq());
    const PqCodebook &cb = idx.pqCodebook();
    auto codes = cb.encodeAll(ds.vectors());

    for (std::size_t c = 0; c < idx.numClusters(); ++c) {
        const auto &members = idx.cluster(c);
        auto block = idx.clusterCodes(c);
        ASSERT_EQ(block.size(), members.size() * cb.codeBytes());
        for (std::size_t i = 0; i < members.size(); ++i) {
            for (std::size_t s = 0; s < cb.codeBytes(); ++s) {
                EXPECT_EQ(block[i * cb.codeBytes() + s],
                          codes[members[i] * cb.codeBytes() + s])
                    << "cluster " << c << " member " << i;
            }
        }
    }
}

TEST(InvertedFileIndexPq, FourBitAttachBuildsPackedBlocks)
{
    auto ds = pqDataset();
    KMeansConfig kc;
    kc.clusters = 16;
    InvertedFileIndex idx(ds.vectors(), kc);
    idx.buildPq(ds.vectors(), pqConfig(8, 4));
    ASSERT_TRUE(idx.hasPq());
    const PqCodebook &cb = idx.pqCodebook();
    const std::size_t m = cb.numSubspaces();

    for (std::size_t c = 0; c < idx.numClusters(); ++c) {
        const std::size_t n = idx.cluster(c).size();
        auto codes = idx.clusterCodes(c);
        auto blocks = idx.clusterPackedCodes(c);
        ASSERT_EQ(blocks.size(), simd::adc4PackedBytes(n, m));
        // The block layout is the transpose adc4Pack defines; rebuild
        // it from the per-member codes and compare bytes.
        std::vector<std::uint8_t> want(blocks.size());
        simd::adc4Pack(codes.data(), n, m, want.data());
        for (std::size_t i = 0; i < want.size(); ++i)
            EXPECT_EQ(blocks[i], want[i]) << "cluster " << c
                                          << " byte " << i;
    }
}

TEST(InvertedFileIndexPq, EightBitIndexHasNoPackedBlocks)
{
    auto ds = pqDataset();
    KMeansConfig kc;
    kc.clusters = 16;
    InvertedFileIndex idx(ds.vectors(), kc);
    idx.buildPq(ds.vectors(), pqConfig(8));
    EXPECT_TRUE(idx.clusterPackedCodes(0).empty());
}

TEST(InvertedFileIndexPq, AttachRejectsWrongSizes)
{
    auto ds = pqDataset();
    KMeansConfig kc;
    kc.clusters = 8;
    InvertedFileIndex idx(ds.vectors(), kc);
    EXPECT_THROW(idx.pqCodebook(), sim::SimPanic);

    auto cb = std::make_shared<const PqCodebook>(
        PqCodebook::train(ds.vectors(), pqConfig(8)));
    std::vector<std::uint8_t> short_codes(ds.size() * 8 - 1);
    EXPECT_THROW(idx.attachPq(cb, short_codes), sim::SimPanic);
    EXPECT_THROW(idx.attachPq(nullptr, short_codes), sim::SimPanic);

    Matrix half(ds.size() / 2, ds.vectors().cols());
    EXPECT_THROW(idx.buildPq(half, pqConfig(8)), sim::SimPanic);
}

namespace
{

struct PqRerankFixture
{
    workload::Dataset ds = pqDataset();
    InvertedFileIndex idx;
    cbir::Matrix queries;
    ShortLists lists;

    explicit PqRerankFixture(std::uint32_t bits = 8,
                             std::uint32_t m = 8)
        : idx(ds.vectors(),
              [] {
                  KMeansConfig kc;
                  kc.clusters = 20;
                  return kc;
              }()),
          queries(ds.makeQueries(10, 0.2, 31))
    {
        idx.buildPq(ds.vectors(), pqConfig(m, bits));
        lists = shortlistRetrieve(queries, idx, 6);
    }
};

} // namespace

TEST(RerankPq, PanicsWithoutCodes)
{
    auto ds = pqDataset();
    KMeansConfig kc;
    kc.clusters = 20;
    InvertedFileIndex bare(ds.vectors(), kc);
    cbir::Matrix queries = ds.makeQueries(4, 0.2, 31);
    auto lists = shortlistRetrieve(queries, bare, 6);
    RerankConfig rc;
    rc.usePq = true;
    EXPECT_THROW(rerank(queries, ds.vectors(), bare, lists, rc),
                 sim::SimPanic);
}

TEST(RerankPq, RefineCoveringTheBudgetRecoversTheExactPipeline)
{
    PqRerankFixture f;
    RerankConfig exact;
    exact.k = 10;
    exact.maxCandidates = 300;
    auto want = rerank(f.queries, f.ds.vectors(), f.idx, f.lists,
                       exact);

    // Refine >= the candidate budget re-scores every candidate with
    // exact distances: identical neighbours, bitwise.
    RerankConfig pq = exact;
    pq.usePq = true;
    pq.pqRefine = 300;
    auto got = rerank(f.queries, f.ds.vectors(), f.idx, f.lists, pq);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t q = 0; q < want.size(); ++q)
        EXPECT_EQ(got[q], want[q]) << "query " << q;
}

TEST(RerankPq, RecallAgainstTheExactPipeline)
{
    PqRerankFixture f;
    RerankConfig exact;
    exact.k = 10;
    exact.maxCandidates = 4096;
    auto want = rerank(f.queries, f.ds.vectors(), f.idx, f.lists,
                       exact);

    RerankConfig pq = exact;
    pq.usePq = true;
    pq.pqRefine = 0;
    double pure = recallAtK(
        rerank(f.queries, f.ds.vectors(), f.idx, f.lists, pq), want,
        10);
    pq.pqRefine = 64;
    double refined = recallAtK(
        rerank(f.queries, f.ds.vectors(), f.idx, f.lists, pq), want,
        10);

    // Pure ADC ordering is approximate but far from random; the
    // two-stage refine pass must recover near-exact recall.
    EXPECT_GT(pure, 0.5);
    EXPECT_GE(refined, pure);
    EXPECT_GE(refined, 0.9);
}

TEST(RerankPq, BackendsAgreeBitwiseWithoutRefine)
{
    if (!simd::supported(simd::Backend::avx2))
        GTEST_SKIP() << "avx2 not supported on this host";
    // The ADC table build is backend-independent and adcBatch is
    // bitwise cross-backend, so a pure-ADC rerank (no exact refine)
    // returns identical bits on scalar and avx2 — a stronger contract
    // than the float pipeline's tolerance-based agreement.
    PqRerankFixture f;
    RerankConfig rc;
    rc.k = 10;
    rc.maxCandidates = 4096;
    rc.usePq = true;
    rc.pqRefine = 0;
    rc.parallel = parallel::ParallelConfig::serial();
    rc.parallel.simd = simd::Choice::scalar;
    auto scalar = rerank(f.queries, f.ds.vectors(), f.idx, f.lists,
                         rc);
    rc.parallel.simd = simd::Choice::avx2;
    auto avx2 = rerank(f.queries, f.ds.vectors(), f.idx, f.lists, rc);
    ASSERT_EQ(scalar.size(), avx2.size());
    for (std::size_t q = 0; q < scalar.size(); ++q)
        EXPECT_EQ(scalar[q], avx2[q]) << "query " << q;
}

TEST(RerankPq, ThreadCountDoesNotChangeResults)
{
    PqRerankFixture f;
    RerankConfig rc;
    rc.k = 10;
    rc.maxCandidates = 4096;
    rc.usePq = true;
    rc.pqRefine = 32;
    rc.parallel = parallel::ParallelConfig::serial();
    auto serial = rerank(f.queries, f.ds.vectors(), f.idx, f.lists,
                         rc);
    rc.parallel.threads = 4;
    auto threaded = rerank(f.queries, f.ds.vectors(), f.idx, f.lists,
                           rc);
    ASSERT_EQ(serial.size(), threaded.size());
    for (std::size_t q = 0; q < serial.size(); ++q)
        EXPECT_EQ(serial[q], threaded[q]) << "query " << q;
}

/**
 * The 4-bit mirror of the suite above: the shuffle-ADC rerank path
 * keeps every reproducibility contract of the 8-bit gather path.
 */

TEST(RerankPq4, RefineCoveringTheBudgetRecoversTheExactPipeline)
{
    PqRerankFixture f(4);
    RerankConfig exact;
    exact.k = 10;
    exact.maxCandidates = 300;
    auto want = rerank(f.queries, f.ds.vectors(), f.idx, f.lists,
                       exact);

    RerankConfig pq = exact;
    pq.usePq = true;
    pq.pqRefine = 300;
    auto got = rerank(f.queries, f.ds.vectors(), f.idx, f.lists, pq);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t q = 0; q < want.size(); ++q)
        EXPECT_EQ(got[q], want[q]) << "query " << q;
}

TEST(RerankPq4, RecallAgainstTheExactPipeline)
{
    // M=16 x 4 bits matches the 8-bit test's 64-bit-per-vector code
    // budget; 16-centroid subspaces are coarser per lookup, so the
    // bar for the pure-ADC ordering is lower, but refine must still
    // recover near-exact recall.
    PqRerankFixture f(4, 16);
    RerankConfig exact;
    exact.k = 10;
    exact.maxCandidates = 4096;
    auto want = rerank(f.queries, f.ds.vectors(), f.idx, f.lists,
                       exact);

    RerankConfig pq = exact;
    pq.usePq = true;
    pq.pqRefine = 0;
    double pure = recallAtK(
        rerank(f.queries, f.ds.vectors(), f.idx, f.lists, pq), want,
        10);
    pq.pqRefine = 96;
    double refined = recallAtK(
        rerank(f.queries, f.ds.vectors(), f.idx, f.lists, pq), want,
        10);

    // 16 centroids per subspace order far more loosely than 256
    // (pure ADC only pre-sorts), so the exact-refine pass carries
    // more of the recall: a deeper budget must recover near-exact
    // results.
    EXPECT_GT(pure, 0.1);
    EXPECT_GE(refined, pure);
    EXPECT_GE(refined, 0.9);
}

TEST(RerankPq4, BackendsAgreeBitwiseWithoutRefine)
{
    if (!simd::supported(simd::Backend::avx2))
        GTEST_SKIP() << "avx2 not supported on this host";
    // The quantized table build is a fixed scalar function and
    // adcBatch4 is exact-integer + one fma on both backends, so a
    // pure-ADC 4-bit rerank returns identical bits on scalar and
    // avx2.
    PqRerankFixture f(4);
    RerankConfig rc;
    rc.k = 10;
    rc.maxCandidates = 4096;
    rc.usePq = true;
    rc.pqRefine = 0;
    rc.parallel = parallel::ParallelConfig::serial();
    rc.parallel.simd = simd::Choice::scalar;
    auto scalar = rerank(f.queries, f.ds.vectors(), f.idx, f.lists,
                         rc);
    rc.parallel.simd = simd::Choice::avx2;
    auto avx2 = rerank(f.queries, f.ds.vectors(), f.idx, f.lists, rc);
    ASSERT_EQ(scalar.size(), avx2.size());
    for (std::size_t q = 0; q < scalar.size(); ++q)
        EXPECT_EQ(scalar[q], avx2[q]) << "query " << q;
}

TEST(RerankPq4, ThreadCountDoesNotChangeResults)
{
    PqRerankFixture f(4);
    RerankConfig rc;
    rc.k = 10;
    rc.maxCandidates = 4096;
    rc.usePq = true;
    rc.pqRefine = 32;
    rc.parallel = parallel::ParallelConfig::serial();
    auto serial = rerank(f.queries, f.ds.vectors(), f.idx, f.lists,
                         rc);
    rc.parallel.threads = 4;
    auto threaded = rerank(f.queries, f.ds.vectors(), f.idx, f.lists,
                           rc);
    ASSERT_EQ(serial.size(), threaded.size());
    for (std::size_t q = 0; q < serial.size(); ++q)
        EXPECT_EQ(serial[q], threaded[q]) << "query " << q;
}
