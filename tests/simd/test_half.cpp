/**
 * @file
 * The software binary16 conversion contract (simd/half.hh): exact
 * half -> float decoding, round-to-nearest-even float -> half
 * encoding (including every directed tie case class), and bitwise
 * agreement between the software decode and the F16C hardware decode
 * across every representable half pattern — the property the fp16
 * shortlist kernels' scalar == avx2 promise rests on.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/rng.hh"
#include "simd/aligned.hh"
#include "simd/half.hh"
#include "simd/simd.hh"

using namespace reach;
using simd::floatToHalfRne;
using simd::halfToFloat;

namespace
{

bool
isFiniteHalf(std::uint16_t h)
{
    return (h & 0x7C00u) != 0x7C00u;
}

} // namespace

TEST(Half, DecodeKnownValues)
{
    EXPECT_EQ(halfToFloat(0x0000), 0.0f);
    EXPECT_TRUE(std::signbit(halfToFloat(0x8000)));
    EXPECT_EQ(halfToFloat(0x8000), -0.0f);
    EXPECT_EQ(halfToFloat(0x3C00), 1.0f);
    EXPECT_EQ(halfToFloat(0xC000), -2.0f);
    EXPECT_EQ(halfToFloat(0x7BFF), 65504.0f); // largest finite half
    EXPECT_EQ(halfToFloat(0x0400), 0x1p-14f); // smallest normal
    EXPECT_EQ(halfToFloat(0x0001), 0x1p-24f); // smallest subnormal
    EXPECT_EQ(halfToFloat(0x03FF), 0x3FFp-24f); // largest subnormal
    EXPECT_EQ(halfToFloat(0x7C00),
              std::numeric_limits<float>::infinity());
    EXPECT_EQ(halfToFloat(0xFC00),
              -std::numeric_limits<float>::infinity());
    EXPECT_TRUE(std::isnan(halfToFloat(0x7E00)));
}

TEST(Half, DecodeQuietsSignallingNansLikeVcvtph2ps)
{
    // SNaN payload 1: hardware keeps the payload bits and sets the
    // quiet bit. 0x7C01 -> 0x7FC02000.
    EXPECT_EQ(std::bit_cast<std::uint32_t>(halfToFloat(0x7C01)),
              0x7FC02000u);
    EXPECT_EQ(std::bit_cast<std::uint32_t>(halfToFloat(0xFDAB)),
              0xFFF56000u);
}

TEST(Half, EncodeRoundTripsEveryNonNanPattern)
{
    // halfToFloat is exact, so re-encoding must give back the input
    // bits for every finite pattern and both infinities. (NaNs are
    // excluded: encode canonicalizes payloads to the quiet NaN.)
    for (std::uint32_t p = 0; p < 0x10000u; ++p) {
        const auto h = static_cast<std::uint16_t>(p);
        if (!isFiniteHalf(h) && (h & 0x03FFu) != 0)
            continue; // NaN
        EXPECT_EQ(floatToHalfRne(halfToFloat(h)), h)
            << "pattern 0x" << std::hex << p;
    }
}

TEST(Half, EncodeRoundsTiesToEven)
{
    // Halfway between 1.0 (0x3C00) and 1+2^-10 (0x3C01): even wins.
    EXPECT_EQ(floatToHalfRne(1.0f + 0x1p-11f), 0x3C00);
    // Halfway between 0x3C01 and 0x3C02: rounds up to even.
    EXPECT_EQ(floatToHalfRne(1.0f + 3 * 0x1p-11f), 0x3C02);
    // Just past the ties, rounding must follow the nearer value.
    EXPECT_EQ(floatToHalfRne(std::nextafterf(1.0f + 0x1p-11f, 2.0f)),
              0x3C01);
    EXPECT_EQ(floatToHalfRne(std::nextafterf(1.0f + 0x1p-11f, 0.0f)),
              0x3C00);

    // Subnormal ties: 2^-25 is halfway between 0 and the smallest
    // subnormal; 3 * 2^-25 halfway between 1 and 2 subnormal ulps.
    EXPECT_EQ(floatToHalfRne(0x1p-25f), 0x0000);
    EXPECT_EQ(floatToHalfRne(-0x1p-25f), 0x8000);
    EXPECT_EQ(floatToHalfRne(3 * 0x1p-25f), 0x0002);
    EXPECT_EQ(floatToHalfRne(std::nextafterf(0x1p-25f, 1.0f)),
              0x0001);

    // Subnormal-to-normal carry: just below 2^-14 rounds up into the
    // smallest normal half.
    EXPECT_EQ(floatToHalfRne(std::nextafterf(0x1p-14f, 0.0f)),
              0x0400);

    // Overflow ties: 65520 is halfway between 65504 (0x7BFF) and the
    // unrepresentable 65536 — RNE picks the even (infinite) side.
    EXPECT_EQ(floatToHalfRne(65520.0f), 0x7C00);
    EXPECT_EQ(floatToHalfRne(std::nextafterf(65520.0f, 0.0f)),
              0x7BFF);
    EXPECT_EQ(floatToHalfRne(-65520.0f), 0xFC00);
    EXPECT_EQ(floatToHalfRne(1e10f), 0x7C00);
}

TEST(Half, EncodeSpecialValues)
{
    EXPECT_EQ(floatToHalfRne(0.0f), 0x0000);
    EXPECT_EQ(floatToHalfRne(-0.0f), 0x8000);
    EXPECT_EQ(floatToHalfRne(std::numeric_limits<float>::infinity()),
              0x7C00);
    EXPECT_EQ(floatToHalfRne(-std::numeric_limits<float>::infinity()),
              0xFC00);
    EXPECT_EQ(floatToHalfRne(std::numeric_limits<float>::quiet_NaN()) &
                  0x7E00,
              0x7E00);
    // Tiny but nonzero floats flush to signed zero under RNE.
    EXPECT_EQ(floatToHalfRne(0x1p-26f), 0x0000);
    EXPECT_EQ(floatToHalfRne(-0x1p-26f), 0x8000);
}

TEST(Half, EncodePicksTheNearestHalfOnRandomInputs)
{
    // Property check: for random floats inside the finite half range
    // the encoded value is at least as close (in double precision) as
    // either neighbouring half.
    sim::Rng rng(42);
    for (int t = 0; t < 20'000; ++t) {
        const float x =
            static_cast<float>(rng.nextGaussian() * 100.0);
        const std::uint16_t h = floatToHalfRne(x);
        if (!isFiniteHalf(h))
            continue;
        const double err =
            std::abs(static_cast<double>(halfToFloat(h)) - x);
        for (const int d : {-1, 1}) {
            const auto n =
                static_cast<std::uint16_t>(h + d);
            // Neighbour arithmetic on the raw bits walks the value
            // line only within one sign; skip wraps and specials.
            if (!isFiniteHalf(n) || (n & 0x8000u) != (h & 0x8000u))
                continue;
            const double nerr =
                std::abs(static_cast<double>(halfToFloat(n)) - x);
            EXPECT_LE(err, nerr)
                << "x=" << x << " h=0x" << std::hex << h;
        }
    }
}

TEST(Half, HalfFromFloatsMatchesScalarEncode)
{
    sim::Rng rng(7);
    std::vector<float> src(257);
    for (auto &v : src)
        v = static_cast<float>(rng.nextGaussian());
    src[0] = 0x1p-25f; // keep one tie and one special in the batch
    src[1] = -std::numeric_limits<float>::infinity();
    std::vector<std::uint16_t> dst(src.size(), 0xDEAD);
    simd::halfFromFloats(src.data(), src.size(), dst.data());
    for (std::size_t i = 0; i < src.size(); ++i)
        EXPECT_EQ(dst[i], floatToHalfRne(src[i])) << "element " << i;
}

TEST(Half, HalfNormSqMatchesF16SelfDotBitwise)
{
    // halfNormSq promises the fp16 kernels' exact lane order; the
    // scalar gemmNtF16 of a vector with its own decoded floats is
    // that same accumulation, so the two must agree bitwise at every
    // tail length.
    const auto &k = simd::kernels(simd::Backend::scalar);
    const std::size_t kLengths[] = {0, 1, 7, 8, 9, 16, 33, 95, 96, 97};
    for (std::size_t d : kLengths) {
        sim::Rng rng(900 + d);
        std::vector<std::uint16_t> h(d);
        std::vector<float> conv(d);
        for (std::size_t i = 0; i < d; ++i) {
            h[i] = floatToHalfRne(
                static_cast<float>(rng.nextGaussian()));
            conv[i] = halfToFloat(h[i]);
        }
        float out = -1.0f;
        k.gemmNtF16(conv.data(), 1, h.data(), 1, d, &out, 1);
        EXPECT_EQ(simd::halfNormSq(h.data(), d), out) << "d=" << d;

        // And it is a faithful norm (double-precision reference).
        double ref = 0;
        for (std::size_t i = 0; i < d; ++i)
            ref += static_cast<double>(conv[i]) * conv[i];
        EXPECT_NEAR(simd::halfNormSq(h.data(), d), ref,
                    1e-5 * std::abs(ref) + 1e-6)
            << "d=" << d;
    }
}

/**
 * The keystone of the fp16 bitwise contract: the avx2 decode
 * (VCVTPH2PS inside the fmadd loop) and the software decode agree on
 * every finite half bit pattern. All 63488 finite patterns stream
 * through gemmNtF16 as 7936 rows of d=8 — each row sits entirely in
 * the kernels' vector body, so every pattern is decoded by the
 * hardware path on avx2 — against an all-ones query.
 */
TEST(Half, GemmNtF16BackendsAgreeOnEveryFinitePattern)
{
    if (!simd::supported(simd::Backend::avx2))
        GTEST_SKIP() << "no avx2 on this host";
    constexpr std::size_t d = 8;
    std::vector<std::uint16_t, simd::AlignedAllocator<std::uint16_t, 64>>
        pats;
    pats.reserve(63488);
    for (std::uint32_t p = 0; p < 0x10000u; ++p) {
        if (isFiniteHalf(static_cast<std::uint16_t>(p)))
            pats.push_back(static_cast<std::uint16_t>(p));
    }
    ASSERT_EQ(pats.size() % d, 0u);
    const std::size_t m = pats.size() / d;
    const std::vector<float> ones(d, 1.0f);
    std::vector<float> sc(m, -1.0f), av(m, -2.0f);
    simd::kernels(simd::Backend::scalar)
        .gemmNtF16(ones.data(), 1, pats.data(), m, d, sc.data(), m);
    simd::kernels(simd::Backend::avx2)
        .gemmNtF16(ones.data(), 1, pats.data(), m, d, av.data(), m);
    for (std::size_t j = 0; j < m; ++j) {
        EXPECT_EQ(sc[j], av[j])
            << "pattern row starting 0x" << std::hex << pats[j * d];
    }
}
