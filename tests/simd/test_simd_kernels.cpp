/**
 * @file
 * The SIMD kernel layer's contract: scalar and dispatched backends
 * agree to rounding tolerance on random vectors (all tail lengths,
 * d = 0 / d = 1 edge cases), the cross-kernel bitwise invariants of
 * simd.hh hold per backend, and backend resolution obeys the
 * choice > REACH_SIMD > detection hierarchy.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/rng.hh"
#include "simd/aligned.hh"
#include "simd/half.hh"
#include "simd/kernels.hh"
#include "simd/simd.hh"

using namespace reach;

namespace
{

std::vector<simd::Backend>
availableBackends()
{
    std::vector<simd::Backend> out{simd::Backend::scalar};
    if (simd::supported(simd::Backend::avx2))
        out.push_back(simd::Backend::avx2);
    return out;
}

std::vector<float>
randomVec(std::size_t n, std::uint64_t seed)
{
    sim::Rng rng(seed);
    std::vector<float> v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.nextGaussian());
    return v;
}

/** Lengths that cover d=0, d=1, every d%8 residue and multi-block. */
const std::size_t kLengths[] = {0,  1,  2,  3,  5,  7,  8,  9,
                                15, 16, 17, 31, 33, 95, 96, 97};

float
relTol(float ref)
{
    return 1e-5f * std::abs(ref) + 1e-6f;
}

} // namespace

TEST(SimdDispatch, ScalarAlwaysSupported)
{
    EXPECT_TRUE(simd::supported(simd::Backend::scalar));
    EXPECT_STREQ(simd::name(simd::Backend::scalar), "scalar");
    EXPECT_STREQ(simd::name(simd::Backend::avx2), "avx2");
}

TEST(SimdDispatch, ExplicitChoiceWins)
{
    EXPECT_EQ(simd::resolve(simd::Choice::scalar),
              simd::Backend::scalar);
    if (simd::supported(simd::Backend::avx2))
        EXPECT_EQ(simd::resolve(simd::Choice::avx2),
                  simd::Backend::avx2);
    else
        EXPECT_EQ(simd::resolve(simd::Choice::avx2), simd::detect());
}

TEST(SimdDispatch, ParsesTheReachSimdGrammar)
{
    simd::Choice c;
    ASSERT_TRUE(simd::parseChoice("auto", c));
    EXPECT_EQ(c, simd::Choice::autoDetect);
    ASSERT_TRUE(simd::parseChoice("scalar", c));
    EXPECT_EQ(c, simd::Choice::scalar);
    ASSERT_TRUE(simd::parseChoice("avx2", c));
    EXPECT_EQ(c, simd::Choice::avx2);
    EXPECT_FALSE(simd::parseChoice("sse", c));
    EXPECT_FALSE(simd::parseChoice("", c));
    EXPECT_FALSE(simd::parseChoice(nullptr, c));
}

TEST(SimdDispatch, ResolvedBackendIsRunnable)
{
    EXPECT_TRUE(simd::supported(simd::resolve()));
    EXPECT_TRUE(simd::supported(simd::detect()));
}

/** Per-backend kernel behaviour on known values and edge lengths. */
class SimdBackend : public ::testing::TestWithParam<simd::Backend>
{
  protected:
    void
    SetUp() override
    {
        if (!simd::supported(GetParam()))
            GTEST_SKIP() << "backend not supported on this host";
    }

    const simd::Kernels &
    k() const
    {
        return simd::kernels(GetParam());
    }
};

TEST_P(SimdBackend, KnownValues)
{
    const float a[] = {1, 2, 3};
    const float b[] = {4, 5, 6};
    EXPECT_FLOAT_EQ(k().dot(a, b, 3), 32.0f);
    EXPECT_FLOAT_EQ(k().l2sq(a, b, 3), 27.0f);
    EXPECT_FLOAT_EQ(k().normSq(b, 3), 77.0f);
}

TEST_P(SimdBackend, ZeroAndOneLengthEdgeCases)
{
    const float a[] = {3.0f};
    const float b[] = {5.0f};
    EXPECT_EQ(k().dot(a, b, 0), 0.0f);
    EXPECT_EQ(k().l2sq(a, b, 0), 0.0f);
    EXPECT_EQ(k().normSq(a, 0), 0.0f);
    EXPECT_FLOAT_EQ(k().dot(a, b, 1), 15.0f);
    EXPECT_FLOAT_EQ(k().l2sq(a, b, 1), 4.0f);
    EXPECT_FLOAT_EQ(k().normSq(b, 1), 25.0f);

    float y0[] = {1.0f};
    k().axpy(2.0f, a, y0, 0); // no-op
    EXPECT_FLOAT_EQ(y0[0], 1.0f);
    k().axpy(2.0f, a, y0, 1);
    EXPECT_FLOAT_EQ(y0[0], 7.0f);

    float out = 42.0f;
    k().dotBatch(a, b, 0, 1, &out); // zero rows: out untouched
    EXPECT_FLOAT_EQ(out, 42.0f);
    k().l2sqBatch(a, b, 1, 0, &out); // zero dim: distance 0
    EXPECT_FLOAT_EQ(out, 0.0f);
}

TEST_P(SimdBackend, CrossKernelInvariantsBitwise)
{
    for (std::size_t d : kLengths) {
        auto q = randomVec(d, 100 + d);
        constexpr std::size_t n = 7; // exercises block + remainder
        auto rows = randomVec(n * d, 200 + d);
        std::vector<float> dots(n), dists(n);
        k().dotBatch(q.data(), rows.data(), n, d, dots.data());
        k().l2sqBatch(q.data(), rows.data(), n, d, dists.data());
        for (std::size_t r = 0; r < n; ++r) {
            const float *row = rows.data() + r * d;
            EXPECT_EQ(dots[r], k().dot(q.data(), row, d))
                << "dotBatch row " << r << " d=" << d;
            EXPECT_EQ(dists[r], k().l2sq(q.data(), row, d))
                << "l2sqBatch row " << r << " d=" << d;
        }
        EXPECT_EQ(k().normSq(q.data(), d), k().dot(q.data(), q.data(), d))
            << "normSq d=" << d;

        // dotIdx with a shuffled id order must match per-row dot (and
        // hence dotBatch on the corresponding gathered tile) bitwise.
        const std::uint32_t ids[n] = {5, 0, 3, 6, 1, 4, 2};
        std::vector<float> idx_dots(n);
        k().dotIdx(q.data(), rows.data(), ids, n, d, idx_dots.data());
        for (std::size_t r = 0; r < n; ++r) {
            EXPECT_EQ(idx_dots[r],
                      k().dot(q.data(), rows.data() + ids[r] * d, d))
                << "dotIdx row " << r << " d=" << d;
        }
    }
}

TEST_P(SimdBackend, AdcBatchMatchesAdcAccumBitwise)
{
    // Subspace counts covering m=0, m=1, every m%8 residue, and
    // multi-block; n=7 exercises the 4-row block and its remainder.
    const std::size_t kSubspaces[] = {0, 1, 3, 7, 8, 9, 16, 32, 33};
    for (std::size_t m : kSubspaces) {
        auto lut = randomVec(std::max<std::size_t>(m, 1) *
                                 simd::kAdcLutStride,
                             500 + m);
        constexpr std::size_t n = 7;
        sim::Rng rng(600 + m);
        std::vector<std::uint8_t> codes(n * std::max<std::size_t>(m, 1));
        for (auto &c : codes)
            c = static_cast<std::uint8_t>(rng.nextUInt(256));
        std::vector<float> out(n, -1.0f);
        k().adcBatch(lut.data(), simd::kAdcLutStride, codes.data(), n,
                     m, out.data());
        for (std::size_t r = 0; r < n; ++r) {
            EXPECT_EQ(out[r],
                      k().adcAccum(lut.data(), simd::kAdcLutStride,
                                   codes.data() + r * m, m))
                << "adcBatch row " << r << " m=" << m;
        }
    }
}

/**
 * The gather pair honours a runtime row stride: a table laid out at
 * 16 floats per row (the 4-bit codebook's lutStride) produces the
 * same sums as the equivalent 256-stride table, and — because the
 * tight table is allocated at exactly m*16 floats — any read past a
 * row's 16 valid entries would be out of bounds (ASan-visible) and
 * land on the next row's values (assertion-visible).
 */
TEST_P(SimdBackend, AdcHonoursNarrowLutStride)
{
    const std::size_t kSubspaces[] = {1, 3, 8, 9, 16, 32};
    for (std::size_t m : kSubspaces) {
        auto narrow = randomVec(m * simd::kAdc4LutStride, 900 + m);
        std::vector<float> wide(m * simd::kAdcLutStride, 1e30f);
        for (std::size_t s = 0; s < m; ++s) {
            std::copy_n(narrow.data() + s * simd::kAdc4LutStride,
                        simd::kAdc4LutStride,
                        wide.data() + s * simd::kAdcLutStride);
        }
        constexpr std::size_t n = 7;
        sim::Rng rng(950 + m);
        std::vector<std::uint8_t> codes(n * m);
        for (auto &c : codes)
            c = static_cast<std::uint8_t>(rng.nextUInt(16));
        std::vector<float> a(n), b(n);
        k().adcBatch(narrow.data(), simd::kAdc4LutStride, codes.data(),
                     n, m, a.data());
        k().adcBatch(wide.data(), simd::kAdcLutStride, codes.data(),
                     n, m, b.data());
        for (std::size_t r = 0; r < n; ++r)
            EXPECT_EQ(a[r], b[r]) << "row " << r << " m=" << m;
    }
}

TEST_P(SimdBackend, AdcEdgeCases)
{
    float lut[simd::kAdcLutStride] = {};
    lut[0] = 2.5f;
    lut[200] = 4.0f;
    const std::uint8_t code[] = {200};
    EXPECT_EQ(k().adcAccum(lut, simd::kAdcLutStride, code, 0), 0.0f);
    EXPECT_FLOAT_EQ(k().adcAccum(lut, simd::kAdcLutStride, code, 1),
                    4.0f);

    float out = 42.0f;
    // zero rows: out untouched
    k().adcBatch(lut, simd::kAdcLutStride, code, 0, 1, &out);
    EXPECT_FLOAT_EQ(out, 42.0f);
}

/**
 * The ADC pair is held to a stricter contract than the other
 * kernels: the fixed accumulation order makes scalar and avx2 agree
 * BITWISE (simd.hh), not just to tolerance.
 */
TEST(SimdAdc, BackendsAgreeBitwise)
{
    if (!simd::supported(simd::Backend::avx2))
        GTEST_SKIP() << "no avx2 on this host";
    const auto &sc = simd::kernels(simd::Backend::scalar);
    const auto &av = simd::kernels(simd::Backend::avx2);
    const std::size_t kSubspaces[] = {1, 5, 8, 12, 16, 32, 37};
    for (std::size_t m : kSubspaces) {
        auto lut = randomVec(m * simd::kAdcLutStride, 700 + m);
        constexpr std::size_t n = 11;
        sim::Rng rng(800 + m);
        std::vector<std::uint8_t> codes(n * m);
        for (auto &c : codes)
            c = static_cast<std::uint8_t>(rng.nextUInt(256));
        std::vector<float> a(n), b(n);
        sc.adcBatch(lut.data(), simd::kAdcLutStride, codes.data(), n,
                    m, a.data());
        av.adcBatch(lut.data(), simd::kAdcLutStride, codes.data(), n,
                    m, b.data());
        for (std::size_t r = 0; r < n; ++r)
            EXPECT_EQ(a[r], b[r]) << "row " << r << " m=" << m;
        EXPECT_EQ(sc.adcAccum(lut.data(), simd::kAdcLutStride,
                              codes.data(), m),
                  av.adcAccum(lut.data(), simd::kAdcLutStride,
                              codes.data(), m))
            << "m=" << m;
    }
}

namespace
{

/** Random packed 4-bit codes + the blocks adc4Pack builds of them. */
struct Adc4Fixture
{
    std::vector<std::uint8_t> lut;    // m x 16
    std::vector<std::uint8_t> codes;  // n x adc4CodeBytes(m)
    std::vector<std::uint8_t> blocks; // adc4PackedBytes(n, m)

    Adc4Fixture(std::size_t n, std::size_t m, std::uint64_t seed)
        : lut(std::max<std::size_t>(m, 1) * simd::kAdc4LutStride),
          codes(n * simd::adc4CodeBytes(m)),
          blocks(simd::adc4PackedBytes(n, m))
    {
        sim::Rng rng(seed);
        for (auto &x : lut)
            x = static_cast<std::uint8_t>(rng.nextUInt(256));
        for (auto &c : codes)
            c = static_cast<std::uint8_t>(rng.nextUInt(256));
        if (m % 2) {
            // The packer contract: phantom high nibbles are zero.
            for (std::size_t r = 0; r < n; ++r)
                codes[(r + 1) * simd::adc4CodeBytes(m) - 1] &= 0x0F;
        }
        simd::adc4Pack(codes.data(), n, m, blocks.data());
    }

    /** Plain-integer reference sum of candidate r. */
    std::uint32_t
    refSum(std::size_t r, std::size_t m) const
    {
        std::uint32_t sum = 0;
        const std::uint8_t *code =
            codes.data() + r * simd::adc4CodeBytes(m);
        for (std::size_t s = 0; s < m; ++s) {
            const std::uint8_t j = s % 2 == 0 ? code[s / 2] & 0x0F
                                              : code[s / 2] >> 4;
            sum += lut[s * simd::kAdc4LutStride + j];
        }
        return sum;
    }
};

} // namespace

/**
 * The 4-bit shuffle kernel against a from-scratch reference: exact
 * integer sums finished by one fused multiply-add, for every
 * odd/even subspace count and every block-tail shape.
 */
TEST_P(SimdBackend, AdcBatch4MatchesIntegerReference)
{
    const std::size_t kSubspaces[] = {0, 1, 2, 3, 5, 8, 32, 96};
    const std::size_t kCounts[] = {0, 1, 7, 31, 32, 33, 64, 100};
    const float scale = 0.03125f, bias = 1.75f;
    for (std::size_t m : kSubspaces) {
        for (std::size_t n : kCounts) {
            Adc4Fixture fx(n, m, 1000 + 17 * m + n);
            std::vector<float> out(std::max<std::size_t>(n, 1),
                                   -1.0f);
            k().adcBatch4(fx.lut.data(), fx.blocks.data(), n, m,
                          scale, bias, out.data());
            for (std::size_t r = 0; r < n; ++r) {
                const float want = std::fma(
                    scale, static_cast<float>(fx.refSum(r, m)), bias);
                EXPECT_EQ(out[r], want)
                    << "row " << r << " m=" << m << " n=" << n;
            }
            if (n == 0)
                EXPECT_EQ(out[0], -1.0f) << "zero rows wrote output";
        }
    }
}

/** Saturating sums: 256 subspaces of 255 stay exact in u16 lanes. */
TEST_P(SimdBackend, AdcBatch4SurvivesWorstCaseSums)
{
    const std::size_t m = 256, n = 33;
    Adc4Fixture fx(n, m, 4242);
    std::fill(fx.lut.begin(), fx.lut.end(), std::uint8_t{255});
    std::vector<float> out(n);
    k().adcBatch4(fx.lut.data(), fx.blocks.data(), n, m, 1.0f, 0.0f,
                  out.data());
    for (std::size_t r = 0; r < n; ++r)
        EXPECT_EQ(out[r], 65280.0f) << "row " << r;
}

/** 4-bit shuffle ADC: scalar and avx2 agree bitwise (simd.hh). */
TEST(SimdAdc, Batch4BackendsAgreeBitwise)
{
    if (!simd::supported(simd::Backend::avx2))
        GTEST_SKIP() << "no avx2 on this host";
    const auto &sc = simd::kernels(simd::Backend::scalar);
    const auto &av = simd::kernels(simd::Backend::avx2);
    const std::size_t kSubspaces[] = {1, 2, 3, 8, 31, 32, 96};
    const std::size_t kCounts[] = {1, 13, 32, 77, 128};
    for (std::size_t m : kSubspaces) {
        for (std::size_t n : kCounts) {
            Adc4Fixture fx(n, m, 5000 + 13 * m + n);
            const float scale = 0.017f, bias = -2.5f;
            std::vector<float> a(n), b(n);
            sc.adcBatch4(fx.lut.data(), fx.blocks.data(), n, m, scale,
                         bias, a.data());
            av.adcBatch4(fx.lut.data(), fx.blocks.data(), n, m, scale,
                         bias, b.data());
            for (std::size_t r = 0; r < n; ++r)
                EXPECT_EQ(a[r], b[r])
                    << "row " << r << " m=" << m << " n=" << n;
        }
    }
}

/**
 * Multi-query 8-bit ADC: each query's prefix of one shared code
 * stream is bitwise identical to a single-query adcBatch call
 * (simd.hh), for prefix lengths straddling the kAdcMultiChunk
 * boundary and for dead (ns = 0) queries, whose outputs — and every
 * slot past a live query's ns — must stay untouched.
 */
TEST_P(SimdBackend, AdcBatchMultiMatchesSingleQueryBitwise)
{
    const std::size_t kSubspaces[] = {1, 8, 33};
    const std::size_t n = simd::kAdcMultiChunk * 2 + 77;
    const std::size_t kNs[] = {0,
                               1,
                               simd::kAdcMultiChunk - 1,
                               simd::kAdcMultiChunk,
                               simd::kAdcMultiChunk + 1,
                               n};
    constexpr std::size_t nq = std::size(kNs);
    for (std::size_t m : kSubspaces) {
        sim::Rng rng(7000 + m);
        std::vector<std::uint8_t> codes(n * m);
        for (auto &c : codes)
            c = static_cast<std::uint8_t>(rng.nextUInt(256));
        std::vector<std::vector<float>> luts, outs;
        std::vector<const float *> lut_ptrs;
        std::vector<float *> out_ptrs;
        for (std::size_t g = 0; g < nq; ++g) {
            luts.push_back(
                randomVec(m * simd::kAdcLutStride, 7100 + 31 * m + g));
            outs.emplace_back(n, -1.0f);
            lut_ptrs.push_back(luts.back().data());
            out_ptrs.push_back(outs.back().data());
        }
        k().adcBatchMulti(lut_ptrs.data(), simd::kAdcLutStride, kNs,
                          nq, codes.data(), m, out_ptrs.data());
        std::vector<float> want(n);
        for (std::size_t g = 0; g < nq; ++g) {
            k().adcBatch(lut_ptrs[g], simd::kAdcLutStride,
                         codes.data(), kNs[g], m, want.data());
            for (std::size_t r = 0; r < kNs[g]; ++r) {
                EXPECT_EQ(outs[g][r], want[r])
                    << "query " << g << " row " << r << " m=" << m;
            }
            for (std::size_t r = kNs[g]; r < n; ++r) {
                ASSERT_EQ(outs[g][r], -1.0f)
                    << "query " << g << " wrote past ns at " << r;
            }
        }
        // nq = 0 is a no-op.
        std::fill(outs[0].begin(), outs[0].end(), -1.0f);
        k().adcBatchMulti(lut_ptrs.data(), simd::kAdcLutStride, kNs,
                          0, codes.data(), m, out_ptrs.data());
        EXPECT_EQ(outs[0][0], -1.0f);
    }
}

/**
 * Multi-query 4-bit FastScan: bitwise against per-query adcBatch4 at
 * every ns shape (dead queries, partial first block, block-boundary
 * and chunk-boundary prefixes, full stream). m = 33 exercises the
 * odd-pair tail of the fused sweep; m = 257 (129 packed rows, sums
 * still exact at 257 * 255 = 65535) forces the per-query fallback
 * the avx2 backend keeps for tables past its nibble arena.
 */
TEST_P(SimdBackend, AdcBatch4MultiMatchesSingleQueryBitwise)
{
    const std::size_t kSubspaces[] = {2, 33, 96, 257};
    const std::size_t n = simd::kAdcMultiChunk + 77;
    const std::size_t kNs[] = {0,    1,
                               31,   32,
                               33,   simd::kAdcMultiChunk,
                               n};
    constexpr std::size_t nq = std::size(kNs);
    for (std::size_t m : kSubspaces) {
        Adc4Fixture fx(n, m, 7500 + m);
        std::vector<std::vector<std::uint8_t>> luts;
        std::vector<const std::uint8_t *> lut_ptrs;
        std::vector<std::vector<float>> outs;
        std::vector<float *> out_ptrs;
        std::vector<float> scales, biases;
        sim::Rng rng(7600 + m);
        for (std::size_t g = 0; g < nq; ++g) {
            std::vector<std::uint8_t> lut(m * simd::kAdc4LutStride);
            for (auto &x : lut)
                x = static_cast<std::uint8_t>(rng.nextUInt(256));
            luts.push_back(std::move(lut));
            lut_ptrs.push_back(luts.back().data());
            outs.emplace_back(n, -1.0f);
            out_ptrs.push_back(outs.back().data());
            scales.push_back(0.015625f * static_cast<float>(g + 1));
            biases.push_back(0.75f * static_cast<float>(g) - 1.0f);
        }
        k().adcBatch4Multi(lut_ptrs.data(), kNs, nq, fx.blocks.data(),
                           m, scales.data(), biases.data(),
                           out_ptrs.data());
        std::vector<float> want(n);
        for (std::size_t g = 0; g < nq; ++g) {
            k().adcBatch4(lut_ptrs[g], fx.blocks.data(), kNs[g], m,
                          scales[g], biases[g], want.data());
            for (std::size_t r = 0; r < kNs[g]; ++r) {
                EXPECT_EQ(outs[g][r], want[r])
                    << "query " << g << " row " << r << " m=" << m;
            }
            for (std::size_t r = kNs[g]; r < n; ++r) {
                ASSERT_EQ(outs[g][r], -1.0f)
                    << "query " << g << " wrote past ns at " << r;
            }
        }
    }
}

TEST_P(SimdBackend, GemmNtMatchesDotReference)
{
    // Odd shapes exercise the 2x4 block and both remainders.
    const std::size_t n = 5, m = 7;
    for (std::size_t d : kLengths) {
        auto a = randomVec(n * d, 300 + d);
        auto b = randomVec(m * d, 400 + d);
        std::vector<float> c(n * m, -1.0f);
        k().gemmNt(a.data(), n, b.data(), m, d, c.data(), m);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < m; ++j) {
                float ref =
                    k().dot(a.data() + i * d, b.data() + j * d, d);
                EXPECT_NEAR(c[i * m + j], ref, relTol(ref))
                    << "(" << i << "," << j << ") d=" << d;
            }
        }
    }
}

TEST_P(SimdBackend, GemmNtRespectsOutputStride)
{
    const std::size_t n = 3, m = 5, d = 17, ldc = 9;
    auto a = randomVec(n * d, 1);
    auto b = randomVec(m * d, 2);
    std::vector<float> c(n * ldc, 7.0f);
    k().gemmNt(a.data(), n, b.data(), m, d, c.data(), ldc);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = m; j < ldc; ++j)
            EXPECT_EQ(c[i * ldc + j], 7.0f) << "stride gap clobbered";
    }
}

namespace
{

/** Random half vectors plus their exactly-decoded float image. */
struct F16Fixture
{
    std::vector<std::uint16_t> h;
    std::vector<float> decoded;

    F16Fixture(std::size_t count, std::uint64_t seed)
        : h(count), decoded(count)
    {
        sim::Rng rng(seed);
        for (std::size_t i = 0; i < count; ++i) {
            h[i] = simd::floatToHalfRne(
                static_cast<float>(rng.nextGaussian()));
            decoded[i] = simd::halfToFloat(h[i]);
        }
    }
};

} // namespace

TEST_P(SimdBackend, GemmNtF16MatchesFp32OnDecodedValues)
{
    // The fp16 GEMM decodes to fp32 and accumulates in fp32, so on
    // the decoded image of the half matrix it must agree with the
    // fp32 GEMM to rounding tolerance at every tail length.
    const std::size_t n = 5, m = 7;
    for (std::size_t d : kLengths) {
        auto a = randomVec(n * d, 1300 + d);
        F16Fixture bf(m * d, 1400 + d);
        std::vector<float> c16(n * m, -1.0f), c32(n * m, -2.0f);
        k().gemmNtF16(a.data(), n, bf.h.data(), m, d, c16.data(), m);
        k().gemmNt(a.data(), n, bf.decoded.data(), m, d, c32.data(),
                   m);
        for (std::size_t i = 0; i < n * m; ++i)
            EXPECT_NEAR(c16[i], c32[i], relTol(c32[i]))
                << "element " << i << " d=" << d;
    }
}

TEST_P(SimdBackend, GemmNtF16RespectsOutputStride)
{
    const std::size_t n = 3, m = 5, d = 17, ldc = 9;
    auto a = randomVec(n * d, 3);
    F16Fixture bf(m * d, 4);
    std::vector<float> c(n * ldc, 7.0f);
    k().gemmNtF16(a.data(), n, bf.h.data(), m, d, c.data(), ldc);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = m; j < ldc; ++j)
            EXPECT_EQ(c[i * ldc + j], 7.0f) << "stride gap clobbered";
    }
}

/**
 * The fused scoring kernels against their own components, bitwise:
 * shortlistScore must produce exactly gemmNt's dots pushed through
 * the documented epilogue `qn + cnorm - 2 * dot` (this TU compiles
 * without -ffast-math or FMA contraction, so the float expression
 * below is the literal contract). Same for the fp16 pair. Odd n/m/d
 * exercise every tile remainder.
 */
TEST_P(SimdBackend, ShortlistScoreIsGemmNtPlusEpilogueBitwise)
{
    const std::size_t n = 5, m = 13, ldo = m + 3;
    for (std::size_t d : kLengths) {
        auto a = randomVec(n * d, 2100 + d);
        auto b = randomVec(m * d, 2200 + d);
        auto qn = randomVec(n, 2300 + d);
        auto cnorm = randomVec(m, 2400 + d);
        std::vector<float> prod(n * m, 0.0f);
        std::vector<float> fused(n * ldo, -1.0f);
        k().gemmNt(a.data(), n, b.data(), m, d, prod.data(), m);
        k().shortlistScore(a.data(), qn.data(), n, b.data(),
                           cnorm.data(), m, d, fused.data(), ldo);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < m; ++j) {
                const float want =
                    qn[i] + cnorm[j] - 2.0f * prod[i * m + j];
                EXPECT_EQ(fused[i * ldo + j], want)
                    << "(" << i << "," << j << ") d=" << d;
            }
            for (std::size_t j = m; j < ldo; ++j)
                EXPECT_EQ(fused[i * ldo + j], -1.0f)
                    << "stride gap clobbered, d=" << d;
        }
    }
}

TEST_P(SimdBackend, ShortlistScoreF16IsGemmNtF16PlusEpilogueBitwise)
{
    const std::size_t n = 5, m = 13, ldo = m + 3;
    for (std::size_t d : kLengths) {
        auto a = randomVec(n * d, 2500 + d);
        F16Fixture bf(m * d, 2600 + d);
        auto qn = randomVec(n, 2700 + d);
        auto cnorm = randomVec(m, 2800 + d);
        std::vector<float> prod(n * m, 0.0f);
        std::vector<float> fused(n * ldo, -1.0f);
        k().gemmNtF16(a.data(), n, bf.h.data(), m, d, prod.data(), m);
        k().shortlistScoreF16(a.data(), qn.data(), n, bf.h.data(),
                              cnorm.data(), m, d, fused.data(), ldo);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < m; ++j) {
                const float want =
                    qn[i] + cnorm[j] - 2.0f * prod[i * m + j];
                EXPECT_EQ(fused[i * ldo + j], want)
                    << "(" << i << "," << j << ") d=" << d;
            }
        }
    }
}

/**
 * The fp16 kernels are held to the ADC-style strict contract: the
 * fixed lane/fold/tail order makes scalar and avx2 agree BITWISE
 * (simd.hh), which is what allows the fp16 shortlist distances to be
 * backend-independent.
 */
TEST(SimdF16, BackendsAgreeBitwise)
{
    if (!simd::supported(simd::Backend::avx2))
        GTEST_SKIP() << "no avx2 on this host";
    const auto &sc = simd::kernels(simd::Backend::scalar);
    const auto &av = simd::kernels(simd::Backend::avx2);
    const std::size_t n = 5, m = 13;
    for (std::size_t d : kLengths) {
        auto a = randomVec(n * d, 3100 + d);
        F16Fixture bf(m * d, 3200 + d);
        auto qn = randomVec(n, 3300 + d);
        auto cnorm = randomVec(m, 3400 + d);

        std::vector<float> gs(n * m, -1.0f), ga(n * m, -2.0f);
        sc.gemmNtF16(a.data(), n, bf.h.data(), m, d, gs.data(), m);
        av.gemmNtF16(a.data(), n, bf.h.data(), m, d, ga.data(), m);
        for (std::size_t i = 0; i < n * m; ++i)
            EXPECT_EQ(gs[i], ga[i]) << "gemmNtF16 elt " << i
                                    << " d=" << d;

        std::vector<float> ss(n * m, -1.0f), sa(n * m, -2.0f);
        sc.shortlistScoreF16(a.data(), qn.data(), n, bf.h.data(),
                             cnorm.data(), m, d, ss.data(), m);
        av.shortlistScoreF16(a.data(), qn.data(), n, bf.h.data(),
                             cnorm.data(), m, d, sa.data(), m);
        for (std::size_t i = 0; i < n * m; ++i)
            EXPECT_EQ(ss[i], sa[i])
                << "shortlistScoreF16 elt " << i << " d=" << d;
    }
}

/**
 * The no-F16C fallback: with the test override asserting "this CPU
 * has no F16C", the avx2 table must hand out the scalar fp16 kernels
 * while keeping its own fp32 kernels — and revert when the override
 * is lifted. This exercises the exact table dispatch would use on a
 * pre-Ivy-Bridge-class AVX2 machine.
 */
TEST(SimdDispatch, F16cOverrideSwapsOnlyTheF16Kernels)
{
    if (!simd::supported(simd::Backend::avx2))
        GTEST_SKIP() << "no avx2 on this host";
    const auto &sc = simd::kernels(simd::Backend::scalar);
    const auto &full = simd::kernels(simd::Backend::avx2);

    simd::detail::setF16cOverrideForTest(true);
    const auto &patched = simd::kernels(simd::Backend::avx2);
    EXPECT_EQ(patched.gemmNtF16, sc.gemmNtF16);
    EXPECT_EQ(patched.shortlistScoreF16, sc.shortlistScoreF16);
    EXPECT_EQ(patched.gemmNt, full.gemmNt);
    EXPECT_EQ(patched.shortlistScore, full.shortlistScore);
    EXPECT_EQ(patched.dot, full.dot);
    EXPECT_NE(patched.gemmNt, sc.gemmNt);

    // The patched table must still be usable end to end.
    F16Fixture bf(16, 99);
    std::vector<float> a(16, 0.5f);
    float got = -1.0f, want = -2.0f;
    patched.gemmNtF16(a.data(), 1, bf.h.data(), 1, 16, &got, 1);
    sc.gemmNtF16(a.data(), 1, bf.h.data(), 1, 16, &want, 1);
    EXPECT_EQ(got, want);

    simd::detail::setF16cOverrideForTest(false);
    const auto &restored = simd::kernels(simd::Backend::avx2);
    EXPECT_EQ(restored.gemmNtF16, full.gemmNtF16);
    EXPECT_EQ(restored.shortlistScoreF16, full.shortlistScoreF16);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, SimdBackend, ::testing::ValuesIn(availableBackends()),
    [](const auto &info) { return simd::name(info.param); });

/**
 * Property: every supported backend agrees with scalar to rounding
 * tolerance on random vectors across all tail lengths.
 */
class SimdAgreement : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SimdAgreement, AllBackendsMatchScalarWithinTolerance)
{
    const auto &ref = simd::kernels(simd::Backend::scalar);
    for (simd::Backend b : availableBackends()) {
        const auto &k = simd::kernels(b);
        for (std::size_t d : kLengths) {
            auto x = randomVec(d, GetParam() * 31 + d);
            auto y = randomVec(d, GetParam() * 37 + d + 1);

            float rd = ref.dot(x.data(), y.data(), d);
            EXPECT_NEAR(k.dot(x.data(), y.data(), d), rd, relTol(rd));

            float rl = ref.l2sq(x.data(), y.data(), d);
            EXPECT_NEAR(k.l2sq(x.data(), y.data(), d), rl,
                        relTol(rl));

            float rn = ref.normSq(x.data(), d);
            EXPECT_NEAR(k.normSq(x.data(), d), rn, relTol(rn));

            auto ya = y, yb = y;
            ref.axpy(0.75f, x.data(), ya.data(), d);
            k.axpy(0.75f, x.data(), yb.data(), d);
            for (std::size_t t = 0; t < d; ++t)
                EXPECT_NEAR(yb[t], ya[t], relTol(ya[t]));
        }

        // Batched kernels at the paper's D=96 plus a ragged tail.
        for (std::size_t d : {96u, 33u}) {
            const std::size_t n = 13;
            auto q = randomVec(d, GetParam() * 41 + d);
            auto rows = randomVec(n * d, GetParam() * 43 + d);
            std::vector<float> got(n), want(n);
            ref.dotBatch(q.data(), rows.data(), n, d, want.data());
            k.dotBatch(q.data(), rows.data(), n, d, got.data());
            for (std::size_t r = 0; r < n; ++r)
                EXPECT_NEAR(got[r], want[r], relTol(want[r]));
            ref.l2sqBatch(q.data(), rows.data(), n, d, want.data());
            k.l2sqBatch(q.data(), rows.data(), n, d, got.data());
            for (std::size_t r = 0; r < n; ++r)
                EXPECT_NEAR(got[r], want[r], relTol(want[r]));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimdAgreement,
                         ::testing::Values(1, 7, 23, 42, 99));

TEST(AlignedAllocator, VectorStorageIs64ByteAligned)
{
    std::vector<float, simd::AlignedAllocator<float, 64>> v(33);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % 64, 0u);
    v.resize(1027);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % 64, 0u);
}
