/** @file Unit tests for kernel profiles (Table III). */

#include <gtest/gtest.h>

#include "acc/kernel_profile.hh"
#include "sim/logging.hh"

using namespace reach;
using namespace reach::acc;

TEST(KernelCatalog, HasAllSixTableThreeKernelsPlusCpuBaselines)
{
    const auto &cat = kernelCatalog();
    EXPECT_EQ(cat.size(), 10u); // 6 FPGA (Table III) + 4 software
    for (const char *id :
         {"CNN-VU9P", "GeMM-VU9P", "KNN-VU9P", "CNN-ZCU9", "GeMM-ZCU9",
          "KNN-ZCU9", "CNN-CPU", "GeMM-CPU", "KNN-CPU"}) {
        EXPECT_NO_THROW(findKernel(id)) << id;
    }
}

TEST(KernelCatalog, SoftwareKernelsAreMuchSlowerThanFpga)
{
    EXPECT_GT(findKernel("CNN-VU9P").throughputOpsPerSec(),
              50 * findKernel("CNN-CPU").throughputOpsPerSec());
}

TEST(KernelCatalog, UnknownKernelIsFatal)
{
    EXPECT_THROW(findKernel("FFT-VU9P"), sim::SimFatal);
}

TEST(KernelCatalog, TableThreeFrequencies)
{
    EXPECT_DOUBLE_EQ(findKernel("CNN-VU9P").freqMHz, 273.0);
    EXPECT_DOUBLE_EQ(findKernel("GeMM-VU9P").freqMHz, 273.0);
    EXPECT_DOUBLE_EQ(findKernel("KNN-VU9P").freqMHz, 200.0);
    EXPECT_DOUBLE_EQ(findKernel("CNN-ZCU9").freqMHz, 200.0);
    EXPECT_DOUBLE_EQ(findKernel("GeMM-ZCU9").freqMHz, 150.0);
    EXPECT_DOUBLE_EQ(findKernel("KNN-ZCU9").freqMHz, 150.0);
}

TEST(KernelCatalog, TableThreePowers)
{
    EXPECT_DOUBLE_EQ(findKernel("CNN-VU9P").powerW, 25.0);
    EXPECT_DOUBLE_EQ(findKernel("GeMM-VU9P").powerW, 22.13);
    EXPECT_DOUBLE_EQ(findKernel("KNN-VU9P").powerW, 11.14);
    EXPECT_DOUBLE_EQ(findKernel("CNN-ZCU9").powerW, 5.19);
    EXPECT_DOUBLE_EQ(findKernel("GeMM-ZCU9").powerW, 5.30);
    EXPECT_DOUBLE_EQ(findKernel("KNN-ZCU9").powerW, 1.80);
}

TEST(KernelCatalog, NearStoragePowersAreHigher)
{
    // Table III's dual ZCU9 power column: NS includes the DRAM
    // buffer.
    for (const char *id : {"CNN-ZCU9", "GeMM-ZCU9", "KNN-ZCU9"}) {
        const auto &k = findKernel(id);
        EXPECT_GT(powerFor(k, true), powerFor(k, false)) << id;
    }
    EXPECT_DOUBLE_EQ(powerFor(findKernel("CNN-ZCU9"), true), 6.13);
    EXPECT_DOUBLE_EQ(powerFor(findKernel("GeMM-ZCU9"), true), 8.0);
    EXPECT_DOUBLE_EQ(powerFor(findKernel("KNN-ZCU9"), true), 2.4);
}

TEST(KernelCatalog, Vu9pPowerUnaffectedByDeployment)
{
    const auto &k = findKernel("CNN-VU9P");
    EXPECT_DOUBLE_EQ(powerFor(k, true), powerFor(k, false));
}

TEST(KernelCatalog, UtilizationFractionsValid)
{
    for (const auto &k : kernelCatalog()) {
        if (k.device == "XeonCore")
            continue; // software target: no fabric utilization
        for (double u : {k.util.ff, k.util.lut, k.util.dsp,
                         k.util.bram}) {
            EXPECT_GT(u, 0.0) << k.id;
            EXPECT_LE(u, 1.0) << k.id;
        }
    }
}

TEST(KernelProfileTiming, ZeroOpsIsFree)
{
    EXPECT_EQ(findKernel("CNN-VU9P").computeTicks(0), 0u);
}

TEST(KernelProfileTiming, SingleIterationPaysPipelineDepth)
{
    const auto &k = findKernel("GeMM-VU9P");
    sim::Tick one = k.computeTicks(1);
    EXPECT_EQ(one, static_cast<sim::Tick>(
                       k.pipelineDepth *
                       sim::periodFromMHz(k.freqMHz)));
}

TEST(KernelProfileTiming, HlsPipelineFormula)
{
    const auto &k = findKernel("KNN-ZCU9");
    double ops = k.opsPerIteration * 100; // exactly 100 iterations
    std::uint64_t cycles =
        k.pipelineDepth + k.initiationInterval * 99;
    EXPECT_EQ(k.computeTicks(ops),
              cycles * sim::periodFromMHz(k.freqMHz));
}

TEST(KernelProfileTiming, ThroughputMatchesOpsRate)
{
    const auto &k = findKernel("CNN-VU9P");
    EXPECT_NEAR(k.throughputOpsPerSec(),
                k.opsPerIteration * k.freqMHz * 1e6, 1.0);
}

TEST(KernelProfileTiming, OnChipToNearDataCnnRatioInPaperBand)
{
    // Section VI-B: single near-data CNN instance is 7-10x slower.
    double onchip = findKernel("CNN-VU9P").throughputOpsPerSec();
    double neard = findKernel("CNN-ZCU9").throughputOpsPerSec();
    double ratio = onchip / neard;
    EXPECT_GE(ratio, 7.0);
    EXPECT_LE(ratio, 10.0);
}

TEST(KernelProfileTiming, ComputeMonotonicInOps)
{
    const auto &k = findKernel("GeMM-ZCU9");
    sim::Tick prev = 0;
    for (double ops : {1.0, 100.0, 1e4, 1e6, 1e8}) {
        sim::Tick t = k.computeTicks(ops);
        EXPECT_GE(t, prev);
        prev = t;
    }
}

TEST(Devices, InventoriesDiffer)
{
    EXPECT_GT(virtexVu9p().dsps, zynqZcu9().dsps);
    EXPECT_GT(virtexVu9p().staticPowerW, zynqZcu9().staticPowerW);
}
