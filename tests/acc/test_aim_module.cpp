/**
 * @file
 * Unit tests for the AIM near-memory module: DIMM ownership
 * handover, closed-row handback invariant, and command filtering.
 */

#include <gtest/gtest.h>

#include <memory>

#include "acc/aim_module.hh"
#include "sim/simulator.hh"

using namespace reach;
using namespace reach::acc;

namespace
{

struct AimFixture : ::testing::Test
{
    void
    SetUp() override
    {
        mem::DramTimings t;
        t.tREFI = 1'000'000'000;
        dimm = std::make_unique<mem::Dimm>(sim, "dimm", t);

        noc::LinkConfig bc;
        bc.bandwidth = 12.8e9;
        bus = std::make_unique<noc::Link>(sim, "aimbus", bc);

        noc::LinkConfig lc;
        lc.bandwidth = 18e9;
        local = std::make_unique<noc::Link>(sim, "local", lc);

        aim = std::make_unique<AimModule>(sim, "aim", *dimm,
                                          bus.get());
        aim->setInputPath(Path{}.via(*local));
        aim->setOutputPath(Path{}.via(*local));
        aim->configure(findKernel("GeMM-ZCU9"));
    }

    sim::Simulator sim;
    std::unique_ptr<mem::Dimm> dimm;
    std::unique_ptr<noc::Link> bus, local;
    std::unique_ptr<AimModule> aim;
};

} // namespace

TEST_F(AimFixture, LevelIsNearMem)
{
    EXPECT_EQ(aim->level(), Level::NearMem);
}

TEST_F(AimFixture, OwnsDimmWhileExecuting)
{
    WorkUnit w;
    w.ops = 1e8;
    w.bytesIn = 16 << 20;

    bool checked = false;
    aim->execute(w);
    // Midway through execution, the DIMM must be acc-owned.
    sim.events().schedule(aim->freeAt() / 2, [&] {
        EXPECT_TRUE(dimm->isAccOwned());
        checked = true;
    });
    sim.run();
    EXPECT_TRUE(checked);
    EXPECT_FALSE(dimm->isAccOwned());
}

TEST_F(AimFixture, HandsBackWithAllRowsClosed)
{
    // Dirty the DIMM's banks first (host-side open rows).
    dimm->serviceBurst(0, false, 0, mem::RowPolicy::Open);
    EXPECT_FALSE(dimm->allRowsClosed());

    WorkUnit w;
    w.ops = 1e6;
    w.bytesIn = 1 << 20;
    aim->execute(w);
    sim.run();
    // Paper §II-B: all rows precharged at handback.
    EXPECT_TRUE(dimm->allRowsClosed());
    EXPECT_FALSE(dimm->isAccOwned());
}

TEST_F(AimFixture, HandoverCountTracksTasks)
{
    WorkUnit w;
    w.ops = 1e6;
    aim->execute(w);
    aim->execute(w);
    sim.run();
    auto *handovers = sim.stats().find("aim.handovers");
    ASSERT_NE(handovers, nullptr);
    EXPECT_DOUBLE_EQ(handovers->value(), 2.0);
}

TEST_F(AimFixture, CommandFilterAddsLatency)
{
    sim::Tick t = aim->deliverCommand(1000);
    EXPECT_GT(t, 1000u);
}

TEST_F(AimFixture, AccessFilterCounters)
{
    aim->noteLocalForward();
    aim->noteLocalForward();
    aim->noteRemoteForward();
    EXPECT_EQ(aim->forwardsLocal(), 2u);
    EXPECT_EQ(aim->forwardsRemote(), 1u);
}

TEST_F(AimFixture, NearMemPowerColumnUsed)
{
    // AIM modules use the first (near-memory) ZCU9 power figure.
    EXPECT_DOUBLE_EQ(aim->activePowerW(), 5.30);
}
