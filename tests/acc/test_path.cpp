/** @file Unit tests for data-path chains. */

#include <gtest/gtest.h>

#include "acc/path.hh"
#include "sim/simulator.hh"

using namespace reach;
using namespace reach::acc;

namespace
{

noc::LinkConfig
linkCfg(double bw)
{
    noc::LinkConfig c;
    c.bandwidth = bw;
    c.latency = 0;
    return c;
}

} // namespace

TEST(Path, EmptyPathIsInstant)
{
    Path p;
    EXPECT_TRUE(p.empty());
    EXPECT_EQ(p.reserve(12345, 1000), 1000u);
}

TEST(Path, SingleLinkMatchesLinkTiming)
{
    sim::Simulator sim;
    noc::Link l(sim, "l", linkCfg(1e9));
    Path p;
    p.via(l);
    sim::Tick done = p.reserve(1 << 20, 0);
    EXPECT_NEAR(static_cast<double>(done),
                (1 << 20) / 1e9 * 1e12, 1e7);
}

TEST(Path, BottleneckIsSlowestStage)
{
    sim::Simulator sim;
    noc::Link fast(sim, "fast", linkCfg(100e9));
    noc::Link slow(sim, "slow", linkCfg(1e9));
    Path p;
    p.via(fast).via(slow);
    EXPECT_NEAR(p.bottleneckBandwidth(), 1e9, 1.0);

    sim::Tick done = p.reserve(64 << 20, 0);
    double bw = (64 << 20) / sim::secondsFromTicks(done);
    EXPECT_NEAR(bw, 1e9, 0.1e9);
}

TEST(Path, ChunkingPipelinesAcrossStages)
{
    sim::Simulator sim;
    noc::Link a(sim, "a", linkCfg(10e9));
    noc::Link b(sim, "b", linkCfg(10e9));
    Path p;
    p.via(a).via(b);
    std::uint64_t bytes = 64 << 20;
    sim::Tick done = p.reserve(bytes, 0);
    // Pipelined: close to bytes/bw, NOT 2x (store-and-forward).
    double t = sim::secondsFromTicks(done);
    double serial = static_cast<double>(bytes) / 10e9;
    EXPECT_LT(t, 1.2 * serial);
}

TEST(Path, SharedStageSerializesTwoPaths)
{
    sim::Simulator sim;
    noc::Link shared(sim, "s", linkCfg(1e9));
    Path p1, p2;
    p1.via(shared);
    p2.via(shared);
    sim::Tick d1 = p1.reserve(1 << 20, 0);
    sim::Tick d2 = p2.reserve(1 << 20, 0);
    EXPECT_GE(d2, d1 + (d1 / 2)); // second queues behind first
}

TEST(Path, SsdSourceAddsMediaLatency)
{
    sim::Simulator sim;
    storage::Ssd ssd(sim, "ssd");
    noc::Link l(sim, "l", linkCfg(12e9));
    Path p;
    p.fromSsd(ssd).via(l);
    sim::Tick done = p.reserve(4096, 0);
    EXPECT_GT(done, ssd.config().readLatency);
}

TEST(Path, MultiSourceAggregatesBandwidth)
{
    sim::Simulator sim;
    storage::Ssd s0(sim, "s0"), s1(sim, "s1"), s2(sim, "s2"),
        s3(sim, "s3");
    noc::Link l0(sim, "l0", linkCfg(3e9));
    noc::Link l1(sim, "l1", linkCfg(3e9));
    noc::Link l2(sim, "l2", linkCfg(3e9));
    noc::Link l3(sim, "l3", linkCfg(3e9));
    noc::Link uplink(sim, "up", linkCfg(100e9)); // not the bottleneck

    Path p;
    p.from(&s0, &l0).from(&s1, &l1).from(&s2, &l2).from(&s3, &l3);
    p.via(uplink);

    std::uint64_t bytes = 256 << 20;
    sim::Tick done = p.reserve(bytes, 0);
    double bw = static_cast<double>(bytes) /
                sim::secondsFromTicks(done);
    // Four 3 GB/s sources aggregate to ~12 GB/s.
    EXPECT_GT(bw, 9e9);
    EXPECT_LE(bw, 12.5e9);
}

TEST(Path, MultiSourceBottleneckedBySharedUplink)
{
    sim::Simulator sim;
    storage::Ssd s0(sim, "s0"), s1(sim, "s1");
    noc::Link l0(sim, "l0", linkCfg(10e9));
    noc::Link l1(sim, "l1", linkCfg(10e9));
    noc::Link uplink(sim, "up", linkCfg(5e9));

    Path p;
    p.from(&s0, &l0).from(&s1, &l1).via(uplink);

    std::uint64_t bytes = 256 << 20;
    sim::Tick done = p.reserve(bytes, 0);
    double bw = static_cast<double>(bytes) /
                sim::secondsFromTicks(done);
    EXPECT_LE(bw, 5.1e9);
    EXPECT_GT(bw, 4.0e9);
}

TEST(Path, SsdWriteSink)
{
    sim::Simulator sim;
    storage::Ssd ssd(sim, "ssd");
    noc::Link l(sim, "l", linkCfg(12e9));
    Path p;
    p.via(l).toSsd(ssd);
    sim::Tick done = p.reserve(1 << 20, 0);
    EXPECT_GT(done, 0u);
    EXPECT_EQ(ssd.bytesWritten(), std::uint64_t(1) << 20);
}

TEST(Path, BottleneckBandwidthAggregatesSources)
{
    sim::Simulator sim;
    storage::Ssd s0(sim, "s0"), s1(sim, "s1");
    noc::Link l0(sim, "l0", linkCfg(3e9));
    noc::Link l1(sim, "l1", linkCfg(3e9));
    Path p;
    p.from(&s0, &l0).from(&s1, &l1);
    EXPECT_NEAR(p.bottleneckBandwidth(), 6e9, 1e6);
}
