/**
 * @file
 * Property tests for shared data paths: bandwidth conservation and
 * non-starvation when many accelerators contend for one stage — the
 * physics behind every contended result in the evaluation.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "acc/accelerator.hh"
#include "sim/simulator.hh"

using namespace reach;
using namespace reach::acc;

namespace
{

noc::LinkConfig
linkCfg(double bw)
{
    noc::LinkConfig c;
    c.bandwidth = bw;
    c.latency = 0;
    return c;
}

} // namespace

class SharedPathProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(SharedPathProperty, SharedLinkBandwidthIsConserved)
{
    int n = GetParam();
    sim::Simulator sim;
    noc::Link shared(sim, "shared", linkCfg(10e9));

    std::vector<std::unique_ptr<Accelerator>> accs;
    const std::uint64_t bytes = 32 << 20;
    sim::Tick last = 0;
    for (int i = 0; i < n; ++i) {
        accs.push_back(std::make_unique<Accelerator>(
            sim, "a" + std::to_string(i), Level::NearMem));
        accs.back()->setInputPath(Path{}.via(shared));
        accs.back()->configure(findKernel("KNN-ZCU9"));
        WorkUnit w;
        w.ops = 1;
        w.bytesIn = bytes;
        accs.back()->execute(w, [&last](sim::Tick t) {
            last = std::max(last, t);
        });
    }
    sim.run();

    // Aggregate throughput equals the link rate (within 10%),
    // regardless of requester count.
    double total = static_cast<double>(bytes) * n;
    double achieved = total / sim::secondsFromTicks(last);
    EXPECT_GT(achieved, 0.9 * 10e9);
    EXPECT_LE(achieved, 10.05e9);
}

TEST_P(SharedPathProperty, PrivateLinksScaleLinearly)
{
    int n = GetParam();
    sim::Simulator sim;

    std::vector<std::unique_ptr<noc::Link>> links;
    std::vector<std::unique_ptr<Accelerator>> accs;
    const std::uint64_t bytes = 32 << 20;
    sim::Tick last = 0;
    for (int i = 0; i < n; ++i) {
        links.push_back(std::make_unique<noc::Link>(
            sim, "l" + std::to_string(i), linkCfg(10e9)));
        accs.push_back(std::make_unique<Accelerator>(
            sim, "a" + std::to_string(i), Level::NearStor));
        accs.back()->setInputPath(Path{}.via(*links.back()));
        accs.back()->configure(findKernel("KNN-ZCU9"));
        WorkUnit w;
        w.ops = 1;
        w.bytesIn = bytes;
        accs.back()->execute(w, [&last](sim::Tick t) {
            last = std::max(last, t);
        });
    }
    sim.run();

    // Private links: makespan is one transfer, independent of n.
    double seconds = sim::secondsFromTicks(last);
    EXPECT_NEAR(seconds, bytes / 10e9, 0.15 * bytes / 10e9);
}

TEST_P(SharedPathProperty, LateArrivalsStillComplete)
{
    int n = GetParam();
    sim::Simulator sim;
    noc::Link shared(sim, "shared", linkCfg(10e9));

    std::vector<std::unique_ptr<Accelerator>> accs;
    int completed = 0;
    for (int i = 0; i < n; ++i) {
        accs.push_back(std::make_unique<Accelerator>(
            sim, "a" + std::to_string(i), Level::NearMem));
        accs.back()->setInputPath(Path{}.via(shared));
        accs.back()->configure(findKernel("KNN-ZCU9"));
    }
    // Stagger the launches in simulated time.
    for (int i = 0; i < n; ++i) {
        Accelerator *dev = accs[static_cast<std::size_t>(i)].get();
        sim.events().schedule(
            static_cast<sim::Tick>(i) * sim::tickPerMs, [&, dev] {
                WorkUnit w;
                w.ops = 1;
                w.bytesIn = 8 << 20;
                dev->execute(w,
                             [&completed](sim::Tick) { ++completed; });
            });
    }
    sim.run();
    EXPECT_EQ(completed, n);
}

INSTANTIATE_TEST_SUITE_P(Requesters, SharedPathProperty,
                         ::testing::Values(1, 2, 4, 8, 16));
