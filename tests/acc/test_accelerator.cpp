/**
 * @file
 * Unit tests for the reconfigurable accelerator engine: compute vs
 * bandwidth bound tasks, parameter buffering, task queueing, TLB
 * integration, throttled gathers and energy.
 */

#include <gtest/gtest.h>

#include <memory>

#include "acc/accelerator.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

using namespace reach;
using namespace reach::acc;

namespace
{

noc::LinkConfig
linkCfg(double bw)
{
    noc::LinkConfig c;
    c.bandwidth = bw;
    c.latency = 0;
    return c;
}

struct AccFixture : ::testing::Test
{
    void
    SetUp() override
    {
        in = std::make_unique<noc::Link>(sim, "in", linkCfg(10e9));
        out = std::make_unique<noc::Link>(sim, "out", linkCfg(10e9));
        param = std::make_unique<noc::Link>(sim, "par", linkCfg(10e9));
        dev = std::make_unique<Accelerator>(sim, "acc",
                                            Level::OnChip);
        dev->setInputPath(Path{}.via(*in));
        dev->setOutputPath(Path{}.via(*out));
        dev->setParamPath(Path{}.via(*param));
        dev->configure(findKernel("GeMM-VU9P"));
    }

    sim::Tick
    runTask(const WorkUnit &w)
    {
        sim::Tick done = 0;
        dev->execute(w, [&](sim::Tick t) { done = t; });
        sim.run();
        return done;
    }

    sim::Simulator sim;
    std::unique_ptr<noc::Link> in, out, param;
    std::unique_ptr<Accelerator> dev;
};

} // namespace

TEST_F(AccFixture, ExecuteBeforeConfigurePanics)
{
    Accelerator raw(sim, "raw", Level::NearMem);
    WorkUnit w;
    w.ops = 10;
    EXPECT_THROW(raw.execute(w), sim::SimPanic);
}

TEST_F(AccFixture, ComputeBoundTaskMatchesKernelFormula)
{
    WorkUnit w;
    w.ops = 1e9; // no input: pure compute
    sim::Tick done = runTask(w);
    EXPECT_EQ(done, dev->kernel()->computeTicks(1e9));
}

TEST_F(AccFixture, BandwidthBoundTaskMatchesLinkRate)
{
    WorkUnit w;
    w.ops = 1;               // trivial compute
    w.bytesIn = 256 << 20;   // 256 MB over 10 GB/s
    sim::Tick done = runTask(w);
    double t = sim::secondsFromTicks(done);
    EXPECT_NEAR(t, (256 << 20) / 10e9, 0.1 * (256 << 20) / 10e9);
}

TEST_F(AccFixture, ComputeAndStreamingOverlap)
{
    // Matched compute and stream times should NOT add up.
    double stream_s = (64 << 20) / 10e9;
    double ops = dev->kernel()->throughputOpsPerSec() * stream_s;
    WorkUnit w;
    w.ops = ops;
    w.bytesIn = 64 << 20;
    sim::Tick done = runTask(w);
    double t = sim::secondsFromTicks(done);
    EXPECT_LT(t, 1.35 * stream_s);
}

TEST_F(AccFixture, OutputStreamAddsDrainTime)
{
    WorkUnit w;
    w.ops = 1;
    w.bytesIn = 1 << 20;
    sim::Tick no_out = runTask(w);
    w.bytesOut = 64 << 20;
    sim::Tick with_out = runTask(w);
    EXPECT_GT(with_out - no_out, no_out);
}

TEST_F(AccFixture, TasksQueueOnBusyDevice)
{
    WorkUnit w;
    w.ops = 1e9;
    sim::Tick first = 0, second = 0;
    dev->execute(w, [&](sim::Tick t) { first = t; });
    dev->execute(w, [&](sim::Tick t) { second = t; });
    EXPECT_TRUE(dev->busy());
    sim.run();
    EXPECT_NEAR(static_cast<double>(second),
                2.0 * static_cast<double>(first),
                static_cast<double>(first) * 0.01);
    EXPECT_EQ(dev->tasksCompleted(), 2u);
}

TEST_F(AccFixture, ParamFetchDelaysStart)
{
    WorkUnit w;
    w.ops = 1;
    sim::Tick plain = runTask(w);
    WorkUnit wp;
    wp.ops = 1;
    wp.paramBytes = 100 << 20; // 10 ms over 10 GB/s
    sim::Tick with_params = runTask(wp) - plain;
    EXPECT_GT(with_params, sim::ticksFromSeconds(0.009));
}

TEST_F(AccFixture, ParamBufferHitsSkipRefetch)
{
    dev->enableParamBuffer(1 << 30, 100e9);
    WorkUnit w;
    w.ops = 1;
    w.paramBytes = 100 << 20;
    w.paramKey = "model";
    sim::Tick t0 = sim.now();
    runTask(w);
    sim::Tick cold = sim.now() - t0;
    t0 = sim.now();
    runTask(w);
    sim::Tick warm = sim.now() - t0;
    EXPECT_LT(warm, cold / 5);
    EXPECT_EQ(dev->paramBufferHits(), 1u);
}

TEST_F(AccFixture, ParamBufferEvictsByCapacity)
{
    dev->enableParamBuffer(150 << 20, 100e9);
    WorkUnit a, b;
    a.ops = b.ops = 1;
    a.paramBytes = b.paramBytes = 100 << 20;
    a.paramKey = "a";
    b.paramKey = "b";
    runTask(a); // miss, cached
    runTask(b); // miss, evicts a
    runTask(a); // miss again
    EXPECT_EQ(dev->paramBufferHits(), 0u);
}

TEST_F(AccFixture, InputOverridePathUsed)
{
    noc::Link slow(sim, "slow", linkCfg(1e9));
    WorkUnit w;
    w.ops = 1;
    w.bytesIn = 32 << 20;
    sim::Tick fast_path = runTask(w);

    WorkUnit w2 = w;
    w2.inputOverride = Path{}.via(slow);
    sim::Tick t0 = sim.now();
    dev->execute(w2, [](sim::Tick) {});
    sim.run();
    sim::Tick slow_path = sim.now() - t0;
    EXPECT_GT(slow_path, 5 * fast_path);
}

TEST_F(AccFixture, InputThrottleCapsGatherRate)
{
    WorkUnit w;
    w.ops = 1;
    w.bytesIn = 64 << 20;
    sim::Tick unthrottled = runTask(w);

    WorkUnit w2 = w;
    w2.inputThrottleBw = 1e9;
    sim::Tick t0 = sim.now();
    dev->execute(w2, [](sim::Tick) {});
    sim.run();
    sim::Tick throttled = sim.now() - t0;
    EXPECT_GT(throttled, 8 * unthrottled);
    double bw = (64 << 20) / sim::secondsFromTicks(throttled);
    EXPECT_LE(bw, 1.05e9);
}

TEST_F(AccFixture, ResidentPathUsedWhenFlagged)
{
    noc::Link fast(sim, "sram", linkCfg(100e9));
    dev->setResidentPath(Path{}.via(fast));
    WorkUnit w;
    w.ops = 1;
    w.bytesIn = 64 << 20;
    sim::Tick streamed = runTask(w);

    w.inputResident = true;
    sim::Tick t0 = sim.now();
    dev->execute(w, [](sim::Tick) {});
    sim.run();
    sim::Tick resident = sim.now() - t0;
    EXPECT_LT(resident, streamed / 5);
}

TEST_F(AccFixture, TlbMissesSlowStreaming)
{
    mem::TlbConfig tcfg;
    tcfg.entries = 8;
    tcfg.walkLatency = 400'000;
    mem::Tlb tlb(sim, "tlb", tcfg);

    WorkUnit w;
    w.ops = 1;
    w.bytesIn = 16 << 20;
    sim::Tick without = runTask(w);

    dev->attachTlb(tlb);
    sim::Tick t0 = sim.now();
    dev->execute(w, [](sim::Tick) {});
    sim.run();
    sim::Tick with_tlb = sim.now() - t0;
    EXPECT_GT(with_tlb, without);
    EXPECT_GT(tlb.missCount(), 0u);
}

TEST_F(AccFixture, ReconfigurationDelayApplied)
{
    Accelerator d2(sim, "d2", Level::OnChip);
    d2.configure(findKernel("CNN-VU9P"), sim::tickPerMs);
    WorkUnit w;
    w.ops = 1;
    sim::Tick done = 0;
    d2.execute(w, [&](sim::Tick t) { done = t; });
    sim.run();
    EXPECT_GE(done, sim::tickPerMs);
}

TEST_F(AccFixture, ReconfigureToSameKernelIsFree)
{
    dev->configure(findKernel("GeMM-VU9P"), sim::tickPerMs);
    EXPECT_EQ(dev->freeAt(), 0u); // no-op: already loaded
}

TEST_F(AccFixture, EstimateTracksActualForSoloTask)
{
    WorkUnit w;
    w.ops = 1e8;
    w.bytesIn = 32 << 20;
    sim::Tick est = dev->estimateTicks(w);
    sim::Tick act = runTask(w);
    EXPECT_NEAR(static_cast<double>(est), static_cast<double>(act),
                0.25 * static_cast<double>(act));
}

TEST_F(AccFixture, EnergyIncludesActiveAndStatic)
{
    WorkUnit w;
    w.ops = 1e9;
    runTask(w);
    double horizon_s = sim::secondsFromTicks(sim.now());
    double active_s = sim::secondsFromTicks(dev->computeTicksBusy());
    double expect = active_s * dev->activePowerW() +
                    horizon_s * virtexVu9p().staticPowerW;
    EXPECT_NEAR(dev->energyJoules(sim.now()), expect, expect * 0.01);
}

TEST_F(AccFixture, StatsCountWork)
{
    WorkUnit w;
    w.ops = 1000;
    w.bytesIn = 4096;
    w.bytesOut = 64;
    runTask(w);
    auto *ops = sim.stats().find("acc.ops");
    ASSERT_NE(ops, nullptr);
    EXPECT_DOUBLE_EQ(ops->value(), 1000.0);
}
