/**
 * @file
 * Unit tests for the near-storage module: parameter DRAM buffer
 * reuse, pass-through, and the NS power column.
 */

#include <gtest/gtest.h>

#include <memory>

#include "acc/ns_module.hh"
#include "sim/simulator.hh"

using namespace reach;
using namespace reach::acc;

namespace
{

struct NsFixture : ::testing::Test
{
    void
    SetUp() override
    {
        ssd = std::make_unique<storage::Ssd>(sim, "ssd");

        noc::LinkConfig lc;
        lc.bandwidth = 12e9;
        local = std::make_unique<noc::Link>(sim, "local", lc);
        host = std::make_unique<noc::Link>(sim, "host", lc);

        ns = std::make_unique<NsModule>(sim, "ns", *ssd);
        ns->setInputPath(Path{}.fromSsd(*ssd).via(*local));
        ns->setOutputPath(Path{}.via(*host));
        ns->setParamPath(Path{}.via(*host));
        ns->configure(findKernel("CNN-ZCU9"));
    }

    sim::Simulator sim;
    std::unique_ptr<storage::Ssd> ssd;
    std::unique_ptr<noc::Link> local, host;
    std::unique_ptr<NsModule> ns;
};

} // namespace

TEST_F(NsFixture, LevelIsNearStor)
{
    EXPECT_EQ(ns->level(), Level::NearStor);
}

TEST_F(NsFixture, ParamBufferEnabledByDefault)
{
    // First execute fetches params over the host path; the second
    // hits the private DRAM buffer (paper §II-C reuse).
    WorkUnit w;
    w.ops = 1e6;
    w.paramBytes = 11'300'000;
    w.paramKey = "vgg16";

    sim::Tick t0 = sim.now();
    ns->execute(w);
    sim.run();
    sim::Tick cold = sim.now() - t0;

    t0 = sim.now();
    ns->execute(w);
    sim.run();
    sim::Tick warm = sim.now() - t0;

    EXPECT_LT(warm, cold);
    EXPECT_EQ(ns->paramBufferHits(), 1u);
}

TEST_F(NsFixture, InputStreamsFromSsd)
{
    WorkUnit w;
    w.ops = 1e6;
    w.bytesIn = 8 << 20;
    ns->execute(w);
    sim.run();
    EXPECT_EQ(ssd->bytesRead(), std::uint64_t(8) << 20);
}

TEST_F(NsFixture, PassThroughCountsAndDelays)
{
    sim::Tick t = ns->passThrough(5000);
    EXPECT_GT(t, 5000u);
    EXPECT_EQ(ns->passThroughCount(), 1u);
}

TEST_F(NsFixture, NearStoragePowerColumnUsed)
{
    // NS deployment uses the second ZCU9 power number (Table III):
    // CNN 6.13 W instead of 5.19 W.
    EXPECT_DOUBLE_EQ(ns->activePowerW(), 6.13);
}

TEST_F(NsFixture, StreamingBoundByLocalLink)
{
    WorkUnit w;
    w.ops = 1;
    w.bytesIn = 128 << 20;
    sim::Tick done = 0;
    ns->execute(w, [&](sim::Tick t) { done = t; });
    sim.run();
    double bw = (128 << 20) / sim::secondsFromTicks(done);
    EXPECT_LE(bw, 12.1e9);
    EXPECT_GT(bw, 8e9);
}
