/**
 * @file
 * Tests of the AIM detailed local port: streaming correctness and
 * the Table-II bandwidth validation (open-row-during-kernel sustains
 * ~18 GB/s; per-burst closed-row cannot).
 */

#include <gtest/gtest.h>

#include "acc/aim_local_port.hh"
#include "sim/logging.hh"

using namespace reach;
using namespace reach::acc;

namespace
{

mem::DramTimings
timings()
{
    return mem::DramTimings{}; // DDR4-2400 defaults
}

} // namespace

TEST(AimLocalPort, StreamsAllBursts)
{
    sim::Simulator sim;
    mem::Dimm dimm(sim, "d", timings());
    AimLocalPort port(sim, "p", dimm);

    sim::Tick done = 0;
    port.streamRead(0, 64 * 100, [&](sim::Tick t) { done = t; });
    sim.run();
    EXPECT_GT(done, 0u);
    EXPECT_EQ(port.burstsIssued(), 100u);
}

TEST(AimLocalPort, ZeroByteStreamCompletesImmediately)
{
    sim::Simulator sim;
    mem::Dimm dimm(sim, "d", timings());
    AimLocalPort port(sim, "p", dimm);
    bool called = false;
    port.streamRead(0, 0, [&](sim::Tick) { called = true; });
    EXPECT_TRUE(called);
}

TEST(AimLocalPort, ZeroInflightIsFatal)
{
    sim::Simulator sim;
    mem::Dimm dimm(sim, "d", timings());
    AimPortConfig cfg;
    cfg.maxInflight = 0;
    EXPECT_THROW(AimLocalPort(sim, "p", dimm, cfg), sim::SimFatal);
}

TEST(AimLocalPort, OpenRowSustainsTableTwoBandwidth)
{
    AimPortConfig cfg;
    cfg.maxInflight = 16;
    double bw = measureLocalStreamingBandwidth(timings(), 8 << 20,
                                               cfg);
    // Table II: 18 GB/s from the AIM module to its DDR4 DIMM.
    EXPECT_GT(bw, 16e9);
    EXPECT_LT(bw, 19.3e9); // cannot beat the pin rate
}

TEST(AimLocalPort, PerBurstClosedRowIsFarSlower)
{
    AimPortConfig closed;
    closed.policy = mem::RowPolicy::Closed;
    closed.maxInflight = 16;
    double closed_bw =
        measureLocalStreamingBandwidth(timings(), 2 << 20, closed);

    AimPortConfig open;
    open.maxInflight = 16;
    double open_bw =
        measureLocalStreamingBandwidth(timings(), 2 << 20, open);

    // Activate+precharge per 64B burst costs ~10x.
    EXPECT_GT(open_bw, 8 * closed_bw);
}

TEST(AimLocalPort, BandwidthGrowsWithInflight)
{
    double prev = 0;
    for (std::uint32_t q : {1u, 4u, 16u}) {
        AimPortConfig cfg;
        cfg.maxInflight = q;
        double bw =
            measureLocalStreamingBandwidth(timings(), 4 << 20, cfg);
        EXPECT_GT(bw, prev);
        prev = bw;
    }
}

TEST(AimLocalPort, OverlappingStreamsPanic)
{
    sim::Simulator sim;
    mem::Dimm dimm(sim, "d", timings());
    AimLocalPort port(sim, "p", dimm);
    port.streamRead(0, 1 << 20, nullptr);
    EXPECT_THROW(port.streamRead(0, 64, nullptr), sim::SimPanic);
}
