/**
 * @file
 * Tests of the analytics deployment: job shapes per mapping, and the
 * paper's generality claim — near-data scanning beats shipping the
 * table across the host IO interface.
 */

#include <gtest/gtest.h>

#include "analytics/deployment.hh"
#include "analytics/engine.hh"
#include "sim/logging.hh"

using namespace reach;
using namespace reach::analytics;

namespace
{

AnalyticsScale
smallScale()
{
    AnalyticsScale s;
    s.tableBytes = std::uint64_t(16) << 30;
    return s;
}

QueryRunResult
runMapping(ScanMapping m, std::uint32_t queries)
{
    core::ReachSystem sys{core::SystemConfig{}};
    AnalyticsDeployment dep(sys, smallScale(), m);
    return dep.run(queries);
}

} // namespace

TEST(AnalyticsDeployment, ValidatesScale)
{
    core::ReachSystem sys{core::SystemConfig{}};
    AnalyticsScale bad;
    bad.tableBytes = 0;
    EXPECT_THROW(AnalyticsDeployment(sys, bad, ScanMapping::NearData),
                 sim::SimFatal);
    AnalyticsScale bad2;
    bad2.selectivity = 1.5;
    EXPECT_THROW(
        AnalyticsDeployment(sys, bad2, ScanMapping::NearData),
        sim::SimFatal);
}

TEST(AnalyticsDeployment, JobShapes)
{
    core::ReachSystem sys{core::SystemConfig{}};
    AnalyticsDeployment central(sys, smallScale(),
                                ScanMapping::OnChip);
    EXPECT_EQ(central.makeQueryJob(0, nullptr).tasks.size(), 2u);

    AnalyticsDeployment near(sys, smallScale(),
                             ScanMapping::NearData);
    // 4 scans + 4 aggregates + 1 merge.
    auto job = near.makeQueryJob(0, nullptr);
    EXPECT_EQ(job.tasks.size(), 9u);
    EXPECT_EQ(job.tasks.back().label, "merge");
    EXPECT_EQ(job.tasks.back().deps.size(), 4u);
}

TEST(AnalyticsDeployment, AllMappingsComplete)
{
    for (ScanMapping m : {ScanMapping::HostOnly, ScanMapping::OnChip,
                          ScanMapping::NearData}) {
        QueryRunResult r = runMapping(m, 2);
        EXPECT_EQ(r.queries, 2u) << scanMappingName(m);
        EXPECT_GT(r.makespan, 0u) << scanMappingName(m);
    }
}

TEST(AnalyticsDeployment, NearDataScanBeatsCentralized)
{
    QueryRunResult onchip = runMapping(ScanMapping::OnChip, 2);
    QueryRunResult near = runMapping(ScanMapping::NearData, 2);

    // The centralized scan is capped by the ~12 GB/s host IO
    // interface; near-data scanning runs at the SSDs' aggregate
    // internal bandwidth.
    EXPECT_GT(near.queriesPerSec(), 2.5 * onchip.queriesPerSec());

    double near_bw = near.scanBandwidth(smallScale().tableBytes);
    EXPECT_GT(near_bw, 30e9); // ~4 x 12 GB/s local links
    double central_bw =
        onchip.scanBandwidth(smallScale().tableBytes);
    EXPECT_LT(central_bw, 13e9);
}

TEST(AnalyticsDeployment, OnChipBeatsHostSoftware)
{
    QueryRunResult host = runMapping(ScanMapping::HostOnly, 1);
    QueryRunResult onchip = runMapping(ScanMapping::OnChip, 1);
    EXPECT_GT(onchip.queriesPerSec(), host.queriesPerSec());
}

TEST(AnalyticsDeployment, OnlyFilteredRowsCrossToNearMemory)
{
    core::ReachSystem sys{core::SystemConfig{}};
    AnalyticsDeployment dep(sys, smallScale(), ScanMapping::NearData);
    dep.run(1);
    // GAM DMA moved ~selectivity * table (plus merge crumbs), far
    // less than the table itself.
    std::uint64_t moved = sys.gam().bytesMoved();
    EXPECT_LT(moved, smallScale().tableBytes / 10);
    EXPECT_GT(moved,
              static_cast<std::uint64_t>(smallScale().tableBytes *
                                         smallScale().selectivity) /
                  2);
}

TEST(AnalyticsIntegration, MeasuredSelectivityDrivesTheTimingModel)
{
    // Functional layer: run the real query on the sampled table and
    // measure its selectivity...
    SalesTableConfig tcfg;
    tcfg.numRows = 50'000;
    ColumnTable table = makeSalesTable(tcfg);
    std::vector<Predicate> preds{{"amount", CmpOp::Gt, 9000}};
    auto selection = scanFilter(table, preds);
    double selectivity = static_cast<double>(selection.size()) /
                         static_cast<double>(table.numRows());
    EXPECT_NEAR(selectivity, 0.10, 0.02); // amounts uniform in [1,1e4]

    // ...then deploy the same query at scale with that selectivity.
    AnalyticsScale scale;
    scale.tableBytes = std::uint64_t(8) << 30;
    scale.selectivity = selectivity;

    core::ReachSystem sys{core::SystemConfig{}};
    AnalyticsDeployment dep(sys, scale, ScanMapping::NearData);
    QueryRunResult r = dep.run(1);
    EXPECT_GT(r.makespan, 0u);

    // GAM DMA carries roughly the filtered bytes.
    double expected = static_cast<double>(scale.tableBytes) *
                      selectivity;
    double moved = static_cast<double>(sys.gam().bytesMoved());
    EXPECT_GT(moved, 0.8 * expected);
    EXPECT_LT(moved, 1.5 * expected);

    // And the functional aggregate itself is correct.
    auto agg = aggregate(table, selection,
                         {"region", "amount", AggFn::Sum});
    std::int64_t total = 0;
    for (const auto &[k, v] : agg)
        total += v;
    std::int64_t direct = 0;
    const auto &amount = table.column("amount").values;
    for (std::uint32_t row : selection)
        direct += amount[row];
    EXPECT_EQ(total, direct);
}
