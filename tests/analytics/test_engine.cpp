/** @file Unit + property tests for the columnar analytics engine. */

#include <gtest/gtest.h>

#include "analytics/engine.hh"
#include "sim/logging.hh"

using namespace reach;
using namespace reach::analytics;

namespace
{

ColumnTable
tinyTable()
{
    ColumnTable t;
    t.addColumn({"region", {0, 1, 0, 1, 2}});
    t.addColumn({"amount", {10, 20, 30, 40, 50}});
    return t;
}

} // namespace

TEST(ColumnTableTest, ShapeAndLookup)
{
    ColumnTable t = tinyTable();
    EXPECT_EQ(t.numRows(), 5u);
    EXPECT_EQ(t.numColumns(), 2u);
    EXPECT_EQ(t.columnIndex("amount"), 1u);
    EXPECT_THROW(t.columnIndex("nope"), sim::SimFatal);
    EXPECT_EQ(t.rowBytes(), 16u);
    EXPECT_EQ(t.totalBytes(), 80u);
}

TEST(ColumnTableTest, MismatchedColumnLengthIsFatal)
{
    ColumnTable t = tinyTable();
    EXPECT_THROW(t.addColumn({"bad", {1, 2}}), sim::SimFatal);
    EXPECT_THROW(t.addColumn({"region", {1, 2, 3, 4, 5}}),
                 sim::SimFatal);
}

TEST(PredicateTest, AllOperators)
{
    Predicate p{"x", CmpOp::Lt, 5};
    EXPECT_TRUE(p.matches(4));
    EXPECT_FALSE(p.matches(5));
    p.op = CmpOp::Le;
    EXPECT_TRUE(p.matches(5));
    p.op = CmpOp::Eq;
    EXPECT_TRUE(p.matches(5));
    EXPECT_FALSE(p.matches(6));
    p.op = CmpOp::Ge;
    EXPECT_TRUE(p.matches(5));
    EXPECT_FALSE(p.matches(4));
    p.op = CmpOp::Gt;
    EXPECT_TRUE(p.matches(6));
    p.op = CmpOp::Ne;
    EXPECT_TRUE(p.matches(6));
    EXPECT_FALSE(p.matches(5));
}

TEST(ScanFilter, ConjunctionSelectsMatchingRows)
{
    ColumnTable t = tinyTable();
    auto sel = scanFilter(
        t, {{"region", CmpOp::Eq, 0}, {"amount", CmpOp::Gt, 15}});
    ASSERT_EQ(sel.size(), 1u);
    EXPECT_EQ(sel[0], 2u);
}

TEST(ScanFilter, EmptyPredicateSelectsAll)
{
    ColumnTable t = tinyTable();
    EXPECT_EQ(scanFilter(t, {}).size(), 5u);
}

TEST(Aggregate, SumByGroup)
{
    ColumnTable t = tinyTable();
    auto sel = scanFilter(t, {});
    auto res = aggregate(t, sel, {"region", "amount", AggFn::Sum});
    EXPECT_EQ(res[0], 40);
    EXPECT_EQ(res[1], 60);
    EXPECT_EQ(res[2], 50);
}

TEST(Aggregate, MinMaxCount)
{
    ColumnTable t = tinyTable();
    auto sel = scanFilter(t, {});
    auto mn = aggregate(t, sel, {"region", "amount", AggFn::Min});
    EXPECT_EQ(mn[0], 10);
    EXPECT_EQ(mn[1], 20);
    auto mx = aggregate(t, sel, {"region", "amount", AggFn::Max});
    EXPECT_EQ(mx[0], 30);
    EXPECT_EQ(mx[1], 40);
    auto cnt = aggregate(t, sel, {"region", "", AggFn::Count});
    EXPECT_EQ(cnt[0], 2);
    EXPECT_EQ(cnt[1], 2);
    EXPECT_EQ(cnt[2], 1);
}

TEST(SalesTable, GeneratorShapeAndDeterminism)
{
    SalesTableConfig cfg;
    cfg.numRows = 1000;
    ColumnTable a = makeSalesTable(cfg);
    ColumnTable b = makeSalesTable(cfg);
    EXPECT_EQ(a.numRows(), 1000u);
    EXPECT_EQ(a.numColumns(), 4u);
    EXPECT_EQ(a.column("region").values, b.column("region").values);

    for (std::int64_t r : a.column("region").values) {
        EXPECT_GE(r, 0);
        EXPECT_LT(r, cfg.numRegions);
    }
    for (std::int64_t v : a.column("amount").values) {
        EXPECT_GE(v, 1);
        EXPECT_LE(v, cfg.maxAmount);
    }
}

/** Property: sharded execution + merge == unsharded query. */
class ShardedQuery : public ::testing::TestWithParam<int>
{
};

TEST_P(ShardedQuery, MergeEqualsWholeTableQuery)
{
    SalesTableConfig cfg;
    cfg.numRows = 4000;
    cfg.seed = static_cast<std::uint64_t>(GetParam());
    ColumnTable whole = makeSalesTable(cfg);

    std::vector<Predicate> preds{{"amount", CmpOp::Gt, 5000}};
    AggregateSpec spec{"region", "amount", AggFn::Sum};
    auto reference = runQuery(whole, preds, spec);

    // Shard by row ranges into 4 tables.
    std::vector<AggregateResult> partials;
    const int shards = 4;
    for (int s = 0; s < shards; ++s) {
        ColumnTable shard;
        for (std::size_t c = 0; c < whole.numColumns(); ++c) {
            const Column &src = whole.column(c);
            Column col{src.name, {}};
            std::size_t per = whole.numRows() / shards;
            col.values.assign(
                src.values.begin() +
                    static_cast<std::ptrdiff_t>(s * per),
                src.values.begin() +
                    static_cast<std::ptrdiff_t>((s + 1) * per));
            shard.addColumn(std::move(col));
        }
        partials.push_back(runQuery(shard, preds, spec));
    }

    EXPECT_EQ(mergePartials(partials, AggFn::Sum), reference);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedQuery, ::testing::Range(1, 5));
