/** @file Unit + property tests for the NVMe SSD model. */

#include <gtest/gtest.h>

#include "storage/ssd.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

using namespace reach;
using namespace reach::storage;

namespace
{

SsdConfig
cfg()
{
    SsdConfig c;
    c.flashChannels = 8;
    c.channelBandwidth = 1.75e9;
    return c;
}

} // namespace

TEST(Ssd, NeedsAtLeastOneChannel)
{
    sim::Simulator sim;
    SsdConfig bad = cfg();
    bad.flashChannels = 0;
    EXPECT_THROW(Ssd(sim, "s", bad), sim::SimFatal);
}

TEST(Ssd, ReadIncludesCommandAndMediaLatency)
{
    sim::Simulator sim;
    Ssd s(sim, "s", cfg());
    sim::Tick done = s.reserve(4096, false, 0);
    EXPECT_GT(done, cfg().commandOverhead + cfg().readLatency);
}

TEST(Ssd, WritesUseWriteLatency)
{
    sim::Simulator sim;
    Ssd s(sim, "s", cfg());
    sim::Tick r = s.reserve(4096, false, 0);
    sim::Simulator sim2;
    Ssd s2(sim2, "s2", cfg());
    sim::Tick w = s2.reserve(4096, true, 0);
    // Read media latency (70us) dominates write (30us).
    EXPECT_GT(r, w);
}

TEST(Ssd, ZeroByteCommandOnlyPaysOverhead)
{
    sim::Simulator sim;
    Ssd s(sim, "s", cfg());
    EXPECT_EQ(s.reserve(0, false, 1000), 1000u + cfg().commandOverhead);
}

TEST(Ssd, LargeStreamApproachesInternalBandwidth)
{
    sim::Simulator sim;
    Ssd s(sim, "s", cfg());
    const std::uint64_t bytes = 256 << 20;
    sim::Tick done = s.reserve(bytes, false, 0);
    double bw = static_cast<double>(bytes) /
                sim::secondsFromTicks(done);
    EXPECT_GT(bw, 0.85 * cfg().internalBandwidth());
}

TEST(Ssd, SequentialCommandsQueueOnChannels)
{
    sim::Simulator sim;
    Ssd s(sim, "s", cfg());
    sim::Tick a = s.reserve(8 << 20, false, 0);
    sim::Tick b = s.reserve(8 << 20, false, 0);
    EXPECT_GT(b, a);
}

TEST(Ssd, AccessSchedulesCallback)
{
    sim::Simulator sim;
    Ssd s(sim, "s", cfg());
    sim::Tick done = 0;
    s.access(4096, false, [&](sim::Tick t) { done = t; });
    sim.run();
    EXPECT_GT(done, 0u);
}

TEST(Ssd, ByteCountersSplitReadWrite)
{
    sim::Simulator sim;
    Ssd s(sim, "s", cfg());
    s.reserve(1000, false, 0);
    s.reserve(500, true, 0);
    EXPECT_EQ(s.bytesRead(), 1000u);
    EXPECT_EQ(s.bytesWritten(), 500u);
}

TEST(Ssd, EnergyIncludesIdleFloor)
{
    sim::Simulator sim;
    Ssd s(sim, "s", cfg());
    // One simulated second of pure idle.
    double idle = s.energyJoules(sim::tickPerSec);
    EXPECT_NEAR(idle, cfg().idlePowerW, 0.01);

    // Activity adds energy.
    s.reserve(64 << 20, false, 0);
    double active = s.energyJoules(sim::tickPerSec);
    EXPECT_GT(active, idle);
}

TEST(Ssd, InternalBandwidthIsChannelsTimesRate)
{
    EXPECT_NEAR(cfg().internalBandwidth(), 8 * 1.75e9, 1.0);
}

/** Property: throughput never exceeds internal bandwidth. */
class SsdThroughput : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SsdThroughput, BoundedByInternalBandwidth)
{
    sim::Simulator sim;
    Ssd s(sim, "s", cfg());
    std::uint64_t bytes = GetParam();
    sim::Tick done = s.reserve(bytes, false, 0);
    double bw =
        static_cast<double>(bytes) / sim::secondsFromTicks(done);
    EXPECT_LE(bw, cfg().internalBandwidth() * 1.001);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SsdThroughput,
                         ::testing::Values(4096, 1 << 20, 16 << 20,
                                           256 << 20));
