/** @file Unit + property tests for the link model. */

#include <gtest/gtest.h>

#include "noc/link.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

using namespace reach;
using namespace reach::noc;

namespace
{

LinkConfig
cfg(double bw, sim::Tick lat = 0, sim::Tick overhead = 0)
{
    LinkConfig c;
    c.bandwidth = bw;
    c.latency = lat;
    c.perTransferOverhead = overhead;
    return c;
}

} // namespace

TEST(Link, SerializationMatchesBandwidth)
{
    sim::Simulator sim;
    Link l(sim, "l", cfg(1e9)); // 1 GB/s = 1 B/ns
    sim::Tick done = l.reserve(1000, 0);
    EXPECT_EQ(done, 1000u * 1000u); // 1000 B = 1000 ns = 1e6 ticks
}

TEST(Link, LatencyAddsAfterSerialization)
{
    sim::Simulator sim;
    Link l(sim, "l", cfg(1e9, 500));
    EXPECT_EQ(l.reserve(1000, 0), 1'000'000u + 500u);
}

TEST(Link, OverheadChargedPerTransfer)
{
    sim::Simulator sim;
    Link l(sim, "l", cfg(1e9, 0, 100));
    sim::Tick one = l.reserve(1000, 0);
    EXPECT_EQ(one, 100u + 1'000'000u);
}

TEST(Link, BackToBackTransfersQueue)
{
    sim::Simulator sim;
    Link l(sim, "l", cfg(1e9));
    sim::Tick first = l.reserve(1000, 0);
    sim::Tick second = l.reserve(1000, 0);
    EXPECT_EQ(second, first + 1'000'000u);
}

TEST(Link, IdleGapNotCharged)
{
    sim::Simulator sim;
    Link l(sim, "l", cfg(1e9));
    l.reserve(1000, 0);
    // A transfer requested long after the link went idle starts then.
    sim::Tick done = l.reserve(1000, 50'000'000);
    EXPECT_EQ(done, 50'000'000u + 1'000'000u);
}

TEST(Link, TransferSchedulesCallback)
{
    sim::Simulator sim;
    Link l(sim, "l", cfg(1e9, 250));
    sim::Tick done = 0;
    l.transfer(500, [&](sim::Tick t) { done = t; });
    sim.run();
    EXPECT_EQ(done, 500'000u + 250u);
}

TEST(Link, ZeroBandwidthIsFatal)
{
    sim::Simulator sim;
    EXPECT_THROW(Link(sim, "l", cfg(0)), sim::SimFatal);
}

TEST(Link, StatsAccumulate)
{
    sim::Simulator sim;
    Link l(sim, "l", cfg(1e9));
    l.reserve(100, 0);
    l.reserve(200, 0);
    EXPECT_EQ(l.bytesMoved(), 300u);
    EXPECT_GT(l.busyTicks(), 0u);
}

TEST(Link, EnergyPerBit)
{
    sim::Simulator sim;
    LinkConfig c = cfg(1e9);
    c.energyPerBitPj = 2.0;
    Link l(sim, "l", c);
    l.reserve(1000, 0);
    EXPECT_DOUBLE_EQ(l.dynamicEnergyPj(), 1000.0 * 8 * 2.0);
}

TEST(PcieLinkTest, EffectiveBandwidthDerated)
{
    sim::Simulator sim;
    PcieLink l(sim, "pcie");
    // 16 GB/s theoretical at 75% efficiency = 12 GB/s effective.
    EXPECT_NEAR(l.bandwidth(), 12e9, 1e6);
}

/** Property: N transfers through a link take N*T regardless of
 *  arrival pattern that keeps the link busy. */
class LinkConservation : public ::testing::TestWithParam<int>
{
};

TEST_P(LinkConservation, BandwidthConserved)
{
    sim::Simulator sim;
    Link l(sim, "l", cfg(10e9));
    int n = GetParam();
    sim::Tick done = 0;
    for (int i = 0; i < n; ++i)
        done = l.reserve(1 << 20, 0);
    double seconds = sim::secondsFromTicks(done);
    double bytes = static_cast<double>(n) * (1 << 20);
    EXPECT_NEAR(bytes / seconds, 10e9, 10e9 * 0.01);
}

INSTANTIATE_TEST_SUITE_P(Counts, LinkConservation,
                         ::testing::Values(1, 3, 10, 64));
