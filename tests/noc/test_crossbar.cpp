/** @file Unit tests for the crossbar switch. */

#include <gtest/gtest.h>

#include "noc/crossbar.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

using namespace reach;
using namespace reach::noc;

namespace
{

CrossbarConfig
cfg()
{
    CrossbarConfig c;
    c.portBandwidth = 1e9;
    c.hopLatency = 100;
    return c;
}

} // namespace

TEST(Crossbar, NeedsTwoPorts)
{
    sim::Simulator sim;
    EXPECT_THROW(Crossbar(sim, "x", 1, cfg()), sim::SimFatal);
    EXPECT_NO_THROW(Crossbar(sim, "x", 2, cfg()));
}

TEST(Crossbar, TransferTraversesBothPortsPlusHop)
{
    sim::Simulator sim;
    Crossbar x(sim, "x", 4, cfg());
    // 1000 B at 1 GB/s: 1 us egress + hop + 1 us ingress.
    sim::Tick done = x.transfer(0, 1, 1000);
    EXPECT_EQ(done, 1'000'000u + 100u + 1'000'000u);
}

TEST(Crossbar, SamePortPanics)
{
    sim::Simulator sim;
    Crossbar x(sim, "x", 2, cfg());
    EXPECT_THROW(x.transfer(1, 1, 10), sim::SimPanic);
}

TEST(Crossbar, PortOutOfRangePanics)
{
    sim::Simulator sim;
    Crossbar x(sim, "x", 2, cfg());
    EXPECT_THROW(x.transfer(0, 5, 10), sim::SimPanic);
}

TEST(Crossbar, DisjointPairsDoNotContend)
{
    sim::Simulator sim;
    Crossbar x(sim, "x", 4, cfg());
    sim::Tick a = x.transfer(0, 1, 1000);
    sim::Tick b = x.transfer(2, 3, 1000);
    EXPECT_EQ(a, b); // fully parallel
}

TEST(Crossbar, SharedDestinationSerializesIngress)
{
    sim::Simulator sim;
    Crossbar x(sim, "x", 4, cfg());
    sim::Tick a = x.transfer(0, 2, 1000);
    sim::Tick b = x.transfer(1, 2, 1000);
    EXPECT_GT(b, a);
}

TEST(Crossbar, CallbackDelivered)
{
    sim::Simulator sim;
    Crossbar x(sim, "x", 2, cfg());
    sim::Tick done = 0;
    x.transfer(0, 1, 64, [&](sim::Tick t) { done = t; });
    sim.run();
    EXPECT_GT(done, 0u);
}

TEST(Crossbar, BytesAndEnergyAccounted)
{
    sim::Simulator sim;
    Crossbar x(sim, "x", 2, cfg());
    x.transfer(0, 1, 512);
    EXPECT_EQ(x.bytesMoved(), 512u);
    EXPECT_GT(x.dynamicEnergyPj(), 0.0);
}
