/**
 * @file
 * Unit tests for the memory complex: region carving, interleaving
 * semantics, range transfers with backpressure, and capacity checks.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "mem/memory_system.hh"
#include "sim/simulator.hh"

using namespace reach;
using namespace reach::mem;

namespace
{

MemorySystemConfig
smallConfig()
{
    MemorySystemConfig cfg;
    cfg.numChannels = 2;
    cfg.dimmsPerChannel = 2;
    cfg.dimmTimings.tREFI = 1'000'000'000;
    return cfg;
}

} // namespace

TEST(MemorySystem, RegionsGetDisjointBases)
{
    sim::Simulator sim;
    MemorySystem mem(sim, "mem", smallConfig());
    Addr a = mem.addRegion("a", 1 << 20, {{0, 0}, {1, 0}}, 64);
    Addr b = mem.addRegion("b", 1 << 20, {{0, 1}, {1, 1}}, 1 << 20);
    EXPECT_NE(a, b);
    EXPECT_GE(b, a + (1 << 20));
}

TEST(MemorySystem, EmptyRegionRejected)
{
    sim::Simulator sim;
    MemorySystem mem(sim, "mem", smallConfig());
    EXPECT_THROW(mem.addRegion("x", 0, {{0, 0}}, 64), sim::SimFatal);
    EXPECT_THROW(mem.addRegion("x", 64, {}, 64), sim::SimFatal);
}

TEST(MemorySystem, OutOfRangeUnitRejected)
{
    sim::Simulator sim;
    MemorySystem mem(sim, "mem", smallConfig());
    EXPECT_THROW(mem.addRegion("x", 64, {{5, 0}}, 64), sim::SimFatal);
    EXPECT_THROW(mem.addRegion("x", 64, {{0, 9}}, 64), sim::SimFatal);
}

TEST(MemorySystem, CapacityOverflowRejected)
{
    sim::Simulator sim;
    auto cfg = smallConfig();
    cfg.dimmTimings.capacityBytes = 1 << 20; // 1 MiB DIMMs
    MemorySystem mem(sim, "mem", cfg);
    EXPECT_THROW(
        mem.addRegion("big", std::uint64_t(16) << 20, {{0, 0}}, 64),
        sim::SimFatal);
}

TEST(MemorySystem, AccessOutsideAnyRegionPanics)
{
    sim::Simulator sim;
    MemorySystem mem(sim, "mem", smallConfig());
    mem.addRegion("a", 1 << 20, {{0, 0}}, 64);
    MemRequest r;
    r.addr = std::uint64_t(10) << 20;
    EXPECT_THROW(mem.access(r), sim::SimPanic);
}

TEST(MemorySystem, LineInterleaveAlternatesChannels)
{
    sim::Simulator sim;
    MemorySystem mem(sim, "mem", smallConfig());
    Addr base = mem.addRegion("a", 1 << 20, {{0, 0}, {1, 0}}, 64);
    EXPECT_EQ(mem.locate(base).channel, 0u);
    EXPECT_EQ(mem.locate(base + 64).channel, 1u);
    EXPECT_EQ(mem.locate(base + 128).channel, 0u);
}

TEST(MemorySystem, TileInterleaveKeepsTileOnOneDimm)
{
    sim::Simulator sim;
    MemorySystem mem(sim, "mem", smallConfig());
    const std::uint64_t tile = 1 << 20;
    Addr base = mem.addRegion("t", 8 * tile,
                              {{0, 0}, {0, 1}, {1, 0}, {1, 1}}, tile);
    DimmRef first = mem.locate(base);
    DimmRef last = mem.locate(base + tile - 64);
    EXPECT_EQ(first.channel, last.channel);
    EXPECT_EQ(first.dimm, last.dimm);
}

TEST(MemorySystem, SingleAccessCompletes)
{
    sim::Simulator sim;
    MemorySystem mem(sim, "mem", smallConfig());
    Addr base = mem.addRegion("a", 1 << 20, {{0, 0}, {1, 0}}, 64);

    sim::Tick done = 0;
    MemRequest r;
    r.addr = base + 64;
    r.onComplete = [&](sim::Tick t) { done = t; };
    ASSERT_TRUE(mem.access(r));
    sim.run();
    EXPECT_GT(done, 0u);
}

TEST(MemorySystem, AccessRangeCompletesOnceForAllLines)
{
    sim::Simulator sim;
    MemorySystem mem(sim, "mem", smallConfig());
    Addr base =
        mem.addRegion("a", 4 << 20, {{0, 0}, {0, 1}, {1, 0}, {1, 1}},
                      64);

    int calls = 0;
    sim::Tick done = 0;
    mem.accessRange(base, 1 << 20, false, Requester::Dma,
                    [&](sim::Tick t) {
                        ++calls;
                        done = t;
                    });
    sim.run();
    EXPECT_EQ(calls, 1);
    EXPECT_GT(done, 0u);

    // All four DIMMs participated.
    for (std::uint32_t c = 0; c < 2; ++c)
        for (std::uint32_t d = 0; d < 2; ++d)
            EXPECT_GT(mem.dimmAt({c, d}).dynamicEnergyPj(), 0.0);
}

TEST(MemorySystem, AccessRangeZeroBytesCompletesImmediately)
{
    sim::Simulator sim;
    MemorySystem mem(sim, "mem", smallConfig());
    mem.addRegion("a", 1 << 20, {{0, 0}}, 64);
    bool called = false;
    mem.accessRange(0, 0, false, Requester::Dma,
                    [&](sim::Tick) { called = true; });
    EXPECT_TRUE(called);
}

TEST(MemorySystem, LargerRangeTakesLonger)
{
    sim::Simulator sim;
    MemorySystem mem(sim, "mem", smallConfig());
    Addr base =
        mem.addRegion("a", 8 << 20, {{0, 0}, {0, 1}, {1, 0}, {1, 1}},
                      64);

    sim::Tick small_done = 0, big_done = 0;
    mem.accessRange(base, 64 << 10, false, Requester::Dma,
                    [&](sim::Tick t) { small_done = t; });
    sim.run();
    sim::Tick mid = sim.now();
    mem.accessRange(base, 2 << 20, false, Requester::Dma,
                    [&](sim::Tick t) { big_done = t; });
    sim.run();
    EXPECT_GT(big_done - mid, small_done);
}

TEST(MemorySystem, DramEnergyAggregatesAcrossDimms)
{
    sim::Simulator sim;
    MemorySystem mem(sim, "mem", smallConfig());
    Addr base = mem.addRegion("a", 1 << 20, {{0, 0}, {1, 0}}, 64);
    EXPECT_DOUBLE_EQ(mem.dramDynamicEnergyPj(), 0.0);
    mem.accessRange(base, 16 << 10, true, Requester::Dma, nullptr);
    sim.run();
    EXPECT_GT(mem.dramDynamicEnergyPj(), 0.0);
}
