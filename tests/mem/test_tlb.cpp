/** @file Unit tests for the accelerator TLB model. */

#include <gtest/gtest.h>

#include "mem/tlb.hh"
#include "sim/simulator.hh"

using namespace reach;
using namespace reach::mem;

namespace
{

TlbConfig
smallTlb()
{
    TlbConfig cfg;
    cfg.entries = 4;
    cfg.pageBytes = 4096;
    cfg.walkLatency = 100'000;
    return cfg;
}

} // namespace

TEST(Tlb, FirstTouchMissesThenHits)
{
    sim::Simulator sim;
    Tlb tlb(sim, "tlb", smallTlb());
    EXPECT_EQ(tlb.translate(0), 100'000u);
    EXPECT_EQ(tlb.translate(0), 0u);
    EXPECT_EQ(tlb.translate(4095), 0u); // same page
    EXPECT_EQ(tlb.missCount(), 1u);
    EXPECT_EQ(tlb.hitCount(), 2u);
}

TEST(Tlb, DistinctPagesMissSeparately)
{
    sim::Simulator sim;
    Tlb tlb(sim, "tlb", smallTlb());
    tlb.translate(0);
    EXPECT_EQ(tlb.translate(4096), 100'000u);
    EXPECT_EQ(tlb.missCount(), 2u);
}

TEST(Tlb, LruEvictionAtCapacity)
{
    sim::Simulator sim;
    Tlb tlb(sim, "tlb", smallTlb());
    for (Addr p = 0; p < 5; ++p)
        tlb.translate(p * 4096); // fills 4 entries, evicts page 0
    EXPECT_EQ(tlb.translate(0), 100'000u); // page 0 gone
    EXPECT_EQ(tlb.translate(4 * 4096), 0u); // page 4 resident
}

TEST(Tlb, TouchRefreshesLru)
{
    sim::Simulator sim;
    Tlb tlb(sim, "tlb", smallTlb());
    for (Addr p = 0; p < 4; ++p)
        tlb.translate(p * 4096);
    tlb.translate(0);        // page 0 now MRU
    tlb.translate(4 * 4096); // evicts page 1
    EXPECT_EQ(tlb.translate(0), 0u);
    EXPECT_EQ(tlb.translate(1 * 4096), 100'000u);
}

TEST(Tlb, FlushDropsEverything)
{
    sim::Simulator sim;
    Tlb tlb(sim, "tlb", smallTlb());
    tlb.translate(0);
    tlb.flush();
    EXPECT_EQ(tlb.translate(0), 100'000u);
}

TEST(Tlb, StreamingIsAllMisses)
{
    sim::Simulator sim;
    Tlb tlb(sim, "tlb", smallTlb());
    for (Addr p = 0; p < 100; ++p)
        tlb.translate(p * 4096);
    EXPECT_EQ(tlb.missCount(), 100u);
    EXPECT_EQ(tlb.hitCount(), 0u);
}
