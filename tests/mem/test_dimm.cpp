/**
 * @file
 * Unit + property tests for the DDR4 DIMM timing model: row hits vs
 * conflicts, closed-row policy, handover invariants, refresh,
 * activate windows and energy accounting.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "mem/dimm.hh"
#include "sim/simulator.hh"

using namespace reach;
using namespace reach::mem;

namespace
{

DramTimings
fastTimings()
{
    DramTimings t;
    // Keep refresh far away unless a test wants it.
    t.tREFI = 1'000'000'000;
    return t;
}

} // namespace

class DimmTest : public ::testing::Test
{
  protected:
    sim::Simulator sim;
    DramTimings spec = fastTimings();
};

TEST_F(DimmTest, FirstAccessActivates)
{
    Dimm d(sim, "d", spec);
    BurstResult r = d.serviceBurst(0, false, 0, RowPolicy::Open);
    EXPECT_FALSE(r.rowHit);
    EXPECT_TRUE(r.activated);
    // ACT->RCD->CAS->BL.
    EXPECT_EQ(r.complete, spec.tRCD + spec.tCL + spec.tBL);
}

TEST_F(DimmTest, SecondAccessSameRowHits)
{
    Dimm d(sim, "d", spec);
    d.serviceBurst(0, false, 0, RowPolicy::Open);
    BurstResult r = d.serviceBurst(64, false, 0, RowPolicy::Open);
    EXPECT_TRUE(r.rowHit);
    EXPECT_FALSE(r.activated);
}

TEST_F(DimmTest, RowHitIsFasterThanRowMiss)
{
    Dimm d(sim, "d", spec);
    BurstResult miss = d.serviceBurst(0, false, 0, RowPolicy::Open);
    BurstResult hit = d.serviceBurst(64, false, miss.complete,
                                     RowPolicy::Open);
    EXPECT_LT(hit.complete - miss.complete,
              miss.complete); // hit latency < miss latency from t=0
}

TEST_F(DimmTest, RowConflictPaysPrecharge)
{
    Dimm d(sim, "d", spec);
    // Two rows in the same bank: same bank index, different row.
    Addr row0 = 0;
    Addr conflict =
        spec.rowBytes * d.timings().banksPerRank; // same bank, row+1
    ASSERT_EQ(d.bankIndex(row0), d.bankIndex(conflict));
    ASSERT_NE(d.rowIndex(row0), d.rowIndex(conflict));

    BurstResult first = d.serviceBurst(row0, false, 0, RowPolicy::Open);
    BurstResult second =
        d.serviceBurst(conflict, false, first.complete, RowPolicy::Open);
    EXPECT_FALSE(second.rowHit);
    // Must include tRP + tRCD beyond the issue point.
    EXPECT_GE(second.complete - first.complete,
              spec.tRP + spec.tRCD + spec.tCL + spec.tBL);
}

TEST_F(DimmTest, ClosedPolicyLeavesAllRowsClosed)
{
    Dimm d(sim, "d", spec);
    for (int i = 0; i < 8; ++i) {
        d.serviceBurst(static_cast<Addr>(i) * spec.rowBytes, false,
                       0, RowPolicy::Closed);
    }
    EXPECT_TRUE(d.allRowsClosed());
}

TEST_F(DimmTest, OpenPolicyLeavesRowsOpen)
{
    Dimm d(sim, "d", spec);
    d.serviceBurst(0, false, 0, RowPolicy::Open);
    EXPECT_FALSE(d.allRowsClosed());
}

TEST_F(DimmTest, ClosedPolicyNextAccessSameRowIsNotHit)
{
    Dimm d(sim, "d", spec);
    BurstResult a = d.serviceBurst(0, false, 0, RowPolicy::Closed);
    BurstResult b = d.serviceBurst(64, false, a.complete,
                                   RowPolicy::Closed);
    EXPECT_FALSE(b.rowHit);
    EXPECT_TRUE(b.activated);
}

TEST_F(DimmTest, PrechargeAllClosesEverything)
{
    Dimm d(sim, "d", spec);
    for (int i = 0; i < 4; ++i) {
        d.serviceBurst(static_cast<Addr>(i) * spec.rowBytes, false, 0,
                       RowPolicy::Open);
    }
    EXPECT_FALSE(d.allRowsClosed());
    sim::Tick done = d.prechargeAll(1'000'000);
    EXPECT_TRUE(d.allRowsClosed());
    EXPECT_GE(done, 1'000'000u);
}

TEST_F(DimmTest, WouldRowHitPredictsWithoutMutating)
{
    Dimm d(sim, "d", spec);
    EXPECT_FALSE(d.wouldRowHit(0));
    d.serviceBurst(0, false, 0, RowPolicy::Open);
    EXPECT_TRUE(d.wouldRowHit(64));
    EXPECT_TRUE(d.wouldRowHit(64)); // unchanged by the query
}

TEST_F(DimmTest, OutOfCapacityPanics)
{
    Dimm d(sim, "d", spec);
    EXPECT_THROW(d.serviceBurst(spec.capacityBytes, false, 0,
                                RowPolicy::Open),
                 sim::SimPanic);
}

TEST_F(DimmTest, RefreshBlackoutDelaysAccess)
{
    DramTimings t = fastTimings();
    t.tREFI = 1'000'000; // 1 us
    t.tRFC = 100'000;
    Dimm d(sim, "d", t);
    // Request issued inside the blackout window of refresh #2.
    BurstResult r = d.serviceBurst(0, false, 2 * t.tREFI + 10,
                                   RowPolicy::Open);
    EXPECT_GE(r.issue, 2 * t.tREFI + t.tRFC);
}

TEST_F(DimmTest, FawLimitsActivateBursts)
{
    Dimm d(sim, "d", spec);
    // Five activates to distinct banks, requested at the same time:
    // the fifth must wait for the tFAW window.
    sim::Tick last = 0;
    for (int i = 0; i < 5; ++i) {
        BurstResult r = d.serviceBurst(
            static_cast<Addr>(i) * spec.rowBytes, false, 0,
            RowPolicy::Open);
        last = r.issue;
    }
    EXPECT_GE(last, spec.tFAW);
}

TEST_F(DimmTest, EnergyGrowsWithActivity)
{
    Dimm d(sim, "d", spec);
    double e0 = d.dynamicEnergyPj();
    d.serviceBurst(0, false, 0, RowPolicy::Open);
    double e1 = d.dynamicEnergyPj();
    d.serviceBurst(64, true, 0, RowPolicy::Open);
    double e2 = d.dynamicEnergyPj();
    EXPECT_GT(e1, e0);
    EXPECT_GT(e2, e1);
    // A row-hit write adds write-burst energy but no activate energy.
    EXPECT_NEAR(e2 - e1, spec.writeBurstEnergyPj, 1e-9);
}

TEST_F(DimmTest, WritesUseWriteLatency)
{
    Dimm d(sim, "d", spec);
    BurstResult w = d.serviceBurst(0, true, 0, RowPolicy::Open);
    EXPECT_EQ(w.complete, spec.tRCD + spec.tCWL + spec.tBL);
}

/** Property: completion is monotonic in the request time. */
class DimmMonotonic : public ::testing::TestWithParam<int>
{
};

TEST_P(DimmMonotonic, LaterRequestsNeverFinishEarlier)
{
    sim::Simulator sim;
    DramTimings spec = fastTimings();
    Dimm d(sim, "d", spec);

    std::uint64_t s = static_cast<std::uint64_t>(GetParam()) + 1;
    sim::Tick prev_at = 0;
    sim::Tick prev_done = 0;
    for (int i = 0; i < 50; ++i) {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        Addr addr = (s >> 20) % ((std::uint64_t(1) << 26));
        addr &= ~Addr(63);
        sim::Tick at = prev_at + (s >> 50);
        BurstResult r =
            d.serviceBurst(addr, (s & 1) != 0, at, RowPolicy::Open);
        EXPECT_GE(r.complete, prev_done == 0 ? 0 : prev_at);
        EXPECT_GT(r.complete, at);
        prev_at = at;
        prev_done = r.complete;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DimmMonotonic, ::testing::Range(0, 6));
