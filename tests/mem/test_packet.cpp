/** @file Unit tests for address/line helpers. */

#include <gtest/gtest.h>

#include "mem/packet.hh"

using namespace reach::mem;

TEST(Packet, LineAlignMasksLowBits)
{
    EXPECT_EQ(lineAlign(0), 0u);
    EXPECT_EQ(lineAlign(63), 0u);
    EXPECT_EQ(lineAlign(64), 64u);
    EXPECT_EQ(lineAlign(130), 128u);
}

TEST(Packet, LinesCoveringZeroBytes)
{
    EXPECT_EQ(linesCovering(0, 0), 0u);
    EXPECT_EQ(linesCovering(1000, 0), 0u);
}

TEST(Packet, LinesCoveringAligned)
{
    EXPECT_EQ(linesCovering(0, 64), 1u);
    EXPECT_EQ(linesCovering(0, 128), 2u);
    EXPECT_EQ(linesCovering(64, 64), 1u);
}

TEST(Packet, LinesCoveringUnalignedSpansExtraLine)
{
    EXPECT_EQ(linesCovering(63, 2), 2u);
    EXPECT_EQ(linesCovering(1, 64), 2u);
    EXPECT_EQ(linesCovering(60, 4), 1u);
}

/** Property: covering lines always contain the byte range. */
class LinesCoveringProperty
    : public ::testing::TestWithParam<std::pair<Addr, std::uint64_t>>
{
};

TEST_P(LinesCoveringProperty, CoversRange)
{
    auto [addr, bytes] = GetParam();
    std::uint64_t n = linesCovering(addr, bytes);
    Addr first = lineAlign(addr);
    EXPECT_LE(first, addr);
    EXPECT_GE(first + n * cacheLineBytes, addr + bytes);
    // Minimality: one fewer line would not cover.
    if (n > 0) {
        EXPECT_LT(first + (n - 1) * cacheLineBytes, addr + bytes);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, LinesCoveringProperty,
    ::testing::Values(std::pair<Addr, std::uint64_t>{0, 1},
                      std::pair<Addr, std::uint64_t>{63, 1},
                      std::pair<Addr, std::uint64_t>{63, 2},
                      std::pair<Addr, std::uint64_t>{100, 1000},
                      std::pair<Addr, std::uint64_t>{4095, 4097},
                      std::pair<Addr, std::uint64_t>{1, 63}));
