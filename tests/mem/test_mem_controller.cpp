/**
 * @file
 * Unit tests for the FR-FCFS memory controller: queue limits,
 * completion callbacks, bandwidth, ordering policy and AIM handover
 * exclusion.
 */

#include <gtest/gtest.h>

#include <memory>

#include "sim/logging.hh"
#include "mem/mem_controller.hh"
#include "sim/simulator.hh"

using namespace reach;
using namespace reach::mem;

namespace
{

struct CtrlFixture : ::testing::Test
{
    void
    SetUp() override
    {
        spec.tREFI = 1'000'000'000; // keep refresh out of the way
        dimm0 = std::make_unique<Dimm>(sim, "d0", spec);
        dimm1 = std::make_unique<Dimm>(sim, "d1", spec);
        ctrl = std::make_unique<MemController>(
            sim, "mc", std::vector<Dimm *>{dimm0.get(), dimm1.get()},
            cfg);
    }

    MemRequest
    read(Addr a, std::function<void(sim::Tick)> cb = nullptr)
    {
        MemRequest r;
        r.addr = a;
        r.write = false;
        r.onComplete = std::move(cb);
        return r;
    }

    sim::Simulator sim;
    DramTimings spec;
    MemCtrlConfig cfg;
    std::unique_ptr<Dimm> dimm0, dimm1;
    std::unique_ptr<MemController> ctrl;
};

} // namespace

TEST_F(CtrlFixture, CompletesARead)
{
    sim::Tick done = 0;
    ASSERT_TRUE(ctrl->enqueue(0, read(0, [&](sim::Tick t) { done = t; })));
    sim.run();
    EXPECT_GT(done, 0u);
}

TEST_F(CtrlFixture, CompletesAWrite)
{
    sim::Tick done = 0;
    MemRequest w;
    w.addr = 128;
    w.write = true;
    w.onComplete = [&](sim::Tick t) { done = t; };
    ASSERT_TRUE(ctrl->enqueue(0, w));
    sim.run();
    EXPECT_GT(done, 0u);
}

TEST_F(CtrlFixture, ReadQueueFillsAtConfiguredDepth)
{
    for (std::uint32_t i = 0; i < cfg.readQueueEntries; ++i)
        ASSERT_TRUE(ctrl->enqueue(0, read(i * 64)));
    EXPECT_FALSE(ctrl->canAcceptRead());
    EXPECT_FALSE(ctrl->enqueue(0, read(0)));
    // Writes still accepted: separate queue.
    EXPECT_TRUE(ctrl->canAcceptWrite());
}

TEST_F(CtrlFixture, DimmIndexOutOfRangePanics)
{
    EXPECT_THROW(ctrl->enqueue(5, read(0)), sim::SimPanic);
}

TEST_F(CtrlFixture, AccessToAccOwnedDimmPanics)
{
    dimm0->setAccOwned(true);
    EXPECT_THROW(ctrl->enqueue(0, read(0)), sim::SimPanic);
    // Other DIMM unaffected.
    EXPECT_NO_THROW(ctrl->enqueue(1, read(0)));
}

TEST_F(CtrlFixture, AllRequestsEventuallyComplete)
{
    int completed = 0;
    const int n = 200;
    int issued = 0;
    // Feed respecting backpressure.
    std::function<void()> feed = [&] {
        while (issued < n &&
               ctrl->enqueue(issued % 2,
                             read(static_cast<Addr>(issued) * 64,
                                  [&](sim::Tick) { ++completed; }))) {
            ++issued;
        }
        if (issued < n) {
            sim.events().schedule(sim.now() + 10'000, [&] { feed(); });
        }
    };
    feed();
    sim.run();
    EXPECT_EQ(completed, n);
    EXPECT_EQ(ctrl->pending(), 0u);
}

TEST_F(CtrlFixture, StreamingThroughputNearPeak)
{
    // Sequential stream to one DIMM: sustained bandwidth should be
    // at least 70% of the pin rate (row hits dominate).
    const int n = 512;
    int completed = 0;
    sim::Tick last = 0;
    int issued = 0;
    std::function<void()> feed = [&] {
        while (issued < n &&
               ctrl->enqueue(0, read(static_cast<Addr>(issued) * 64,
                                     [&](sim::Tick t) {
                                         ++completed;
                                         last = t;
                                     }))) {
            ++issued;
        }
        if (issued < n)
            sim.events().schedule(sim.now() + 5'000, [&] { feed(); });
    };
    feed();
    sim.run();
    ASSERT_EQ(completed, n);
    double bytes = static_cast<double>(n) * 64;
    double achieved = bytes / sim::secondsFromTicks(last);
    EXPECT_GT(achieved, 0.70 * spec.peakBandwidth());
}

TEST_F(CtrlFixture, ReadLatencyReasonable)
{
    // A solitary read should complete in tens of nanoseconds.
    sim::Tick done = 0;
    ctrl->enqueue(0, read(0, [&](sim::Tick t) { done = t; }));
    sim.run();
    EXPECT_LT(done, 200'000u); // < 200 ns
    EXPECT_GT(done, spec.tRCD + spec.tCL + spec.tBL);
}

TEST_F(CtrlFixture, BusBytesAccounting)
{
    for (int i = 0; i < 10; ++i)
        ctrl->enqueue(0, read(static_cast<Addr>(i) * 64));
    sim.run();
    EXPECT_EQ(ctrl->bytesTransferred(), 10u * 64);
}

TEST_F(CtrlFixture, FrFcfsPrefersRowHits)
{
    // Open a row in bank 0 (addr 0). Then enqueue, in this order, a
    // conflicting-row request and a row-hit request. FR-FCFS should
    // complete the hit first.
    sim::Tick hit_done = 0, conflict_done = 0;
    ctrl->enqueue(0, read(0));
    sim.run();

    Addr conflict =
        spec.rowBytes * spec.banksPerRank; // same bank, next row
    ctrl->enqueue(0, read(conflict,
                          [&](sim::Tick t) { conflict_done = t; }));
    ctrl->enqueue(0, read(64, [&](sim::Tick t) { hit_done = t; }));
    sim.run();
    EXPECT_LT(hit_done, conflict_done);
}
