/** @file Unit + property tests for block-cyclic address mapping. */

#include <gtest/gtest.h>

#include "mem/address_map.hh"
#include "sim/logging.hh"

using namespace reach;
using namespace reach::mem;

TEST(AddressMap, ValidatesConfiguration)
{
    EXPECT_THROW(AddressMap(0, 1, 64), sim::SimFatal);
    EXPECT_THROW(AddressMap(1, 0, 64), sim::SimFatal);
    EXPECT_THROW(AddressMap(1, 1, 32), sim::SimFatal);  // < line
    EXPECT_THROW(AddressMap(1, 1, 100), sim::SimFatal); // not multiple
    EXPECT_NO_THROW(AddressMap(2, 4, 64));
}

TEST(AddressMap, CacheLineInterleaveRoundRobinsChannels)
{
    AddressMap m(2, 1, 64);
    EXPECT_EQ(m.decode(0).channel, 0u);
    EXPECT_EQ(m.decode(64).channel, 1u);
    EXPECT_EQ(m.decode(128).channel, 0u);
    EXPECT_EQ(m.decode(192).channel, 1u);
}

TEST(AddressMap, OffsetWithinBlockPreserved)
{
    AddressMap m(2, 2, 64);
    DimmLocation loc = m.decode(70);
    EXPECT_EQ(loc.localAddr % 64, 6u);
}

TEST(AddressMap, TileInterleaveKeepsTileTogether)
{
    const std::uint64_t tile = 1 << 20;
    AddressMap m(2, 2, tile);
    DimmLocation first = m.decode(0);
    DimmLocation last = m.decode(tile - 1);
    EXPECT_EQ(first.channel, last.channel);
    EXPECT_EQ(first.dimm, last.dimm);
    // Next tile moves to another unit.
    DimmLocation next = m.decode(tile);
    EXPECT_FALSE(next.channel == first.channel &&
                 next.dimm == first.dimm);
}

TEST(AddressMap, BytesOnDimmSumsToTotal)
{
    AddressMap m(2, 2, 64);
    Addr addr = 12;
    std::uint64_t bytes = 10'000;
    std::uint64_t total = 0;
    for (std::uint32_t c = 0; c < 2; ++c)
        for (std::uint32_t d = 0; d < 2; ++d)
            total += m.bytesOnDimm(addr, bytes, c, d);
    EXPECT_EQ(total, bytes);
}

TEST(AddressMap, BytesSpreadEvenlyAtFineGranularity)
{
    AddressMap m(2, 2, 64);
    std::uint64_t bytes = 1 << 20;
    std::uint64_t per = m.bytesOnDimm(0, bytes, 0, 0);
    for (std::uint32_t c = 0; c < 2; ++c) {
        for (std::uint32_t d = 0; d < 2; ++d) {
            EXPECT_NEAR(
                static_cast<double>(m.bytesOnDimm(0, bytes, c, d)),
                static_cast<double>(per), 64.0);
        }
    }
}

/** Property: decode is injective per (channel,dimm,localAddr). */
class AddressMapBijection
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(AddressMapBijection, DistinctAddressesDistinctLocations)
{
    AddressMap m(2, 4, GetParam());
    // Sample addresses; no two may map to the same location triple.
    std::set<std::tuple<std::uint32_t, std::uint32_t, Addr>> seen;
    for (Addr a = 0; a < 64 * 1024; a += 64) {
        DimmLocation loc = m.decode(a);
        auto key = std::make_tuple(loc.channel, loc.dimm,
                                   loc.localAddr);
        EXPECT_TRUE(seen.insert(key).second)
            << "collision at addr " << a;
        EXPECT_LT(loc.channel, 2u);
        EXPECT_LT(loc.dimm, 4u);
    }
}

INSTANTIATE_TEST_SUITE_P(Granularities, AddressMapBijection,
                         ::testing::Values(64, 128, 4096, 1 << 20));
