/**
 * @file
 * Unit tests for the shared LLC: hit/miss behaviour, LRU eviction,
 * writebacks, coalescing and explicit flushes (the GAM's forced
 * writeback mechanism).
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

using namespace reach;
using namespace reach::mem;

namespace
{

struct CacheFixture : ::testing::Test
{
    void
    SetUp() override
    {
        MemorySystemConfig mcfg;
        mcfg.numChannels = 1;
        mcfg.dimmsPerChannel = 1;
        mcfg.dimmTimings.tREFI = 1'000'000'000;
        mem = std::make_unique<MemorySystem>(sim, "mem", mcfg);
        base = mem->addRegion("host", 64 << 20, {{0, 0}}, 64);

        CacheConfig ccfg;
        ccfg.sizeBytes = 64 << 10; // small cache: 64 sets x 16 ways
        ccfg.associativity = 16;
        cache = std::make_unique<Cache>(sim, "llc", *mem, ccfg);
    }

    /** Blocking access helper. */
    sim::Tick
    access(Addr a, bool write = false)
    {
        sim::Tick done = 0;
        cache->access(base + a, write, Requester::Cpu,
                      [&](sim::Tick t) { done = t; });
        sim.run();
        return done;
    }

    sim::Simulator sim;
    std::unique_ptr<MemorySystem> mem;
    std::unique_ptr<Cache> cache;
    Addr base = 0;
};

} // namespace

TEST_F(CacheFixture, FirstAccessMissesSecondHits)
{
    access(0);
    EXPECT_EQ(cache->misses(), 1u);
    EXPECT_EQ(cache->hits(), 0u);
    access(0);
    EXPECT_EQ(cache->hits(), 1u);
}

TEST_F(CacheFixture, SameLineDifferentOffsetHits)
{
    access(0);
    access(63);
    EXPECT_EQ(cache->hits(), 1u);
    EXPECT_EQ(cache->misses(), 1u);
}

TEST_F(CacheFixture, HitIsFasterThanMiss)
{
    sim::Tick t0 = sim.now();
    access(0);
    sim::Tick miss_lat = sim.now() - t0;
    t0 = sim.now();
    access(0);
    sim::Tick hit_lat = sim.now() - t0;
    EXPECT_LT(hit_lat, miss_lat);
}

TEST_F(CacheFixture, EvictionAfterExceedingWays)
{
    // 64 KiB/16-way/64B lines -> 64 sets. Same set stride = 64*64.
    const Addr stride = 64 * 64;
    for (int i = 0; i < 17; ++i)
        access(static_cast<Addr>(i) * stride);
    EXPECT_EQ(cache->misses(), 17u);
    // The first line was LRU-evicted; touching it misses again.
    access(0);
    EXPECT_EQ(cache->misses(), 18u);
}

TEST_F(CacheFixture, LruKeepsRecentlyUsed)
{
    const Addr stride = 64 * 64;
    for (int i = 0; i < 16; ++i)
        access(static_cast<Addr>(i) * stride);
    access(0); // refresh line 0
    access(16 * stride); // evicts line 1, not line 0
    std::uint64_t misses = cache->misses();
    access(0);
    EXPECT_EQ(cache->misses(), misses); // still resident
}

TEST_F(CacheFixture, DirtyEvictionWritesBack)
{
    const Addr stride = 64 * 64;
    access(0, true); // dirty
    for (int i = 1; i <= 16; ++i)
        access(static_cast<Addr>(i) * stride);
    // One writeback must have occurred.
    auto *wb = sim.stats().find("llc.writebacks");
    ASSERT_NE(wb, nullptr);
    EXPECT_GE(wb->value(), 1.0);
}

TEST_F(CacheFixture, FlushRangeWritesBackDirtyLines)
{
    access(0, true);
    access(64, true);
    access(128, false);

    sim::Tick done = 0;
    std::uint64_t flushed = cache->flushRange(
        base, 4096, [&](sim::Tick t) { done = t; });
    EXPECT_EQ(flushed, 2u);
    sim.run();
    EXPECT_GT(done, 0u);

    // Lines were invalidated: next access misses.
    std::uint64_t misses = cache->misses();
    access(128);
    EXPECT_EQ(cache->misses(), misses + 1);
}

TEST_F(CacheFixture, FlushCleanRangeCompletesWithZeroWritebacks)
{
    access(0, false);
    sim::Tick done = 0;
    std::uint64_t flushed =
        cache->flushRange(base, 4096, [&](sim::Tick t) { done = t; });
    EXPECT_EQ(flushed, 0u);
    sim.run();
    EXPECT_GT(done, 0u);
}

TEST_F(CacheFixture, ConcurrentMissesToSameLineCoalesce)
{
    int done = 0;
    cache->access(base, false, Requester::Cpu,
                  [&](sim::Tick) { ++done; });
    cache->access(base + 8, false, Requester::Cpu,
                  [&](sim::Tick) { ++done; });
    sim.run();
    EXPECT_EQ(done, 2);
    EXPECT_EQ(cache->misses(), 2u); // both counted as misses
    // ...but only one fill happened: a second probe hits.
    access(0);
    EXPECT_EQ(cache->hits(), 1u);
}

TEST_F(CacheFixture, WriteOnCoalescedMissMarksDirty)
{
    cache->access(base, false, Requester::Cpu, nullptr);
    cache->access(base, true, Requester::Cpu, nullptr); // coalesces
    sim.run();
    std::uint64_t flushed = cache->flushRange(base, 64, nullptr);
    EXPECT_EQ(flushed, 1u);
    sim.run();
}

TEST_F(CacheFixture, EnergyGrowsWithAccesses)
{
    double e0 = cache->dynamicEnergyPj();
    access(0);
    access(0);
    EXPECT_GT(cache->dynamicEnergyPj(), e0);
}

TEST(CacheConfigTest, TooSmallForAssociativityIsFatal)
{
    sim::Simulator sim;
    MemorySystemConfig mcfg;
    mcfg.numChannels = 1;
    mcfg.dimmsPerChannel = 1;
    MemorySystem mem(sim, "mem", mcfg);
    CacheConfig bad;
    bad.sizeBytes = 256; // 4 lines
    bad.associativity = 16;
    EXPECT_THROW(Cache(sim, "c", mem, bad), sim::SimFatal);
}

namespace
{

struct PrefetchFixture : ::testing::Test
{
    void
    SetUp() override
    {
        MemorySystemConfig mcfg;
        mcfg.numChannels = 1;
        mcfg.dimmsPerChannel = 1;
        mcfg.dimmTimings.tREFI = 1'000'000'000;
        mem = std::make_unique<MemorySystem>(sim, "mem", mcfg);
        base = mem->addRegion("host", 64 << 20, {{0, 0}}, 64);

        CacheConfig ccfg;
        ccfg.sizeBytes = 64 << 10;
        ccfg.prefetchNextLine = true;
        cache = std::make_unique<Cache>(sim, "pfc", *mem, ccfg);
    }

    void
    access(Addr a)
    {
        cache->access(base + a, false, Requester::Cpu, nullptr);
        sim.run();
    }

    sim::Simulator sim;
    std::unique_ptr<MemorySystem> mem;
    std::unique_ptr<Cache> cache;
    Addr base = 0;
};

} // namespace

TEST_F(PrefetchFixture, SequentialStreamHitsAfterFirstMiss)
{
    access(0);   // miss + prefetch of line 1
    access(64);  // hit (prefetched) + prefetch of line 2
    access(128); // hit
    EXPECT_EQ(cache->misses(), 1u);
    EXPECT_EQ(cache->hits(), 2u);
    EXPECT_GE(cache->prefetches(), 2u);
}

TEST_F(PrefetchFixture, PrefetchDoesNotDuplicateResidentLines)
{
    access(0);
    access(64);
    std::uint64_t pf = cache->prefetches();
    // Re-touching resident lines issues no new prefetches.
    access(0);
    access(64);
    EXPECT_EQ(cache->prefetches(), pf);
}

TEST_F(PrefetchFixture, PrefetchStopsAtRegionEnd)
{
    // Touch the very last line of the region: the next-line
    // prefetch would fall outside and must be suppressed, not
    // panic.
    Addr last = (std::uint64_t(64) << 20) - 64;
    EXPECT_NO_THROW(access(last));
}
