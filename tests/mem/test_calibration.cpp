/**
 * @file
 * Tests of the streaming-bandwidth calibration: the detailed DDR4
 * model should sustain a large fraction of pin bandwidth for
 * sequential streams, scale with channel count, and the calibration
 * result feeds the bulk-link model.
 */

#include <gtest/gtest.h>

#include "mem/calibration.hh"

using namespace reach;
using namespace reach::mem;

namespace
{

DramTimings
quietRefresh()
{
    DramTimings t;
    return t; // default DDR4-2400 including refresh
}

} // namespace

TEST(Calibration, SingleChannelSustainsMostOfPeak)
{
    auto cal = measureStreamingBandwidth(quietRefresh(), 1, 1,
                                         2 << 20);
    EXPECT_GT(cal.bandwidth, 0.70 * quietRefresh().peakBandwidth());
    EXPECT_LE(cal.bandwidth, quietRefresh().peakBandwidth());
    EXPECT_GT(cal.efficiency, 0.70);
    EXPECT_LE(cal.efficiency, 1.0);
}

TEST(Calibration, TwoChannelsRoughlyDouble)
{
    auto one = measureStreamingBandwidth(quietRefresh(), 1, 2,
                                         2 << 20);
    auto two = measureStreamingBandwidth(quietRefresh(), 2, 2,
                                         4 << 20);
    EXPECT_GT(two.bandwidth, 1.7 * one.bandwidth);
    EXPECT_LT(two.bandwidth, 2.2 * one.bandwidth);
}

TEST(Calibration, TileInterleaveStreamsAtChannelRate)
{
    // With 1 MiB tiles, a sequential stream has one tile (one DIMM,
    // one channel) in flight at a time — the controller's 64-entry
    // lookahead cannot span a tile boundary — so sustained bandwidth
    // approaches a single channel's rate, not the aggregate. This is
    // exactly why the GAM interleaves the *host* region at cache-line
    // granularity (paper §III-B).
    auto cal = measureStreamingBandwidth(quietRefresh(), 2, 2,
                                         4 << 20, 1 << 20);
    EXPECT_GT(cal.bandwidth, 0.80 * quietRefresh().peakBandwidth());
    EXPECT_LT(cal.bandwidth, 1.2 * quietRefresh().peakBandwidth());
}

TEST(Calibration, MatchesTableTwoExpectations)
{
    // Table II: DDR4 channels at ~19.2 GB/s pin rate; the calibrated
    // host stream across 2 channels should land in the low-30s GB/s,
    // which is what the paper's on-chip shortlist stage is bound by.
    auto cal =
        measureStreamingBandwidth(quietRefresh(), 2, 2, 8 << 20);
    EXPECT_GT(cal.bandwidth, 30e9);
    EXPECT_LT(cal.bandwidth, 38.4e9);
}
