/** @file Unit tests for the energy accounting model. */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "acc/accelerator.hh"
#include "energy/energy_model.hh"
#include "sim/simulator.hh"

using namespace reach;
using namespace reach::energy;

TEST(EnergyBreakdown, TotalSumsComponents)
{
    EnergyBreakdown b;
    b[Component::Acc] = 1.0;
    b[Component::Dram] = 2.0;
    b[Component::Pcie] = 0.5;
    EXPECT_DOUBLE_EQ(b.total(), 3.5);
}

TEST(EnergyBreakdown, ArithmeticOperators)
{
    EnergyBreakdown a, b;
    a[Component::Acc] = 5.0;
    b[Component::Acc] = 2.0;
    EnergyBreakdown d = a - b;
    EXPECT_DOUBLE_EQ(d[Component::Acc], 3.0);
    d += b;
    EXPECT_DOUBLE_EQ(d[Component::Acc], 5.0);
}

TEST(EnergyBreakdown, PrintsAllComponents)
{
    EnergyBreakdown b;
    b[Component::Ssd] = 1.25;
    std::ostringstream os;
    b.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("SSD"), std::string::npos);
    EXPECT_NE(s.find("MC and Interconnect"), std::string::npos);
    EXPECT_NE(s.find("Total"), std::string::npos);
}

TEST(ComponentNames, AllDistinct)
{
    std::set<std::string> names;
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(Component::NumComponents); ++i) {
        names.insert(componentName(static_cast<Component>(i)));
    }
    EXPECT_EQ(names.size(),
              static_cast<std::size_t>(Component::NumComponents));
}

TEST(EnergyModel, AcceleratorEnergyCounted)
{
    sim::Simulator sim;
    acc::Accelerator dev(sim, "a", acc::Level::OnChip);
    dev.configure(acc::findKernel("CNN-VU9P"));
    acc::WorkUnit w;
    w.ops = 1e9;
    dev.execute(w);
    sim.run();

    EnergyModel model;
    model.addAccelerator(dev);
    auto b = model.measure(sim.now());
    EXPECT_GT(b[Component::Acc], 0.0);
    EXPECT_NEAR(b[Component::Acc], dev.energyJoules(sim.now()), 1e-9);
}

TEST(EnergyModel, LinkBytesBecomeComponentEnergy)
{
    sim::Simulator sim;
    noc::LinkConfig lc;
    lc.bandwidth = 10e9;
    noc::Link dram_link(sim, "d", lc);
    noc::Link pcie_link(sim, "p", lc);
    dram_link.reserve(1 << 20, 0);
    pcie_link.reserve(1 << 20, 0);

    EnergyModel model;
    model.addLink(dram_link, Component::Dram);
    model.addLink(pcie_link, Component::Pcie);
    auto b = model.measure(sim.now());
    EXPECT_GT(b[Component::Dram], 0.0);
    EXPECT_GT(b[Component::Pcie], 0.0);
    // DRAM streams also exercise the channel (MC) wires.
    EXPECT_GT(b[Component::McInterconnect], 0.0);
}

TEST(EnergyModel, DramEnergyScalesWithBytes)
{
    sim::Simulator sim;
    noc::LinkConfig lc;
    lc.bandwidth = 10e9;
    noc::Link a(sim, "a", lc), b(sim, "b", lc);
    a.reserve(1 << 20, 0);
    b.reserve(4 << 20, 0);

    EnergyModel ma, mb;
    ma.addLink(a, Component::Dram);
    mb.addLink(b, Component::Dram);
    double ja = ma.measure(sim.now())[Component::Dram];
    double jb = mb.measure(sim.now())[Component::Dram];
    EXPECT_NEAR(jb, 4 * ja, ja * 0.01);
}

TEST(EnergyModel, CustomRatesRespected)
{
    sim::Simulator sim;
    noc::LinkConfig lc;
    lc.bandwidth = 10e9;
    noc::Link l(sim, "l", lc);
    l.reserve(1'000'000, 0);

    BulkEnergyRates rates;
    rates.pciePjPerByte = 100.0;
    EnergyModel model(rates);
    model.addLink(l, Component::Pcie);
    auto b = model.measure(sim.now());
    EXPECT_NEAR(b[Component::Pcie], 1'000'000 * 100.0 * 1e-12, 1e-9);
}

TEST(EnergyModel, EmptyModelIsZero)
{
    EnergyModel model;
    auto b = model.measure(sim::tickPerSec);
    EXPECT_DOUBLE_EQ(b.total(), 0.0);
}
