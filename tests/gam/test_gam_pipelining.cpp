/**
 * @file
 * Tests of the GAM's cross-job pipelining (paper §II-D): with
 * pipelining on, tasks of job N+1 start before job N finishes; with
 * it off, jobs serialize. Pipelining must improve throughput for
 * multi-stage jobs spread over different levels.
 */

#include <gtest/gtest.h>

#include <memory>

#include "gam/gam.hh"
#include "sim/simulator.hh"

using namespace reach;
using namespace reach::acc;
using namespace reach::gam;

namespace
{

/** Two-stage pipeline job: on-chip stage feeding a near-mem stage. */
JobDesc
twoStageJob(double ops, sim::Tick *done_at)
{
    JobDesc job;
    TaskDesc a;
    a.label = "stage0";
    a.kernelTemplate = "CNN-VU9P";
    a.level = Level::OnChip;
    a.work.ops = ops;
    TaskDesc b;
    b.label = "stage1";
    b.kernelTemplate = "GeMM-ZCU9";
    b.level = Level::NearMem;
    // The ZCU9 GeMM engine is ~16x slower per op than the on-chip
    // CNN engine; ops/32 makes stage1 roughly half of stage0 so the
    // on-chip stage is the pipeline bottleneck.
    b.work.ops = ops / 32;
    b.deps = {0};
    job.tasks = {a, b};
    if (done_at)
        job.onComplete = [done_at](sim::Tick t) { *done_at = t; };
    return job;
}

struct PipelineRig
{
    explicit PipelineRig(bool pipelining)
    {
        GamConfig cfg;
        cfg.crossJobPipelining = pipelining;
        onchip = std::make_unique<Accelerator>(sim, "oc",
                                               Level::OnChip);
        nm = std::make_unique<Accelerator>(sim, "nm", Level::NearMem);
        gam = std::make_unique<Gam>(sim, "gam", cfg);
        gam->addAccelerator(*onchip);
        gam->addAccelerator(*nm);
    }

    sim::Tick
    runJobs(int n, double ops = 5e8)
    {
        sim::Tick last = 0;
        for (int i = 0; i < n; ++i)
            gam->submitJob(twoStageJob(ops, &last));
        sim.run();
        return last;
    }

    sim::Simulator sim;
    std::unique_ptr<Accelerator> onchip, nm;
    std::unique_ptr<Gam> gam;
};

} // namespace

TEST(GamPipelining, OverlapsStagesAcrossJobs)
{
    PipelineRig piped(true);
    sim::Tick with_pipe = piped.runJobs(8);

    PipelineRig serial(false);
    sim::Tick without = serial.runJobs(8);

    EXPECT_LT(with_pipe, without);
    // Eight two-stage jobs: pipelined makespan approaches the
    // bottleneck stage, i.e. well under 85% of serial.
    EXPECT_LT(static_cast<double>(with_pipe),
              0.85 * static_cast<double>(without));
}

TEST(GamPipelining, SerializedModeStillCompletesEverything)
{
    PipelineRig serial(false);
    sim::Tick done = serial.runJobs(4);
    EXPECT_GT(done, 0u);
    EXPECT_EQ(serial.gam->jobsCompleted(), 4u);
    EXPECT_TRUE(serial.gam->idle());
}

TEST(GamPipelining, SingleJobUnaffectedByMode)
{
    PipelineRig piped(true);
    sim::Tick a = piped.runJobs(1);
    PipelineRig serial(false);
    sim::Tick b = serial.runJobs(1);
    EXPECT_EQ(a, b);
}

TEST(GamPipelining, ThroughputApproachesBottleneckStage)
{
    PipelineRig piped(true);
    const int jobs = 16;
    const double ops = 5e8;
    sim::Tick makespan = piped.runJobs(jobs, ops);

    sim::Tick stage0 = piped.onchip->kernel()->computeTicks(ops);
    // Steady state: one job per bottleneck-stage time, within 30%.
    double per_job = static_cast<double>(makespan) / jobs;
    EXPECT_LT(per_job, 1.3 * static_cast<double>(stage0));
}

/** Parameterized: pipelining gain grows with job count. */
class PipelineGain : public ::testing::TestWithParam<int>
{
};

TEST_P(PipelineGain, MoreJobsMoreGain)
{
    int jobs = GetParam();
    PipelineRig piped(true);
    sim::Tick with_pipe = piped.runJobs(jobs);
    PipelineRig serial(false);
    sim::Tick without = serial.runJobs(jobs);
    EXPECT_LE(with_pipe, without);
}

INSTANTIATE_TEST_SUITE_P(JobCounts, PipelineGain,
                         ::testing::Values(1, 2, 4, 12));
