/**
 * @file
 * Property/stress tests for the GAM: randomized job DAGs must always
 * drain (no deadlock, no lost tasks), execution must be fully
 * deterministic for a fixed seed, and bookkeeping must balance.
 */

#include <gtest/gtest.h>

#include <memory>

#include "gam/gam.hh"
#include "sim/rng.hh"
#include "sim/simulator.hh"

using namespace reach;
using namespace reach::acc;
using namespace reach::gam;

namespace
{

struct StressRig
{
    StressRig()
    {
        noc::LinkConfig lc;
        lc.bandwidth = 10e9;
        bulk = std::make_unique<noc::Link>(sim, "bulk", lc);

        gam = std::make_unique<Gam>(sim, "gam", GamConfig{});
        auto add = [&](const std::string &n, Level l) {
            accs.push_back(
                std::make_unique<Accelerator>(sim, n, l));
            gam->addAccelerator(*accs.back());
        };
        add("oc", Level::OnChip);
        add("nm0", Level::NearMem);
        add("nm1", Level::NearMem);
        add("ns0", Level::NearStor);
        add("ns1", Level::NearStor);

        gam->setPathProvider(
            [this](const Accelerator *, const Accelerator *) {
                return Path{}.via(*bulk);
            });
        gam->setFlushHook([this](std::uint64_t,
                                 std::function<void(sim::Tick)> done) {
            done(sim.now());
        });
    }

    /** Random DAG job: each task may depend on earlier tasks. */
    JobDesc
    randomJob(sim::Rng &rng, std::function<void(sim::Tick)> done)
    {
        static const char *tmpl[3] = {"CNN-VU9P", "GeMM-ZCU9",
                                      "KNN-ZCU9"};
        static const Level lvl[3] = {Level::OnChip, Level::NearMem,
                                     Level::NearStor};

        JobDesc job;
        job.onComplete = std::move(done);
        std::size_t n = 1 + rng.nextUInt(6);
        for (std::size_t i = 0; i < n; ++i) {
            TaskDesc t;
            std::size_t kind = rng.nextUInt(3);
            t.label = "t" + std::to_string(i);
            t.kernelTemplate = tmpl[kind];
            t.level = lvl[kind];
            t.work.ops = 1e5 + static_cast<double>(rng.nextUInt(
                                   static_cast<std::uint64_t>(1e8)));
            t.work.bytesIn = rng.nextUInt(1 << 22);
            t.work.bytesOut = rng.nextUInt(1 << 16);

            // Random dependencies on earlier tasks.
            for (std::size_t d = 0; d < i; ++d) {
                if (rng.nextUInt(3) == 0) {
                    t.deps.push_back(d);
                    t.inbound.push_back({d, rng.nextUInt(1 << 20)});
                }
            }
            if (t.deps.empty() && rng.nextUInt(2) == 0) {
                t.inbound.push_back({InboundTransfer::fromHost,
                                     rng.nextUInt(1 << 20)});
            }
            job.tasks.push_back(std::move(t));
        }
        return job;
    }

    sim::Simulator sim;
    std::unique_ptr<noc::Link> bulk;
    std::vector<std::unique_ptr<Accelerator>> accs;
    std::unique_ptr<Gam> gam;
};

} // namespace

class GamStress : public ::testing::TestWithParam<int>
{
};

TEST_P(GamStress, RandomDagsAlwaysDrain)
{
    StressRig rig;
    sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);

    int completed = 0;
    const int jobs = 25;
    for (int j = 0; j < jobs; ++j) {
        rig.gam->submitJob(rig.randomJob(
            rng, [&completed](sim::Tick) { ++completed; }));
    }
    rig.sim.run();

    EXPECT_EQ(completed, jobs);
    EXPECT_TRUE(rig.gam->idle());
    EXPECT_EQ(rig.gam->jobsCompleted(),
              static_cast<std::uint64_t>(jobs));

    // Every dispatched task ran on some accelerator.
    std::uint64_t ran = 0;
    for (const auto &a : rig.accs)
        ran += a->tasksCompleted();
    EXPECT_EQ(ran, rig.gam->tasksDispatched());
}

TEST_P(GamStress, DeterministicForFixedSeed)
{
    auto run_once = [&]() {
        StressRig rig;
        sim::Rng rng(static_cast<std::uint64_t>(GetParam()) + 99);
        sim::Tick last = 0;
        for (int j = 0; j < 10; ++j) {
            rig.gam->submitJob(rig.randomJob(
                rng, [&last](sim::Tick t) { last = t; }));
        }
        rig.sim.run();
        return std::make_pair(last, rig.sim.eventsExecuted());
    };

    auto a = run_once();
    auto b = run_once();
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GamStress, ::testing::Range(0, 6));

TEST(GamStressSerial, SerializedModeDrainsRandomDags)
{
    StressRig rig;
    // Rebuild the GAM with pipelining off on the same accelerators.
    GamConfig cfg;
    cfg.crossJobPipelining = false;
    auto gam2 = std::make_unique<Gam>(rig.sim, "gam2", cfg);
    for (auto &a : rig.accs)
        gam2->addAccelerator(*a);

    sim::Rng rng(5);
    int completed = 0;
    for (int j = 0; j < 12; ++j) {
        gam2->submitJob(rig.randomJob(
            rng, [&completed](sim::Tick) { ++completed; }));
    }
    rig.sim.run();
    EXPECT_EQ(completed, 12);
    EXPECT_TRUE(gam2->idle());
}

TEST(GamScheduling, EarliestFreeBeatsLeastLoadedOnSkewedTasks)
{
    auto run = [](gam::SchedulingPolicy policy) {
        sim::Simulator sim;
        GamConfig cfg;
        cfg.scheduling = policy;
        Gam manager(sim, "gam", cfg);
        std::vector<std::unique_ptr<Accelerator>> devs;
        for (int i = 0; i < 3; ++i) {
            devs.push_back(std::make_unique<Accelerator>(
                sim, "nm" + std::to_string(i), Level::NearMem));
            manager.addAccelerator(*devs.back());
        }
        // One huge task plus many small ones: count-balance packs
        // small tasks behind the big one.
        sim::Rng rng(17);
        JobDesc job;
        for (int t = 0; t < 12; ++t) {
            TaskDesc task;
            task.label = "t" + std::to_string(t);
            task.kernelTemplate = "GeMM-ZCU9";
            task.level = Level::NearMem;
            task.work.ops = (t == 0) ? 2e9 : 2e7;
            job.tasks.push_back(std::move(task));
        }
        sim::Tick done = 0;
        job.onComplete = [&done](sim::Tick t) { done = t; };
        manager.submitJob(std::move(job));
        sim.run();
        return done;
    };

    sim::Tick least = run(gam::SchedulingPolicy::LeastLoaded);
    sim::Tick earliest = run(gam::SchedulingPolicy::EarliestFree);
    EXPECT_LT(earliest, least);
}
