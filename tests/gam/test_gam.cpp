/**
 * @file
 * Unit tests for the Global Accelerator Manager: job/task lifecycle,
 * dependencies, transfers, forced writebacks, status polling and
 * instance selection.
 */

#include <gtest/gtest.h>

#include <memory>

#include "gam/gam.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

using namespace reach;
using namespace reach::acc;
using namespace reach::gam;

namespace
{

noc::LinkConfig
linkCfg(double bw)
{
    noc::LinkConfig c;
    c.bandwidth = bw;
    c.latency = 0;
    return c;
}

struct GamFixture : ::testing::Test
{
    void
    SetUp() override
    {
        link = std::make_unique<noc::Link>(sim, "bulk", linkCfg(10e9));
        dma = std::make_unique<noc::Link>(sim, "dma", linkCfg(10e9));

        onchip = std::make_unique<Accelerator>(sim, "oc",
                                               Level::OnChip);
        onchip->setInputPath(Path{}.via(*link));
        nm0 = std::make_unique<Accelerator>(sim, "nm0",
                                            Level::NearMem);
        nm1 = std::make_unique<Accelerator>(sim, "nm1",
                                            Level::NearMem);
        ns0 = std::make_unique<Accelerator>(sim, "ns0",
                                            Level::NearStor);

        gam = std::make_unique<Gam>(sim, "gam", cfg);
        ocId = gam->addAccelerator(*onchip);
        nm0Id = gam->addAccelerator(*nm0);
        nm1Id = gam->addAccelerator(*nm1);
        ns0Id = gam->addAccelerator(*ns0);

        gam->setPathProvider([this](const Accelerator *,
                                    const Accelerator *) {
            ++pathsBuilt;
            return Path{}.via(*dma);
        });
        gam->setFlushHook([this](std::uint64_t bytes,
                                 std::function<void(sim::Tick)> done) {
            flushedBytes += bytes;
            done(sim.now());
        });
    }

    TaskDesc
    simpleTask(const std::string &label, Level level,
               const std::string &tmpl, double ops = 1e6)
    {
        TaskDesc t;
        t.label = label;
        t.kernelTemplate = tmpl;
        t.level = level;
        t.work.ops = ops;
        return t;
    }

    sim::Simulator sim;
    GamConfig cfg;
    std::unique_ptr<noc::Link> link, dma;
    std::unique_ptr<Accelerator> onchip, nm0, nm1, ns0;
    std::unique_ptr<Gam> gam;
    std::uint32_t ocId = 0, nm0Id = 0, nm1Id = 0, ns0Id = 0;
    int pathsBuilt = 0;
    std::uint64_t flushedBytes = 0;
};

} // namespace

TEST_F(GamFixture, EmptyJobIsFatal)
{
    JobDesc job;
    EXPECT_THROW(gam->submitJob(std::move(job)), sim::SimFatal);
}

TEST_F(GamFixture, SingleTaskJobCompletes)
{
    JobDesc job;
    job.label = "one";
    job.tasks.push_back(
        simpleTask("t", Level::OnChip, "CNN-VU9P"));
    sim::Tick done = 0;
    job.onComplete = [&](sim::Tick t) { done = t; };
    gam->submitJob(std::move(job));
    sim.run();
    EXPECT_GT(done, 0u);
    EXPECT_TRUE(gam->idle());
    EXPECT_EQ(gam->jobsCompleted(), 1u);
    EXPECT_EQ(gam->tasksDispatched(), 1u);
}

TEST_F(GamFixture, AcceleratorsAtFiltersByLevel)
{
    EXPECT_EQ(gam->acceleratorsAt(Level::NearMem).size(), 2u);
    EXPECT_EQ(gam->acceleratorsAt(Level::OnChip).size(), 1u);
    EXPECT_EQ(gam->acceleratorsAt(Level::NearStor).size(), 1u);
}

TEST_F(GamFixture, NoAcceleratorAtLevelIsFatal)
{
    JobDesc job;
    job.tasks.push_back(simpleTask("t", Level::Cpu, "CNN-VU9P"));
    gam->submitJob(std::move(job));
    EXPECT_THROW(sim.run(), sim::SimFatal);
}

TEST_F(GamFixture, DependentTasksRunInOrder)
{
    // Track completion order via accelerator task counts at each
    // completion.
    std::vector<std::string> order;

    JobDesc job;
    TaskDesc a = simpleTask("a", Level::OnChip, "CNN-VU9P", 1e8);
    TaskDesc b = simpleTask("b", Level::NearMem, "GeMM-ZCU9");
    b.deps = {0};
    b.inbound.push_back({0, 1 << 20});
    job.tasks = {a, b};
    sim::Tick done = 0;
    job.onComplete = [&](sim::Tick t) { done = t; };
    gam->submitJob(std::move(job));
    sim.run();

    EXPECT_GT(done, 0u);
    // The dependent's dispatch must be after the producer finished:
    // total makespan >= producer compute + consumer compute.
    sim::Tick a_time = onchip->kernel()->computeTicks(1e8);
    EXPECT_GT(done, a_time);
    EXPECT_EQ(gam->bytesMoved(), std::uint64_t(1) << 20);
    EXPECT_GE(pathsBuilt, 1);
}

TEST_F(GamFixture, ForcedFlushOnCoherentToNearDataTransfer)
{
    JobDesc job;
    TaskDesc a = simpleTask("a", Level::OnChip, "CNN-VU9P");
    TaskDesc b = simpleTask("b", Level::NearMem, "GeMM-ZCU9");
    b.deps = {0};
    b.inbound.push_back({0, 4096});
    job.tasks = {a, b};
    gam->submitJob(std::move(job));
    sim.run();
    EXPECT_EQ(flushedBytes, 4096u);
}

TEST_F(GamFixture, NoFlushBetweenNearDataLevels)
{
    JobDesc job;
    TaskDesc a = simpleTask("a", Level::NearMem, "GeMM-ZCU9");
    TaskDesc b = simpleTask("b", Level::NearStor, "KNN-ZCU9");
    b.deps = {0};
    b.inbound.push_back({0, 4096});
    job.tasks = {a, b};
    gam->submitJob(std::move(job));
    sim.run();
    EXPECT_EQ(flushedBytes, 0u);
}

TEST_F(GamFixture, HostInboundTransfersHappen)
{
    JobDesc job;
    TaskDesc a = simpleTask("a", Level::OnChip, "CNN-VU9P");
    a.inbound.push_back({InboundTransfer::fromHost, 1 << 20});
    job.tasks = {a};
    gam->submitJob(std::move(job));
    sim.run();
    EXPECT_EQ(gam->bytesMoved(), std::uint64_t(1) << 20);
}

TEST_F(GamFixture, UnpinnedTasksBalanceAcrossInstances)
{
    JobDesc job;
    for (int i = 0; i < 4; ++i) {
        job.tasks.push_back(simpleTask("t" + std::to_string(i),
                                       Level::NearMem, "GeMM-ZCU9",
                                       1e8));
    }
    gam->submitJob(std::move(job));
    sim.run();
    EXPECT_EQ(nm0->tasksCompleted(), 2u);
    EXPECT_EQ(nm1->tasksCompleted(), 2u);
}

TEST_F(GamFixture, PinnedTaskGoesToPinnedInstance)
{
    JobDesc job;
    for (int i = 0; i < 3; ++i) {
        TaskDesc t = simpleTask("t", Level::NearMem, "GeMM-ZCU9");
        t.pinnedAcc = nm1Id;
        job.tasks.push_back(t);
    }
    gam->submitJob(std::move(job));
    sim.run();
    EXPECT_EQ(nm0->tasksCompleted(), 0u);
    EXPECT_EQ(nm1->tasksCompleted(), 3u);
}

TEST_F(GamFixture, PinnedToWrongLevelIsFatal)
{
    JobDesc job;
    TaskDesc t = simpleTask("t", Level::NearMem, "GeMM-ZCU9");
    t.pinnedAcc = ocId; // on-chip id for a near-mem task
    job.tasks = {t};
    gam->submitJob(std::move(job));
    EXPECT_THROW(sim.run(), sim::SimFatal);
}

TEST_F(GamFixture, DepIndexOutOfRangeIsFatal)
{
    JobDesc job;
    TaskDesc t = simpleTask("t", Level::OnChip, "CNN-VU9P");
    t.deps = {7};
    job.tasks = {t};
    EXPECT_THROW(gam->submitJob(std::move(job)), sim::SimFatal);
}

TEST_F(GamFixture, NearDataCompletionUsesStatusPolls)
{
    JobDesc job;
    job.tasks.push_back(
        simpleTask("t", Level::NearMem, "GeMM-ZCU9", 1e9));
    gam->submitJob(std::move(job));
    sim.run();
    EXPECT_GE(gam->statusPolls(), 1u);
}

TEST_F(GamFixture, OnChipCompletionInterruptsWithoutPolls)
{
    JobDesc job;
    job.tasks.push_back(
        simpleTask("t", Level::OnChip, "CNN-VU9P", 1e9));
    gam->submitJob(std::move(job));
    sim.run();
    EXPECT_EQ(gam->statusPolls(), 0u);
}

TEST_F(GamFixture, UnderestimatedTasksGetRepolled)
{
    // Force the GAM to poll far too early: it must re-poll until the
    // task really finished, and completion time must not precede the
    // device's finish time.
    cfg.estimateErrorFactor = 0.01;
    auto gam2 = std::make_unique<Gam>(sim, "gam2", cfg);
    auto id = gam2->addAccelerator(*nm0);
    (void)id;

    JobDesc job;
    job.tasks.push_back(
        simpleTask("t", Level::NearMem, "GeMM-ZCU9", 2e9));
    sim::Tick done = 0;
    job.onComplete = [&](sim::Tick t) { done = t; };
    gam2->submitJob(std::move(job));
    sim.run();

    EXPECT_GE(gam2->statusPolls(), 2u);
    EXPECT_GE(done, nm0->kernel()->computeTicks(2e9));
}

TEST_F(GamFixture, MultipleJobsAllComplete)
{
    int completed = 0;
    for (int j = 0; j < 5; ++j) {
        JobDesc job;
        job.tasks.push_back(
            simpleTask("t", Level::OnChip, "CNN-VU9P", 1e7));
        job.onComplete = [&](sim::Tick) { ++completed; };
        gam->submitJob(std::move(job));
    }
    sim.run();
    EXPECT_EQ(completed, 5);
    EXPECT_TRUE(gam->idle());
}

TEST_F(GamFixture, DiamondDependencyGraph)
{
    //      a
    //     / \
    //    b   c
    //     \ /
    //      d
    JobDesc job;
    TaskDesc a = simpleTask("a", Level::OnChip, "CNN-VU9P", 1e7);
    TaskDesc b = simpleTask("b", Level::NearMem, "GeMM-ZCU9", 1e7);
    TaskDesc c = simpleTask("c", Level::NearMem, "GeMM-ZCU9", 1e7);
    TaskDesc d = simpleTask("d", Level::NearStor, "KNN-ZCU9", 1e6);
    b.deps = {0};
    c.deps = {0};
    d.deps = {1, 2};
    b.inbound.push_back({0, 1024});
    c.inbound.push_back({0, 1024});
    d.inbound.push_back({1, 512});
    d.inbound.push_back({2, 512});
    job.tasks = {a, b, c, d};
    sim::Tick done = 0;
    job.onComplete = [&](sim::Tick t) { done = t; };
    gam->submitJob(std::move(job));
    sim.run();
    EXPECT_GT(done, 0u);
    EXPECT_EQ(ns0->tasksCompleted(), 1u);
    // b and c ran on different NM instances (load balance).
    EXPECT_EQ(nm0->tasksCompleted(), 1u);
    EXPECT_EQ(nm1->tasksCompleted(), 1u);
}

TEST_F(GamFixture, GamConfiguresKernelOnDispatch)
{
    EXPECT_EQ(onchip->kernel(), nullptr);
    JobDesc job;
    job.tasks.push_back(simpleTask("t", Level::OnChip, "CNN-VU9P"));
    gam->submitJob(std::move(job));
    sim.run();
    ASSERT_NE(onchip->kernel(), nullptr);
    EXPECT_EQ(onchip->kernel()->id, "CNN-VU9P");
}

TEST_F(GamFixture, DeadlineHintOrdersBackloggedDispatch)
{
    // One busy accelerator; jobs with earlier deadlines jump the
    // waiting queue, deadline-less jobs stay behind every deadlined
    // one (service-layer EDF hint).
    auto submit = [&](const char *label, sim::Tick deadline,
                      sim::Tick &done) {
        JobDesc job;
        job.label = label;
        job.deadline = deadline;
        job.tasks.push_back(
            simpleTask(label, Level::OnChip, "CNN-VU9P", 1e8));
        job.onComplete = [&done](sim::Tick t) { done = t; };
        gam->submitJob(std::move(job));
    };
    sim::Tick tA = 0, tLate = 0, tEarly = 0, tNone = 0;
    submit("first", 0, tA); // starts immediately (queue empty)
    submit("late", 50 * sim::tickPerMs, tLate);
    submit("none", 0, tNone); // no deadline: behind every deadline
    submit("early", 10 * sim::tickPerMs, tEarly);
    sim.run();

    EXPECT_GT(tA, 0u);
    EXPECT_LT(tA, tEarly);
    EXPECT_LT(tEarly, tLate);
    EXPECT_LT(tLate, tNone);
    EXPECT_TRUE(gam->idle());
}

TEST_F(GamFixture, DeadlineFreeJobsKeepSubmissionOrder)
{
    // Without deadlines the insertion is pure FIFO, so pre-deadline
    // runs reproduce bitwise.
    std::vector<int> order;
    for (int i = 0; i < 4; ++i) {
        JobDesc job;
        job.label = "j" + std::to_string(i);
        job.tasks.push_back(
            simpleTask(job.label, Level::OnChip, "CNN-VU9P", 1e8));
        job.onComplete = [&order, i](sim::Tick) {
            order.push_back(i);
        };
        gam->submitJob(std::move(job));
    }
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}
