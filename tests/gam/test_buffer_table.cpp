/** @file Unit tests for the GAM buffer table (paper Fig. 5c). */

#include <gtest/gtest.h>

#include "gam/buffer_table.hh"
#include "sim/logging.hh"

using namespace reach;
using namespace reach::gam;
using acc::Level;

namespace
{

BufferTable
table()
{
    BufferTable t;
    t.setCapacity(Level::OnChip, 1 << 20);
    t.setCapacity(Level::NearMem, 16 << 20);
    return t;
}

} // namespace

TEST(BufferTable, AllocatesDisjointRanges)
{
    BufferTable t = table();
    const auto &a = t.allocate(Level::OnChip, 4096, "a");
    const auto &b = t.allocate(Level::OnChip, 4096, "b");
    EXPECT_EQ(a.base, 0u);
    EXPECT_EQ(a.end(), 4096u);
    EXPECT_GE(b.base, a.end());
    EXPECT_NE(a.id, b.id);
}

TEST(BufferTable, LevelsHaveIndependentSpaces)
{
    BufferTable t = table();
    const auto &a = t.allocate(Level::OnChip, 4096, "a");
    const auto &b = t.allocate(Level::NearMem, 4096, "b");
    // Same base, different levels: no aliasing.
    EXPECT_EQ(a.base, b.base);
    EXPECT_EQ(t.usedBytes(Level::OnChip), 4096u);
    EXPECT_EQ(t.usedBytes(Level::NearMem), 4096u);
}

TEST(BufferTable, CapacityEnforced)
{
    BufferTable t = table();
    t.allocate(Level::OnChip, 1 << 20, "fills");
    EXPECT_THROW(t.allocate(Level::OnChip, 1, "over"),
                 sim::SimFatal);
}

TEST(BufferTable, UnconfiguredLevelHasZeroCapacity)
{
    BufferTable t = table();
    EXPECT_EQ(t.capacity(Level::NearStor), 0u);
    EXPECT_THROW(t.allocate(Level::NearStor, 64, "x"),
                 sim::SimFatal);
}

TEST(BufferTable, ZeroBytesIsFatal)
{
    BufferTable t = table();
    EXPECT_THROW(t.allocate(Level::OnChip, 0, "empty"),
                 sim::SimFatal);
}

TEST(BufferTable, FindAndRelease)
{
    BufferTable t = table();
    const auto &a = t.allocate(Level::OnChip, 4096, "a");
    BufferId id = a.id;
    ASSERT_NE(t.find(id), nullptr);
    EXPECT_EQ(t.find(id)->name, "a");
    EXPECT_EQ(t.size(), 1u);

    t.release(id);
    EXPECT_EQ(t.find(id), nullptr);
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.usedBytes(Level::OnChip), 0u);
}

TEST(BufferTable, ReleaseUnknownIdIsNoOp)
{
    BufferTable t = table();
    EXPECT_NO_THROW(t.release(1234));
}

TEST(BufferTable, RecordsKeepAddressBoundaries)
{
    BufferTable t = table();
    const auto &a = t.allocate(Level::NearMem, 1000, "x");
    EXPECT_EQ(a.end() - a.base, 1000u);
    EXPECT_EQ(a.level, Level::NearMem);
}
