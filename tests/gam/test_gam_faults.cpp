/**
 * @file
 * Fault-injection and fault-tolerant scheduling tests: poll retry
 * with backoff, watchdog deadlines, quarantine and recovery, sibling
 * and cross-level re-dispatch, explicit job failure, and the
 * record-retention / diagnostic machinery around them.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>

#include "fault/fault.hh"
#include "gam/gam.hh"
#include "noc/link.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"
#include "storage/ssd.hh"

using namespace reach;
using namespace reach::acc;
using namespace reach::gam;

namespace
{

noc::LinkConfig
linkCfg(double bw)
{
    noc::LinkConfig c;
    c.bandwidth = bw;
    c.latency = 0;
    return c;
}

/**
 * A two-AIM + on-chip machine with a configurable fault plan. The
 * injector is built lazily so each test sets cfg / plan first.
 */
struct FaultFixture : ::testing::Test
{
    void
    build(const fault::FaultPlan &plan)
    {
        link = std::make_unique<noc::Link>(sim, "bulk", linkCfg(10e9));
        dma = std::make_unique<noc::Link>(sim, "dma", linkCfg(10e9));

        onchip = std::make_unique<Accelerator>(sim, "oc",
                                               Level::OnChip);
        onchip->setInputPath(Path{}.via(*link));
        nm0 = std::make_unique<Accelerator>(sim, "nm0",
                                            Level::NearMem);
        nm1 = std::make_unique<Accelerator>(sim, "nm1",
                                            Level::NearMem);

        gam = std::make_unique<Gam>(sim, "gam", cfg);
        ocId = gam->addAccelerator(*onchip);
        nm0Id = gam->addAccelerator(*nm0);
        nm1Id = gam->addAccelerator(*nm1);

        gam->setPathProvider(
            [this](const Accelerator *, const Accelerator *) {
                return Path{}.via(*dma);
            });

        if (plan.enabled()) {
            inj = std::make_unique<fault::FaultInjector>(sim, "inj",
                                                         plan);
            gam->setFaultInjector(inj.get());
            onchip->setFaultInjector(inj.get());
            nm0->setFaultInjector(inj.get());
            nm1->setFaultInjector(inj.get());
        }
    }

    TaskDesc
    simpleTask(const std::string &label, Level level,
               const std::string &tmpl, double ops = 1e6)
    {
        TaskDesc t;
        t.label = label;
        t.kernelTemplate = tmpl;
        t.level = level;
        t.work.ops = ops;
        return t;
    }

    /** Submit one single-task job; returns completion flags. */
    struct JobOutcome
    {
        sim::Tick completedAt = 0;
        sim::Tick failedAt = 0;
    };

    std::shared_ptr<JobOutcome>
    submitOne(TaskDesc task)
    {
        auto out = std::make_shared<JobOutcome>();
        JobDesc job;
        job.label = "j-" + task.label;
        job.tasks.push_back(std::move(task));
        job.onComplete = [out](sim::Tick t) { out->completedAt = t; };
        job.onFailed = [out](sim::Tick t) { out->failedAt = t; };
        gam->submitJob(std::move(job));
        return out;
    }

    sim::Simulator sim;
    GamConfig cfg;
    std::unique_ptr<noc::Link> link, dma;
    std::unique_ptr<Accelerator> onchip, nm0, nm1;
    std::unique_ptr<fault::FaultInjector> inj;
    std::unique_ptr<Gam> gam;
    std::uint32_t ocId = 0, nm0Id = 0, nm1Id = 0;
};

fault::ScriptedFault
scripted(fault::FaultKind kind, const std::string &target,
         std::uint32_t count = 1)
{
    fault::ScriptedFault s;
    s.kind = kind;
    s.target = target;
    s.count = count;
    return s;
}

} // namespace

// ----- Configuration validation (satellite: config hardening) -----

TEST(GamConfigValidation, RejectsMalformedValues)
{
    sim::Simulator sim;
    auto make = [&sim](GamConfig c) { Gam g(sim, "g", c); };

    GamConfig ok;
    EXPECT_NO_THROW(make(ok));

    GamConfig c1;
    c1.commandLatency = 0;
    EXPECT_THROW(make(c1), sim::SimFatal);

    GamConfig c2;
    c2.statusPollLatency = 0;
    EXPECT_THROW(make(c2), sim::SimFatal);

    GamConfig c3;
    c3.estimateErrorFactor = 0;
    EXPECT_THROW(make(c3), sim::SimFatal);

    GamConfig c4;
    c4.watchdogSlack = -1.0;
    EXPECT_THROW(make(c4), sim::SimFatal);

    GamConfig c5;
    c5.watchdogMin = 0;
    EXPECT_THROW(make(c5), sim::SimFatal);

    GamConfig c6;
    c6.pollBackoffFactor = 0.5;
    EXPECT_THROW(make(c6), sim::SimFatal);

    GamConfig c7;
    c7.maxTaskAttempts = 0;
    EXPECT_THROW(make(c7), sim::SimFatal);

    GamConfig c8;
    c8.quarantineStrikes = 0;
    EXPECT_THROW(make(c8), sim::SimFatal);
}

TEST(FaultPlanValidation, RejectsMalformedPlans)
{
    fault::FaultPlan p;
    EXPECT_NO_THROW(p.validate());

    fault::FaultPlan bad_prob;
    bad_prob.pollDropProb = 1.5;
    EXPECT_THROW(bad_prob.validate(), sim::SimFatal);

    fault::FaultPlan neg_prob;
    neg_prob.accCrashProb = -0.1;
    EXPECT_THROW(neg_prob.validate(), sim::SimFatal);

    fault::FaultPlan over_one;
    over_one.accCrashProb = 0.6;
    over_one.accHangProb = 0.6;
    EXPECT_THROW(over_one.validate(), sim::SimFatal);

    fault::FaultPlan no_delay;
    no_delay.linkStallProb = 0.1;
    no_delay.linkStallDelay = 0;
    EXPECT_THROW(no_delay.validate(), sim::SimFatal);
}

TEST(FaultPlanEnv, SeedOverrideParses)
{
    ::setenv("REACH_FAULT_SEED", "12345", 1);
    EXPECT_EQ(fault::envFaultSeed(), 12345u);
    ::unsetenv("REACH_FAULT_SEED");
    EXPECT_EQ(fault::envFaultSeed(7u), 7u);
}

// ----- Fault-free behaviour: the machinery must stay invisible -----

TEST_F(FaultFixture, FaultFreeRunHasQuietWatchdogs)
{
    build(fault::FaultPlan{}); // nothing enabled -> no injector
    ASSERT_EQ(inj, nullptr);

    auto a = submitOne(simpleTask("nm", Level::NearMem, "GeMM-ZCU9"));
    auto b = submitOne(simpleTask("oc", Level::OnChip, "CNN-VU9P"));
    sim.run();

    EXPECT_GT(a->completedAt, 0u);
    EXPECT_GT(b->completedAt, 0u);
    EXPECT_EQ(a->failedAt, 0u);
    EXPECT_EQ(gam->jobsCompleted(), 2u);
    EXPECT_EQ(gam->jobsFailed(), 0u);
    EXPECT_EQ(gam->deadlineMisses(), 0u);
    EXPECT_EQ(gam->taskRetries(), 0u);
    EXPECT_EQ(gam->pollRetries(), 0u);
    EXPECT_EQ(gam->quarantines(), 0u);
    EXPECT_DOUBLE_EQ(gam->availability(Level::NearMem), 1.0);
}

// ----- Status-poll loss: retry, backoff, then give up -----

TEST_F(FaultFixture, DroppedPollIsRetriedAndTaskStillCompletes)
{
    fault::FaultPlan plan;
    plan.scripted.push_back(
        scripted(fault::FaultKind::PollDrop, "nm0", 2));
    build(plan);

    TaskDesc t = simpleTask("poll", Level::NearMem, "GeMM-ZCU9");
    t.pinnedAcc = nm0Id;
    auto out = submitOne(std::move(t));
    sim.run();

    EXPECT_GT(out->completedAt, 0u);
    EXPECT_EQ(out->failedAt, 0u);
    EXPECT_EQ(gam->pollRetries(), 2u);
    EXPECT_EQ(inj->injected(fault::FaultKind::PollDrop), 2u);
    // The drops never escalated: no lost attempt, no strike.
    EXPECT_EQ(gam->taskRetries(), 0u);
    EXPECT_EQ(gam->deadlineMisses(), 0u);
    EXPECT_EQ(gam->quarantines(), 0u);
}

TEST_F(FaultFixture, PollBudgetExhaustionRedispatchesToSibling)
{
    fault::FaultPlan plan;
    // Every poll to nm0 is lost, forever.
    plan.scripted.push_back(
        scripted(fault::FaultKind::PollDrop, "nm0", 0));
    build(plan);

    TaskDesc t = simpleTask("lost", Level::NearMem, "GeMM-ZCU9");
    t.pinnedAcc = nm0Id;
    auto out = submitOne(std::move(t));
    sim.run();

    // Retry budget: maxPollRetries tolerated, the next loss kills the
    // attempt; the re-dispatch lands on the sibling and completes.
    EXPECT_GT(out->completedAt, 0u);
    EXPECT_EQ(out->failedAt, 0u);
    EXPECT_EQ(gam->pollRetries(),
              static_cast<std::uint64_t>(cfg.maxPollRetries) + 1);
    EXPECT_EQ(gam->taskRetries(), 1u);
    EXPECT_EQ(gam->jobsCompleted(), 1u);
    // One strike marks nm0 Suspect but does not quarantine it yet.
    EXPECT_EQ(gam->quarantines(), 0u);
    EXPECT_FALSE(gam->isQuarantined(nm0Id));
}

// ----- Crash: watchdog, quarantine, sibling re-dispatch, recovery --

TEST_F(FaultFixture, CrashQuarantinesModuleAndRecoversAfterDelay)
{
    cfg.quarantineStrikes = 1;
    cfg.recoveryDelay = 2 * sim::tickPerMs;
    fault::FaultPlan plan;
    plan.scripted.push_back(
        scripted(fault::FaultKind::AccCrash, "nm0"));
    build(plan);

    TaskDesc t = simpleTask("crash", Level::NearMem, "GeMM-ZCU9");
    t.pinnedAcc = nm0Id;
    auto out = submitOne(std::move(t));
    sim.run();

    EXPECT_GT(out->completedAt, 0u);
    EXPECT_EQ(out->failedAt, 0u);
    EXPECT_EQ(gam->deadlineMisses(), 1u);
    EXPECT_EQ(gam->taskRetries(), 1u);
    EXPECT_EQ(gam->quarantines(), 1u);
    EXPECT_EQ(inj->injected(fault::FaultKind::AccCrash), 1u);

    // The recovery timer fired before the queue drained: the module
    // was repaired and rejoined the pool.
    EXPECT_EQ(gam->recoveries(), 1u);
    EXPECT_FALSE(gam->isQuarantined(nm0Id));
    EXPECT_FALSE(nm0->faulted());
    // It spent a nonzero fraction of the run quarantined.
    EXPECT_LT(gam->availability(Level::NearMem), 1.0);
    EXPECT_GT(gam->availability(Level::NearMem), 0.0);
}

TEST_F(FaultFixture, CrossLevelFailoverRemapsKernelTemplate)
{
    cfg.quarantineStrikes = 1;
    fault::FaultPlan plan;
    // Both near-memory modules die on first contact, permanently.
    plan.scripted.push_back(
        scripted(fault::FaultKind::AccCrash, "nm", 0));
    build(plan);

    std::string completed_on;
    gam->setTaskObserver([&](const Gam::TaskEvent &ev) {
        completed_on = ev.accName;
    });

    auto out = submitOne(
        simpleTask("remap", Level::NearMem, "GeMM-ZCU9"));
    sim.run();

    // Attempt 1 and 2 kill nm0/nm1; attempt 3 falls back to the
    // on-chip instance with the re-mapped GeMM bitstream.
    EXPECT_GT(out->completedAt, 0u);
    EXPECT_EQ(out->failedAt, 0u);
    EXPECT_EQ(completed_on, "oc");
    EXPECT_GE(gam->failovers(), 1u);
    EXPECT_EQ(gam->quarantines(), 2u);
    EXPECT_TRUE(gam->isQuarantined(nm0Id));
    EXPECT_TRUE(gam->isQuarantined(nm1Id));
    EXPECT_EQ(gam->jobsCompleted(), 1u);
}

TEST_F(FaultFixture, FailoverDisabledFailsJobInstead)
{
    cfg.quarantineStrikes = 1;
    cfg.crossLevelFailover = false;
    fault::FaultPlan plan;
    plan.scripted.push_back(
        scripted(fault::FaultKind::AccCrash, "nm", 0));
    build(plan);

    auto out = submitOne(
        simpleTask("stuck", Level::NearMem, "GeMM-ZCU9"));
    sim.run();

    EXPECT_EQ(out->completedAt, 0u);
    EXPECT_GT(out->failedAt, 0u);
    EXPECT_EQ(gam->jobsFailed(), 1u);
    EXPECT_TRUE(gam->idle());
}

// ----- Budget exhaustion: explicit failure, never a hang -----

TEST_F(FaultFixture, ExhaustedAttemptBudgetFailsJobExplicitly)
{
    cfg.maxTaskAttempts = 2;
    fault::FaultPlan plan;
    plan.accHangProb = 1.0; // every task everywhere hangs
    build(plan);

    auto out = submitOne(
        simpleTask("doomed", Level::NearMem, "GeMM-ZCU9"));
    sim.run(); // must drain — no wedge

    EXPECT_EQ(out->completedAt, 0u);
    EXPECT_GT(out->failedAt, 0u);
    EXPECT_EQ(gam->jobsFailed(), 1u);
    EXPECT_EQ(gam->jobsCompleted(), 0u);
    EXPECT_TRUE(gam->idle());
    EXPECT_GE(gam->deadlineMisses(), 2u);
}

TEST_F(FaultFixture, FailedJobReleasesDependentTasks)
{
    cfg.maxTaskAttempts = 1;
    cfg.quarantineStrikes = 1;
    fault::FaultPlan plan;
    plan.scripted.push_back(
        scripted(fault::FaultKind::AccCrash, "nm", 0));
    plan.scripted.push_back(
        scripted(fault::FaultKind::AccCrash, "oc", 0));
    build(plan);

    // Chain: the root dies everywhere, the dependent never becomes
    // runnable — the job must still fail cleanly and the GAM go idle.
    JobDesc job;
    job.label = "chain";
    job.tasks.push_back(
        simpleTask("root", Level::NearMem, "GeMM-ZCU9"));
    TaskDesc dep = simpleTask("leaf", Level::NearMem, "KNN-ZCU9");
    dep.deps.push_back(0);
    job.tasks.push_back(std::move(dep));
    sim::Tick failed_at = 0;
    job.onFailed = [&](sim::Tick t) { failed_at = t; };
    gam->submitJob(std::move(job));
    sim.run();

    EXPECT_GT(failed_at, 0u);
    EXPECT_TRUE(gam->idle());
    EXPECT_EQ(gam->jobsFailed(), 1u);
}

// ----- Record retention (PR 3 leak pattern regression) -----

TEST_F(FaultFixture, JobRecordsAreReleasedAfterCompletion)
{
    build(fault::FaultPlan{});

    auto sentinel = std::make_shared<int>(42);
    std::weak_ptr<int> watch = sentinel;

    JobDesc job;
    job.label = "sentinel";
    job.tasks.push_back(
        simpleTask("t", Level::NearMem, "GeMM-ZCU9"));
    job.onComplete = [sentinel](sim::Tick) {};
    sentinel.reset();
    ASSERT_FALSE(watch.expired());

    gam->submitJob(std::move(job));
    sim.run();

    // The completed job's record — and with it the captured callback
    // state — must be gone, not retained for the simulator lifetime.
    EXPECT_EQ(gam->jobsCompleted(), 1u);
    EXPECT_TRUE(watch.expired());
}

TEST_F(FaultFixture, JobRecordsAreReleasedAfterFailure)
{
    cfg.maxTaskAttempts = 1;
    fault::FaultPlan plan;
    plan.accHangProb = 1.0;
    build(plan);

    auto sentinel = std::make_shared<int>(7);
    std::weak_ptr<int> watch = sentinel;

    JobDesc job;
    job.label = "sentinel-fail";
    job.tasks.push_back(
        simpleTask("t", Level::NearMem, "GeMM-ZCU9"));
    job.onComplete = [sentinel](sim::Tick) {};
    job.onFailed = [sentinel](sim::Tick) {};
    sentinel.reset();

    gam->submitJob(std::move(job));
    sim.run();

    EXPECT_EQ(gam->jobsFailed(), 1u);
    EXPECT_TRUE(watch.expired());
}

// ----- Hang diagnostics -----

TEST_F(FaultFixture, DumpProgressShowsPendingWork)
{
    build(fault::FaultPlan{});
    submitOne(simpleTask("visible", Level::NearMem, "GeMM-ZCU9"));

    std::ostringstream os;
    gam->dumpProgress(os);
    std::string dump = os.str();
    EXPECT_NE(dump.find("visible"), std::string::npos);
    EXPECT_NE(dump.find("nm0"), std::string::npos);
}

TEST_F(FaultFixture, ReportWedgePanicsWithProgressTable)
{
    build(fault::FaultPlan{});
    submitOne(simpleTask("wedged", Level::NearMem, "GeMM-ZCU9"));
    EXPECT_THROW(gam->reportWedge("test"), sim::SimPanic);
}

// ----- Determinism: same plan + seed => same recovery sequence -----

TEST(FaultDeterminism, IdenticalRunsProduceIdenticalRecovery)
{
    auto run_once = [](std::uint64_t seed) {
        sim::Simulator sim;
        noc::Link dma(sim, "dma", linkCfg(10e9));
        Accelerator nm0(sim, "nm0", Level::NearMem);
        Accelerator nm1(sim, "nm1", Level::NearMem);

        GamConfig cfg;
        Gam gam(sim, "gam", cfg);
        gam.addAccelerator(nm0);
        gam.addAccelerator(nm1);
        gam.setPathProvider(
            [&dma](const Accelerator *, const Accelerator *) {
                return Path{}.via(dma);
            });

        fault::FaultPlan plan;
        plan.seed = seed;
        plan.accCrashProb = 0.2;
        plan.accHangProb = 0.2;
        plan.pollDropProb = 0.3;
        fault::FaultInjector inj(sim, "inj", plan);
        gam.setFaultInjector(&inj);
        nm0.setFaultInjector(&inj);
        nm1.setFaultInjector(&inj);

        std::uint32_t done = 0, failed = 0;
        for (int i = 0; i < 8; ++i) {
            JobDesc job;
            job.label = "j" + std::to_string(i);
            TaskDesc t;
            t.label = "t" + std::to_string(i);
            t.kernelTemplate = "GeMM-ZCU9";
            t.level = Level::NearMem;
            t.work.ops = 1e6;
            job.tasks.push_back(std::move(t));
            job.onComplete = [&done](sim::Tick) { ++done; };
            job.onFailed = [&failed](sim::Tick) { ++failed; };
            gam.submitJob(std::move(job));
        }
        sim.run();

        struct Outcome
        {
            std::uint32_t done, failed;
            std::uint64_t retries, misses, pollRetries;
            sim::Tick end;
        };
        return std::tuple<std::uint32_t, std::uint32_t, std::uint64_t,
                          std::uint64_t, std::uint64_t, sim::Tick>{
            done,
            failed,
            gam.taskRetries(),
            gam.deadlineMisses(),
            gam.pollRetries(),
            sim.now()};
    };

    auto a = run_once(99);
    auto b = run_once(99);
    EXPECT_EQ(a, b);

    // Every submitted job resolved one way or the other.
    EXPECT_EQ(std::get<0>(a) + std::get<1>(a), 8u);
}

// ----- Device-side injection points (link / SSD) -----

TEST(FaultDevices, LinkStallExtendsReservation)
{
    sim::Simulator sim;
    fault::FaultPlan plan;
    plan.linkStallDelay = 5 * sim::tickPerUs;
    plan.scripted.push_back(
        scripted(fault::FaultKind::LinkStall, "bulk", 1));
    fault::FaultInjector inj(sim, "inj", plan);

    noc::Link clean(sim, "clean", linkCfg(10e9));
    noc::Link faulty(sim, "bulk", linkCfg(10e9));
    faulty.setFaultInjector(&inj);

    sim::Tick base = clean.reserve(1 << 20, 0);
    sim::Tick stalled = faulty.reserve(1 << 20, 0);
    EXPECT_EQ(stalled, base + plan.linkStallDelay);
    EXPECT_EQ(faulty.stallsInjected(), 1u);

    // Only the first occurrence was scripted.
    EXPECT_EQ(faulty.reserve(1 << 20, stalled) - stalled,
              clean.reserve(1 << 20, base) - base);
}

TEST(FaultDevices, SsdTimeoutAddsRetryDelay)
{
    sim::Simulator sim;
    storage::SsdConfig scfg;

    fault::FaultPlan plan;
    plan.ssdTimeoutDelay = 2 * sim::tickPerMs;
    plan.scripted.push_back(
        scripted(fault::FaultKind::SsdTimeout, "ssd", 1));
    fault::FaultInjector inj(sim, "inj", plan);

    storage::Ssd clean(sim, "clean", scfg);
    storage::Ssd faulty(sim, "ssd0", scfg);
    faulty.setFaultInjector(&inj);

    sim::Tick base = clean.reserve(1 << 16, false, 0);
    sim::Tick delayed = faulty.reserve(1 << 16, false, 0);
    EXPECT_EQ(delayed, base + plan.ssdTimeoutDelay);
    EXPECT_EQ(faulty.timeoutsInjected(), 1u);
}

TEST(FaultDevices, CrashedAcceleratorStaysDeadUntilRepair)
{
    sim::Simulator sim;
    fault::FaultPlan plan;
    plan.scripted.push_back(
        scripted(fault::FaultKind::AccCrash, "acc", 1));
    fault::FaultInjector inj(sim, "inj", plan);

    Accelerator a(sim, "acc", Level::NearMem);
    a.setFaultInjector(&inj);

    acc::WorkUnit w;
    w.ops = 1e6;
    int completions = 0;
    a.configure(acc::findKernel("GeMM-ZCU9"));
    a.execute(w, [&](sim::Tick) { ++completions; });
    sim.run();
    EXPECT_EQ(completions, 0);
    EXPECT_TRUE(a.faulted());
    EXPECT_EQ(a.faultsInjected(), 1u);

    // Tasks after the crash are also lost (device dead) ...
    a.execute(w, [&](sim::Tick) { ++completions; });
    sim.run();
    EXPECT_EQ(completions, 0);

    // ... until repair() reloads the bitstream.
    a.repair();
    EXPECT_FALSE(a.faulted());
    a.execute(w, [&](sim::Tick) { ++completions; });
    sim.run();
    EXPECT_EQ(completions, 1);
}
