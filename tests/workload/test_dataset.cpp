/** @file Unit tests for the synthetic dataset generator. */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "cbir/kmeans.hh"
#include "workload/dataset.hh"

using namespace reach;
using namespace reach::workload;

TEST(Dataset, ShapeMatchesConfig)
{
    DatasetConfig cfg;
    cfg.numVectors = 100;
    cfg.dim = 12;
    cfg.latentClusters = 5;
    Dataset ds(cfg);
    EXPECT_EQ(ds.size(), 100u);
    EXPECT_EQ(ds.dim(), 12u);
    EXPECT_EQ(ds.latentCenters().rows(), 5u);
    EXPECT_EQ(ds.latentLabels().size(), 100u);
}

TEST(Dataset, DeterministicForSeed)
{
    DatasetConfig cfg;
    cfg.numVectors = 50;
    cfg.dim = 4;
    Dataset a(cfg), b(cfg);
    for (std::size_t i = 0; i < a.size(); ++i) {
        for (std::size_t d = 0; d < a.dim(); ++d)
            EXPECT_FLOAT_EQ(a.vectors().at(i, d), b.vectors().at(i, d));
    }
}

TEST(Dataset, DifferentSeedsDiffer)
{
    DatasetConfig cfg;
    cfg.numVectors = 50;
    cfg.dim = 4;
    Dataset a(cfg);
    cfg.seed = 43;
    Dataset b(cfg);
    bool any_diff = false;
    for (std::size_t i = 0; i < a.size() && !any_diff; ++i)
        for (std::size_t d = 0; d < a.dim(); ++d)
            any_diff |= a.vectors().at(i, d) != b.vectors().at(i, d);
    EXPECT_TRUE(any_diff);
}

TEST(Dataset, VectorsClusterAroundTheirLatentCenter)
{
    DatasetConfig cfg;
    cfg.numVectors = 400;
    cfg.dim = 8;
    cfg.latentClusters = 6;
    cfg.centerSpread = 20.0;
    cfg.clusterStddev = 1.0;
    Dataset ds(cfg);

    // Each vector should be closer to its own center than to the
    // average other center.
    int correct = 0;
    for (std::size_t i = 0; i < ds.size(); ++i) {
        std::uint32_t truth = ds.latentLabels()[i];
        std::uint32_t nearest = cbir::nearestCentroid(
            ds.latentCenters(), ds.vectors().row(i));
        correct += (nearest == truth);
    }
    EXPECT_GT(static_cast<double>(correct) / ds.size(), 0.95);
}

TEST(Dataset, KmeansRecoversLatentStructure)
{
    DatasetConfig cfg;
    cfg.numVectors = 600;
    cfg.dim = 8;
    cfg.latentClusters = 6;
    cfg.centerSpread = 15.0;
    Dataset ds(cfg);

    cbir::KMeansConfig kc;
    kc.clusters = 6;
    auto res = cbir::kMeans(ds.vectors(), kc);
    // Tight clustering: inertia per point close to dim * stddev^2.
    EXPECT_LT(res.inertia / ds.size(), 3.0 * cfg.dim);
}

TEST(Dataset, QueriesAreNearTheirSourceVectors)
{
    DatasetConfig cfg;
    cfg.numVectors = 300;
    cfg.dim = 8;
    Dataset ds(cfg);
    auto queries = ds.makeQueries(20, 0.01, 5);
    EXPECT_EQ(queries.rows(), 20u);

    // Each query's nearest dataset vector should be very close
    // (it is a perturbed copy).
    for (std::size_t q = 0; q < queries.rows(); ++q) {
        float best = 1e30f;
        for (std::size_t i = 0; i < ds.size(); ++i)
            best = std::min(best, cbir::l2sq(queries.row(q),
                                             ds.vectors().row(i)));
        EXPECT_LT(best, 0.1f);
    }
}

TEST(Dataset, ZeroClustersIsFatal)
{
    DatasetConfig cfg;
    cfg.latentClusters = 0;
    EXPECT_THROW(Dataset ds(cfg), sim::SimFatal);
}

TEST(Dataset, ZipfQueriesSkewTowardHotClusters)
{
    DatasetConfig cfg;
    cfg.numVectors = 2000;
    cfg.dim = 8;
    cfg.latentClusters = 16;
    cfg.centerSpread = 20.0;
    Dataset ds(cfg);

    auto queries = ds.makeQueriesZipf(400, 0.05, 11, 1.2);
    ASSERT_EQ(queries.rows(), 400u);

    // Classify each query back to its latent cluster and count.
    std::vector<int> hits(cfg.latentClusters, 0);
    for (std::size_t q = 0; q < queries.rows(); ++q) {
        ++hits[cbir::nearestCentroid(ds.latentCenters(),
                                     queries.row(q))];
    }

    std::uint32_t hottest = ds.clusterAtRank(0);
    double hot_share = static_cast<double>(hits[hottest]) / 400.0;
    // Uniform would give 1/16 = 6.25%; Zipf(1.2) gives ~30%.
    EXPECT_GT(hot_share, 0.15);

    // Rank-0 cluster gets more than a cold one.
    std::uint32_t cold = ds.clusterAtRank(cfg.latentClusters - 1);
    EXPECT_GT(hits[hottest], hits[cold]);
}

TEST(Dataset, ZipfWithZeroExponentIsRoughlyUniform)
{
    DatasetConfig cfg;
    cfg.numVectors = 1600;
    cfg.dim = 8;
    cfg.latentClusters = 8;
    cfg.centerSpread = 20.0;
    Dataset ds(cfg);

    auto queries = ds.makeQueriesZipf(800, 0.05, 3, 0.0);
    std::vector<int> hits(cfg.latentClusters, 0);
    for (std::size_t q = 0; q < queries.rows(); ++q) {
        ++hits[cbir::nearestCentroid(ds.latentCenters(),
                                     queries.row(q))];
    }
    for (int h : hits) {
        EXPECT_GT(h, 800 / 8 / 3);
        EXPECT_LT(h, 800 / 8 * 3);
    }
}

TEST(Dataset, ZipfQueriesDeterministic)
{
    DatasetConfig cfg;
    cfg.numVectors = 500;
    cfg.dim = 4;
    Dataset ds(cfg);
    auto a = ds.makeQueriesZipf(10, 0.1, 7, 1.0);
    auto b = ds.makeQueriesZipf(10, 0.1, 7, 1.0);
    for (std::size_t i = 0; i < 10; ++i)
        for (std::size_t d = 0; d < 4; ++d)
            EXPECT_FLOAT_EQ(a.at(i, d), b.at(i, d));
}
