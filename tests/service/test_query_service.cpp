/**
 * @file
 * Unit tests for the open-loop query service: explicit request
 * accounting in fault-free and faulted runs, admission-control shed
 * paths, deadline drops, degradation-controller behavior with
 * hysteresis, retry-with-backoff, run-to-run and cross-thread
 * determinism, the quality ladder, and the wedge diagnostic.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "parallel/thread_pool.hh"
#include "service/query_service.hh"
#include "sim/logging.hh"

using namespace reach;
using namespace reach::service;

namespace
{

/** PQ on so the refine knob is a live degradation lever. */
cbir::ScaleConfig
testScale()
{
    cbir::ScaleConfig scale;
    scale.pq.enabled = true;
    scale.pq.m = 32;
    scale.pq.bits = 8;
    scale.pq.refine = 128;
    return scale;
}

ServiceConfig
baseConfig(std::uint64_t requests, double rate_qps)
{
    ServiceConfig cfg;
    cfg.totalRequests = requests;
    cfg.arrival.ratePerSec = rate_qps;
    cfg.queueCapacity = 64;
    cfg.sloLatency = 150 * sim::tickPerMs;
    cfg.formTimeout = 4 * sim::tickPerMs;
    cfg.initialLatencyEstimate = 10 * sim::tickPerMs;
    cfg.maxInFlight = 4;
    return cfg;
}

ServiceResult
runService(const ServiceConfig &cfg,
           core::Mapping mapping = core::Mapping::Reach,
           const core::SystemConfig &sys_cfg = {})
{
    core::ReachSystem sys(sys_cfg);
    QueryService svc(sys, testScale(), mapping, cfg);
    return svc.run();
}

core::SystemConfig
faultySystem(double intensity)
{
    core::SystemConfig sc;
    sc.faultPlan.accCrashProb = intensity;
    sc.faultPlan.accHangProb = intensity / 2;
    sc.faultPlan.ssdTimeoutProb = intensity;
    sc.gam.recoveryDelay = 5 * sim::tickPerMs;
    // Tight budget so exhausted recovery surfaces as job failures.
    sc.gam.maxTaskAttempts = 2;
    sc.gam.crossLevelFailover = false;
    return sc;
}

} // namespace

TEST(ServiceConfigTest, ValidatesParameters)
{
    ServiceConfig cfg;
    cfg.totalRequests = 0;
    EXPECT_THROW(cfg.validate(), sim::SimFatal);

    cfg = {};
    cfg.queueCapacity = 0;
    EXPECT_THROW(cfg.validate(), sim::SimFatal);

    cfg = {};
    cfg.highWatermark = 0.2;
    cfg.lowWatermark = 0.5; // inverted
    EXPECT_THROW(cfg.validate(), sim::SimFatal);

    cfg = {};
    cfg.hysteresisEvals = 0;
    EXPECT_THROW(cfg.validate(), sim::SimFatal);

    EXPECT_NO_THROW(ServiceConfig{}.validate());
}

TEST(DegradeLadder, StepsExistingKnobsOnly)
{
    cbir::ScaleConfig base = testScale();
    auto ladder = degradeLadder(base, 3);
    ASSERT_EQ(ladder.size(), 4u);

    EXPECT_EQ(ladder[0].centroidBytesPerDim,
              base.centroidBytesPerDim);
    // L1: fp16 shortlist scan.
    EXPECT_EQ(ladder[1].centroidBytesPerDim, 2u);
    EXPECT_EQ(ladder[1].nprobe, base.nprobe);
    // L2: + nprobe halved.
    EXPECT_EQ(ladder[2].nprobe, base.nprobe / 2);
    EXPECT_EQ(ladder[2].pq.refine, base.pq.refine);
    // L3: + PQ refine budget quartered (PQ enabled here).
    EXPECT_EQ(ladder[3].pq.refine, base.pq.refine / 4);
    EXPECT_EQ(ladder[3].rerankCandidates, base.rerankCandidates);

    // Levels are capped at the three defined steps.
    EXPECT_EQ(degradeLadder(base, 7).size(), 4u);
    EXPECT_EQ(degradeLadder(base, 0).size(), 1u);

    // Without PQ, L3 halves the rerank candidate budget instead.
    cbir::ScaleConfig nopq;
    auto l2 = degradeLadder(nopq, 3);
    EXPECT_EQ(l2[3].rerankCandidates, nopq.rerankCandidates / 2);
    EXPECT_EQ(l2[3].pq.refine, nopq.pq.refine);
}

TEST(QueryService, FaultFreeRunAccountsEveryRequest)
{
    ServiceConfig cfg = baseConfig(64, 800);
    ServiceResult r = runService(cfg);

    EXPECT_EQ(r.submitted, 64u);
    EXPECT_EQ(r.completed, 64u);
    EXPECT_EQ(r.failed, 0u);
    EXPECT_EQ(r.shedTotal(), 0u);
    EXPECT_TRUE(r.accounted());
    EXPECT_EQ(r.goodRequests + r.sloMisses, r.completed);
    EXPECT_GT(r.goodputQps(), 0.0);
    EXPECT_GT(r.makespan, 0u);

    // Percentiles are populated and ordered.
    EXPECT_GT(r.p50, 0u);
    EXPECT_LE(r.p50, r.p95);
    EXPECT_LE(r.p95, r.p99);
    EXPECT_LE(r.p99, r.p999);
    EXPECT_LE(r.p999, r.maxLatency);
    EXPECT_GT(r.meanLatency, 0.0);

    // Nothing degraded at modest load.
    EXPECT_EQ(r.batchesFailed, 0u);
    EXPECT_EQ(r.batchesRetried, 0u);
}

TEST(QueryService, LowRateClosesPartialBatchesOnTimeout)
{
    // ~25 req/s against a 4 ms form timeout: every batch closes by
    // timer with far fewer members than the 16-query batch shape.
    ServiceConfig cfg = baseConfig(12, 25);
    ServiceResult r = runService(cfg);
    EXPECT_TRUE(r.accounted());
    EXPECT_EQ(r.completed, 12u);
    EXPECT_GT(r.batchesSubmitted, 12u / 16 + 1);
}

TEST(QueryService, QueueFullShedsExplicitly)
{
    ServiceConfig cfg = baseConfig(128, 50'000); // far over capacity
    cfg.queueCapacity = 8;
    cfg.degrade = false;
    ServiceResult r = runService(cfg);

    EXPECT_TRUE(r.accounted());
    EXPECT_GT(r.shedQueueFull, 0u);
    EXPECT_GT(r.completed, 0u);
}

TEST(QueryService, ExpiredRequestsAreDroppedNotServed)
{
    // SLO far below the batch service time: whatever queues behind
    // the first in-flight window can only expire.
    ServiceConfig cfg = baseConfig(96, 4'000);
    cfg.sloLatency = 5 * sim::tickPerMs;
    ServiceResult r = runService(cfg);

    EXPECT_TRUE(r.accounted());
    EXPECT_GT(r.shedDeadline, 0u);
    // Completions exist but all blew the 5 ms SLO.
    EXPECT_GT(r.completed, 0u);
    EXPECT_EQ(r.goodRequests, 0u);
}

TEST(QueryService, OverloadEngagesDegradationWithHysteresis)
{
    ServiceConfig cfg = baseConfig(192, 6'000); // ~4x capacity
    ServiceResult r = runService(cfg);

    EXPECT_TRUE(r.accounted());
    EXPECT_GT(r.maxDegradeLevel, 0u);
    EXPECT_GT(r.degradedBatches, 0u);
    EXPECT_GT(r.timeDegraded, 0u);
    EXPECT_LE(r.timeDegraded, r.makespan);

    ServiceConfig off = cfg;
    off.degrade = false;
    ServiceResult r_off = runService(off);
    EXPECT_TRUE(r_off.accounted());
    EXPECT_EQ(r_off.maxDegradeLevel, 0u);
    EXPECT_EQ(r_off.degradedBatches, 0u);
    EXPECT_EQ(r_off.timeDegraded, 0u);
}

TEST(QueryService, FaultedRunTerminatesEveryRequestExplicitly)
{
    ServiceConfig cfg = baseConfig(96, 1'200);
    cfg.maxBatchRetries = 2;
    ServiceResult r = runService(cfg, core::Mapping::Reach,
                                 faultySystem(0.08));

    // The headline robustness invariant: nothing silently dropped,
    // nothing hung — completed + failed + shed == submitted.
    EXPECT_TRUE(r.accounted());
    EXPECT_EQ(r.submitted, 96u);
    // The retry path actually ran.
    EXPECT_GT(r.batchesRetried + r.batchesFailed, 0u);
}

TEST(QueryService, RetryBudgetExhaustionFailsRequests)
{
    // Crash every task attempt: jobs always fail, retries burn the
    // budget, and every request must end as an explicit failure.
    core::SystemConfig sc;
    sc.faultPlan.accCrashProb = 1.0;
    sc.gam.maxTaskAttempts = 1;
    sc.gam.crossLevelFailover = false;
    sc.gam.recoveryDelay = 0; // no repair: stay dead

    ServiceConfig cfg = baseConfig(8, 2'000);
    cfg.maxBatchRetries = 2;
    ServiceResult r = runService(cfg, core::Mapping::Reach, sc);

    EXPECT_TRUE(r.accounted());
    EXPECT_EQ(r.completed, 0u);
    EXPECT_GT(r.failed, 0u);
    EXPECT_GT(r.batchesRetried, 0u);
    EXPECT_GT(r.batchesFailed, 0u);
}

TEST(QueryService, RepeatedRunsAreBitwiseIdentical)
{
    ServiceConfig cfg = baseConfig(96, 2'000);
    ServiceResult a = runService(cfg);
    ServiceResult b = runService(cfg);
    EXPECT_TRUE(a == b);

    // A different arrival seed produces a different run.
    ServiceConfig other = cfg;
    other.arrival.seed = cfg.arrival.seed + 1;
    EXPECT_TRUE(runService(other) != a);
}

TEST(QueryService, ConcurrentRunsMatchSerialRuns)
{
    // The bench sweeps points on a thread pool; each point owns its
    // Simulator, so results must not depend on the thread context.
    ServiceConfig cfg = baseConfig(64, 2'500);
    ServiceResult serial = runService(cfg);

    std::vector<ServiceResult> results(4);
    parallel::ThreadPool::global().run(4, 4, [&](std::size_t i) {
        results[i] = runService(cfg);
    });
    for (const ServiceResult &r : results)
        EXPECT_TRUE(r == serial);
}

TEST(QueryService, FaultedRunsAreDeterministicPerSeed)
{
    ServiceConfig cfg = baseConfig(64, 1'200);
    core::SystemConfig sc = faultySystem(0.05);
    sc.faultPlan.seed = 77;
    ServiceResult a = runService(cfg, core::Mapping::Reach, sc);
    ServiceResult b = runService(cfg, core::Mapping::Reach, sc);
    EXPECT_TRUE(a == b);
}

TEST(QueryService, ReportWedgeDumpsRequestTableAndPanics)
{
    core::ReachSystem sys;
    ServiceConfig cfg = baseConfig(4, 1'000);
    QueryService svc(sys, testScale(), core::Mapping::Reach, cfg);

    std::ostringstream os;
    svc.dumpRequests(os);
    EXPECT_NE(os.str().find("QueryService state"), std::string::npos);

    try {
        svc.reportWedge("test");
        FAIL() << "reportWedge must panic";
    } catch (const sim::SimPanic &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("unaccounted"), std::string::npos);
        EXPECT_NE(msg.find("QueryService state"), std::string::npos);
        EXPECT_NE(msg.find("GAM"), std::string::npos);
    }
}

TEST(QueryService, RunningTwiceIsFatal)
{
    core::ReachSystem sys;
    ServiceConfig cfg = baseConfig(4, 1'000);
    QueryService svc(sys, testScale(), core::Mapping::Reach, cfg);
    svc.run();
    EXPECT_THROW(svc.run(), sim::SimFatal);
}
