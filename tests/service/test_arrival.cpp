/**
 * @file
 * Unit tests for the deterministic arrival processes: draw-order
 * reproducibility, long-run rates, MMPP burstiness, trace replay,
 * config validation, and the REACH_ARRIVAL_SEED override.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "service/arrival.hh"
#include "sim/logging.hh"

using namespace reach;
using namespace reach::service;

namespace
{

std::vector<sim::Tick>
draw(ArrivalProcess &p, std::size_t n)
{
    std::vector<sim::Tick> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(p.nextInterarrival());
    return out;
}

double
meanSeconds(const std::vector<sim::Tick> &gaps)
{
    sim::Tick total = 0;
    for (sim::Tick g : gaps)
        total += g;
    return sim::secondsFromTicks(total) / gaps.size();
}

} // namespace

TEST(ArrivalConfig, ValidatesParameters)
{
    ArrivalConfig bad;
    bad.ratePerSec = 0;
    EXPECT_THROW(bad.validate(), sim::SimFatal);

    bad = {};
    bad.kind = ArrivalKind::Bursty;
    bad.burstRateMultiplier = 1.0;
    EXPECT_THROW(bad.validate(), sim::SimFatal);

    bad = {};
    bad.kind = ArrivalKind::Bursty;
    bad.burstTimeFraction = 1.5;
    EXPECT_THROW(bad.validate(), sim::SimFatal);

    bad = {};
    bad.kind = ArrivalKind::Trace;
    EXPECT_THROW(bad.validate(), sim::SimFatal); // empty trace

    bad.trace = {100, 100}; // not strictly increasing
    EXPECT_THROW(bad.validate(), sim::SimFatal);

    ArrivalConfig ok;
    EXPECT_NO_THROW(ok.validate());
}

TEST(ArrivalProcess, PoissonIsDeterministicPerSeed)
{
    ArrivalConfig cfg;
    cfg.ratePerSec = 10'000;
    cfg.seed = 42;
    ArrivalProcess a(cfg), b(cfg);
    EXPECT_EQ(draw(a, 500), draw(b, 500));

    cfg.seed = 43;
    ArrivalProcess c(cfg);
    EXPECT_NE(draw(a, 500), draw(c, 500));
}

TEST(ArrivalProcess, PoissonMeanMatchesRate)
{
    ArrivalConfig cfg;
    cfg.ratePerSec = 5'000;
    ArrivalProcess p(cfg);
    double mean = meanSeconds(draw(p, 20'000));
    EXPECT_NEAR(mean, 1.0 / cfg.ratePerSec, 0.05 / cfg.ratePerSec);
}

TEST(ArrivalProcess, GapsAreAlwaysPositive)
{
    ArrivalConfig cfg;
    cfg.ratePerSec = 1e9; // so fast the tick floor binds
    ArrivalProcess p(cfg);
    for (sim::Tick g : draw(p, 1'000))
        EXPECT_GE(g, 1u);
}

TEST(ArrivalProcess, BurstyLongRunMeanMatchesRate)
{
    ArrivalConfig cfg;
    cfg.kind = ArrivalKind::Bursty;
    cfg.ratePerSec = 5'000;
    cfg.burstRateMultiplier = 4.0;
    cfg.burstTimeFraction = 0.25;
    cfg.meanBurstTicks = 2 * sim::tickPerMs;
    ArrivalProcess p(cfg);
    double mean = meanSeconds(draw(p, 50'000));
    // MMPP-2 converges slower than Poisson; 10% tolerance.
    EXPECT_NEAR(mean, 1.0 / cfg.ratePerSec, 0.1 / cfg.ratePerSec);
}

TEST(ArrivalProcess, BurstyIsDeterministicAndActuallyBursty)
{
    ArrivalConfig cfg;
    cfg.kind = ArrivalKind::Bursty;
    cfg.ratePerSec = 5'000;
    ArrivalProcess a(cfg), b(cfg);
    auto gaps = draw(a, 5'000);
    EXPECT_EQ(gaps, draw(b, 5'000));

    // Squared coefficient of variation of a plain Poisson stream is
    // 1; state-modulated rates push it clearly above.
    double mean = 0, m2 = 0;
    for (sim::Tick g : gaps)
        mean += static_cast<double>(g);
    mean /= gaps.size();
    for (sim::Tick g : gaps) {
        double d = static_cast<double>(g) - mean;
        m2 += d * d;
    }
    double cv2 = m2 / gaps.size() / (mean * mean);
    EXPECT_GT(cv2, 1.15);
}

TEST(ArrivalProcess, TraceReplaysAndCycles)
{
    ArrivalConfig cfg;
    cfg.kind = ArrivalKind::Trace;
    cfg.trace = {10, 30, 100};
    ArrivalProcess p(cfg);
    // Gaps: lead-in 10, then 20, 70, then the cycle repeats.
    EXPECT_EQ(p.nextInterarrival(), 10u);
    EXPECT_EQ(p.nextInterarrival(), 20u);
    EXPECT_EQ(p.nextInterarrival(), 70u);
    EXPECT_EQ(p.nextInterarrival(), 10u);
    EXPECT_EQ(p.nextInterarrival(), 20u);
}

struct ArrivalSeedEnv : ::testing::Test
{
    void SetUp() override { ::unsetenv("REACH_ARRIVAL_SEED"); }
    void TearDown() override { ::unsetenv("REACH_ARRIVAL_SEED"); }
};

TEST_F(ArrivalSeedEnv, FallbackWithoutEnv)
{
    EXPECT_EQ(envArrivalSeed(1234), 1234u);
    EXPECT_EQ(envArrivalSeed(), ArrivalConfig::defaultSeed);
}

TEST_F(ArrivalSeedEnv, ReadsEnvOverride)
{
    ::setenv("REACH_ARRIVAL_SEED", "99", 1);
    EXPECT_EQ(envArrivalSeed(1234), 99u);
    ::setenv("REACH_ARRIVAL_SEED", "0x10", 1);
    EXPECT_EQ(envArrivalSeed(), 16u);
}

TEST_F(ArrivalSeedEnv, RejectsGarbage)
{
    ::setenv("REACH_ARRIVAL_SEED", "banana", 1);
    EXPECT_THROW(envArrivalSeed(), sim::SimFatal);
}
