/**
 * @file
 * Tests of the functional+timing co-simulation layer.
 */

#include <gtest/gtest.h>

#include "core/cosim.hh"
#include "sim/logging.hh"

using namespace reach;
using namespace reach::core;

namespace
{

CbirService::Config
smallService()
{
    CbirService::Config cfg;
    cfg.dataset.numVectors = 3000;
    cfg.dataset.dim = 24;
    cfg.dataset.latentClusters = 20;
    cfg.kmeans.clusters = 32;
    cfg.kmeans.maxIterations = 8;
    cfg.nprobe = 6;
    cfg.topK = 10;
    return cfg;
}

cbir::ScaleConfig
smallScale()
{
    cbir::ScaleConfig sc;
    sc.batchSize = 8;
    return sc;
}

} // namespace

TEST(CbirService, AnswersMatchDirectPipeline)
{
    CbirService svc(smallService());
    cbir::Matrix queries =
        svc.dataset().makeQueries(8, 0.05, 123);

    auto via_service = svc.query(queries);

    auto lists = cbir::shortlistRetrieve(queries, svc.index(), 6);
    cbir::RerankConfig rc;
    rc.k = 10;
    rc.maxCandidates = 4096;
    auto direct = cbir::rerank(queries, svc.dataset().vectors(),
                               svc.index(), lists, rc);

    ASSERT_EQ(via_service.size(), direct.size());
    for (std::size_t q = 0; q < direct.size(); ++q)
        EXPECT_EQ(via_service[q], direct[q]);
}

TEST(CbirService, RecallIsHighForEasyQueries)
{
    CbirService svc(smallService());
    EXPECT_GT(svc.measureRecall(16, 0.05, 77), 0.85);
}

TEST(CbirService, PqModeAnswersWithHighRecallAndLessTraffic)
{
    CbirService::Config cfg = smallService();
    cfg.pq.enabled = true;
    cfg.pq.m = 8; // dim = 24 -> 3 floats per subspace
    cfg.pq.refine = 128;
    cfg.pq.trainIterations = 4;
    CbirService svc(cfg);
    EXPECT_TRUE(svc.index().hasPq());
    EXPECT_GT(svc.measureRecall(16, 0.05, 77), 0.85);

    // The co-sim timing layer must inherit the service's PQ mode:
    // near-storage rerank reads shrink from pages to codes.
    CoSimulation pq_sim(cfg, smallScale(), Mapping::Reach);
    CoSimulation exact_sim(smallService(), smallScale(),
                           Mapping::Reach);
    cbir::Matrix queries =
        pq_sim.service().dataset().makeQueries(8, 0.05, 5);
    CoSimBatch pq_batch = pq_sim.processBatch(queries);
    EXPECT_EQ(pq_batch.results.size(), 8u);
    EXPECT_GT(pq_batch.latency, 0u);
    EXPECT_LT(pq_batch.latency,
              exact_sim.processBatch(queries).latency);
}

TEST(CbirService, MalformedPqConfigIsFatal)
{
    CbirService::Config cfg = smallService();
    cfg.pq.enabled = true;
    cfg.pq.m = 7; // does not divide dim = 24
    EXPECT_THROW(CbirService{cfg}, sim::SimFatal);
}

TEST(CoSim, ScaleTracksShortlistPrecision)
{
    // The timing model's centroid stream width is derived from the
    // functional precision knob — a scale handed in with the wrong
    // byte width is overwritten, so the two layers cannot drift.
    CbirService::Config cfg = smallService();
    cbir::ScaleConfig sc = smallScale();
    sc.centroidBytesPerDim = 4;

    cfg.shortlistPrecision = cbir::ShortlistPrecision::Fp16;
    CoSimulation fp16_sim(cfg, sc, Mapping::Reach);
    EXPECT_EQ(fp16_sim.scale().centroidBytesPerDim, 2u);

    cfg.shortlistPrecision = cbir::ShortlistPrecision::Fp32;
    sc.centroidBytesPerDim = 2; // deliberately wrong for fp32
    CoSimulation fp32_sim(cfg, sc, Mapping::Reach);
    EXPECT_EQ(fp32_sim.scale().centroidBytesPerDim, 4u);
}

TEST(CoSim, ScaleTracksBatchedRerank)
{
    // The timing model's batched-rerank accounting is derived from
    // the functional knob — a stale scale is overwritten, so the byte
    // model can never charge per-query streams while the service
    // scans cluster-major (or vice versa).
    CbirService::Config cfg = smallService();
    cfg.pq.enabled = true;
    cfg.pq.m = 8;
    cfg.pq.trainIterations = 4;
    cfg.batchedRerank = true;
    cbir::ScaleConfig sc = smallScale();
    sc.batchedRerank = false; // deliberately stale
    CoSimulation cosim(cfg, sc, Mapping::Reach);
    EXPECT_TRUE(cosim.scale().batchedRerank);

    // And the functional answers stay bitwise those of a query-major
    // service over the same deterministic dataset/index build.
    cbir::Matrix queries =
        cosim.service().dataset().makeQueries(8, 0.05, 5);
    CoSimBatch batch = cosim.processBatch(queries);
    CbirService::Config qm = cfg;
    qm.batchedRerank = false;
    CbirService ref(qm);
    auto want = ref.query(queries);
    ASSERT_EQ(batch.results.size(), want.size());
    for (std::size_t q = 0; q < want.size(); ++q)
        EXPECT_EQ(batch.results[q], want[q]) << "query " << q;
}

TEST(CoSim, Fp16ShortlistBatchAnswersMatchDirectPipeline)
{
    CbirService::Config cfg = smallService();
    cfg.shortlistPrecision = cbir::ShortlistPrecision::Fp16;
    CoSimulation cosim(cfg, smallScale(), Mapping::Reach);
    cbir::Matrix queries =
        cosim.service().dataset().makeQueries(8, 0.05, 31);

    CoSimBatch batch = cosim.processBatch(queries);
    ASSERT_EQ(batch.results.size(), 8u);
    EXPECT_GT(batch.latency, 0u);

    const CbirService &svc = cosim.service();
    auto lists = cbir::shortlistRetrieve(
        queries, svc.index(), 6, {}, cbir::ShortlistPrecision::Fp16);
    cbir::RerankConfig rc;
    rc.k = 10;
    rc.maxCandidates = 4096;
    auto direct = cbir::rerank(queries, svc.dataset().vectors(),
                               svc.index(), lists, rc);
    for (std::size_t q = 0; q < direct.size(); ++q)
        EXPECT_EQ(batch.results[q], direct[q]) << "query " << q;
}

TEST(CoSim, BatchProducesAnswersAndTiming)
{
    CoSimulation cosim(smallService(), smallScale(),
                       Mapping::Reach);
    cbir::Matrix queries =
        cosim.service().dataset().makeQueries(8, 0.05, 5);

    CoSimBatch batch = cosim.processBatch(queries);
    EXPECT_EQ(batch.results.size(), 8u);
    for (const auto &nbrs : batch.results)
        EXPECT_EQ(nbrs.size(), 10u);
    EXPECT_GT(batch.latency, 0u);
    EXPECT_GT(batch.energyJoules, 0.0);
    EXPECT_EQ(cosim.batchesProcessed(), 1u);
}

TEST(CoSim, WrongBatchSizeIsFatal)
{
    CoSimulation cosim(smallService(), smallScale(),
                       Mapping::Reach);
    cbir::Matrix queries =
        cosim.service().dataset().makeQueries(3, 0.05, 5);
    EXPECT_THROW(cosim.processBatch(queries), sim::SimFatal);
}

TEST(CoSim, ReachLatencyBeatsOnChipLatency)
{
    cbir::Matrix queries;
    sim::Tick reach_lat = 0, onchip_lat = 0;
    {
        CoSimulation cosim(smallService(), smallScale(),
                           Mapping::Reach);
        queries =
            cosim.service().dataset().makeQueries(8, 0.05, 5);
        reach_lat = cosim.processBatch(queries).latency;
    }
    {
        CoSimulation cosim(smallService(), smallScale(),
                           Mapping::OnChipOnly);
        onchip_lat = cosim.processBatch(queries).latency;
    }
    EXPECT_LT(reach_lat, onchip_lat);
}

TEST(CoSim, EnergyIsPerBatchDelta)
{
    CoSimulation cosim(smallService(), smallScale(),
                       Mapping::OnChipOnly);
    cbir::Matrix queries =
        cosim.service().dataset().makeQueries(8, 0.05, 9);
    CoSimBatch a = cosim.processBatch(queries);
    CoSimBatch b = cosim.processBatch(queries);
    // Per-batch energies are individually positive and similar.
    EXPECT_GT(a.energyJoules, 0.0);
    EXPECT_GT(b.energyJoules, 0.0);
    EXPECT_NEAR(b.energyJoules, a.energyJoules,
                a.energyJoules * 0.5);
}
