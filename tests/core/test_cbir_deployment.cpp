/**
 * @file
 * Tests of the CBIR deployment layer: the four mappings build valid
 * job graphs, run to completion, and reproduce the paper's ordering
 * relations (ReACH fastest, proper scaling behaviour).
 */

#include <gtest/gtest.h>

#include "core/cbir_deployment.hh"
#include "sim/logging.hh"

using namespace reach;
using namespace reach::core;

namespace
{

cbir::CbirWorkloadModel
paperModel()
{
    return cbir::CbirWorkloadModel(cbir::ScaleConfig{});
}

RunResult
runMapping(Mapping m, std::uint32_t batches,
           std::uint32_t instances = 0)
{
    ReachSystem sys{SystemConfig{}};
    CbirDeployment dep(sys, paperModel(), m, instances);
    return dep.run(batches);
}

} // namespace

TEST(CbirDeployment, MappingNamesDistinct)
{
    EXPECT_STRNE(mappingName(Mapping::OnChipOnly),
                 mappingName(Mapping::Reach));
    EXPECT_STRNE(mappingName(Mapping::NearMemOnly),
                 mappingName(Mapping::NearStorOnly));
}

TEST(CbirDeployment, JobGraphShapeOnChip)
{
    ReachSystem sys{SystemConfig{}};
    CbirDeployment dep(sys, paperModel(), Mapping::OnChipOnly);
    auto job = dep.makeBatchJob(0, nullptr);
    // 3 stages, one task each.
    EXPECT_EQ(job.tasks.size(), 3u);
    EXPECT_TRUE(job.tasks[1].deps == std::vector<std::size_t>{0});
    EXPECT_TRUE(job.tasks[2].deps == std::vector<std::size_t>{1});
}

TEST(CbirDeployment, JobGraphShapeReach)
{
    ReachSystem sys{SystemConfig{}};
    CbirDeployment dep(sys, paperModel(), Mapping::Reach);
    auto job = dep.makeBatchJob(0, nullptr);
    // 1 FE + 4 shortlist + 1 AIMbus merge + 4 rerank.
    EXPECT_EQ(job.tasks.size(), 10u);
    // All shortlist tasks depend on the FE task.
    for (std::size_t i = 1; i <= 4; ++i) {
        EXPECT_EQ(job.tasks[i].level, acc::Level::NearMem);
        EXPECT_TRUE(job.tasks[i].deps == std::vector<std::size_t>{0});
    }
    // The merge collects the four partial short-lists.
    EXPECT_EQ(job.tasks[5].level, acc::Level::NearMem);
    EXPECT_EQ(job.tasks[5].deps.size(), 4u);
    // Rerank tasks depend on the merged list only.
    for (std::size_t i = 6; i <= 9; ++i) {
        EXPECT_EQ(job.tasks[i].level, acc::Level::NearStor);
        EXPECT_TRUE(job.tasks[i].deps == std::vector<std::size_t>{5});
    }
}

TEST(CbirDeployment, JobGraphShapeNearData)
{
    ReachSystem sys{SystemConfig{}};
    CbirDeployment dep(sys, paperModel(), Mapping::NearMemOnly, 4);
    auto job = dep.makeBatchJob(0, nullptr);
    // 16 single-image FE + 4 shortlist + 1 merge + 4 rerank.
    EXPECT_EQ(job.tasks.size(), 25u);
    for (std::size_t i = 0; i < 16; ++i)
        EXPECT_EQ(job.tasks[i].level, acc::Level::NearMem);
}

TEST(CbirDeployment, ShortlistMergeUsesTheAimBus)
{
    // The partial top-nprobe exchange between AIM modules travels
    // over the AIMbus (paper Fig. 3).
    ReachSystem sys{SystemConfig{}};
    CbirDeployment dep(sys, paperModel(), Mapping::Reach);
    dep.run(2);
    EXPECT_GT(sys.aimBusLink().bytesMoved(), 0u);
}

TEST(CbirDeployment, AllMappingsComplete)
{
    for (Mapping m :
         {Mapping::OnChipOnly, Mapping::NearMemOnly,
          Mapping::NearStorOnly, Mapping::Reach}) {
        RunResult r = runMapping(m, 3);
        EXPECT_EQ(r.batches, 3u) << mappingName(m);
        EXPECT_GT(r.makespan, 0u) << mappingName(m);
        EXPECT_GT(r.meanLatency, 0u) << mappingName(m);
        EXPECT_GE(r.maxLatency, r.meanLatency) << mappingName(m);
    }
}

TEST(CbirDeployment, ZeroBatchesIsNoOp)
{
    RunResult r = runMapping(Mapping::OnChipOnly, 0);
    EXPECT_EQ(r.batches, 0u);
    EXPECT_EQ(r.makespan, 0u);
}

TEST(CbirDeployment, ReachBeatsEveryOtherMappingOnThroughput)
{
    RunResult oc = runMapping(Mapping::OnChipOnly, 8);
    RunResult nm = runMapping(Mapping::NearMemOnly, 8);
    RunResult ns = runMapping(Mapping::NearStorOnly, 8);
    RunResult rc = runMapping(Mapping::Reach, 8);

    EXPECT_GT(rc.throughputBatchesPerSec(),
              oc.throughputBatchesPerSec());
    EXPECT_GT(rc.throughputBatchesPerSec(),
              nm.throughputBatchesPerSec());
    EXPECT_GT(rc.throughputBatchesPerSec(),
              ns.throughputBatchesPerSec());
}

TEST(CbirDeployment, HeadlineThroughputGainNearPaper)
{
    // Paper: 4.5x throughput vs on-chip. Accept 3.5-6x.
    RunResult oc = runMapping(Mapping::OnChipOnly, 10);
    RunResult rc = runMapping(Mapping::Reach, 10);
    double gain = rc.throughputBatchesPerSec() /
                  oc.throughputBatchesPerSec();
    EXPECT_GT(gain, 3.5);
    EXPECT_LT(gain, 6.0);
}

TEST(CbirDeployment, HeadlineLatencyGainNearPaper)
{
    // Paper: 2.2x query-response latency improvement. Accept 1.6-3x.
    RunResult oc = runMapping(Mapping::OnChipOnly, 1);
    RunResult rc = runMapping(Mapping::Reach, 1);
    double gain = static_cast<double>(oc.meanLatency) /
                  static_cast<double>(rc.meanLatency);
    EXPECT_GT(gain, 1.6);
    EXPECT_LT(gain, 3.0);
}

TEST(CbirDeployment, HeadlineEnergyReductionNearPaper)
{
    // Paper: 52% energy reduction. Accept 40-65%.
    ReachSystem sys_oc{SystemConfig{}};
    CbirDeployment oc(sys_oc, paperModel(), Mapping::OnChipOnly);
    oc.run(8);
    double e_oc = sys_oc.measureEnergy().total();

    ReachSystem sys_rc{SystemConfig{}};
    CbirDeployment rc(sys_rc, paperModel(), Mapping::Reach);
    rc.run(8);
    double e_rc = sys_rc.measureEnergy().total();

    double reduction = 1.0 - e_rc / e_oc;
    EXPECT_GT(reduction, 0.40);
    EXPECT_LT(reduction, 0.65);
}

TEST(CbirDeployment, NearDataScalingImprovesWithInstances)
{
    // Fig 12: 4 instances beat 1 instance end-to-end.
    RunResult one = runMapping(Mapping::NearMemOnly, 4, 1);
    RunResult four = runMapping(Mapping::NearMemOnly, 4, 4);
    EXPECT_GT(four.throughputBatchesPerSec(),
              one.throughputBatchesPerSec());

    RunResult ns1 = runMapping(Mapping::NearStorOnly, 4, 1);
    RunResult ns4 = runMapping(Mapping::NearStorOnly, 4, 4);
    EXPECT_GT(ns4.throughputBatchesPerSec(),
              ns1.throughputBatchesPerSec());
}

TEST(CbirDeployment, SingleNearDataInstanceWorseThanOnChip)
{
    // Section VI-C: "on-chip performs better" vs single instances.
    RunResult oc = runMapping(Mapping::OnChipOnly, 4);
    RunResult nm1 = runMapping(Mapping::NearMemOnly, 4, 1);
    RunResult ns1 = runMapping(Mapping::NearStorOnly, 4, 1);
    EXPECT_GT(oc.throughputBatchesPerSec(),
              nm1.throughputBatchesPerSec());
    EXPECT_GT(oc.throughputBatchesPerSec(),
              ns1.throughputBatchesPerSec());
}

TEST(CbirDeployment, TooManyInstancesIsFatal)
{
    ReachSystem sys{SystemConfig{}};
    EXPECT_THROW(
        CbirDeployment(sys, paperModel(), Mapping::NearMemOnly, 99),
        sim::SimFatal);
}

TEST(CbirDeployment, ReachNeedsOnChip)
{
    SystemConfig cfg;
    cfg.hasOnChipAcc = false;
    ReachSystem sys{cfg};
    EXPECT_THROW(CbirDeployment(sys, paperModel(), Mapping::Reach),
                 sim::SimFatal);
}

TEST(CbirDeployment, CpuBaselineCompletesAndIsSlowest)
{
    RunResult cpu = runMapping(Mapping::CpuOnly, 2);
    RunResult oc = runMapping(Mapping::OnChipOnly, 2);
    EXPECT_EQ(cpu.batches, 2u);
    // The paper's premise: conventional on-chip FPGA acceleration
    // substantially beats the software baseline.
    EXPECT_GT(oc.throughputBatchesPerSec(),
              3.0 * cpu.throughputBatchesPerSec());
}

TEST(CbirDeployment, FpgaReducesComputeEnergyButMovementRemains)
{
    // Section I: after on-chip acceleration the compute energy
    // shrinks but data-movement energy does not go away.
    cbir::CbirWorkloadModel model{cbir::ScaleConfig{}};

    ReachSystem cpu_sys{SystemConfig{}};
    CbirDeployment cpu_dep(cpu_sys, model, Mapping::CpuOnly);
    cpu_dep.run(2);
    auto cpu_e = cpu_sys.measureEnergy();

    ReachSystem oc_sys{SystemConfig{}};
    CbirDeployment oc_dep(oc_sys, model, Mapping::OnChipOnly);
    oc_dep.run(2);
    auto oc_e = oc_sys.measureEnergy();

    double cpu_movement =
        cpu_e.total() - cpu_e[energy::Component::Acc];
    double oc_movement = oc_e.total() - oc_e[energy::Component::Acc];
    // Movement energy scales with (shorter) runtime but does not
    // vanish; it becomes the dominant share on-chip.
    EXPECT_GT(oc_movement / oc_e.total(), 0.5);
    EXPECT_LT(oc_e.total(), cpu_e.total());
    (void)cpu_movement;
}

TEST(CbirDeployment, ReverseLookupExtensionStage)
{
    // The optional 4th stage (the paper describes reverse lookup but
    // excludes it) adds near-storage fetch tasks and host IO traffic.
    cbir::ScaleConfig sc;
    sc.includeReverseLookup = true;
    cbir::CbirWorkloadModel model(sc);

    ReachSystem sys{SystemConfig{}};
    CbirDeployment dep(sys, model, Mapping::Reach);
    auto job = dep.makeBatchJob(0, nullptr);
    // 1 FE + 4 SL + 1 merge + 4 RR + 4 reverse-lookup.
    EXPECT_EQ(job.tasks.size(), 14u);

    RunResult with_rl = dep.run(2);
    EXPECT_EQ(with_rl.batches, 2u);

    // Without the stage the pipeline is faster.
    ReachSystem sys2{SystemConfig{}};
    CbirDeployment dep2(sys2, cbir::CbirWorkloadModel{cbir::ScaleConfig{}},
                        Mapping::Reach);
    RunResult without = dep2.run(2);
    EXPECT_GT(with_rl.meanLatency, without.meanLatency);
}

TEST(CbirDeployment, ReverseLookupWorkModel)
{
    cbir::ScaleConfig sc;
    cbir::CbirWorkloadModel model(sc);
    auto w = model.reverseLookupBatch(1);
    // batch * topK images at avgImageBytes each.
    EXPECT_EQ(w.bytesIn,
              std::uint64_t(16) * 10 * sc.avgImageBytes);
    EXPECT_EQ(w.bytesOut, w.bytesIn);
    // Table I: image store is hundreds of TB.
    EXPECT_GT(model.imageStoreBytes(), std::uint64_t(100) << 40);
}

TEST(RunResult, GoodputCountsCompletedBatchesOnly)
{
    RunResult r;
    r.batches = 4;
    r.completedBatches = 2;
    r.failedBatches = 2;
    r.makespan = sim::ticksFromSeconds(1.0);

    // Regression: throughput must be goodput (completed work), not
    // submission count — failed batches deliver nothing.
    EXPECT_DOUBLE_EQ(r.throughputBatchesPerSec(), 2.0);
    EXPECT_DOUBLE_EQ(r.offeredBatchesPerSec(), 4.0);
    EXPECT_DOUBLE_EQ(r.completionFraction(), 0.5);
    EXPECT_DOUBLE_EQ(r.queriesPerSec(16), 32.0);
    EXPECT_DOUBLE_EQ(r.offeredQueriesPerSec(16), 64.0);

    // Degenerate cases stay finite.
    RunResult empty;
    EXPECT_DOUBLE_EQ(empty.throughputBatchesPerSec(), 0.0);
    EXPECT_DOUBLE_EQ(empty.offeredBatchesPerSec(), 0.0);
    EXPECT_DOUBLE_EQ(empty.completionFraction(), 1.0);
}

TEST(CbirDeployment, FaultedRunReportsGoodputNotOffered)
{
    // Crash every attempt with no recovery: all batches fail, so
    // goodput is zero while offered load is not.
    SystemConfig sc;
    sc.faultPlan.accCrashProb = 1.0;
    sc.gam.maxTaskAttempts = 1;
    sc.gam.crossLevelFailover = false;
    sc.gam.recoveryDelay = 0;

    ReachSystem sys(sc);
    CbirDeployment dep(sys, paperModel(), Mapping::Reach);
    RunResult r = dep.run(3);

    EXPECT_EQ(r.batches, 3u);
    EXPECT_EQ(r.completedBatches, 0u);
    EXPECT_EQ(r.failedBatches, 3u);
    EXPECT_DOUBLE_EQ(r.throughputBatchesPerSec(), 0.0);
    EXPECT_GT(r.offeredBatchesPerSec(), 0.0);
}
