/**
 * @file
 * Tests of the ReACH runtime library (Listings 1-3): registration,
 * buffers, streams, job construction from host-style code, and
 * error handling.
 */

#include <gtest/gtest.h>

#include "core/runtime.hh"
#include "sim/logging.hh"

using namespace reach;
using namespace reach::core;

namespace
{

struct RuntimeFixture : ::testing::Test
{
    RuntimeFixture() : rt(SystemConfig{}) {}
    ReachRuntime rt;
};

} // namespace

TEST_F(RuntimeFixture, RegisterAccAtEachLevel)
{
    EXPECT_TRUE(rt.registerAcc("CNN-VU9P", Level::OnChip).valid());
    EXPECT_TRUE(rt.registerAcc("GeMM-ZCU9", Level::NearMem).valid());
    EXPECT_TRUE(rt.registerAcc("KNN-ZCU9", Level::NearStor).valid());
}

TEST_F(RuntimeFixture, UnknownTemplateIsFatal)
{
    EXPECT_THROW(rt.registerAcc("FFT-VU9P", Level::OnChip),
                 sim::SimFatal);
}

TEST_F(RuntimeFixture, CpuLevelRegistersTheHostCore)
{
    EXPECT_TRUE(rt.registerAcc("CNN-CPU", Level::Cpu).valid());
    // ...but there is only one host core.
    EXPECT_THROW(rt.registerAcc("GeMM-CPU", Level::Cpu),
                 sim::SimFatal);
}

TEST_F(RuntimeFixture, InstanceExhaustionIsFatal)
{
    rt.registerAcc("CNN-VU9P", Level::OnChip);
    EXPECT_THROW(rt.registerAcc("GeMM-VU9P", Level::OnChip),
                 sim::SimFatal);

    for (int i = 0; i < 4; ++i)
        rt.registerAcc("KNN-ZCU9", Level::NearStor);
    EXPECT_THROW(rt.registerAcc("KNN-ZCU9", Level::NearStor),
                 sim::SimFatal);
}

TEST_F(RuntimeFixture, BufferValidation)
{
    EXPECT_TRUE(
        rt.createFixedBuffer("./params", Level::OnChip, 1024).valid());
    EXPECT_THROW(rt.createFixedBuffer("./empty", Level::OnChip, 0),
                 sim::SimFatal);
}

TEST_F(RuntimeFixture, StreamValidation)
{
    EXPECT_TRUE(rt.createStream(Level::Cpu, Level::OnChip,
                                StreamType::Pair, 4096, 4)
                    .valid());
    EXPECT_THROW(rt.createStream(Level::OnChip, Level::OnChip,
                                 StreamType::Pair, 4096, 4),
                 sim::SimFatal);
    EXPECT_THROW(rt.createStream(Level::Cpu, Level::OnChip,
                                 StreamType::Pair, 4096, 0),
                 sim::SimFatal);
}

TEST_F(RuntimeFixture, EnqueueOnlyOnCpuSourcedStreams)
{
    auto down = rt.createStream(Level::OnChip, Level::NearStor,
                                StreamType::BroadCast, 64, 2);
    EXPECT_THROW(rt.enqueue(down), sim::SimFatal);
}

TEST_F(RuntimeFixture, ListingStyleProgramRuns)
{
    // Listing 2: configuration.
    auto vgg_param =
        rt.createFixedBuffer("./vgg16_param", Level::OnChip,
                             11'300'000);
    auto db0 = rt.createFixedBuffer("./feature_db0", Level::NearStor,
                                    64 << 20);
    auto input = rt.createStream(Level::Cpu, Level::OnChip,
                                 StreamType::Pair, 16 * 150528, 4);
    auto features = rt.createStream(Level::OnChip, Level::NearStor,
                                    StreamType::BroadCast, 16 * 384,
                                    4);

    auto cnn = rt.registerAcc("CNN-VU9P", Level::OnChip);
    cnn.setArgs(0, input);
    cnn.setArgs(1, vgg_param);
    cnn.setArgs(2, features);

    auto knn0 = rt.registerAcc("KNN-ZCU9", Level::NearStor);
    knn0.setArgs(0, features);
    knn0.setArgs(1, db0);

    // Listing 3: host loop.
    rt.setBatchBudget(3);
    int iterations = 0;
    while (rt.enqueue(input)) {
        cnn.execute(0);
        knn0.execute(0);
        ++iterations;
    }
    EXPECT_EQ(iterations, 3);

    sim::Tick end = rt.run();
    EXPECT_GT(end, 0u);
    EXPECT_EQ(rt.jobsSubmitted(), 3u);
    EXPECT_TRUE(rt.system().gam().idle());
}

TEST_F(RuntimeFixture, ConsumerWithoutProducerIsFatal)
{
    auto features = rt.createStream(Level::OnChip, Level::NearStor,
                                    StreamType::BroadCast, 4096, 2);
    auto knn = rt.registerAcc("KNN-ZCU9", Level::NearStor);
    knn.setArgs(0, features);

    auto input = rt.createStream(Level::Cpu, Level::OnChip,
                                 StreamType::Pair, 64, 2);
    rt.setBatchBudget(1);
    ASSERT_TRUE(rt.enqueue(input));
    // knn consumes `features` but nothing produced it in this job.
    EXPECT_THROW(knn.execute(0), sim::SimFatal);
}

TEST_F(RuntimeFixture, WorkOverrideChangesTaskDuration)
{
    auto input = rt.createStream(Level::Cpu, Level::OnChip,
                                 StreamType::Pair, 64, 2);
    auto cnn = rt.registerAcc("CNN-VU9P", Level::OnChip);
    cnn.setArgs(0, input);

    rt.setBatchBudget(1);
    acc::WorkUnit heavy;
    heavy.ops = 5e9;
    cnn.setWork(heavy);
    ASSERT_TRUE(rt.enqueue(input));
    cnn.execute(0);
    sim::Tick t_heavy = rt.run();
    EXPECT_GT(t_heavy,
              acc::findKernel("CNN-VU9P").computeTicks(4e9));
}

TEST_F(RuntimeFixture, CollectStreamSplitsBytesAcrossProducers)
{
    auto input = rt.createStream(Level::Cpu, Level::NearStor,
                                 StreamType::BroadCast, 4096, 2);
    auto result = rt.createStream(Level::NearStor, Level::NearMem,
                                  StreamType::Collect, 8192, 2);

    auto knn0 = rt.registerAcc("KNN-ZCU9", Level::NearStor);
    auto knn1 = rt.registerAcc("KNN-ZCU9", Level::NearStor);
    knn0.setArgs(0, input);
    knn0.setArgs(2, result);
    knn1.setArgs(0, input);
    knn1.setArgs(2, result);

    auto merge = rt.registerAcc("GeMM-ZCU9", Level::NearMem);
    merge.setArgs(0, result);

    rt.setBatchBudget(1);
    ASSERT_TRUE(rt.enqueue(input));
    knn0.execute(0);
    knn1.execute(0);
    merge.execute(0);
    EXPECT_GT(rt.run(), 0u);
    EXPECT_EQ(rt.system().gam().jobsCompleted(), 1u);
}

TEST_F(RuntimeFixture, JobsPipelineAcrossIterations)
{
    auto input = rt.createStream(Level::Cpu, Level::OnChip,
                                 StreamType::Pair, 1024, 4);
    auto cnn = rt.registerAcc("CNN-VU9P", Level::OnChip);
    cnn.setArgs(0, input);

    rt.setBatchBudget(5);
    while (rt.enqueue(input))
        cnn.execute(0);
    rt.run();
    EXPECT_EQ(rt.jobsSubmitted(), 5u);
    EXPECT_EQ(rt.system().gam().jobsCompleted(), 5u);
}

TEST_F(RuntimeFixture, SetArgsValidatesHandles)
{
    auto cnn = rt.registerAcc("CNN-VU9P", Level::OnChip);
    EXPECT_THROW(cnn.setArgs(0, BufferHandle{}), sim::SimFatal);
    EXPECT_THROW(cnn.setArgs(0, StreamHandle{}), sim::SimFatal);
}

TEST(AccHandleTest, InvalidHandleOperationsAreFatal)
{
    AccHandle h;
    EXPECT_FALSE(h.valid());
    EXPECT_THROW(h.execute(0), sim::SimFatal);
    EXPECT_THROW(h.setWork(acc::WorkUnit{}), sim::SimFatal);
}

TEST_F(RuntimeFixture, StreamDepthBoundsInflightJobs)
{
    // A depth-2 stream must keep at most 2 loop iterations in
    // flight; the rest wait in the runtime's backlog and still all
    // complete.
    auto input = rt.createStream(Level::Cpu, Level::OnChip,
                                 StreamType::Pair, 1024, 2);
    auto cnn = rt.registerAcc("CNN-VU9P", Level::OnChip);
    cnn.setArgs(0, input);
    acc::WorkUnit w;
    w.ops = 1e9;
    cnn.setWork(w);

    rt.setBatchBudget(6);
    while (rt.enqueue(input))
        cnn.execute(0);
    rt.run();
    EXPECT_EQ(rt.jobsSubmitted(), 6u);
    EXPECT_TRUE(rt.system().gam().idle());
}

TEST_F(RuntimeFixture, DeepStreamsAllowMoreOverlap)
{
    // Same work, depth 1 vs depth 8: the deeper stream pipelines
    // iterations across levels and finishes sooner.
    auto run_with_depth = [](std::uint32_t depth) {
        ReachRuntime r{SystemConfig{}};
        auto input = r.createStream(Level::Cpu, Level::OnChip,
                                    StreamType::Pair, 1024, depth);
        auto feat = r.createStream(Level::OnChip, Level::NearMem,
                                   StreamType::BroadCast, 1024,
                                   depth);
        auto cnn = r.registerAcc("CNN-VU9P", Level::OnChip);
        cnn.setArgs(0, input);
        cnn.setArgs(2, feat);
        acc::WorkUnit cw;
        cw.ops = 5e8;
        cnn.setWork(cw);
        auto gemm = r.registerAcc("GeMM-ZCU9", Level::NearMem);
        gemm.setArgs(0, feat);
        acc::WorkUnit gw;
        gw.ops = 1e7;
        gemm.setWork(gw);

        r.setBatchBudget(8);
        while (r.enqueue(input)) {
            cnn.execute(0);
            gemm.execute(0);
        }
        return r.run();
    };

    sim::Tick shallow = run_with_depth(1);
    sim::Tick deep = run_with_depth(8);
    EXPECT_LT(deep, shallow);
}

TEST_F(RuntimeFixture, CpuBoundStreamGetsHostProcessingTask)
{
    // Listing 3's process(Result.dequeue()): a Collect stream ending
    // at the CPU spawns a host post-processing task that depends on
    // all producers, so the job completes only after the host has
    // consumed the results.
    auto input = rt.createStream(Level::Cpu, Level::NearStor,
                                 StreamType::BroadCast, 4096, 2);
    auto result = rt.createStream(Level::NearStor, Level::Cpu,
                                  StreamType::Collect, 8192, 2);

    auto knn0 = rt.registerAcc("KNN-ZCU9", Level::NearStor);
    auto knn1 = rt.registerAcc("KNN-ZCU9", Level::NearStor);
    knn0.setArgs(0, input);
    knn0.setArgs(2, result);
    knn1.setArgs(0, input);
    knn1.setArgs(2, result);

    rt.setBatchBudget(2);
    while (rt.enqueue(input)) {
        knn0.execute(0);
        knn1.execute(0);
    }
    rt.run();

    EXPECT_TRUE(rt.system().gam().idle());
    // The host core ran one processing task per job.
    EXPECT_EQ(rt.system().hostCore().tasksCompleted(), 2u);
}
