/**
 * @file
 * Tests of the assembled machine: Table II topology, calibrated
 * bandwidths, GAM wiring and transfer paths.
 */

#include <gtest/gtest.h>

#include "core/reach_system.hh"
#include "sim/logging.hh"

using namespace reach;
using namespace reach::core;

namespace
{

SystemConfig
paperConfig()
{
    return SystemConfig{}; // defaults follow Table II
}

} // namespace

TEST(ReachSystem, TableTwoTopology)
{
    ReachSystem sys(paperConfig());
    EXPECT_TRUE(sys.hasOnChip());
    EXPECT_EQ(sys.numAims(), 4u);
    EXPECT_EQ(sys.numNs(), 4u);
    EXPECT_EQ(sys.memory().numChannels(), 2u);
    // 4 host + 4 AIM DIMMs over 2 channels.
    EXPECT_EQ(sys.memory().dimmsPerChannel(), 4u);
}

TEST(ReachSystem, GamKnowsAllAccelerators)
{
    ReachSystem sys(paperConfig());
    // on-chip + host core + 4 AIM + 4 NS.
    EXPECT_EQ(sys.gam().numAccelerators(), 10u);
    EXPECT_EQ(sys.gam().acceleratorsAt(acc::Level::NearMem).size(),
              4u);
    EXPECT_EQ(sys.gam().acceleratorsAt(acc::Level::NearStor).size(),
              4u);
}

TEST(ReachSystem, CalibratedHostBandwidthInRange)
{
    ReachSystem sys(paperConfig());
    // Two DDR4-2400 channels: mid-30s GB/s sustained.
    EXPECT_GT(sys.hostDramBandwidth(), 30e9);
    EXPECT_LT(sys.hostDramBandwidth(), 38.4e9);
}

TEST(ReachSystem, PinnedBandwidthSkipsCalibration)
{
    SystemConfig cfg = paperConfig();
    cfg.hostDramStreamBw = 20e9;
    ReachSystem sys(cfg);
    EXPECT_DOUBLE_EQ(sys.hostDramBandwidth(), 20e9);
}

TEST(ReachSystem, NoOnChipConfigSupported)
{
    SystemConfig cfg = paperConfig();
    cfg.hasOnChipAcc = false;
    ReachSystem sys(cfg);
    EXPECT_FALSE(sys.hasOnChip());
    EXPECT_THROW(sys.onChip(), sim::SimFatal);
    EXPECT_EQ(sys.gam().numAccelerators(), 9u);
}

TEST(ReachSystem, ScaledInstanceCounts)
{
    SystemConfig cfg = paperConfig();
    cfg.numAimModules = 16;
    cfg.numSsds = 16;
    ReachSystem sys(cfg);
    EXPECT_EQ(sys.numAims(), 16u);
    EXPECT_EQ(sys.numNs(), 16u);
    // 4 host + 16 AIM DIMMs over 2 channels = 10 per channel.
    EXPECT_EQ(sys.memory().dimmsPerChannel(), 10u);
}

TEST(ReachSystem, AimModulesAttachToDistinctDimms)
{
    ReachSystem sys(paperConfig());
    std::set<const mem::Dimm *> dimms;
    for (std::uint32_t i = 0; i < sys.numAims(); ++i)
        dimms.insert(&sys.aim(i).dimm());
    EXPECT_EQ(dimms.size(), sys.numAims());
}

TEST(ReachSystem, NsModulesAttachToDistinctSsds)
{
    ReachSystem sys(paperConfig());
    std::set<const storage::Ssd *> ssds;
    for (std::uint32_t i = 0; i < sys.numNs(); ++i)
        ssds.insert(&sys.ns(i).ssd());
    EXPECT_EQ(ssds.size(), sys.numNs());
}

TEST(ReachSystem, TransferPathsNonEmptyBetweenLevels)
{
    ReachSystem sys(paperConfig());
    const acc::Accelerator *oc = &sys.onChip();
    const acc::Accelerator *nm = &sys.aim(0);
    const acc::Accelerator *ns = &sys.ns(1);

    EXPECT_FALSE(sys.pathBetween(nullptr, oc).empty());
    EXPECT_FALSE(sys.pathBetween(oc, nm).empty());
    EXPECT_FALSE(sys.pathBetween(oc, ns).empty());
    EXPECT_FALSE(sys.pathBetween(nm, ns).empty());
    EXPECT_FALSE(sys.pathBetween(nm, nullptr).empty());
    EXPECT_FALSE(sys.pathBetween(ns, nullptr).empty());
    EXPECT_FALSE(sys.pathBetween(nm, nm).empty()); // AIMbus
}

TEST(ReachSystem, CrossLevelTransferSlowerThanCoherent)
{
    ReachSystem sys(paperConfig());
    // NS->NS must cross the host IO switch: slower than on-chip.
    acc::Path coherent = sys.pathBetween(nullptr, nullptr);
    acc::Path ns2ns = sys.pathBetween(&sys.ns(0), &sys.ns(1));
    EXPECT_GT(coherent.bottleneckBandwidth(),
              ns2ns.bottleneckBandwidth());
}

TEST(ReachSystem, EnergyMeasureCoversComponents)
{
    ReachSystem sys(paperConfig());
    // Idle machine for 10 ms: background DRAM + idle SSD power only.
    sys.simulator().events().schedule(10 * sim::tickPerMs, [] {});
    sys.simulator().run();
    auto e = sys.measureEnergy();
    EXPECT_GT(e[energy::Component::Dram], 0.0);
    EXPECT_GT(e[energy::Component::Ssd], 0.0);
    EXPECT_DOUBLE_EQ(e[energy::Component::Pcie], 0.0);
}

TEST(ReachSystem, FlushHookDrivesHostDram)
{
    ReachSystem sys(paperConfig());
    std::uint64_t before = sys.hostDramLink().bytesMoved();
    // Submit a two-level job: on-chip producer -> NM consumer forces
    // a writeback through the host DRAM link.
    gam::JobDesc job;
    gam::TaskDesc a;
    a.label = "p";
    a.kernelTemplate = "CNN-VU9P";
    a.level = acc::Level::OnChip;
    a.work.ops = 1e6;
    gam::TaskDesc b;
    b.label = "c";
    b.kernelTemplate = "GeMM-ZCU9";
    b.level = acc::Level::NearMem;
    b.deps = {0};
    b.inbound.push_back({0, 1 << 20});
    job.tasks = {a, b};
    sys.gam().submitJob(std::move(job));
    sys.runUntilIdle();
    EXPECT_GT(sys.hostDramLink().bytesMoved(), before);
}

TEST(ReachSystem, ConfigValidation)
{
    SystemConfig bad;
    bad.numSsds = 0;
    EXPECT_THROW(ReachSystem{bad}, sim::SimFatal);

    SystemConfig bad2;
    bad2.hostDimms = 1;
    bad2.numChannels = 2;
    EXPECT_THROW(ReachSystem{bad2}, sim::SimFatal);

    SystemConfig bad3;
    bad3.numAimModules = 100;
    EXPECT_THROW(ReachSystem{bad3}, sim::SimFatal);
}

TEST(ReachSystem, TaskObserverSeesEveryCompletion)
{
    ReachSystem sys{SystemConfig{}};
    std::vector<gam::Gam::TaskEvent> events;
    sys.gam().setTaskObserver(
        [&events](const gam::Gam::TaskEvent &e) {
            events.push_back(e);
        });

    gam::JobDesc job;
    gam::TaskDesc a;
    a.label = "first";
    a.kernelTemplate = "CNN-VU9P";
    a.level = acc::Level::OnChip;
    a.work.ops = 1e8;
    gam::TaskDesc b;
    b.label = "second";
    b.kernelTemplate = "GeMM-ZCU9";
    b.level = acc::Level::NearMem;
    b.deps = {0};
    job.tasks = {a, b};
    sys.gam().submitJob(std::move(job));
    sys.runUntilIdle();

    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].label, "first");
    EXPECT_EQ(events[1].label, "second");
    for (const auto &e : events) {
        EXPECT_LE(e.dispatched, e.finished);
        EXPECT_LE(e.finished, e.observed);
        EXPECT_FALSE(e.accName.empty());
    }
    // On-chip interrupts: observation == finish. Near-data polls:
    // observation strictly after finish (status round trip).
    EXPECT_EQ(events[0].observed, events[0].finished);
    EXPECT_GT(events[1].observed, events[1].finished);
}

TEST(ReachSystem, HostTrafficProceedsDuringAimOwnership)
{
    // Memory-space isolation (paper §III-B): the host region and the
    // AIM regions live on different DIMMs, so CPU-side cache traffic
    // flows while every AIM module owns its DIMM.
    ReachSystem sys{SystemConfig{}};
    for (std::uint32_t i = 0; i < sys.numAims(); ++i)
        sys.aim(i).dimm().setAccOwned(true);

    int done = 0;
    for (int i = 0; i < 32; ++i) {
        sys.llc().access(static_cast<mem::Addr>(i) * 4096, false,
                         mem::Requester::Cpu,
                         [&done](sim::Tick) { ++done; });
    }
    sys.simulator().run();
    EXPECT_EQ(done, 32);

    for (std::uint32_t i = 0; i < sys.numAims(); ++i)
        sys.aim(i).dimm().setAccOwned(false);
}
