/**
 * @file
 * Integration tests: functional CBIR retrieval end-to-end (images ->
 * features -> index -> shortlist -> rerank -> recall) combined with
 * the timing simulation of the same pipeline on the full machine.
 */

#include <gtest/gtest.h>

#include "cbir/mini_cnn.hh"
#include "cbir/pca.hh"
#include "cbir/rerank.hh"
#include "cbir/shortlist.hh"
#include "core/cbir_deployment.hh"
#include "workload/dataset.hh"

using namespace reach;

TEST(EndToEnd, FunctionalImagePipelineRecall)
{
    // Build a small image database with class structure, extract CNN
    // features, compress with PCA, index with k-means, and check
    // that retrieval returns same-class images.
    cbir::MiniCnnConfig ccfg;
    ccfg.featureDim = 64;
    cbir::MiniCnn cnn(ccfg);

    const int classes = 8, per_class = 12;
    std::vector<cbir::Image> images;
    std::vector<int> labels;
    for (int c = 0; c < classes; ++c) {
        for (int i = 0; i < per_class; ++i) {
            images.push_back(cbir::makeSyntheticImage(
                static_cast<std::uint32_t>(c), 40'000 + c * 131 + i));
            labels.push_back(c);
        }
    }
    cbir::Matrix raw = cnn.extractBatch(images);

    // PCA compression (the paper compresses to D=96; here D=16).
    cbir::Pca pca(raw, 16);
    cbir::Matrix feats = pca.transform(raw);

    cbir::KMeansConfig kc;
    kc.clusters = 12;
    cbir::InvertedFileIndex index(feats, kc);

    // Queries: fresh images of known classes.
    std::vector<cbir::Image> qimgs;
    for (int c = 0; c < classes; ++c)
        qimgs.push_back(cbir::makeSyntheticImage(
            static_cast<std::uint32_t>(c), 90'000 + c));
    cbir::Matrix queries = pca.transform(cnn.extractBatch(qimgs));

    auto lists = cbir::shortlistRetrieve(queries, index, 4);
    cbir::RerankConfig rcfg;
    rcfg.k = 5;
    rcfg.maxCandidates = 0;
    auto results = cbir::rerank(queries, feats, index, lists, rcfg);

    // Majority of top-5 should share the query's class.
    int votes_correct = 0, votes_total = 0;
    for (int c = 0; c < classes; ++c) {
        for (const auto &n : results[static_cast<std::size_t>(c)]) {
            ++votes_total;
            votes_correct += (labels[n.id] == c);
        }
    }
    EXPECT_GT(static_cast<double>(votes_correct) / votes_total, 0.6);
}

TEST(EndToEnd, ShortlistPruningRecallVsBruteForce)
{
    workload::DatasetConfig dc;
    dc.numVectors = 2000;
    dc.dim = 24;
    dc.latentClusters = 25;
    workload::Dataset ds(dc);

    cbir::KMeansConfig kc;
    kc.clusters = 40;
    cbir::InvertedFileIndex index(ds.vectors(), kc);
    cbir::Matrix queries = ds.makeQueries(16, 0.05, 999);

    auto truth = cbir::bruteForce(queries, ds.vectors(), 10);

    auto lists = cbir::shortlistRetrieve(queries, index, 8);
    cbir::RerankConfig rcfg;
    rcfg.k = 10;
    rcfg.maxCandidates = 4096;
    auto got = cbir::rerank(queries, ds.vectors(), index, lists, rcfg);

    // The paper preserves recall by probing clusters instead of
    // compressing vectors; with nprobe=8/40 recall should be high.
    EXPECT_GT(cbir::recallAtK(got, truth, 10), 0.85);
}

TEST(EndToEnd, Fp16ShortlistPreservesRecallVsBruteForce)
{
    // The same pipeline as above with the scan reading the packed
    // binary16 centroid stream: recall must stay high — the paper's
    // bandwidth saving cannot come out of answer quality. Also the
    // ASan-facing end-to-end exercise of the fp16 kernels over the
    // aligned packed buffers.
    workload::DatasetConfig dc;
    dc.numVectors = 2000;
    dc.dim = 24;
    dc.latentClusters = 25;
    workload::Dataset ds(dc);

    cbir::KMeansConfig kc;
    kc.clusters = 40;
    cbir::InvertedFileIndex index(ds.vectors(), kc);
    cbir::Matrix queries = ds.makeQueries(16, 0.05, 999);

    auto truth = cbir::bruteForce(queries, ds.vectors(), 10);

    auto lists = cbir::shortlistRetrieve(
        queries, index, 8, {}, cbir::ShortlistPrecision::Fp16);
    cbir::RerankConfig rcfg;
    rcfg.k = 10;
    rcfg.maxCandidates = 4096;
    auto got = cbir::rerank(queries, ds.vectors(), index, lists, rcfg);
    double recall16 = cbir::recallAtK(got, truth, 10);
    EXPECT_GT(recall16, 0.85);

    // And the fp16 lists track the fp32 lists closely enough that
    // end recall matches to within the harness gate.
    auto lists32 = cbir::shortlistRetrieve(queries, index, 8);
    auto got32 =
        cbir::rerank(queries, ds.vectors(), index, lists32, rcfg);
    double recall32 = cbir::recallAtK(got32, truth, 10);
    EXPECT_NEAR(recall16, recall32, 0.05);
}

TEST(EndToEnd, TimingAndFunctionalScalesAgree)
{
    // The workload model's Table-I numbers must match the functional
    // layer's per-vector sizes.
    cbir::ScaleConfig sc;
    cbir::CbirWorkloadModel model(sc);
    EXPECT_EQ(model.featureVectorBytes(), sc.dim * 4u);
    EXPECT_EQ(model.databaseBytes(),
              sc.databaseVectors * sc.dim * 4u);
}

TEST(EndToEnd, FullMachineRunsAllMappingsBackToBack)
{
    cbir::CbirWorkloadModel model{cbir::ScaleConfig{}};
    core::ReachSystem sys{core::SystemConfig{}};

    // Run two mappings on the SAME machine instance sequentially;
    // the GAM must drain cleanly between them.
    core::CbirDeployment onchip(sys, model,
                                core::Mapping::OnChipOnly);
    auto r1 = onchip.run(2);
    EXPECT_EQ(r1.batches, 2u);
    EXPECT_TRUE(sys.gam().idle());

    core::CbirDeployment reach(sys, model, core::Mapping::Reach);
    auto r2 = reach.run(2);
    EXPECT_EQ(r2.batches, 2u);
    EXPECT_TRUE(sys.gam().idle());

    // Energy accumulated over both runs.
    EXPECT_GT(sys.measureEnergy().total(), 0.0);
}

TEST(EndToEnd, DataMovementDominatesOnChipEnergy)
{
    // Fig 8's qualitative claim: for on-chip-only CBIR most energy
    // is data movement (everything except the ACC component).
    cbir::CbirWorkloadModel model{cbir::ScaleConfig{}};
    core::ReachSystem sys{core::SystemConfig{}};
    core::CbirDeployment dep(sys, model, core::Mapping::OnChipOnly);
    dep.run(6);
    auto e = sys.measureEnergy();
    double movement = e.total() - e[energy::Component::Acc];
    EXPECT_GT(movement / e.total(), 0.5);
}

TEST(EndToEnd, GamMovesOnlySmallDataInReachMapping)
{
    // Section IV-B: "the only data movement required is the user
    // query vector and retrieved short-list" — GAM DMA traffic in
    // the ReACH mapping must be tiny compared with the single-level
    // mappings' streaming traffic.
    cbir::CbirWorkloadModel model{cbir::ScaleConfig{}};

    core::ReachSystem sys{core::SystemConfig{}};
    core::CbirDeployment dep(sys, model, core::Mapping::Reach);
    dep.run(4);

    std::uint64_t dma = sys.gam().bytesMoved();
    // Per batch: images (~2.4 MB) + features + candidate ids.
    EXPECT_LT(dma, std::uint64_t(64) << 20);
    EXPECT_GT(dma, std::uint64_t(1) << 20);
}

TEST(EndToEnd, PhysicalInvariantsHoldAfterReachRun)
{
    cbir::CbirWorkloadModel model{cbir::ScaleConfig{}};
    core::ReachSystem sys{core::SystemConfig{}};
    core::CbirDeployment dep(sys, model, core::Mapping::Reach);
    dep.run(6);

    sim::Tick horizon = sys.simulator().now();

    // No link can have been busy longer than simulated time.
    auto check_link = [&](noc::Link &l) {
        EXPECT_LE(l.busyTicks(), horizon) << l.name();
        EXPECT_LE(l.utilization(), 1.0001) << l.name();
    };
    check_link(sys.hostDramLink());
    check_link(sys.cacheLink());
    check_link(sys.hostIoUplink());
    check_link(sys.aimBusLink());
    for (std::uint32_t i = 0; i < sys.numAims(); ++i)
        check_link(sys.aimLocalLink(i));
    for (std::uint32_t i = 0; i < sys.numNs(); ++i) {
        check_link(sys.nsLocalLink(i));
        check_link(sys.ssdHostLink(i));
    }

    // Every dispatched task ran on exactly one device.
    std::uint64_t ran = sys.onChip().tasksCompleted() +
                        sys.hostCore().tasksCompleted();
    for (std::uint32_t i = 0; i < sys.numAims(); ++i)
        ran += sys.aim(i).tasksCompleted();
    for (std::uint32_t i = 0; i < sys.numNs(); ++i)
        ran += sys.ns(i).tasksCompleted();
    EXPECT_EQ(ran, sys.gam().tasksDispatched());

    // Energy components are all non-negative and total is finite.
    auto e = sys.measureEnergy();
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(
                 energy::Component::NumComponents);
         ++c) {
        EXPECT_GE(e[static_cast<energy::Component>(c)], 0.0);
    }
    EXPECT_GT(e.total(), 0.0);
    EXPECT_LT(e.total(), 1e6);
}

TEST(EndToEnd, DeterministicAcrossIdenticalRuns)
{
    auto run_once = [] {
        cbir::CbirWorkloadModel model{cbir::ScaleConfig{}};
        core::ReachSystem sys{core::SystemConfig{}};
        core::CbirDeployment dep(sys, model, core::Mapping::Reach);
        auto r = dep.run(5);
        return std::make_tuple(r.makespan, r.meanLatency,
                               sys.simulator().eventsExecuted(),
                               sys.measureEnergy().total());
    };
    auto a = run_once();
    auto b = run_once();
    EXPECT_EQ(std::get<0>(a), std::get<0>(b));
    EXPECT_EQ(std::get<1>(a), std::get<1>(b));
    EXPECT_EQ(std::get<2>(a), std::get<2>(b));
    EXPECT_DOUBLE_EQ(std::get<3>(a), std::get<3>(b));
}
