/**
 * @file
 * Fault-seeded end-to-end CBIR runs: with injection enabled on the
 * full machine, every batch must either complete or fail explicitly
 * (never hang), retrieval answers must be identical to the
 * fault-free run, and the whole fault + recovery schedule must be
 * deterministic for a fixed plan and seed.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/cbir_deployment.hh"
#include "core/cosim.hh"

using namespace reach;
using namespace reach::core;

namespace
{

/** A fault plan aggressive enough to exercise every recovery path. */
SystemConfig
faultedConfig(std::uint64_t seed = fault::FaultPlan::defaultSeed)
{
    SystemConfig cfg;
    cfg.faultPlan.seed = seed;
    cfg.faultPlan.accCrashProb = 0.01;
    cfg.faultPlan.accHangProb = 0.02;
    cfg.faultPlan.pollDropProb = 0.05;
    cfg.faultPlan.linkStallProb = 0.01;
    cfg.faultPlan.ssdTimeoutProb = 0.01;
    cfg.gam.recoveryDelay = 5 * sim::tickPerMs;
    return cfg;
}

CbirService::Config
smallService()
{
    CbirService::Config cfg;
    cfg.dataset.numVectors = 3000;
    cfg.dataset.dim = 24;
    cfg.dataset.latentClusters = 20;
    cfg.kmeans.clusters = 32;
    cfg.kmeans.maxIterations = 8;
    cfg.nprobe = 6;
    cfg.topK = 10;
    return cfg;
}

cbir::ScaleConfig
smallScale()
{
    cbir::ScaleConfig sc;
    sc.batchSize = 8;
    return sc;
}

} // namespace

TEST(FaultedCbir, EveryBatchCompletesOrFailsExplicitly)
{
    cbir::CbirWorkloadModel model{cbir::ScaleConfig{}};
    ReachSystem sys{faultedConfig(fault::envFaultSeed())};
    ASSERT_NE(sys.faultInjector(), nullptr);

    CbirDeployment dep(sys, model, Mapping::Reach);
    auto r = dep.run(12); // returning at all proves no hang

    EXPECT_EQ(r.completedBatches + r.failedBatches, r.batches);
    EXPECT_TRUE(sys.gam().idle());
    // With retry + failover the vast majority of batches survive.
    EXPECT_GT(r.completionFraction(), 0.5);
    // The plan is aggressive enough that recovery actually ran.
    EXPECT_GT(sys.gam().taskRetries() + sys.gam().pollRetries(), 0u);
}

TEST(FaultedCbir, AnswersMatchFaultFreeRun)
{
    // The functional layer answers queries exactly; fault injection
    // lives in the timing layer, so the retrieved top-K of a faulted
    // co-simulation must be bit-identical to the fault-free one.
    cbir::Matrix queries;
    cbir::RerankResults clean_results;
    {
        CoSimulation clean(smallService(), smallScale(),
                           Mapping::Reach);
        queries =
            clean.service().dataset().makeQueries(8, 0.05, 31);
        clean_results = clean.processBatch(queries).results;
    }

    CoSimulation faulted(smallService(), smallScale(), Mapping::Reach,
                         faultedConfig());
    CoSimBatch batch = faulted.processBatch(queries);

    ASSERT_EQ(batch.results.size(), clean_results.size());
    for (std::size_t q = 0; q < clean_results.size(); ++q)
        EXPECT_EQ(batch.results[q], clean_results[q]);
    EXPECT_GT(batch.latency, 0u);
}

TEST(FaultedCbir, FaultScheduleIsDeterministic)
{
    auto run_once = [] {
        cbir::CbirWorkloadModel model{cbir::ScaleConfig{}};
        ReachSystem sys{faultedConfig(1234)};
        CbirDeployment dep(sys, model, Mapping::Reach);
        auto r = dep.run(8);
        return std::make_tuple(
            r.completedBatches, r.failedBatches, r.makespan,
            sys.gam().taskRetries(), sys.gam().deadlineMisses(),
            sys.gam().pollRetries(), sys.gam().quarantines(),
            sys.gam().recoveries(),
            sys.simulator().eventsExecuted());
    };
    auto a = run_once();
    auto b = run_once();
    EXPECT_EQ(a, b);
}

TEST(FaultedCbir, SeedChangesScheduleNotCorrectness)
{
    auto run_seed = [](std::uint64_t seed) {
        cbir::CbirWorkloadModel model{cbir::ScaleConfig{}};
        ReachSystem sys{faultedConfig(seed)};
        CbirDeployment dep(sys, model, Mapping::Reach);
        auto r = dep.run(6);
        EXPECT_EQ(r.completedBatches + r.failedBatches, r.batches);
        EXPECT_TRUE(sys.gam().idle());
        return sys.simulator().eventsExecuted();
    };
    // Both seeds drain cleanly; the schedules themselves differ.
    EXPECT_NE(run_seed(1), run_seed(2));
}

TEST(FaultedCbir, AvailabilityAndEnergyReflectRecoveryWork)
{
    cbir::CbirWorkloadModel model{cbir::ScaleConfig{}};

    double clean_energy = 0;
    std::uint64_t clean_polls = 0;
    {
        ReachSystem sys{SystemConfig{}};
        CbirDeployment dep(sys, model, Mapping::Reach);
        dep.run(8);
        clean_energy = sys.measureEnergy().total();
        clean_polls = sys.gam().statusPolls();
        EXPECT_DOUBLE_EQ(sys.gam().availability(acc::Level::NearMem),
                         1.0);
    }

    ReachSystem sys{faultedConfig(77)};
    CbirDeployment dep(sys, model, Mapping::Reach);
    dep.run(8);

    // Retries and re-polls are real control traffic: the faulted run
    // polls more and its control energy is charged accordingly.
    EXPECT_GT(sys.gam().statusPolls(), clean_polls);
    EXPECT_GT(sys.measureEnergy().total(), 0.0);
    (void)clean_energy;

    for (acc::Level l :
         {acc::Level::OnChip, acc::Level::Cpu, acc::Level::NearMem,
          acc::Level::NearStor}) {
        double avail = sys.gam().availability(l);
        EXPECT_GE(avail, 0.0);
        EXPECT_LE(avail, 1.0);
    }
}
