/**
 * @file
 * Unit tests for the parallel execution layer: chunk coverage,
 * degenerate ranges, exception propagation, nesting, and the
 * chunk-ordered reduce.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "parallel/parallel.hh"
#include "sim/rng.hh"

using namespace reach;
using namespace reach::parallel;

TEST(ParallelFor, EmptyRangeNeverInvokes)
{
    ParallelConfig cfg{4};
    bool called = false;
    parallelFor(
        5, 5, 2, [&](std::size_t, std::size_t) { called = true; },
        cfg);
    parallelFor(
        7, 3, 2, [&](std::size_t, std::size_t) { called = true; },
        cfg);
    EXPECT_FALSE(called);
}

TEST(ParallelFor, GrainLargerThanRangeIsOneChunk)
{
    ParallelConfig cfg{4};
    std::atomic<int> calls{0};
    std::size_t got_b = 99, got_e = 0;
    parallelFor(
        3, 10, 1000,
        [&](std::size_t b, std::size_t e) {
            ++calls;
            got_b = b;
            got_e = e;
        },
        cfg);
    EXPECT_EQ(calls.load(), 1);
    EXPECT_EQ(got_b, 3u);
    EXPECT_EQ(got_e, 10u);
}

TEST(ParallelFor, CoversRangeExactlyOnce)
{
    ParallelConfig cfg{4};
    std::vector<std::atomic<int>> hits(1000);
    parallelFor(
        0, hits.size(), 7,
        [&](std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i)
                ++hits[i];
        },
        cfg);
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroGrainTreatedAsOne)
{
    ParallelConfig cfg{2};
    std::atomic<int> sum{0};
    parallelFor(
        0, 10, 0,
        [&](std::size_t b, std::size_t e) {
            sum += static_cast<int>(e - b);
        },
        cfg);
    EXPECT_EQ(sum.load(), 10);
}

TEST(ParallelFor, MoreThreadsThanChunks)
{
    ParallelConfig cfg{16};
    std::vector<std::atomic<int>> hits(3);
    parallelFor(
        0, hits.size(), 1,
        [&](std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i)
                ++hits[i];
        },
        cfg);
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ExceptionPropagatesFromWorkerChunk)
{
    ParallelConfig cfg{4};
    auto boom = [&] {
        parallelFor(
            0, 100, 1,
            [&](std::size_t b, std::size_t) {
                if (b == 57)
                    throw std::runtime_error("chunk 57 failed");
            },
            cfg);
    };
    EXPECT_THROW(boom(), std::runtime_error);

    // The pool must stay usable after a failed job.
    std::atomic<int> sum{0};
    parallelFor(
        0, 100, 1,
        [&](std::size_t b, std::size_t e) {
            sum += static_cast<int>(e - b);
        },
        cfg);
    EXPECT_EQ(sum.load(), 100);
}

TEST(ParallelFor, ExceptionPropagatesOnSerialPath)
{
    ParallelConfig cfg{1};
    auto boom = [&] {
        parallelFor(
            0, 10, 1,
            [&](std::size_t b, std::size_t) {
                if (b == 3)
                    throw std::runtime_error("serial failure");
            },
            cfg);
    };
    EXPECT_THROW(boom(), std::runtime_error);
}

TEST(ParallelFor, NestedCallsRunInlineWithoutDeadlock)
{
    ParallelConfig cfg{4};
    std::vector<std::atomic<int>> hits(64);
    parallelFor(
        0, 8, 1,
        [&](std::size_t ob, std::size_t) {
            parallelFor(
                0, 8, 1,
                [&](std::size_t ib, std::size_t) {
                    ++hits[ob * 8 + ib];
                },
                cfg);
        },
        cfg);
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ParallelReduce, MatchesSerialSum)
{
    sim::Rng rng(11);
    std::vector<double> vals(10'000);
    for (auto &v : vals)
        v = rng.nextDouble();

    auto sum_with = [&](unsigned threads) {
        ParallelConfig cfg{threads};
        return parallelReduce(
            0, vals.size(), 128, 0.0,
            [&](std::size_t b, std::size_t e) {
                double s = 0;
                for (std::size_t i = b; i < e; ++i)
                    s += vals[i];
                return s;
            },
            [](double a, double b) { return a + b; }, cfg);
    };

    double serial = sum_with(1);
    double threaded = sum_with(4);
    // Same decomposition + chunk-ordered fold => bitwise identical.
    EXPECT_EQ(serial, threaded);
    EXPECT_NEAR(serial,
                std::accumulate(vals.begin(), vals.end(), 0.0), 1e-6);
}

TEST(ParallelReduce, EmptyRangeReturnsInit)
{
    ParallelConfig cfg{4};
    double r = parallelReduce(
        4, 4, 8, 42.0,
        [](std::size_t, std::size_t) { return 1.0; },
        [](double a, double b) { return a + b; }, cfg);
    EXPECT_EQ(r, 42.0);
}

TEST(ParallelConfigTest, ResolvesDefaults)
{
    EXPECT_GE(ParallelConfig{}.resolved(), 1u);
    EXPECT_EQ(ParallelConfig{3}.resolved(), 3u);
    EXPECT_EQ(ParallelConfig::serial().resolved(), 1u);
}

TEST(ThreadPoolTest, GrowsOnDemand)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.workers(), 0u);
    std::atomic<int> sum{0};
    pool.run(8, 4, [&](std::size_t) { ++sum; });
    EXPECT_EQ(sum.load(), 8);
    EXPECT_GE(pool.workers(), 3u);
}

TEST(ThreadPoolTest, ZeroChunksIsANoop)
{
    ThreadPool pool(2);
    bool called = false;
    pool.run(0, 4, [&](std::size_t) { called = true; });
    EXPECT_FALSE(called);
}
