/** @file Unit + property tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim/rng.hh"

using namespace reach::sim;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a() == b());
    EXPECT_LT(same, 2);
}

TEST(Rng, NextUIntRespectsBound)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.nextUInt(17), 17u);
}

TEST(Rng, NextUIntCoversRange)
{
    Rng r(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(r.nextUInt(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng r(3);
    for (int i = 0; i < 1000; ++i) {
        double v = r.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, NextDoubleRangeRespected)
{
    Rng r(5);
    for (int i = 0; i < 200; ++i) {
        double v = r.nextDouble(-2.5, 4.5);
        EXPECT_GE(v, -2.5);
        EXPECT_LT(v, 4.5);
    }
}

TEST(Rng, GaussianMomentsRoughlyStandard)
{
    Rng r(42);
    const int n = 20000;
    double sum = 0, sq = 0;
    for (int i = 0; i < n; ++i) {
        double v = r.nextGaussian();
        sum += v;
        sq += v * v;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.05);
    EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(Rng, SplitStreamsAreIndependentlySeeded)
{
    Rng parent(9);
    Rng child1 = parent.split();
    Rng child2 = parent.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (child1() == child2());
    EXPECT_LT(same, 2);
}

/** Property: uniformity of nextUInt over several bounds. */
class RngUniformity : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngUniformity, ChiSquaredWithinLooseBound)
{
    std::uint64_t bound = GetParam();
    Rng r(1000 + bound);
    const std::uint64_t draws = 4000 * bound;
    std::vector<std::uint64_t> hist(bound, 0);
    for (std::uint64_t i = 0; i < draws; ++i)
        ++hist[r.nextUInt(bound)];

    double expected = static_cast<double>(draws) / bound;
    double chi2 = 0;
    for (auto h : hist) {
        double d = h - expected;
        chi2 += d * d / expected;
    }
    // dof = bound-1; loose 5-sigma-ish bound.
    EXPECT_LT(chi2, static_cast<double>(bound - 1) +
                        6.0 * std::sqrt(2.0 * (bound - 1)));
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngUniformity,
                         ::testing::Values(2, 3, 8, 10, 17));
