/**
 * @file
 * Unit + property tests for the gap-filling interval allocator that
 * underpins every reservation-based resource (links, flash
 * channels).
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/interval_resource.hh"
#include "sim/rng.hh"

using namespace reach::sim;

TEST(IntervalResource, FirstReservationStartsAtRequest)
{
    IntervalResource r;
    EXPECT_EQ(r.reserve(100, 50, 0), 50u);
    EXPECT_EQ(r.freeAt(), 150u);
}

TEST(IntervalResource, ZeroDurationIsFree)
{
    IntervalResource r;
    EXPECT_EQ(r.reserve(0, 42, 0), 42u);
    EXPECT_EQ(r.freeAt(), 0u);
}

TEST(IntervalResource, BackToBackQueues)
{
    IntervalResource r;
    EXPECT_EQ(r.reserve(100, 0, 0), 0u);
    EXPECT_EQ(r.reserve(100, 0, 0), 100u);
    EXPECT_EQ(r.reserve(100, 0, 0), 200u);
}

TEST(IntervalResource, GapBeforeFutureReservationIsUsable)
{
    IntervalResource r;
    // Something reserved far in the future...
    EXPECT_EQ(r.reserve(100, 10'000, 0), 10'000u);
    // ...must not block earlier traffic.
    EXPECT_EQ(r.reserve(100, 0, 0), 0u);
    EXPECT_EQ(r.reserve(100, 0, 0), 100u);
}

TEST(IntervalResource, ExactGapIsFilled)
{
    IntervalResource r;
    r.reserve(100, 0, 0);    // [0,100)
    r.reserve(100, 200, 0);  // [200,300)
    // A 100-tick request fits exactly in [100,200).
    EXPECT_EQ(r.reserve(100, 0, 0), 100u);
    // The next one goes after everything.
    EXPECT_EQ(r.reserve(100, 0, 0), 300u);
}

TEST(IntervalResource, TooSmallGapIsSkipped)
{
    IntervalResource r;
    r.reserve(100, 0, 0);   // [0,100)
    r.reserve(100, 150, 0); // [150,250)
    // 80 > the 50-tick gap: lands after the second interval.
    EXPECT_EQ(r.reserve(80, 0, 0), 250u);
    // 50 fits the gap exactly.
    EXPECT_EQ(r.reserve(50, 0, 0), 100u);
}

TEST(IntervalResource, PruningDropsPastIntervals)
{
    IntervalResource r;
    for (int i = 0; i < 10; ++i)
        r.reserve(10, 0, 0);
    EXPECT_GE(r.pendingIntervals(), 1u);
    // Reserving with `now` far beyond everything prunes the map.
    r.reserve(10, 1'000'000, 1'000'000);
    EXPECT_EQ(r.pendingIntervals(), 1u);
}

TEST(IntervalResource, AdjacentReservationsMerge)
{
    IntervalResource r;
    r.reserve(100, 0, 0);
    r.reserve(100, 0, 0); // lands at [100,200), merges with [0,100)
    EXPECT_EQ(r.pendingIntervals(), 1u);
}

/** Property: granted intervals never overlap and honor `at`. */
class IntervalProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(IntervalProperty, NoOverlapsEver)
{
    IntervalResource r;
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);

    std::vector<std::pair<Tick, Tick>> granted;
    for (int i = 0; i < 300; ++i) {
        Tick dur = 1 + rng.nextUInt(50);
        Tick at = rng.nextUInt(2000);
        Tick start = r.reserve(dur, at, 0);
        EXPECT_GE(start, at);
        granted.push_back({start, start + dur});
    }

    std::sort(granted.begin(), granted.end());
    for (std::size_t i = 1; i < granted.size(); ++i) {
        EXPECT_LE(granted[i - 1].second, granted[i].first)
            << "overlap between reservations " << i - 1 << " and "
            << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalProperty,
                         ::testing::Range(0, 8));
