/** @file Unit tests for named debug-trace flags. */

#include <gtest/gtest.h>

#include <iostream>
#include <sstream>

#include "sim/debug.hh"

using namespace reach::sim;

TEST(Debug, FlagsToggleProgrammatically)
{
    setDebugFlags("GAM,MemCtrl");
    EXPECT_TRUE(debugFlagEnabled("GAM"));
    EXPECT_TRUE(debugFlagEnabled("MemCtrl"));
    EXPECT_FALSE(debugFlagEnabled("Acc"));
    setDebugFlags("");
    EXPECT_FALSE(debugFlagEnabled("GAM"));
}

TEST(Debug, AllEnablesEverything)
{
    setDebugFlags("all");
    EXPECT_TRUE(debugFlagEnabled("anything"));
    setDebugFlags("");
}

TEST(Debug, DtraceOnlyEmitsWhenEnabled)
{
    // Redirect cerr to count emissions.
    std::ostringstream captured;
    auto *old = std::cerr.rdbuf(captured.rdbuf());

    setDebugFlags("");
    dtrace(100, "X", "hidden");
    EXPECT_TRUE(captured.str().empty());

    setDebugFlags("X");
    dtrace(200, "X", "visible ", 42);
    std::cerr.rdbuf(old);
    setDebugFlags("");

    EXPECT_NE(captured.str().find("200: X: visible 42"),
              std::string::npos);
}
