/** @file Unit tests for clock domains. */

#include <gtest/gtest.h>

#include "sim/clocked.hh"
#include "sim/logging.hh"

using namespace reach::sim;

TEST(ClockDomain, PeriodAndFrequency)
{
    ClockDomain c = ClockDomain::fromMHz(200.0);
    EXPECT_EQ(c.periodTicks(), 5000u);
    EXPECT_NEAR(c.frequencyMHz(), 200.0, 0.01);
}

TEST(ClockDomain, GHzFactory)
{
    ClockDomain c = ClockDomain::fromGHz(2.0);
    EXPECT_EQ(c.periodTicks(), 500u);
}

TEST(ClockDomain, ZeroPeriodIsFatal)
{
    EXPECT_THROW(ClockDomain(0), SimFatal);
}

TEST(ClockDomain, TicksForCycles)
{
    ClockDomain c(100);
    EXPECT_EQ(c.ticksFor(0), 0u);
    EXPECT_EQ(c.ticksFor(7), 700u);
}

TEST(ClockDomain, CyclesAtFloors)
{
    ClockDomain c(100);
    EXPECT_EQ(c.cyclesAt(0), 0u);
    EXPECT_EQ(c.cyclesAt(99), 0u);
    EXPECT_EQ(c.cyclesAt(100), 1u);
    EXPECT_EQ(c.cyclesAt(250), 2u);
}

TEST(ClockDomain, NextEdgeRounding)
{
    ClockDomain c(100);
    EXPECT_EQ(c.nextEdgeAt(0), 0u);
    EXPECT_EQ(c.nextEdgeAt(1), 100u);
    EXPECT_EQ(c.nextEdgeAt(100), 100u);
    EXPECT_EQ(c.nextEdgeAt(101), 200u);
}

/** Property: nextEdgeAt is idempotent and >= input. */
class ClockEdgeProperty : public ::testing::TestWithParam<Tick>
{
};

TEST_P(ClockEdgeProperty, EdgeIsFixedPoint)
{
    ClockDomain c(periodFromMHz(273.0));
    Tick t = GetParam();
    Tick e = c.nextEdgeAt(t);
    EXPECT_GE(e, t);
    EXPECT_EQ(c.nextEdgeAt(e), e);
    EXPECT_EQ(e % c.periodTicks(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Ticks, ClockEdgeProperty,
                         ::testing::Values(0, 1, 3662, 3663, 3664,
                                           999'999, 123'456'789));
