/** @file Unit tests for status/error reporting semantics. */

#include <gtest/gtest.h>

#include "sim/logging.hh"

using namespace reach::sim;

TEST(Logging, PanicThrowsSimPanic)
{
    EXPECT_THROW(panic("internal bug ", 42), SimPanic);
}

TEST(Logging, FatalThrowsSimFatal)
{
    EXPECT_THROW(fatal("bad config: ", "x"), SimFatal);
}

TEST(Logging, PanicMessageContainsFormattedArgs)
{
    try {
        panic("value=", 7, " name=", "abc");
        FAIL() << "panic did not throw";
    } catch (const SimPanic &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("value=7"), std::string::npos);
        EXPECT_NE(msg.find("name=abc"), std::string::npos);
    }
}

TEST(Logging, FatalIsNotPanic)
{
    // The two categories are distinct types: user error vs. bug.
    bool caught_fatal = false;
    try {
        fatal("user error");
    } catch (const SimPanic &) {
        FAIL() << "fatal threw SimPanic";
    } catch (const SimFatal &) {
        caught_fatal = true;
    }
    EXPECT_TRUE(caught_fatal);
}

TEST(Logging, WarnAndInformDoNotThrow)
{
    setQuiet(true);
    EXPECT_NO_THROW(warn("just a warning ", 1));
    EXPECT_NO_THROW(inform("status ", 2));
    setQuiet(false);
}
