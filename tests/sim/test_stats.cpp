/** @file Unit tests for the statistics framework. */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace reach::sim;

TEST(Stats, ScalarAccumulates)
{
    Scalar s("s", "a counter");
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    s += 2.5;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.set(10);
    EXPECT_DOUBLE_EQ(s.value(), 10.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, DistributionTracksMoments)
{
    Distribution d("d", "samples");
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);

    d.sample(2);
    d.sample(4);
    d.sample(9);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.sum(), 15.0);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.minValue(), 2.0);
    EXPECT_DOUBLE_EQ(d.maxValue(), 9.0);

    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.maxValue(), 0.0);
}

TEST(Stats, DistributionSingleNegativeSample)
{
    Distribution d("d", "samples");
    d.sample(-3.5);
    EXPECT_DOUBLE_EQ(d.minValue(), -3.5);
    EXPECT_DOUBLE_EQ(d.maxValue(), -3.5);
    EXPECT_DOUBLE_EQ(d.mean(), -3.5);
}

TEST(Stats, FormulaEvaluatesLazily)
{
    Scalar a("a", ""), b("b", "");
    Formula ratio("ratio", "a per b", [&] {
        return b.value() > 0 ? a.value() / b.value() : 0.0;
    });
    EXPECT_DOUBLE_EQ(ratio.value(), 0.0);
    a += 10;
    b += 4;
    EXPECT_DOUBLE_EQ(ratio.value(), 2.5);
}

TEST(StatRegistry, AddFindRemove)
{
    StatRegistry reg;
    Scalar s("mod.counter", "desc");
    reg.add(s);
    EXPECT_EQ(reg.find("mod.counter"), &s);
    EXPECT_EQ(reg.find("nope"), nullptr);
    reg.remove("mod.counter");
    EXPECT_EQ(reg.find("mod.counter"), nullptr);
}

TEST(StatRegistry, DuplicateNamePanics)
{
    StatRegistry reg;
    Scalar a("x", ""), b("x", "");
    reg.add(a);
    EXPECT_THROW(reg.add(b), SimPanic);
}

TEST(StatRegistry, AllReturnsNameSorted)
{
    StatRegistry reg;
    Scalar c("c", ""), a("a", ""), b("b", "");
    reg.add(c);
    reg.add(a);
    reg.add(b);
    auto all = reg.all();
    ASSERT_EQ(all.size(), 3u);
    EXPECT_EQ(all[0]->name(), "a");
    EXPECT_EQ(all[1]->name(), "b");
    EXPECT_EQ(all[2]->name(), "c");
}

TEST(StatRegistry, ResetAllResetsEverything)
{
    StatRegistry reg;
    Scalar a("a", "");
    Distribution d("d", "");
    reg.add(a);
    reg.add(d);
    a += 5;
    d.sample(1);
    reg.resetAll();
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    EXPECT_EQ(d.count(), 0u);
}

TEST(StatRegistry, DumpContainsNamesValuesDescriptions)
{
    StatRegistry reg;
    Scalar a("mem.reads", "read bursts");
    a += 7;
    reg.add(a);

    std::ostringstream os;
    reg.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("mem.reads"), std::string::npos);
    EXPECT_NE(out.find("7"), std::string::npos);
    EXPECT_NE(out.find("read bursts"), std::string::npos);
}

TEST(StatRegistry, DumpJsonIsWellFormed)
{
    StatRegistry reg;
    Scalar a("mem.reads", "read \"bursts\"");
    a += 42;
    Scalar b("mem.writes", "write bursts");
    reg.add(a);
    reg.add(b);

    std::ostringstream os;
    reg.dumpJson(os);
    std::string s = os.str();

    // Contains both entries with escaped quotes in descriptions.
    EXPECT_NE(s.find("\"mem.reads\""), std::string::npos);
    EXPECT_NE(s.find("\"value\": 42"), std::string::npos);
    EXPECT_NE(s.find("read \\\"bursts\\\""), std::string::npos);

    // Balanced braces and exactly one separating comma.
    EXPECT_EQ(std::count(s.begin(), s.end(), '{'), 3);
    EXPECT_EQ(std::count(s.begin(), s.end(), '}'), 3);
}

TEST(StatRegistry, DumpJsonEmptyRegistry)
{
    StatRegistry reg;
    std::ostringstream os;
    reg.dumpJson(os);
    EXPECT_EQ(os.str(), "{\n}\n");
}

TEST(PercentileRecorder, ExactNearestRankPercentiles)
{
    PercentileRecorder r("lat", "latencies");
    EXPECT_EQ(r.count(), 0u);
    EXPECT_EQ(r.percentile(50), 0u);

    // 1..100 in shuffled insertion order: pN is exactly N.
    for (std::uint64_t v = 100; v >= 1; --v)
        r.sample(v);
    EXPECT_EQ(r.count(), 100u);
    EXPECT_EQ(r.percentile(50), 50u);
    EXPECT_EQ(r.p95(), 95u);
    EXPECT_EQ(r.p99(), 99u);
    EXPECT_EQ(r.percentile(100), 100u);
    EXPECT_EQ(r.percentile(0.5), 1u);
    EXPECT_EQ(r.minValue(), 1u);
    EXPECT_EQ(r.maxValue(), 100u);
    EXPECT_DOUBLE_EQ(r.mean(), 50.5);
    // value() renders the p99 for stat dumps.
    EXPECT_DOUBLE_EQ(r.value(), 99.0);
}

TEST(PercentileRecorder, SmallSampleCountsClampToExtremes)
{
    PercentileRecorder r("lat", "latencies");
    r.sample(7);
    EXPECT_EQ(r.p50(), 7u);
    EXPECT_EQ(r.p999(), 7u);

    r.sample(3);
    EXPECT_EQ(r.percentile(50), 3u);
    EXPECT_EQ(r.p999(), 7u);
}

TEST(PercentileRecorder, InterleavedSampleAndQuery)
{
    // Queries lazily sort; later out-of-order samples must
    // invalidate the cache.
    PercentileRecorder r("lat", "latencies");
    r.sample(10);
    r.sample(20);
    EXPECT_EQ(r.percentile(100), 20u);
    r.sample(5);
    EXPECT_EQ(r.percentile(100), 20u);
    EXPECT_EQ(r.percentile(34), 10u);
    EXPECT_EQ(r.minValue(), 5u);
}

TEST(PercentileRecorder, SumOverflowSafeMean)
{
    // Two samples near 2^63 would overflow a u64 accumulator.
    PercentileRecorder r("lat", "latencies");
    std::uint64_t big = std::uint64_t(1) << 62;
    r.sample(big);
    r.sample(big);
    r.sample(big);
    r.sample(big);
    EXPECT_DOUBLE_EQ(r.mean(), static_cast<double>(big));
}

TEST(PercentileRecorder, RejectsOutOfRangePercentile)
{
    PercentileRecorder r("lat", "latencies");
    r.sample(1);
    EXPECT_THROW(r.percentile(0), SimPanic);
    EXPECT_THROW(r.percentile(100.5), SimPanic);
}

TEST(PercentileRecorder, ResetClearsState)
{
    PercentileRecorder r("lat", "latencies");
    r.sample(10);
    r.sample(20);
    r.reset();
    EXPECT_EQ(r.count(), 0u);
    EXPECT_DOUBLE_EQ(r.mean(), 0.0);
    r.sample(4);
    EXPECT_EQ(r.p50(), 4u);
    EXPECT_DOUBLE_EQ(r.mean(), 4.0);
}
