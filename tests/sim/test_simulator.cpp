/** @file Unit tests for Simulator and SimObject. */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "sim/simulator.hh"

using namespace reach::sim;

namespace
{

class Ticker : public SimObject
{
  public:
    Ticker(Simulator &sim, const std::string &name)
        : SimObject(sim, name), count("ticker.count", "ticks")
    {
        registerStat(count);
    }

    void
    start(Tick period, int times)
    {
        remaining = times;
        step(period);
    }

    Scalar count;

  private:
    void
    step(Tick period)
    {
        if (remaining-- <= 0)
            return;
        scheduleIn(period, [this, period] {
            ++count;
            step(period);
        });
    }

    int remaining = 0;
};

} // namespace

TEST(Simulator, RunDrainsAllEvents)
{
    Simulator sim;
    int fired = 0;
    sim.events().schedule(10, [&] { ++fired; });
    sim.events().schedule(20, [&] { ++fired; });
    Tick end = sim.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(end, 20u);
}

TEST(Simulator, RunRespectsLimit)
{
    Simulator sim;
    int fired = 0;
    sim.events().schedule(10, [&] { ++fired; });
    sim.events().schedule(1000, [&] { ++fired; });
    sim.run(100);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(sim.events().empty());
}

TEST(Simulator, RunUntilPredicateStopsEarly)
{
    Simulator sim;
    int fired = 0;
    for (int i = 1; i <= 10; ++i)
        sim.events().schedule(Tick(i) * 10, [&] { ++fired; });
    sim.runUntil([&] { return fired >= 3; });
    EXPECT_EQ(fired, 3);
}

TEST(SimObject, EmptyNamePanics)
{
    Simulator sim;
    EXPECT_THROW(Ticker(sim, ""), SimPanic);
}

TEST(SimObject, SchedulesRelativeToNow)
{
    Simulator sim;
    Ticker t(sim, "t");
    t.start(100, 5);
    sim.run();
    EXPECT_DOUBLE_EQ(t.count.value(), 5.0);
    EXPECT_EQ(sim.now(), 500u);
}

TEST(SimObject, StatRegisteredWithSimulator)
{
    Simulator sim;
    Ticker t(sim, "t");
    EXPECT_NE(sim.stats().find("ticker.count"), nullptr);
}

TEST(Simulator, EventsExecutedCounts)
{
    Simulator sim;
    Ticker t(sim, "t");
    t.start(10, 7);
    sim.run();
    EXPECT_EQ(sim.eventsExecuted(), 7u);
}
