/** @file Unit tests for tick/bandwidth conversion helpers. */

#include <gtest/gtest.h>

#include "sim/types.hh"

using namespace reach::sim;

TEST(Types, TickUnitRatios)
{
    EXPECT_EQ(tickPerNs, 1000u);
    EXPECT_EQ(tickPerUs, 1000u * 1000u);
    EXPECT_EQ(tickPerMs, 1000u * 1000u * 1000u);
    EXPECT_EQ(tickPerSec, 1000ull * 1000 * 1000 * 1000);
}

TEST(Types, SecondsRoundTrip)
{
    EXPECT_EQ(ticksFromSeconds(1.0), tickPerSec);
    EXPECT_DOUBLE_EQ(secondsFromTicks(tickPerSec), 1.0);
    EXPECT_DOUBLE_EQ(secondsFromTicks(ticksFromSeconds(0.125)), 0.125);
}

TEST(Types, PeriodFromFrequency)
{
    EXPECT_EQ(periodFromGHz(1.0), 1000u);  // 1 GHz = 1 ns
    EXPECT_EQ(periodFromGHz(2.0), 500u);
    EXPECT_EQ(periodFromMHz(200.0), 5000u); // 200 MHz = 5 ns
    EXPECT_EQ(periodFromMHz(273.0), 3663u); // rounded
}

TEST(Types, ByteLiterals)
{
    EXPECT_EQ(1_KiB, 1024u);
    EXPECT_EQ(2_MiB, 2u * 1024 * 1024);
    EXPECT_EQ(1_GiB, 1024ull * 1024 * 1024);
}

TEST(Types, TransferTicksBasic)
{
    // 1 GB/s moves 1 byte per ns.
    EXPECT_EQ(transferTicks(1, 1e9), 1000u);
    EXPECT_EQ(transferTicks(1000, 1e9), 1'000'000u);
}

TEST(Types, TransferTicksZeroBytesIsFree)
{
    EXPECT_EQ(transferTicks(0, 1e9), 0u);
}

TEST(Types, TransferTicksNeverZeroForNonZeroBytes)
{
    // Even at absurd bandwidth a real transfer takes >= 1 tick.
    EXPECT_GE(transferTicks(1, 1e30), 1u);
}

TEST(Types, TransferTicksScalesLinearly)
{
    Tick one = transferTicks(1_MiB, 10e9);
    Tick four = transferTicks(4_MiB, 10e9);
    EXPECT_NEAR(static_cast<double>(four),
                4.0 * static_cast<double>(one),
                static_cast<double>(one) * 0.01);
}
