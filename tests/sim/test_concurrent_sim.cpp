/**
 * @file
 * Concurrency regression tests: two independent Simulator instances
 * must be able to run on separate threads and produce results that
 * are bitwise identical to serial runs.
 *
 * The simulator core keeps no mutable process-global state (PR 3
 * audited logging.cc, debug.cc and the runtime template memo table);
 * these tests pin that property so a future "harmless" global does
 * not silently break the parallel sweep runner in bench/common.hh.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gam/gam.hh"
#include "sim/debug.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/simulator.hh"

namespace reach
{
namespace
{

/**
 * A self-contained simulation with a non-trivial event mix: a GAM
 * scheduling a burst of size-skewed near-mem tasks (same shape as
 * the ablation_gam_scheduling bench). Returns the makespan tick.
 */
sim::Tick
runBurst(int tasks, std::uint64_t seed)
{
    sim::Simulator s;
    gam::GamConfig cfg;
    gam::Gam manager(s, "gam", cfg);

    std::vector<std::unique_ptr<acc::Accelerator>> devs;
    for (int i = 0; i < 4; ++i) {
        devs.push_back(std::make_unique<acc::Accelerator>(
            s, "nm" + std::to_string(i), acc::Level::NearMem));
        manager.addAccelerator(*devs.back());
    }

    sim::Rng rng(seed);
    gam::JobDesc job;
    for (int t = 0; t < tasks; ++t) {
        gam::TaskDesc task;
        task.label = "t" + std::to_string(t);
        task.kernelTemplate = "GeMM-ZCU9";
        task.level = acc::Level::NearMem;
        task.work.ops =
            1e7 * static_cast<double>(1 + rng.nextUInt(100));
        job.tasks.push_back(std::move(task));
    }
    sim::Tick done = 0;
    job.onComplete = [&done](sim::Tick t) { done = t; };
    manager.submitJob(std::move(job));
    s.run();
    return done;
}

TEST(ConcurrentSim, TwoSimulatorsOnThreadsMatchSerialRuns)
{
    sim::setQuiet(true);

    // Serial reference runs first.
    const sim::Tick ref_a = runBurst(24, 7);
    const sim::Tick ref_b = runBurst(40, 1234);
    ASSERT_GT(ref_a, 0u);
    ASSERT_GT(ref_b, 0u);
    // Repeating serially is already deterministic.
    ASSERT_EQ(runBurst(24, 7), ref_a);

    // Now the same two simulations concurrently, several times so a
    // race has a chance to interleave differently across attempts.
    for (int round = 0; round < 4; ++round) {
        sim::Tick got_a = 0, got_b = 0;
        std::thread ta([&] { got_a = runBurst(24, 7); });
        std::thread tb([&] { got_b = runBurst(40, 1234); });
        ta.join();
        tb.join();
        EXPECT_EQ(got_a, ref_a) << "round " << round;
        EXPECT_EQ(got_b, ref_b) << "round " << round;
    }
}

TEST(ConcurrentSim, DebugFlagMutationIsSafeUnderConcurrentTracing)
{
    sim::setQuiet(true);
    sim::setDebugFlags("");

    std::atomic<bool> stop{false};
    std::atomic<int> hits{0};

    // Reader threads exercise the fast path and the locked lookup
    // while a writer flips the flag set back and forth.
    std::vector<std::thread> readers;
    for (int r = 0; r < 2; ++r) {
        readers.emplace_back([&] {
            unsigned iter = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                if (sim::debugFlagEnabled("GAM"))
                    hits.fetch_add(1, std::memory_order_relaxed);
                // Throttled so an enabled window does not flood
                // stderr; still crosses emitTrace concurrently.
                if ((iter++ & 4095u) == 0)
                    sim::dtrace(0, "MemCtrl", "probe ", 42);
            }
        });
    }
    std::thread writer([&] {
        for (int i = 0; i < 2000; ++i) {
            sim::setDebugFlags(i % 2 ? "GAM,MemCtrl" : "");
            if (i % 3 == 0)
                sim::warn("concurrent warn ", i);
        }
        stop.store(true, std::memory_order_relaxed);
    });
    writer.join();
    for (auto &t : readers)
        t.join();

    sim::setDebugFlags("");
    EXPECT_FALSE(sim::debugFlagEnabled("GAM"));
    // The reader must have observed at least one enabled window.
    EXPECT_GT(hits.load(), 0);
}

} // namespace
} // namespace reach
