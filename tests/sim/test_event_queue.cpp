/**
 * @file
 * Unit tests for the discrete-event queue: ordering, determinism,
 * cancellation and compaction, replay equivalence against a reference
 * model of the seed implementation, and error handling.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

using namespace reach::sim;

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.now(), 0u);
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.nextEventTick(), maxTick);
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(300, [&] { order.push_back(3); });
    q.schedule(100, [&] { order.push_back(1); });
    q.schedule(200, [&] { order.push_back(2); });

    while (!q.empty())
        q.runOne();

    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 300u);
}

TEST(EventQueue, SameTickFollowsInsertionOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(50, [&order, i] { order.push_back(i); });

    while (!q.empty())
        q.runOne();

    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, PriorityBreaksSameTickTies)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&] { order.push_back(2); },
               EventPriority::Observer);
    q.schedule(10, [&] { order.push_back(1); }, EventPriority::Default);
    q.schedule(10, [&] { order.push_back(0); }, EventPriority::Control);

    while (!q.empty())
        q.runOne();

    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, CurrentTickAdvancesToEventTime)
{
    EventQueue q;
    Tick seen = 0;
    q.schedule(12345, [&] { seen = q.now(); });
    q.runOne();
    EXPECT_EQ(seen, 12345u);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] {
        ++fired;
        q.schedule(20, [&] { ++fired; });
    });
    while (!q.empty())
        q.runOne();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.now(), 20u);
}

TEST(EventQueue, ZeroDelaySelfScheduleAtSameTickRuns)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] {
        if (++fired < 3)
            q.schedule(q.now(), [&] { ++fired; });
    });
    while (!q.empty())
        q.runOne();
    EXPECT_GE(fired, 2);
    EXPECT_EQ(q.now(), 10u);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue q;
    q.schedule(100, [] {});
    q.runOne();
    EXPECT_THROW(q.schedule(50, [] {}), SimPanic);
}

TEST(EventQueue, NullCallbackPanics)
{
    EventQueue q;
    EXPECT_THROW(q.schedule(10, EventQueue::Callback{}), SimPanic);
}

TEST(EventQueue, RunOneOnEmptyQueuePanics)
{
    EventQueue q;
    EXPECT_THROW(q.runOne(), SimPanic);
}

TEST(EventQueue, DescheduleCancelsPendingEvent)
{
    EventQueue q;
    bool ran = false;
    auto id = q.schedule(100, [&] { ran = true; });
    EXPECT_TRUE(q.deschedule(id));
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(ran);
}

TEST(EventQueue, DescheduleTwiceReturnsFalse)
{
    EventQueue q;
    auto id = q.schedule(100, [] {});
    EXPECT_TRUE(q.deschedule(id));
    EXPECT_FALSE(q.deschedule(id));
}

TEST(EventQueue, DescheduleUnknownIdReturnsFalse)
{
    EventQueue q;
    EXPECT_FALSE(q.deschedule(12345));
}

TEST(EventQueue, DescheduledEventSkippedAmongOthers)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&] { order.push_back(1); });
    auto id = q.schedule(20, [&] { order.push_back(2); });
    q.schedule(30, [&] { order.push_back(3); });
    q.deschedule(id);

    while (!q.empty())
        q.runOne();
    EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextEventTickReportsEarliest)
{
    EventQueue q;
    q.schedule(500, [] {});
    q.schedule(200, [] {});
    EXPECT_EQ(q.nextEventTick(), 200u);
}

TEST(EventQueue, NextEventTickSkipsCancelled)
{
    EventQueue q;
    auto id = q.schedule(200, [] {});
    q.schedule(500, [] {});
    q.deschedule(id);
    EXPECT_EQ(q.nextEventTick(), 500u);
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue q;
    for (int i = 0; i < 5; ++i)
        q.schedule(i * 10 + 1, [] {});
    while (!q.empty())
        q.runOne();
    EXPECT_EQ(q.numExecuted(), 5u);
}

TEST(EventQueue, SameTickInterleavedPrioritiesFollowInsertionOrder)
{
    // All three priority classes interleaved at one tick: execution
    // must sort by priority first and by insertion order within each
    // class.
    EventQueue q;
    std::vector<int> order;
    const EventPriority prios[3] = {EventPriority::Observer,
                                    EventPriority::Control,
                                    EventPriority::Default};
    for (int i = 0; i < 12; ++i) {
        q.schedule(77, [&order, i] { order.push_back(i); },
                   prios[i % 3]);
    }
    while (!q.empty())
        q.runOne();

    // Control events (i % 3 == 1) first, then Default (2), then
    // Observer (0), each sub-sequence in insertion order.
    std::vector<int> expect;
    for (int r : {1, 2, 0})
        for (int i = r; i < 12; i += 3)
            expect.push_back(i);
    EXPECT_EQ(order, expect);
}

TEST(EventQueue, DescheduleOfAlreadyRunIdReturnsFalse)
{
    EventQueue q;
    auto id = q.schedule(10, [] {});
    q.runOne();
    EXPECT_FALSE(q.deschedule(id));
    // Even after the slot is recycled by a new event, the old id must
    // stay dead (generation check).
    auto id2 = q.schedule(20, [] {});
    EXPECT_FALSE(q.deschedule(id));
    EXPECT_TRUE(q.deschedule(id2));
}

TEST(EventQueue, DescheduleDuringCallbackOfSelfReturnsFalse)
{
    EventQueue q;
    std::uint64_t id = 0;
    bool self_cancel = true;
    id = q.schedule(10, [&] { self_cancel = q.deschedule(id); });
    q.runOne();
    EXPECT_FALSE(self_cancel);
}

TEST(EventQueue, CancelStormDoesNotGrowHeapOrArena)
{
    // Regression for the seed leak: cancelled entries used to linger
    // in the heap (and in a hash set) until they surfaced at the
    // top. One million schedule/cancel pairs must leave both the
    // heap and the slot arena bounded.
    EventQueue q;
    std::size_t max_heap = 0;
    for (int i = 0; i < 1'000'000; ++i) {
        auto id = q.schedule(1000 + i, [] {});
        ASSERT_TRUE(q.deschedule(id));
        max_heap = std::max(max_heap, q.heapEntries());
    }
    EXPECT_TRUE(q.empty());
    // Lazy compaction keeps stale entries below the threshold's
    // small multiple; the arena recycles through the free list.
    EXPECT_LT(max_heap, 1000u);
    EXPECT_LT(q.arenaSlots(), 64u);

    // The queue stays fully usable afterwards.
    int ran = 0;
    q.schedule(2'000'000, [&] { ++ran; });
    q.runOne();
    EXPECT_EQ(ran, 1);
}

TEST(EventQueue, PendingCancelStormBoundedWithLiveEvents)
{
    // Reschedule-storm shape: a few long-lived events plus a churn
    // of cancel/re-arm pairs below them (status-packet polling).
    EventQueue q;
    int ran = 0;
    for (int i = 0; i < 16; ++i)
        q.schedule(1'000'000 + i, [&] { ++ran; });
    std::size_t max_heap = 0;
    std::uint64_t pending_id = q.schedule(500'000, [] {});
    for (int i = 0; i < 200'000; ++i) {
        ASSERT_TRUE(q.deschedule(pending_id));
        pending_id = q.schedule(500'000 + i, [] {});
        max_heap = std::max(max_heap, q.heapEntries());
    }
    EXPECT_LT(max_heap, 1000u);
    EXPECT_EQ(q.size(), 17u);
    q.deschedule(pending_id);
    while (!q.empty())
        q.runOne();
    EXPECT_EQ(ran, 16);
}

TEST(EventQueue, RescheduleStormPreservesOrderAndIds)
{
    // Cancel-and-re-arm the same logical event many times; only the
    // final arming may fire, at the right time, and every stale id
    // must stay dead.
    EventQueue q;
    std::vector<Tick> fired;
    std::uint64_t id = q.schedule(100, [&] { fired.push_back(q.now()); });
    std::vector<std::uint64_t> stale;
    for (int i = 1; i <= 1000; ++i) {
        stale.push_back(id);
        ASSERT_TRUE(q.deschedule(id));
        id = q.schedule(100 + i, [&] { fired.push_back(q.now()); });
    }
    for (auto s : stale)
        EXPECT_FALSE(q.deschedule(s));
    while (!q.empty())
        q.runOne();
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0], 1100u);
}

namespace
{

/**
 * A transliteration of the seed EventQueue semantics — a flat list
 * scanned for the minimum (when, priority, seq) — used as the
 * reference model for replay equivalence.
 */
class ReferenceQueue
{
  public:
    std::uint64_t
    schedule(Tick when, int label, EventPriority prio)
    {
        events.push_back({when, static_cast<int>(prio), nextSeq,
                          label, true});
        return nextSeq++;
    }

    bool
    deschedule(std::uint64_t seq)
    {
        for (auto &e : events) {
            if (e.seq == seq && e.live) {
                e.live = false;
                return true;
            }
        }
        return false;
    }

    bool
    empty() const
    {
        for (const auto &e : events)
            if (e.live)
                return false;
        return true;
    }

    /** Run the earliest live event; returns (tick, label). */
    std::pair<Tick, int>
    runOne()
    {
        Ev *best = nullptr;
        for (auto &e : events) {
            if (!e.live)
                continue;
            if (best == nullptr || e.when < best->when ||
                (e.when == best->when &&
                 (e.prio < best->prio ||
                  (e.prio == best->prio && e.seq < best->seq)))) {
                best = &e;
            }
        }
        best->live = false;
        curTick = best->when;
        return {best->when, best->label};
    }

    Tick now() const { return curTick; }

  private:
    struct Ev
    {
        Tick when;
        int prio;
        std::uint64_t seq;
        int label;
        bool live;
    };
    std::vector<Ev> events;
    std::uint64_t nextSeq = 0;
    Tick curTick = 0;
};

} // namespace

TEST(EventQueue, ReplaysIdenticalTraceToReferenceModel)
{
    // A recorded pseudo-random scenario of schedules (all three
    // priorities, including same-tick collisions and zero-delay
    // self-schedules from callbacks), deschedules and runs, executed
    // against both the production queue and the reference model of
    // the seed semantics. The (tick, label) execution traces must be
    // bitwise identical.
    EventQueue q;
    ReferenceQueue ref;
    Rng rng(20260806);

    std::vector<std::pair<Tick, int>> trace;     // production
    std::vector<std::pair<Tick, int>> ref_trace; // reference

    std::map<int, std::uint64_t> pending_q;   // label -> queue id
    std::map<int, std::uint64_t> pending_ref; // label -> ref seq
    std::map<int, int> ref_children; // parent label -> child label
    int next_label = 0;

    const EventPriority prios[3] = {EventPriority::Control,
                                    EventPriority::Default,
                                    EventPriority::Observer};

    // Schedules from inside callbacks mirror into the reference by
    // replaying the same decision stream: the lambda captures the
    // label of its child, chosen at scheduling time.
    std::function<void(int, bool)> arm = [&](int label, bool child) {
        Tick delay = rng.nextUInt(50);
        EventPriority prio = prios[rng.nextUInt(3)];
        bool spawns = !child && rng.nextUInt(4) == 0;
        int child_label = spawns ? 1'000'000 + label : -1;
        Tick when = q.now() + delay;
        auto id = q.schedule(
            when,
            [&, label, child_label] {
                trace.push_back({q.now(), label});
                pending_q.erase(label);
                if (child_label >= 0) {
                    // Zero-delay child at the current tick exercises
                    // same-tick insertion ordering.
                    pending_q[child_label] = q.schedule(
                        q.now(), [&, child_label] {
                            trace.push_back({q.now(), child_label});
                            pending_q.erase(child_label);
                        });
                }
            },
            prio);
        pending_q[label] = id;
        pending_ref[label] = ref.schedule(when, label, prio);
        // Remember the child decision for the reference replay.
        if (child_label >= 0)
            ref_children[label] = child_label;
    };

    // Drive the scenario.
    for (int step = 0; step < 4000; ++step) {
        std::uint64_t action = rng.nextUInt(10);
        if (action < 5 || pending_ref.empty()) {
            arm(next_label++, false);
        } else if (action < 7) {
            // Deschedule a pseudo-random pending label (same pick
            // for both sides).
            auto it = pending_ref.begin();
            std::advance(it,
                         static_cast<long>(
                             rng.nextUInt(pending_ref.size())));
            int label = it->first;
            bool a = q.deschedule(pending_q.at(label));
            bool b = ref.deschedule(pending_ref.at(label));
            ASSERT_EQ(a, b);
            pending_q.erase(label);
            pending_ref.erase(label);
            ref_children.erase(label);
        } else {
            if (q.empty())
                continue;
            q.runOne();
            auto [when, label] = ref.runOne();
            ref_trace.push_back({when, label});
            pending_ref.erase(label);
            auto child = ref_children.find(label);
            if (child != ref_children.end()) {
                pending_ref[child->second] = ref.schedule(
                    when, child->second, EventPriority::Default);
                ref_children.erase(child);
            }
        }
    }
    // Drain both queues completely.
    while (!q.empty()) {
        q.runOne();
        auto [when, label] = ref.runOne();
        ref_trace.push_back({when, label});
        pending_ref.erase(label);
        auto child = ref_children.find(label);
        if (child != ref_children.end()) {
            pending_ref[child->second] = ref.schedule(
                when, child->second, EventPriority::Default);
            ref_children.erase(child);
        }
    }
    EXPECT_TRUE(ref.empty());
    ASSERT_GT(trace.size(), 1000u);
    EXPECT_EQ(trace, ref_trace);
    EXPECT_EQ(q.now(), ref.now());
}

/** Property: any schedule order yields the same execution order. */
class EventQueuePermutation : public ::testing::TestWithParam<int>
{
};

TEST_P(EventQueuePermutation, DeterministicAcrossInsertOrders)
{
    // Build a fixed set of (tick, label) events, insert in a
    // seed-dependent order, and require time-sorted execution with
    // stable same-tick sub-order by priority.
    int seed = GetParam();
    std::vector<std::pair<Tick, int>> events;
    for (int i = 0; i < 20; ++i)
        events.push_back({Tick(100 + 10 * (i % 5)), i});

    // Deterministic shuffle.
    std::uint64_t s = static_cast<std::uint64_t>(seed) * 2654435761u + 1;
    for (std::size_t i = events.size(); i > 1; --i) {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        std::swap(events[i - 1], events[s % i]);
    }

    EventQueue q;
    std::vector<std::pair<Tick, int>> order;
    for (auto [when, label] : events) {
        q.schedule(when, [&order, when, label] {
            order.push_back({when, label});
        });
    }
    while (!q.empty())
        q.runOne();

    for (std::size_t i = 1; i < order.size(); ++i)
        EXPECT_LE(order[i - 1].first, order[i].first);
}

INSTANTIATE_TEST_SUITE_P(Shuffles, EventQueuePermutation,
                         ::testing::Range(0, 8));
