/**
 * @file
 * Unit tests for the discrete-event queue: ordering, determinism,
 * cancellation, and error handling.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"

using namespace reach::sim;

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.now(), 0u);
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.nextEventTick(), maxTick);
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(300, [&] { order.push_back(3); });
    q.schedule(100, [&] { order.push_back(1); });
    q.schedule(200, [&] { order.push_back(2); });

    while (!q.empty())
        q.runOne();

    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 300u);
}

TEST(EventQueue, SameTickFollowsInsertionOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(50, [&order, i] { order.push_back(i); });

    while (!q.empty())
        q.runOne();

    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, PriorityBreaksSameTickTies)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&] { order.push_back(2); },
               EventPriority::Observer);
    q.schedule(10, [&] { order.push_back(1); }, EventPriority::Default);
    q.schedule(10, [&] { order.push_back(0); }, EventPriority::Control);

    while (!q.empty())
        q.runOne();

    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, CurrentTickAdvancesToEventTime)
{
    EventQueue q;
    Tick seen = 0;
    q.schedule(12345, [&] { seen = q.now(); });
    q.runOne();
    EXPECT_EQ(seen, 12345u);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] {
        ++fired;
        q.schedule(20, [&] { ++fired; });
    });
    while (!q.empty())
        q.runOne();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.now(), 20u);
}

TEST(EventQueue, ZeroDelaySelfScheduleAtSameTickRuns)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] {
        if (++fired < 3)
            q.schedule(q.now(), [&] { ++fired; });
    });
    while (!q.empty())
        q.runOne();
    EXPECT_GE(fired, 2);
    EXPECT_EQ(q.now(), 10u);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue q;
    q.schedule(100, [] {});
    q.runOne();
    EXPECT_THROW(q.schedule(50, [] {}), SimPanic);
}

TEST(EventQueue, NullCallbackPanics)
{
    EventQueue q;
    EXPECT_THROW(q.schedule(10, EventQueue::Callback{}), SimPanic);
}

TEST(EventQueue, RunOneOnEmptyQueuePanics)
{
    EventQueue q;
    EXPECT_THROW(q.runOne(), SimPanic);
}

TEST(EventQueue, DescheduleCancelsPendingEvent)
{
    EventQueue q;
    bool ran = false;
    auto id = q.schedule(100, [&] { ran = true; });
    EXPECT_TRUE(q.deschedule(id));
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(ran);
}

TEST(EventQueue, DescheduleTwiceReturnsFalse)
{
    EventQueue q;
    auto id = q.schedule(100, [] {});
    EXPECT_TRUE(q.deschedule(id));
    EXPECT_FALSE(q.deschedule(id));
}

TEST(EventQueue, DescheduleUnknownIdReturnsFalse)
{
    EventQueue q;
    EXPECT_FALSE(q.deschedule(12345));
}

TEST(EventQueue, DescheduledEventSkippedAmongOthers)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&] { order.push_back(1); });
    auto id = q.schedule(20, [&] { order.push_back(2); });
    q.schedule(30, [&] { order.push_back(3); });
    q.deschedule(id);

    while (!q.empty())
        q.runOne();
    EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextEventTickReportsEarliest)
{
    EventQueue q;
    q.schedule(500, [] {});
    q.schedule(200, [] {});
    EXPECT_EQ(q.nextEventTick(), 200u);
}

TEST(EventQueue, NextEventTickSkipsCancelled)
{
    EventQueue q;
    auto id = q.schedule(200, [] {});
    q.schedule(500, [] {});
    q.deschedule(id);
    EXPECT_EQ(q.nextEventTick(), 500u);
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue q;
    for (int i = 0; i < 5; ++i)
        q.schedule(i * 10 + 1, [] {});
    while (!q.empty())
        q.runOne();
    EXPECT_EQ(q.numExecuted(), 5u);
}

/** Property: any schedule order yields the same execution order. */
class EventQueuePermutation : public ::testing::TestWithParam<int>
{
};

TEST_P(EventQueuePermutation, DeterministicAcrossInsertOrders)
{
    // Build a fixed set of (tick, label) events, insert in a
    // seed-dependent order, and require time-sorted execution with
    // stable same-tick sub-order by priority.
    int seed = GetParam();
    std::vector<std::pair<Tick, int>> events;
    for (int i = 0; i < 20; ++i)
        events.push_back({Tick(100 + 10 * (i % 5)), i});

    // Deterministic shuffle.
    std::uint64_t s = static_cast<std::uint64_t>(seed) * 2654435761u + 1;
    for (std::size_t i = events.size(); i > 1; --i) {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        std::swap(events[i - 1], events[s % i]);
    }

    EventQueue q;
    std::vector<std::pair<Tick, int>> order;
    for (auto [when, label] : events) {
        q.schedule(when, [&order, when, label] {
            order.push_back({when, label});
        });
    }
    while (!q.empty())
        q.runOne();

    for (std::size_t i = 1; i < order.size(); ++i)
        EXPECT_LE(order[i - 1].first, order[i].first);
}

INSTANTIATE_TEST_SUITE_P(Shuffles, EventQueuePermutation,
                         ::testing::Range(0, 8));
