#include "ns_module.hh"

namespace reach::acc
{

NsModule::NsModule(sim::Simulator &sim, const std::string &name,
                   storage::Ssd &ssd, const NsConfig &config)
    : Accelerator(sim, name, Level::NearStor),
      attachedSsd(ssd),
      cfg(config),
      statPassThrough(name + ".passThrough",
                      "host IO requests passed through")
{
    registerStat(statPassThrough);
    enableParamBuffer(cfg.dramBufferBytes, cfg.dramBufferBandwidth);
}

NsModule::NsModule(sim::Simulator &sim, const std::string &name,
                   storage::Ssd &ssd)
    : NsModule(sim, name, ssd, NsConfig{})
{
}

sim::Tick
NsModule::passThrough(sim::Tick at)
{
    ++statPassThrough;
    return at + cfg.passThroughLatency;
}

} // namespace reach::acc
