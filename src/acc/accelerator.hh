/**
 * @file
 * The reconfigurable accelerator engine.
 *
 * One Accelerator models one FPGA module at some level of the compute
 * hierarchy. It is *reconfigurable*: the GAM (or the runtime) loads a
 * kernel profile (bitstream) into it, then executes coarse-grained
 * tasks. Task timing combines the HLS pipeline model (kernel_profile)
 * with chunked, pipelined transfers over the module's data paths, so
 * an execution is automatically compute-bound or bandwidth-bound
 * depending on the kernel and the attachment point.
 */

#ifndef REACH_ACC_ACCELERATOR_HH
#define REACH_ACC_ACCELERATOR_HH

#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "acc/kernel_profile.hh"
#include "acc/path.hh"
#include "fault/fault.hh"
#include "mem/tlb.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"

namespace reach::acc
{

/** Where in the hierarchy a compute element sits (Listing 1). */
enum class Level
{
    OnChip,
    NearMem,
    NearStor,
    Cpu,
};

const char *levelName(Level level);

/** One coarse-grained task, sized in work units and bytes. */
struct WorkUnit
{
    /** Identifies the parameter set (for the NS buffer's reuse). */
    std::string paramKey;
    /** Total work units (MACs, distance lanes, scanned words). */
    double ops = 0;
    /** Bytes streamed in over the input path. */
    std::uint64_t bytesIn = 0;
    /** Bytes streamed out over the output path. */
    std::uint64_t bytesOut = 0;
    /** Parameter bytes fetched before compute starts. */
    std::uint64_t paramBytes = 0;
    /** Input already resident in SPM/cache: use the resident path. */
    bool inputResident = false;
    /**
     * Per-task input path override (non-owning); used when a task's
     * data comes from somewhere other than the module's home medium,
     * e.g. an on-chip rerank task streaming from the SSD array.
     */
    Path inputOverride;
    /**
     * Per-instance input throughput cap in bytes/second (0 = none).
     * Models the requester's limited outstanding-request concurrency
     * for random gathers: small reads at high latency cannot fill a
     * fat pipe, which is why near-memory rerank instances each
     * extract only a slice of the host IO bandwidth while an
     * SSD-attached module sees its drive's full internal rate.
     */
    double inputThrottleBw = 0;
};

class Accelerator : public sim::SimObject
{
  public:
    Accelerator(sim::Simulator &sim, const std::string &name,
                Level level);

    Level level() const { return lvl; }

    /**
     * Load a kernel bitstream. @p reconfig_delay models partial
     * reconfiguration; the paper assumes sub-millisecond and charges
     * zero, which is the default (kept configurable for ablations).
     */
    void configure(const KernelProfile &profile,
                   sim::Tick reconfig_delay = 0);

    const KernelProfile *kernel() const
    {
        return prof ? &*prof : nullptr;
    }

    /** Streaming input path (backing store -> accelerator). */
    void setInputPath(Path p) { inputPath = std::move(p); }
    /** Output path (accelerator -> destination buffer). */
    void setOutputPath(Path p) { outputPath = std::move(p); }
    /** Parameter fetch path (used when params are not buffered). */
    void setParamPath(Path p) { paramPath = std::move(p); }
    /** Fast path for SPM/cache-resident inputs. */
    void setResidentPath(Path p) { residentPath = std::move(p); }

    /** Attach a TLB (on-chip accelerators, paper §II-A). */
    void attachTlb(mem::Tlb &tlb) { accTlb = &tlb; }

    /**
     * Enable the private DRAM parameter buffer (near-storage modules,
     * paper §II-C): repeated paramKey fetches hit the buffer.
     */
    void enableParamBuffer(std::uint64_t capacity_bytes,
                           double buffer_bandwidth);

    /**
     * Execute one task. Tasks issued while busy queue behind the
     * current one (the GAM normally serializes per accelerator).
     * @param on_done Called at task completion time.
     */
    void execute(const WorkUnit &work,
                 std::function<void(sim::Tick)> on_done = nullptr);

    /**
     * Analytic duration estimate for the GAM's progress table
     * (paper Fig. 5: "estimated wait time"); does not reserve
     * resources.
     */
    sim::Tick estimateTicks(const WorkUnit &work) const;

    /** Earliest tick this module is free. */
    sim::Tick freeAt() const { return busyUntil; }
    bool busy() const { return busyUntil > now(); }

    /** Ticks this module has spent executing tasks (incl. stalls). */
    sim::Tick activeTicks() const
    {
        return static_cast<sim::Tick>(statActive.value());
    }

    /** Ticks the compute pipeline was actually busy. */
    sim::Tick computeTicksBusy() const
    {
        return static_cast<sim::Tick>(statCompute.value());
    }

    /** Active power of the configured kernel (W). */
    double activePowerW() const;

    /**
     * Energy over [0, horizon]: the kernel's active power while the
     * compute pipeline is busy (memory-stalled cycles clock-gate down
     * to static power) plus the device's static power always. Joules.
     */
    double energyJoules(sim::Tick horizon) const;

    std::uint64_t tasksCompleted() const
    {
        return static_cast<std::uint64_t>(statTasks.value());
    }

    std::uint64_t paramBufferHits() const
    {
        return static_cast<std::uint64_t>(statParamHits.value());
    }

    /** Hook for subclasses: called at the tick a task starts/ends. */
    virtual void onTaskStart(sim::Tick at);
    virtual void onTaskEnd(sim::Tick at);

    /** Attach a fault injector consulted once per execute(). */
    void setFaultInjector(fault::FaultInjector *inj) { faultInj = inj; }

    /**
     * A crashed module never signals completion until repaired. The
     * GAM's watchdog detects the silence and quarantines the module.
     */
    bool faulted() const { return isFaulted; }

    /** Clear the crashed state (GAM recovery path). */
    void repair() { isFaulted = false; }

    std::uint64_t faultsInjected() const
    {
        return static_cast<std::uint64_t>(statFaultsInjected.value());
    }

  protected:
    /** Chunks a task's stream is split into for pipelining. */
    static constexpr std::uint64_t maxChunks = 64;

  private:
    /** Reserve resources for @p work; returns [start, end]. */
    std::pair<sim::Tick, sim::Tick> reserveTask(const WorkUnit &work);

    /** Param fetch; returns tick params are ready. */
    sim::Tick fetchParams(const WorkUnit &work, sim::Tick at);

    Level lvl;
    std::optional<KernelProfile> prof;
    double staticPowerW = 0;

    Path inputPath;
    Path outputPath;
    Path paramPath;
    Path residentPath;
    mem::Tlb *accTlb = nullptr;

    /** NS parameter buffer (LRU by key). */
    bool paramBufEnabled = false;
    std::uint64_t paramBufCapacity = 0;
    std::uint64_t paramBufUsed = 0;
    double paramBufBandwidth = 0;
    std::list<std::pair<std::string, std::uint64_t>> paramLru;

    sim::Tick busyUntil = 0;
    /** Virtual stream position used to exercise the TLB. */
    std::uint64_t streamCursor = 0;

    fault::FaultInjector *faultInj = nullptr;
    bool isFaulted = false;

    sim::Scalar statTasks;
    sim::Scalar statActive;
    sim::Scalar statCompute;
    sim::Scalar statOps;
    sim::Scalar statBytesIn;
    sim::Scalar statBytesOut;
    sim::Scalar statParamHits;
    sim::Scalar statParamMisses;
    sim::Scalar statReconfigs;
    sim::Scalar statFaultsInjected;
};

} // namespace reach::acc

#endif // REACH_ACC_ACCELERATOR_HH
