#include "path.hh"

#include <algorithm>
#include <limits>

namespace reach::acc
{

double
Path::bottleneckBandwidth() const
{
    double bw = std::numeric_limits<double>::infinity();
    for (const auto *link : links)
        bw = std::min(bw, link->bandwidth());

    if (!sources.empty()) {
        double agg = 0;
        for (const auto &s : sources) {
            double src_bw = std::numeric_limits<double>::infinity();
            if (s.ssd)
                src_bw = s.ssd->config().internalBandwidth();
            if (s.link)
                src_bw = std::min(src_bw, s.link->bandwidth());
            if (src_bw < std::numeric_limits<double>::infinity())
                agg += src_bw;
        }
        if (agg > 0)
            bw = std::min(bw, agg);
    }

    if (dstSsd)
        bw = std::min(bw, dstSsd->config().internalBandwidth());
    return bw;
}

sim::Tick
Path::reserve(std::uint64_t bytes, sim::Tick at,
              std::uint64_t chunk_bytes) const
{
    if (bytes == 0 || empty())
        return at;
    if (chunk_bytes == 0)
        chunk_bytes = defaultChunk;
    // Bound the sub-chunk count per call: fine chunks buy pipelining
    // and striping fairness, but reservation cost grows with the
    // number of intervals each shared stage must search. 32 chunks
    // (or 8 per source) keeps multi-GB transfers cheap while still
    // overlapping stages.
    std::uint64_t min_chunks =
        sources.empty() ? 32 : 8 * sources.size();
    if (bytes / chunk_bytes > min_chunks)
        chunk_bytes = bytes / min_chunks;

    sim::Tick done = at;
    std::uint64_t remaining = bytes;
    std::size_t &rr = rrCursor;
    // Each stage keeps its own busy state, so issuing every chunk
    // "at" the same earliest time still serializes correctly at the
    // first stage and pipelines across later stages.
    while (remaining > 0) {
        std::uint64_t chunk = std::min(remaining, chunk_bytes);
        sim::Tick t = at;
        if (!sources.empty()) {
            const Source &src = sources[rr++ % sources.size()];
            if (src.ssd)
                t = src.ssd->reserve(chunk, false, t);
            if (src.link)
                t = src.link->reserve(chunk, t);
        }
        for (auto *link : links)
            t = link->reserve(chunk, t);
        if (dstSsd)
            t = dstSsd->reserve(chunk, true, t);
        done = std::max(done, t);
        remaining -= chunk;
    }
    return done;
}

} // namespace reach::acc
