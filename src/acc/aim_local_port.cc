#include "aim_local_port.hh"

#include "sim/logging.hh"

namespace reach::acc
{

AimLocalPort::AimLocalPort(sim::Simulator &sim, const std::string &name,
                           mem::Dimm &attached, const AimPortConfig &config)
    : sim::SimObject(sim, name),
      dimm(attached),
      cfg(config),
      statBursts(name + ".bursts", "local bursts issued")
{
    if (cfg.maxInflight == 0)
        sim::fatal(name, ": port needs at least one inflight burst");
    registerStat(statBursts);
}

void
AimLocalPort::streamRead(mem::Addr base, std::uint64_t bytes,
                         std::function<void(sim::Tick)> on_done)
{
    if (next != end)
        sim::panic(name(), ": stream already in progress");
    if (bytes == 0) {
        if (on_done)
            on_done(now());
        return;
    }
    next = mem::lineAlign(base);
    end = base + bytes;
    done = std::move(on_done);
    pump();
}

void
AimLocalPort::pump()
{
    while (next < end && inflight < cfg.maxInflight) {
        mem::BurstResult br = dimm.serviceBurst(
            next, false, now() + cfg.issueOverhead, cfg.policy);
        ++statBursts;
        ++inflight;
        next += mem::cacheLineBytes;

        bool last = next >= end;
        schedule(br.complete, [this, last] {
            --inflight;
            if (last && inflight == 0) {
                if (done)
                    done(now());
            } else {
                pump();
            }
        }, sim::EventPriority::Default, "burstDone");
    }
}

double
measureLocalStreamingBandwidth(const mem::DramTimings &timings,
                               std::uint64_t bytes,
                               const AimPortConfig &cfg)
{
    sim::Simulator sim;
    mem::Dimm dimm(sim, "calibDimm", timings);
    AimLocalPort port(sim, "calibPort", dimm, cfg);

    sim::Tick finish = 0;
    port.streamRead(0, bytes,
                    [&finish](sim::Tick t) { finish = t; });
    sim.run();
    if (finish == 0)
        return 0;
    return static_cast<double>(bytes) /
           sim::secondsFromTicks(finish);
}

} // namespace reach::acc
