/**
 * @file
 * The near-storage accelerator: a ZCU9-class FPGA attached to one
 * NVMe SSD over a local PCIe link, with a private 1 GB DRAM buffer
 * that caches accelerator parameters (paper §II-C, Fig. 4).
 *
 * Host IO requests aimed at the disk pass through with minimal
 * overhead (the pass-through logic); accelerator commands are
 * filtered off to the engine.
 */

#ifndef REACH_ACC_NS_MODULE_HH
#define REACH_ACC_NS_MODULE_HH

#include "acc/accelerator.hh"
#include "storage/ssd.hh"

namespace reach::acc
{

class NsModule : public Accelerator
{
  public:
    struct NsConfig
    {
        std::uint64_t dramBufferBytes = std::uint64_t(1) << 30;
        /** Private DRAM buffer bandwidth, bytes/s. */
        double dramBufferBandwidth = 19.2e9;
        /** Pass-through added latency for host IO. */
        sim::Tick passThroughLatency = 300; // 0.3 ns
    };

    NsModule(sim::Simulator &sim, const std::string &name,
             storage::Ssd &ssd, const NsConfig &cfg);

    /** Defaults: 1 GB buffer at DDR4 single-channel bandwidth. */
    NsModule(sim::Simulator &sim, const std::string &name,
             storage::Ssd &ssd);

    storage::Ssd &ssd() { return attachedSsd; }

    /**
     * A host IO request passing through to the disk; returns the
     * tick the request reaches the SSD.
     */
    sim::Tick passThrough(sim::Tick at);

    std::uint64_t passThroughCount() const
    {
        return static_cast<std::uint64_t>(statPassThrough.value());
    }

  private:
    storage::Ssd &attachedSsd;
    NsConfig cfg;

    sim::Scalar statPassThrough;
};

} // namespace reach::acc

#endif // REACH_ACC_NS_MODULE_HH
