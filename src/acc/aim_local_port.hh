/**
 * @file
 * The AIM module's detailed local memory port.
 *
 * While the accelerator engine resolves bulk streams with a
 * calibrated 18 GB/s link (Table II), this port drives the
 * cycle-level DIMM model directly — burst by burst, under the
 * closed-row policy the AIM module must use so the DIMM can be
 * handed back precharged (paper §II-B). It exists to *validate* the
 * bulk number: measureLocalStreamingBandwidth() streams a buffer
 * through the detailed model and reports what a ZCU9-class engine
 * can actually sustain from its DIMM.
 */

#ifndef REACH_ACC_AIM_LOCAL_PORT_HH
#define REACH_ACC_AIM_LOCAL_PORT_HH

#include <cstdint>
#include <functional>

#include "mem/dimm.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"

namespace reach::acc
{

struct AimPortConfig
{
    /** Outstanding bursts the module's DMA engine sustains. */
    std::uint32_t maxInflight = 16;
    /** Module-side request issue overhead per burst. */
    sim::Tick issueOverhead = 500; // 0.5 ns
    /**
     * Row policy for local accesses. Per-burst Closed would satisfy
     * the handback invariant trivially but caps the module at
     * ~1.4 GB/s (activate+precharge per 64 B); the realistic reading
     * of the paper's "effectively enforces a closed-row policy" is
     * Open *during* the kernel with a precharge-all at handover
     * (AimModule::onTaskEnd does exactly that), which sustains
     * ~18 GB/s — Table II's number.
     */
    mem::RowPolicy policy = mem::RowPolicy::Open;
};

class AimLocalPort : public sim::SimObject
{
  public:
    AimLocalPort(sim::Simulator &sim, const std::string &name,
                 mem::Dimm &dimm, const AimPortConfig &cfg = {});

    /**
     * Stream @p bytes of sequential reads from DIMM-local address
     * @p base; @p on_done fires when the last burst returns.
     */
    void streamRead(mem::Addr base, std::uint64_t bytes,
                    std::function<void(sim::Tick)> on_done);

    std::uint64_t burstsIssued() const
    {
        return static_cast<std::uint64_t>(statBursts.value());
    }

  private:
    void pump();

    mem::Dimm &dimm;
    AimPortConfig cfg;

    mem::Addr next = 0;
    mem::Addr end = 0;
    std::uint32_t inflight = 0;
    std::function<void(sim::Tick)> done;

    sim::Scalar statBursts;
};

/**
 * Measure the closed-row streaming bandwidth a ZCU9-class AIM module
 * sustains from one DIMM with the detailed model. Compare against
 * Table II's 18 GB/s (bench/ablation_interleaving prints it).
 */
double measureLocalStreamingBandwidth(
    const mem::DramTimings &timings, std::uint64_t bytes = 8 << 20,
    const AimPortConfig &cfg = {});

} // namespace reach::acc

#endif // REACH_ACC_AIM_LOCAL_PORT_HH
