/**
 * @file
 * The accelerator-interposed memory (AIM) module: a near-memory
 * accelerator sitting between one DRAM DIMM and the memory network
 * (paper §II-B, Fig. 3).
 *
 * The module adds, on top of the generic Accelerator engine:
 *  - DIMM ownership handover: while a kernel runs, the host memory
 *    controller must not touch the DIMM; the module runs a
 *    closed-row policy so every bank is precharged at handback;
 *  - a configuration filter that receives kernel-launch commands
 *    over the memory channel;
 *  - a memory access filter that routes data to the local
 *    accelerator, a remote module via the AIMbus, or back to the
 *    host.
 */

#ifndef REACH_ACC_AIM_MODULE_HH
#define REACH_ACC_AIM_MODULE_HH

#include "acc/accelerator.hh"
#include "mem/dimm.hh"
#include "noc/link.hh"

namespace reach::acc
{

class AimModule : public Accelerator
{
  public:
    /**
     * @param dimm    The DIMM this module interposes.
     * @param aimbus  Shared inter-DIMM bus (may be null if absent).
     */
    AimModule(sim::Simulator &sim, const std::string &name,
              mem::Dimm &dimm, noc::Link *aimbus);

    mem::Dimm &dimm() { return attachedDimm; }
    noc::Link *aimBus() { return bus; }

    /**
     * Deliver a kernel-launch command through the configuration
     * filter; returns the tick the command is accepted.
     */
    sim::Tick deliverCommand(sim::Tick at);

    /** Counts for the three access-filter directions. */
    std::uint64_t forwardsLocal() const
    {
        return static_cast<std::uint64_t>(statLocal.value());
    }
    std::uint64_t forwardsRemote() const
    {
        return static_cast<std::uint64_t>(statRemote.value());
    }

    void noteLocalForward() { ++statLocal; }
    void noteRemoteForward() { ++statRemote; }

    void onTaskStart(sim::Tick at) override;
    void onTaskEnd(sim::Tick at) override;

  private:
    mem::Dimm &attachedDimm;
    noc::Link *bus;
    /** Config-filter decode latency for ACC command packets. */
    sim::Tick commandLatency = 50'000; // 50 ns

    sim::Scalar statLocal;
    sim::Scalar statRemote;
    sim::Scalar statHandovers;
};

} // namespace reach::acc

#endif // REACH_ACC_AIM_MODULE_HH
