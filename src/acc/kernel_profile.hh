/**
 * @file
 * FPGA kernel profiles: the synthesis-report parameters the paper
 * plugs into its simulator (Table III) — per-kernel resource
 * utilization, clock frequency, power, and the HLS pipeline model
 * (initiation interval, depth, work per iteration).
 *
 * Timing follows the PARADE/HLS convention:
 *   cycles(task) = pipelineDepth + II * (iterations - 1)
 * with iterations = ceil(task.ops / opsPerIteration).
 */

#ifndef REACH_ACC_KERNEL_PROFILE_HH
#define REACH_ACC_KERNEL_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace reach::acc
{

/** Fractional utilization of the four FPGA resource classes. */
struct FpgaUtilization
{
    double ff = 0;
    double lut = 0;
    double dsp = 0;
    double bram = 0;
};

/** A reconfigurable device with its resource inventory. */
struct FpgaDevice
{
    std::string name;
    std::uint32_t dsps = 0;
    std::uint64_t bramBytes = 0;
    std::uint64_t ffs = 0;
    std::uint64_t luts = 0;
    /** Static (leakage + clocking) power, watts. */
    double staticPowerW = 0;
};

/** Catalog entry for one synthesized kernel bitstream. */
struct KernelProfile
{
    /** Template id, e.g. "CNN-VU9P". */
    std::string id;
    /** Algorithm family: "CNN", "GeMM", "KNN". */
    std::string kernelType;
    /** Device family: "XCVU9P" or "ZCU9EQ". */
    std::string device;
    FpgaUtilization util;
    double freqMHz = 200;
    /** Active power, watts (Table III). */
    double powerW = 10;
    std::uint64_t initiationInterval = 1;
    std::uint64_t pipelineDepth = 64;
    /** Work units (MACs / distance lanes / scan bytes) per II. */
    double opsPerIteration = 256;

    /** Ticks to compute @p ops work units. */
    sim::Tick
    computeTicks(double ops) const
    {
        if (ops <= 0)
            return 0;
        double iters = ops / opsPerIteration;
        std::uint64_t n = static_cast<std::uint64_t>(iters);
        if (static_cast<double>(n) < iters)
            ++n;
        if (n == 0)
            n = 1;
        std::uint64_t cycles =
            pipelineDepth + initiationInterval * (n - 1);
        return static_cast<sim::Tick>(
            static_cast<double>(cycles) *
            sim::periodFromMHz(freqMHz));
    }

    /** Sustained compute throughput, work units per second. */
    double
    throughputOpsPerSec() const
    {
        return opsPerIteration * freqMHz * 1e6 /
               static_cast<double>(initiationInterval);
    }
};

/** The two devices used throughout the paper (Table II/III). */
const FpgaDevice &virtexVu9p();
const FpgaDevice &zynqZcu9();

/**
 * The host core (Table II: one x86-64 OoO core @ 2 GHz), modeled as
 * a compute device so the same machinery can run software baselines
 * (the conventional-CPU comparison the paper's introduction makes).
 */
const FpgaDevice &xeonCore();

/**
 * Table III: the six kernel bitstreams (CNN/GeMM/KNN on VU9P and
 * ZCU9). Near-memory and near-storage deployments of the ZCU9
 * bitstreams differ only in power (the NS module carries a DRAM
 * buffer), handled by powerFor().
 */
const std::vector<KernelProfile> &kernelCatalog();

/** Look up a profile by template id; fatal() if missing. */
const KernelProfile &findKernel(const std::string &id);

/** Look up a profile by template id; nullptr if missing. */
const KernelProfile *findKernelMaybe(const std::string &id);

/**
 * Table III lists two power numbers for ZCU9 kernels: near-memory /
 * near-storage. Returns the right one for the deployment.
 */
double powerFor(const KernelProfile &profile, bool near_storage);

} // namespace reach::acc

#endif // REACH_ACC_KERNEL_PROFILE_HH
