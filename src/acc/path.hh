/**
 * @file
 * Data paths: ordered chains of interconnect links that a bulk
 * transfer traverses, optionally fed by one or more SSD flash arrays
 * (with per-source links) and optionally sinking into an SSD.
 *
 * A transfer is pushed through the chain in chunks, so the chain
 * pipelines: total time approaches bytes / min(stage bandwidth) plus
 * the sum of stage latencies — exactly how streaming accelerators
 * behave. Competing transfers on a shared stage serialize through
 * that stage's reservation state, which is what creates the host-IO
 * bottleneck the paper's rerank experiment exposes. Multiple sources
 * are striped round-robin per chunk, modeling a dataset sharded
 * across an SSD array whose aggregate feeds one shared interconnect.
 */

#ifndef REACH_ACC_PATH_HH
#define REACH_ACC_PATH_HH

#include <cstdint>
#include <vector>

#include "noc/link.hh"
#include "storage/ssd.hh"

namespace reach::acc
{

class Path
{
  public:
    Path() = default;

    /** Append a shared link stage (non-owning). */
    Path &via(noc::Link &link)
    {
        links.push_back(&link);
        return *this;
    }

    /**
     * Add a data source: an SSD plus its private egress link (either
     * may be null). Chunks stripe round-robin across sources.
     */
    Path &from(storage::Ssd *drive, noc::Link *source_link = nullptr)
    {
        if (drive || source_link)
            sources.push_back(Source{drive, source_link});
        return *this;
    }

    /** Source the data from a single SSD's flash array (reads). */
    Path &fromSsd(storage::Ssd &drive) { return from(&drive, nullptr); }

    /** Sink the data into an SSD's flash array (writes). */
    Path &toSsd(storage::Ssd &drive)
    {
        dstSsd = &drive;
        return *this;
    }

    bool
    empty() const
    {
        return links.empty() && sources.empty() && !dstSsd;
    }

    /**
     * Bandwidth of the slowest stage, bytes/second (inf if empty).
     * Parallel sources contribute their aggregate.
     */
    double bottleneckBandwidth() const;

    /**
     * Reserve the whole chain for @p bytes starting no earlier than
     * @p at, pipelined in @p chunk_bytes units.
     * @return tick when the last byte exits the final stage.
     */
    sim::Tick reserve(std::uint64_t bytes, sim::Tick at,
                      std::uint64_t chunk_bytes = defaultChunk) const;

    static constexpr std::uint64_t defaultChunk = 256 * 1024;

  private:
    struct Source
    {
        storage::Ssd *ssd = nullptr;
        noc::Link *link = nullptr;
    };

    std::vector<Source> sources;
    std::vector<noc::Link *> links;
    storage::Ssd *dstSsd = nullptr;
    /** Round-robin striping cursor, persistent across reserve()
     *  calls so per-chunk reservations still cover every source. */
    mutable std::size_t rrCursor = 0;
};

} // namespace reach::acc

#endif // REACH_ACC_PATH_HH
