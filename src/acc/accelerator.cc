#include "accelerator.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace reach::acc
{

const char *
levelName(Level level)
{
    switch (level) {
      case Level::OnChip:
        return "OnChip";
      case Level::NearMem:
        return "NearMem";
      case Level::NearStor:
        return "NearStor";
      case Level::Cpu:
        return "CPU";
    }
    return "?";
}

Accelerator::Accelerator(sim::Simulator &sim, const std::string &name,
                         Level level)
    : sim::SimObject(sim, name),
      lvl(level),
      statTasks(name + ".tasks", "tasks completed"),
      statActive(name + ".activeTicks", "ticks spent on tasks"),
      statCompute(name + ".computeTicks",
                  "ticks the compute pipeline was busy"),
      statOps(name + ".ops", "work units executed"),
      statBytesIn(name + ".bytesIn", "input bytes streamed"),
      statBytesOut(name + ".bytesOut", "output bytes streamed"),
      statParamHits(name + ".paramHits", "parameter buffer hits"),
      statParamMisses(name + ".paramMisses", "parameter buffer misses"),
      statReconfigs(name + ".reconfigs", "bitstream loads"),
      statFaultsInjected(name + ".faultsInjected",
                         "tasks lost to injected faults")
{
    registerStat(statTasks);
    registerStat(statActive);
    registerStat(statCompute);
    registerStat(statOps);
    registerStat(statBytesIn);
    registerStat(statBytesOut);
    registerStat(statParamHits);
    registerStat(statParamMisses);
    registerStat(statReconfigs);
    registerStat(statFaultsInjected);
}

void
Accelerator::configure(const KernelProfile &profile,
                       sim::Tick reconfig_delay)
{
    if (prof && prof->id == profile.id)
        return;
    prof = profile;
    if (profile.device == "XCVU9P")
        staticPowerW = virtexVu9p().staticPowerW;
    else if (profile.device == "XeonCore")
        staticPowerW = xeonCore().staticPowerW;
    else
        staticPowerW = zynqZcu9().staticPowerW;
    ++statReconfigs;
    busyUntil = std::max(busyUntil, now()) + reconfig_delay;
}

void
Accelerator::enableParamBuffer(std::uint64_t capacity_bytes,
                               double buffer_bandwidth)
{
    if (buffer_bandwidth <= 0)
        sim::fatal(name(), ": param buffer bandwidth must be positive");
    paramBufEnabled = true;
    paramBufCapacity = capacity_bytes;
    paramBufBandwidth = buffer_bandwidth;
}

double
Accelerator::activePowerW() const
{
    if (!prof)
        return 0;
    return powerFor(*prof, lvl == Level::NearStor);
}

sim::Tick
Accelerator::fetchParams(const WorkUnit &work, sim::Tick at)
{
    if (work.paramBytes == 0)
        return at;

    if (paramBufEnabled && !work.paramKey.empty()) {
        auto it = std::find_if(
            paramLru.begin(), paramLru.end(),
            [&](const auto &e) { return e.first == work.paramKey; });
        if (it != paramLru.end()) {
            ++statParamHits;
            paramLru.splice(paramLru.begin(), paramLru, it);
            return at + sim::transferTicks(work.paramBytes,
                                           paramBufBandwidth);
        }
        ++statParamMisses;
        // Fetch through the param path, then cache in the buffer.
        sim::Tick ready = paramPath.empty()
                              ? at
                              : paramPath.reserve(work.paramBytes, at);
        paramBufUsed += work.paramBytes;
        paramLru.emplace_front(work.paramKey, work.paramBytes);
        while (paramBufUsed > paramBufCapacity && !paramLru.empty()) {
            paramBufUsed -= paramLru.back().second;
            paramLru.pop_back();
        }
        return ready;
    }

    return paramPath.empty() ? at
                             : paramPath.reserve(work.paramBytes, at);
}

std::pair<sim::Tick, sim::Tick>
Accelerator::reserveTask(const WorkUnit &work)
{
    sim::Tick start = std::max(now(), busyUntil);
    sim::Tick t0 = fetchParams(work, start);

    sim::Tick compute_total = prof->computeTicks(work.ops);
    statCompute += static_cast<double>(compute_total);

    const Path &in =
        !work.inputOverride.empty()
            ? work.inputOverride
            : (work.inputResident && !residentPath.empty()
                   ? residentPath
                   : inputPath);

    sim::Tick end;
    if (work.bytesIn == 0) {
        sim::Tick comp_done = t0 + compute_total;
        end = work.bytesOut && !outputPath.empty()
                  ? outputPath.reserve(work.bytesOut, comp_done)
                  : comp_done;
    } else {
        std::uint64_t chunks =
            std::clamp<std::uint64_t>(work.bytesIn / Path::defaultChunk,
                                      1, maxChunks);
        std::uint64_t in_chunk = work.bytesIn / chunks;
        std::uint64_t out_chunk =
            work.bytesOut ? std::max<std::uint64_t>(work.bytesOut / chunks,
                                                    1)
                          : 0;
        sim::Tick chunk_compute = compute_total / chunks;

        // TLB: streamed pages translated by parallel page walkers; the
        // serial exposure per miss is walkLatency / overlap.
        constexpr sim::Tick walk_overlap = 8;

        sim::Tick comp_done = t0;
        sim::Tick end_stream = t0;
        std::uint64_t consumed_in = 0;
        // Requester-side concurrency limit on the input stream.
        sim::Tick throttle_free = t0;
        for (std::uint64_t k = 0; k < chunks; ++k) {
            std::uint64_t this_in = (k + 1 == chunks)
                                        ? work.bytesIn - consumed_in
                                        : in_chunk;
            consumed_in += this_in;

            sim::Tick enter = t0;
            if (work.inputThrottleBw > 0) {
                enter = std::max(enter, throttle_free);
                throttle_free =
                    enter + sim::transferTicks(this_in,
                                               work.inputThrottleBw);
            }
            sim::Tick arrive =
                in.empty() ? enter : in.reserve(this_in, enter);
            if (work.inputThrottleBw > 0)
                arrive = std::max(arrive, throttle_free);

            if (accTlb && !work.inputResident) {
                std::uint64_t pages = this_in / 4096 + 1;
                sim::Tick extra = 0;
                for (std::uint64_t p = 0; p < pages; ++p) {
                    // Sequential streaming: a fresh page each 4 KiB.
                    extra += accTlb->translate(streamCursor);
                    streamCursor += 4096;
                }
                arrive += extra / walk_overlap;
            }

            comp_done = std::max(comp_done, arrive) + chunk_compute;
            if (out_chunk && !outputPath.empty()) {
                end_stream = outputPath.reserve(out_chunk, comp_done);
            } else {
                end_stream = comp_done;
            }
        }
        end = std::max(comp_done, end_stream);
    }

    busyUntil = end;
    return {start, end};
}

void
Accelerator::execute(const WorkUnit &work,
                     std::function<void(sim::Tick)> on_done)
{
    if (!prof)
        sim::panic(name(), ": execute() before configure()");

    auto [start, end] = reserveTask(work);

    statActive += static_cast<double>(end - start);
    statOps += work.ops;
    statBytesIn += static_cast<double>(work.bytesIn);
    statBytesOut += static_cast<double>(work.bytesOut);

    schedule(start, [this] { onTaskStart(now()); },
             sim::EventPriority::Control, "taskStart");

    // Injected faults: a crash kills the device (every task is lost
    // until repair()), a hang loses just this task. Either way the
    // memory-controller timeout eventually reclaims the module's
    // resources, so the subclass teardown (onTaskEnd — e.g. the AIM
    // module releasing its DIMM) still runs at the reservation end;
    // only the completion signal (statTasks, on_done) never arrives.
    auto injected = fault::FaultInjector::AccFault::None;
    if (faultInj && !isFaulted)
        injected = faultInj->onTaskExecute(name());
    if (injected != fault::FaultInjector::AccFault::None)
        ++statFaultsInjected;
    if (injected == fault::FaultInjector::AccFault::Crash)
        isFaulted = true;
    if (isFaulted || injected != fault::FaultInjector::AccFault::None) {
        schedule(end, [this] { onTaskEnd(now()); },
                 sim::EventPriority::Default, "taskLost");
        return;
    }

    schedule(end, [this, on_done] {
        ++statTasks;
        onTaskEnd(now());
        if (on_done)
            on_done(now());
    }, sim::EventPriority::Default, "taskEnd");
}

sim::Tick
Accelerator::estimateTicks(const WorkUnit &work) const
{
    if (!prof)
        return 0;
    sim::Tick compute = prof->computeTicks(work.ops);

    auto stream_time = [](const Path &p, std::uint64_t bytes) {
        if (p.empty() || bytes == 0)
            return sim::Tick(0);
        return sim::transferTicks(bytes, p.bottleneckBandwidth());
    };

    const Path &in =
        !work.inputOverride.empty()
            ? work.inputOverride
            : (work.inputResident && !residentPath.empty()
                   ? residentPath
                   : inputPath);
    sim::Tick in_time = stream_time(in, work.bytesIn);
    if (work.inputThrottleBw > 0) {
        in_time = std::max(in_time,
                           sim::transferTicks(work.bytesIn,
                                              work.inputThrottleBw));
    }
    sim::Tick t = std::max({compute, in_time,
                            stream_time(outputPath, work.bytesOut)});

    // Parameter fetch: a buffered parameter set streams from the
    // private DRAM buffer, not over the fetch path. The synthesis
    // report gives the GAM this knowledge (paper §III-A).
    sim::Tick param_time = 0;
    if (work.paramBytes > 0) {
        bool buffered =
            paramBufEnabled && !work.paramKey.empty() &&
            std::find_if(paramLru.begin(), paramLru.end(),
                         [&](const auto &e) {
                             return e.first == work.paramKey;
                         }) != paramLru.end();
        param_time = buffered
                         ? sim::transferTicks(work.paramBytes,
                                              paramBufBandwidth)
                         : stream_time(paramPath, work.paramBytes);
    }
    return t + param_time;
}

double
Accelerator::energyJoules(sim::Tick horizon) const
{
    double active_s = sim::secondsFromTicks(
        std::min<sim::Tick>(computeTicksBusy(), horizon));
    double total_s = sim::secondsFromTicks(horizon);
    return active_s * activePowerW() + total_s * staticPowerW;
}

void
Accelerator::onTaskStart(sim::Tick)
{
}

void
Accelerator::onTaskEnd(sim::Tick)
{
}

} // namespace reach::acc
