#include "aim_module.hh"

namespace reach::acc
{

AimModule::AimModule(sim::Simulator &sim, const std::string &name,
                     mem::Dimm &dimm, noc::Link *aimbus)
    : Accelerator(sim, name, Level::NearMem),
      attachedDimm(dimm),
      bus(aimbus),
      statLocal(name + ".fwdLocal", "responses routed to local acc"),
      statRemote(name + ".fwdRemote", "responses routed over AIMbus"),
      statHandovers(name + ".handovers", "DIMM ownership handovers")
{
    registerStat(statLocal);
    registerStat(statRemote);
    registerStat(statHandovers);
}

sim::Tick
AimModule::deliverCommand(sim::Tick at)
{
    return at + commandLatency;
}

void
AimModule::onTaskStart(sim::Tick)
{
    // The host memory controller hands over the DIMM (paper §II-B).
    attachedDimm.setAccOwned(true);
    ++statHandovers;
}

void
AimModule::onTaskEnd(sim::Tick at)
{
    // Closed-row policy means the handback invariant is "all rows
    // precharged"; enforce it before releasing ownership.
    attachedDimm.prechargeAll(at);
    attachedDimm.setAccOwned(false);
}

} // namespace reach::acc
