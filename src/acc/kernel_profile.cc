#include "kernel_profile.hh"

#include "sim/logging.hh"

namespace reach::acc
{

const FpgaDevice &
virtexVu9p()
{
    static const FpgaDevice dev{
        "XCVU9P",
        6840,                       // DSP48 slices
        std::uint64_t(345) << 17,   // ~43 MiB BRAM+URAM
        2'364'480,                  // FFs
        1'182'240,                  // LUTs
        3.0,                        // static power, W
    };
    return dev;
}

const FpgaDevice &
zynqZcu9()
{
    static const FpgaDevice dev{
        "ZCU9EQ",
        2520,
        std::uint64_t(32) << 20,
        548'160,
        274'080,
        0.6,
    };
    return dev;
}

const FpgaDevice &
xeonCore()
{
    static const FpgaDevice dev{
        "XeonCore",
        0, // no DSPs: a software target
        std::uint64_t(32) << 20, // LLC share as "BRAM"
        0,
        0,
        5.0, // uncore + leakage share
    };
    return dev;
}

const std::vector<KernelProfile> &
kernelCatalog()
{
    // Utilization, frequency and power columns follow Table III.
    // opsPerIteration scales with each kernel's DSP budget; the CNN
    // engines additionally exploit deep-compression sparsity (the
    // paper runs the 11.3 MB pruned model [23] on a Caffeine-style
    // engine [24]), so their effective MACs/cycle exceed the dense
    // DSP count. The resulting on-chip : near-data single-instance
    // ratio for CNN is (8192*273)/(1536*200) = 7.3x, inside the
    // paper's reported 7-10x band (Section VI-B).
    static const std::vector<KernelProfile> catalog = {
        // --- Virtex UltraScale+ XCVU9P (on-chip) ---
        {"CNN-VU9P", "CNN", "XCVU9P",
         {0.36, 0.81, 0.78, 0.42}, 273.0, 25.0, 1, 96, 8192.0},
        {"GeMM-VU9P", "GeMM", "XCVU9P",
         {0.24, 0.27, 0.56, 0.77}, 273.0, 22.13, 1, 64, 1024.0},
        {"KNN-VU9P", "KNN", "XCVU9P",
         {0.10, 0.10, 0.10, 0.22}, 200.0, 11.14, 1, 32, 512.0},

        // --- Zynq UltraScale+ ZCU9EQ (near-memory / near-storage) ---
        {"CNN-ZCU9", "CNN", "ZCU9EQ",
         {0.11, 0.31, 0.38, 0.36}, 200.0, 5.19, 1, 96, 1536.0},
        {"GeMM-ZCU9", "GeMM", "ZCU9EQ",
         {0.36, 0.27, 0.76, 0.92}, 150.0, 5.30, 1, 64, 512.0},
        {"KNN-ZCU9", "KNN", "ZCU9EQ",
         {0.23, 0.20, 0.30, 0.22}, 150.0, 1.80, 1, 32, 256.0},

        // --- Software on the host core (conventional baseline) ---
        // One AVX2-ish 2 GHz core: 8 fp32 MACs/cycle for regular
        // GEMM/CNN loops, 4 lanes for branchy KNN selection. Power
        // is the loaded per-core share of a server socket.
        {"CNN-CPU", "CNN", "XeonCore",
         {0, 0, 0, 0}, 2000.0, 15.0, 1, 16, 8.0},
        {"GeMM-CPU", "GeMM", "XeonCore",
         {0, 0, 0, 0}, 2000.0, 15.0, 1, 16, 8.0},
        {"KNN-CPU", "KNN", "XeonCore",
         {0, 0, 0, 0}, 2000.0, 15.0, 1, 16, 4.0},
        // Host-side post-processing of collected results (the
        // process(Result.dequeue()) step of Listing 3).
        {"PROC-CPU", "PROC", "XeonCore",
         {0, 0, 0, 0}, 2000.0, 12.0, 1, 16, 8.0},
    };
    return catalog;
}

const KernelProfile *
findKernelMaybe(const std::string &id)
{
    for (const auto &k : kernelCatalog()) {
        if (k.id == id)
            return &k;
    }
    return nullptr;
}

const KernelProfile &
findKernel(const std::string &id)
{
    if (const KernelProfile *k = findKernelMaybe(id))
        return *k;
    sim::fatal("unknown kernel template '", id,
               "'; see kernelCatalog()");
}

double
powerFor(const KernelProfile &profile, bool near_storage)
{
    if (profile.device != "ZCU9EQ" || !near_storage)
        return profile.powerW;
    // Table III second column: the near-storage deployment adds the
    // private DRAM buffer and its interface.
    if (profile.kernelType == "CNN")
        return 6.13;
    if (profile.kernelType == "GeMM")
        return 8.0;
    if (profile.kernelType == "KNN")
        return 2.4;
    return profile.powerW;
}

} // namespace reach::acc
