#include "index.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "simd/half.hh"

namespace reach::cbir
{

InvertedFileIndex::InvertedFileIndex(const Matrix &vectors,
                                     const KMeansConfig &cfg)
{
    KMeansResult km = kMeans(vectors, cfg);
    cents = std::move(km.centroids);
    buildLists(km.assignment);
    computeNorms();
    vecNormSq = rowNormsSq(vectors, cfg.parallel);
}

InvertedFileIndex::InvertedFileIndex(
    Matrix centroids, std::vector<std::uint32_t> assignment)
    : cents(std::move(centroids))
{
    buildLists(assignment);
    computeNorms();
}

InvertedFileIndex::InvertedFileIndex(
    Matrix centroids, std::vector<std::uint32_t> assignment,
    const Matrix &vectors, const parallel::ParallelConfig &par)
    : cents(std::move(centroids))
{
    if (vectors.rows() != assignment.size()) {
        sim::panic("InvertedFileIndex: ", assignment.size(),
                   " assignments for ", vectors.rows(), " vectors");
    }
    buildLists(assignment);
    computeNorms();
    vecNormSq = rowNormsSq(vectors, par);
}

void
InvertedFileIndex::buildLists(const std::vector<std::uint32_t> &assignment)
{
    lists.assign(cents.rows(), {});
    for (std::size_t i = 0; i < assignment.size(); ++i)
        lists[assignment[i]].push_back(static_cast<std::uint32_t>(i));
}

void
InvertedFileIndex::computeNorms()
{
    centNormSq.resize(cents.rows());
    for (std::size_t c = 0; c < cents.rows(); ++c)
        centNormSq[c] = normSq(cents.row(c));

    // Half-precision copy + norms for the fp16 scan path. Software
    // conversion end to end, so the packed buffer and its norms are
    // identical whatever backend later scans them.
    centsF16.resize(cents.rows() * cents.cols());
    simd::halfFromFloats(cents.flat().data(), cents.flat().size(),
                         centsF16.data());
    centNormSqF16.resize(cents.rows());
    for (std::size_t c = 0; c < cents.rows(); ++c) {
        centNormSqF16[c] =
            simd::halfNormSq(centsF16.data() + c * cents.cols(),
                             cents.cols());
    }
}

void
InvertedFileIndex::buildPq(const Matrix &vectors, const PqConfig &cfg,
                           const parallel::ParallelConfig &par)
{
    if (vectors.rows() != totalIds()) {
        sim::panic("buildPq: ", vectors.rows(), " vectors for an index "
                   "over ", totalIds(), " ids");
    }
    auto cb = std::make_shared<const PqCodebook>(
        PqCodebook::train(vectors, cfg, par));
    std::vector<std::uint8_t> codes = cb->encodeAll(vectors, par);
    attachPq(std::move(cb), codes);
}

void
InvertedFileIndex::attachPq(std::shared_ptr<const PqCodebook> codebook,
                            const std::vector<std::uint8_t> &codesByVectorId)
{
    if (!codebook)
        sim::panic("attachPq: null codebook");
    const std::size_t mb = codebook->codeBytes();
    if (codesByVectorId.size() != totalIds() * mb) {
        sim::panic("attachPq: ", codesByVectorId.size(), " code bytes "
                   "for ", totalIds(), " ids of ", mb, " bytes each");
    }
    pq = std::move(codebook);
    codeLists.assign(lists.size(), {});
    for (std::size_t c = 0; c < lists.size(); ++c) {
        codeLists[c].resize(lists[c].size() * mb);
        for (std::size_t i = 0; i < lists[c].size(); ++i) {
            std::copy_n(
                codesByVectorId.data() + std::size_t(lists[c][i]) * mb,
                mb, codeLists[c].data() + i * mb);
        }
    }
    packedLists.clear();
    if (pq->codeBits() == 4) {
        // Second, block-transposed copy for the shuffle kernel; the
        // per-member layout above stays for decode/refine tooling.
        const std::size_t m = pq->numSubspaces();
        packedLists.assign(lists.size(), {});
        for (std::size_t c = 0; c < lists.size(); ++c) {
            const std::size_t n = lists[c].size();
            packedLists[c].resize(simd::adc4PackedBytes(n, m));
            simd::adc4Pack(codeLists[c].data(), n, m,
                           packedLists[c].data());
        }
    }
}

const PqCodebook &
InvertedFileIndex::pqCodebook() const
{
    if (!pq)
        sim::panic("pqCodebook: index carries no PQ codes");
    return *pq;
}

std::size_t
InvertedFileIndex::totalIds() const
{
    std::size_t n = 0;
    for (const auto &l : lists)
        n += l.size();
    return n;
}

std::size_t
InvertedFileIndex::maxClusterSize() const
{
    std::size_t m = 0;
    for (const auto &l : lists)
        m = std::max(m, l.size());
    return m;
}

std::size_t
InvertedFileIndex::minClusterSize() const
{
    if (lists.empty())
        return 0;
    std::size_t m = lists.front().size();
    for (const auto &l : lists)
        m = std::min(m, l.size());
    return m;
}

} // namespace reach::cbir
