#include "index.hh"

#include <algorithm>

namespace reach::cbir
{

InvertedFileIndex::InvertedFileIndex(const Matrix &vectors,
                                     const KMeansConfig &cfg)
{
    KMeansResult km = kMeans(vectors, cfg);
    cents = std::move(km.centroids);
    buildLists(km.assignment);
    computeNorms();

    const simd::Kernels &k = simd::kernels(cfg.parallel.simd);
    vecNormSq.resize(vectors.rows());
    parallel::parallelFor(
        0, vectors.rows(), 1024,
        [&](std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i) {
                vecNormSq[i] =
                    k.normSq(vectors.row(i).data(), vectors.cols());
            }
        },
        cfg.parallel);
}

InvertedFileIndex::InvertedFileIndex(
    Matrix centroids, std::vector<std::uint32_t> assignment)
    : cents(std::move(centroids))
{
    buildLists(assignment);
    computeNorms();
}

void
InvertedFileIndex::buildLists(const std::vector<std::uint32_t> &assignment)
{
    lists.assign(cents.rows(), {});
    for (std::size_t i = 0; i < assignment.size(); ++i)
        lists[assignment[i]].push_back(static_cast<std::uint32_t>(i));
}

void
InvertedFileIndex::computeNorms()
{
    centNormSq.resize(cents.rows());
    for (std::size_t c = 0; c < cents.rows(); ++c)
        centNormSq[c] = normSq(cents.row(c));
}

std::size_t
InvertedFileIndex::totalIds() const
{
    std::size_t n = 0;
    for (const auto &l : lists)
        n += l.size();
    return n;
}

std::size_t
InvertedFileIndex::maxClusterSize() const
{
    std::size_t m = 0;
    for (const auto &l : lists)
        m = std::max(m, l.size());
    return m;
}

std::size_t
InvertedFileIndex::minClusterSize() const
{
    if (lists.empty())
        return 0;
    std::size_t m = lists.front().size();
    for (const auto &l : lists)
        m = std::min(m, l.size());
    return m;
}

} // namespace reach::cbir
