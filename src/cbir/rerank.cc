#include "rerank.hh"

#include <algorithm>
#include <unordered_set>

#include "sim/logging.hh"

namespace reach::cbir
{

namespace
{

/**
 * The K nearest of @p cands via a bounded max-heap scan: O(n log k)
 * instead of the O(n log n)-ish partial sort, and no mutation of the
 * candidate buffer. The (distSq, id) order is total, so the selected
 * set and its order are independent of the scan order.
 */
std::vector<Neighbor>
selectK(const std::vector<Neighbor> &cands, std::size_t k)
{
    k = std::min(k, cands.size());
    if (k == 0)
        return {};
    auto better = [](const Neighbor &a, const Neighbor &b) {
        if (a.distSq != b.distSq)
            return a.distSq < b.distSq;
        return a.id < b.id;
    };
    std::vector<Neighbor> heap(
        cands.begin(), cands.begin() + static_cast<std::ptrdiff_t>(k));
    std::make_heap(heap.begin(), heap.end(), better);
    for (std::size_t i = k; i < cands.size(); ++i) {
        if (better(cands[i], heap.front())) {
            std::pop_heap(heap.begin(), heap.end(), better);
            heap.back() = cands[i];
            std::push_heap(heap.begin(), heap.end(), better);
        }
    }
    std::sort_heap(heap.begin(), heap.end(), better);
    return heap;
}

} // namespace

RerankResults
rerank(const Matrix &queries, const Matrix &database,
       const InvertedFileIndex &index, const ShortLists &lists,
       const RerankConfig &cfg)
{
    if (lists.size() != queries.rows())
        sim::panic("rerank: one short-list per query required");

    RerankResults out(queries.rows());
    constexpr std::size_t query_grain = 4;
    parallel::parallelFor(
        0, queries.rows(), query_grain,
        [&](std::size_t qb, std::size_t qe) {
            std::vector<Neighbor> cands;
            if (cfg.maxCandidates)
                cands.reserve(cfg.maxCandidates);
            for (std::size_t q = qb; q < qe; ++q) {
                cands.clear();
                for (std::uint32_t cluster : lists[q]) {
                    for (std::uint32_t id : index.cluster(cluster)) {
                        if (cfg.maxCandidates &&
                            cands.size() >= cfg.maxCandidates) {
                            break;
                        }
                        cands.push_back(
                            {id,
                             l2sq(queries.row(q), database.row(id))});
                    }
                    if (cfg.maxCandidates &&
                        cands.size() >= cfg.maxCandidates)
                        break;
                }
                out[q] = selectK(cands, cfg.k);
            }
        },
        cfg.parallel);
    return out;
}

RerankResults
bruteForce(const Matrix &queries, const Matrix &database, std::size_t k,
           const parallel::ParallelConfig &par)
{
    RerankResults out(queries.rows());
    parallel::parallelFor(
        0, queries.rows(), 1,
        [&](std::size_t qb, std::size_t qe) {
            std::vector<Neighbor> cands;
            cands.reserve(database.rows());
            for (std::size_t q = qb; q < qe; ++q) {
                cands.clear();
                for (std::size_t i = 0; i < database.rows(); ++i) {
                    cands.push_back(
                        {static_cast<std::uint32_t>(i),
                         l2sq(queries.row(q), database.row(i))});
                }
                out[q] = selectK(cands, k);
            }
        },
        par);
    return out;
}

double
recallAtK(const RerankResults &got, const RerankResults &truth,
          std::size_t k)
{
    if (got.size() != truth.size())
        sim::panic("recallAtK: result batch size mismatch");
    if (got.empty())
        return 0;

    double sum = 0;
    std::unordered_set<std::uint32_t> truth_ids;
    for (std::size_t q = 0; q < got.size(); ++q) {
        std::size_t kk = std::min({k, got[q].size(), truth[q].size()});
        if (kk == 0)
            continue;
        truth_ids.clear();
        truth_ids.reserve(kk);
        for (std::size_t i = 0; i < kk; ++i)
            truth_ids.insert(truth[q][i].id);
        std::size_t found = 0;
        for (std::size_t j = 0; j < kk; ++j)
            found += truth_ids.count(got[q][j].id);
        sum += static_cast<double>(found) / static_cast<double>(kk);
    }
    return sum / static_cast<double>(got.size());
}

} // namespace reach::cbir
