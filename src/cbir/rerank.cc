#include "rerank.hh"

#include <algorithm>
#include <unordered_set>

#include "sim/logging.hh"
#include "simd/aligned.hh"
#include "simd/simd.hh"

namespace reach::cbir
{

namespace
{

/**
 * The K nearest of @p cands via a bounded max-heap scan: O(n log k)
 * instead of the O(n log n)-ish partial sort, and no mutation of the
 * candidate buffer. The (distSq, id) order is total, so the selected
 * set and its order are independent of the scan order.
 */
bool
better(const Neighbor &a, const Neighbor &b)
{
    if (a.distSq != b.distSq)
        return a.distSq < b.distSq;
    return a.id < b.id;
}

std::vector<Neighbor>
selectK(const std::vector<Neighbor> &cands, std::size_t k)
{
    k = std::min(k, cands.size());
    if (k == 0)
        return {};
    std::vector<Neighbor> heap(
        cands.begin(), cands.begin() + static_cast<std::ptrdiff_t>(k));
    std::make_heap(heap.begin(), heap.end(), better);
    for (std::size_t i = k; i < cands.size(); ++i) {
        if (better(cands[i], heap.front())) {
            std::pop_heap(heap.begin(), heap.end(), better);
            heap.back() = cands[i];
            std::push_heap(heap.begin(), heap.end(), better);
        }
    }
    std::sort_heap(heap.begin(), heap.end(), better);
    return heap;
}

/**
 * selectK over parallel (id, distance) arrays: same total order and
 * result bits, but the candidates are never materialised as Neighbor
 * records — the ADC hot path scans two flat 4-byte streams instead
 * of packing 4096 structs per query just to throw them away.
 */
std::vector<Neighbor>
selectKFlat(std::span<const std::uint32_t> ids,
            std::span<const float> dists, std::size_t k)
{
    k = std::min(k, ids.size());
    if (k == 0)
        return {};
    std::vector<Neighbor> heap;
    heap.reserve(k);
    for (std::size_t i = 0; i < k; ++i)
        heap.push_back({ids[i], dists[i]});
    std::make_heap(heap.begin(), heap.end(), better);
    for (std::size_t i = k; i < ids.size(); ++i) {
        Neighbor nb{ids[i], dists[i]};
        if (better(nb, heap.front())) {
            std::pop_heap(heap.begin(), heap.end(), better);
            heap.back() = nb;
            std::push_heap(heap.begin(), heap.end(), better);
        }
    }
    std::sort_heap(heap.begin(), heap.end(), better);
    return heap;
}

/** 64-byte aligned scratch vector (dot buffers). */
using AlignedFloats =
    std::vector<float, simd::AlignedAllocator<float, 64>>;

/**
 * Per-query batched distance evaluation: one dotIdx sweep reads the
 * scattered candidate rows in place (no gather copy), and distances
 * come from the norm decomposition
 * ||q - x||^2 = ||q||^2 + ||x||^2 - 2 q.x (clamped at zero against
 * cancellation). One kernel call per query instead of one strided
 * l2sq per candidate pair.
 */
void
scoreCandidates(const simd::Kernels &k, std::span<const float> query,
                const Matrix &database, std::span<const float> norms,
                const std::vector<std::uint32_t> &ids,
                AlignedFloats &dots, std::vector<Neighbor> &cands)
{
    const std::size_t d = database.cols();
    const std::size_t n = ids.size();
    dots.resize(n);
    k.dotIdx(query.data(), database.flat().data(), ids.data(), n, d,
             dots.data());
    float qn = k.normSq(query.data(), d);
    for (std::size_t r = 0; r < n; ++r) {
        float dist = qn + norms[ids[r]] - 2.0f * dots[r];
        cands.push_back({ids[r], std::max(dist, 0.0f)});
    }
}

/**
 * ||x||^2 per database row: reuse the index's precomputed norms when
 * they cover this database, otherwise one shared rowNormsSq pass.
 */
std::vector<float>
databaseNorms(const Matrix &database, const std::vector<float> *pre,
              const parallel::ParallelConfig &par)
{
    if (pre != nullptr && pre->size() == database.rows())
        return *pre;
    return rowNormsSq(database, par);
}

/**
 * Compressed scoring of one query: build the ADC table once, then
 * scan each short-listed cluster's contiguous code block with the
 * batched gather kernel — M table lookups per candidate instead of a
 * D-dim dot product, and M bytes read instead of a full row. The
 * candidate set (per-cluster prefixes up to the budget) is exactly
 * the one the exact path gathers. The table build is
 * backend-independent and adcBatch is bitwise cross-backend, so this
 * scoring returns identical bits on every backend.
 */
void
scoreCandidatesPq(const simd::Kernels &k, const PqCodebook &cb,
                  std::span<const float> query,
                  const InvertedFileIndex &index,
                  const std::vector<std::uint32_t> &clusters,
                  std::size_t max_candidates, float *lut,
                  std::vector<std::uint32_t> &ids,
                  AlignedFloats &dists)
{
    cb.adcTable(query, lut);
    const std::size_t m = cb.numSubspaces();
    const std::size_t stride = cb.lutStride();
    for (std::uint32_t cluster : clusters) {
        const auto &members = index.cluster(cluster);
        std::size_t take = members.size();
        if (max_candidates)
            take = std::min(take, max_candidates - ids.size());
        if (take == 0)
            continue;
        const std::size_t base = ids.size();
        ids.insert(ids.end(), members.begin(),
                   members.begin() + static_cast<std::ptrdiff_t>(take));
        dists.resize(base + take);
        k.adcBatch(lut, stride, index.clusterCodes(cluster).data(),
                   take, m, dists.data() + base);
        if (max_candidates && ids.size() >= max_candidates)
            break;
    }
}

/** 64-byte aligned u8 scratch (the register-resident shuffle LUT). */
using AlignedBytes =
    std::vector<std::uint8_t, simd::AlignedAllocator<std::uint8_t, 64>>;

/**
 * 4-bit sibling of scoreCandidatesPq: one u8-quantized table per
 * query, then each cluster's FastScan block stream is scored 32
 * candidates per shuffle sweep. The quantization and packing are
 * backend-independent and adcBatch4 is bitwise cross-backend (exact
 * integer sums, one fused multiply-add), so this path too returns
 * identical bits on every backend and thread count.
 */
void
scoreCandidatesPq4(const simd::Kernels &k, const PqCodebook &cb,
                   std::span<const float> query,
                   const InvertedFileIndex &index,
                   const std::vector<std::uint32_t> &clusters,
                   std::size_t max_candidates, std::uint8_t *lut4,
                   std::vector<std::uint32_t> &ids,
                   AlignedFloats &dists)
{
    const PqCodebook::AdcQuantParams qp = cb.adcTable4(query, lut4);
    const std::size_t m = cb.numSubspaces();
    for (std::uint32_t cluster : clusters) {
        const auto &members = index.cluster(cluster);
        std::size_t take = members.size();
        if (max_candidates)
            take = std::min(take, max_candidates - ids.size());
        if (take == 0)
            continue;
        const std::size_t base = ids.size();
        ids.insert(ids.end(), members.begin(),
                   members.begin() + static_cast<std::ptrdiff_t>(take));
        dists.resize(base + take);
        k.adcBatch4(lut4, index.clusterPackedCodes(cluster).data(),
                    take, m, qp.scale, qp.bias, dists.data() + base);
        if (max_candidates && ids.size() >= max_candidates)
            break;
    }
}

} // namespace

RerankResults
rerank(const Matrix &queries, const Matrix &database,
       const InvertedFileIndex &index, const ShortLists &lists,
       const RerankConfig &cfg)
{
    if (lists.size() != queries.rows())
        sim::panic("rerank: one short-list per query required");
    if (cfg.usePq && !index.hasPq()) {
        sim::panic("rerank: usePq requires an index with PQ codes "
                   "(InvertedFileIndex::buildPq)");
    }

    const simd::Kernels &k = simd::kernels(cfg.parallel.simd);
    // Pure-ADC runs never touch the float rows, so skip the norm
    // precompute (it is a full database pass when the index lacks
    // cached norms).
    const bool needs_exact = !cfg.usePq || cfg.pqRefine > 0;
    const std::vector<float> norms =
        needs_exact
            ? databaseNorms(database, &index.vectorNormsSq(),
                            cfg.parallel)
            : std::vector<float>{};

    RerankResults out(queries.rows());
    constexpr std::size_t query_grain = 4;
    parallel::parallelFor(
        0, queries.rows(), query_grain,
        [&](std::size_t qb, std::size_t qe) {
            std::vector<std::uint32_t> ids;
            std::vector<Neighbor> cands;
            AlignedFloats dots;
            AlignedFloats adc;
            AlignedFloats lut;
            AlignedBytes lut4;
            const bool pq4 =
                cfg.usePq && index.pqCodebook().codeBits() == 4;
            if (pq4) {
                lut4.resize(index.pqCodebook().numSubspaces() *
                            simd::kAdc4LutStride);
            } else if (cfg.usePq) {
                lut.resize(index.pqCodebook().lutFloats());
            }
            if (cfg.maxCandidates) {
                ids.reserve(cfg.maxCandidates);
                cands.reserve(cfg.maxCandidates);
                adc.reserve(cfg.maxCandidates);
            }
            for (std::size_t q = qb; q < qe; ++q) {
                ids.clear();
                cands.clear();
                if (cfg.usePq) {
                    adc.clear();
                    if (pq4) {
                        scoreCandidatesPq4(k, index.pqCodebook(),
                                           queries.row(q), index,
                                           lists[q],
                                           cfg.maxCandidates,
                                           lut4.data(), ids, adc);
                    } else {
                        scoreCandidatesPq(k, index.pqCodebook(),
                                          queries.row(q), index,
                                          lists[q],
                                          cfg.maxCandidates,
                                          lut.data(), ids, adc);
                    }
                    if (cfg.pqRefine > 0) {
                        std::vector<Neighbor> top = selectKFlat(
                            ids, adc, std::max(cfg.k, cfg.pqRefine));
                        ids.clear();
                        for (const Neighbor &nb : top)
                            ids.push_back(nb.id);
                        scoreCandidates(k, queries.row(q), database,
                                        norms, ids, dots, cands);
                        out[q] = selectK(cands, cfg.k);
                    } else {
                        out[q] = selectKFlat(ids, adc, cfg.k);
                    }
                    continue;
                }
                for (std::uint32_t cluster : lists[q]) {
                    for (std::uint32_t id : index.cluster(cluster)) {
                        if (cfg.maxCandidates &&
                            ids.size() >= cfg.maxCandidates) {
                            break;
                        }
                        ids.push_back(id);
                    }
                    if (cfg.maxCandidates &&
                        ids.size() >= cfg.maxCandidates)
                        break;
                }
                scoreCandidates(k, queries.row(q), database, norms,
                                ids, dots, cands);
                out[q] = selectK(cands, cfg.k);
            }
        },
        cfg.parallel);
    return out;
}

RerankResults
bruteForce(const Matrix &queries, const Matrix &database, std::size_t k,
           const parallel::ParallelConfig &par)
{
    const simd::Kernels &kern = simd::kernels(par.simd);
    const std::vector<float> norms =
        databaseNorms(database, nullptr, par);
    const std::size_t d = database.cols();
    const std::size_t n = database.rows();

    RerankResults out(queries.rows());
    parallel::parallelFor(
        0, queries.rows(), 1,
        [&](std::size_t qb, std::size_t qe) {
            std::vector<Neighbor> cands;
            std::vector<float> dots(n);
            cands.reserve(n);
            for (std::size_t q = qb; q < qe; ++q) {
                cands.clear();
                // Database rows are already contiguous: one batched
                // dot sweep, no gather needed.
                kern.dotBatch(queries.row(q).data(),
                              database.flat().data(), n, d,
                              dots.data());
                float qn = kern.normSq(queries.row(q).data(), d);
                for (std::size_t i = 0; i < n; ++i) {
                    float dist = qn + norms[i] - 2.0f * dots[i];
                    cands.push_back({static_cast<std::uint32_t>(i),
                                     std::max(dist, 0.0f)});
                }
                out[q] = selectK(cands, k);
            }
        },
        par);
    return out;
}

double
recallAtK(const RerankResults &got, const RerankResults &truth,
          std::size_t k)
{
    if (got.size() != truth.size())
        sim::panic("recallAtK: result batch size mismatch");
    if (got.empty())
        return 0;

    double sum = 0;
    std::unordered_set<std::uint32_t> truth_ids;
    for (std::size_t q = 0; q < got.size(); ++q) {
        std::size_t kk = std::min({k, got[q].size(), truth[q].size()});
        if (kk == 0)
            continue;
        truth_ids.clear();
        truth_ids.reserve(kk);
        for (std::size_t i = 0; i < kk; ++i)
            truth_ids.insert(truth[q][i].id);
        std::size_t found = 0;
        for (std::size_t j = 0; j < kk; ++j)
            found += truth_ids.count(got[q][j].id);
        sum += static_cast<double>(found) / static_cast<double>(kk);
    }
    return sum / static_cast<double>(got.size());
}

} // namespace reach::cbir
