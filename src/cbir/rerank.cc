#include "rerank.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace reach::cbir
{

namespace
{

std::vector<Neighbor>
selectK(std::vector<Neighbor> &cands, std::size_t k)
{
    k = std::min(k, cands.size());
    auto cmp = [](const Neighbor &a, const Neighbor &b) {
        if (a.distSq != b.distSq)
            return a.distSq < b.distSq;
        return a.id < b.id;
    };
    std::partial_sort(cands.begin(),
                      cands.begin() + static_cast<std::ptrdiff_t>(k),
                      cands.end(), cmp);
    cands.resize(k);
    return cands;
}

} // namespace

RerankResults
rerank(const Matrix &queries, const Matrix &database,
       const InvertedFileIndex &index, const ShortLists &lists,
       const RerankConfig &cfg)
{
    if (lists.size() != queries.rows())
        sim::panic("rerank: one short-list per query required");

    RerankResults out(queries.rows());
    for (std::size_t q = 0; q < queries.rows(); ++q) {
        std::vector<Neighbor> cands;
        for (std::uint32_t cluster : lists[q]) {
            for (std::uint32_t id : index.cluster(cluster)) {
                if (cfg.maxCandidates &&
                    cands.size() >= cfg.maxCandidates) {
                    break;
                }
                cands.push_back(
                    {id, l2sq(queries.row(q), database.row(id))});
            }
            if (cfg.maxCandidates && cands.size() >= cfg.maxCandidates)
                break;
        }
        out[q] = selectK(cands, cfg.k);
    }
    return out;
}

RerankResults
bruteForce(const Matrix &queries, const Matrix &database, std::size_t k)
{
    RerankResults out(queries.rows());
    for (std::size_t q = 0; q < queries.rows(); ++q) {
        std::vector<Neighbor> cands;
        cands.reserve(database.rows());
        for (std::size_t i = 0; i < database.rows(); ++i) {
            cands.push_back({static_cast<std::uint32_t>(i),
                             l2sq(queries.row(q), database.row(i))});
        }
        out[q] = selectK(cands, k);
    }
    return out;
}

double
recallAtK(const RerankResults &got, const RerankResults &truth,
          std::size_t k)
{
    if (got.size() != truth.size())
        sim::panic("recallAtK: result batch size mismatch");
    if (got.empty())
        return 0;

    double sum = 0;
    for (std::size_t q = 0; q < got.size(); ++q) {
        std::size_t kk = std::min({k, got[q].size(), truth[q].size()});
        if (kk == 0)
            continue;
        std::size_t found = 0;
        for (std::size_t i = 0; i < kk; ++i) {
            for (std::size_t j = 0; j < kk; ++j) {
                if (truth[q][i].id == got[q][j].id) {
                    ++found;
                    break;
                }
            }
        }
        sum += static_cast<double>(found) / static_cast<double>(kk);
    }
    return sum / static_cast<double>(got.size());
}

} // namespace reach::cbir
