#include "rerank.hh"

#include <algorithm>
#include <unordered_set>

#include "sim/logging.hh"
#include "simd/aligned.hh"
#include "simd/simd.hh"

namespace reach::cbir
{

namespace
{

/**
 * The K nearest of @p cands via a bounded max-heap scan: O(n log k)
 * instead of the O(n log n)-ish partial sort, and no mutation of the
 * candidate buffer. The (distSq, id) order is total, so the selected
 * set and its order are independent of the scan order.
 */
bool
better(const Neighbor &a, const Neighbor &b)
{
    if (a.distSq != b.distSq)
        return a.distSq < b.distSq;
    return a.id < b.id;
}

std::vector<Neighbor>
selectK(const std::vector<Neighbor> &cands, std::size_t k)
{
    k = std::min(k, cands.size());
    if (k == 0)
        return {};
    std::vector<Neighbor> heap(
        cands.begin(), cands.begin() + static_cast<std::ptrdiff_t>(k));
    std::make_heap(heap.begin(), heap.end(), better);
    for (std::size_t i = k; i < cands.size(); ++i) {
        if (better(cands[i], heap.front())) {
            std::pop_heap(heap.begin(), heap.end(), better);
            heap.back() = cands[i];
            std::push_heap(heap.begin(), heap.end(), better);
        }
    }
    std::sort_heap(heap.begin(), heap.end(), better);
    return heap;
}

/**
 * selectK over parallel (id, distance) arrays: same total order and
 * result bits, but the candidates are never materialised as Neighbor
 * records — the ADC hot path scans two flat 4-byte streams instead
 * of packing 4096 structs per query just to throw them away.
 */
std::vector<Neighbor>
selectKFlat(std::span<const std::uint32_t> ids,
            std::span<const float> dists, std::size_t k)
{
    k = std::min(k, ids.size());
    if (k == 0)
        return {};
    std::vector<Neighbor> heap;
    heap.reserve(k);
    for (std::size_t i = 0; i < k; ++i)
        heap.push_back({ids[i], dists[i]});
    std::make_heap(heap.begin(), heap.end(), better);
    for (std::size_t i = k; i < ids.size(); ++i) {
        Neighbor nb{ids[i], dists[i]};
        if (better(nb, heap.front())) {
            std::pop_heap(heap.begin(), heap.end(), better);
            heap.back() = nb;
            std::push_heap(heap.begin(), heap.end(), better);
        }
    }
    std::sort_heap(heap.begin(), heap.end(), better);
    return heap;
}

/** 64-byte aligned scratch vector (dot buffers). */
using AlignedFloats =
    std::vector<float, simd::AlignedAllocator<float, 64>>;

/**
 * Per-query batched distance evaluation: one dotIdx sweep reads the
 * scattered candidate rows in place (no gather copy), and distances
 * come from the norm decomposition
 * ||q - x||^2 = ||q||^2 + ||x||^2 - 2 q.x (clamped at zero against
 * cancellation). One kernel call per query instead of one strided
 * l2sq per candidate pair.
 */
void
scoreCandidates(const simd::Kernels &k, std::span<const float> query,
                const Matrix &database, std::span<const float> norms,
                const std::vector<std::uint32_t> &ids,
                AlignedFloats &dots, std::vector<Neighbor> &cands)
{
    const std::size_t d = database.cols();
    const std::size_t n = ids.size();
    dots.resize(n);
    k.dotIdx(query.data(), database.flat().data(), ids.data(), n, d,
             dots.data());
    float qn = k.normSq(query.data(), d);
    for (std::size_t r = 0; r < n; ++r) {
        float dist = qn + norms[ids[r]] - 2.0f * dots[r];
        cands.push_back({ids[r], std::max(dist, 0.0f)});
    }
}

/**
 * ||x||^2 per database row: reuse the index's precomputed norms when
 * they cover this database, otherwise one shared rowNormsSq pass.
 */
std::vector<float>
databaseNorms(const Matrix &database, const std::vector<float> *pre,
              const parallel::ParallelConfig &par)
{
    if (pre != nullptr && pre->size() == database.rows())
        return *pre;
    return rowNormsSq(database, par);
}

/**
 * Compressed scoring of one query: build the ADC table once, then
 * scan each short-listed cluster's contiguous code block with the
 * batched gather kernel — M table lookups per candidate instead of a
 * D-dim dot product, and M bytes read instead of a full row. The
 * candidate set (per-cluster prefixes up to the budget) is exactly
 * the one the exact path gathers. The table build is
 * backend-independent and adcBatch is bitwise cross-backend, so this
 * scoring returns identical bits on every backend.
 */
void
scoreCandidatesPq(const simd::Kernels &k, const PqCodebook &cb,
                  std::span<const float> query,
                  const InvertedFileIndex &index,
                  const std::vector<std::uint32_t> &clusters,
                  std::size_t max_candidates, float *lut,
                  std::vector<std::uint32_t> &ids,
                  AlignedFloats &dists)
{
    cb.adcTable(query, lut);
    const std::size_t m = cb.numSubspaces();
    const std::size_t stride = cb.lutStride();
    for (std::uint32_t cluster : clusters) {
        // Guard before the subtraction: once the budget is full the
        // unsigned `max_candidates - ids.size()` below would wrap.
        if (max_candidates && ids.size() >= max_candidates)
            break;
        const auto &members = index.cluster(cluster);
        std::size_t take = members.size();
        if (max_candidates)
            take = std::min(take, max_candidates - ids.size());
        if (take == 0)
            continue;
        const std::size_t base = ids.size();
        ids.insert(ids.end(), members.begin(),
                   members.begin() + static_cast<std::ptrdiff_t>(take));
        dists.resize(base + take);
        k.adcBatch(lut, stride, index.clusterCodes(cluster).data(),
                   take, m, dists.data() + base);
    }
}

/** 64-byte aligned u8 scratch (the register-resident shuffle LUT). */
using AlignedBytes =
    std::vector<std::uint8_t, simd::AlignedAllocator<std::uint8_t, 64>>;

/**
 * 4-bit sibling of scoreCandidatesPq: one u8-quantized table per
 * query, then each cluster's FastScan block stream is scored 32
 * candidates per shuffle sweep. The quantization and packing are
 * backend-independent and adcBatch4 is bitwise cross-backend (exact
 * integer sums, one fused multiply-add), so this path too returns
 * identical bits on every backend and thread count.
 */
void
scoreCandidatesPq4(const simd::Kernels &k, const PqCodebook &cb,
                   std::span<const float> query,
                   const InvertedFileIndex &index,
                   const std::vector<std::uint32_t> &clusters,
                   std::size_t max_candidates, std::uint8_t *lut4,
                   std::vector<std::uint32_t> &ids,
                   AlignedFloats &dists)
{
    const PqCodebook::AdcQuantParams qp = cb.adcTable4(query, lut4);
    const std::size_t m = cb.numSubspaces();
    for (std::uint32_t cluster : clusters) {
        // Same wrap guard as scoreCandidatesPq.
        if (max_candidates && ids.size() >= max_candidates)
            break;
        const auto &members = index.cluster(cluster);
        std::size_t take = members.size();
        if (max_candidates)
            take = std::min(take, max_candidates - ids.size());
        if (take == 0)
            continue;
        const std::size_t base = ids.size();
        ids.insert(ids.end(), members.begin(),
                   members.begin() + static_cast<std::ptrdiff_t>(take));
        dists.resize(base + take);
        k.adcBatch4(lut4, index.clusterPackedCodes(cluster).data(),
                    take, m, qp.scale, qp.bias, dists.data() + base);
    }
}

/** Per-query worker grain of the rerank parallel loops. */
constexpr std::size_t kQueryGrain = 4;

/**
 * Cluster-major batched ADC scan (RerankConfig::batchedScan): the
 * query-major loop above streams every probed cluster's code block
 * once per probing query; here the whole batch is planned first and
 * each block streams once per batch.
 *
 * Three deterministic stages:
 *   1. Plan (sequential): walk every query's short-list computing the
 *      same per-cluster prefix `take` as the query-major truncation,
 *      gather the candidate ids into per-query flat arrays, and
 *      invert the probes into cluster -> [(query, offset, take)]
 *      segments.
 *   2. Tables + scan (parallel): one ADC table per query into a
 *      shared arena, then a parallel sweep over the probed clusters —
 *      each cluster's block goes through the multi-query kernel
 *      against all its probing queries' tables. Every (query,
 *      cluster) segment is written by exactly one cluster task into a
 *      disjoint slice of that query's distance array, so the split
 *      across threads can't race or reorder any arithmetic.
 *   3. Select (parallel per query): identical selection / exact
 *      refine code as the query-major path.
 * Stage 2's kernels are bitwise-equal to per-query adcBatch calls by
 * the multi-kernel contract and stage 1 reproduces the query-major
 * candidate sets exactly, so the returned top-K matches the
 * query-major path bit for bit at any backend, batch size and thread
 * count.
 */
RerankResults
rerankBatchedPq(const simd::Kernels &k, const Matrix &queries,
                const Matrix &database, const InvertedFileIndex &index,
                const ShortLists &lists, const RerankConfig &cfg,
                const std::vector<float> &norms)
{
    const PqCodebook &cb = index.pqCodebook();
    const bool pq4 = cb.codeBits() == 4;
    const std::size_t nq = queries.rows();
    const std::size_t m = cb.numSubspaces();
    const std::size_t stride = cb.lutStride();

    struct Seg
    {
        std::uint32_t query;
        std::size_t offset;
        std::size_t take;
    };
    std::vector<std::vector<Seg>> byCluster(index.numClusters());
    std::vector<std::vector<std::uint32_t>> ids(nq);
    std::vector<AlignedFloats> adc(nq);
    for (std::size_t q = 0; q < nq; ++q) {
        std::size_t total = 0;
        for (std::uint32_t cluster : lists[q]) {
            if (cfg.maxCandidates && total >= cfg.maxCandidates)
                break;
            const auto &members = index.cluster(cluster);
            std::size_t take = members.size();
            if (cfg.maxCandidates)
                take = std::min(take, cfg.maxCandidates - total);
            if (take == 0)
                continue;
            byCluster[cluster].push_back(
                {static_cast<std::uint32_t>(q), total, take});
            ids[q].insert(
                ids[q].end(), members.begin(),
                members.begin() + static_cast<std::ptrdiff_t>(take));
            total += take;
        }
        adc[q].resize(total);
    }

    // Per-batch table arena: nq tables side by side so the scan stage
    // only indexes, never allocates.
    const std::size_t lutBytes4 = m * simd::kAdc4LutStride;
    AlignedBytes lut4Arena;
    AlignedFloats lutArena;
    std::vector<float> scales(pq4 ? nq : 0);
    std::vector<float> biases(pq4 ? nq : 0);
    if (pq4)
        lut4Arena.resize(nq * lutBytes4);
    else
        lutArena.resize(nq * cb.lutFloats());
    parallel::parallelFor(
        0, nq, kQueryGrain,
        [&](std::size_t qb, std::size_t qe) {
            for (std::size_t q = qb; q < qe; ++q) {
                if (pq4) {
                    const PqCodebook::AdcQuantParams qp = cb.adcTable4(
                        queries.row(q),
                        lut4Arena.data() + q * lutBytes4);
                    scales[q] = qp.scale;
                    biases[q] = qp.bias;
                } else {
                    cb.adcTable(queries.row(q),
                                lutArena.data() + q * cb.lutFloats());
                }
            }
        },
        cfg.parallel);

    std::vector<std::uint32_t> active;
    for (std::size_t c = 0; c < byCluster.size(); ++c) {
        if (!byCluster[c].empty())
            active.push_back(static_cast<std::uint32_t>(c));
    }
    parallel::parallelFor(
        0, active.size(), 1,
        [&](std::size_t cb_, std::size_t ce_) {
            std::vector<const float *> luts;
            std::vector<const std::uint8_t *> luts4;
            std::vector<std::size_t> ns;
            std::vector<float *> outs;
            for (std::size_t i = cb_; i < ce_; ++i) {
                const std::uint32_t cluster = active[i];
                const std::vector<Seg> &segs = byCluster[cluster];
                const std::size_t g = segs.size();
                ns.resize(g);
                outs.resize(g);
                (pq4 ? luts4.resize(g) : luts.resize(g));
                std::vector<float> sc(pq4 ? g : 0);
                std::vector<float> bi(pq4 ? g : 0);
                for (std::size_t s = 0; s < g; ++s) {
                    const Seg &seg = segs[s];
                    ns[s] = seg.take;
                    outs[s] = adc[seg.query].data() + seg.offset;
                    if (pq4) {
                        luts4[s] = lut4Arena.data() +
                                   seg.query * lutBytes4;
                        sc[s] = scales[seg.query];
                        bi[s] = biases[seg.query];
                    } else {
                        luts[s] = lutArena.data() +
                                  seg.query * cb.lutFloats();
                    }
                }
                if (pq4) {
                    k.adcBatch4Multi(
                        luts4.data(), ns.data(), g,
                        index.clusterPackedCodes(cluster).data(), m,
                        sc.data(), bi.data(), outs.data());
                } else {
                    k.adcBatchMulti(luts.data(), stride, ns.data(), g,
                                    index.clusterCodes(cluster).data(),
                                    m, outs.data());
                }
            }
        },
        cfg.parallel);

    RerankResults out(nq);
    parallel::parallelFor(
        0, nq, kQueryGrain,
        [&](std::size_t qb, std::size_t qe) {
            std::vector<std::uint32_t> rids;
            std::vector<Neighbor> cands;
            AlignedFloats dots;
            if (cfg.pqRefine > 0) {
                rids.reserve(std::max(cfg.k, cfg.pqRefine));
                cands.reserve(std::max(cfg.k, cfg.pqRefine));
            }
            for (std::size_t q = qb; q < qe; ++q) {
                if (cfg.pqRefine > 0) {
                    std::vector<Neighbor> top = selectKFlat(
                        ids[q], adc[q], std::max(cfg.k, cfg.pqRefine));
                    rids.clear();
                    for (const Neighbor &nb : top)
                        rids.push_back(nb.id);
                    cands.clear();
                    scoreCandidates(k, queries.row(q), database, norms,
                                    rids, dots, cands);
                    out[q] = selectK(cands, cfg.k);
                } else {
                    out[q] = selectKFlat(ids[q], adc[q], cfg.k);
                }
            }
        },
        cfg.parallel);
    return out;
}

} // namespace

RerankResults
rerank(const Matrix &queries, const Matrix &database,
       const InvertedFileIndex &index, const ShortLists &lists,
       const RerankConfig &cfg)
{
    if (lists.size() != queries.rows())
        sim::panic("rerank: one short-list per query required");
    if (cfg.usePq && !index.hasPq()) {
        sim::panic("rerank: usePq requires an index with PQ codes "
                   "(InvertedFileIndex::buildPq)");
    }

    const simd::Kernels &k = simd::kernels(cfg.parallel.simd);
    // Pure-ADC runs never touch the float rows, so skip the norm
    // precompute (it is a full database pass when the index lacks
    // cached norms).
    const bool needs_exact = !cfg.usePq || cfg.pqRefine > 0;
    const std::vector<float> norms =
        needs_exact
            ? databaseNorms(database, &index.vectorNormsSq(),
                            cfg.parallel)
            : std::vector<float>{};

    if (cfg.usePq && cfg.batchedScan) {
        return rerankBatchedPq(k, queries, database, index, lists, cfg,
                               norms);
    }

    RerankResults out(queries.rows());
    parallel::parallelFor(
        0, queries.rows(), kQueryGrain,
        [&](std::size_t qb, std::size_t qe) {
            std::vector<std::uint32_t> ids;
            std::vector<Neighbor> cands;
            AlignedFloats dots;
            AlignedFloats adc;
            AlignedFloats lut;
            AlignedBytes lut4;
            const bool pq4 =
                cfg.usePq && index.pqCodebook().codeBits() == 4;
            if (pq4) {
                lut4.resize(index.pqCodebook().numSubspaces() *
                            simd::kAdc4LutStride);
            } else if (cfg.usePq) {
                lut.resize(index.pqCodebook().lutFloats());
            }
            // Reserve only what the selected path touches: the ADC
            // scan fills ids + adc; the exact path fills ids + cands
            // (one Neighbor per candidate); the refine stage holds at
            // most max(k, pqRefine) survivors in cands.
            if (cfg.maxCandidates)
                ids.reserve(cfg.maxCandidates);
            if (cfg.usePq) {
                if (cfg.maxCandidates)
                    adc.reserve(cfg.maxCandidates);
                if (cfg.pqRefine > 0)
                    cands.reserve(std::max(cfg.k, cfg.pqRefine));
            } else if (cfg.maxCandidates) {
                cands.reserve(cfg.maxCandidates);
            }
            for (std::size_t q = qb; q < qe; ++q) {
                ids.clear();
                cands.clear();
                if (cfg.usePq) {
                    adc.clear();
                    if (pq4) {
                        scoreCandidatesPq4(k, index.pqCodebook(),
                                           queries.row(q), index,
                                           lists[q],
                                           cfg.maxCandidates,
                                           lut4.data(), ids, adc);
                    } else {
                        scoreCandidatesPq(k, index.pqCodebook(),
                                          queries.row(q), index,
                                          lists[q],
                                          cfg.maxCandidates,
                                          lut.data(), ids, adc);
                    }
                    if (cfg.pqRefine > 0) {
                        std::vector<Neighbor> top = selectKFlat(
                            ids, adc, std::max(cfg.k, cfg.pqRefine));
                        ids.clear();
                        for (const Neighbor &nb : top)
                            ids.push_back(nb.id);
                        scoreCandidates(k, queries.row(q), database,
                                        norms, ids, dots, cands);
                        out[q] = selectK(cands, cfg.k);
                    } else {
                        out[q] = selectKFlat(ids, adc, cfg.k);
                    }
                    continue;
                }
                // Ranged prefix copies, one per cluster, with the
                // truncation hoisted out of the member walk — the
                // same gather scoreCandidatesPq uses.
                for (std::uint32_t cluster : lists[q]) {
                    if (cfg.maxCandidates &&
                        ids.size() >= cfg.maxCandidates)
                        break;
                    const auto &members = index.cluster(cluster);
                    std::size_t take = members.size();
                    if (cfg.maxCandidates)
                        take = std::min(take, cfg.maxCandidates -
                                                  ids.size());
                    ids.insert(ids.end(), members.begin(),
                               members.begin() +
                                   static_cast<std::ptrdiff_t>(take));
                }
                scoreCandidates(k, queries.row(q), database, norms,
                                ids, dots, cands);
                out[q] = selectK(cands, cfg.k);
            }
        },
        cfg.parallel);
    return out;
}

RerankResults
bruteForce(const Matrix &queries, const Matrix &database, std::size_t k,
           const parallel::ParallelConfig &par)
{
    const simd::Kernels &kern = simd::kernels(par.simd);
    const std::vector<float> norms =
        databaseNorms(database, nullptr, par);
    const std::size_t d = database.cols();
    const std::size_t n = database.rows();

    RerankResults out(queries.rows());
    parallel::parallelFor(
        0, queries.rows(), 1,
        [&](std::size_t qb, std::size_t qe) {
            std::vector<Neighbor> cands;
            std::vector<float> dots(n);
            cands.reserve(n);
            for (std::size_t q = qb; q < qe; ++q) {
                cands.clear();
                // Database rows are already contiguous: one batched
                // dot sweep, no gather needed.
                kern.dotBatch(queries.row(q).data(),
                              database.flat().data(), n, d,
                              dots.data());
                float qn = kern.normSq(queries.row(q).data(), d);
                for (std::size_t i = 0; i < n; ++i) {
                    float dist = qn + norms[i] - 2.0f * dots[i];
                    cands.push_back({static_cast<std::uint32_t>(i),
                                     std::max(dist, 0.0f)});
                }
                out[q] = selectK(cands, k);
            }
        },
        par);
    return out;
}

double
recallAtK(const RerankResults &got, const RerankResults &truth,
          std::size_t k)
{
    if (got.size() != truth.size())
        sim::panic("recallAtK: result batch size mismatch");
    if (got.empty())
        return 0;

    double sum = 0;
    std::unordered_set<std::uint32_t> truth_ids;
    for (std::size_t q = 0; q < got.size(); ++q) {
        std::size_t kk = std::min({k, got[q].size(), truth[q].size()});
        if (kk == 0)
            continue;
        truth_ids.clear();
        truth_ids.reserve(kk);
        for (std::size_t i = 0; i < kk; ++i)
            truth_ids.insert(truth[q][i].id);
        std::size_t found = 0;
        for (std::size_t j = 0; j < kk; ++j)
            found += truth_ids.count(got[q][j].id);
        sum += static_cast<double>(found) / static_cast<double>(kk);
    }
    return sum / static_cast<double>(got.size());
}

} // namespace reach::cbir
