/**
 * @file
 * Product quantization (PQ) for the rerank stage. A D-dim vector is
 * split into M contiguous subspaces of D/M floats; each subspace has
 * its own k-means codebook, so a vector compresses to one centroid
 * id per subspace. Two precisions share this class:
 *
 *  - 8-bit (default): up to 256 centroids per subspace, one u8 per
 *    code — 12x smaller than float32 at the paper's D = 96, M = 32.
 *  - 4-bit (FastScan): 16 centroids per subspace, two codes packed
 *    per byte (subspace 2p in the low nibble of byte p, 2p+1 in the
 *    high nibble) — 24x smaller, and small enough that a whole
 *    subspace's distance table fits one SIMD register.
 *
 * Query scoring is asymmetric-distance computation (ADC): per query,
 * precompute a lookup table lut[s][j] = l2sq(q_s, c_{s,j}); the
 * distance of a candidate code is then the sum of M table lookups,
 * which equals l2sq(q, decode(code)) exactly. The float table's row
 * stride is a codebook property (lutStride(): 256 entries at 8 bits,
 * 16 at 4 bits — rows are zero-padded past the trained centroid
 * count) so codes always index in bounds and the SIMD kernels never
 * read past a row's valid entries. The 4-bit mode additionally
 * quantizes the table to u8 (adcTable4) for the in-register shuffle
 * kernel; distances then carry a bounded quantization error that the
 * exact refine stage absorbs.
 */

#ifndef REACH_CBIR_PQ_HH
#define REACH_CBIR_PQ_HH

#include <cstdint>
#include <span>
#include <vector>

#include "cbir/linalg.hh"
#include "parallel/parallel.hh"
#include "simd/simd.hh"

namespace reach::cbir
{

struct PqConfig
{
    /** Compressed-domain rerank on/off. */
    bool enabled = false;
    /** Subspaces; must divide the dimensionality. */
    std::uint32_t m = 32;
    /**
     * Code width: 8 (one byte per subspace, gather ADC) or 4 (16
     * centroids, two codes per byte, FastScan shuffle ADC).
     */
    std::uint32_t bits = 8;
    /**
     * Exact-refine budget: the top R ADC candidates are re-scored
     * with full-precision distances before the cut to K (two-stage
     * rerank). 0 keeps the pure ADC order.
     */
    std::uint32_t refine = 128;
    /** Lloyd iterations per subspace codebook. */
    std::uint32_t trainIterations = 8;
    std::uint64_t seed = 13;
};

/**
 * sim::fatal unless @p cfg can quantize @p dim-dimensional vectors:
 * m in [1, dim], dim % m == 0, trainIterations >= 1, bits in {4, 8}
 * (4-bit additionally caps m at 256 so the shuffle kernel's u16
 * accumulators cannot overflow). The enabled flag is not consulted —
 * callers gate on it.
 */
void validatePqConfig(const PqConfig &cfg, std::size_t dim);

/** Bytes one encoded vector occupies under @p cfg (before enable). */
constexpr std::size_t
pqCodeBytes(const PqConfig &cfg)
{
    return cfg.bits == 4 ? simd::adc4CodeBytes(cfg.m) : cfg.m;
}

/** Trained per-subspace codebooks plus the codec built on them. */
class PqCodebook
{
  public:
    /**
     * Train cfg.m codebooks of min(2^cfg.bits, vectors.rows())
     * centroids each, by running the existing k-means per subspace
     * slice. Deterministic for a given (cfg, backend); subspace s
     * seeds with cfg.seed + s.
     */
    static PqCodebook train(const Matrix &vectors, const PqConfig &cfg,
                            const parallel::ParallelConfig &par = {});

    std::size_t numSubspaces() const { return m; }
    std::size_t subDim() const { return dsub; }
    std::size_t numCentroids() const { return ksub; }
    std::size_t dim() const { return m * dsub; }
    /** Code width this codebook was trained at (4 or 8). */
    std::uint32_t codeBits() const { return bits; }
    /**
     * Bytes per encoded vector: one u8 per subspace at 8 bits, two
     * packed nibbles per byte at 4 bits.
     */
    std::size_t codeBytes() const
    {
        return bits == 4 ? simd::adc4CodeBytes(m) : m;
    }
    /**
     * Row stride of the float ADC table, in floats: wide enough for
     * every representable code at this width (so kernels never read
     * past it), fixed per width (so padded rows keep SIMD lane
     * offsets constant).
     */
    std::size_t lutStride() const
    {
        return bits == 4 ? simd::kAdc4LutStride : simd::kAdcLutStride;
    }
    /** Floats this codebook's ADC table occupies. */
    std::size_t lutFloats() const { return m * lutStride(); }

    /** Centroid @p j of subspace @p s (subDim() floats). */
    std::span<const float> centroid(std::size_t s, std::size_t j) const;

    /**
     * Quantize one vector of dim() floats into codeBytes() bytes:
     * per subspace, the index of the nearest centroid (ties to the
     * lower index), packed as nibble pairs at 4 bits. Backend-
     * independent for the same reason as adcTable: distances come
     * from the fixed component-major loop.
     */
    void encode(std::span<const float> v, std::uint8_t *code) const;

    /**
     * Encode every row; returns rows x codeBytes() bytes. Chunked
     * parallel, bitwise identical at any thread count and backend.
     */
    std::vector<std::uint8_t>
    encodeAll(const Matrix &vectors,
              const parallel::ParallelConfig &par = {}) const;

    /** Reconstruct the centroid concatenation of @p code. */
    void decode(const std::uint8_t *code, std::span<float> out) const;

    /**
     * Fill the ADC table for @p query (dim() floats): row s holds
     * l2sq(q_s, c_{s,j}) for j < numCentroids(), zero beyond. @p lut
     * must hold lutFloats() floats at lutStride() row stride. The
     * build is one fixed loop over a component-major centroid copy
     * (vectorized across centroids, not within the short subspace),
     * so the table bits do not depend on the SIMD backend choice —
     * combined with the bitwise adcAccum/adcBatch contract, a
     * pure-ADC rerank returns identical bits on every backend.
     * Entries match l2sq on the subspace pair up to fp contraction.
     */
    void adcTable(std::span<const float> query, float *lut) const;

    /** Dequantization constants of a u8 shuffle table. */
    struct AdcQuantParams
    {
        /** distance ~= bias + scale * (integer lookup sum). */
        float scale = 0;
        float bias = 0;
    };

    /**
     * u8-quantized shuffle table for the 4-bit kernel (panics unless
     * codeBits() == 4): @p lut4 receives m x kAdc4LutStride bytes,
     * row s mapping the float row affinely to [0, 255] (shared scale
     * = max row range / 255, per-row offset folded into the returned
     * bias). Rows past numCentroids() saturate to 255 so phantom
     * codes can never look near. Fixed scalar loops end to end —
     * table bits and params never depend on backend or threads; the
     * per-entry error is at most half a quantization step, absorbed
     * by the exact refine stage.
     */
    AdcQuantParams adcTable4(std::span<const float> query,
                             std::uint8_t *lut4) const;

  private:
    /**
     * scratch[j] = l2sq of @p v's subspace-@p s slice against
     * centroid j, for j < numCentroids() — the shared inner loop of
     * encode and adcTable, vectorized across centroids via centsT.
     */
    void subspaceL2(std::size_t s, const float *v,
                    float *scratch) const;
    void encodeWith(std::span<const float> v, std::uint8_t *code,
                    float *scratch) const;

    std::size_t m = 0;
    std::size_t dsub = 0;
    std::size_t ksub = 0;
    std::uint32_t bits = 8;
    /** Subspace-major: block s is ksub x dsub row-major centroids. */
    std::vector<float, simd::AlignedAllocator<float, 64>> cents;
    /**
     * Component-major transpose of @ref cents for the ADC table
     * build: block s is dsub rows of ksub floats, so the per-centroid
     * accumulation vectorizes across the 256 table entries instead of
     * the (typically 3-float) subspace.
     */
    std::vector<float, simd::AlignedAllocator<float, 64>> centsT;
};

} // namespace reach::cbir

#endif // REACH_CBIR_PQ_HH
