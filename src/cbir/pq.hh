/**
 * @file
 * Product quantization (PQ) for the rerank stage. A D-dim vector is
 * split into M contiguous subspaces of D/M floats; each subspace has
 * its own k-means codebook of up to 256 centroids, so a vector
 * compresses to M bytes (one u8 centroid id per subspace) — 12x
 * smaller than float32 at the paper's D = 96 with M = 32.
 *
 * Query scoring is asymmetric-distance computation (ADC): per query,
 * precompute an M x 256 lookup table lut[s][j] = l2sq(q_s, c_{s,j});
 * the distance of a candidate code is then the sum of M table
 * lookups, which equals l2sq(q, decode(code)) exactly. The table has
 * a fixed row stride of simd::kAdcLutStride floats (rows are
 * zero-padded past the trained centroid count) so any u8 code indexes
 * in bounds and the SIMD gather kernel uses constant lane offsets.
 */

#ifndef REACH_CBIR_PQ_HH
#define REACH_CBIR_PQ_HH

#include <cstdint>
#include <span>
#include <vector>

#include "cbir/linalg.hh"
#include "parallel/parallel.hh"
#include "simd/simd.hh"

namespace reach::cbir
{

struct PqConfig
{
    /** Compressed-domain rerank on/off. */
    bool enabled = false;
    /** Subspaces == bytes per code; must divide the dimensionality. */
    std::uint32_t m = 32;
    /**
     * Exact-refine budget: the top R ADC candidates are re-scored
     * with full-precision distances before the cut to K (two-stage
     * rerank). 0 keeps the pure ADC order.
     */
    std::uint32_t refine = 128;
    /** Lloyd iterations per subspace codebook. */
    std::uint32_t trainIterations = 8;
    std::uint64_t seed = 13;
};

/**
 * sim::fatal unless @p cfg can quantize @p dim-dimensional vectors:
 * m in [1, dim], dim % m == 0, trainIterations >= 1. The enabled
 * flag is not consulted — callers gate on it.
 */
void validatePqConfig(const PqConfig &cfg, std::size_t dim);

/** Trained per-subspace codebooks plus the codec built on them. */
class PqCodebook
{
  public:
    /**
     * Train cfg.m codebooks of min(256, vectors.rows()) centroids
     * each, by running the existing k-means per subspace slice.
     * Deterministic for a given (cfg, backend); subspace s seeds with
     * cfg.seed + s.
     */
    static PqCodebook train(const Matrix &vectors, const PqConfig &cfg,
                            const parallel::ParallelConfig &par = {});

    std::size_t numSubspaces() const { return m; }
    std::size_t subDim() const { return dsub; }
    std::size_t numCentroids() const { return ksub; }
    std::size_t dim() const { return m * dsub; }
    /** Bytes per encoded vector (one u8 per subspace). */
    std::size_t codeBytes() const { return m; }

    /** Centroid @p j of subspace @p s (subDim() floats). */
    std::span<const float> centroid(std::size_t s, std::size_t j) const;

    /**
     * Quantize one vector of dim() floats into codeBytes() bytes:
     * per subspace, the index of the nearest centroid (ties to the
     * lower index). Backend-independent for the same reason as
     * adcTable: distances come from the fixed component-major loop.
     */
    void encode(std::span<const float> v, std::uint8_t *code) const;

    /**
     * Encode every row; returns rows x codeBytes() bytes. Chunked
     * parallel, bitwise identical at any thread count and backend.
     */
    std::vector<std::uint8_t>
    encodeAll(const Matrix &vectors,
              const parallel::ParallelConfig &par = {}) const;

    /** Reconstruct the centroid concatenation of @p code. */
    void decode(const std::uint8_t *code, std::span<float> out) const;

    /**
     * Fill the ADC table for @p query (dim() floats): row s holds
     * l2sq(q_s, c_{s,j}) for j < numCentroids(), zero beyond. @p lut
     * must hold lutFloats(numSubspaces()) floats. The build is one
     * fixed loop over a component-major centroid copy (vectorized
     * across centroids, not within the short subspace), so the table
     * bits do not depend on the SIMD backend choice — combined with
     * the bitwise adcAccum/adcBatch contract, a pure-ADC rerank
     * returns identical bits on every backend. Entries match l2sq on
     * the subspace pair up to fp contraction.
     */
    void adcTable(std::span<const float> query, float *lut) const;

    /** Floats an ADC table for @p m subspaces occupies. */
    static std::size_t lutFloats(std::size_t m)
    {
        return m * simd::kAdcLutStride;
    }

  private:
    /**
     * scratch[j] = l2sq of @p v's subspace-@p s slice against
     * centroid j, for j < numCentroids() — the shared inner loop of
     * encode and adcTable, vectorized across centroids via centsT.
     */
    void subspaceL2(std::size_t s, const float *v,
                    float *scratch) const;
    void encodeWith(std::span<const float> v, std::uint8_t *code,
                    float *scratch) const;

    std::size_t m = 0;
    std::size_t dsub = 0;
    std::size_t ksub = 0;
    /** Subspace-major: block s is ksub x dsub row-major centroids. */
    std::vector<float, simd::AlignedAllocator<float, 64>> cents;
    /**
     * Component-major transpose of @ref cents for the ADC table
     * build: block s is dsub rows of ksub floats, so the per-centroid
     * accumulation vectorizes across the 256 table entries instead of
     * the (typically 3-float) subspace.
     */
    std::vector<float, simd::AlignedAllocator<float, 64>> centsT;
};

} // namespace reach::cbir

#endif // REACH_CBIR_PQ_HH
