/**
 * @file
 * The inverted-file (IVF) index: k-means centroids plus, per
 * centroid, the list of member vector ids ("cell info" in the
 * paper's Table I). The online short-list stage prunes the search
 * space to the clusters whose centroids are closest to the query.
 */

#ifndef REACH_CBIR_INDEX_HH
#define REACH_CBIR_INDEX_HH

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cbir/kmeans.hh"
#include "cbir/linalg.hh"
#include "cbir/pq.hh"

namespace reach::cbir
{

class InvertedFileIndex
{
  public:
    /** Build from a dataset using k-means. */
    InvertedFileIndex(const Matrix &vectors, const KMeansConfig &cfg);

    /** Build from precomputed clustering (tests). */
    InvertedFileIndex(Matrix centroids,
                      std::vector<std::uint32_t> assignment);

    /**
     * Build from precomputed clustering with the dataset available:
     * same as above but also precomputes ||x_i||^2, so several
     * indexes (e.g. 8-bit and 4-bit PQ variants) can share one
     * k-means run without losing the rerank norm decomposition.
     */
    InvertedFileIndex(Matrix centroids,
                      std::vector<std::uint32_t> assignment,
                      const Matrix &vectors,
                      const parallel::ParallelConfig &par = {});

    const Matrix &centroids() const { return cents; }

    /** Precomputed ||C_m||^2 terms (Eq. 1's reusable component). */
    const std::vector<float> &centroidNormsSq() const
    {
        return centNormSq;
    }

    /**
     * Packed IEEE-binary16 copy of the centroids (row-major, same
     * shape as centroids()), converted once at construction with
     * round-to-nearest-even floatToHalfRne — pure software, so every
     * backend and host builds the identical buffer. This is the
     * stream the fp16 shortlist scan reads at 2 bytes/dim.
     */
    std::span<const std::uint16_t> centroidsF16() const
    {
        return {centsF16.data(), centsF16.size()};
    }

    /**
     * ||C_m||^2 of the *half-precision* centroids (halfNormSq over
     * centroidsF16 rows), so the fp16 distance decomposition is
     * consistent with the quantized stream it scans. Index-side data,
     * backend-independent like centsF16 itself.
     */
    const std::vector<float> &centroidNormsSqF16() const
    {
        return centNormSqF16;
    }

    /**
     * Precomputed ||x_i||^2 per database vector, for the rerank norm
     * decomposition ||q - x||^2 = ||q||^2 + ||x||^2 - 2 q.x. Empty
     * when the index was built from a precomputed clustering (no
     * vectors available); rerank then computes norms on the fly.
     */
    const std::vector<float> &vectorNormsSq() const
    {
        return vecNormSq;
    }

    std::size_t numClusters() const { return cents.rows(); }

    const std::vector<std::uint32_t> &cluster(std::size_t c) const
    {
        return lists[c];
    }

    /** Total ids across all lists (== dataset size). */
    std::size_t totalIds() const;

    /** Largest / smallest cluster population. */
    std::size_t maxClusterSize() const;
    std::size_t minClusterSize() const;

    /**
     * Train PQ codebooks on @p vectors (the dataset this index was
     * built over, in id order) and store each cluster's member codes
     * as one contiguous block in list order — the compressed
     * near-storage layout the rerank stage scans sequentially.
     */
    void buildPq(const Matrix &vectors, const PqConfig &cfg,
                 const parallel::ParallelConfig &par = {});

    /**
     * Attach an externally trained codebook. @p codesByVectorId holds
     * totalIds() codes of codebook->codeBytes() bytes, indexed by
     * vector id; they are re-blocked per cluster.
     */
    void attachPq(std::shared_ptr<const PqCodebook> codebook,
                  const std::vector<std::uint8_t> &codesByVectorId);

    bool hasPq() const { return pq != nullptr; }

    /** The attached codebook; sim::panic without one. */
    const PqCodebook &pqCodebook() const;

    /**
     * PQ codes of cluster @p c's members, in cluster(c) order:
     * cluster(c).size() * codeBytes() bytes (packed nibble pairs at
     * 4 bits). Empty span when no PQ codes are attached.
     */
    std::span<const std::uint8_t> clusterCodes(std::size_t c) const
    {
        if (codeLists.empty())
            return {};
        return {codeLists[c].data(), codeLists[c].size()};
    }

    /**
     * Cluster @p c's codes in the block-transposed FastScan layout
     * (simd::adc4Pack of clusterCodes(c), whole 32-candidate blocks
     * with a zero-coded tail) that adcBatch4 scans 32 candidates per
     * shuffle sweep. Built only for a 4-bit codebook; empty span
     * otherwise.
     */
    std::span<const std::uint8_t> clusterPackedCodes(std::size_t c)
        const
    {
        if (packedLists.empty())
            return {};
        return {packedLists[c].data(), packedLists[c].size()};
    }

  private:
    void buildLists(const std::vector<std::uint32_t> &assignment);
    void computeNorms();

    Matrix cents;
    std::vector<std::uint16_t,
                simd::AlignedAllocator<std::uint16_t, 64>>
        centsF16;
    std::vector<float> centNormSq;
    std::vector<float> centNormSqF16;
    std::vector<float> vecNormSq;
    std::vector<std::vector<std::uint32_t>> lists;
    std::shared_ptr<const PqCodebook> pq;
    std::vector<std::vector<std::uint8_t>> codeLists;
    /** 4-bit only: codeLists re-tiled into FastScan blocks. */
    std::vector<std::vector<std::uint8_t>> packedLists;
};

} // namespace reach::cbir

#endif // REACH_CBIR_INDEX_HH
