#include "kmeans.hh"

#include <algorithm>
#include <limits>

#include "sim/logging.hh"
#include "simd/simd.hh"

namespace reach::cbir
{

namespace
{

/**
 * argmin_c of the score ||C_c||^2 - 2 v.C_c (the ||v||^2 term is
 * constant across centroids), with one batched dot sweep over the
 * centroid matrix. Ties break to the lower index via the strict
 * comparison. Both the Lloyd assignment step and nearestCentroid()
 * funnel through this, so they can never disagree for a backend.
 */
struct NearestHit
{
    std::uint32_t index = 0;
    /** ||C||^2 - 2 v.C of the winner; add ||v||^2 for the l2sq. */
    float score = 0;
};

NearestHit
nearestByDecomposition(const simd::Kernels &k, const Matrix &centroids,
                       std::span<const float> cnorm,
                       std::span<const float> v,
                       std::vector<float> &dots)
{
    const std::size_t m = centroids.rows();
    dots.resize(m);
    k.dotBatch(v.data(), centroids.flat().data(), m, centroids.cols(),
               dots.data());
    NearestHit hit;
    hit.score = std::numeric_limits<float>::max();
    for (std::size_t c = 0; c < m; ++c) {
        float s = cnorm[c] - 2.0f * dots[c];
        if (s < hit.score) {
            hit.score = s;
            hit.index = static_cast<std::uint32_t>(c);
        }
    }
    return hit;
}

std::vector<float>
centroidNorms(const simd::Kernels &k, const Matrix &centroids)
{
    std::vector<float> cnorm(centroids.rows());
    for (std::size_t c = 0; c < centroids.rows(); ++c)
        cnorm[c] = k.normSq(centroids.row(c).data(), centroids.cols());
    return cnorm;
}

/** k-means++ seeding: spread initial centroids by D^2 sampling. */
Matrix
seedCentroids(const Matrix &points, std::size_t k, sim::Rng &rng,
              simd::Choice backend)
{
    Matrix centroids(k, points.cols());
    std::size_t first = rng.nextUInt(points.rows());
    std::copy(points.row(first).begin(), points.row(first).end(),
              centroids.row(0).begin());

    std::vector<float> min_d(points.rows(),
                             std::numeric_limits<float>::max());
    for (std::size_t c = 1; c < k; ++c) {
        double total = 0;
        for (std::size_t i = 0; i < points.rows(); ++i) {
            float d =
                l2sq(points.row(i), centroids.row(c - 1), backend);
            min_d[i] = std::min(min_d[i], d);
            total += min_d[i];
        }
        double target = rng.nextDouble() * total;
        double run = 0;
        std::size_t chosen = points.rows() - 1;
        for (std::size_t i = 0; i < points.rows(); ++i) {
            run += min_d[i];
            if (run >= target) {
                chosen = i;
                break;
            }
        }
        std::copy(points.row(chosen).begin(), points.row(chosen).end(),
                  centroids.row(c).begin());
    }
    return centroids;
}

/**
 * Per-chunk accumulator of the Lloyd assignment step: cluster sums,
 * member counts and the inertia contribution of one point range.
 */
struct AssignPartial
{
    std::vector<double> sums;
    std::vector<std::uint32_t> counts;
    double inertia = 0;
};

} // namespace

std::uint32_t
nearestCentroid(const Matrix &centroids, std::span<const float> v,
                simd::Choice backend)
{
    const simd::Kernels &k = simd::kernels(backend);
    std::vector<float> cnorm = centroidNorms(k, centroids);
    std::vector<float> dots;
    return nearestByDecomposition(k, centroids, cnorm, v, dots).index;
}

KMeansResult
kMeans(const Matrix &points, const KMeansConfig &cfg)
{
    if (points.rows() < cfg.clusters) {
        sim::fatal("kMeans: ", points.rows(), " points cannot form ",
                   cfg.clusters, " clusters");
    }

    const simd::Kernels &kern = simd::kernels(cfg.parallel.simd);
    sim::Rng rng(cfg.seed);
    KMeansResult res;
    res.centroids =
        seedCentroids(points, cfg.clusters, rng, cfg.parallel.simd);
    res.assignment.assign(points.rows(), 0);

    const std::size_t dim = points.cols();
    // The grain depends only on the point count (never the thread
    // count) so the chunk-ordered folds below are bitwise identical
    // at 1 and N threads; the 64-chunk cap bounds the transient
    // per-chunk sum buffers (clusters x dim doubles each).
    const std::size_t grain = std::max<std::size_t>(
        1024, (points.rows() + 63) / 64);

    double prev_inertia = std::numeric_limits<double>::max();

    for (std::size_t it = 0; it < cfg.maxIterations; ++it) {
        res.iterations = it + 1;

        // ||C||^2 once per iteration: the Eq. 1 reusable term of the
        // assignment's batched norm decomposition.
        std::vector<float> cnorm = centroidNorms(kern, res.centroids);

        // Assign (the hot O(n * k * d) step): each chunk writes its
        // slice of the assignment and accumulates private sums.
        AssignPartial init;
        init.sums.assign(cfg.clusters * dim, 0.0);
        init.counts.assign(cfg.clusters, 0);
        AssignPartial total = parallel::parallelReduce(
            0, points.rows(), grain, std::move(init),
            [&](std::size_t b, std::size_t e) {
                AssignPartial p;
                p.sums.assign(cfg.clusters * dim, 0.0);
                p.counts.assign(cfg.clusters, 0);
                std::vector<float> dots;
                for (std::size_t i = b; i < e; ++i) {
                    auto row = points.row(i);
                    NearestHit hit = nearestByDecomposition(
                        kern, res.centroids, cnorm, row, dots);
                    std::uint32_t c = hit.index;
                    res.assignment[i] = c;
                    float qn = kern.normSq(row.data(), dim);
                    p.inertia += std::max(qn + hit.score, 0.0f);
                    ++p.counts[c];
                    for (std::size_t d = 0; d < dim; ++d)
                        p.sums[c * dim + d] += row[d];
                }
                return p;
            },
            [](AssignPartial acc, AssignPartial p) {
                for (std::size_t j = 0; j < acc.sums.size(); ++j)
                    acc.sums[j] += p.sums[j];
                for (std::size_t c = 0; c < acc.counts.size(); ++c)
                    acc.counts[c] += p.counts[c];
                acc.inertia += p.inertia;
                return acc;
            },
            cfg.parallel);
        double inertia = total.inertia;
        res.inertia = inertia;

        // Update.
        for (std::size_t c = 0; c < cfg.clusters; ++c) {
            if (total.counts[c] == 0)
                continue; // keep the old centroid for empty clusters
            auto row = res.centroids.row(c);
            for (std::size_t d = 0; d < dim; ++d) {
                row[d] = static_cast<float>(total.sums[c * dim + d] /
                                            total.counts[c]);
            }
        }

        if (prev_inertia < std::numeric_limits<double>::max()) {
            double rel = (prev_inertia - inertia) /
                         std::max(prev_inertia, 1e-12);
            if (rel >= 0 && rel < cfg.tolerance)
                break;
        }
        prev_inertia = inertia;
    }
    return res;
}

} // namespace reach::cbir
