#include "kmeans.hh"

#include <algorithm>
#include <limits>

#include "sim/logging.hh"

namespace reach::cbir
{

std::uint32_t
nearestCentroid(const Matrix &centroids, std::span<const float> v)
{
    std::uint32_t best = 0;
    float best_d = std::numeric_limits<float>::max();
    for (std::size_t c = 0; c < centroids.rows(); ++c) {
        float d = l2sq(centroids.row(c), v);
        if (d < best_d) {
            best_d = d;
            best = static_cast<std::uint32_t>(c);
        }
    }
    return best;
}

namespace
{

/** k-means++ seeding: spread initial centroids by D^2 sampling. */
Matrix
seedCentroids(const Matrix &points, std::size_t k, sim::Rng &rng)
{
    Matrix centroids(k, points.cols());
    std::size_t first = rng.nextUInt(points.rows());
    std::copy(points.row(first).begin(), points.row(first).end(),
              centroids.row(0).begin());

    std::vector<float> min_d(points.rows(),
                             std::numeric_limits<float>::max());
    for (std::size_t c = 1; c < k; ++c) {
        double total = 0;
        for (std::size_t i = 0; i < points.rows(); ++i) {
            float d = l2sq(points.row(i), centroids.row(c - 1));
            min_d[i] = std::min(min_d[i], d);
            total += min_d[i];
        }
        double target = rng.nextDouble() * total;
        double run = 0;
        std::size_t chosen = points.rows() - 1;
        for (std::size_t i = 0; i < points.rows(); ++i) {
            run += min_d[i];
            if (run >= target) {
                chosen = i;
                break;
            }
        }
        std::copy(points.row(chosen).begin(), points.row(chosen).end(),
                  centroids.row(c).begin());
    }
    return centroids;
}

} // namespace

KMeansResult
kMeans(const Matrix &points, const KMeansConfig &cfg)
{
    if (points.rows() < cfg.clusters) {
        sim::fatal("kMeans: ", points.rows(), " points cannot form ",
                   cfg.clusters, " clusters");
    }

    sim::Rng rng(cfg.seed);
    KMeansResult res;
    res.centroids = seedCentroids(points, cfg.clusters, rng);
    res.assignment.assign(points.rows(), 0);

    double prev_inertia = std::numeric_limits<double>::max();
    std::vector<double> sums;
    std::vector<std::uint32_t> counts;

    for (std::size_t it = 0; it < cfg.maxIterations; ++it) {
        res.iterations = it + 1;

        // Assign.
        double inertia = 0;
        for (std::size_t i = 0; i < points.rows(); ++i) {
            std::uint32_t c = nearestCentroid(res.centroids,
                                              points.row(i));
            res.assignment[i] = c;
            inertia += l2sq(points.row(i), res.centroids.row(c));
        }
        res.inertia = inertia;

        // Update.
        sums.assign(cfg.clusters * points.cols(), 0.0);
        counts.assign(cfg.clusters, 0);
        for (std::size_t i = 0; i < points.rows(); ++i) {
            std::uint32_t c = res.assignment[i];
            ++counts[c];
            auto row = points.row(i);
            for (std::size_t d = 0; d < points.cols(); ++d)
                sums[c * points.cols() + d] += row[d];
        }
        for (std::size_t c = 0; c < cfg.clusters; ++c) {
            if (counts[c] == 0)
                continue; // keep the old centroid for empty clusters
            auto row = res.centroids.row(c);
            for (std::size_t d = 0; d < points.cols(); ++d) {
                row[d] = static_cast<float>(sums[c * points.cols() + d] /
                                            counts[c]);
            }
        }

        if (prev_inertia < std::numeric_limits<double>::max()) {
            double rel = (prev_inertia - inertia) /
                         std::max(prev_inertia, 1e-12);
            if (rel >= 0 && rel < cfg.tolerance)
                break;
        }
        prev_inertia = inertia;
    }
    return res;
}

} // namespace reach::cbir
