/**
 * @file
 * Dense linear algebra primitives for the CBIR kernels: a row-major
 * matrix view, blocked GEMM, dot products and squared L2 distances.
 * These are the *functional* counterparts of the GeMM/KNN FPGA
 * kernels; the simulator times them, these compute them.
 */

#ifndef REACH_CBIR_LINALG_HH
#define REACH_CBIR_LINALG_HH

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "parallel/parallel.hh"
#include "simd/aligned.hh"

namespace reach::cbir
{

/**
 * A row-major dense matrix owning its storage. The buffer is 64-byte
 * aligned so SIMD loads on row starts are aligned whenever cols is a
 * multiple of the vector width (e.g. the paper's D = 96).
 */
class Matrix
{
  public:
    Matrix() = default;
    Matrix(std::size_t rows, std::size_t cols)
        : nRows(rows), nCols(cols), data(rows * cols, 0.0f)
    {}

    std::size_t rows() const { return nRows; }
    std::size_t cols() const { return nCols; }

    float &at(std::size_t r, std::size_t c)
    {
        return data[r * nCols + c];
    }
    float at(std::size_t r, std::size_t c) const
    {
        return data[r * nCols + c];
    }

    std::span<float> row(std::size_t r)
    {
        return {data.data() + r * nCols, nCols};
    }
    std::span<const float> row(std::size_t r) const
    {
        return {data.data() + r * nCols, nCols};
    }

    std::span<float> flat() { return {data.data(), data.size()}; }
    std::span<const float> flat() const
    {
        return {data.data(), data.size()};
    }

    std::uint64_t
    bytes() const
    {
        return static_cast<std::uint64_t>(data.size()) * sizeof(float);
    }

  private:
    std::size_t nRows = 0;
    std::size_t nCols = 0;
    std::vector<float, simd::AlignedAllocator<float, 64>> data;
};

/**
 * Inner product of two equal-length vectors, on the dispatched SIMD
 * backend (REACH_SIMD / CPU detection; pass a Choice to pin one).
 */
float dot(std::span<const float> a, std::span<const float> b,
          simd::Choice backend = simd::Choice::autoDetect);

/** Squared Euclidean distance (Eq. 2 of the paper). */
float l2sq(std::span<const float> a, std::span<const float> b,
           simd::Choice backend = simd::Choice::autoDetect);

/** Squared L2 norm. */
float normSq(std::span<const float> a,
             simd::Choice backend = simd::Choice::autoDetect);

/** y += alpha * x. */
void axpy(float alpha, std::span<const float> x, std::span<float> y,
          simd::Choice backend = simd::Choice::autoDetect);

/**
 * C = A * B^T with a register-blocked SIMD micro-kernel, parallel
 * over row blocks of A. A is (n x d), B is (m x d), C is (n x m):
 * exactly the query-times-centroid product of short-list retrieval.
 * The chunk decomposition is a pure function of (rows, grain) and
 * each C(i,j) depends only on its A/B rows, so for a fixed backend
 * (par.simd) the result is bitwise identical at any thread count.
 */
void gemmNt(const Matrix &a, const Matrix &b, Matrix &c,
            const parallel::ParallelConfig &par = {});

/**
 * Indices of the @p k smallest values (ties broken by lower index),
 * in ascending value order — the "partial sorting of the dist array"
 * step. Implemented as a bounded max-heap scan: O(n log k) time and
 * O(k) extra space, no O(n) index materialization.
 */
std::vector<std::uint32_t> topKMin(std::span<const float> values,
                                   std::size_t k);

} // namespace reach::cbir

#endif // REACH_CBIR_LINALG_HH
