/**
 * @file
 * Dense linear algebra primitives for the CBIR kernels: a row-major
 * matrix view, blocked GEMM, dot products and squared L2 distances.
 * These are the *functional* counterparts of the GeMM/KNN FPGA
 * kernels; the simulator times them, these compute them.
 */

#ifndef REACH_CBIR_LINALG_HH
#define REACH_CBIR_LINALG_HH

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "parallel/parallel.hh"
#include "simd/aligned.hh"

namespace reach::cbir
{

/**
 * A row-major dense matrix owning its storage. The buffer is 64-byte
 * aligned so SIMD loads on row starts are aligned whenever cols is a
 * multiple of the vector width (e.g. the paper's D = 96).
 */
class Matrix
{
  public:
    Matrix() = default;
    Matrix(std::size_t rows, std::size_t cols)
        : nRows(rows), nCols(cols), data(rows * cols, 0.0f)
    {}

    std::size_t rows() const { return nRows; }
    std::size_t cols() const { return nCols; }

    float &at(std::size_t r, std::size_t c)
    {
        return data[r * nCols + c];
    }
    float at(std::size_t r, std::size_t c) const
    {
        return data[r * nCols + c];
    }

    std::span<float> row(std::size_t r)
    {
        return {data.data() + r * nCols, nCols};
    }
    std::span<const float> row(std::size_t r) const
    {
        return {data.data() + r * nCols, nCols};
    }

    std::span<float> flat() { return {data.data(), data.size()}; }
    std::span<const float> flat() const
    {
        return {data.data(), data.size()};
    }

    std::uint64_t
    bytes() const
    {
        return static_cast<std::uint64_t>(data.size()) * sizeof(float);
    }

  private:
    std::size_t nRows = 0;
    std::size_t nCols = 0;
    std::vector<float, simd::AlignedAllocator<float, 64>> data;
};

/**
 * Inner product of two equal-length vectors, on the dispatched SIMD
 * backend (REACH_SIMD / CPU detection; pass a Choice to pin one).
 */
float dot(std::span<const float> a, std::span<const float> b,
          simd::Choice backend = simd::Choice::autoDetect);

/** Squared Euclidean distance (Eq. 2 of the paper). */
float l2sq(std::span<const float> a, std::span<const float> b,
           simd::Choice backend = simd::Choice::autoDetect);

/** Squared L2 norm. */
float normSq(std::span<const float> a,
             simd::Choice backend = simd::Choice::autoDetect);

/** y += alpha * x. */
void axpy(float alpha, std::span<const float> x, std::span<float> y,
          simd::Choice backend = simd::Choice::autoDetect);

/**
 * C = A * B^T with a register-blocked SIMD micro-kernel, parallel
 * over row blocks of A. A is (n x d), B is (m x d), C is (n x m):
 * exactly the query-times-centroid product of short-list retrieval.
 * The chunk decomposition is a pure function of (rows, grain) and
 * each C(i,j) depends only on its A/B rows, so for a fixed backend
 * (par.simd) the result is bitwise identical at any thread count.
 */
void gemmNt(const Matrix &a, const Matrix &b, Matrix &c,
            const parallel::ParallelConfig &par = {});

/**
 * Squared L2 norm of every row of @p m, parallel over row blocks on
 * the dispatched backend — the one batched norm precompute the
 * shortlist (query norms), rerank (database norms) and index
 * construction (centroid norms) paths all share. Per-row arithmetic
 * is normSq of that row alone, so for a fixed backend the result is
 * bitwise identical at any thread count.
 */
std::vector<float> rowNormsSq(const Matrix &m,
                              const parallel::ParallelConfig &par = {});

/**
 * Streaming k-smallest selection over values fed in index order, in
 * column blocks. The retained set is defined purely by the total
 * order "smaller value wins, ties to the lower index" — the k-best
 * subset under a total order is unique, so feeding one block at a
 * time yields exactly the indices topKMin would return over the
 * concatenated array, regardless of the block split. O(k) space.
 */
class TopKMin
{
  public:
    explicit TopKMin(std::size_t k) : limit(k) { heap.reserve(k); }

    /**
     * Offer @p values, whose element j has global index
     * @p firstIndex + j. Blocks must arrive in ascending index order
     * only for the "ties to the lower index" rule to match a single
     * scan — the retained *set* is split-invariant either way.
     */
    void consider(std::span<const float> values,
                  std::uint32_t firstIndex);

    /**
     * Indices of the retained candidates in ascending (value, index)
     * order — the topKMin output contract. Consumes the heap.
     */
    std::vector<std::uint32_t> finish();

  private:
    struct Entry
    {
        float value;
        std::uint32_t index;
    };

    static bool better(const Entry &x, const Entry &y);

    std::size_t limit;
    std::vector<Entry> heap;
};

/**
 * Indices of the @p k smallest values (ties broken by lower index),
 * in ascending value order — the "partial sorting of the dist array"
 * step. One-shot wrapper over TopKMin: O(n log k) time and O(k)
 * extra space, no O(n) index materialization.
 */
std::vector<std::uint32_t> topKMin(std::span<const float> values,
                                   std::size_t k);

} // namespace reach::cbir

#endif // REACH_CBIR_LINALG_HH
