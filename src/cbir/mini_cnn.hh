/**
 * @file
 * A small functional CNN feature extractor.
 *
 * The paper extracts features with VGG16 on an FPGA engine; the
 * *timing* of that engine comes from vgg.hh descriptors and the
 * accelerator model. This class is the *functional* stand-in: real
 * conv/ReLU/maxpool/fully-connected arithmetic over synthetic images
 * with deterministic pseudo-random weights, so examples and tests
 * have an end-to-end image -> feature -> retrieval path that
 * computes actual numbers.
 */

#ifndef REACH_CBIR_MINI_CNN_HH
#define REACH_CBIR_MINI_CNN_HH

#include <cstdint>
#include <vector>

#include "cbir/linalg.hh"
#include "parallel/parallel.hh"
#include "sim/rng.hh"

namespace reach::cbir
{

/** A CHW float image. */
struct Image
{
    std::uint32_t channels = 3;
    std::uint32_t height = 32;
    std::uint32_t width = 32;
    std::vector<float> pixels;

    float &
    at(std::uint32_t c, std::uint32_t y, std::uint32_t x)
    {
        return pixels[(c * height + y) * width + x];
    }
    float
    at(std::uint32_t c, std::uint32_t y, std::uint32_t x) const
    {
        return pixels[(c * height + y) * width + x];
    }
};

struct MiniCnnConfig
{
    std::uint32_t inputChannels = 3;
    std::uint32_t inputSize = 32; // square images
    /** Output channels of the two conv stages. */
    std::uint32_t conv1Channels = 8;
    std::uint32_t conv2Channels = 16;
    /** Final feature dimensionality. */
    std::uint32_t featureDim = 96;
    std::uint64_t seed = 1234;
    /**
     * Threads for the conv / fully-connected loops; extractBatch
     * parallelizes over images instead (inner loops then run inline).
     */
    parallel::ParallelConfig parallel{};
};

class MiniCnn
{
  public:
    explicit MiniCnn(const MiniCnnConfig &cfg = {});

    /** Extract one feature vector; length == cfg.featureDim. */
    std::vector<float> extract(const Image &img) const;

    /** Extract a batch into a Matrix (one row per image). */
    Matrix extractBatch(const std::vector<Image> &imgs) const;

    const MiniCnnConfig &config() const { return cfg; }

    /** Total weights in bytes (for the quickstart's reporting). */
    std::uint64_t weightBytes() const;

  private:
    /** 3x3 same-padding convolution + ReLU. */
    Image convRelu(const Image &in, const std::vector<float> &weights,
                   std::uint32_t out_channels) const;
    /** 2x2 max pooling, stride 2. */
    Image maxPool(const Image &in) const;

    MiniCnnConfig cfg;
    std::vector<float> w1; // conv1 [c1][cin][3][3]
    std::vector<float> w2; // conv2 [c2][c1][3][3]
    std::vector<float> wfc; // fc [featureDim][flattened]
    std::uint32_t flatDim = 0;
};

/** Deterministic synthetic image: class-dependent pattern + noise. */
Image makeSyntheticImage(std::uint32_t class_id, std::uint64_t seed,
                         std::uint32_t channels = 3,
                         std::uint32_t size = 32);

} // namespace reach::cbir

#endif // REACH_CBIR_MINI_CNN_HH
