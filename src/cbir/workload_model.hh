/**
 * @file
 * The CBIR workload model: converts retrieval-scale parameters
 * (database size, dimensionality, centroid count, batch size, ...)
 * into per-stage accelerator WorkUnits and Table-I-style footprints.
 *
 * This is the bridge between the *functional* CBIR layer (which runs
 * at sampled scale) and the *timing* layer (which must see
 * billion-scale traffic): functional code validates the algorithms,
 * and this model scales the byte/op counts to the configured size.
 */

#ifndef REACH_CBIR_WORKLOAD_MODEL_HH
#define REACH_CBIR_WORKLOAD_MODEL_HH

#include <cstdint>

#include "acc/accelerator.hh"
#include "cbir/pq.hh"
#include "cbir/vgg.hh"

namespace reach::cbir
{

/**
 * Memory medium backing the shortlist-scan structures (centroids +
 * cell info). The timing layer translates the choice into the
 * AIM-local link's bandwidth/latency (SystemConfig::aimHbmBw /
 * aimHbmLatency vs the DDR defaults); CoSimulation and the bench
 * sweeps keep the two sides in sync.
 */
enum class ScanPlacement : std::uint8_t { Ddr, Hbm };

/** Scale of the deployed retrieval system (paper §V "CBIR setup"). */
struct ScaleConfig
{
    /** Database vectors; the paper deploys a billion. */
    std::uint64_t databaseVectors = 1'000'000'000;
    /** Feature dimensionality after PCA. */
    std::uint32_t dim = 96;
    /** k-means centroids for the IVF index. */
    std::uint32_t numCentroids = 1000;
    /** Queries per batch. */
    std::uint32_t batchSize = 16;
    /** Clusters retrieved per query (short-list length). */
    std::uint32_t nprobe = 8;
    /** Rerank candidate budget per query (paper: 4096). */
    std::uint32_t rerankCandidates = 4096;
    /** Results returned per query. */
    std::uint32_t topK = 10;
    /** Query image size (VGG16 input). */
    std::uint32_t imageH = 224, imageW = 224, imageC = 3;
    /** Use deep-compressed CNN parameters (11.3 MB vs 552 MB). */
    bool compressedModel = true;
    /**
     * Fraction of dense VGG16 MACs actually executed by the pruned
     * (deep-compressed) network; Han et al. prune VGG16 convolutions
     * to a few percent of dense work.
     */
    double prunedMacFraction = 0.08;
    /** Flash page pulled per randomly-gathered rerank candidate. */
    std::uint32_t flashPageBytes = 4096;
    /**
     * Bytes per inverted-list entry (delta/varint-coded ids plus
     * per-id code metadata); 2.2 B/id puts the billion-scale
     * "centroids + cell info" structure at Table I's ~2.2 GB.
     */
    double cellBytesPerId = 2.2;
    /**
     * Bytes per stored centroid component: 4 keeps the fp32 matrix
     * the shortlist GEMM streams every batch, 2 models an fp16 copy
     * (half the scan traffic; the paper's 96-dim features tolerate
     * half precision in the coarse quantizer, and the exact rerank
     * absorbs any shortlist jitter).
     */
    std::uint32_t centroidBytesPerDim = 4;
    /** Where the shortlist scan structures live (DDR vs HBM). */
    ScanPlacement shortlistPlacement = ScanPlacement::Ddr;

    /**
     * Include the reverse-lookup stage (fetch the top-K images from
     * the image store). The paper describes it but excludes it from
     * its experiments "due to its huge storage requirements"; this
     * reproduction can optionally model it.
     */
    bool includeReverseLookup = false;
    /** Average stored image size (compressed). */
    std::uint32_t avgImageBytes = 200'000;

    /**
     * Product-quantized rerank (mirrors the functional layer's
     * CbirService::Config::pq; CoSimulation keeps the two in sync).
     * When enabled, candidates are scanned as pq.m-byte codes laid
     * out contiguously per cluster — sequential code reads replace
     * the page-granular random gathers — and only the pq.refine
     * exact-refined candidates per query still pull full flash pages.
     */
    PqConfig pq{};
    /**
     * Cluster-major batched rerank (mirrors CbirService::Config::
     * batchedRerank): with pq.enabled, each distinct probed cluster's
     * code block streams from near-storage once per query batch —
     * scored against every probing query in place — instead of once
     * per probing query; the per-query ADC tables travel to the scan
     * engine instead. Only the traffic accounting changes (results
     * are bitwise identical in the functional layer). Ignored
     * without pq.enabled.
     */
    bool batchedRerank = false;
    /**
     * Zipf exponent of the probe popularity across clusters, used by
     * the batched-rerank accounting to estimate how many distinct
     * clusters a batch's probes hit. 0 models uniform popularity
     * (every cluster equally likely); production query logs are
     * heavily skewed (s near 1), which is where cross-query block
     * sharing pays.
     */
    double probeZipfS = 0;
};

/**
 * Expected number of distinct clusters hit by @p probes independent
 * draws from a Zipf(@p zipfS) popularity over @p numCentroids
 * clusters (zipfS = 0 -> uniform). Closed-form expectation — a pure
 * function of its arguments, so sweeps stay bitwise deterministic at
 * any --jobs.
 */
double expectedDistinctProbedClusters(std::uint32_t numCentroids,
                                      double zipfS, double probes);

class CbirWorkloadModel
{
  public:
    /** Validates cfg (sim::fatal on a malformed pq block). */
    explicit CbirWorkloadModel(const ScaleConfig &cfg);

    const ScaleConfig &scale() const { return cfg; }

    /**
     * Storage bytes one rerank candidate costs at gather granularity:
     * a full flash page for the exact float pipeline, pqCodeBytes
     * for the PQ scan (codes stream sequentially from per-cluster
     * blocks, so the device reads codes, not pages — half as many at
     * 4 bits as at 8).
     */
    std::uint64_t rerankCandidateBytes() const;

    // ----- Table I footprints -----

    /** CNN model parameters (compressed or raw). */
    std::uint64_t modelParamBytes() const;
    /** Centroids + cell info (inverted lists): the ~2.2 GB row. */
    std::uint64_t centroidAndCellBytes() const;
    /** Raw feature database: the ~355 GB row. */
    std::uint64_t databaseBytes() const;

    std::uint64_t queryImageBytes() const;
    std::uint64_t featureVectorBytes() const;
    /** Average ids per inverted list. */
    std::uint64_t clusterSizeIds() const;

    // ----- Stage work units -----
    // Each returns the work of ONE task. partitions > 1 divides the
    // data (and therefore traffic/ops) across that many instances,
    // which is how near-data levels scale.

    /**
     * Feature extraction of a whole batch (the on-chip batched
     * implementation; parameters SRAM-resident after first load).
     */
    acc::WorkUnit featureExtractionBatch() const;

    /**
     * Feature extraction of a single image (the near-data variant:
     * one image per task, duplicated parameters per instance —
     * paper §VI-B).
     */
    acc::WorkUnit featureExtractionSingle() const;

    /**
     * Short-list retrieval for a batch over 1/partitions of the
     * centroids + cell info (GEMM + broadcast add + partial sort +
     * inverted-list scan).
     */
    acc::WorkUnit shortlistBatch(std::uint32_t partitions = 1) const;

    /**
     * Rerank for a batch over 1/partitions of the candidates: gather
     * candidate vectors (page-granular random reads) and run KNN.
     */
    acc::WorkUnit rerankBatch(std::uint32_t partitions = 1) const;

    /** Table I's image-store footprint (200 TB - 2 PB row). */
    std::uint64_t imageStoreBytes() const;

    /**
     * Reverse lookup for a batch over 1/partitions of the image
     * store: fetch the K result images per query and stream them to
     * the host (Table I: "Very low" compute, pure database access).
     */
    acc::WorkUnit reverseLookupBatch(std::uint32_t partitions = 1)
        const;

  private:
    ScaleConfig cfg;
};

} // namespace reach::cbir

#endif // REACH_CBIR_WORKLOAD_MODEL_HH
