#include "shortlist.hh"

#include "simd/simd.hh"

namespace reach::cbir
{

ShortLists
shortlistRetrieve(const Matrix &queries, const InvertedFileIndex &index,
                  std::size_t nprobe,
                  const parallel::ParallelConfig &par)
{
    const Matrix &cents = index.centroids();
    const auto &cnorm = index.centroidNormsSq();
    const simd::Kernels &kern = simd::kernels(par.simd);

    // <Q, C^T>: the GEMM the near-memory accelerators run.
    Matrix prod(queries.rows(), cents.rows());
    gemmNt(queries, cents, prod, par);

    ShortLists out(queries.rows());
    parallel::parallelFor(
        0, queries.rows(), 4,
        [&](std::size_t qb, std::size_t qe) {
            std::vector<float> dist(cents.rows());
            for (std::size_t q = qb; q < qe; ++q) {
                float qn =
                    kern.normSq(queries.row(q).data(), queries.cols());
                for (std::size_t m = 0; m < cents.rows(); ++m)
                    dist[m] = qn + cnorm[m] - 2.0f * prod.at(q, m);
                out[q] = topKMin(dist, nprobe);
            }
        },
        par);
    return out;
}

ShortLists
shortlistReference(const Matrix &queries, const InvertedFileIndex &index,
                   std::size_t nprobe)
{
    const Matrix &cents = index.centroids();
    ShortLists out(queries.rows());
    std::vector<float> dist(cents.rows());
    for (std::size_t q = 0; q < queries.rows(); ++q) {
        for (std::size_t m = 0; m < cents.rows(); ++m)
            dist[m] = l2sq(queries.row(q), cents.row(m));
        out[q] = topKMin(dist, nprobe);
    }
    return out;
}

} // namespace reach::cbir
