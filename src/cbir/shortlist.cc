#include "shortlist.hh"

#include <algorithm>

#include "simd/aligned.hh"
#include "simd/simd.hh"

namespace reach::cbir
{

namespace
{

/**
 * Column-block width of the fused scan. Chosen so one block of D=96
 * fp32 centroids (1.5 MiB) stays L2-resident while a grain of 8
 * query rows keeps the dist tile at 128 KiB; a multiple of 4, so the
 * blocked gemm tiles the same columns together as a full-width call
 * and fp32 bits cannot move (see shortlistScore's contract).
 */
constexpr std::size_t kColBlock = 4096;

/**
 * Row grain of the scan loop. Must match the historical gemmNt row
 * grain: the avx2 backend pairs query rows inside one kernel call,
 * so equal chunk shapes are what keep the blocked path bitwise equal
 * to the old materialize-then-score one.
 */
constexpr std::size_t kRowGrain = 8;

} // namespace

ShortLists
shortlistRetrieve(const Matrix &queries, const InvertedFileIndex &index,
                  std::size_t nprobe,
                  const parallel::ParallelConfig &par,
                  ShortlistPrecision precision)
{
    const Matrix &cents = index.centroids();
    const std::size_t m = cents.rows();
    const std::size_t d = cents.cols();
    const bool fp16 = precision == ShortlistPrecision::Fp16;
    const float *cnorm = fp16 ? index.centroidNormsSqF16().data()
                              : index.centroidNormsSq().data();
    const std::uint16_t *centsH =
        fp16 ? index.centroidsF16().data() : nullptr;
    const simd::Kernels &kern = simd::kernels(par.simd);

    // ||q||^2 for the whole batch up front (shared rowNormsSq, the
    // same machinery rerank uses) instead of one normSq per query
    // inside the scan loop.
    const std::vector<float> qnorm = rowNormsSq(queries, par);

    ShortLists out(queries.rows());
    parallel::parallelFor(
        0, queries.rows(), kRowGrain,
        [&](std::size_t qb, std::size_t qe) {
            const std::size_t nq = qe - qb;
            // Per-chunk distance tile: nq x kColBlock, reused across
            // column blocks — the only scan intermediate, in place of
            // the old B x M product matrix.
            std::vector<float, simd::AlignedAllocator<float, 64>>
                dist(nq * kColBlock);
            std::vector<TopKMin> sel;
            sel.reserve(nq);
            for (std::size_t q = 0; q < nq; ++q)
                sel.emplace_back(nprobe);
            for (std::size_t j0 = 0; j0 < m; j0 += kColBlock) {
                const std::size_t mb = std::min(kColBlock, m - j0);
                if (fp16) {
                    kern.shortlistScoreF16(
                        queries.row(qb).data(), qnorm.data() + qb, nq,
                        centsH + j0 * d, cnorm + j0, mb, d,
                        dist.data(), kColBlock);
                } else {
                    kern.shortlistScore(
                        queries.row(qb).data(), qnorm.data() + qb, nq,
                        cents.row(j0).data(), cnorm + j0, mb, d,
                        dist.data(), kColBlock);
                }
                for (std::size_t q = 0; q < nq; ++q) {
                    sel[q].consider(
                        {dist.data() + q * kColBlock, mb},
                        static_cast<std::uint32_t>(j0));
                }
            }
            for (std::size_t q = 0; q < nq; ++q)
                out[qb + q] = sel[q].finish();
        },
        par);
    return out;
}

ShortLists
shortlistReference(const Matrix &queries, const InvertedFileIndex &index,
                   std::size_t nprobe)
{
    const Matrix &cents = index.centroids();
    ShortLists out(queries.rows());
    std::vector<float> dist(cents.rows());
    for (std::size_t q = 0; q < queries.rows(); ++q) {
        for (std::size_t m = 0; m < cents.rows(); ++m)
            dist[m] = l2sq(queries.row(q), cents.row(m));
        out[q] = topKMin(dist, nprobe);
    }
    return out;
}

} // namespace reach::cbir
