#include "mini_cnn.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "simd/simd.hh"

namespace reach::cbir
{

namespace
{

std::vector<float>
randomWeights(std::size_t count, double scale, sim::Rng &rng)
{
    std::vector<float> w(count);
    for (auto &v : w)
        v = static_cast<float>(rng.nextGaussian() * scale);
    return w;
}

} // namespace

MiniCnn::MiniCnn(const MiniCnnConfig &config) : cfg(config)
{
    sim::Rng rng(cfg.seed);

    w1 = randomWeights(std::size_t(cfg.conv1Channels) *
                           cfg.inputChannels * 9,
                       0.3, rng);
    w2 = randomWeights(std::size_t(cfg.conv2Channels) *
                           cfg.conv1Channels * 9,
                       0.2, rng);

    std::uint32_t after_pool = cfg.inputSize / 4; // two 2x2 pools
    flatDim = cfg.conv2Channels * after_pool * after_pool;
    wfc = randomWeights(std::size_t(cfg.featureDim) * flatDim,
                        1.0 / std::sqrt(static_cast<double>(flatDim)),
                        rng);
}

Image
MiniCnn::convRelu(const Image &in, const std::vector<float> &weights,
                  std::uint32_t out_channels) const
{
    Image out;
    out.channels = out_channels;
    out.height = in.height;
    out.width = in.width;
    out.pixels.assign(std::size_t(out_channels) * in.height * in.width,
                      0.0f);

    // Row-vector formulation: for each (ic, ky, kx) tap, the whole
    // output row accumulates w * (input row shifted by kx) — one SIMD
    // axpy over the width instead of a scalar 3x3 gather per pixel.
    // The per-pixel contribution order (ic, ky, kx) matches the naive
    // triple loop, so the scalar backend reproduces it bitwise.
    const simd::Kernels &k = simd::kernels(cfg.parallel.simd);
    const std::size_t w = in.width;
    auto conv_channel = [&](std::uint32_t oc) {
        std::vector<float> acc(w);
        for (std::uint32_t y = 0; y < in.height; ++y) {
            std::fill(acc.begin(), acc.end(), 0.0f);
            for (std::uint32_t ic = 0; ic < in.channels; ++ic) {
                for (int ky = -1; ky <= 1; ++ky) {
                    int yy = static_cast<int>(y) + ky;
                    if (yy < 0 || yy >= static_cast<int>(in.height))
                        continue;
                    const float *in_row =
                        in.pixels.data() +
                        (std::size_t(ic) * in.height +
                         static_cast<std::uint32_t>(yy)) *
                            in.width;
                    for (int kx = -1; kx <= 1; ++kx) {
                        std::size_t wi =
                            ((std::size_t(oc) * in.channels + ic) * 3 +
                             (ky + 1)) *
                                3 +
                            (kx + 1);
                        // Valid output range: x + kx in [0, w).
                        std::size_t x0 =
                            static_cast<std::size_t>(std::max(0, -kx));
                        std::size_t x1 =
                            w - static_cast<std::size_t>(
                                    std::max(0, kx));
                        k.axpy(weights[wi], in_row + x0 + kx,
                               acc.data() + x0, x1 - x0);
                    }
                }
            }
            for (std::uint32_t x = 0; x < in.width; ++x)
                out.at(oc, y, x) = std::max(0.0f, acc[x]); // ReLU
        }
    };

    // Each output channel writes a disjoint plane, so the channel
    // loop parallelizes without any coordination.
    parallel::parallelFor(
        0, out_channels, 1,
        [&](std::size_t oc_b, std::size_t oc_e) {
            for (std::size_t oc = oc_b; oc < oc_e; ++oc)
                conv_channel(static_cast<std::uint32_t>(oc));
        },
        cfg.parallel);
    return out;
}

Image
MiniCnn::maxPool(const Image &in) const
{
    Image out;
    out.channels = in.channels;
    out.height = in.height / 2;
    out.width = in.width / 2;
    out.pixels.assign(std::size_t(out.channels) * out.height * out.width,
                      0.0f);
    for (std::uint32_t c = 0; c < out.channels; ++c) {
        for (std::uint32_t y = 0; y < out.height; ++y) {
            for (std::uint32_t x = 0; x < out.width; ++x) {
                float m = in.at(c, 2 * y, 2 * x);
                m = std::max(m, in.at(c, 2 * y, 2 * x + 1));
                m = std::max(m, in.at(c, 2 * y + 1, 2 * x));
                m = std::max(m, in.at(c, 2 * y + 1, 2 * x + 1));
                out.at(c, y, x) = m;
            }
        }
    }
    return out;
}

std::vector<float>
MiniCnn::extract(const Image &img) const
{
    if (img.channels != cfg.inputChannels ||
        img.height != cfg.inputSize || img.width != cfg.inputSize) {
        sim::fatal("MiniCnn: image shape mismatch");
    }

    Image a = maxPool(convRelu(img, w1, cfg.conv1Channels));
    Image b = maxPool(convRelu(a, w2, cfg.conv2Channels));

    // Fully connected projection to the feature dimension: the
    // flattened activation against a tile of weight rows is exactly
    // the one-query-vs-row-tile shape of dotBatch.
    const simd::Kernels &k = simd::kernels(cfg.parallel.simd);
    std::vector<float> feat(cfg.featureDim, 0.0f);
    parallel::parallelFor(
        0, cfg.featureDim, 16,
        [&](std::size_t fb, std::size_t fe) {
            k.dotBatch(b.pixels.data(), &wfc[fb * flatDim], fe - fb,
                       flatDim, &feat[fb]);
        },
        cfg.parallel);
    return feat;
}

Matrix
MiniCnn::extractBatch(const std::vector<Image> &imgs) const
{
    Matrix out(imgs.size(), cfg.featureDim);
    // Parallel over images; the per-image conv/fc parallelFor calls
    // detect the nesting and run inline on the worker.
    parallel::parallelFor(
        0, imgs.size(), 1,
        [&](std::size_t ib, std::size_t ie) {
            for (std::size_t i = ib; i < ie; ++i) {
                auto f = extract(imgs[i]);
                std::copy(f.begin(), f.end(), out.row(i).begin());
            }
        },
        cfg.parallel);
    return out;
}

std::uint64_t
MiniCnn::weightBytes() const
{
    return std::uint64_t(4) * (w1.size() + w2.size() + wfc.size());
}

Image
makeSyntheticImage(std::uint32_t class_id, std::uint64_t seed,
                   std::uint32_t channels, std::uint32_t size)
{
    sim::Rng rng(seed ^ (std::uint64_t(class_id) << 32));
    Image img;
    img.channels = channels;
    img.height = size;
    img.width = size;
    img.pixels.assign(std::size_t(channels) * size * size, 0.0f);

    // Class-dependent sinusoidal pattern plus per-image noise: images
    // of the same class produce nearby CNN features.
    double fx = 0.2 + 0.13 * ((class_id * 7) % 5);
    double fy = 0.2 + 0.11 * ((class_id * 13) % 7);
    for (std::uint32_t c = 0; c < channels; ++c) {
        for (std::uint32_t y = 0; y < size; ++y) {
            for (std::uint32_t x = 0; x < size; ++x) {
                double v = std::sin(fx * x + c) * std::cos(fy * y - c) +
                           0.15 * rng.nextGaussian();
                img.at(c, y, x) = static_cast<float>(v);
            }
        }
    }
    return img;
}

} // namespace reach::cbir
