/**
 * @file
 * Short-list retrieval (paper §IV-A, Eq. 1).
 *
 * For a batch of queries Q (B x D) and centroids C (M x D), distances
 * decompose as
 *   dist[q][m] = ||q||^2 + ||C_m||^2 - 2 <q, C_m>
 * so the bottleneck is the matrix product Q C^T. The scan is blocked:
 * centroids are scored in cache-sized column blocks through the fused
 * simd::Kernels::shortlistScore kernel (no B x M product matrix is
 * ever materialized) and a streaming TopKMin per query selects the
 * nprobe closest clusters across blocks — bitwise the same lists the
 * historical materialized-product path produced.
 *
 * The scan runs at one of two precisions. Fp32 streams the fp32
 * centroid matrix (4 bytes/dim). Fp16 streams the index's packed
 * IEEE-half copy (2 bytes/dim) through the F16C convert kernels with
 * fp32 accumulation — half the memory traffic on a bandwidth-bound
 * scan, at a small recall cost the accuracy_recall harness gates.
 * ScaleConfig::centroidBytesPerDim must agree with the chosen
 * precision; centroidBytesPerDim(ShortlistPrecision) is the one
 * mapping both sides use.
 */

#ifndef REACH_CBIR_SHORTLIST_HH
#define REACH_CBIR_SHORTLIST_HH

#include <cstdint>
#include <vector>

#include "cbir/index.hh"
#include "cbir/linalg.hh"
#include "parallel/parallel.hh"

namespace reach::cbir
{

/** Per-query list of candidate cluster ids, closest first. */
using ShortLists = std::vector<std::vector<std::uint32_t>>;

/** Numeric format of the streamed centroid matrix in the scan. */
enum class ShortlistPrecision : std::uint8_t { Fp32, Fp16 };

/**
 * Bytes per centroid dimension the scan actually streams — the value
 * ScaleConfig::centroidBytesPerDim must carry so the byte model and
 * the functional path cannot drift apart.
 */
constexpr std::uint32_t
centroidBytesPerDim(ShortlistPrecision p)
{
    return p == ShortlistPrecision::Fp16 ? 2u : 4u;
}

/** "fp32" / "fp16". */
constexpr const char *
name(ShortlistPrecision p)
{
    return p == ShortlistPrecision::Fp16 ? "fp16" : "fp32";
}

/**
 * Retrieve the @p nprobe closest clusters for every query in the
 * batch using the decomposed-GEMM formulation, blocked and fused as
 * described above. At Fp32 the lists are bitwise identical for a
 * fixed backend at any thread count; at Fp16 the quantized distances
 * are additionally bitwise identical *across* backends (the fp16
 * kernels' contract), though the lists still depend on the backend
 * through the fp32 query norms.
 */
ShortLists shortlistRetrieve(
    const Matrix &queries, const InvertedFileIndex &index,
    std::size_t nprobe, const parallel::ParallelConfig &par = {},
    ShortlistPrecision precision = ShortlistPrecision::Fp32);

/**
 * Reference implementation: per-query direct distance evaluation
 * (Eq. 2). Used by tests to validate the decomposition.
 */
ShortLists shortlistReference(const Matrix &queries,
                              const InvertedFileIndex &index,
                              std::size_t nprobe);

} // namespace reach::cbir

#endif // REACH_CBIR_SHORTLIST_HH
