/**
 * @file
 * Short-list retrieval (paper §IV-A, Eq. 1).
 *
 * For a batch of queries Q (B x D) and centroids C (M x D), distances
 * decompose as
 *   dist[q][m] = ||q||^2 + ||C_m||^2 - 2 <q, C_m>
 * so the bottleneck is the matrix-matrix product Q C^T, followed by a
 * broadcast addition and a partial sort selecting the nprobe closest
 * clusters per query.
 */

#ifndef REACH_CBIR_SHORTLIST_HH
#define REACH_CBIR_SHORTLIST_HH

#include <cstdint>
#include <vector>

#include "cbir/index.hh"
#include "cbir/linalg.hh"
#include "parallel/parallel.hh"

namespace reach::cbir
{

/** Per-query list of candidate cluster ids, closest first. */
using ShortLists = std::vector<std::vector<std::uint32_t>>;

/**
 * Retrieve the @p nprobe closest clusters for every query in the
 * batch using the decomposed-GEMM formulation.
 */
ShortLists shortlistRetrieve(const Matrix &queries,
                             const InvertedFileIndex &index,
                             std::size_t nprobe,
                             const parallel::ParallelConfig &par = {});

/**
 * Reference implementation: per-query direct distance evaluation
 * (Eq. 2). Used by tests to validate the decomposition.
 */
ShortLists shortlistReference(const Matrix &queries,
                              const InvertedFileIndex &index,
                              std::size_t nprobe);

} // namespace reach::cbir

#endif // REACH_CBIR_SHORTLIST_HH
