/**
 * @file
 * Principal component analysis for feature compression (paper §IV-A:
 * "VGGNet ... and PCA compression with a dimensionality of 96").
 *
 * Power iteration with deflation on the sample covariance; adequate
 * for the moderate dimensionalities of CNN feature vectors and fully
 * deterministic.
 */

#ifndef REACH_CBIR_PCA_HH
#define REACH_CBIR_PCA_HH

#include <cstdint>
#include <vector>

#include "cbir/linalg.hh"

namespace reach::cbir
{

class Pca
{
  public:
    /**
     * Fit @p components principal directions to @p samples
     * (rows = observations).
     */
    Pca(const Matrix &samples, std::size_t components,
        std::size_t power_iterations = 64, std::uint64_t seed = 99);

    /** Project a batch to the principal subspace. */
    Matrix transform(const Matrix &batch) const;

    std::size_t components() const { return basis.rows(); }
    std::size_t inputDim() const { return basis.cols(); }

    /** Per-component explained variance (eigenvalues), descending. */
    const std::vector<double> &explainedVariance() const
    {
        return eigenvalues;
    }

    /** Row c = c-th principal direction (unit length). */
    const Matrix &components_() const { return basis; }

    /** Per-dimension mean subtracted before projection. */
    const std::vector<float> &mean() const { return mu; }

  private:
    Matrix basis;
    std::vector<double> eigenvalues;
    std::vector<float> mu;
};

} // namespace reach::cbir

#endif // REACH_CBIR_PCA_HH
