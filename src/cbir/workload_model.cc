#include "workload_model.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace reach::cbir
{

double
expectedDistinctProbedClusters(std::uint32_t numCentroids,
                               double zipfS, double probes)
{
    if (numCentroids == 0 || probes <= 0)
        return 0;
    if (zipfS <= 0) {
        const double miss = 1.0 - 1.0 / numCentroids;
        return numCentroids * (1.0 - std::pow(miss, probes));
    }
    double norm = 0;
    for (std::uint32_t c = 1; c <= numCentroids; ++c)
        norm += 1.0 / std::pow(static_cast<double>(c), zipfS);
    double distinct = 0;
    for (std::uint32_t c = 1; c <= numCentroids; ++c) {
        const double p =
            1.0 / std::pow(static_cast<double>(c), zipfS) / norm;
        distinct += 1.0 - std::pow(1.0 - p, probes);
    }
    return distinct;
}

CbirWorkloadModel::CbirWorkloadModel(const ScaleConfig &cfg) : cfg(cfg)
{
    if (cfg.pq.enabled)
        validatePqConfig(cfg.pq, cfg.dim);
    if (cfg.centroidBytesPerDim != 2 && cfg.centroidBytesPerDim != 4) {
        sim::fatal("ScaleConfig: centroidBytesPerDim must be 2 (fp16) "
                   "or 4 (fp32), got ", cfg.centroidBytesPerDim);
    }
}

std::uint64_t
CbirWorkloadModel::rerankCandidateBytes() const
{
    return cfg.pq.enabled ? pqCodeBytes(cfg.pq) : cfg.flashPageBytes;
}

std::uint64_t
CbirWorkloadModel::modelParamBytes() const
{
    return cfg.compressedModel ? vgg16CompressedWeightBytes()
                               : vgg16WeightBytes();
}

std::uint64_t
CbirWorkloadModel::centroidAndCellBytes() const
{
    // Centroids (M x D components at the configured precision) +
    // precomputed ||C||^2 + compact inverted-list entries:
    // cellBytesPerId per database vector. For N=1e9 at 2.2 B/id this
    // is Table I's ~2.2 GB.
    std::uint64_t centroids =
        std::uint64_t(cfg.numCentroids) * cfg.dim *
            cfg.centroidBytesPerDim +
        std::uint64_t(cfg.numCentroids) * 4;
    auto cell_info = static_cast<std::uint64_t>(
        static_cast<double>(cfg.databaseVectors) * cfg.cellBytesPerId);
    return centroids + cell_info;
}

std::uint64_t
CbirWorkloadModel::databaseBytes() const
{
    // 1e9 x 96 x 4B = 384 GB decimal = ~357 GiB: Table I's ~355 GB.
    return cfg.databaseVectors * cfg.dim * 4;
}

std::uint64_t
CbirWorkloadModel::queryImageBytes() const
{
    return std::uint64_t(cfg.imageC) * cfg.imageH * cfg.imageW;
}

std::uint64_t
CbirWorkloadModel::featureVectorBytes() const
{
    return std::uint64_t(cfg.dim) * 4;
}

std::uint64_t
CbirWorkloadModel::clusterSizeIds() const
{
    return cfg.databaseVectors / cfg.numCentroids;
}

acc::WorkUnit
CbirWorkloadModel::featureExtractionBatch() const
{
    acc::WorkUnit w;
    w.paramKey = "vgg16";
    double per_image = vgg16TotalMacs() *
                       (cfg.compressedModel ? cfg.prunedMacFraction
                                            : 1.0);
    w.ops = per_image * cfg.batchSize;
    w.bytesIn = queryImageBytes() * cfg.batchSize;
    w.bytesOut = featureVectorBytes() * cfg.batchSize;
    w.paramBytes = modelParamBytes();
    // Batched on-chip implementation keeps weights + activations in
    // SRAM; the image stream itself is tiny.
    w.inputResident = true;
    return w;
}

acc::WorkUnit
CbirWorkloadModel::featureExtractionSingle() const
{
    acc::WorkUnit w;
    w.paramKey = "vgg16";
    w.ops = vgg16TotalMacs() * (cfg.compressedModel
                                    ? cfg.prunedMacFraction
                                    : 1.0);
    w.bytesIn = queryImageBytes();
    w.bytesOut = featureVectorBytes();
    w.paramBytes = modelParamBytes();
    w.inputResident = false;
    return w;
}

acc::WorkUnit
CbirWorkloadModel::shortlistBatch(std::uint32_t partitions) const
{
    if (partitions == 0)
        partitions = 1;

    acc::WorkUnit w;
    w.paramKey = "centroids";

    // The GEMM: B x M x D multiply-accumulates, plus the broadcast
    // add and a scan of the touched inverted lists to emit candidate
    // ids for the rerank stage.
    double gemm_ops = static_cast<double>(cfg.batchSize) *
                      cfg.numCentroids * cfg.dim;
    double scan_words = static_cast<double>(cfg.batchSize) * cfg.nprobe *
                        clusterSizeIds();
    w.ops = (gemm_ops + scan_words) / partitions;

    // Streams the centroid matrix once per batch plus the inverted
    // lists of the short-listed clusters (the "cell info" traffic
    // that makes this stage memory-bound, Table I). The centroid
    // stream shrinks with the configured storage precision.
    std::uint64_t centroid_bytes =
        std::uint64_t(cfg.numCentroids) * cfg.dim *
        cfg.centroidBytesPerDim;
    auto cell_bytes = static_cast<std::uint64_t>(
        scan_words * cfg.cellBytesPerId);
    w.bytesIn = (centroid_bytes + cell_bytes) / partitions;

    // Short-lists + candidate ids for the rerank stage.
    w.bytesOut = (std::uint64_t(cfg.batchSize) * cfg.nprobe * 8 +
                  std::uint64_t(cfg.batchSize) * cfg.rerankCandidates *
                      4) /
                 partitions;
    w.paramBytes = 0;
    return w;
}

acc::WorkUnit
CbirWorkloadModel::rerankBatch(std::uint32_t partitions) const
{
    if (partitions == 0)
        partitions = 1;

    acc::WorkUnit w;
    w.paramKey = "rerankdb";

    std::uint64_t candidates =
        std::uint64_t(cfg.batchSize) * cfg.rerankCandidates;

    if (cfg.pq.enabled) {
        // Compressed rerank. Compute: M lookup-adds per candidate,
        // the per-query M x 256 ADC table build (256 * D MACs), and
        // D MACs per exact-refined candidate.
        std::uint64_t refined =
            std::uint64_t(cfg.batchSize) *
            std::min(cfg.pq.refine, cfg.rerankCandidates);
        const double table_entries =
            static_cast<double>(cfg.pq.bits == 4 ? 16 : 256);
        w.ops = (static_cast<double>(candidates) * cfg.pq.m +
                 static_cast<double>(cfg.batchSize) * table_entries *
                     cfg.dim +
                 static_cast<double>(refined) * cfg.dim) /
                partitions;
        if (cfg.batchedRerank) {
            // Cluster-major: each distinct probed cluster's code
            // block streams once per batch (to the longest prefix a
            // single query's budget can need), and the per-query ADC
            // tables travel to the scan engine instead of the codes
            // travelling per query. The arithmetic is unchanged —
            // only where the bytes cross the hierarchy.
            const std::uint64_t cluster_ids = clusterSizeIds();
            const std::uint64_t per_cluster =
                cfg.rerankCandidates == 0
                    ? cluster_ids
                    : std::min<std::uint64_t>(cluster_ids,
                                              cfg.rerankCandidates);
            // Clusters a single query's budget actually reaches.
            std::uint64_t per_query = cfg.nprobe;
            if (per_cluster > 0 && cfg.rerankCandidates != 0) {
                per_query = std::min<std::uint64_t>(
                    cfg.nprobe, (cfg.rerankCandidates + per_cluster -
                                 1) /
                                    per_cluster);
            }
            const double distinct = expectedDistinctProbedClusters(
                cfg.numCentroids, cfg.probeZipfS,
                static_cast<double>(cfg.batchSize) *
                    static_cast<double>(per_query));
            const std::uint64_t lut_bytes =
                std::uint64_t(cfg.batchSize) * cfg.pq.m *
                (cfg.pq.bits == 4 ? 16ull * 1 : 256ull * 4);
            w.bytesIn =
                (static_cast<std::uint64_t>(
                     distinct * static_cast<double>(per_cluster)) *
                     pqCodeBytes(cfg.pq) +
                 lut_bytes + refined * cfg.flashPageBytes) /
                partitions;
        } else {
            // Codes stream sequentially from per-cluster blocks —
            // the device reads the packed code bytes per candidate
            // (half as many at 4 bits), not a page. Only the refined
            // candidates still gather full vectors at page
            // granularity.
            w.bytesIn = (candidates * pqCodeBytes(cfg.pq) +
                         refined * cfg.flashPageBytes) /
                        partitions;
        }
    } else {
        // KNN distance lanes: D MACs per candidate.
        w.ops = static_cast<double>(candidates) * cfg.dim / partitions;

        // Random gather: each candidate pulls one flash page (the
        // vector occupies a fraction of it, but the device reads
        // pages).
        w.bytesIn = candidates * cfg.flashPageBytes / partitions;
    }

    // K results per query (id + distance).
    w.bytesOut =
        std::uint64_t(cfg.batchSize) * cfg.topK * 8 / partitions;
    w.paramBytes = 0;
    return w;
}

std::uint64_t
CbirWorkloadModel::imageStoreBytes() const
{
    return cfg.databaseVectors *
           static_cast<std::uint64_t>(cfg.avgImageBytes);
}

acc::WorkUnit
CbirWorkloadModel::reverseLookupBatch(std::uint32_t partitions) const
{
    if (partitions == 0)
        partitions = 1;

    acc::WorkUnit w;
    w.paramKey = "imagestore";

    std::uint64_t images = std::uint64_t(cfg.batchSize) * cfg.topK;
    // Database access only: negligible compute per fetched byte.
    w.ops = static_cast<double>(images) / partitions;
    w.bytesIn = images * cfg.avgImageBytes / partitions;
    // The fetched images travel back to the host.
    w.bytesOut = w.bytesIn;
    return w;
}

} // namespace reach::cbir
