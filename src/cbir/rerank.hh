/**
 * @file
 * Rerank (paper §IV-A): traverse the short-listed clusters, gather
 * candidate vectors, compute exact squared-L2 distances to the query
 * (the KNN kernel) and partial-sort the K nearest.
 */

#ifndef REACH_CBIR_RERANK_HH
#define REACH_CBIR_RERANK_HH

#include <cstdint>
#include <vector>

#include "cbir/index.hh"
#include "cbir/linalg.hh"
#include "cbir/shortlist.hh"
#include "parallel/parallel.hh"

namespace reach::cbir
{

/** One retrieved neighbour. */
struct Neighbor
{
    std::uint32_t id = 0;
    float distSq = 0;

    bool
    operator==(const Neighbor &o) const
    {
        return id == o.id && distSq == o.distSq;
    }
};

/** Per-query K nearest neighbours, closest first. */
using RerankResults = std::vector<std::vector<Neighbor>>;

struct RerankConfig
{
    /** Results per query (K). */
    std::size_t k = 10;
    /**
     * Candidate budget per query; the paper caps it at 4096 "to make
     * the simulation time manageable". 0 = unlimited.
     */
    std::size_t maxCandidates = 4096;
    /**
     * Threads + SIMD backend for the per-query parallel loop; the
     * backend (ParallelConfig::simd) also selects the batched
     * distance kernels.
     */
    parallel::ParallelConfig parallel{};
    /**
     * Compressed-domain scoring: rank candidates by PQ asymmetric
     * distance over their stored codes instead of exact distances
     * over the full vectors. Requires an index carrying PQ codes
     * (InvertedFileIndex::buildPq); panics otherwise.
     */
    bool usePq = false;
    /**
     * With usePq, re-score the top max(k, pqRefine) ADC candidates
     * with exact full-precision distances before the cut to K (the
     * two-stage rerank that keeps recall controllable). 0 keeps the
     * pure ADC order and never touches the float vectors.
     */
    std::size_t pqRefine = 128;
    /**
     * With usePq, invert the ADC scan from query-major to
     * cluster-major over the whole batch: build the probe inverse
     * map (cluster -> probing queries), then stream each probed
     * cluster's contiguous code block exactly once while the
     * multi-query ADC kernels score it against every probing query's
     * table. Per-query candidate sets, distances and the final top-K
     * are bitwise identical to the query-major path at any backend,
     * batch size and thread count — only the memory traffic changes
     * (each code block crosses the hierarchy once per batch instead
     * of once per probing query). Ignored without usePq (the exact
     * path re-reads full float rows per query anyway and stays
     * query-major).
     */
    bool batchedScan = false;
};

/**
 * Rerank a batch: for each query, gather members of its short-listed
 * clusters (closest clusters first, truncated at maxCandidates) and
 * return the K nearest by exact distance.
 */
RerankResults rerank(const Matrix &queries, const Matrix &database,
                     const InvertedFileIndex &index,
                     const ShortLists &lists, const RerankConfig &cfg);

/** Exhaustive exact search over the whole database (ground truth). */
RerankResults bruteForce(const Matrix &queries, const Matrix &database,
                         std::size_t k,
                         const parallel::ParallelConfig &par = {});

/**
 * recall@K: fraction of true K-nearest ids (from @p truth) that
 * appear in the retrieved K (from @p got), averaged over queries.
 */
double recallAtK(const RerankResults &got, const RerankResults &truth,
                 std::size_t k);

} // namespace reach::cbir

#endif // REACH_CBIR_RERANK_HH
