/**
 * @file
 * k-means clustering for the CBIR offline indexing stage (paper
 * §IV-A: centroids are "produced using clustering methods such as
 * kd-trees or k-means during the off-line stage").
 *
 * k-means++ seeding followed by Lloyd iterations; deterministic for a
 * given seed.
 */

#ifndef REACH_CBIR_KMEANS_HH
#define REACH_CBIR_KMEANS_HH

#include <cstdint>
#include <vector>

#include "cbir/linalg.hh"
#include "parallel/parallel.hh"
#include "sim/rng.hh"

namespace reach::cbir
{

struct KMeansConfig
{
    std::size_t clusters = 1000;
    std::size_t maxIterations = 25;
    /** Stop when the relative inertia improvement drops below this. */
    double tolerance = 1e-4;
    std::uint64_t seed = 7;
    /**
     * Threads for the Lloyd assignment step. The decomposition (and
     * therefore the result) does not depend on the thread count.
     */
    parallel::ParallelConfig parallel{};
};

struct KMeansResult
{
    Matrix centroids;
    /** Cluster assignment per input vector. */
    std::vector<std::uint32_t> assignment;
    /** Sum of squared distances to assigned centroids. */
    double inertia = 0;
    std::size_t iterations = 0;
};

/**
 * Cluster @p points into cfg.clusters groups.
 * @pre points.rows() >= cfg.clusters.
 */
KMeansResult kMeans(const Matrix &points, const KMeansConfig &cfg);

/**
 * Index of the centroid nearest to @p v, by the same batched norm
 * decomposition (||C||^2 - 2 v.C, ties to the lower index) the Lloyd
 * assignment step uses, so assignments and this helper always agree
 * for a given backend.
 */
std::uint32_t nearestCentroid(const Matrix &centroids,
                              std::span<const float> v,
                              simd::Choice backend =
                                  simd::Choice::autoDetect);

} // namespace reach::cbir

#endif // REACH_CBIR_KMEANS_HH
