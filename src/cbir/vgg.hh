/**
 * @file
 * VGG16 layer descriptors (paper §IV-A: feature extraction uses
 * VGGNet + PCA compression to D = 96).
 *
 * The timing/energy model does not need weights — only each layer's
 * dimensions, multiply-accumulate count, and parameter/activation
 * footprints, which drive the CNN accelerator's WorkUnit. The totals
 * reproduce Table I: ~552 MB of float32 parameters (11.3 MB after
 * deep compression) and ~15.5 GMACs per 224x224 image.
 */

#ifndef REACH_CBIR_VGG_HH
#define REACH_CBIR_VGG_HH

#include <cstdint>
#include <string>
#include <vector>

namespace reach::cbir
{

enum class LayerKind
{
    Conv,
    Pool,
    FullyConnected,
};

struct VggLayer
{
    std::string name;
    LayerKind kind = LayerKind::Conv;
    /** Input feature map: channels x height x width. */
    std::uint32_t inChannels = 0, inH = 0, inW = 0;
    /** Output feature map. */
    std::uint32_t outChannels = 0, outH = 0, outW = 0;
    /** Convolution kernel size (3 for VGG convs, 2 for pools). */
    std::uint32_t kernel = 3;

    /** Multiply-accumulates for one image through this layer. */
    double macs() const;
    /** Weight parameters (float32 bytes). */
    std::uint64_t weightBytes() const;
    /** Output activation bytes (float32). */
    std::uint64_t activationBytes() const;
};

/** The 16 weighted layers (plus pools) of VGG16 at 224x224 input. */
const std::vector<VggLayer> &vgg16Layers();

/** Total MACs for one image. */
double vgg16TotalMacs();

/** Total float32 parameter bytes (~552 MB incl. FC layers). */
std::uint64_t vgg16WeightBytes();

/**
 * Deep-compressed parameter footprint (paper cites 11.3 MB via
 * pruning + quantization + Huffman coding [23]).
 */
std::uint64_t vgg16CompressedWeightBytes();

} // namespace reach::cbir

#endif // REACH_CBIR_VGG_HH
