#include "linalg.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"
#include "simd/simd.hh"

namespace reach::cbir
{

float
dot(std::span<const float> a, std::span<const float> b,
    simd::Choice backend)
{
    if (a.size() != b.size())
        sim::panic("dot: length mismatch");
    return simd::kernels(backend).dot(a.data(), b.data(), a.size());
}

float
l2sq(std::span<const float> a, std::span<const float> b,
     simd::Choice backend)
{
    if (a.size() != b.size())
        sim::panic("l2sq: length mismatch");
    return simd::kernels(backend).l2sq(a.data(), b.data(), a.size());
}

float
normSq(std::span<const float> a, simd::Choice backend)
{
    return simd::kernels(backend).normSq(a.data(), a.size());
}

void
axpy(float alpha, std::span<const float> x, std::span<float> y,
     simd::Choice backend)
{
    if (x.size() != y.size())
        sim::panic("axpy: length mismatch");
    simd::kernels(backend).axpy(alpha, x.data(), y.data(), x.size());
}

void
gemmNt(const Matrix &a, const Matrix &b, Matrix &c,
       const parallel::ParallelConfig &par)
{
    if (a.cols() != b.cols())
        sim::panic("gemmNt: inner dimension mismatch");
    if (c.rows() != a.rows() || c.cols() != b.rows())
        sim::panic("gemmNt: output shape mismatch");

    const simd::Kernels &k = simd::kernels(par.simd);
    constexpr std::size_t row_grain = 8;
    parallel::parallelFor(
        0, a.rows(), row_grain,
        [&](std::size_t i0, std::size_t i1) {
            k.gemmNt(a.row(i0).data(), i1 - i0, b.flat().data(),
                     b.rows(), a.cols(), c.row(i0).data(), c.cols());
        },
        par);
}

std::vector<std::uint32_t>
topKMin(std::span<const float> values, std::size_t k)
{
    k = std::min(k, values.size());
    if (k == 0)
        return {};

    // "better" = smaller value, ties to the lower index. Used as the
    // heap comparator it keeps the *worst* retained candidate at the
    // front, so each survivor test is a single comparison.
    auto better = [&](std::uint32_t x, std::uint32_t y) {
        if (values[x] != values[y])
            return values[x] < values[y];
        return x < y;
    };

    std::vector<std::uint32_t> heap;
    heap.reserve(k);
    for (std::uint32_t i = 0; i < k; ++i)
        heap.push_back(i);
    std::make_heap(heap.begin(), heap.end(), better);
    for (std::size_t i = k; i < values.size(); ++i) {
        auto cand = static_cast<std::uint32_t>(i);
        if (better(cand, heap.front())) {
            std::pop_heap(heap.begin(), heap.end(), better);
            heap.back() = cand;
            std::push_heap(heap.begin(), heap.end(), better);
        }
    }
    std::sort_heap(heap.begin(), heap.end(), better);
    return heap;
}

} // namespace reach::cbir
