#include "linalg.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"

namespace reach::cbir
{

float
dot(std::span<const float> a, std::span<const float> b)
{
    if (a.size() != b.size())
        sim::panic("dot: length mismatch");
    float acc = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += a[i] * b[i];
    return acc;
}

float
l2sq(std::span<const float> a, std::span<const float> b)
{
    if (a.size() != b.size())
        sim::panic("l2sq: length mismatch");
    float acc = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        float d = a[i] - b[i];
        acc += d * d;
    }
    return acc;
}

float
normSq(std::span<const float> a)
{
    float acc = 0;
    for (float v : a)
        acc += v * v;
    return acc;
}

namespace
{

/**
 * One row block of C = A * B^T. A 1x4 register tile streams each A
 * row once across four B rows, keeping four accumulators live; the
 * per-element accumulation order over d is the same as dot(), so the
 * tiling never changes the result.
 */
void
gemmRowBlock(const Matrix &a, const Matrix &b, Matrix &c,
             std::size_t i0, std::size_t i1)
{
    const std::size_t d = a.cols();
    const std::size_t m = b.rows();
    for (std::size_t i = i0; i < i1; ++i) {
        const float *ra = a.row(i).data();
        float *rc = c.row(i).data();
        std::size_t j = 0;
        for (; j + 4 <= m; j += 4) {
            const float *b0 = b.row(j).data();
            const float *b1 = b.row(j + 1).data();
            const float *b2 = b.row(j + 2).data();
            const float *b3 = b.row(j + 3).data();
            float acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
            for (std::size_t t = 0; t < d; ++t) {
                float av = ra[t];
                acc0 += av * b0[t];
                acc1 += av * b1[t];
                acc2 += av * b2[t];
                acc3 += av * b3[t];
            }
            rc[j] = acc0;
            rc[j + 1] = acc1;
            rc[j + 2] = acc2;
            rc[j + 3] = acc3;
        }
        for (; j < m; ++j)
            rc[j] = dot(a.row(i), b.row(j));
    }
}

} // namespace

void
gemmNt(const Matrix &a, const Matrix &b, Matrix &c,
       const parallel::ParallelConfig &par)
{
    if (a.cols() != b.cols())
        sim::panic("gemmNt: inner dimension mismatch");
    if (c.rows() != a.rows() || c.cols() != b.rows())
        sim::panic("gemmNt: output shape mismatch");

    constexpr std::size_t row_grain = 8;
    parallel::parallelFor(
        0, a.rows(), row_grain,
        [&](std::size_t i0, std::size_t i1) {
            gemmRowBlock(a, b, c, i0, i1);
        },
        par);
}

std::vector<std::uint32_t>
topKMin(std::span<const float> values, std::size_t k)
{
    k = std::min(k, values.size());
    if (k == 0)
        return {};

    // "better" = smaller value, ties to the lower index. Used as the
    // heap comparator it keeps the *worst* retained candidate at the
    // front, so each survivor test is a single comparison.
    auto better = [&](std::uint32_t x, std::uint32_t y) {
        if (values[x] != values[y])
            return values[x] < values[y];
        return x < y;
    };

    std::vector<std::uint32_t> heap;
    heap.reserve(k);
    for (std::uint32_t i = 0; i < k; ++i)
        heap.push_back(i);
    std::make_heap(heap.begin(), heap.end(), better);
    for (std::size_t i = k; i < values.size(); ++i) {
        auto cand = static_cast<std::uint32_t>(i);
        if (better(cand, heap.front())) {
            std::pop_heap(heap.begin(), heap.end(), better);
            heap.back() = cand;
            std::push_heap(heap.begin(), heap.end(), better);
        }
    }
    std::sort_heap(heap.begin(), heap.end(), better);
    return heap;
}

} // namespace reach::cbir
