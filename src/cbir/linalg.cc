#include "linalg.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"
#include "simd/simd.hh"

namespace reach::cbir
{

float
dot(std::span<const float> a, std::span<const float> b,
    simd::Choice backend)
{
    if (a.size() != b.size())
        sim::panic("dot: length mismatch");
    return simd::kernels(backend).dot(a.data(), b.data(), a.size());
}

float
l2sq(std::span<const float> a, std::span<const float> b,
     simd::Choice backend)
{
    if (a.size() != b.size())
        sim::panic("l2sq: length mismatch");
    return simd::kernels(backend).l2sq(a.data(), b.data(), a.size());
}

float
normSq(std::span<const float> a, simd::Choice backend)
{
    return simd::kernels(backend).normSq(a.data(), a.size());
}

void
axpy(float alpha, std::span<const float> x, std::span<float> y,
     simd::Choice backend)
{
    if (x.size() != y.size())
        sim::panic("axpy: length mismatch");
    simd::kernels(backend).axpy(alpha, x.data(), y.data(), x.size());
}

void
gemmNt(const Matrix &a, const Matrix &b, Matrix &c,
       const parallel::ParallelConfig &par)
{
    if (a.cols() != b.cols())
        sim::panic("gemmNt: inner dimension mismatch");
    if (c.rows() != a.rows() || c.cols() != b.rows())
        sim::panic("gemmNt: output shape mismatch");

    const simd::Kernels &k = simd::kernels(par.simd);
    constexpr std::size_t row_grain = 8;
    parallel::parallelFor(
        0, a.rows(), row_grain,
        [&](std::size_t i0, std::size_t i1) {
            k.gemmNt(a.row(i0).data(), i1 - i0, b.flat().data(),
                     b.rows(), a.cols(), c.row(i0).data(), c.cols());
        },
        par);
}

std::vector<float>
rowNormsSq(const Matrix &m, const parallel::ParallelConfig &par)
{
    const simd::Kernels &k = simd::kernels(par.simd);
    std::vector<float> norms(m.rows());
    constexpr std::size_t row_grain = 64;
    parallel::parallelFor(
        0, m.rows(), row_grain,
        [&](std::size_t i0, std::size_t i1) {
            for (std::size_t i = i0; i < i1; ++i) {
                auto r = m.row(i);
                norms[i] = k.normSq(r.data(), r.size());
            }
        },
        par);
    return norms;
}

// "better" = smaller value, ties to the lower index. Used as the
// heap comparator it keeps the *worst* retained candidate at the
// front, so each survivor test is a single comparison.
bool
TopKMin::better(const Entry &x, const Entry &y)
{
    if (x.value != y.value)
        return x.value < y.value;
    return x.index < y.index;
}

void
TopKMin::consider(std::span<const float> values,
                  std::uint32_t firstIndex)
{
    for (std::size_t j = 0; j < values.size(); ++j) {
        const Entry cand{values[j],
                         firstIndex + static_cast<std::uint32_t>(j)};
        if (heap.size() < limit) {
            heap.push_back(cand);
            std::push_heap(heap.begin(), heap.end(), better);
        } else if (limit > 0 && better(cand, heap.front())) {
            std::pop_heap(heap.begin(), heap.end(), better);
            heap.back() = cand;
            std::push_heap(heap.begin(), heap.end(), better);
        }
    }
}

std::vector<std::uint32_t>
TopKMin::finish()
{
    std::sort_heap(heap.begin(), heap.end(), better);
    std::vector<std::uint32_t> out;
    out.reserve(heap.size());
    for (const Entry &e : heap)
        out.push_back(e.index);
    heap.clear();
    return out;
}

std::vector<std::uint32_t>
topKMin(std::span<const float> values, std::size_t k)
{
    TopKMin sel(std::min(k, values.size()));
    sel.consider(values, 0);
    return sel.finish();
}

} // namespace reach::cbir
