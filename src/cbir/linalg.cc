#include "linalg.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"

namespace reach::cbir
{

float
dot(std::span<const float> a, std::span<const float> b)
{
    if (a.size() != b.size())
        sim::panic("dot: length mismatch");
    float acc = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += a[i] * b[i];
    return acc;
}

float
l2sq(std::span<const float> a, std::span<const float> b)
{
    if (a.size() != b.size())
        sim::panic("l2sq: length mismatch");
    float acc = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        float d = a[i] - b[i];
        acc += d * d;
    }
    return acc;
}

float
normSq(std::span<const float> a)
{
    float acc = 0;
    for (float v : a)
        acc += v * v;
    return acc;
}

void
gemmNt(const Matrix &a, const Matrix &b, Matrix &c)
{
    if (a.cols() != b.cols())
        sim::panic("gemmNt: inner dimension mismatch");
    if (c.rows() != a.rows() || c.cols() != b.rows())
        sim::panic("gemmNt: output shape mismatch");

    constexpr std::size_t blk = 64;
    std::fill(c.flat().begin(), c.flat().end(), 0.0f);

    for (std::size_t i0 = 0; i0 < a.rows(); i0 += blk) {
        std::size_t i1 = std::min(i0 + blk, a.rows());
        for (std::size_t j0 = 0; j0 < b.rows(); j0 += blk) {
            std::size_t j1 = std::min(j0 + blk, b.rows());
            for (std::size_t i = i0; i < i1; ++i) {
                auto ra = a.row(i);
                for (std::size_t j = j0; j < j1; ++j)
                    c.at(i, j) = dot(ra, b.row(j));
            }
        }
    }
}

std::vector<std::uint32_t>
topKMin(std::span<const float> values, std::size_t k)
{
    k = std::min(k, values.size());
    std::vector<std::uint32_t> idx(values.size());
    for (std::size_t i = 0; i < idx.size(); ++i)
        idx[i] = static_cast<std::uint32_t>(i);

    auto cmp = [&](std::uint32_t x, std::uint32_t y) {
        if (values[x] != values[y])
            return values[x] < values[y];
        return x < y;
    };
    std::partial_sort(idx.begin(),
                      idx.begin() + static_cast<std::ptrdiff_t>(k),
                      idx.end(), cmp);
    idx.resize(k);
    return idx;
}

} // namespace reach::cbir
