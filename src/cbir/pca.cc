#include "pca.hh"

#include <cmath>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace reach::cbir
{

Pca::Pca(const Matrix &samples, std::size_t components,
         std::size_t power_iterations, std::uint64_t seed)
{
    std::size_t n = samples.rows();
    std::size_t d = samples.cols();
    if (components > d)
        sim::fatal("Pca: more components than input dimensions");
    if (n < 2)
        sim::fatal("Pca: need at least two samples");

    // Mean-center.
    mu.assign(d, 0.0f);
    for (std::size_t i = 0; i < n; ++i) {
        auto row = samples.row(i);
        for (std::size_t j = 0; j < d; ++j)
            mu[j] += row[j];
    }
    for (auto &m : mu)
        m /= static_cast<float>(n);

    // Covariance (d x d, double precision accumulate).
    std::vector<double> cov(d * d, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        auto row = samples.row(i);
        for (std::size_t a = 0; a < d; ++a) {
            double va = row[a] - mu[a];
            for (std::size_t b = a; b < d; ++b)
                cov[a * d + b] += va * (row[b] - mu[b]);
        }
    }
    for (std::size_t a = 0; a < d; ++a) {
        for (std::size_t b = a; b < d; ++b) {
            double v = cov[a * d + b] / static_cast<double>(n - 1);
            cov[a * d + b] = v;
            cov[b * d + a] = v;
        }
    }

    // Power iteration with deflation.
    sim::Rng rng(seed);
    basis = Matrix(components, d);
    eigenvalues.assign(components, 0.0);
    std::vector<double> v(d), w(d);

    for (std::size_t c = 0; c < components; ++c) {
        for (auto &x : v)
            x = rng.nextGaussian();

        double lambda = 0;
        for (std::size_t it = 0; it < power_iterations; ++it) {
            // w = cov * v
            for (std::size_t a = 0; a < d; ++a) {
                double acc = 0;
                for (std::size_t b = 0; b < d; ++b)
                    acc += cov[a * d + b] * v[b];
                w[a] = acc;
            }
            double norm = 0;
            for (double x : w)
                norm += x * x;
            norm = std::sqrt(norm);
            if (norm < 1e-30)
                break; // degenerate direction
            for (std::size_t a = 0; a < d; ++a)
                v[a] = w[a] / norm;
            lambda = norm;
        }
        eigenvalues[c] = lambda;

        for (std::size_t a = 0; a < d; ++a)
            basis.at(c, a) = static_cast<float>(v[a]);

        // Deflate: cov -= lambda * v v^T.
        for (std::size_t a = 0; a < d; ++a) {
            for (std::size_t b = 0; b < d; ++b)
                cov[a * d + b] -= lambda * v[a] * v[b];
        }
    }
}

Matrix
Pca::transform(const Matrix &batch) const
{
    if (batch.cols() != inputDim())
        sim::fatal("Pca::transform: dimensionality mismatch");

    // Center each row once, then every projected coordinate is one
    // SIMD dot against a basis row instead of a fused
    // subtract-multiply per component.
    Matrix out(batch.rows(), components());
    std::vector<float> centered(inputDim());
    for (std::size_t i = 0; i < batch.rows(); ++i) {
        auto row = batch.row(i);
        for (std::size_t j = 0; j < inputDim(); ++j)
            centered[j] = row[j] - mu[j];
        for (std::size_t c = 0; c < components(); ++c)
            out.at(i, c) = dot(centered, basis.row(c));
    }
    return out;
}

} // namespace reach::cbir
