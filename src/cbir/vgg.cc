#include "vgg.hh"

namespace reach::cbir
{

double
VggLayer::macs() const
{
    switch (kind) {
      case LayerKind::Conv:
        return static_cast<double>(outChannels) * outH * outW *
               inChannels * kernel * kernel;
      case LayerKind::Pool:
        return 0; // comparisons only; negligible next to convs
      case LayerKind::FullyConnected:
        return static_cast<double>(inChannels) * inH * inW *
               outChannels;
    }
    return 0;
}

std::uint64_t
VggLayer::weightBytes() const
{
    switch (kind) {
      case LayerKind::Conv:
        return std::uint64_t(4) * outChannels *
               (inChannels * kernel * kernel + 1);
      case LayerKind::Pool:
        return 0;
      case LayerKind::FullyConnected:
        return std::uint64_t(4) * outChannels *
               (std::uint64_t(inChannels) * inH * inW + 1);
    }
    return 0;
}

std::uint64_t
VggLayer::activationBytes() const
{
    return std::uint64_t(4) * outChannels * outH * outW;
}

const std::vector<VggLayer> &
vgg16Layers()
{
    using K = LayerKind;
    static const std::vector<VggLayer> layers = {
        {"conv1_1", K::Conv, 3, 224, 224, 64, 224, 224, 3},
        {"conv1_2", K::Conv, 64, 224, 224, 64, 224, 224, 3},
        {"pool1", K::Pool, 64, 224, 224, 64, 112, 112, 2},
        {"conv2_1", K::Conv, 64, 112, 112, 128, 112, 112, 3},
        {"conv2_2", K::Conv, 128, 112, 112, 128, 112, 112, 3},
        {"pool2", K::Pool, 128, 112, 112, 128, 56, 56, 2},
        {"conv3_1", K::Conv, 128, 56, 56, 256, 56, 56, 3},
        {"conv3_2", K::Conv, 256, 56, 56, 256, 56, 56, 3},
        {"conv3_3", K::Conv, 256, 56, 56, 256, 56, 56, 3},
        {"pool3", K::Pool, 256, 56, 56, 256, 28, 28, 2},
        {"conv4_1", K::Conv, 256, 28, 28, 512, 28, 28, 3},
        {"conv4_2", K::Conv, 512, 28, 28, 512, 28, 28, 3},
        {"conv4_3", K::Conv, 512, 28, 28, 512, 28, 28, 3},
        {"pool4", K::Pool, 512, 28, 28, 512, 14, 14, 2},
        {"conv5_1", K::Conv, 512, 14, 14, 512, 14, 14, 3},
        {"conv5_2", K::Conv, 512, 14, 14, 512, 14, 14, 3},
        {"conv5_3", K::Conv, 512, 14, 14, 512, 14, 14, 3},
        {"pool5", K::Pool, 512, 14, 14, 512, 7, 7, 2},
        {"fc6", K::FullyConnected, 512, 7, 7, 4096, 1, 1, 0},
        {"fc7", K::FullyConnected, 4096, 1, 1, 4096, 1, 1, 0},
        {"fc8", K::FullyConnected, 4096, 1, 1, 1000, 1, 1, 0},
    };
    return layers;
}

double
vgg16TotalMacs()
{
    double total = 0;
    for (const auto &l : vgg16Layers())
        total += l.macs();
    return total;
}

std::uint64_t
vgg16WeightBytes()
{
    std::uint64_t total = 0;
    for (const auto &l : vgg16Layers())
        total += l.weightBytes();
    return total;
}

std::uint64_t
vgg16CompressedWeightBytes()
{
    // Deep compression achieves ~49x on VGG16 (Han et al.); the paper
    // quotes 11.3 MB.
    return std::uint64_t(11'300'000);
}

} // namespace reach::cbir
