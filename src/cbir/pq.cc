#include "pq.hh"

#include <algorithm>

#include "cbir/kmeans.hh"
#include "sim/logging.hh"

namespace reach::cbir
{

void
validatePqConfig(const PqConfig &cfg, std::size_t dim)
{
    if (cfg.m == 0)
        sim::fatal("PqConfig: m must be >= 1");
    if (dim == 0 || cfg.m > dim)
        sim::fatal("PqConfig: m = ", cfg.m, " exceeds dim = ", dim);
    if (dim % cfg.m != 0)
        sim::fatal("PqConfig: m = ", cfg.m,
                   " does not divide dim = ", dim);
    if (cfg.trainIterations == 0)
        sim::fatal("PqConfig: trainIterations must be >= 1");
    if (cfg.bits != 4 && cfg.bits != 8)
        sim::fatal("PqConfig: bits must be 4 or 8, got ", cfg.bits);
    if (cfg.bits == 4 && cfg.m > 256) {
        // 256 subspaces of worst-case 255 saturate the shuffle
        // kernel's u16 accumulators; wider splits make no sense at
        // the paper's dimensionalities anyway.
        sim::fatal("PqConfig: 4-bit mode caps m at 256, got ", cfg.m);
    }
}

PqCodebook
PqCodebook::train(const Matrix &vectors, const PqConfig &cfg,
                  const parallel::ParallelConfig &par)
{
    validatePqConfig(cfg, vectors.cols());
    if (vectors.rows() == 0)
        sim::fatal("PqCodebook: cannot train on an empty dataset");

    PqCodebook cb;
    cb.m = cfg.m;
    cb.dsub = vectors.cols() / cfg.m;
    cb.bits = cfg.bits;
    cb.ksub = std::min<std::size_t>(cfg.bits == 4 ? 16 : 256,
                                    vectors.rows());
    cb.cents.resize(cb.m * cb.ksub * cb.dsub);

    Matrix sub(vectors.rows(), cb.dsub);
    for (std::size_t s = 0; s < cb.m; ++s) {
        for (std::size_t r = 0; r < vectors.rows(); ++r) {
            std::span<const float> row = vectors.row(r);
            std::copy_n(row.data() + s * cb.dsub, cb.dsub,
                        sub.row(r).data());
        }
        KMeansConfig kc;
        kc.clusters = cb.ksub;
        kc.maxIterations = cfg.trainIterations;
        kc.seed = cfg.seed + s;
        kc.parallel = par;
        KMeansResult km = kMeans(sub, kc);
        std::copy_n(km.centroids.flat().data(), cb.ksub * cb.dsub,
                    cb.cents.data() + s * cb.ksub * cb.dsub);
    }
    cb.centsT.resize(cb.cents.size());
    for (std::size_t s = 0; s < cb.m; ++s) {
        const float *block = cb.cents.data() + s * cb.ksub * cb.dsub;
        float *blockT = cb.centsT.data() + s * cb.ksub * cb.dsub;
        for (std::size_t j = 0; j < cb.ksub; ++j)
            for (std::size_t t = 0; t < cb.dsub; ++t)
                blockT[t * cb.ksub + j] = block[j * cb.dsub + t];
    }
    return cb;
}

std::span<const float>
PqCodebook::centroid(std::size_t s, std::size_t j) const
{
    return {cents.data() + (s * ksub + j) * dsub, dsub};
}

void
PqCodebook::subspaceL2(std::size_t s, const float *v,
                       float *scratch) const
{
    const float *blockT = centsT.data() + s * ksub * dsub;
    std::fill(scratch, scratch + ksub, 0.0f);
    for (std::size_t t = 0; t < dsub; ++t) {
        const float vt = v[s * dsub + t];
        const float *ct = blockT + t * ksub;
        for (std::size_t j = 0; j < ksub; ++j) {
            float diff = vt - ct[j];
            scratch[j] += diff * diff;
        }
    }
}

void
PqCodebook::encodeWith(std::span<const float> v, std::uint8_t *code,
                       float *scratch) const
{
    for (std::size_t s = 0; s < m; ++s) {
        subspaceL2(s, v.data(), scratch);
        std::size_t best = 0;
        for (std::size_t j = 1; j < ksub; ++j) {
            if (scratch[j] < scratch[best])
                best = j;
        }
        if (bits == 4) {
            if (s % 2 == 0)
                code[s / 2] = static_cast<std::uint8_t>(best);
            else
                code[s / 2] |= static_cast<std::uint8_t>(best << 4);
        } else {
            code[s] = static_cast<std::uint8_t>(best);
        }
    }
}

void
PqCodebook::encode(std::span<const float> v, std::uint8_t *code) const
{
    if (v.size() != dim())
        sim::panic("PqCodebook::encode: vector has ", v.size(),
                   " dims, codebook expects ", dim());
    std::vector<float> scratch(ksub);
    encodeWith(v, code, scratch.data());
}

std::vector<std::uint8_t>
PqCodebook::encodeAll(const Matrix &vectors,
                      const parallel::ParallelConfig &par) const
{
    if (vectors.cols() != dim())
        sim::panic("PqCodebook::encodeAll: vectors have ",
                   vectors.cols(), " dims, codebook expects ", dim());
    const std::size_t cb = codeBytes();
    std::vector<std::uint8_t> codes(vectors.rows() * cb);
    parallel::parallelFor(
        0, vectors.rows(), 256,
        [&](std::size_t b, std::size_t e) {
            std::vector<float> scratch(ksub);
            for (std::size_t r = b; r < e; ++r) {
                encodeWith(vectors.row(r), codes.data() + r * cb,
                           scratch.data());
            }
        },
        par);
    return codes;
}

void
PqCodebook::decode(const std::uint8_t *code, std::span<float> out) const
{
    if (out.size() != dim())
        sim::panic("PqCodebook::decode: output has ", out.size(),
                   " dims, codebook expects ", dim());
    for (std::size_t s = 0; s < m; ++s) {
        const std::size_t j =
            bits == 4 ? (s % 2 == 0 ? code[s / 2] & 0x0F
                                    : code[s / 2] >> 4)
                      : code[s];
        std::span<const float> c = centroid(s, j);
        std::copy_n(c.data(), dsub, out.data() + s * dsub);
    }
}

void
PqCodebook::adcTable(std::span<const float> query, float *lut) const
{
    if (query.size() != dim())
        sim::panic("PqCodebook::adcTable: query has ", query.size(),
                   " dims, codebook expects ", dim());
    // Backend-independent on purpose: one fixed loop, vectorized by
    // the compiler across the ksub table entries (see subspaceL2).
    const std::size_t stride = lutStride();
    for (std::size_t s = 0; s < m; ++s) {
        float *row = lut + s * stride;
        subspaceL2(s, query.data(), row);
        std::fill(row + ksub, row + stride, 0.0f);
    }
}

PqCodebook::AdcQuantParams
PqCodebook::adcTable4(std::span<const float> query,
                      std::uint8_t *lut4) const
{
    if (bits != 4)
        sim::panic("PqCodebook::adcTable4: codebook is ", bits,
                   "-bit, shuffle tables need 4");
    if (query.size() != dim())
        sim::panic("PqCodebook::adcTable4: query has ", query.size(),
                   " dims, codebook expects ", dim());

    // Float rows first (same arithmetic as adcTable), then one
    // affine map to u8: per-row minimum folds into the bias so the
    // full 0..255 range covers only the spread that matters, and a
    // single shared scale keeps the kernel's sum dequantizable with
    // one fma.
    std::vector<float> rows(m * simd::kAdc4LutStride);
    std::vector<float> lo(m);
    float range = 0;
    for (std::size_t s = 0; s < m; ++s) {
        float *row = rows.data() + s * simd::kAdc4LutStride;
        subspaceL2(s, query.data(), row);
        float mn = row[0], mx = row[0];
        for (std::size_t j = 1; j < ksub; ++j) {
            mn = std::min(mn, row[j]);
            mx = std::max(mx, row[j]);
        }
        lo[s] = mn;
        range = std::max(range, mx - mn);
    }

    AdcQuantParams qp;
    qp.scale = range > 0 ? range / 255.0f : 0.0f;
    const float inv = range > 0 ? 255.0f / range : 0.0f;
    for (std::size_t s = 0; s < m; ++s) {
        qp.bias += lo[s];
        const float *row = rows.data() + s * simd::kAdc4LutStride;
        std::uint8_t *qrow = lut4 + s * simd::kAdc4LutStride;
        for (std::size_t j = 0; j < ksub; ++j) {
            // Round half up; the cast floors the non-negative value.
            float q = (row[j] - lo[s]) * inv + 0.5f;
            qrow[j] = static_cast<std::uint8_t>(std::min(q, 255.0f));
        }
        // Saturate the untrained tail: codes never reference it, but
        // a saturated entry can at worst push a phantom candidate
        // away, never pull it into a short-list.
        std::fill(qrow + ksub, qrow + simd::kAdc4LutStride,
                  std::uint8_t{255});
    }
    return qp;
}

} // namespace reach::cbir
