#include "thread_pool.hh"

#include <algorithm>

namespace reach::parallel
{

namespace
{

/**
 * Depth of parallel regions on this thread: >0 inside a worker chunk
 * or a participating caller, so nested parallelism degrades to the
 * serial path instead of re-entering the pool.
 */
thread_local int parallel_depth = 0;

} // namespace

ThreadPool::ThreadPool(unsigned workers_)
{
    std::lock_guard<std::mutex> lk(mu);
    ensureWorkers(workers_);
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu);
        stopping = true;
    }
    wakeCv.notify_all();
    for (auto &t : pool)
        t.join();
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool instance(0);
    return instance;
}

bool
ThreadPool::inParallelRegion()
{
    return parallel_depth > 0;
}

unsigned
ThreadPool::workers() const
{
    std::lock_guard<std::mutex> lk(mu);
    return static_cast<unsigned>(pool.size());
}

void
ThreadPool::ensureWorkers(unsigned wanted)
{
    constexpr unsigned max_workers = 256;
    wanted = std::min(wanted, max_workers);
    while (pool.size() < wanted)
        pool.emplace_back([this] { workerLoop(); });
}

void
ThreadPool::runChunks(const std::function<void(std::size_t)> &task)
{
    ++parallel_depth;
    for (;;) {
        std::size_t i = nextChunk.fetch_add(1, std::memory_order_relaxed);
        if (i >= chunkCount)
            break;
        try {
            task(i);
        } catch (...) {
            std::lock_guard<std::mutex> lk(mu);
            if (!firstError)
                firstError = std::current_exception();
            // Abandon the chunks nobody has claimed yet.
            nextChunk.store(chunkCount, std::memory_order_relaxed);
        }
    }
    --parallel_depth;
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lk(mu);
    std::uint64_t seen = 0;
    for (;;) {
        wakeCv.wait(lk, [&] {
            return stopping || (job && tickets > 0 && jobId != seen);
        });
        if (stopping)
            return;
        seen = jobId;
        --tickets;
        ++active;
        const auto *task = job;
        lk.unlock();
        runChunks(*task);
        lk.lock();
        if (--active == 0)
            doneCv.notify_all();
    }
}

void
ThreadPool::run(std::size_t numChunks, unsigned maxThreads,
                const std::function<void(std::size_t)> &task)
{
    if (numChunks == 0)
        return;
    if (maxThreads <= 1 || numChunks == 1 || parallel_depth > 0) {
        // Serial (and nested-call) path: exceptions propagate as-is.
        for (std::size_t i = 0; i < numChunks; ++i)
            task(i);
        return;
    }

    std::lock_guard<std::mutex> runLock(runMu);

    unsigned helpers = static_cast<unsigned>(std::min<std::size_t>(
                           maxThreads, numChunks)) -
                       1;
    {
        std::lock_guard<std::mutex> lk(mu);
        ensureWorkers(helpers);
        job = &task;
        ++jobId;
        chunkCount = numChunks;
        nextChunk.store(0, std::memory_order_relaxed);
        tickets = helpers;
        active = 0;
        firstError = nullptr;
    }
    wakeCv.notify_all();

    runChunks(task); // the caller participates too

    std::exception_ptr err;
    {
        std::unique_lock<std::mutex> lk(mu);
        // All chunks are claimed once the caller's loop exits; revoke
        // unused tickets so late-waking workers cannot touch a task
        // object that is about to go out of scope.
        tickets = 0;
        job = nullptr;
        doneCv.wait(lk, [&] { return active == 0; });
        err = firstError;
        firstError = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

} // namespace reach::parallel
