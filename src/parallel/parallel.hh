/**
 * @file
 * Deterministic data-parallel primitives for the functional CBIR
 * kernels: parallelFor over a chunked index range and parallelReduce
 * with a chunk-ordered fold.
 *
 * Determinism contract: the chunk decomposition is a pure function of
 * (range, grain) — never of the thread count or of scheduling — so a
 * kernel whose chunks write disjoint state, or whose partials are
 * folded in chunk order, produces bitwise-identical results at 1 and
 * N threads.
 */

#ifndef REACH_PARALLEL_PARALLEL_HH
#define REACH_PARALLEL_PARALLEL_HH

#include <algorithm>
#include <cstddef>
#include <thread>
#include <utility>
#include <vector>

#include "parallel/thread_pool.hh"
#include "simd/simd.hh"

namespace reach::parallel
{

/**
 * How many threads a parallel kernel may use, and which SIMD backend
 * its inner loops run on.
 */
struct ParallelConfig
{
    /**
     * 0 = one thread per hardware core; 1 reproduces the serial
     * path exactly (results are identical either way).
     */
    unsigned threads = 0;

    /**
     * SIMD backend for the kernel's inner loops. autoDetect follows
     * REACH_SIMD and then CPU detection; pinning scalar/avx2 makes a
     * run reproducible across differently-equipped hosts. For a
     * fixed backend, results are bitwise identical at any thread
     * count; across backends they agree only to rounding tolerance.
     */
    simd::Choice simd = simd::Choice::autoDetect;

    unsigned
    resolved() const
    {
        if (threads != 0)
            return threads;
        unsigned hc = std::thread::hardware_concurrency();
        return hc != 0 ? hc : 1;
    }

    static ParallelConfig
    serial()
    {
        return {1};
    }
};

namespace detail
{

inline std::size_t
chunkCount(std::size_t n, std::size_t grain)
{
    return (n + grain - 1) / grain;
}

} // namespace detail

/**
 * Invoke fn(chunkBegin, chunkEnd) over grain-sized sub-ranges of
 * [begin, end). Chunks may run concurrently and in any order, so fn
 * must only write state that is disjoint between chunks. The serial
 * path (1 thread) visits the same chunks in index order.
 */
template <typename Fn>
void
parallelFor(std::size_t begin, std::size_t end, std::size_t grain,
            Fn &&fn, const ParallelConfig &cfg = {})
{
    if (begin >= end)
        return;
    if (grain == 0)
        grain = 1;
    std::size_t chunks = detail::chunkCount(end - begin, grain);
    auto run_chunk = [&](std::size_t c) {
        std::size_t b = begin + c * grain;
        std::size_t e = std::min(b + grain, end);
        fn(b, e);
    };
    unsigned threads = cfg.resolved();
    if (threads <= 1 || chunks <= 1) {
        for (std::size_t c = 0; c < chunks; ++c)
            run_chunk(c);
        return;
    }
    ThreadPool::global().run(chunks, threads, run_chunk);
}

/**
 * Map each grain-sized chunk of [begin, end) to a partial value with
 * map(chunkBegin, chunkEnd) and fold the partials *in chunk order*
 * with combine(acc, partial). The fixed decomposition plus the
 * ordered fold make floating-point reductions bitwise identical at
 * any thread count. T must be default-constructible and movable.
 */
template <typename T, typename MapFn, typename CombineFn>
T
parallelReduce(std::size_t begin, std::size_t end, std::size_t grain,
               T init, MapFn &&map, CombineFn &&combine,
               const ParallelConfig &cfg = {})
{
    if (begin >= end)
        return init;
    if (grain == 0)
        grain = 1;
    std::size_t chunks = detail::chunkCount(end - begin, grain);
    std::vector<T> partials(chunks);
    parallelFor(
        begin, end, grain,
        [&](std::size_t b, std::size_t e) {
            partials[(b - begin) / grain] = map(b, e);
        },
        cfg);
    T acc = std::move(init);
    for (auto &p : partials)
        acc = combine(std::move(acc), std::move(p));
    return acc;
}

} // namespace reach::parallel

#endif // REACH_PARALLEL_PARALLEL_HH
