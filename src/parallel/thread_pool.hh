/**
 * @file
 * A persistent pool of worker threads executing chunk-indexed jobs.
 *
 * The pool is deliberately work-stealing-free: the caller fixes the
 * chunk decomposition up front and workers merely race to claim the
 * next chunk index from an atomic cursor. Because *which thread* runs
 * a chunk never influences *what the chunk computes* (chunks write
 * disjoint state, reductions are folded in chunk order by the caller),
 * every kernel built on top is bitwise deterministic at any thread
 * count.
 */

#ifndef REACH_PARALLEL_THREAD_POOL_HH
#define REACH_PARALLEL_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace reach::parallel
{

class ThreadPool
{
  public:
    /** Pre-spawn @p workers threads; the pool grows on demand. */
    explicit ThreadPool(unsigned workers = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Process-wide pool shared by all parallel kernels. */
    static ThreadPool &global();

    /**
     * Run task(chunk) for every chunk in [0, numChunks), using up to
     * @p maxThreads threads including the calling thread. Blocks
     * until every chunk has completed. Nested calls (task itself
     * invoking run) execute inline on the calling thread, so kernels
     * compose without oversubscription or deadlock. The first
     * exception thrown by any chunk abandons the remaining chunks and
     * is rethrown here once all participants have drained.
     */
    void run(std::size_t numChunks, unsigned maxThreads,
             const std::function<void(std::size_t)> &task);

    /** Worker threads currently alive (excludes callers). */
    unsigned workers() const;

    /** True while the calling thread is executing inside a run(). */
    static bool inParallelRegion();

  private:
    void workerLoop();
    void runChunks(const std::function<void(std::size_t)> &task);
    /** Grow the pool to @p wanted workers; requires mu held. */
    void ensureWorkers(unsigned wanted);

    mutable std::mutex mu;
    std::condition_variable wakeCv; ///< workers wait here for jobs
    std::condition_variable doneCv; ///< run() waits for participants
    std::vector<std::thread> pool;

    // State of the in-flight job; guarded by mu except the cursor.
    const std::function<void(std::size_t)> *job = nullptr;
    std::uint64_t jobId = 0;
    std::size_t chunkCount = 0;
    std::atomic<std::size_t> nextChunk{0};
    unsigned tickets = 0; ///< workers still allowed to join the job
    unsigned active = 0;  ///< workers currently running chunks
    std::exception_ptr firstError;
    bool stopping = false;

    std::mutex runMu; ///< serializes concurrent top-level run() calls
};

} // namespace reach::parallel

#endif // REACH_PARALLEL_THREAD_POOL_HH
