#include "engine.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace reach::analytics
{

bool
Predicate::matches(std::int64_t v) const
{
    switch (op) {
      case CmpOp::Lt:
        return v < literal;
      case CmpOp::Le:
        return v <= literal;
      case CmpOp::Eq:
        return v == literal;
      case CmpOp::Ge:
        return v >= literal;
      case CmpOp::Gt:
        return v > literal;
      case CmpOp::Ne:
        return v != literal;
    }
    return false;
}

std::vector<std::uint32_t>
scanFilter(const ColumnTable &table,
           const std::vector<Predicate> &preds)
{
    // Resolve columns once.
    std::vector<const Column *> cols;
    cols.reserve(preds.size());
    for (const auto &p : preds)
        cols.push_back(&table.column(p.column));

    std::vector<std::uint32_t> out;
    for (std::size_t row = 0; row < table.numRows(); ++row) {
        bool pass = true;
        for (std::size_t p = 0; p < preds.size() && pass; ++p)
            pass = preds[p].matches(cols[p]->values[row]);
        if (pass)
            out.push_back(static_cast<std::uint32_t>(row));
    }
    return out;
}

AggregateResult
aggregate(const ColumnTable &table,
          const std::vector<std::uint32_t> &selection,
          const AggregateSpec &spec)
{
    const Column &key = table.column(spec.keyColumn);
    const Column *val = spec.fn == AggFn::Count
                            ? nullptr
                            : &table.column(spec.valueColumn);

    AggregateResult out;
    for (std::uint32_t row : selection) {
        std::int64_t k = key.values[row];
        std::int64_t v = val ? val->values[row] : 1;
        auto [it, inserted] = out.emplace(k, v);
        if (inserted) {
            if (spec.fn == AggFn::Count)
                it->second = 1;
            continue;
        }
        switch (spec.fn) {
          case AggFn::Sum:
          case AggFn::Count:
            it->second += v;
            break;
          case AggFn::Min:
            it->second = std::min(it->second, v);
            break;
          case AggFn::Max:
            it->second = std::max(it->second, v);
            break;
        }
    }
    return out;
}

AggregateResult
runQuery(const ColumnTable &table, const std::vector<Predicate> &preds,
         const AggregateSpec &spec)
{
    return aggregate(table, scanFilter(table, preds), spec);
}

AggregateResult
mergePartials(const std::vector<AggregateResult> &partials, AggFn fn)
{
    AggregateResult out;
    for (const auto &partial : partials) {
        for (const auto &[k, v] : partial) {
            auto [it, inserted] = out.emplace(k, v);
            if (inserted)
                continue;
            switch (fn) {
              case AggFn::Sum:
              case AggFn::Count:
                it->second += v;
                break;
              case AggFn::Min:
                it->second = std::min(it->second, v);
                break;
              case AggFn::Max:
                it->second = std::max(it->second, v);
                break;
            }
        }
    }
    return out;
}

} // namespace reach::analytics
