#include "table.hh"

#include "sim/logging.hh"

namespace reach::analytics
{

void
ColumnTable::addColumn(Column column)
{
    if (cols.empty()) {
        rows = column.values.size();
    } else if (column.values.size() != rows) {
        sim::fatal("column '", column.name, "' has ",
                   column.values.size(), " rows, table has ", rows);
    }
    for (const auto &c : cols) {
        if (c.name == column.name)
            sim::fatal("duplicate column '", column.name, "'");
    }
    cols.push_back(std::move(column));
}

std::size_t
ColumnTable::columnIndex(const std::string &name) const
{
    for (std::size_t i = 0; i < cols.size(); ++i) {
        if (cols[i].name == name)
            return i;
    }
    sim::fatal("no column named '", name, "'");
}

ColumnTable
makeSalesTable(const SalesTableConfig &cfg)
{
    sim::Rng rng(cfg.seed);

    Column region{"region", {}};
    Column product{"product", {}};
    Column amount{"amount", {}};
    Column quantity{"quantity", {}};
    region.values.reserve(cfg.numRows);
    product.values.reserve(cfg.numRows);
    amount.values.reserve(cfg.numRows);
    quantity.values.reserve(cfg.numRows);

    for (std::size_t i = 0; i < cfg.numRows; ++i) {
        region.values.push_back(static_cast<std::int64_t>(
            rng.nextUInt(static_cast<std::uint64_t>(
                cfg.numRegions))));
        product.values.push_back(static_cast<std::int64_t>(
            rng.nextUInt(static_cast<std::uint64_t>(
                cfg.numProducts))));
        amount.values.push_back(
            1 + static_cast<std::int64_t>(rng.nextUInt(
                    static_cast<std::uint64_t>(cfg.maxAmount))));
        quantity.values.push_back(
            1 + static_cast<std::int64_t>(rng.nextUInt(100)));
    }

    ColumnTable table;
    table.addColumn(std::move(region));
    table.addColumn(std::move(product));
    table.addColumn(std::move(amount));
    table.addColumn(std::move(quantity));
    return table;
}

} // namespace reach::analytics
