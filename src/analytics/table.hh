/**
 * @file
 * A minimal columnar table for the analytics case study.
 *
 * The paper motivates ReACH with "common communication-bound
 * analytics workloads" that "scan, join, and summarize large volumes
 * of data" (§I). This module provides the functional substrate for
 * that claim: typed columns, synthetic table generation, and the
 * scan/filter/aggregate operators near-data engines offload.
 */

#ifndef REACH_ANALYTICS_TABLE_HH
#define REACH_ANALYTICS_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hh"

namespace reach::analytics
{

/** A single int64 column. */
struct Column
{
    std::string name;
    std::vector<std::int64_t> values;
};

/** A columnar table; all columns share the row count. */
class ColumnTable
{
  public:
    ColumnTable() = default;

    /** Add a column; its size fixes (or must match) the row count. */
    void addColumn(Column column);

    std::size_t numRows() const { return rows; }
    std::size_t numColumns() const { return cols.size(); }

    /** Column index by name; fatal() if absent. */
    std::size_t columnIndex(const std::string &name) const;

    const Column &column(std::size_t idx) const
    {
        return cols.at(idx);
    }
    const Column &column(const std::string &name) const
    {
        return cols.at(columnIndex(name));
    }

    /** Bytes a row occupies on storage (8 B per column). */
    std::uint64_t
    rowBytes() const
    {
        return 8 * static_cast<std::uint64_t>(cols.size());
    }

    std::uint64_t
    totalBytes() const
    {
        return rowBytes() * rows;
    }

  private:
    std::vector<Column> cols;
    std::size_t rows = 0;
};

/** Schema/shape of the synthetic "sales" table. */
struct SalesTableConfig
{
    std::size_t numRows = 100'000;
    /** Distinct region ids (the group-by key). */
    std::int64_t numRegions = 16;
    /** Distinct product ids. */
    std::int64_t numProducts = 1000;
    /** Amounts are uniform in [1, maxAmount]. */
    std::int64_t maxAmount = 10'000;
    std::uint64_t seed = 7;
};

/**
 * Generate the sales table: columns {region, product, amount,
 * quantity}. Deterministic for a given seed.
 */
ColumnTable makeSalesTable(const SalesTableConfig &cfg);

} // namespace reach::analytics

#endif // REACH_ANALYTICS_TABLE_HH
