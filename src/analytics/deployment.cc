#include "deployment.hh"

#include <memory>

#include "sim/logging.hh"

namespace reach::analytics
{

const char *
scanMappingName(ScanMapping m)
{
    switch (m) {
      case ScanMapping::HostOnly:
        return "host-only";
      case ScanMapping::OnChip:
        return "onchip";
      case ScanMapping::NearData:
        return "near-data";
    }
    return "?";
}

AnalyticsDeployment::AnalyticsDeployment(core::ReachSystem &system,
                                         const AnalyticsScale &s,
                                         ScanMapping mapping)
    : sys(system), scale(s), map(mapping)
{
    if (scale.tableBytes == 0)
        sim::fatal("analytics table must be non-empty");
    if (scale.selectivity < 0 || scale.selectivity > 1)
        sim::fatal("selectivity must be in [0,1]");
}

gam::JobDesc
AnalyticsDeployment::makeQueryJob(std::uint32_t index,
                                  std::function<void(sim::Tick)> done)
{
    gam::JobDesc job;
    job.label = std::string(scanMappingName(map)) + "-q" +
                std::to_string(index);
    job.onComplete = std::move(done);

    std::uint64_t filtered = static_cast<std::uint64_t>(
        static_cast<double>(scale.tableBytes) * scale.selectivity);
    std::uint64_t merge_bytes =
        std::uint64_t(scale.groups) * 16; // key + aggregate

    if (map != ScanMapping::NearData) {
        // Centralized: the whole table crosses the host IO
        // interface into one device that filters and aggregates.
        bool cpu = map == ScanMapping::HostOnly;
        gam::TaskDesc scan;
        scan.label = "scan";
        scan.kernelTemplate = cpu ? "KNN-CPU" : "KNN-VU9P";
        scan.level = cpu ? acc::Level::Cpu : acc::Level::OnChip;
        scan.work.ops = static_cast<double>(scale.tableBytes) / 8 *
                        scale.columnsTouched / 4;
        scan.work.bytesIn = scale.tableBytes;
        scan.work.bytesOut = filtered;
        {
            acc::Path p;
            for (std::uint32_t s = 0; s < sys.config().numSsds; ++s)
                p.from(&sys.ssdAt(s), &sys.ssdHostLink(s));
            p.via(sys.hostIoUplink()).via(sys.hostDramLink());
            p.via(sys.cacheLink());
            scan.work.inputOverride = p;
            // Sequential streaming: no random-gather throttle.
        }
        scan.pinnedAcc =
            cpu ? sys.hostCoreGamId() : sys.onChipGamId();
        job.tasks.push_back(std::move(scan));

        gam::TaskDesc agg;
        agg.label = "aggregate";
        agg.kernelTemplate = cpu ? "GeMM-CPU" : "GeMM-VU9P";
        agg.level = cpu ? acc::Level::Cpu : acc::Level::OnChip;
        agg.work.ops = static_cast<double>(filtered) / 8;
        agg.work.bytesIn = filtered;
        agg.work.bytesOut = merge_bytes;
        agg.deps = {0};
        agg.pinnedAcc =
            cpu ? sys.hostCoreGamId() : sys.onChipGamId();
        job.tasks.push_back(std::move(agg));
        return job;
    }

    // Near-data: per-SSD scans, near-memory partial aggregation,
    // on-chip merge.
    std::uint32_t ns = sys.numNs();
    std::uint32_t nm = std::max(sys.numAims(), 1u);
    std::vector<std::size_t> scan_idx;
    for (std::uint32_t i = 0; i < ns; ++i) {
        gam::TaskDesc scan;
        scan.label = "scan-" + std::to_string(i);
        scan.kernelTemplate = "KNN-ZCU9";
        scan.level = acc::Level::NearStor;
        scan.work.ops = static_cast<double>(scale.tableBytes) / ns /
                        8 * scale.columnsTouched / 4;
        scan.work.bytesIn = scale.tableBytes / ns;
        scan.work.bytesOut = filtered / ns;
        scan.pinnedAcc = sys.nsGamIds().at(i);
        scan_idx.push_back(job.tasks.size());
        job.tasks.push_back(std::move(scan));
    }

    std::vector<std::size_t> agg_idx;
    for (std::uint32_t i = 0; i < nm; ++i) {
        gam::TaskDesc agg;
        agg.label = "aggregate-" + std::to_string(i);
        agg.kernelTemplate = "GeMM-ZCU9";
        agg.level = acc::Level::NearMem;
        agg.work.ops = static_cast<double>(filtered) / nm / 8;
        agg.work.bytesIn = filtered / nm;
        agg.work.bytesOut = merge_bytes;
        agg.pinnedAcc = sys.aimGamIds().at(i);
        for (std::size_t s : scan_idx) {
            agg.deps.push_back(s);
            agg.inbound.push_back({s, filtered / ns / nm});
        }
        agg_idx.push_back(job.tasks.size());
        job.tasks.push_back(std::move(agg));
    }

    gam::TaskDesc merge;
    merge.label = "merge";
    merge.kernelTemplate =
        sys.hasOnChip() ? "GeMM-VU9P" : "GeMM-CPU";
    merge.level =
        sys.hasOnChip() ? acc::Level::OnChip : acc::Level::Cpu;
    merge.work.ops = static_cast<double>(scale.groups) * nm;
    merge.work.inputResident = true;
    merge.pinnedAcc = sys.hasOnChip() ? sys.onChipGamId()
                                      : sys.hostCoreGamId();
    for (std::size_t a : agg_idx) {
        merge.deps.push_back(a);
        merge.inbound.push_back({a, merge_bytes});
    }
    job.tasks.push_back(std::move(merge));
    return job;
}

QueryRunResult
AnalyticsDeployment::run(std::uint32_t queries)
{
    if (queries == 0)
        return {};

    auto &sim = sys.simulator();
    sim::Tick t0 = sim.now();

    std::uint32_t done = 0;
    sim::Tick latency_sum = 0;
    sim::Tick last = 0;
    for (std::uint32_t q = 0; q < queries; ++q) {
        sim::Tick submitted = sim.now();
        sys.gam().submitJob(makeQueryJob(
            q, [&, submitted](sim::Tick at) {
                ++done;
                latency_sum += at - submitted;
                last = at;
            }));
    }
    sim.runUntil([&] { return done >= queries; });
    if (done < queries)
        sim::panic("analytics run incomplete: ", done, "/", queries);

    QueryRunResult res;
    res.queries = queries;
    res.makespan = last - t0;
    res.meanLatency = latency_sum / queries;
    return res;
}

} // namespace reach::analytics
