/**
 * @file
 * The analytics operators: predicate scan and grouped aggregation —
 * the functional counterparts of the streaming filter the paper's
 * related work offloads near storage (Netezza, Ibex, Summarizer) and
 * the reduction that follows near memory.
 */

#ifndef REACH_ANALYTICS_ENGINE_HH
#define REACH_ANALYTICS_ENGINE_HH

#include <cstdint>
#include <map>
#include <vector>

#include "analytics/table.hh"

namespace reach::analytics
{

enum class CmpOp
{
    Lt,
    Le,
    Eq,
    Ge,
    Gt,
    Ne,
};

/** column <op> literal. */
struct Predicate
{
    std::string column;
    CmpOp op = CmpOp::Eq;
    std::int64_t literal = 0;

    bool matches(std::int64_t v) const;
};

/** Row indices passing a conjunction of predicates. */
std::vector<std::uint32_t> scanFilter(
    const ColumnTable &table, const std::vector<Predicate> &preds);

enum class AggFn
{
    Sum,
    Min,
    Max,
    Count,
};

struct AggregateSpec
{
    /** Group-by key column. */
    std::string keyColumn;
    /** Column the function applies to (ignored for Count). */
    std::string valueColumn;
    AggFn fn = AggFn::Sum;
};

/** key -> aggregate over the selected rows. */
using AggregateResult = std::map<std::int64_t, std::int64_t>;

AggregateResult aggregate(const ColumnTable &table,
                          const std::vector<std::uint32_t> &selection,
                          const AggregateSpec &spec);

/**
 * Whole query in one call: filter then aggregate (the reference the
 * deployment's distributed execution must reproduce).
 */
AggregateResult runQuery(const ColumnTable &table,
                         const std::vector<Predicate> &preds,
                         const AggregateSpec &spec);

/**
 * Merge partial aggregates from sharded execution; must equal the
 * unsharded result for Sum/Min/Max/Count.
 */
AggregateResult mergePartials(
    const std::vector<AggregateResult> &partials, AggFn fn);

} // namespace reach::analytics

#endif // REACH_ANALYTICS_ENGINE_HH
