/**
 * @file
 * Deployment of the scan -> aggregate -> merge analytics query onto
 * the compute hierarchy: the generality argument of the paper's
 * introduction, built with the same GAM/job machinery as the CBIR
 * case study.
 *
 * Mappings:
 *  - HostOnly:  the whole query in software on the host core, table
 *               streamed over the host IO interface;
 *  - OnChip:    the on-chip FPGA filters and aggregates, but the
 *               table still crosses the IO interface;
 *  - NearData:  each FPGA-SSD module scans its shard in place, only
 *               filtered rows cross to the near-memory aggregators,
 *               and a final merge runs on-chip.
 */

#ifndef REACH_ANALYTICS_DEPLOYMENT_HH
#define REACH_ANALYTICS_DEPLOYMENT_HH

#include <cstdint>

#include "core/reach_system.hh"

namespace reach::analytics
{

/** Timing-scale description of the analytics query. */
struct AnalyticsScale
{
    /** Total columnar table size on the SSD array. */
    std::uint64_t tableBytes = std::uint64_t(64) << 30;
    /** Fraction of rows passing the filter. */
    double selectivity = 0.02;
    /** 8-byte values per row (columns touched by the query). */
    std::uint32_t columnsTouched = 3;
    /** Distinct group-by keys (merge traffic). */
    std::uint32_t groups = 16;
};

enum class ScanMapping
{
    HostOnly,
    OnChip,
    NearData,
};

const char *scanMappingName(ScanMapping m);

struct QueryRunResult
{
    std::uint32_t queries = 0;
    sim::Tick makespan = 0;
    sim::Tick meanLatency = 0;

    double
    queriesPerSec() const
    {
        return makespan == 0
                   ? 0
                   : queries / sim::secondsFromTicks(makespan);
    }

    /** Effective scan rate over the full table. */
    double
    scanBandwidth(std::uint64_t table_bytes) const
    {
        return makespan == 0 ? 0
                             : static_cast<double>(table_bytes) *
                                   queries /
                                   sim::secondsFromTicks(makespan);
    }
};

class AnalyticsDeployment
{
  public:
    AnalyticsDeployment(core::ReachSystem &system,
                        const AnalyticsScale &scale,
                        ScanMapping mapping);

    /** Build the job for one query. */
    gam::JobDesc makeQueryJob(std::uint32_t index,
                              std::function<void(sim::Tick)> done);

    /** Submit and simulate @p queries back-to-back queries. */
    QueryRunResult run(std::uint32_t queries);

    ScanMapping mapping() const { return map; }

  private:
    core::ReachSystem &sys;
    AnalyticsScale scale;
    ScanMapping map;
};

} // namespace reach::analytics

#endif // REACH_ANALYTICS_DEPLOYMENT_HH
