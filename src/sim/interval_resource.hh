/**
 * @file
 * A time-interval allocator for reservation-based resource models.
 *
 * Components that resolve contention by *reserving* future time on a
 * resource (links, flash channels, buses) must not serialize behind
 * reservations made far in the future by unrelated requesters. This
 * allocator keeps the set of busy intervals and places each new
 * reservation into the earliest gap at or after its request time.
 */

#ifndef REACH_SIM_INTERVAL_RESOURCE_HH
#define REACH_SIM_INTERVAL_RESOURCE_HH

#include <algorithm>
#include <map>

#include "types.hh"

namespace reach::sim
{

class IntervalResource
{
  public:
    /**
     * Reserve @p duration ticks starting no earlier than @p at.
     *
     * @param now Current simulated time; intervals entirely in the
     *            past are pruned (nothing can reserve the past).
     * @return start tick of the granted interval.
     */
    Tick
    reserve(Tick duration, Tick at, Tick now)
    {
        if (duration == 0)
            return at;

        while (!busy.empty() && busy.begin()->second <= now)
            busy.erase(busy.begin());

        // Earliest-gap placement.
        Tick start = at;
        for (const auto &[s, e] : busy) {
            if (e <= start)
                continue;
            if (s >= start + duration)
                break;
            start = std::max(start, e);
        }

        // Insert, merging with adjacent intervals.
        Tick merged_start = start;
        Tick merged_end = start + duration;
        auto next = busy.lower_bound(merged_start);
        if (next != busy.begin()) {
            auto prev = std::prev(next);
            if (prev->second == merged_start) {
                merged_start = prev->first;
                busy.erase(prev);
                next = busy.lower_bound(merged_start);
            }
        }
        if (next != busy.end() && next->first == merged_end) {
            merged_end = next->second;
            busy.erase(next);
        }
        busy.emplace(merged_start, merged_end);

        lastEnd = std::max(lastEnd, start + duration);
        return start;
    }

    /** Tick after the last reservation granted so far. */
    Tick freeAt() const { return lastEnd; }

    std::size_t pendingIntervals() const { return busy.size(); }

  private:
    std::map<Tick, Tick> busy;
    Tick lastEnd = 0;
};

} // namespace reach::sim

#endif // REACH_SIM_INTERVAL_RESOURCE_HH
