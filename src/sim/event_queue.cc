#include "event_queue.hh"

#include <algorithm>

#include "logging.hh"

namespace reach::sim
{

namespace
{

/** Split an external event id into its (generation, slot) halves. */
constexpr std::uint32_t
idSlot(std::uint64_t id)
{
    return static_cast<std::uint32_t>(id);
}

constexpr std::uint32_t
idGen(std::uint64_t id)
{
    return static_cast<std::uint32_t>(id >> 32);
}

} // namespace

std::uint64_t
EventQueue::schedule(Tick when, Callback cb, EventPriority prio,
                     std::string name)
{
    if (when < curTick) {
        panic("event '", name.empty() ? "<anon>" : name,
              "' scheduled in the past: when=", when, " now=", curTick);
    }
    if (!cb)
        panic("null callback scheduled at tick ", when);

    std::uint32_t slot;
    if (!freeSlots.empty()) {
        slot = freeSlots.back();
        freeSlots.pop_back();
    } else {
        slot = static_cast<std::uint32_t>(slots.size());
        slots.emplace_back();
    }
    Slot &s = slots[slot];
    s.cb = std::move(cb);
#ifndef NDEBUG
    s.name = std::move(name);
#endif

    // prioSeq packs the same-tick ordering key into one word; see the
    // header for the bit budget. Priorities are small non-negative
    // ints by construction of EventPriority.
    std::uint64_t seq = nextSeq++;
    std::uint64_t prio_seq =
        (static_cast<std::uint64_t>(static_cast<int>(prio)) << 48) |
        seq;
    heap.push_back(HeapEntry{when, prio_seq, slot, s.gen});
    std::push_heap(heap.begin(), heap.end(), Later{});
    ++numPending;
    return (static_cast<std::uint64_t>(s.gen) << 32) | slot;
}

bool
EventQueue::deschedule(std::uint64_t event_id)
{
    // Only live events can be cancelled; executed, cancelled or
    // unknown ids fail the generation check and are a no-op.
    std::uint32_t slot = idSlot(event_id);
    if (slot >= slots.size() || slots[slot].gen != idGen(event_id))
        return false;
    releaseSlot(slot);
    --numPending;
    // The heap entry stays behind with a stale generation; it is
    // dropped when it surfaces, or in bulk by compact().
    ++heapStale;
    if (heapStale >= compactMinStale && heapStale * 2 > heap.size())
        compact();
    return true;
}

void
EventQueue::releaseSlot(std::uint32_t slot)
{
    Slot &s = slots[slot];
    s.cb = nullptr;
#ifndef NDEBUG
    s.name.clear();
#endif
    ++s.gen;
    freeSlots.push_back(slot);
}

void
EventQueue::compact()
{
    auto stale = [this](const HeapEntry &e) {
        return slots[e.slot].gen != e.gen;
    };
    heap.erase(std::remove_if(heap.begin(), heap.end(), stale),
               heap.end());
    std::make_heap(heap.begin(), heap.end(), Later{});
    heapStale = 0;
}

void
EventQueue::dropStaleTop()
{
    while (!heap.empty()) {
        const HeapEntry &top = heap.front();
        if (slots[top.slot].gen == top.gen)
            return;
        std::pop_heap(heap.begin(), heap.end(), Later{});
        heap.pop_back();
        --heapStale;
    }
}

Tick
EventQueue::nextEventTick() const
{
    auto *self = const_cast<EventQueue *>(this);
    self->dropStaleTop();
    return heap.empty() ? maxTick : heap.front().when;
}

void
EventQueue::runOne()
{
    dropStaleTop();
    if (heap.empty())
        panic("runOne() on an empty event queue");

    HeapEntry top = heap.front();
    std::pop_heap(heap.begin(), heap.end(), Later{});
    heap.pop_back();

    // Detach the callback and retire the slot *before* invoking, so
    // the callback may freely schedule (and even reuse the slot).
    Callback cb = std::move(slots[top.slot].cb);
    releaseSlot(top.slot);
    --numPending;

    if (top.when < curTick)
        panic("event queue time went backwards");
    curTick = top.when;
    ++executed;
    cb();
}

} // namespace reach::sim
