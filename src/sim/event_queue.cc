#include "event_queue.hh"

#include "logging.hh"

namespace reach::sim
{

std::uint64_t
EventQueue::schedule(Tick when, Callback cb, EventPriority prio,
                     std::string name)
{
    if (when < curTick) {
        panic("event '", name.empty() ? "<anon>" : name,
              "' scheduled in the past: when=", when, " now=", curTick);
    }
    if (!cb)
        panic("null callback scheduled at tick ", when);

    std::uint64_t id = nextSeq++;
    queue.push(ScheduledEvent{when, static_cast<int>(prio), id,
                              std::move(cb), std::move(name)});
    live.insert(id);
    ++numPending;
    return id;
}

bool
EventQueue::deschedule(std::uint64_t event_id)
{
    // Only live events can be cancelled; executed or unknown ids are
    // a no-op.
    if (live.erase(event_id) == 0)
        return false;
    cancelled.insert(event_id);
    --numPending;
    return true;
}

void
EventQueue::skipCancelled()
{
    while (!queue.empty()) {
        auto it = cancelled.find(queue.top().seq);
        if (it == cancelled.end())
            return;
        cancelled.erase(it);
        queue.pop();
    }
}

Tick
EventQueue::nextEventTick() const
{
    auto *self = const_cast<EventQueue *>(this);
    self->skipCancelled();
    return queue.empty() ? maxTick : queue.top().when;
}

void
EventQueue::runOne()
{
    skipCancelled();
    if (queue.empty())
        panic("runOne() on an empty event queue");

    ScheduledEvent ev = queue.top();
    queue.pop();
    live.erase(ev.seq);
    --numPending;

    if (ev.when < curTick)
        panic("event queue time went backwards");
    curTick = ev.when;
    ++executed;
    ev.cb();
}

} // namespace reach::sim
