/**
 * @file
 * Named debug-trace flags in the gem5 DPRINTF tradition.
 *
 * Components emit trace lines under a flag ("GAM", "MemCtrl",
 * "Acc"); flags are enabled programmatically via setDebugFlags() or
 * with the REACH_DEBUG environment variable (comma-separated list,
 * or "all"). Disabled flags cost one hash lookup per call and no
 * formatting.
 */

#ifndef REACH_SIM_DEBUG_HH
#define REACH_SIM_DEBUG_HH

#include <string>

#include "logging.hh"
#include "types.hh"

namespace reach::sim
{

/** Replace the enabled flag set ("GAM,MemCtrl", "all", or ""). */
void setDebugFlags(const std::string &csv);

/** True if @p flag tracing is on (REACH_DEBUG read on first call). */
bool debugFlagEnabled(const std::string &flag);

namespace detail
{
void emitTrace(Tick when, const std::string &flag,
               const std::string &msg);
}

/**
 * Emit one trace line "<tick>: <flag>: <message>" when @p flag is
 * enabled.
 */
template <typename... Args>
void
dtrace(Tick when, const char *flag, Args &&...args)
{
    if (!debugFlagEnabled(flag))
        return;
    detail::emitTrace(when, flag,
                      detail::format(std::forward<Args>(args)...));
}

} // namespace reach::sim

#endif // REACH_SIM_DEBUG_HH
