/**
 * @file
 * The Simulator ties together the event queue, stat registry and the
 * component tree, and drives the main simulation loop.
 */

#ifndef REACH_SIM_SIMULATOR_HH
#define REACH_SIM_SIMULATOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "event_queue.hh"
#include "stats.hh"
#include "types.hh"

namespace reach::sim
{

class Simulator;

/**
 * Base class for every simulated hardware component. Components form
 * a tree via parent pointers used only to build dotted stat names.
 */
class SimObject
{
  public:
    /**
     * @param sim   Owning simulator (outlives all components).
     * @param name  Dotted hierarchical instance name.
     */
    SimObject(Simulator &sim, std::string name);
    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return _name; }
    Simulator &simulator() const { return *_sim; }

    /** Current simulated time. */
    Tick now() const;

    /** Schedule a callback at absolute tick @p when. */
    std::uint64_t schedule(Tick when, EventQueue::Callback cb,
                           EventPriority prio = EventPriority::Default,
                           const std::string &what = {});

    /** Schedule a callback @p delay ticks from now. */
    std::uint64_t scheduleIn(Tick delay, EventQueue::Callback cb,
                             EventPriority prio = EventPriority::Default,
                             const std::string &what = {});

  protected:
    /** Register a stat under "<name>.<stat local name>". */
    void registerStat(Stat &stat);

  private:
    Simulator *_sim;
    std::string _name;
};

/**
 * The simulation context: event queue + stats + termination control.
 */
class Simulator
{
  public:
    Simulator() = default;

    EventQueue &events() { return queue; }
    const EventQueue &events() const { return queue; }
    StatRegistry &stats() { return registry; }

    Tick now() const { return queue.now(); }

    /**
     * Run until the queue drains or @p limit is reached.
     * @return final simulated tick.
     */
    Tick run(Tick limit = maxTick);

    /**
     * Run until @p done returns true (checked after every event),
     * the queue drains, or @p limit is reached.
     */
    Tick runUntil(const std::function<bool()> &done, Tick limit = maxTick);

    /** Total events executed. */
    std::uint64_t eventsExecuted() const { return queue.numExecuted(); }

  private:
    EventQueue queue;
    StatRegistry registry;
};

} // namespace reach::sim

#endif // REACH_SIM_SIMULATOR_HH
