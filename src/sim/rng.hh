/**
 * @file
 * Deterministic pseudo-random number generation for workloads and
 * timing jitter. A fixed algorithm (xoshiro256**) keeps results
 * identical across platforms and standard-library versions, which
 * std::mt19937 distributions do not guarantee.
 */

#ifndef REACH_SIM_RNG_HH
#define REACH_SIM_RNG_HH

#include <cstdint>

namespace reach::sim
{

/**
 * xoshiro256** generator with splitmix64 seeding.
 * Satisfies UniformRandomBitGenerator.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type(0); }

    result_type operator()() { return next(); }

    /** Uniform in [0, bound). @p bound must be non-zero. */
    std::uint64_t nextUInt(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double nextDouble(double lo, double hi);

    /** Standard normal via Box-Muller (deterministic pairing). */
    double nextGaussian();

    /** Derive an independent child stream (for per-shard RNGs). */
    Rng split();

  private:
    std::uint64_t next();

    std::uint64_t s[4];
    bool haveSpare = false;
    double spare = 0;
};

} // namespace reach::sim

#endif // REACH_SIM_RNG_HH
