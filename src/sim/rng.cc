#include "rng.hh"

#include <cmath>

namespace reach::sim
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

std::uint64_t
Rng::nextUInt(std::uint64_t bound)
{
    // Debiased multiply-shift rejection (Lemire).
    std::uint64_t threshold = (~bound + 1) % bound;
    for (;;) {
        std::uint64_t r = next();
        __uint128_t m = static_cast<__uint128_t>(r) * bound;
        if (static_cast<std::uint64_t>(m) >= threshold)
            return static_cast<std::uint64_t>(m >> 64);
    }
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::nextDouble(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

double
Rng::nextGaussian()
{
    if (haveSpare) {
        haveSpare = false;
        return spare;
    }
    double u, v, sq;
    do {
        u = nextDouble(-1.0, 1.0);
        v = nextDouble(-1.0, 1.0);
        sq = u * u + v * v;
    } while (sq >= 1.0 || sq == 0.0);
    double mul = std::sqrt(-2.0 * std::log(sq) / sq);
    spare = v * mul;
    haveSpare = true;
    return u * mul;
}

Rng
Rng::split()
{
    return Rng(next());
}

} // namespace reach::sim
