#include "logging.hh"

#include <atomic>
#include <iostream>

namespace reach::sim
{

namespace
{
std::atomic<bool> quietMode{false};
}

void
setQuiet(bool quiet)
{
    quietMode.store(quiet);
}

void
detail::emit(const char *level, const std::string &msg)
{
    // panic/fatal always print; info/warn respect quiet mode.
    bool noisy = level[0] == 'p' || level[0] == 'f';
    if (!noisy && quietMode.load())
        return;
    std::cerr << "[" << level << "] " << msg << "\n";
}

} // namespace reach::sim
