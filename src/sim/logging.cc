#include "logging.hh"

#include <atomic>
#include <iostream>
#include <mutex>

namespace reach::sim
{

namespace
{

std::atomic<bool> quietMode{false};

/**
 * Serializes writes to the shared stderr sink so lines from
 * concurrent simulators never interleave mid-message. Shared with
 * debug.cc via logSinkMutex().
 */
std::mutex sinkMu;

} // namespace

std::mutex &
detail::logSinkMutex()
{
    return sinkMu;
}

void
setQuiet(bool quiet)
{
    quietMode.store(quiet);
}

void
detail::emit(const char *level, const std::string &msg)
{
    // panic/fatal always print; info/warn respect quiet mode.
    bool noisy = level[0] == 'p' || level[0] == 'f';
    if (!noisy && quietMode.load())
        return;
    std::string line;
    line.reserve(msg.size() + 16);
    line.append("[").append(level).append("] ").append(msg).append(
        "\n");
    std::lock_guard<std::mutex> lock(sinkMu);
    std::cerr << line;
}

} // namespace reach::sim
