#include "debug.hh"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <set>
#include <sstream>
#include <string>

namespace reach::sim
{

namespace
{

/**
 * The enabled-flag set, shared by every simulator in the process.
 * debugFlagEnabled() is on the per-event hot path, so the common
 * "nothing enabled" case is answered by one relaxed atomic load; the
 * set itself is only consulted (under the mutex) when at least one
 * flag is on. setDebugFlags() may race with concurrent readers, so
 * all set accesses are guarded.
 */
struct FlagState
{
    std::mutex mu;
    std::set<std::string> flags;
    bool all = false;
    std::atomic<bool> any{false};
};

void
parseInto(FlagState &s, const std::string &csv)
{
    std::istringstream is(csv);
    std::string item;
    while (std::getline(is, item, ',')) {
        if (item == "all")
            s.all = true;
        else if (!item.empty())
            s.flags.insert(item);
    }
}

FlagState &
state()
{
    static FlagState s;
    static std::once_flag envOnce;
    std::call_once(envOnce, [] {
        if (const char *env = std::getenv("REACH_DEBUG"))
            parseInto(s, env);
        s.any.store(s.all || !s.flags.empty());
    });
    return s;
}

} // namespace

void
setDebugFlags(const std::string &csv)
{
    FlagState &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    s.flags.clear();
    s.all = false;
    parseInto(s, csv);
    s.any.store(s.all || !s.flags.empty());
}

bool
debugFlagEnabled(const std::string &flag)
{
    FlagState &s = state();
    if (!s.any.load(std::memory_order_relaxed))
        return false;
    std::lock_guard<std::mutex> lock(s.mu);
    return s.all || s.flags.count(flag) > 0;
}

void
detail::emitTrace(Tick when, const std::string &flag,
                  const std::string &msg)
{
    // Build the full line first so concurrent simulators emit whole
    // lines, then write it under the shared sink mutex.
    std::ostringstream os;
    os << when << ": " << flag << ": " << msg << "\n";
    std::lock_guard<std::mutex> lock(detail::logSinkMutex());
    std::cerr << os.str();
}

} // namespace reach::sim
