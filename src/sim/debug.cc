#include "debug.hh"

#include <cstdlib>
#include <iostream>
#include <mutex>
#include <set>
#include <sstream>

namespace reach::sim
{

namespace
{

struct FlagState
{
    std::set<std::string> flags;
    bool all = false;
};

FlagState &
state()
{
    static FlagState s = [] {
        FlagState init;
        if (const char *env = std::getenv("REACH_DEBUG")) {
            std::istringstream is(env);
            std::string item;
            while (std::getline(is, item, ',')) {
                if (item == "all")
                    init.all = true;
                else if (!item.empty())
                    init.flags.insert(item);
            }
        }
        return init;
    }();
    return s;
}

} // namespace

void
setDebugFlags(const std::string &csv)
{
    FlagState &s = state();
    s.flags.clear();
    s.all = false;
    std::istringstream is(csv);
    std::string item;
    while (std::getline(is, item, ',')) {
        if (item == "all")
            s.all = true;
        else if (!item.empty())
            s.flags.insert(item);
    }
}

bool
debugFlagEnabled(const std::string &flag)
{
    const FlagState &s = state();
    return s.all || s.flags.count(flag) > 0;
}

void
detail::emitTrace(Tick when, const std::string &flag,
                  const std::string &msg)
{
    std::cerr << when << ": " << flag << ": " << msg << "\n";
}

} // namespace reach::sim
