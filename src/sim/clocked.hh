/**
 * @file
 * Clock domains: translate between cycles of a component-local clock
 * and global ticks.
 */

#ifndef REACH_SIM_CLOCKED_HH
#define REACH_SIM_CLOCKED_HH

#include "logging.hh"
#include "types.hh"

namespace reach::sim
{

/** A fixed-frequency clock domain. */
class ClockDomain
{
  public:
    /** @param period_ticks Clock period in ticks; must be non-zero. */
    explicit ClockDomain(Tick period_ticks) : period(period_ticks)
    {
        if (period == 0)
            fatal("clock domain with zero period");
    }

    static ClockDomain fromMHz(double mhz)
    {
        return ClockDomain(periodFromMHz(mhz));
    }

    static ClockDomain fromGHz(double ghz)
    {
        return ClockDomain(periodFromGHz(ghz));
    }

    Tick periodTicks() const { return period; }

    double
    frequencyMHz() const
    {
        return 1e6 / static_cast<double>(period);
    }

    /** Duration of @p n cycles. */
    Tick ticksFor(Cycles n) const { return n * period; }

    /** Cycles fully elapsed by @p t (floor). */
    Cycles cyclesAt(Tick t) const { return t / period; }

    /** Earliest clock edge at or after @p t. */
    Tick
    nextEdgeAt(Tick t) const
    {
        Tick rem = t % period;
        return rem == 0 ? t : t + (period - rem);
    }

  private:
    Tick period;
};

} // namespace reach::sim

#endif // REACH_SIM_CLOCKED_HH
