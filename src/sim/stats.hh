/**
 * @file
 * A small statistics framework in the spirit of gem5's Stats package.
 *
 * Components own stat objects and register them with a StatRegistry
 * under hierarchical dotted names ("mem.ctrl0.readReqs"). The registry
 * can dump every stat as a formatted table and supports reset between
 * measurement phases.
 */

#ifndef REACH_SIM_STATS_HH
#define REACH_SIM_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace reach::sim
{

/** Base class of all statistics. */
class Stat
{
  public:
    Stat(std::string name, std::string desc)
        : _name(std::move(name)), _desc(std::move(desc))
    {}
    virtual ~Stat() = default;

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    /** Current value rendered as a double (for dumping/formulas). */
    virtual double value() const = 0;

    /** Reset to the post-construction state. */
    virtual void reset() = 0;

  private:
    std::string _name;
    std::string _desc;
};

/** A simple accumulating scalar (counter or gauge). */
class Scalar : public Stat
{
  public:
    using Stat::Stat;

    Scalar &operator+=(double v) { val += v; return *this; }
    Scalar &operator++() { val += 1; return *this; }
    void set(double v) { val = v; }

    double value() const override { return val; }
    void reset() override { val = 0; }

  private:
    double val = 0;
};

/** Tracks count/sum/min/max/mean of a sampled quantity. */
class Distribution : public Stat
{
  public:
    using Stat::Stat;

    void sample(double v);

    std::uint64_t count() const { return n; }
    double sum() const { return total; }
    double mean() const { return n ? total / static_cast<double>(n) : 0; }
    double minValue() const { return n ? mn : 0; }
    double maxValue() const { return n ? mx : 0; }

    /** value() reports the mean so formulas can consume it. */
    double value() const override { return mean(); }
    void reset() override;

  private:
    std::uint64_t n = 0;
    double total = 0;
    double mn = 0;
    double mx = 0;
};

/**
 * Streaming exact-percentile recorder for latency-style samples.
 *
 * Keeps every sample (long open-loop runs sample one value per
 * request, so memory stays proportional to the run) and answers
 * nearest-rank percentile queries exactly — no digest approximation
 * that could blur a tail-latency gate. Queries sort lazily and
 * interleave freely with further sampling. The sum accumulates in
 * __int128 so multi-hour tick sums cannot overflow a 64-bit tick.
 */
class PercentileRecorder : public Stat
{
  public:
    using Stat::Stat;
    PercentileRecorder() : Stat("", "") {}

    void sample(std::uint64_t v);

    std::uint64_t count() const { return samples.size(); }
    std::uint64_t maxValue() const;
    std::uint64_t minValue() const;
    double mean() const;

    /**
     * Exact nearest-rank percentile: the smallest recorded sample
     * >= @p p percent of the distribution (p in (0, 100]). 0 with no
     * samples.
     */
    std::uint64_t percentile(double p) const;

    std::uint64_t p50() const { return percentile(50); }
    std::uint64_t p95() const { return percentile(95); }
    std::uint64_t p99() const { return percentile(99); }
    std::uint64_t p999() const { return percentile(99.9); }

    /** value() reports p99 so registries dump the tail. */
    double value() const override
    {
        return static_cast<double>(p99());
    }
    void reset() override;

  private:
    /** Sorted on demand; `sorted` tracks whether it still is. */
    mutable std::vector<std::uint64_t> samples;
    mutable bool sorted = true;
    unsigned __int128 total = 0;
};

/** A derived statistic evaluated on demand. */
class Formula : public Stat
{
  public:
    Formula(std::string name, std::string desc,
            std::function<double()> fn)
        : Stat(std::move(name), std::move(desc)), eval(std::move(fn))
    {}

    double value() const override { return eval ? eval() : 0; }
    void reset() override {}

  private:
    std::function<double()> eval;
};

/**
 * Owns nothing; tracks registered stats by name for dump/reset.
 * Stats must outlive the registry entries that reference them.
 */
class StatRegistry
{
  public:
    /** Register a stat; names must be unique. */
    void add(Stat &stat);

    /** Remove a stat by name (for components with dynamic lifetime). */
    void remove(const std::string &name);

    /** Look up a stat, or nullptr. */
    const Stat *find(const std::string &name) const;

    /** All registered stats in name order. */
    std::vector<const Stat *> all() const;

    /** Reset every registered stat. */
    void resetAll();

    /** Write "name value # desc" lines, gem5-stats style. */
    void dump(std::ostream &os) const;

    /**
     * Write the registry as a JSON object:
     * {"name": {"value": v, "desc": "..."}, ...} — for downstream
     * analysis scripts and plotting.
     */
    void dumpJson(std::ostream &os) const;

  private:
    std::map<std::string, Stat *> stats;
};

} // namespace reach::sim

#endif // REACH_SIM_STATS_HH
