/**
 * @file
 * Status and error reporting in the gem5 tradition.
 *
 * - panic():  an internal simulator bug; never the user's fault.
 *             Throws SimPanic (so tests can assert on it).
 * - fatal():  the simulation cannot continue because of a user error
 *             (bad configuration, invalid arguments). Throws SimFatal.
 * - warn():   something works well enough but deserves attention.
 * - inform(): plain status messages.
 */

#ifndef REACH_SIM_LOGGING_HH
#define REACH_SIM_LOGGING_HH

#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>

namespace reach::sim
{

/** Thrown by panic(): an internal invariant was violated. */
class SimPanic : public std::logic_error
{
  public:
    explicit SimPanic(const std::string &msg) : std::logic_error(msg) {}
};

/** Thrown by fatal(): user-caused configuration or usage error. */
class SimFatal : public std::runtime_error
{
  public:
    explicit SimFatal(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail
{

void emit(const char *level, const std::string &msg);

/** Mutex serializing all writes to the shared stderr sink. */
std::mutex &logSinkMutex();

template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** Report simulation status the user should see. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emit("info", detail::format(std::forward<Args>(args)...));
}

/** Report behaviour that might be imprecise but lets the run continue. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emit("warn", detail::format(std::forward<Args>(args)...));
}

/** Abort on an internal simulator bug. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::string msg = detail::format(std::forward<Args>(args)...);
    detail::emit("panic", msg);
    throw SimPanic(msg);
}

/** Abort on a user error (bad config, invalid arguments). */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::string msg = detail::format(std::forward<Args>(args)...);
    detail::emit("fatal", msg);
    throw SimFatal(msg);
}

/** Suppress or restore warn/inform output (useful in tests). */
void setQuiet(bool quiet);

} // namespace reach::sim

#endif // REACH_SIM_LOGGING_HH
