#include "stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>

#include "logging.hh"

namespace reach::sim
{

void
Distribution::sample(double v)
{
    if (n == 0) {
        mn = v;
        mx = v;
    } else {
        mn = std::min(mn, v);
        mx = std::max(mx, v);
    }
    ++n;
    total += v;
}

void
Distribution::reset()
{
    n = 0;
    total = 0;
    mn = 0;
    mx = 0;
}

void
PercentileRecorder::sample(std::uint64_t v)
{
    if (sorted && !samples.empty() && v < samples.back())
        sorted = false;
    samples.push_back(v);
    total += v;
}

std::uint64_t
PercentileRecorder::maxValue() const
{
    if (samples.empty())
        return 0;
    if (sorted)
        return samples.back();
    return *std::max_element(samples.begin(), samples.end());
}

std::uint64_t
PercentileRecorder::minValue() const
{
    if (samples.empty())
        return 0;
    if (sorted)
        return samples.front();
    return *std::min_element(samples.begin(), samples.end());
}

double
PercentileRecorder::mean() const
{
    if (samples.empty())
        return 0;
    return static_cast<double>(total) /
           static_cast<double>(samples.size());
}

std::uint64_t
PercentileRecorder::percentile(double p) const
{
    if (samples.empty())
        return 0;
    if (!(p > 0) || p > 100)
        panic("percentile(", p, ") out of (0, 100]");
    if (!sorted) {
        std::sort(samples.begin(), samples.end());
        sorted = true;
    }
    // Nearest-rank: ceil(p/100 * n), 1-based.
    auto n = samples.size();
    auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(n)));
    if (rank == 0)
        rank = 1;
    if (rank > n)
        rank = n;
    return samples[rank - 1];
}

void
PercentileRecorder::reset()
{
    samples.clear();
    sorted = true;
    total = 0;
}

void
StatRegistry::add(Stat &stat)
{
    auto [it, inserted] = stats.emplace(stat.name(), &stat);
    (void)it;
    if (!inserted)
        panic("duplicate stat name '", stat.name(), "'");
}

void
StatRegistry::remove(const std::string &name)
{
    stats.erase(name);
}

const Stat *
StatRegistry::find(const std::string &name) const
{
    auto it = stats.find(name);
    return it == stats.end() ? nullptr : it->second;
}

std::vector<const Stat *>
StatRegistry::all() const
{
    std::vector<const Stat *> out;
    out.reserve(stats.size());
    for (const auto &[name, stat] : stats)
        out.push_back(stat);
    return out;
}

void
StatRegistry::resetAll()
{
    for (auto &[name, stat] : stats)
        stat->reset();
}

namespace
{

/** Minimal JSON string escaping for names/descriptions. */
std::string
jsonEscape(const std::string &in)
{
    std::string out;
    out.reserve(in.size());
    for (char c : in) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

void
StatRegistry::dumpJson(std::ostream &os) const
{
    os << "{";
    bool first = true;
    for (const auto &[name, stat] : stats) {
        if (!first)
            os << ",";
        first = false;
        os << "\n  \"" << jsonEscape(name) << "\": {\"value\": "
           << stat->value() << ", \"desc\": \""
           << jsonEscape(stat->desc()) << "\"}";
    }
    os << "\n}\n";
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &[name, stat] : stats) {
        os << std::left << std::setw(48) << name << " "
           << std::right << std::setw(16) << stat->value()
           << "  # " << stat->desc() << "\n";
    }
}

} // namespace reach::sim
