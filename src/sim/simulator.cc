#include "simulator.hh"

#include "logging.hh"

namespace reach::sim
{

SimObject::SimObject(Simulator &sim, std::string name)
    : _sim(&sim), _name(std::move(name))
{
    if (_name.empty())
        panic("SimObject constructed with an empty name");
}

Tick
SimObject::now() const
{
    return _sim->now();
}

std::uint64_t
SimObject::schedule(Tick when, EventQueue::Callback cb, EventPriority prio,
                    const std::string &what)
{
#ifdef NDEBUG
    // Event names are debug-only; skip the dotted-name construction
    // (two string allocations per event) on the release hot path.
    (void)what;
    return _sim->events().schedule(when, std::move(cb), prio);
#else
    return _sim->events().schedule(when, std::move(cb), prio,
                                   what.empty() ? _name : _name + "." + what);
#endif
}

std::uint64_t
SimObject::scheduleIn(Tick delay, EventQueue::Callback cb,
                      EventPriority prio, const std::string &what)
{
    return schedule(now() + delay, std::move(cb), prio, what);
}

void
SimObject::registerStat(Stat &stat)
{
    _sim->stats().add(stat);
}

Tick
Simulator::run(Tick limit)
{
    while (!queue.empty() && queue.nextEventTick() <= limit)
        queue.runOne();
    return queue.now();
}

Tick
Simulator::runUntil(const std::function<bool()> &done, Tick limit)
{
    while (!queue.empty() && queue.nextEventTick() <= limit) {
        queue.runOne();
        if (done())
            break;
    }
    return queue.now();
}

} // namespace reach::sim
