/**
 * @file
 * The discrete-event scheduling core.
 *
 * Events are callbacks ordered by (tick, priority, sequence number);
 * the sequence number makes same-tick/same-priority ordering follow
 * insertion order, so simulations are fully deterministic.
 *
 * Hot-path layout: the binary heap holds 24-byte POD entries (tick,
 * packed priority|sequence, slot index, generation); callbacks — and,
 * in debug builds, event names — live in a pooled slot arena recycled
 * through a free list, so steady-state scheduling performs no heap
 * allocation beyond what the callback's own closure needs. A
 * per-slot generation counter makes deschedule() O(1) with no
 * hashing: cancelling bumps the generation, and stale heap entries
 * are dropped when they surface — or in bulk by a lazy compaction
 * pass once they outnumber the live ones.
 */

#ifndef REACH_SIM_EVENT_QUEUE_HH
#define REACH_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "types.hh"

namespace reach::sim
{

/** Relative ordering of events scheduled for the same tick. */
enum class EventPriority : int
{
    /** Progress/status bookkeeping runs before ordinary events. */
    Control = 0,
    /** Default priority for component activity. */
    Default = 50,
    /** Statistic dumps and end-of-tick observers run last. */
    Observer = 100,
};

/**
 * A time-ordered queue of callbacks. One instance per Simulator.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule @p cb to run at absolute time @p when.
     *
     * @param when  Absolute tick; must not be before the current tick.
     * @param cb    Callback to invoke.
     * @param prio  Same-tick ordering class.
     * @param name  Optional label used in error messages (retained
     *              only in debug builds).
     * @return Event id usable with deschedule(). Ids are unique among
     *         pending events but are recycled over time; they are
     *         *not* monotonically increasing.
     */
    std::uint64_t schedule(Tick when, Callback cb,
                           EventPriority prio = EventPriority::Default,
                           std::string name = {});

    /**
     * Cancel a previously scheduled event. O(1): no hashing, no heap
     * traversal.
     * @retval true if the event was pending and is now cancelled.
     */
    bool deschedule(std::uint64_t event_id);

    /** Run the earliest pending event, advancing the current tick. */
    void runOne();

    /** @return true if no events are pending. */
    bool empty() const { return numPending == 0; }

    /** Number of pending (non-cancelled) events. */
    std::size_t size() const { return numPending; }

    /** Current simulated time. */
    Tick now() const { return curTick; }

    /** Tick of the earliest pending event (maxTick when empty). */
    Tick nextEventTick() const;

    /** Total events executed since construction. */
    std::uint64_t numExecuted() const { return executed; }

    /**
     * Heap entries currently held, including cancelled ones awaiting
     * compaction. Exposed so tests can assert that schedule/cancel
     * storms do not grow the heap without bound.
     */
    std::size_t heapEntries() const { return heap.size(); }

    /** Arena slots allocated (live + free-listed). */
    std::size_t arenaSlots() const { return slots.size(); }

  private:
    /**
     * One pending occurrence in the time order. POD: the callback
     * lives in the slot arena, not on the heap entry, so sift
     * operations move 24 bytes instead of a std::function + string.
     */
    struct HeapEntry
    {
        Tick when;
        /**
         * (priority << 48) | sequence. Comparing this single word
         * equals the lexicographic (priority, seq) comparison because
         * priorities fit in 16 bits and the insertion sequence stays
         * below 2^48.
         */
        std::uint64_t prioSeq;
        std::uint32_t slot;
        /** Slot generation at scheduling time; stale => cancelled. */
        std::uint32_t gen;
    };

    /** Min-heap order on (when, prioSeq). */
    struct Later
    {
        bool
        operator()(const HeapEntry &a, const HeapEntry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.prioSeq > b.prioSeq;
        }
    };

    /**
     * Callback storage for one pending event. Recycled through
     * freeSlots; gen increments on every release so ids and heap
     * entries from earlier occupancies can be recognized as stale.
     */
    struct Slot
    {
        Callback cb;
        std::uint32_t gen = 0;
#ifndef NDEBUG
        std::string name;
#endif
    };

    /** Compact once stale entries dominate a heap at least this big. */
    static constexpr std::size_t compactMinStale = 64;

    /** Drop cancelled entries sitting at the top of the heap. */
    void dropStaleTop();

    /** Rebuild the heap without cancelled entries. */
    void compact();

    /** Release @p slot back to the free list, invalidating its ids. */
    void releaseSlot(std::uint32_t slot);

    std::vector<HeapEntry> heap;
    std::vector<Slot> slots;
    std::vector<std::uint32_t> freeSlots;
    Tick curTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t executed = 0;
    std::size_t numPending = 0;
    /** Cancelled entries still sitting somewhere in the heap. */
    std::size_t heapStale = 0;
};

} // namespace reach::sim

#endif // REACH_SIM_EVENT_QUEUE_HH
