/**
 * @file
 * The discrete-event scheduling core.
 *
 * Events are callbacks ordered by (tick, priority, sequence number);
 * the sequence number makes same-tick/same-priority ordering follow
 * insertion order, so simulations are fully deterministic.
 */

#ifndef REACH_SIM_EVENT_QUEUE_HH
#define REACH_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "types.hh"

namespace reach::sim
{

/** Relative ordering of events scheduled for the same tick. */
enum class EventPriority : int
{
    /** Progress/status bookkeeping runs before ordinary events. */
    Control = 0,
    /** Default priority for component activity. */
    Default = 50,
    /** Statistic dumps and end-of-tick observers run last. */
    Observer = 100,
};

/**
 * A time-ordered queue of callbacks. One instance per Simulator.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule @p cb to run at absolute time @p when.
     *
     * @param when  Absolute tick; must not be before the current tick.
     * @param cb    Callback to invoke.
     * @param prio  Same-tick ordering class.
     * @param name  Optional label used in error messages.
     * @return Monotonically increasing event id (usable with deschedule).
     */
    std::uint64_t schedule(Tick when, Callback cb,
                           EventPriority prio = EventPriority::Default,
                           std::string name = {});

    /**
     * Cancel a previously scheduled event.
     * @retval true if the event was pending and is now cancelled.
     */
    bool deschedule(std::uint64_t event_id);

    /** Run the earliest pending event, advancing the current tick. */
    void runOne();

    /** @return true if no events are pending. */
    bool empty() const { return numPending == 0; }

    /** Number of pending (non-cancelled) events. */
    std::size_t size() const { return numPending; }

    /** Current simulated time. */
    Tick now() const { return curTick; }

    /** Tick of the earliest pending event (maxTick when empty). */
    Tick nextEventTick() const;

    /** Total events executed since construction. */
    std::uint64_t numExecuted() const { return executed; }

  private:
    struct ScheduledEvent
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        Callback cb;
        std::string name;
    };

    struct Later
    {
        bool
        operator()(const ScheduledEvent &a, const ScheduledEvent &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    /** Drop cancelled entries sitting at the top of the heap. */
    void skipCancelled();

    std::priority_queue<ScheduledEvent, std::vector<ScheduledEvent>, Later>
        queue;
    /** Ids of live (scheduled, not yet run or cancelled) events. */
    std::unordered_set<std::uint64_t> live;
    std::unordered_set<std::uint64_t> cancelled;
    Tick curTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t executed = 0;
    std::size_t numPending = 0;
};

} // namespace reach::sim

#endif // REACH_SIM_EVENT_QUEUE_HH
