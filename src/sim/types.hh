/**
 * @file
 * Fundamental simulation quantities: ticks, clocks, data sizes.
 *
 * The simulator counts time in integer picoseconds ("ticks"), which is
 * fine enough to express multi-GHz clock periods exactly while keeping
 * a 64-bit tick counter good for ~200 days of simulated time.
 */

#ifndef REACH_SIM_TYPES_HH
#define REACH_SIM_TYPES_HH

#include <cstdint>

namespace reach::sim
{

/** Simulated time, in picoseconds. */
using Tick = std::uint64_t;

/** A cycle count within some clock domain. */
using Cycles = std::uint64_t;

/** Ticks per common time units. */
constexpr Tick tickPerPs = 1;
constexpr Tick tickPerNs = 1000 * tickPerPs;
constexpr Tick tickPerUs = 1000 * tickPerNs;
constexpr Tick tickPerMs = 1000 * tickPerUs;
constexpr Tick tickPerSec = 1000 * tickPerMs;

/** The largest representable tick; used as "never". */
constexpr Tick maxTick = ~Tick(0);

/** Convert a floating-point duration in seconds to ticks. */
constexpr Tick
ticksFromSeconds(double seconds)
{
    return static_cast<Tick>(seconds * static_cast<double>(tickPerSec));
}

/** Convert ticks to floating-point seconds. */
constexpr double
secondsFromTicks(Tick ticks)
{
    return static_cast<double>(ticks) / static_cast<double>(tickPerSec);
}

/** Clock period (in ticks) of a frequency given in MHz. */
constexpr Tick
periodFromMHz(double mhz)
{
    return static_cast<Tick>(1e6 / mhz + 0.5);
}

/** Clock period (in ticks) of a frequency given in GHz. */
constexpr Tick
periodFromGHz(double ghz)
{
    return periodFromMHz(ghz * 1000.0);
}

/** Byte-size helpers. */
constexpr std::uint64_t operator""_KiB(unsigned long long v)
{
    return v << 10;
}
constexpr std::uint64_t operator""_MiB(unsigned long long v)
{
    return v << 20;
}
constexpr std::uint64_t operator""_GiB(unsigned long long v)
{
    return v << 30;
}

/** Bandwidth helpers: bytes per second expressed as GB/s (decimal). */
constexpr double
gbps(double gigabytes_per_second)
{
    return gigabytes_per_second * 1e9;
}

/**
 * Time (in ticks) to move @p bytes over a link sustaining
 * @p bytes_per_second. Rounds up to at least one tick for any
 * non-zero transfer so that serialization is never free.
 */
constexpr Tick
transferTicks(std::uint64_t bytes, double bytes_per_second)
{
    if (bytes == 0)
        return 0;
    double seconds = static_cast<double>(bytes) / bytes_per_second;
    Tick t = ticksFromSeconds(seconds);
    return t > 0 ? t : 1;
}

} // namespace reach::sim

#endif // REACH_SIM_TYPES_HH
