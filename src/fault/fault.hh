/**
 * @file
 * Deterministic fault injection for the simulated hierarchy.
 *
 * A FaultPlan describes what can go wrong: scripted one-shot faults
 * ("crash aim0 after 2 ms") and per-decision-point probabilities
 * ("each status poll is lost with p = 0.01"). The FaultInjector draws
 * from one sim::Rng in event execution order, so a given plan + seed
 * reproduces the exact same fault sequence on every run and at any
 * sweep --jobs count — faults are part of the experiment, not noise.
 *
 * Components consult the injector at their natural decision points:
 *  - Accelerator::execute      -> crash (device dead until repaired)
 *                                 or hang (this task never completes)
 *  - Gam::pollStatus           -> status request/response lost
 *  - Link::reserve             -> transfer stalled (retraining /
 *                                 backpressure holds the link)
 *  - Ssd::reserve              -> command timeout + retry delay
 *
 * The GAM's watchdogs, poll retries and failover (gam/gam.hh) are the
 * recovery side of this model.
 */

#ifndef REACH_FAULT_FAULT_HH
#define REACH_FAULT_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace reach::fault
{

enum class FaultKind
{
    /** Device dies: every task on it is lost until repair(). */
    AccCrash,
    /** One task never signals completion; the device survives. */
    AccHang,
    /** A GAM status request or its response is lost. */
    PollDrop,
    /** A link reservation is stretched by a stall delay. */
    LinkStall,
    /** An SSD command times out and is retried after a delay. */
    SsdTimeout,
};

const char *faultKindName(FaultKind kind);

/** One deterministic, targeted fault. */
struct ScriptedFault
{
    FaultKind kind = FaultKind::AccCrash;
    /**
     * Component-name prefix the fault applies to ("aim0", "ssd",
     * ...); empty matches any component consulting for this kind.
     */
    std::string target;
    /** Fires at the first matching decision point at/after this. */
    sim::Tick notBefore = 0;
    /** Occurrences to inject; 0 = every matching occurrence. */
    std::uint32_t count = 1;
};

struct FaultPlan
{
    static constexpr std::uint64_t defaultSeed = 0x5eac4a11u;

    /**
     * RNG seed for the probabilistic stream. Benches and the
     * integration suite take it from envFaultSeed() so a CI run can
     * pin a different fault schedule via REACH_FAULT_SEED.
     */
    std::uint64_t seed = defaultSeed;

    // ----- Per-decision-point probabilities (all default off) -----

    /** P(crash) per task handed to an accelerator. */
    double accCrashProb = 0;
    /** P(hang) per task handed to an accelerator. */
    double accHangProb = 0;
    /** P(lost) per GAM status poll. */
    double pollDropProb = 0;
    /** P(stall) per link reservation. */
    double linkStallProb = 0;
    /** P(timeout) per SSD command. */
    double ssdTimeoutProb = 0;

    /** Extra link occupancy charged on a stall. */
    sim::Tick linkStallDelay = 50 * sim::tickPerUs;
    /** Command retry delay charged on an SSD timeout. */
    sim::Tick ssdTimeoutDelay = 2 * sim::tickPerMs;

    std::vector<ScriptedFault> scripted;

    /** Whether this plan can inject anything at all. */
    bool enabled() const;

    /** Fatal on malformed probabilities/delays. */
    void validate() const;
};

/** REACH_FAULT_SEED env override, else @p fallback. */
std::uint64_t envFaultSeed(std::uint64_t fallback = FaultPlan::defaultSeed);

class FaultInjector : public sim::SimObject
{
  public:
    FaultInjector(sim::Simulator &sim, const std::string &name,
                  const FaultPlan &plan);

    enum class AccFault
    {
        None,
        Hang,
        Crash,
    };

    /** Consulted once per task an accelerator begins executing. */
    AccFault onTaskExecute(const std::string &acc_name);

    /** Consulted once per GAM status poll; true = the poll is lost. */
    bool dropPoll(const std::string &acc_name);

    /** Extra occupancy for this link reservation (0 = no stall). */
    sim::Tick linkStallTicks(const std::string &link_name);

    /** Retry delay for this SSD command (0 = no timeout). */
    sim::Tick ssdTimeoutTicks(const std::string &ssd_name);

    const FaultPlan &plan() const { return cfg; }

    /** Faults injected so far, by kind. */
    std::uint64_t injected(FaultKind kind) const;

  private:
    bool roll(double prob);
    bool scriptedHit(FaultKind kind, const std::string &target_name);

    FaultPlan cfg;
    sim::Rng rng;
    /** Remaining occurrences per scripted entry (~0u = unlimited). */
    std::vector<std::uint32_t> remaining;

    sim::Scalar statCrashes;
    sim::Scalar statHangs;
    sim::Scalar statPollDrops;
    sim::Scalar statLinkStalls;
    sim::Scalar statSsdTimeouts;
};

} // namespace reach::fault

#endif // REACH_FAULT_FAULT_HH
