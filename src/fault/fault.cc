#include "fault.hh"

#include <cstdlib>

#include "sim/logging.hh"

namespace reach::fault
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::AccCrash:
        return "acc-crash";
      case FaultKind::AccHang:
        return "acc-hang";
      case FaultKind::PollDrop:
        return "poll-drop";
      case FaultKind::LinkStall:
        return "link-stall";
      case FaultKind::SsdTimeout:
        return "ssd-timeout";
    }
    return "?";
}

bool
FaultPlan::enabled() const
{
    return accCrashProb > 0 || accHangProb > 0 || pollDropProb > 0 ||
           linkStallProb > 0 || ssdTimeoutProb > 0 ||
           !scripted.empty();
}

void
FaultPlan::validate() const
{
    auto check_prob = [](double p, const char *what) {
        if (!(p >= 0.0 && p <= 1.0)) {
            sim::fatal("fault plan: ", what,
                       " must be a probability in [0, 1], got ", p);
        }
    };
    check_prob(accCrashProb, "accCrashProb");
    check_prob(accHangProb, "accHangProb");
    check_prob(pollDropProb, "pollDropProb");
    check_prob(linkStallProb, "linkStallProb");
    check_prob(ssdTimeoutProb, "ssdTimeoutProb");
    if (accCrashProb + accHangProb > 1.0) {
        sim::fatal("fault plan: accCrashProb + accHangProb exceeds 1");
    }
    if (linkStallProb > 0 && linkStallDelay == 0) {
        sim::fatal("fault plan: linkStallProb set but linkStallDelay "
                   "is zero");
    }
    if (ssdTimeoutProb > 0 && ssdTimeoutDelay == 0) {
        sim::fatal("fault plan: ssdTimeoutProb set but ssdTimeoutDelay "
                   "is zero");
    }
}

std::uint64_t
envFaultSeed(std::uint64_t fallback)
{
    const char *env = std::getenv("REACH_FAULT_SEED");
    if (!env || !*env)
        return fallback;
    char *end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 0);
    if (end == env || *end != '\0')
        sim::fatal("REACH_FAULT_SEED is not a number: '", env, "'");
    return static_cast<std::uint64_t>(v);
}

FaultInjector::FaultInjector(sim::Simulator &sim,
                             const std::string &name,
                             const FaultPlan &plan)
    : sim::SimObject(sim, name),
      cfg(plan),
      rng(plan.seed),
      statCrashes(name + ".crashes", "accelerator crashes injected"),
      statHangs(name + ".hangs", "task hangs injected"),
      statPollDrops(name + ".pollDrops", "status polls dropped"),
      statLinkStalls(name + ".linkStalls", "link stalls injected"),
      statSsdTimeouts(name + ".ssdTimeouts", "SSD timeouts injected")
{
    cfg.validate();
    remaining.reserve(cfg.scripted.size());
    for (const auto &s : cfg.scripted)
        remaining.push_back(s.count == 0 ? ~0u : s.count);
    registerStat(statCrashes);
    registerStat(statHangs);
    registerStat(statPollDrops);
    registerStat(statLinkStalls);
    registerStat(statSsdTimeouts);
}

bool
FaultInjector::roll(double prob)
{
    if (prob <= 0)
        return false;
    return rng.nextDouble() < prob;
}

bool
FaultInjector::scriptedHit(FaultKind kind,
                           const std::string &target_name)
{
    for (std::size_t i = 0; i < cfg.scripted.size(); ++i) {
        const ScriptedFault &s = cfg.scripted[i];
        if (s.kind != kind || remaining[i] == 0 || now() < s.notBefore)
            continue;
        if (!s.target.empty() &&
            target_name.compare(0, s.target.size(), s.target) != 0) {
            continue;
        }
        if (remaining[i] != ~0u)
            --remaining[i];
        return true;
    }
    return false;
}

FaultInjector::AccFault
FaultInjector::onTaskExecute(const std::string &acc_name)
{
    // Scripted faults take priority, then the probabilistic stream.
    // Both probabilities are always rolled (in a fixed order) so the
    // draw sequence depends only on the plan, keeping runs with the
    // same plan bit-identical.
    bool crash = scriptedHit(FaultKind::AccCrash, acc_name);
    bool hang = scriptedHit(FaultKind::AccHang, acc_name);
    crash = roll(cfg.accCrashProb) || crash;
    hang = roll(cfg.accHangProb) || hang;
    if (crash) {
        ++statCrashes;
        return AccFault::Crash;
    }
    if (hang) {
        ++statHangs;
        return AccFault::Hang;
    }
    return AccFault::None;
}

bool
FaultInjector::dropPoll(const std::string &acc_name)
{
    bool drop = scriptedHit(FaultKind::PollDrop, acc_name);
    drop = roll(cfg.pollDropProb) || drop;
    if (drop)
        ++statPollDrops;
    return drop;
}

sim::Tick
FaultInjector::linkStallTicks(const std::string &link_name)
{
    bool stall = scriptedHit(FaultKind::LinkStall, link_name);
    stall = roll(cfg.linkStallProb) || stall;
    if (!stall)
        return 0;
    ++statLinkStalls;
    return cfg.linkStallDelay;
}

sim::Tick
FaultInjector::ssdTimeoutTicks(const std::string &ssd_name)
{
    bool timeout = scriptedHit(FaultKind::SsdTimeout, ssd_name);
    timeout = roll(cfg.ssdTimeoutProb) || timeout;
    if (!timeout)
        return 0;
    ++statSsdTimeouts;
    return cfg.ssdTimeoutDelay;
}

std::uint64_t
FaultInjector::injected(FaultKind kind) const
{
    switch (kind) {
      case FaultKind::AccCrash:
        return static_cast<std::uint64_t>(statCrashes.value());
      case FaultKind::AccHang:
        return static_cast<std::uint64_t>(statHangs.value());
      case FaultKind::PollDrop:
        return static_cast<std::uint64_t>(statPollDrops.value());
      case FaultKind::LinkStall:
        return static_cast<std::uint64_t>(statLinkStalls.value());
      case FaultKind::SsdTimeout:
        return static_cast<std::uint64_t>(statSsdTimeouts.value());
    }
    return 0;
}

} // namespace reach::fault
