/**
 * @file
 * Open-loop asynchronous query service over the simulated hierarchy.
 *
 * Closed-loop runs (CbirDeployment::run) submit pre-formed batches
 * back-to-back, so they measure capacity but never arrival-rate
 * pressure. QueryService is the missing front-end, driven entirely
 * inside the DES:
 *
 *   arrivals -> bounded queue -> batch former -> GAM jobs
 *                  |                 |
 *              admission        degradation
 *               control          controller
 *
 *  - An ArrivalProcess (Poisson / bursty MMPP / trace) generates
 *    requests open-loop: the stream does not slow down because the
 *    machine is busy.
 *  - Admission control sheds load explicitly: a request arriving at
 *    a full queue is rejected on the spot, and a queued request
 *    whose SLO deadline has already passed is dropped at batch
 *    formation instead of wasting machine time. Every submitted
 *    request terminates in exactly one of {completed, failed, shed}.
 *  - The deadline-aware batch former closes a batch when batchSize
 *    requests are waiting, or when the oldest request has waited
 *    formTimeout — pulled earlier when its SLO deadline minus the
 *    current service-latency estimate comes first. Partial batches
 *    are padded to the configured batch shape (the job charges the
 *    full-batch work, like production batchers padding a tensor).
 *  - The overload controller watches queue occupancy at batch
 *    close/completion events and degrades gracefully: each level
 *    steps down quality knobs that already exist (fp16 shortlist
 *    scan, then probe count, then PQ refine / candidate budget)
 *    before any request is rejected, and steps back up only after
 *    hysteresisEvals consecutive calm observations (hysteresis
 *    against flapping).
 *  - Batches the GAM abandons (fault-recovery budget exhausted,
 *    PR 4) are retried with exponential backoff up to
 *    maxBatchRetries, then every member request is reported as an
 *    explicit failure.
 *
 * Determinism: arrivals draw from sim::Rng in event order inside the
 * owning Simulator, and every controller decision happens at a DES
 * event, so a config reproduces bitwise-identical ServiceResults at
 * any sweep --jobs count.
 */

#ifndef REACH_SERVICE_QUERY_SERVICE_HH
#define REACH_SERVICE_QUERY_SERVICE_HH

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <vector>

#include "core/cbir_deployment.hh"
#include "service/arrival.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"

namespace reach::service
{

struct ServiceConfig
{
    ArrivalConfig arrival{};

    /** Requests the arrival process generates before stopping. */
    std::uint64_t totalRequests = 256;

    /** Bounded request queue; arrivals beyond this are shed. */
    std::uint32_t queueCapacity = 64;

    /** Per-request latency SLO (also the deadline for drops). */
    sim::Tick sloLatency = 50 * sim::tickPerMs;

    /** Max wait of the oldest queued request before a partial batch
     *  ships anyway. */
    sim::Tick formTimeout = 2 * sim::tickPerMs;

    /** Seed of the batch-latency EWMA the deadline-aware close uses
     *  before the first completion calibrates it. */
    sim::Tick initialLatencyEstimate = 5 * sim::tickPerMs;

    /** Batches in flight through the GAM (stream depth). */
    std::uint32_t maxInFlight = 4;

    /** Re-submissions of a GAM-failed batch before its requests are
     *  reported failed. */
    std::uint32_t maxBatchRetries = 2;

    /** Base retry delay; doubles per attempt (exponential backoff). */
    sim::Tick retryBackoff = 500 * sim::tickPerUs;

    /** Overload-degradation controller on/off (the A/B knob). */
    bool degrade = true;

    /** Quality-step-down levels available (0..3). */
    std::uint32_t degradeLevels = 3;

    /** Queue occupancy (fraction) that steps quality down a level. */
    double highWatermark = 0.75;

    /** Occupancy below which an evaluation counts as calm. */
    double lowWatermark = 0.25;

    /** Consecutive calm evaluations before stepping quality back up. */
    std::uint32_t hysteresisEvals = 4;

    /** Drop queued requests whose deadline already passed. */
    bool dropExpired = true;

    /** Fatal on malformed values. */
    void validate() const;
};

/** Everything one open-loop run reports. */
struct ServiceResult
{
    // ----- Request accounting (the no-silent-drop invariant) -----
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t shedQueueFull = 0;
    std::uint64_t shedDeadline = 0;

    /** Completed within / beyond the SLO. */
    std::uint64_t goodRequests = 0;
    std::uint64_t sloMisses = 0;

    // ----- Batch-level accounting -----
    std::uint64_t batchesSubmitted = 0; ///< incl. retry submissions
    std::uint64_t batchesCompleted = 0;
    std::uint64_t batchesFailed = 0;
    std::uint64_t batchesRetried = 0;
    /** Submissions that ran below full quality (retries included). */
    std::uint64_t degradedBatches = 0;

    std::uint32_t maxDegradeLevel = 0;
    /** Ticks spent at any degrade level > 0. */
    sim::Tick timeDegraded = 0;

    /** First arrival scheduling to last request termination. */
    sim::Tick makespan = 0;

    // ----- Completed-request latency (exact percentiles) -----
    sim::Tick p50 = 0, p95 = 0, p99 = 0, p999 = 0;
    sim::Tick maxLatency = 0;
    double meanLatency = 0;

    std::uint64_t shedTotal() const
    {
        return shedQueueFull + shedDeadline;
    }

    /** Every submitted request terminated explicitly. */
    bool
    accounted() const
    {
        return completed + failed + shedTotal() == submitted;
    }

    double
    offeredQps() const
    {
        if (makespan == 0)
            return 0;
        return static_cast<double>(submitted) /
               sim::secondsFromTicks(makespan);
    }

    /** Goodput under SLO: completed-within-deadline requests/s. */
    double
    goodputQps() const
    {
        if (makespan == 0)
            return 0;
        return static_cast<double>(goodRequests) /
               sim::secondsFromTicks(makespan);
    }

    double
    completedQps() const
    {
        if (makespan == 0)
            return 0;
        return static_cast<double>(completed) /
               sim::secondsFromTicks(makespan);
    }

    /** Field-exact equality (the --jobs determinism gate). */
    bool operator==(const ServiceResult &o) const;
    bool operator!=(const ServiceResult &o) const
    {
        return !(*this == o);
    }
};

/**
 * The quality ladder: level 0 is the base scale, each deeper level
 * additionally steps one existing knob down —
 *   1: fp16 shortlist scan (centroidBytesPerDim 4 -> 2),
 *   2: probe count halved (nprobe, min 1),
 *   3: PQ exact-refine budget quartered when PQ is on, else the
 *      rerank candidate budget halved (min topK).
 * Returned size is levels+1, capped at the 3 defined steps.
 */
std::vector<cbir::ScaleConfig>
degradeLadder(const cbir::ScaleConfig &base, std::uint32_t levels);

class QueryService : public sim::SimObject
{
  public:
    /**
     * @param system  The simulated machine (owns the Simulator).
     * @param scale   Full-quality workload scale; batchSize is the
     *                batch former's target.
     * @param mapping Stage-to-level assignment for every batch job.
     */
    QueryService(core::ReachSystem &system,
                 const cbir::ScaleConfig &scale, core::Mapping mapping,
                 const ServiceConfig &cfg);

    /**
     * Generate cfg.totalRequests arrivals and simulate until every
     * request has terminated explicitly. Panics with the dumped
     * request table + GAM progress table if the event queue drains
     * first (a wedge can only be a bug, never a report).
     */
    ServiceResult run();

    /** Unterminated requests + queue/controller state (diagnostics). */
    void dumpRequests(std::ostream &os) const;

    /**
     * The service-layer wedge diagnostic: panics with dumpRequests()
     * and the GAM progress table.
     */
    [[noreturn]] void reportWedge(const std::string &who) const;

    const ServiceConfig &config() const { return cfg; }
    std::uint32_t currentDegradeLevel() const { return level; }
    std::uint32_t numDegradeLevels() const
    {
        return static_cast<std::uint32_t>(ladder.size()) - 1;
    }
    /** The effective scale at one degrade level (tests, benches). */
    const cbir::ScaleConfig &scaleAt(std::uint32_t lvl) const
    {
        return ladder.at(lvl);
    }

  private:
    enum class ReqState : std::uint8_t
    {
        Unborn,
        Queued,
        InFlight,
        Completed,
        Failed,
        ShedQueueFull,
        ShedDeadline,
    };

    struct ReqRec
    {
        sim::Tick arrival = 0;
        ReqState state = ReqState::Unborn;
    };

    struct Batch
    {
        std::vector<std::uint64_t> members;
        std::uint32_t level = 0;
        std::uint32_t attempts = 0;
        sim::Tick closedAt = 0;
        sim::Tick deadline = 0;
    };

    void onArrival();
    /** Drop queued requests that can no longer meet their deadline. */
    void dropExpiredFront();
    /**
     * The batch-former pump: close size- or timeout-ripe batches
     * while an in-flight slot is free, then (re-)arm the form timer.
     */
    void pump();
    void armFormTimer();
    void closeBatch(std::size_t count);
    void submitBatch(const std::shared_ptr<Batch> &batch);
    void batchDone(const std::shared_ptr<Batch> &batch, sim::Tick at);
    void batchFailed(const std::shared_ptr<Batch> &batch,
                     sim::Tick at);
    /** Step the degradation controller at a batch event. */
    void evaluateController();
    void stepLevel(std::uint32_t to);
    void terminate(std::uint64_t id, ReqState state, sim::Tick at);

    sim::Tick deadlineOf(std::uint64_t id) const
    {
        return reqs[id].arrival + cfg.sloLatency;
    }

    core::ReachSystem &sys;
    core::Mapping map;
    ServiceConfig cfg;
    std::uint32_t batchSize;

    ArrivalProcess arrivals;
    std::vector<cbir::ScaleConfig> ladder;
    /** One deployment per quality level, over the same system. */
    std::vector<std::unique_ptr<core::CbirDeployment>> deployments;

    std::vector<ReqRec> reqs;
    std::deque<std::uint64_t> queue;

    bool started = false;
    std::uint64_t generated = 0;
    std::uint64_t accountedReqs = 0;
    std::uint64_t completedReqs = 0;
    std::uint64_t failedReqs = 0;
    std::uint64_t shedQueueFull = 0;
    std::uint64_t shedDeadline = 0;
    std::uint64_t goodReqs = 0;
    std::uint64_t sloMisses = 0;

    std::uint32_t inFlight = 0;
    std::uint64_t batchSeq = 0;
    std::uint64_t batchesSubmitted = 0;
    std::uint64_t batchesCompleted = 0;
    std::uint64_t batchesFailed = 0;
    std::uint64_t batchesRetried = 0;
    std::uint64_t degradedBatches = 0;

    /** Timeout-close owed because every slot was busy when it fired. */
    bool timeoutPending = false;
    std::uint64_t formTimerSeq = 0;
    /** Queue front the armed timer was computed for (~0 = none). */
    std::uint64_t timerFront = ~std::uint64_t(0);

    sim::Tick estBatchLatency;
    std::uint32_t level = 0;
    std::uint32_t maxLevel = 0;
    std::uint32_t calmEvals = 0;
    sim::Tick levelSince = 0;
    sim::Tick degradedTicks = 0;

    sim::Tick t0 = 0;
    sim::Tick lastEvent = 0;
    sim::PercentileRecorder latency;
};

} // namespace reach::service

#endif // REACH_SERVICE_QUERY_SERVICE_HH
