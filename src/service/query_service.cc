#include "query_service.hh"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "sim/logging.hh"

namespace reach::service
{

void
ServiceConfig::validate() const
{
    if (totalRequests == 0)
        sim::fatal("ServiceConfig: totalRequests must be positive");
    if (queueCapacity == 0)
        sim::fatal("ServiceConfig: queueCapacity must be positive");
    if (sloLatency == 0)
        sim::fatal("ServiceConfig: sloLatency must be positive");
    if (formTimeout == 0)
        sim::fatal("ServiceConfig: formTimeout must be positive");
    if (maxInFlight == 0)
        sim::fatal("ServiceConfig: maxInFlight must be positive");
    if (retryBackoff == 0)
        sim::fatal("ServiceConfig: retryBackoff must be positive");
    if (!(lowWatermark > 0) || !(highWatermark > lowWatermark) ||
        !(highWatermark <= 1)) {
        sim::fatal("ServiceConfig: watermarks must satisfy 0 < low < "
                   "high <= 1, got ", lowWatermark, " / ",
                   highWatermark);
    }
    if (hysteresisEvals == 0)
        sim::fatal("ServiceConfig: hysteresisEvals must be positive");
    arrival.validate();
}

bool
ServiceResult::operator==(const ServiceResult &o) const
{
    return submitted == o.submitted && completed == o.completed &&
           failed == o.failed && shedQueueFull == o.shedQueueFull &&
           shedDeadline == o.shedDeadline &&
           goodRequests == o.goodRequests && sloMisses == o.sloMisses &&
           batchesSubmitted == o.batchesSubmitted &&
           batchesCompleted == o.batchesCompleted &&
           batchesFailed == o.batchesFailed &&
           batchesRetried == o.batchesRetried &&
           degradedBatches == o.degradedBatches &&
           maxDegradeLevel == o.maxDegradeLevel &&
           timeDegraded == o.timeDegraded && makespan == o.makespan &&
           p50 == o.p50 && p95 == o.p95 && p99 == o.p99 &&
           p999 == o.p999 && maxLatency == o.maxLatency &&
           meanLatency == o.meanLatency;
}

std::vector<cbir::ScaleConfig>
degradeLadder(const cbir::ScaleConfig &base, std::uint32_t levels)
{
    std::vector<cbir::ScaleConfig> ladder;
    ladder.push_back(base);
    std::uint32_t n = std::min<std::uint32_t>(levels, 3);

    if (n >= 1) {
        cbir::ScaleConfig l1 = ladder.back();
        l1.centroidBytesPerDim = 2;
        ladder.push_back(l1);
    }
    if (n >= 2) {
        cbir::ScaleConfig l2 = ladder.back();
        l2.nprobe = std::max<std::uint32_t>(1, l2.nprobe / 2);
        ladder.push_back(l2);
    }
    if (n >= 3) {
        cbir::ScaleConfig l3 = ladder.back();
        if (l3.pq.enabled) {
            l3.pq.refine = l3.pq.refine / 4;
        } else {
            l3.rerankCandidates = std::max(
                l3.topK, l3.rerankCandidates / 2);
        }
        ladder.push_back(l3);
    }
    return ladder;
}

QueryService::QueryService(core::ReachSystem &system,
                           const cbir::ScaleConfig &scale,
                           core::Mapping mapping,
                           const ServiceConfig &config)
    : sim::SimObject(system.simulator(), "service"),
      sys(system), map(mapping), cfg(config),
      batchSize(scale.batchSize),
      arrivals(cfg.arrival),
      ladder(degradeLadder(scale,
                           cfg.degrade ? cfg.degradeLevels : 0)),
      estBatchLatency(cfg.initialLatencyEstimate),
      latency("latency", "completed-request latency percentiles")
{
    cfg.validate();
    for (const cbir::ScaleConfig &lvl : ladder) {
        deployments.push_back(std::make_unique<core::CbirDeployment>(
            sys, cbir::CbirWorkloadModel(lvl), map));
    }
    reqs.resize(cfg.totalRequests);
}

ServiceResult
QueryService::run()
{
    if (started)
        sim::fatal("QueryService::run: service already ran");
    started = true;

    t0 = now();
    lastEvent = t0;
    levelSince = t0;
    scheduleIn(arrivals.nextInterarrival(), [this] { onArrival(); },
               sim::EventPriority::Default, "service.arrival");

    sys.simulator().runUntil(
        [this] { return accountedReqs == cfg.totalRequests; });

    if (accountedReqs != cfg.totalRequests)
        reportWedge("QueryService::run");

    // Close out the time-in-degraded-mode accumulator.
    if (level > 0) {
        degradedTicks += lastEvent - levelSince;
        levelSince = lastEvent;
    }

    ServiceResult r;
    r.submitted = generated;
    r.completed = completedReqs;
    r.failed = failedReqs;
    r.shedQueueFull = shedQueueFull;
    r.shedDeadline = shedDeadline;
    r.goodRequests = goodReqs;
    r.sloMisses = sloMisses;
    r.batchesSubmitted = batchesSubmitted;
    r.batchesCompleted = batchesCompleted;
    r.batchesFailed = batchesFailed;
    r.batchesRetried = batchesRetried;
    r.degradedBatches = degradedBatches;
    r.maxDegradeLevel = maxLevel;
    r.timeDegraded = degradedTicks;
    r.makespan = lastEvent - t0;
    if (latency.count() > 0) {
        r.p50 = latency.p50();
        r.p95 = latency.p95();
        r.p99 = latency.p99();
        r.p999 = latency.p999();
        r.maxLatency = latency.maxValue();
        r.meanLatency = latency.mean();
    }
    return r;
}

void
QueryService::onArrival()
{
    std::uint64_t id = generated++;
    reqs[id].arrival = now();

    // Open-loop: the next arrival is scheduled unconditionally,
    // before admission — a busy machine never slows the stream.
    if (generated < cfg.totalRequests) {
        scheduleIn(arrivals.nextInterarrival(), [this] { onArrival(); },
                   sim::EventPriority::Default, "service.arrival");
    }

    if (queue.size() >= cfg.queueCapacity) {
        // Admission control: reject on the spot instead of growing an
        // unbounded queue (explicit shed, never a silent hang).
        terminate(id, ReqState::ShedQueueFull, now());
        return;
    }
    reqs[id].state = ReqState::Queued;
    queue.push_back(id);
    pump();
}

void
QueryService::dropExpiredFront()
{
    if (!cfg.dropExpired)
        return;
    while (!queue.empty() && deadlineOf(queue.front()) < now()) {
        std::uint64_t id = queue.front();
        queue.pop_front();
        terminate(id, ReqState::ShedDeadline, now());
    }
}

void
QueryService::pump()
{
    dropExpiredFront();
    while (inFlight < cfg.maxInFlight && !queue.empty()) {
        bool full = queue.size() >= batchSize;
        if (!full && !timeoutPending)
            break;
        timeoutPending = false;
        closeBatch(full ? batchSize : queue.size());
        dropExpiredFront();
    }
    // A ripe timeout with every slot busy stays pending and the next
    // batch completion re-enters the pump; an emptied queue owes
    // nothing.
    if (queue.empty())
        timeoutPending = false;
    armFormTimer();
}

void
QueryService::armFormTimer()
{
    if (queue.empty()) {
        // Disarm: a stale timer observes the bumped sequence number.
        ++formTimerSeq;
        timerFront = ~std::uint64_t(0);
        return;
    }
    if (timeoutPending) {
        // A close is already owed (the timer fired while every
        // in-flight slot was busy); the next completion's pump
        // consumes it — re-arming here would spin at the same tick.
        return;
    }
    std::uint64_t front = queue.front();
    if (front == timerFront)
        return; // Already armed for this oldest request.

    timerFront = front;
    std::uint64_t seq = ++formTimerSeq;

    // Deadline-aware close: ship no later than formTimeout after the
    // oldest arrival, pulled earlier when the oldest request's SLO
    // deadline minus the current service-latency estimate comes
    // first.
    sim::Tick byTimeout = reqs[front].arrival + cfg.formTimeout;
    sim::Tick dl = deadlineOf(front);
    sim::Tick byDeadline =
        dl > estBatchLatency ? dl - estBatchLatency : now();
    sim::Tick closeAt = std::max(now(),
                                 std::min(byTimeout, byDeadline));
    schedule(closeAt, [this, seq] {
        if (seq != formTimerSeq)
            return; // Stale: the front changed since arming.
        timerFront = ~std::uint64_t(0);
        timeoutPending = true;
        pump();
    }, sim::EventPriority::Default, "service.formTimer");
}

void
QueryService::closeBatch(std::size_t count)
{
    evaluateController();

    auto batch = std::make_shared<Batch>();
    batch->level = level;
    batch->closedAt = now();
    batch->deadline = sim::maxTick;
    for (std::size_t i = 0; i < count; ++i) {
        std::uint64_t id = queue.front();
        queue.pop_front();
        reqs[id].state = ReqState::InFlight;
        batch->members.push_back(id);
        batch->deadline = std::min(batch->deadline, deadlineOf(id));
    }
    timerFront = ~std::uint64_t(0);
    submitBatch(batch);
}

void
QueryService::submitBatch(const std::shared_ptr<Batch> &batch)
{
    ++inFlight;
    ++batchesSubmitted;
    if (batch->level > 0)
        ++degradedBatches;

    gam::JobDesc job = deployments[batch->level]->makeBatchJob(
        static_cast<std::uint32_t>(batchSeq++),
        [this, batch](sim::Tick at) { batchDone(batch, at); },
        [this, batch](sim::Tick at) { batchFailed(batch, at); });
    // EDF hint: the most urgent member request sets the job deadline.
    job.deadline = batch->deadline;
    sys.gam().submitJob(std::move(job));
}

void
QueryService::batchDone(const std::shared_ptr<Batch> &batch,
                        sim::Tick at)
{
    --inFlight;
    ++batchesCompleted;
    for (std::uint64_t id : batch->members)
        terminate(id, ReqState::Completed, at);

    // EWMA service-latency estimate for the deadline-aware close.
    sim::Tick observed = at - batch->closedAt;
    estBatchLatency = (3 * estBatchLatency + observed) / 4;

    evaluateController();
    pump();
}

void
QueryService::batchFailed(const std::shared_ptr<Batch> &batch,
                          sim::Tick at)
{
    --inFlight;
    if (batch->attempts < cfg.maxBatchRetries) {
        ++batch->attempts;
        ++batchesRetried;
        // Exponential backoff; retries bypass the in-flight window so
        // recovery work cannot be starved by fresh load.
        sim::Tick backoff = cfg.retryBackoff
                            << (batch->attempts - 1);
        scheduleIn(backoff, [this, batch] {
            // Re-stamp at the current quality level: a batch retried
            // under overload should also shed quality.
            batch->level = level;
            batch->closedAt = now();
            submitBatch(batch);
        }, sim::EventPriority::Default, "service.retry");
        pump();
        return;
    }
    ++batchesFailed;
    for (std::uint64_t id : batch->members)
        terminate(id, ReqState::Failed, at);
    evaluateController();
    pump();
}

void
QueryService::evaluateController()
{
    if (!cfg.degrade || numDegradeLevels() == 0)
        return;
    double occupancy = static_cast<double>(queue.size()) /
                       cfg.queueCapacity;
    if (occupancy >= cfg.highWatermark) {
        calmEvals = 0;
        if (level < numDegradeLevels())
            stepLevel(level + 1);
    } else if (occupancy <= cfg.lowWatermark) {
        if (level > 0 && ++calmEvals >= cfg.hysteresisEvals) {
            calmEvals = 0;
            stepLevel(level - 1);
        }
    } else {
        calmEvals = 0;
    }
}

void
QueryService::stepLevel(std::uint32_t to)
{
    if (level > 0)
        degradedTicks += now() - levelSince;
    levelSince = now();
    level = to;
    maxLevel = std::max(maxLevel, level);
}

void
QueryService::terminate(std::uint64_t id, ReqState state, sim::Tick at)
{
    reqs[id].state = state;
    ++accountedReqs;
    lastEvent = std::max(lastEvent, at);
    switch (state) {
      case ReqState::Completed: {
        ++completedReqs;
        sim::Tick lat = at - reqs[id].arrival;
        latency.sample(lat);
        if (lat <= cfg.sloLatency)
            ++goodReqs;
        else
            ++sloMisses;
        break;
      }
      case ReqState::Failed:
        ++failedReqs;
        break;
      case ReqState::ShedQueueFull:
        ++shedQueueFull;
        break;
      case ReqState::ShedDeadline:
        ++shedDeadline;
        break;
      default:
        sim::panic("QueryService: request ", id,
                   " terminated into non-terminal state");
    }
}

namespace
{

const char *
reqStateName(int s)
{
    switch (s) {
      case 0: return "unborn";
      case 1: return "queued";
      case 2: return "in-flight";
      case 3: return "completed";
      case 4: return "failed";
      case 5: return "shed-queue-full";
      case 6: return "shed-deadline";
    }
    return "?";
}

} // namespace

void
QueryService::dumpRequests(std::ostream &os) const
{
    os << "QueryService state: generated " << generated << "/"
       << cfg.totalRequests << ", accounted " << accountedReqs
       << ", queue depth " << queue.size() << "/" << cfg.queueCapacity
       << ", in-flight batches " << inFlight << ", degrade level "
       << level << "\n";
    std::uint64_t shown = 0;
    for (std::uint64_t id = 0; id < generated; ++id) {
        ReqState s = reqs[id].state;
        if (s == ReqState::Completed || s == ReqState::Failed ||
            s == ReqState::ShedQueueFull ||
            s == ReqState::ShedDeadline) {
            continue;
        }
        os << "  req " << id << ": " << reqStateName(int(s))
           << " arrival=" << reqs[id].arrival
           << " deadline=" << deadlineOf(id) << "\n";
        ++shown;
    }
    if (shown == 0)
        os << "  (no unterminated requests)\n";
}

void
QueryService::reportWedge(const std::string &who) const
{
    std::ostringstream os;
    os << who << ": event queue drained with "
       << cfg.totalRequests - accountedReqs
       << " request(s) unaccounted — the service wedged.\n";
    dumpRequests(os);
    os << "GAM state:\n";
    sys.gam().dumpProgress(os);
    sim::panic(os.str());
}

} // namespace reach::service
