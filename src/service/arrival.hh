/**
 * @file
 * Deterministic open-loop arrival processes for the query service.
 *
 * Every inter-arrival time is drawn from one sim::Rng in arrival
 * order inside the owning point's Simulator, so a given config + seed
 * reproduces the identical request stream on every run and at any
 * sweep --jobs count — the same discipline the fault framework uses
 * (fault/fault.hh). Three processes cover the service-study space:
 *
 *  - Poisson: memoryless arrivals at a fixed mean rate (the classic
 *    open-loop datacenter model);
 *  - Bursty:  a 2-state Markov-modulated Poisson process (MMPP-2),
 *    alternating exponentially-dwelling calm/burst states whose
 *    long-run mean matches ratePerSec while bursts run hotter by
 *    burstRateMultiplier;
 *  - Trace:   replay of explicit arrival ticks (cycled when the run
 *    outlives the trace) for recorded production patterns.
 */

#ifndef REACH_SERVICE_ARRIVAL_HH
#define REACH_SERVICE_ARRIVAL_HH

#include <cstdint>
#include <vector>

#include "sim/rng.hh"
#include "sim/types.hh"

namespace reach::service
{

enum class ArrivalKind : std::uint8_t
{
    Poisson,
    Bursty,
    Trace,
};

const char *arrivalKindName(ArrivalKind kind);

struct ArrivalConfig
{
    static constexpr std::uint64_t defaultSeed = 0x0a55171eu;

    ArrivalKind kind = ArrivalKind::Poisson;

    /** Long-run mean request arrival rate (requests/second). */
    double ratePerSec = 1000.0;

    /**
     * RNG seed for the Poisson/Bursty draws. Benches take it from
     * envArrivalSeed() so CI can pin an alternate request stream via
     * REACH_ARRIVAL_SEED (the REACH_FAULT_SEED idiom).
     */
    std::uint64_t seed = defaultSeed;

    // ----- Bursty (MMPP-2) shape -----

    /** Arrival-rate multiplier while in the burst state (> 1). */
    double burstRateMultiplier = 4.0;
    /** Long-run fraction of time spent in the burst state (0, 1). */
    double burstTimeFraction = 0.25;
    /** Mean dwell per visit to the burst state. */
    sim::Tick meanBurstTicks = 2 * sim::tickPerMs;

    // ----- Trace replay -----

    /**
     * Strictly increasing arrival ticks relative to stream start.
     * When the run needs more arrivals than the trace holds, the
     * trace's inter-arrival gaps repeat from the top.
     */
    std::vector<sim::Tick> trace;

    /** Fatal on malformed values (non-positive rate, bad trace). */
    void validate() const;
};

/** REACH_ARRIVAL_SEED env override, else @p fallback. */
std::uint64_t
envArrivalSeed(std::uint64_t fallback = ArrivalConfig::defaultSeed);

class ArrivalProcess
{
  public:
    /** Validates the config (sim::fatal on malformed values). */
    explicit ArrivalProcess(const ArrivalConfig &cfg);

    /**
     * Ticks until the next arrival (>= 1: two requests never share a
     * tick, which keeps queue-order deterministic). Draws from the
     * RNG in call order.
     */
    sim::Tick nextInterarrival();

    const ArrivalConfig &config() const { return cfg;  }

  private:
    sim::Tick drawExponential(double rate_per_sec);
    /** Exponential dwell for the current MMPP state. */
    sim::Tick drawDwell();

    ArrivalConfig cfg;
    sim::Rng rng;

    // MMPP-2 state: dwell remaining in the current state.
    bool inBurst = false;
    sim::Tick dwellRemaining = 0;
    double calmRate = 0;
    double burstRate = 0;
    sim::Tick meanCalmTicks = 0;

    // Trace replay state.
    std::size_t tracePos = 0;
};

} // namespace reach::service

#endif // REACH_SERVICE_ARRIVAL_HH
