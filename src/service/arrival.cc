#include "arrival.hh"

#include <cmath>
#include <cstdlib>

#include "sim/logging.hh"

namespace reach::service
{

const char *
arrivalKindName(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::Poisson:
        return "poisson";
      case ArrivalKind::Bursty:
        return "bursty";
      case ArrivalKind::Trace:
        return "trace";
    }
    return "?";
}

void
ArrivalConfig::validate() const
{
    if (kind != ArrivalKind::Trace && !(ratePerSec > 0))
        sim::fatal("ArrivalConfig: ratePerSec must be > 0, got ",
                   ratePerSec);
    if (kind == ArrivalKind::Bursty) {
        if (!(burstRateMultiplier > 1)) {
            sim::fatal("ArrivalConfig: burstRateMultiplier must be "
                       "> 1, got ", burstRateMultiplier);
        }
        if (!(burstTimeFraction > 0) || !(burstTimeFraction < 1)) {
            sim::fatal("ArrivalConfig: burstTimeFraction must be in "
                       "(0, 1), got ", burstTimeFraction);
        }
        if (meanBurstTicks == 0) {
            sim::fatal(
                "ArrivalConfig: meanBurstTicks must be positive");
        }
    }
    if (kind == ArrivalKind::Trace) {
        if (trace.empty())
            sim::fatal("ArrivalConfig: trace replay needs a trace");
        for (std::size_t i = 1; i < trace.size(); ++i) {
            if (trace[i] <= trace[i - 1]) {
                sim::fatal("ArrivalConfig: trace ticks must be "
                           "strictly increasing (entry ", i, ")");
            }
        }
    }
}

std::uint64_t
envArrivalSeed(std::uint64_t fallback)
{
    const char *env = std::getenv("REACH_ARRIVAL_SEED");
    if (!env || !*env)
        return fallback;
    char *end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 0);
    if (end == env || *end != '\0')
        sim::fatal("REACH_ARRIVAL_SEED is not a number: '", env, "'");
    return static_cast<std::uint64_t>(v);
}

ArrivalProcess::ArrivalProcess(const ArrivalConfig &config)
    : cfg(config), rng(config.seed)
{
    cfg.validate();
    if (cfg.kind == ArrivalKind::Bursty) {
        // Long-run mean rate (1-f)*calm + f*burst == ratePerSec with
        // burst = multiplier * calm and f the burst time fraction.
        double f = cfg.burstTimeFraction;
        calmRate = cfg.ratePerSec /
                   ((1.0 - f) + f * cfg.burstRateMultiplier);
        burstRate = calmRate * cfg.burstRateMultiplier;
        // Dwell means chosen so burst visits occupy fraction f:
        // meanCalm = meanBurst * (1-f)/f.
        meanCalmTicks = static_cast<sim::Tick>(
            static_cast<double>(cfg.meanBurstTicks) * (1.0 - f) / f);
        if (meanCalmTicks == 0)
            meanCalmTicks = 1;
        inBurst = false;
        dwellRemaining = drawDwell();
    }
}

sim::Tick
ArrivalProcess::drawExponential(double rate_per_sec)
{
    // Inverse-CDF with the open-interval guard: nextDouble() is in
    // [0, 1), so 1-u is in (0, 1] and the log is finite.
    double u = rng.nextDouble();
    double seconds = -std::log1p(-u) / rate_per_sec;
    sim::Tick t = sim::ticksFromSeconds(seconds);
    return t > 0 ? t : 1;
}

sim::Tick
ArrivalProcess::nextInterarrival()
{
    switch (cfg.kind) {
      case ArrivalKind::Poisson:
        return drawExponential(cfg.ratePerSec);

      case ArrivalKind::Bursty: {
        // Competing exponentials: the next arrival candidate races
        // the remaining dwell of the current state; crossing a state
        // boundary re-draws the arrival at the new state's rate.
        sim::Tick elapsed = 0;
        for (;;) {
            sim::Tick gap =
                drawExponential(inBurst ? burstRate : calmRate);
            if (gap < dwellRemaining) {
                dwellRemaining -= gap;
                sim::Tick t = elapsed + gap;
                return t > 0 ? t : 1;
            }
            elapsed += dwellRemaining;
            inBurst = !inBurst;
            dwellRemaining = drawDwell();
        }
      }

      case ArrivalKind::Trace: {
        // Inter-arrival gaps of the trace, cycled; the first gap is
        // the lead-in from stream start to the first arrival.
        std::size_t n = cfg.trace.size();
        std::size_t i = tracePos % n;
        ++tracePos;
        sim::Tick gap = i == 0 ? cfg.trace.front()
                               : cfg.trace[i] - cfg.trace[i - 1];
        return gap > 0 ? gap : 1;
      }
    }
    sim::panic("ArrivalProcess: unknown arrival kind");
}

sim::Tick
ArrivalProcess::drawDwell()
{
    sim::Tick mean = inBurst ? cfg.meanBurstTicks : meanCalmTicks;
    double u = rng.nextDouble();
    double ticks = -std::log1p(-u) * static_cast<double>(mean);
    auto t = static_cast<sim::Tick>(ticks);
    return t > 0 ? t : 1;
}

} // namespace reach::service
